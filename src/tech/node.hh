/**
 * @file
 * Process technology node models.
 *
 * The paper spans five technology generations, 130nm (2003) to 32nm
 * (2010), over which Dennard scaling slowed: capacitance per
 * transistor kept falling with feature size, but supply voltage
 * stopped falling proportionally and leakage grew until high-k metal
 * gates (45nm) partially recovered it. TechNode captures the scaling
 * factors the power model needs; the die-shrink analyses (paper
 * Findings 4 and 5) exercise these directly.
 */

#ifndef LHR_TECH_NODE_HH
#define LHR_TECH_NODE_HH

#include <string>

namespace lhr
{

/** Feature sizes used in the study, plus the post-2011 extension. */
enum class Node
{
    Nm130,
    Nm65,
    Nm45,
    Nm32,
    Nm22,   ///< FinFET (Ivy Bridge / Haswell server parts)
    Nm14    ///< second-generation FinFET (Broadwell / Skylake)
};

/** Scaling parameters of one process technology generation. */
struct TechNode
{
    Node node;
    int featureNm;        ///< drawn feature size in nanometres
    std::string name;     ///< e.g. "130nm"

    /**
     * Effective switched capacitance per transistor relative to
     * 130nm. Each full node step shrinks linear dimensions by ~0.7,
     * so per-transistor capacitance falls roughly with feature size.
     */
    double capScale;

    /**
     * Leakage power per transistor at nominal voltage relative to
     * 130nm. Rises towards 65nm, partially recovered at 45nm by
     * high-k metal gate, roughly flat at 32nm.
     */
    double leakScale;

    double vNominal;      ///< nominal core supply voltage (V)
    double vMin;          ///< practical DVFS floor voltage (V)
};

/** Look up the model for a node. */
const TechNode &techNode(Node node);

/** Look up by feature size in nanometres; panic()s on unknown size. */
const TechNode &techNodeByNm(int nm);

/**
 * Leakage dependence on voltage: subthreshold leakage scales
 * super-linearly with V. Returns the multiplier relative to
 * operation at vNominal.
 */
double leakageVoltageFactor(const TechNode &tech, double v);

} // namespace lhr

#endif // LHR_TECH_NODE_HH
