#include "tech/node.hh"

#include <cmath>

#include "util/logging.hh"

namespace lhr
{

namespace
{

const TechNode nodes[] = {
    // node        nm   name     capScale leakScale vNom  vMin
    {Node::Nm130, 130, "130nm",  1.000,   1.00,     1.50, 1.10},
    {Node::Nm65,   65, "65nm",   0.490,   2.20,     1.30, 0.85},
    {Node::Nm45,   45, "45nm",   0.343,   1.60,     1.20, 0.80},
    {Node::Nm32,   32, "32nm",   0.245,   1.50,     1.10, 0.65},
    // FinFET generations: the tri-gate transistor recovers leakage
    // below the planar trend while capacitance keeps shrinking, and
    // nominal voltage finally dips below 1V.
    {Node::Nm22,   22, "22nm",   0.170,   0.90,     1.00, 0.60},
    {Node::Nm14,   14, "14nm",   0.115,   0.80,     0.95, 0.55},
};

} // namespace

const TechNode &
techNode(Node node)
{
    for (const auto &tn : nodes)
        if (tn.node == node)
            return tn;
    panic("techNode: unknown node");
}

const TechNode &
techNodeByNm(int nm)
{
    for (const auto &tn : nodes)
        if (tn.featureNm == nm)
            return tn;
    panic(msgOf("techNodeByNm: no model for ", nm, "nm"));
}

double
leakageVoltageFactor(const TechNode &tech, double v)
{
    if (v <= 0.0)
        panic("leakageVoltageFactor: non-positive voltage");
    // Subthreshold + gate leakage grow roughly with V^2 around the
    // nominal operating point.
    const double ratio = v / tech.vNominal;
    return ratio * ratio;
}

} // namespace lhr
