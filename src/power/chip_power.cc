#include "power/chip_power.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/fp.hh"

namespace lhr
{

double
switchingActivity(double utilization, double fp_share)
{
    if (utilization < 0.0 || utilization > 1.0)
        panic("switchingActivity: utilization out of range");
    return std::min(1.0, 0.25 + 0.50 * utilization + 0.12 * fp_share);
}

ThermalModel::ThermalModel(const ProcessorSpec &spec)
{
    // Packages are engineered so that sustained TDP lands near the
    // maximum junction temperature.
    thetaJaCperW = (throttleJunctionC - ambientC) / spec.tdpW;
}

double
ThermalModel::junctionAt(double power_w) const
{
    return ambientC + thetaJaCperW * power_w;
}

double
ThermalModel::leakageTempFactor(double junction_c)
{
    // ~1.2% leakage growth per degree around the 60C reference.
    return std::max(0.5, 1.0 + 0.012 * (junction_c - 60.0));
}

ChipPowerModel::ChipPowerModel(const ProcessorSpec &spec)
    : processor(spec), thermalModel(spec)
{
}

PowerBreakdown
ChipPowerModel::compute(const MachineConfig &cfg, double clock_ghz,
                        const std::vector<double> &core_activity,
                        double llc_activity, double dram_gbs) const
{
    return computeOne(cfg, clock_ghz, core_activity.data(),
                      static_cast<int>(core_activity.size()),
                      llc_activity, dram_gbs);
}

PowerBreakdown
ChipPowerModel::computeOne(const MachineConfig &cfg, double clock_ghz,
                           const double *core_activity,
                           int activity_count, double llc_activity,
                           double dram_gbs) const
{
    if (cfg.spec != &processor)
        panic("ChipPowerModel: config is for a different processor");
    if (activity_count != cfg.enabledCores)
        panic("ChipPowerModel: activity vector size mismatch");
    if (llc_activity < 0.0 || llc_activity > 1.0)
        panic("ChipPowerModel: llc activity out of range");

    const ProcessorSpec &s = processor;
    const MicroArch &ua = s.uarch();
    const TechNode &tech = s.tech();
    const double v = cfg.voltageAt(clock_ghz);
    const double v2f = v * v * clock_ghz;

    PowerBreakdown pb{0.0, 0.0, 0.0, 0.0, 0.0};

    // -- Core dynamic power -------------------------------------------
    const double coreCap = ua.coreCapNf130 * tech.capScale * s.powerCal;
    // An enabled-but-idle core still clocks at the gating quality of
    // its generation.
    const double idleFloor = ua.idleCoreFraction * 0.45;
    for (int core = 0; core < activity_count; ++core) {
        const double act = core_activity[core];
        if (act < 0.0 || act > 1.0)
            panic("ChipPowerModel: core activity out of range");
        pb.coreDynW += std::max(act, idleFloor) * coreCap * v2f;
    }

    // -- LLC power ------------------------------------------------------
    // From Nehalem on, the L3 sits in a separate uncore clock domain
    // with a per-generation ceiling.
    const double uncoreCap = familyUncoreClockCapGhz(s.family);
    const double llcClock = uncoreCap > 0.0
        ? std::min(clock_ghz, uncoreCap) : clock_ghz;
    const double llcCap =
        ua.llcCapNfPerMb130 * s.llcMb * tech.capScale * s.powerCal;
    pb.llcW = llcCap * v * v * llcClock * (0.15 + 0.50 * llc_activity);

    // -- Uncore power ---------------------------------------------------
    pb.uncoreW = s.uncoreBaseW +
        s.uncoreDynW * (clock_ghz / s.stockClockGhz) +
        0.03 * std::max(0.0, dram_gbs);

    // -- Leakage, thermally coupled --------------------------------------
    // BIOS-disabled cores are fully power gated; on pre-Nehalem parts
    // the gating is leaky. Nehalem additionally power gates *idle*
    // cores at runtime (C6), so they stop leaking too.
    const bool gatesIdle = familyPowerGatesIdleCores(s.family);
    int gatedCores = s.cores - cfg.enabledCores;
    if (gatesIdle) {
        for (int core = 0; core < activity_count; ++core)
            if (exactZero(core_activity[core]))
                ++gatedCores;
    }
    const double gatedLeak = gatesIdle ? 0.10 : 0.60;
    const double effTransistorsM = s.transistorsM -
        (1.0 - gatedLeak) * gatedCores * ua.coreTransistorsM;
    const double leakBase = leakPerMtranW130 * tech.leakScale *
        effTransistorsM * leakageVoltageFactor(tech, v) * s.leakCal;

    // Fixed point between leakage and junction temperature.
    pb.leakW = leakBase;
    for (int iter = 0; iter < 3; ++iter) {
        pb.junctionC = thermalModel.junctionAt(pb.total());
        pb.leakW = leakBase * ThermalModel::leakageTempFactor(pb.junctionC);
    }
    pb.junctionC = thermalModel.junctionAt(pb.total());

    return pb;
}

PowerBatch
ChipPowerModel::allocBatch(size_t lanes, Arena &arena)
{
    PowerBatch out;
    out.lanes = lanes;
    out.coreDynW = arena.alloc<double>(lanes);
    out.leakW = arena.alloc<double>(lanes);
    out.llcW = arena.alloc<double>(lanes);
    out.uncoreW = arena.alloc<double>(lanes);
    out.junctionC = arena.alloc<double>(lanes);
    out.totalW = arena.alloc<double>(lanes);
    return out;
}

PowerBatch
ChipPowerModel::computeBatch(const ConfigBatch &batch,
                             const double *clock_ghz,
                             const double *core_activity,
                             const size_t *activity_offset,
                             const double *llc_activity,
                             const double *dram_gbs, Arena &arena) const
{
    if (batch.spec != &processor)
        panic("ChipPowerModel::computeBatch: batch is for a different "
              "processor");
    if (clock_ghz == nullptr)
        clock_ghz = batch.clockGhz.data();

    PowerBatch out = allocBatch(batch.size(), arena);
    for (size_t i = 0; i < batch.size(); ++i) {
        const PowerBreakdown pb = computeOne(
            *batch.configs[i], clock_ghz[i],
            core_activity + activity_offset[i],
            static_cast<int>(activity_offset[i + 1] -
                             activity_offset[i]),
            llc_activity[i], dram_gbs[i]);
        out.coreDynW[i] = pb.coreDynW;
        out.leakW[i] = pb.leakW;
        out.llcW[i] = pb.llcW;
        out.uncoreW[i] = pb.uncoreW;
        out.junctionC[i] = pb.junctionC;
        out.totalW[i] = pb.total();
    }
    return out;
}

PowerBatch
ChipPowerModel::computeBatch(const MachineConfig &cfg, double clock_ghz,
                             const double *core_activity,
                             const double *llc_activity,
                             const double *dram_gbs, size_t lanes,
                             Arena &arena) const
{
    const size_t stride = static_cast<size_t>(cfg.enabledCores);
    PowerBatch out = allocBatch(lanes, arena);
    for (size_t i = 0; i < lanes; ++i) {
        const PowerBreakdown pb = computeOne(
            cfg, clock_ghz, core_activity + i * stride,
            cfg.enabledCores, llc_activity[i], dram_gbs[i]);
        out.coreDynW[i] = pb.coreDynW;
        out.leakW[i] = pb.leakW;
        out.llcW[i] = pb.llcW;
        out.uncoreW[i] = pb.uncoreW;
        out.junctionC[i] = pb.junctionC;
        out.totalW[i] = pb.total();
    }
    return out;
}

} // namespace lhr
