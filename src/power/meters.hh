/**
 * @file
 * On-chip, structure-specific power meters.
 *
 * The paper's central architectural recommendation: "Expose on-chip
 * power meters to the community ... and when possible structure
 * specific power meters for cores, caches, and other structures"
 * (Conclusion, and Section 1). The processors of the study keep
 * their power sensors private to the Turbo governor; this module
 * implements the interface the paper asks for, in the style Intel
 * later shipped as RAPL: free-running 32-bit energy counters per
 * power domain, in fixed energy units, that software samples and
 * differences.
 *
 * The counters deliberately reproduce the awkward properties of the
 * real MSRs — fixed-point energy units, 32-bit wraparound, and a
 * bounded update rate — so downstream tooling built on them handles
 * the same issues real tooling must.
 */

#ifndef LHR_POWER_METERS_HH
#define LHR_POWER_METERS_HH

#include <array>
#include <cstdint>

#include "power/chip_power.hh"

namespace lhr
{

/** Power domains with dedicated energy counters. */
enum class MeterDomain
{
    Package,  ///< whole chip
    Cores,    ///< all cores (dynamic + their leakage share)
    Llc,      ///< last-level cache
    Uncore    ///< memory controller, interconnect, IO, GPU
};

/** Number of metered domains. */
constexpr size_t meterDomainCount = 4;

/** Printable domain name. */
const char *meterDomainName(MeterDomain domain);

/**
 * A bank of free-running energy counters, one per domain.
 *
 * Energy accumulates in fixed units (default 2^-16 J, the RAPL
 * convention) into 32-bit registers that wrap. energyBetween()
 * implements the wrap-aware differencing software must perform.
 */
class StructureMeters
{
  public:
    /** @param energy_unit_j joules per counter increment */
    explicit StructureMeters(double energy_unit_j = 1.0 / 65536.0);

    /**
     * Accumulate the energy of running at a power breakdown for an
     * interval. Leakage is attributed to the cores domain (it is
     * physically in the cores and LLC arrays).
     */
    void deposit(const PowerBreakdown &power, double dt_sec);

    /** Raw 32-bit counter value of a domain (wraps). */
    uint32_t raw(MeterDomain domain) const;

    /** Joules per counter increment. */
    double energyUnitJ() const { return unitJ; }

    /**
     * Total accumulated energy of a domain in joules, as an
     * unwrapped 64-bit quantity (what a kernel driver maintains by
     * sampling raw() often enough).
     */
    double energyJ(MeterDomain domain) const;

    /**
     * Wrap-aware energy difference between two raw readings taken
     * `after` no more than one wrap apart.
     */
    double energyBetween(uint32_t before, uint32_t after) const;

    /**
     * Average power over an interval from two raw readings.
     * panic()s on a non-positive interval.
     */
    double averagePowerW(uint32_t before, uint32_t after,
                         double dt_sec) const;

  private:
    double unitJ;
    std::array<uint64_t, meterDomainCount> units; ///< unwrapped
    std::array<double, meterDomainCount> fractional;
};

} // namespace lhr

#endif // LHR_POWER_METERS_HH
