/**
 * @file
 * Turbo Boost governor (paper section 3.6).
 *
 * On Nehalem parts, when the BIOS clock is at its stock (highest)
 * setting and Turbo is enabled, all active cores may run one step
 * (133MHz) above stock; when only one core is active it may run two
 * steps above — both subject to power, current and temperature
 * headroom, which the real chips check with the on-chip sensors the
 * paper asks Intel to expose.
 */

#ifndef LHR_POWER_TURBO_HH
#define LHR_POWER_TURBO_HH

#include <functional>

#include "machine/processor.hh"

namespace lhr
{

/**
 * Grants a boosted clock to a configuration given a way to estimate
 * package power at a candidate clock.
 */
class TurboGovernor
{
  public:
    /**
     * Decide the operating clock.
     *
     * @param cfg the machine configuration
     * @param active_cores cores with running threads
     * @param power_at callback estimating package power (W) at a
     *                 candidate clock (GHz)
     * @param junction_at callback estimating junction temperature
     *                    (C) at a candidate clock
     * @return granted clock in GHz (== cfg.clockGhz when no boost)
     */
    static double grant(const MachineConfig &cfg, int active_cores,
                        const std::function<double(double)> &power_at,
                        const std::function<double(double)> &junction_at);

    /**
     * Maximum boost steps for a given active-core count on the
     * paper's Nehalem parts (2 with one active core, 1 otherwise).
     */
    static int maxSteps(int active_cores);

    /**
     * Per-generation variant: interpolates between the spec's
     * single-core and all-core step counts, losing one step per
     * additional active core (the published bin ladders). Reduces to
     * maxSteps(active_cores) on the paper parts.
     */
    static int maxSteps(const ProcessorSpec &spec, int active_cores);

    /** Power headroom: boost requires power below this TDP share. */
    static constexpr double tdpHeadroom = 0.95;

    /**
     * Tolerance for comparing clock frequencies in GHz. BIOS clock
     * settings are tens of MHz apart, so anything within a nanohertz
     * of the requested clock is "the same clock" — callers must use
     * this instead of exact float equality when deciding whether a
     * grant actually boosted.
     */
    static constexpr double clockToleranceGhz = 1e-9;
};

} // namespace lhr

#endif // LHR_POWER_TURBO_HH
