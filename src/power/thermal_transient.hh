/**
 * @file
 * Thermal transients and thermally-driven throttling.
 *
 * The steady-state thermal model in power/chip_power answers "where
 * does the junction settle"; the Turbo analysis (paper §3.6) also
 * depends on *when* it gets there: boost is granted while
 * temperature headroom lasts and withdrawn when the package heats
 * through its thermal time constant. ThermalTransient integrates
 * the junction RC dynamics over a power trace; ThermalThrottle
 * implements the resulting boost-then-throttle behaviour real
 * Nehalems exhibit on sustained single-core loads.
 */

#ifndef LHR_POWER_THERMAL_TRANSIENT_HH
#define LHR_POWER_THERMAL_TRANSIENT_HH

#include <functional>

#include "power/chip_power.hh"

namespace lhr
{

/** First-order RC junction temperature integrator. */
class ThermalTransient
{
  public:
    /**
     * @param spec the processor (sets thermal resistance)
     * @param time_constant_sec junction+heatsink RC constant
     */
    explicit ThermalTransient(const ProcessorSpec &spec,
                              double time_constant_sec = 12.0);

    /**
     * Advance by dt at a package power; returns the new junction
     * temperature.
     */
    double step(double power_w, double dt_sec);

    double junctionC() const { return temperature; }

    /** Reset to ambient. */
    void reset();

    /** Time to come within 5% of a step's steady state. */
    double settleTimeSec() const { return 3.0 * tau; }

  private:
    ThermalModel steadyState;
    double tau;
    double temperature;
};

/**
 * Thermally-aware Turbo: grants boost steps while the transient
 * junction stays below the throttle point, and withdraws them as the
 * package heats — the time-domain version of TurboGovernor.
 */
class ThermalThrottle
{
  public:
    ThermalThrottle(const MachineConfig &cfg, int boost_steps,
                    double time_constant_sec = 12.0);

    /**
     * Advance one interval: given a power-at-clock callback, pick
     * the clock for this interval (boosted while cool), integrate
     * temperature, and return the granted clock.
     */
    double step(const std::function<double(double)> &power_at,
                double dt_sec);

    double junctionC() const { return thermal.junctionC(); }
    int currentSteps() const { return steps; }

    /** Hysteresis: re-boost only after cooling below this margin. */
    static constexpr double rearmMarginC = 5.0;

  private:
    MachineConfig config;
    int maxSteps;
    int steps;
    ThermalTransient thermal;
};

} // namespace lhr

#endif // LHR_POWER_THERMAL_TRANSIENT_HH
