/**
 * @file
 * Structure-level chip power model.
 *
 * Chip power is composed of per-core dynamic power
 * (activity · C_eff · V² · f), per-package leakage (technology- and
 * voltage-dependent, thermally coupled), LLC power, and uncore power
 * (memory controller, FSB/QPI/DMI, and — on Clarkdale/Pineview — the
 * GPU sharing the package). Disabled cores are clock- and (on
 * Nehalem) power-gated; enabled-but-idle cores draw the
 * microarchitecture's idle fraction.
 *
 * These terms are what produce the paper's power findings: TDP
 * overstating measured power (Figure 2), the wide benchmark power
 * range on i7/i5 (Section 2.5), the super-linear power cost of clock
 * on 45nm parts versus the flat i5 curve (Finding 3), the die-shrink
 * power halving (Findings 4-5), and the Turbo Boost premium
 * (Finding 8).
 */

#ifndef LHR_POWER_CHIP_POWER_HH
#define LHR_POWER_CHIP_POWER_HH

#include <vector>

#include "cpu/config_batch.hh"
#include "machine/processor.hh"
#include "util/arena.hh"

namespace lhr
{

/** Decomposed chip power in watts. */
struct PowerBreakdown
{
    double coreDynW;   ///< switching power of all cores
    double leakW;      ///< package leakage
    double llcW;       ///< last-level cache
    double uncoreW;    ///< memory controller, interconnect, GPU, IO
    double junctionC;  ///< steady-state junction temperature

    double total() const { return coreDynW + leakW + llcW + uncoreW; }
};

/**
 * SoA result of a batch power evaluation. Arrays are arena slices
 * (lane i = input lane i) valid until the arena resets. Each lane
 * holds exactly the PowerBreakdown compute() would return for that
 * operating point, bit for bit.
 */
struct PowerBatch
{
    size_t lanes = 0;

    double *coreDynW = nullptr;
    double *leakW = nullptr;
    double *llcW = nullptr;
    double *uncoreW = nullptr;
    double *junctionC = nullptr;
    double *totalW = nullptr; ///< sum of the four power terms

    PowerBreakdown breakdown(size_t lane) const
    {
        return PowerBreakdown{coreDynW[lane], leakW[lane], llcW[lane],
                              uncoreW[lane], junctionC[lane]};
    }
};

/**
 * Switching-activity factor from achieved utilization: even a
 * stalled core clocks its front end; a saturated FP core toggles
 * most of its datapath.
 */
double switchingActivity(double utilization, double fp_share);

/** Steady-state thermal model of one package. */
class ThermalModel
{
  public:
    explicit ThermalModel(const ProcessorSpec &spec);

    /** Junction temperature at the given package power. */
    double junctionAt(double power_w) const;

    /** Leakage multiplier at a junction temperature. */
    static double leakageTempFactor(double junction_c);

    static constexpr double ambientC = 40.0;
    static constexpr double throttleJunctionC = 97.0;

  private:
    double thetaJaCperW; ///< junction-to-ambient thermal resistance
};

/**
 * The power model for one processor. compute() is pure; thermal
 * coupling between power and leakage is resolved by fixed-point
 * iteration internally.
 */
class ChipPowerModel
{
  public:
    explicit ChipPowerModel(const ProcessorSpec &spec);

    /**
     * Chip power for one operating point.
     *
     * @param cfg the machine configuration (enabled cores, etc.)
     * @param clock_ghz operating clock (may be Turbo-boosted)
     * @param core_activity switching activity of each enabled core
     *        (0 = idle); size must equal cfg.enabledCores
     * @param llc_activity 0..1 LLC access density
     * @param dram_gbs DRAM traffic for the uncore term
     */
    PowerBreakdown compute(const MachineConfig &cfg, double clock_ghz,
                           const std::vector<double> &core_activity,
                           double llc_activity, double dram_gbs) const;

    /**
     * Power for every lane of a ConfigBatch (config-axis batching:
     * one benchmark swept across configurations). Lane i is
     * bit-identical to compute(*batch.configs[i], clock[i], ...);
     * both paths share the per-lane implementation.
     *
     * @param clock_ghz per-lane clocks; nullptr = batch.clockGhz
     * @param core_activity flat ragged activity rows; lane i's
     *        enabled cores at [activity_offset[i], activity_offset[i+1])
     * @param activity_offset batch.size() + 1 entries
     * @param llc_activity, dram_gbs one entry per lane
     */
    PowerBatch computeBatch(const ConfigBatch &batch,
                            const double *clock_ghz,
                            const double *core_activity,
                            const size_t *activity_offset,
                            const double *llc_activity,
                            const double *dram_gbs, Arena &arena) const;

    /**
     * Power for one configuration across many operating points
     * (phase-axis batching: the runner's 64 workload phases at a
     * fixed clock). core_activity is a dense lanes x cfg.enabledCores
     * row-major matrix.
     */
    PowerBatch computeBatch(const MachineConfig &cfg, double clock_ghz,
                            const double *core_activity,
                            const double *llc_activity,
                            const double *dram_gbs, size_t lanes,
                            Arena &arena) const;

    const ThermalModel &thermal() const { return thermalModel; }

    /** Calibrated leakage per million transistors at 130nm/Vnom. */
    static constexpr double leakPerMtranW130 = 0.007;

  private:
    /**
     * The one true per-operating-point body shared by compute() and
     * both computeBatch() overloads; the scalar/batch bit-identity
     * contract rests on this sharing.
     */
    PowerBreakdown computeOne(const MachineConfig &cfg, double clock_ghz,
                              const double *core_activity,
                              int activity_count, double llc_activity,
                              double dram_gbs) const;

    /** Arena-allocate the result arrays of one batch. */
    static PowerBatch allocBatch(size_t lanes, Arena &arena);

    const ProcessorSpec &processor;
    ThermalModel thermalModel;
};

} // namespace lhr

#endif // LHR_POWER_CHIP_POWER_HH
