/**
 * @file
 * Structure-level chip power model.
 *
 * Chip power is composed of per-core dynamic power
 * (activity · C_eff · V² · f), per-package leakage (technology- and
 * voltage-dependent, thermally coupled), LLC power, and uncore power
 * (memory controller, FSB/QPI/DMI, and — on Clarkdale/Pineview — the
 * GPU sharing the package). Disabled cores are clock- and (on
 * Nehalem) power-gated; enabled-but-idle cores draw the
 * microarchitecture's idle fraction.
 *
 * These terms are what produce the paper's power findings: TDP
 * overstating measured power (Figure 2), the wide benchmark power
 * range on i7/i5 (Section 2.5), the super-linear power cost of clock
 * on 45nm parts versus the flat i5 curve (Finding 3), the die-shrink
 * power halving (Findings 4-5), and the Turbo Boost premium
 * (Finding 8).
 */

#ifndef LHR_POWER_CHIP_POWER_HH
#define LHR_POWER_CHIP_POWER_HH

#include <vector>

#include "machine/processor.hh"

namespace lhr
{

/** Decomposed chip power in watts. */
struct PowerBreakdown
{
    double coreDynW;   ///< switching power of all cores
    double leakW;      ///< package leakage
    double llcW;       ///< last-level cache
    double uncoreW;    ///< memory controller, interconnect, GPU, IO
    double junctionC;  ///< steady-state junction temperature

    double total() const { return coreDynW + leakW + llcW + uncoreW; }
};

/**
 * Switching-activity factor from achieved utilization: even a
 * stalled core clocks its front end; a saturated FP core toggles
 * most of its datapath.
 */
double switchingActivity(double utilization, double fp_share);

/** Steady-state thermal model of one package. */
class ThermalModel
{
  public:
    explicit ThermalModel(const ProcessorSpec &spec);

    /** Junction temperature at the given package power. */
    double junctionAt(double power_w) const;

    /** Leakage multiplier at a junction temperature. */
    static double leakageTempFactor(double junction_c);

    static constexpr double ambientC = 40.0;
    static constexpr double throttleJunctionC = 97.0;

  private:
    double thetaJaCperW; ///< junction-to-ambient thermal resistance
};

/**
 * The power model for one processor. compute() is pure; thermal
 * coupling between power and leakage is resolved by fixed-point
 * iteration internally.
 */
class ChipPowerModel
{
  public:
    explicit ChipPowerModel(const ProcessorSpec &spec);

    /**
     * Chip power for one operating point.
     *
     * @param cfg the machine configuration (enabled cores, etc.)
     * @param clock_ghz operating clock (may be Turbo-boosted)
     * @param core_activity switching activity of each enabled core
     *        (0 = idle); size must equal cfg.enabledCores
     * @param llc_activity 0..1 LLC access density
     * @param dram_gbs DRAM traffic for the uncore term
     */
    PowerBreakdown compute(const MachineConfig &cfg, double clock_ghz,
                           const std::vector<double> &core_activity,
                           double llc_activity, double dram_gbs) const;

    const ThermalModel &thermal() const { return thermalModel; }

    /** Calibrated leakage per million transistors at 130nm/Vnom. */
    static constexpr double leakPerMtranW130 = 0.007;

  private:
    const ProcessorSpec &processor;
    ThermalModel thermalModel;
};

} // namespace lhr

#endif // LHR_POWER_CHIP_POWER_HH
