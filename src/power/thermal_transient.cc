#include "power/thermal_transient.hh"

#include <cmath>

#include "util/logging.hh"

namespace lhr
{

ThermalTransient::ThermalTransient(const ProcessorSpec &spec,
                                   double time_constant_sec)
    : steadyState(spec), tau(time_constant_sec),
      temperature(ThermalModel::ambientC)
{
    if (tau <= 0.0)
        panic("ThermalTransient: non-positive time constant");
}

double
ThermalTransient::step(double power_w, double dt_sec)
{
    if (dt_sec < 0.0 || power_w < 0.0)
        panic("ThermalTransient::step: negative inputs");
    const double target = steadyState.junctionAt(power_w);
    const double alpha = 1.0 - std::exp(-dt_sec / tau);
    temperature += (target - temperature) * alpha;
    return temperature;
}

void
ThermalTransient::reset()
{
    temperature = ThermalModel::ambientC;
}

ThermalThrottle::ThermalThrottle(const MachineConfig &cfg,
                                 int boost_steps,
                                 double time_constant_sec)
    : config(cfg), maxSteps(boost_steps), steps(boost_steps),
      thermal(*cfg.spec, time_constant_sec)
{
    if (boost_steps < 0)
        panic("ThermalThrottle: negative boost steps");
    if (!cfg.spec->hasTurbo && boost_steps > 0)
        panic("ThermalThrottle: part has no Turbo Boost");
}

double
ThermalThrottle::step(const std::function<double(double)> &power_at,
                      double dt_sec)
{
    const double clock = config.clockGhz +
        steps * config.spec->turboStepGhz;
    thermal.step(power_at(clock), dt_sec);

    if (thermal.junctionC() >= ThermalModel::throttleJunctionC &&
        steps > 0) {
        --steps; // shed a boost step
    } else if (steps < maxSteps &&
               thermal.junctionC() <
                   ThermalModel::throttleJunctionC - rearmMarginC) {
        ++steps; // cool again: re-arm
    }
    return clock;
}

} // namespace lhr
