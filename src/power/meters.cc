#include "power/meters.hh"

#include <cmath>

#include "util/logging.hh"

namespace lhr
{

const char *
meterDomainName(MeterDomain domain)
{
    switch (domain) {
      case MeterDomain::Package: return "package";
      case MeterDomain::Cores:   return "cores";
      case MeterDomain::Llc:     return "llc";
      case MeterDomain::Uncore:  return "uncore";
    }
    panic("meterDomainName: unknown domain");
}

StructureMeters::StructureMeters(double energy_unit_j)
    : unitJ(energy_unit_j)
{
    if (unitJ <= 0.0)
        panic("StructureMeters: non-positive energy unit");
    units.fill(0);
    fractional.fill(0.0);
}

void
StructureMeters::deposit(const PowerBreakdown &power, double dt_sec)
{
    if (dt_sec < 0.0)
        panic("StructureMeters::deposit: negative interval");

    auto add = [&](MeterDomain domain, double watts) {
        const auto idx = static_cast<size_t>(domain);
        const double energy = watts * dt_sec / unitJ + fractional[idx];
        const double whole = std::floor(energy);
        units[idx] += static_cast<uint64_t>(whole);
        fractional[idx] = energy - whole;
    };

    add(MeterDomain::Package, power.total());
    add(MeterDomain::Cores, power.coreDynW + power.leakW);
    add(MeterDomain::Llc, power.llcW);
    add(MeterDomain::Uncore, power.uncoreW);
}

uint32_t
StructureMeters::raw(MeterDomain domain) const
{
    return static_cast<uint32_t>(units[static_cast<size_t>(domain)]);
}

double
StructureMeters::energyJ(MeterDomain domain) const
{
    return units[static_cast<size_t>(domain)] * unitJ;
}

double
StructureMeters::energyBetween(uint32_t before, uint32_t after) const
{
    // Unsigned subtraction handles a single wrap correctly.
    return static_cast<uint32_t>(after - before) * unitJ;
}

double
StructureMeters::averagePowerW(uint32_t before, uint32_t after,
                               double dt_sec) const
{
    if (dt_sec <= 0.0)
        panic("StructureMeters::averagePowerW: non-positive interval");
    return energyBetween(before, after) / dt_sec;
}

} // namespace lhr
