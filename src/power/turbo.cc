#include "power/turbo.hh"

#include <algorithm>
#include <cmath>

#include "power/chip_power.hh"
#include "util/logging.hh"

namespace lhr
{

int
TurboGovernor::maxSteps(int active_cores)
{
    return active_cores <= 1 ? 2 : 1;
}

int
TurboGovernor::maxSteps(const ProcessorSpec &spec, int active_cores)
{
    if (active_cores <= 1)
        return spec.turboSteps1C;
    return std::max(spec.turboStepsAllC,
                    spec.turboSteps1C - (active_cores - 1));
}

double
TurboGovernor::grant(const MachineConfig &cfg, int active_cores,
                     const std::function<double(double)> &power_at,
                     const std::function<double(double)> &junction_at)
{
    if (!cfg.spec->hasTurbo || !cfg.turboEnabled)
        return cfg.clockGhz;
    // Turbo engages only at the highest clock setting.
    if (cfg.clockGhz < cfg.spec->stockClockGhz - clockToleranceGhz)
        return cfg.clockGhz;
    if (active_cores < 1)
        panic("TurboGovernor: no active cores");

    const double step = cfg.spec->turboStepGhz;
    for (int steps = maxSteps(*cfg.spec, active_cores); steps > 0;
         --steps) {
        const double candidate = cfg.clockGhz + steps * step;
        const bool powerOk =
            power_at(candidate) <= tdpHeadroom * cfg.spec->tdpW;
        const bool thermalOk =
            junction_at(candidate) < ThermalModel::throttleJunctionC;
        if (powerOk && thermalOk)
            return candidate;
    }
    return cfg.clockGhz;
}

} // namespace lhr
