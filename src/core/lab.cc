#include "core/lab.hh"

#include <set>
#include <utility>

#include "util/logging.hh"

namespace lhr
{

Lab::Lab(uint64_t seed)
    : labSeed(seed), experimentRunner(seed)
{
}

const ReferenceSet &
Lab::reference()
{
    if (!referenceSet)
        referenceSet = std::make_unique<ReferenceSet>(experimentRunner);
    return *referenceSet;
}

const Measurement &
Lab::measure(const MachineConfig &cfg, const Benchmark &bench)
{
    return experimentRunner.measure(cfg, bench);
}

BenchResult
Lab::result(const MachineConfig &cfg, const Benchmark &bench)
{
    return benchResult(experimentRunner, reference(), cfg, bench);
}

ConfigAggregate
Lab::aggregate(const MachineConfig &cfg)
{
    return aggregateConfig(experimentRunner, reference(), cfg);
}

SweepReport
Lab::sweep(std::vector<MachineConfig> configs,
           std::vector<Benchmark> benchmarks, SweepOptions options)
{
    SweepEngine engine(experimentRunner, options);
    return engine.run(std::move(configs), std::move(benchmarks));
}

SweepReport
Lab::sweepFullGrid(SweepOptions options)
{
    SweepEngine engine(experimentRunner, options);
    return engine.runFullGrid();
}

SweepReport
Lab::resumeSweep(const ResultStore &prior,
                 std::vector<MachineConfig> configs,
                 std::vector<Benchmark> benchmarks,
                 SweepOptions options)
{
    options.warmStart = &prior;
    return sweep(std::move(configs), std::move(benchmarks), options);
}

void
Lab::prewarm(const std::vector<MachineConfig> &configs,
             SweepOptions options)
{
    // The reference machines back almost every normalized analysis,
    // so warm them alongside the requested set (deduplicated: the
    // stock reference configs usually appear in the caller's grid).
    std::vector<MachineConfig> grid = configs;
    std::set<std::string> seen;
    for (const auto &cfg : grid)
        seen.insert(cfg.label());
    for (const auto &id : ReferenceSet::referenceProcessorIds()) {
        MachineConfig cfg = stockConfig(processorById(id));
        if (seen.insert(cfg.label()).second)
            grid.push_back(cfg);
    }
    SweepEngine engine(experimentRunner, options);
    // Prewarm is run for its cache side effect, but the report is
    // still triaged: a cell that failed here will fail again (or
    // silently re-measure) inside a study's serial loop, and that is
    // worth a warning now instead of a mystery later.
    const SweepReport report = engine.run(grid, allBenchmarks());
    if (const size_t failed = report.failedCells(); failed > 0)
        warn(msgOf("prewarm: ", failed, " of ", report.experiments(),
                   " cells failed; dependent studies will re-measure "
                   "or degrade"));
}

} // namespace lhr
