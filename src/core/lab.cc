#include "core/lab.hh"

namespace lhr
{

Lab::Lab(uint64_t seed)
    : experimentRunner(seed)
{
}

const ReferenceSet &
Lab::reference()
{
    if (!referenceSet)
        referenceSet = std::make_unique<ReferenceSet>(experimentRunner);
    return *referenceSet;
}

const Measurement &
Lab::measure(const MachineConfig &cfg, const Benchmark &bench)
{
    return experimentRunner.measure(cfg, bench);
}

BenchResult
Lab::result(const MachineConfig &cfg, const Benchmark &bench)
{
    return benchResult(experimentRunner, reference(), cfg, bench);
}

ConfigAggregate
Lab::aggregate(const MachineConfig &cfg)
{
    return aggregateConfig(experimentRunner, reference(), cfg);
}

} // namespace lhr
