/**
 * @file
 * lhr::Lab — the public facade of lhrlab.
 *
 * A Lab owns an ExperimentRunner (the measurement harness) and the
 * ReferenceSet (the four-machine normalization baseline), and exposes
 * the operations a user needs to reproduce the paper or run their own
 * studies:
 *
 *   lhr::Lab lab;
 *   auto cfg = lhr::stockConfig(lhr::processorById("i7 (45)"));
 *   auto agg = lab.aggregate(cfg);   // Table 4 row
 *   auto m = lab.measure(cfg, lhr::benchmarkByName("mcf"));
 *
 * Everything is deterministic for a given seed.
 */

#ifndef LHR_CORE_LAB_HH
#define LHR_CORE_LAB_HH

#include <memory>

#include "analysis/features.hh"
#include "analysis/historical.hh"
#include "analysis/pareto_study.hh"
#include "harness/aggregate.hh"
#include "harness/reference.hh"
#include "harness/runner.hh"
#include "sweep/sweep.hh"
#include "util/env.hh"

namespace lhr
{

/** The measurement laboratory: harness + reference + analyses. */
class Lab
{
  public:
    explicit Lab(uint64_t seed = defaultSeed());

    Lab(const Lab &) = delete;
    Lab &operator=(const Lab &) = delete;

    /** The underlying experiment runner. */
    ExperimentRunner &runner() { return experimentRunner; }

    /** The seed this laboratory was constructed with. */
    uint64_t seed() const { return labSeed; }

    /** The four-machine reference set (built lazily). */
    const ReferenceSet &reference();

    /** Measure one benchmark on one configuration. */
    const Measurement &measure(const MachineConfig &cfg,
                               const Benchmark &bench);

    /** Reference-normalized result of one benchmark. */
    BenchResult result(const MachineConfig &cfg, const Benchmark &bench);

    /** Full Table 4-style aggregation of one configuration. */
    ConfigAggregate aggregate(const MachineConfig &cfg);

    /**
     * Measure a configuration x benchmark grid on the parallel
     * sweep engine (see sweep/sweep.hh). Bit-identical to measuring
     * the same grid serially; results land in the runner's cache,
     * so every later measure()/aggregate() call on the grid is a
     * cache hit.
     */
    SweepReport sweep(std::vector<MachineConfig> configs,
                      std::vector<Benchmark> benchmarks,
                      SweepOptions options = {});

    /** Parallel sweep of the full 45 x 61 experimental grid. */
    SweepReport sweepFullGrid(SweepOptions options = {});

    /**
     * Sweep a grid, warm-starting from a prior store (an earlier
     * checkpoint or completed shard): cells already in `prior` are
     * pre-seeded into the runner's memo cache and come back as
     * cache hits instead of re-measuring. `prior` must outlive the
     * call; equivalent to setting SweepOptions::warmStart.
     */
    SweepReport resumeSweep(const ResultStore &prior,
                            std::vector<MachineConfig> configs,
                            std::vector<Benchmark> benchmarks,
                            SweepOptions options = {});

    /**
     * Warm the measurement cache for a configuration set across all
     * benchmarks (plus the four reference machines, which nearly
     * every analysis normalizes against). Drivers call this once up
     * front so their serial result loops run entirely from cache.
     */
    void prewarm(const std::vector<MachineConfig> &configs,
                 SweepOptions options = {});

  private:
    uint64_t labSeed;
    ExperimentRunner experimentRunner;
    std::unique_ptr<ReferenceSet> referenceSet;
};

} // namespace lhr

#endif // LHR_CORE_LAB_HH
