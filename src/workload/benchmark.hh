/**
 * @file
 * Benchmark descriptors: the 61 workloads of the study.
 *
 * The paper draws its workloads from SPEC CINT2006, SPEC CFP2006,
 * PARSEC, SPECjvm98, DaCapo 06-10-MR2, DaCapo 9.12 and pjbb2005, and
 * partitions them into four equally-weighted groups (paper Table 1).
 * We cannot run the real binaries, so each benchmark is described by
 * the execution characteristics the interval performance model
 * consumes: exploitable ILP, memory access rate and reuse curve,
 * branch behaviour, floating-point share, threading and scaling
 * behaviour, and — for Java — how much work the managed runtime
 * itself contributes. Reference times come from Table 1 verbatim.
 */

#ifndef LHR_WORKLOAD_BENCHMARK_HH
#define LHR_WORKLOAD_BENCHMARK_HH

#include <string>
#include <vector>

#include "cache/hierarchy.hh"

namespace lhr
{

/** The four equally-weighted workload groups. */
enum class Group
{
    NativeNonScalable,
    NativeScalable,
    JavaNonScalable,
    JavaScalable
};

/** All groups, in the paper's order. */
const std::vector<Group> &allGroups();

/** Printable group name as used in the paper's figures. */
std::string groupName(Group group);

/** Benchmark suite of origin (paper Table 1 "Src" column). */
enum class Suite
{
    SpecInt2006,  // SI
    SpecFp2006,   // SF
    Parsec,       // PA
    SpecJvm98,    // SJ
    DaCapo06,     // D6
    DaCapo09,     // D9
    Pjbb2005      // JB
};

/** Printable suite name. */
std::string suiteName(Suite suite);

/** Implementation language class. */
enum class Language
{
    Native,
    Java
};

/** One workload and everything the models need to know about it. */
struct Benchmark
{
    std::string name;
    Suite suite;
    Group group;
    double refTimeSec;        ///< paper Table 1 reference running time
    std::string description;  ///< paper Table 1 description

    // -- Computation characteristics ---------------------------------
    double ilp;               ///< exploitable instruction parallelism
    double memAccessPerInstr; ///< L1D accesses per instruction
    MissCurve miss;           ///< capacity miss curve
    double branchMispKi;      ///< mispredictions per kilo-instruction
    double fpShare;           ///< fraction of FP operations

    // -- Threading and scaling ---------------------------------------
    /**
     * Number of application threads; 0 means the benchmark spawns
     * one thread per available hardware context (PARSEC and the
     * scalable DaCapo benchmarks do this).
     */
    int appThreads;
    double parallelFraction;  ///< Amdahl parallel fraction

    // -- Managed-runtime characteristics (0 for native codes) --------
    /**
     * Fraction of total machine work executed by JVM service threads
     * (JIT compilation, GC, profiling). This work runs concurrently
     * with the application when spare hardware contexts exist.
     */
    double jvmServiceFraction;
    /**
     * Speedup available from moving GC/JIT activity off the
     * application's core: reduced cache and DTLB displacement
     * (the paper's db/DTLB observation, Finding W1).
     */
    double gcInterferenceRelief;

    /** Amplitude of power phase behaviour (0 = flat, 0.3 = spiky). */
    double phaseVariability;

    /** Language class implied by the group. */
    Language language() const;

    /** True for the two scalable groups. */
    bool scalable() const;

    /**
     * Total work in abstract instructions (billions), derived from
     * the reference time at a nominal 2 GIPS reference rate.
     */
    double instructionsB() const;

    /**
     * Per-suite prescription for repetitions: SPEC CPU prescribes 3,
     * PARSEC uses 5, Java uses 20 invocations (paper section 2).
     */
    int prescribedInvocations() const;
};

/** The full 61-benchmark database in Table 1 order. */
const std::vector<Benchmark> &allBenchmarks();

/** All benchmarks of one group, in Table 1 order. */
std::vector<const Benchmark *> benchmarksInGroup(Group group);

/** Look up one benchmark by name; panic()s when unknown. */
const Benchmark &benchmarkByName(const std::string &name);

/** Look up one benchmark by name; nullptr when unknown. */
const Benchmark *findBenchmark(const std::string &name);

} // namespace lhr

#endif // LHR_WORKLOAD_BENCHMARK_HH
