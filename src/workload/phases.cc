#include "workload/phases.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lhr
{

PhaseModel::PhaseModel(const Benchmark &bench, uint64_t seed)
    : benchmark(bench), rng(seed)
{
}

std::vector<PhasePoint>
PhaseModel::generate(int count)
{
    if (count < 1)
        panic("PhaseModel::generate: need at least one phase");

    const double amplitude = benchmark.phaseVariability;
    const bool java = benchmark.language() == Language::Java;

    // Two-state Markov walk: compute-leaning phases run hotter and
    // touch memory less; memory-leaning phases are the reverse.
    // Expected dwell time in each state is a few phases.
    bool memoryLeaning = rng.uniform() < 0.5;
    const double switchProb = 0.25;

    std::vector<PhasePoint> phases;
    phases.reserve(count);
    const int gcOffset =
        java ? static_cast<int>(rng.below(gcPeriodPhases)) : 0;

    for (int k = 0; k < count; ++k) {
        if (rng.uniform() < switchProb)
            memoryLeaning = !memoryLeaning;

        const double lean = memoryLeaning ? -1.0 : 1.0;
        const double jitter = 0.3 * rng.gaussian();
        PhasePoint pt;
        pt.activityMult = 1.0 + amplitude * (lean + jitter);
        pt.memoryMult = 1.0 - amplitude * (lean - jitter);
        pt.gcBurst = false;

        if (java && (k + gcOffset) % gcPeriodPhases == 0) {
            // Collector burst: busy datapath, heavy memory streaming.
            pt.activityMult *= gcActivityKick;
            pt.memoryMult *= gcMemoryKick;
            pt.gcBurst = true;
        }

        pt.activityMult = std::clamp(pt.activityMult, 0.3, 2.0);
        pt.memoryMult = std::clamp(pt.memoryMult, 0.1, 2.5);
        phases.push_back(pt);
    }

    // Re-centre so phase behaviour cannot bias averages.
    double actSum = 0.0, memSum = 0.0;
    for (const auto &pt : phases) {
        actSum += pt.activityMult;
        memSum += pt.memoryMult;
    }
    const double actScale = count / actSum;
    const double memScale = count / memSum;
    for (auto &pt : phases) {
        pt.activityMult *= actScale;
        pt.memoryMult *= memScale;
    }
    return phases;
}

} // namespace lhr
