#include "workload/compiler.hh"

#include <algorithm>
#include <cmath>

#include "util/hash.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace lhr
{

const std::vector<NativeCompiler> &
allCompilers()
{
    static const std::vector<NativeCompiler> compilers = {
        NativeCompiler::Icc11, NativeCompiler::Gcc441,
    };
    return compilers;
}

namespace
{

const CompilerProfile profiles[] = {
    // icc: stronger scalar optimization and vectorization,
    // especially on FP codes — but unreliable on PARSEC's pthreads
    // codes (the paper could not use it there).
    {NativeCompiler::Icc11, "icc 11.1", "-o3",
     1.05, 1.12, 0.95, 0.04, 0.6},
    // gcc 4.4.1 -O3 is the baseline code quality.
    {NativeCompiler::Gcc441, "gcc 4.4.1", "-O3",
     1.00, 1.00, 1.00, 0.03, 0.0},
};

} // namespace

const CompilerProfile &
compilerProfile(NativeCompiler compiler)
{
    for (const auto &profile : profiles)
        if (profile.compiler == compiler)
            return profile;
    panic("compilerProfile: unknown compiler");
}

std::optional<Benchmark>
compileBenchmark(const Benchmark &bench, NativeCompiler compiler)
{
    if (bench.language() == Language::Java) {
        panic(msgOf("compileBenchmark: ", bench.name,
                    " is a Java benchmark"));
    }

    const CompilerProfile &profile = compilerProfile(compiler);
    Rng rng(fnv1a(profile.name + "/" + bench.name));

    // Miscompilation of pthreads-heavy codes (deterministic per
    // benchmark): the paper hit this with icc on PARSEC.
    if (bench.suite == Suite::Parsec &&
        rng.uniform() < profile.parsecMiscompileRate) {
        return std::nullopt;
    }

    const double quality = bench.fpShare * profile.fpCodeQuality +
        (1.0 - bench.fpShare) * profile.intCodeQuality;
    const double spread = 1.0 +
        profile.perBenchSpread * std::clamp(rng.gaussian(), -2.0, 2.0);

    Benchmark built = bench;
    built.name = bench.name + " [" + profile.name + "]";
    built.ilp = std::clamp(bench.ilp * quality * spread, 0.5, 4.0);
    built.branchMispKi = bench.branchMispKi * profile.branchQuality;
    return built;
}

} // namespace lhr
