#include "workload/benchmark.hh"

#include "util/logging.hh"

namespace lhr
{

const std::vector<Group> &
allGroups()
{
    static const std::vector<Group> groups = {
        Group::NativeNonScalable,
        Group::NativeScalable,
        Group::JavaNonScalable,
        Group::JavaScalable,
    };
    return groups;
}

std::string
groupName(Group group)
{
    switch (group) {
      case Group::NativeNonScalable: return "Native Non-scalable";
      case Group::NativeScalable:    return "Native Scalable";
      case Group::JavaNonScalable:   return "Java Non-scalable";
      case Group::JavaScalable:      return "Java Scalable";
    }
    panic("groupName: unknown group");
}

std::string
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::SpecInt2006: return "SPEC CINT2006";
      case Suite::SpecFp2006:  return "SPEC CFP2006";
      case Suite::Parsec:      return "PARSEC";
      case Suite::SpecJvm98:   return "SPECjvm";
      case Suite::DaCapo06:    return "DaCapo 06-10-MR2";
      case Suite::DaCapo09:    return "DaCapo 9.12";
      case Suite::Pjbb2005:    return "pjbb2005";
    }
    panic("suiteName: unknown suite");
}

Language
Benchmark::language() const
{
    return (group == Group::JavaNonScalable ||
            group == Group::JavaScalable)
        ? Language::Java : Language::Native;
}

bool
Benchmark::scalable() const
{
    return group == Group::NativeScalable || group == Group::JavaScalable;
}

double
Benchmark::instructionsB() const
{
    return refTimeSec * 2.0;
}

int
Benchmark::prescribedInvocations() const
{
    if (language() == Language::Java)
        return 20;
    return suite == Suite::Parsec ? 5 : 3;
}

namespace
{

constexpr Group NN = Group::NativeNonScalable;
constexpr Group NS = Group::NativeScalable;
constexpr Group JN = Group::JavaNonScalable;
constexpr Group JS = Group::JavaScalable;

// Characteristics are seeded from the paper's Table 1 (reference
// times, descriptions, groups) and from published characterizations
// of the suites: SPEC CPU2006 miss rates and footprints, PARSEC
// working sets and scalability (Bienia et al.), SPECjvm98's small
// footprints and DaCapo's rich heap behaviour (Blackburn et al.).
//
// Column legend, in struct order:
//   ilp  mapi  {mpki32, beta, wsKb, coldMpki}  misp/Ki  fp
//   thr  pfrac  jvmSvc  gcRel  phase
const std::vector<Benchmark> database = {
    // ---- Native Non-scalable: SPEC CINT2006 -------------------------
    {"perlbench", Suite::SpecInt2006, NN, 1037,
     "Perl programming language",
     2.2, 0.35, {22, 0.55, 8000, 0.3}, 6.0, 0.00,
     1, 0.0, 0.0, 0.0, 0.08},
    {"bzip2", Suite::SpecInt2006, NN, 1563,
     "bzip2 compression",
     1.8, 0.32, {25, 0.50, 16000, 1.0}, 7.0, 0.00,
     1, 0.0, 0.0, 0.0, 0.06},
    {"gcc", Suite::SpecInt2006, NN, 851,
     "C optimizing compiler",
     1.9, 0.35, {28, 0.50, 32000, 1.5}, 7.0, 0.00,
     1, 0.0, 0.0, 0.0, 0.15},
    {"mcf", Suite::SpecInt2006, NN, 894,
     "Combinatorial opt / vehicle scheduling",
     1.3, 0.40, {65, 0.25, 1e6, 3.0}, 9.0, 0.00,
     1, 0.0, 0.0, 0.0, 0.05},
    {"gobmk", Suite::SpecInt2006, NN, 1113,
     "AI: Go game",
     1.7, 0.30, {12, 0.50, 4000, 0.5}, 11.0, 0.00,
     1, 0.0, 0.0, 0.0, 0.05},
    {"hmmer", Suite::SpecInt2006, NN, 1024,
     "Search a gene sequence database",
     2.8, 0.35, {4, 0.60, 512, 0.1}, 2.0, 0.00,
     1, 0.0, 0.0, 0.0, 0.03},
    {"sjeng", Suite::SpecInt2006, NN, 1315,
     "AI: tree search & pattern recognition",
     1.9, 0.30, {8, 0.50, 4000, 0.3}, 10.0, 0.00,
     1, 0.0, 0.0, 0.0, 0.04},
    {"libquantum", Suite::SpecInt2006, NN, 629,
     "Physics / quantum computing",
     2.4, 0.33, {30, 0.15, 1e6, 20.0}, 1.5, 0.00,
     1, 0.0, 0.0, 0.0, 0.03},
    {"h264ref", Suite::SpecInt2006, NN, 1533,
     "H.264/AVC video compression",
     2.6, 0.38, {12, 0.55, 4000, 0.5}, 4.0, 0.10,
     1, 0.0, 0.0, 0.0, 0.10},
    {"omnetpp", Suite::SpecInt2006, NN, 905,
     "Ethernet network simulation (OMNeT++)",
     1.4, 0.40, {35, 0.30, 1e6, 2.0}, 6.0, 0.00,
     1, 0.0, 0.0, 0.0, 0.04},
    {"astar", Suite::SpecInt2006, NN, 1154,
     "Portable 2D path-finding library",
     1.5, 0.38, {30, 0.35, 500000, 1.0}, 8.0, 0.00,
     1, 0.0, 0.0, 0.0, 0.05},
    {"xalancbmk", Suite::SpecInt2006, NN, 787,
     "XSLT processor for transforming XML",
     1.6, 0.40, {30, 0.40, 100000, 1.0}, 5.0, 0.00,
     1, 0.0, 0.0, 0.0, 0.06},

    // ---- Native Non-scalable: SPEC CFP2006 --------------------------
    {"gamess", Suite::SpecFp2006, NN, 3505,
     "Quantum chemical computations",
     3.0, 0.35, {6, 0.60, 2000, 0.2}, 1.5, 0.60,
     1, 0.0, 0.0, 0.0, 0.05},
    {"milc", Suite::SpecFp2006, NN, 640,
     "Physics / quantum chromodynamics (QCD)",
     2.0, 0.40, {35, 0.20, 1e6, 15.0}, 1.0, 0.60,
     1, 0.0, 0.0, 0.0, 0.04},
    {"zeusmp", Suite::SpecFp2006, NN, 1541,
     "Physics / magnetohydrodynamics (ZEUS-MP)",
     2.4, 0.36, {25, 0.35, 100000, 5.0}, 1.5, 0.60,
     1, 0.0, 0.0, 0.0, 0.04},
    {"gromacs", Suite::SpecFp2006, NN, 983,
     "Molecular dynamics simulation",
     2.8, 0.30, {7, 0.60, 1500, 0.3}, 2.0, 0.70,
     1, 0.0, 0.0, 0.0, 0.03},
    {"cactusADM", Suite::SpecFp2006, NN, 1994,
     "Cactus / BenchADM relativity kernels",
     2.2, 0.42, {25, 0.30, 1e6, 8.0}, 1.0, 0.70,
     1, 0.0, 0.0, 0.0, 0.03},
    {"leslie3d", Suite::SpecFp2006, NN, 1512,
     "Linear-eddy model 3D fluid dynamics",
     2.2, 0.40, {28, 0.30, 1e6, 10.0}, 1.0, 0.60,
     1, 0.0, 0.0, 0.0, 0.03},
    {"namd", Suite::SpecFp2006, NN, 1225,
     "Parallel simulation of biomolecular systems",
     3.0, 0.32, {5, 0.60, 1000, 0.2}, 2.0, 0.70,
     1, 0.0, 0.0, 0.0, 0.03},
    {"dealII", Suite::SpecFp2006, NN, 832,
     "PDEs with adaptive finite elements",
     2.4, 0.38, {15, 0.50, 16000, 0.5}, 3.0, 0.50,
     1, 0.0, 0.0, 0.0, 0.05},
    {"soplex", Suite::SpecFp2006, NN, 1024,
     "Simplex linear program solver",
     1.8, 0.40, {30, 0.35, 200000, 3.0}, 4.0, 0.40,
     1, 0.0, 0.0, 0.0, 0.05},
    {"povray", Suite::SpecFp2006, NN, 636,
     "Ray-tracer",
     2.4, 0.33, {5, 0.60, 800, 0.2}, 6.0, 0.50,
     1, 0.0, 0.0, 0.0, 0.04},
    {"calculix", Suite::SpecFp2006, NN, 1130,
     "Finite elements for 3D structures",
     2.6, 0.35, {10, 0.55, 6000, 0.4}, 3.0, 0.60,
     1, 0.0, 0.0, 0.0, 0.04},
    {"GemsFDTD", Suite::SpecFp2006, NN, 1648,
     "Maxwell equations in 3D, time domain",
     2.0, 0.42, {30, 0.25, 1e6, 12.0}, 1.0, 0.60,
     1, 0.0, 0.0, 0.0, 0.03},
    {"tonto", Suite::SpecFp2006, NN, 1439,
     "Quantum crystallography",
     2.5, 0.35, {10, 0.55, 4000, 0.4}, 3.0, 0.60,
     1, 0.0, 0.0, 0.0, 0.04},
    {"lbm", Suite::SpecFp2006, NN, 1298,
     "Lattice Boltzmann incompressible fluids",
     2.2, 0.38, {35, 0.15, 1e6, 22.0}, 0.5, 0.60,
     1, 0.0, 0.0, 0.0, 0.02},
    {"sphinx3", Suite::SpecFp2006, NN, 2007,
     "Speech recognition",
     2.2, 0.40, {25, 0.40, 50000, 2.0}, 3.0, 0.50,
     1, 0.0, 0.0, 0.0, 0.05},

    // ---- Native Scalable: PARSEC -------------------------------------
    {"blackscholes", Suite::Parsec, NS, 482,
     "Prices options with Black-Scholes PDE",
     2.8, 0.30, {3, 0.60, 512, 0.1}, 1.0, 0.70,
     0, 0.99, 0.0, 0.0, 0.03},
    {"bodytrack", Suite::Parsec, NS, 471,
     "Tracks a markerless human body",
     2.4, 0.34, {8, 0.50, 8000, 0.5}, 3.0, 0.50,
     0, 0.97, 0.0, 0.0, 0.08},
    {"canneal", Suite::Parsec, NS, 301,
     "Cache-aware simulated annealing of chip design",
     1.4, 0.42, {40, 0.25, 1e6, 6.0}, 5.0, 0.10,
     0, 0.90, 0.0, 0.0, 0.05},
    {"facesim", Suite::Parsec, NS, 1230,
     "Simulates human face motions",
     2.4, 0.38, {20, 0.35, 200000, 4.0}, 2.0, 0.60,
     0, 0.95, 0.0, 0.0, 0.05},
    {"ferret", Suite::Parsec, NS, 738,
     "Image search",
     2.2, 0.36, {15, 0.45, 30000, 1.5}, 4.0, 0.40,
     0, 0.96, 0.0, 0.0, 0.06},
    {"fluidanimate", Suite::Parsec, NS, 812,
     "SPH fluid dynamics for animation",
     2.8, 0.36, {12, 0.40, 100000, 3.0}, 1.5, 0.70,
     0, 0.97, 0.0, 0.0, 0.04},
    {"raytrace", Suite::Parsec, NS, 1970,
     "Physical simulation for visualization",
     2.4, 0.34, {12, 0.50, 30000, 1.0}, 4.0, 0.50,
     0, 0.95, 0.0, 0.0, 0.04},
    {"streamcluster", Suite::Parsec, NS, 629,
     "Online clustering of a data stream",
     2.0, 0.40, {30, 0.20, 1e6, 16.0}, 1.0, 0.40,
     0, 0.93, 0.0, 0.0, 0.03},
    {"swaptions", Suite::Parsec, NS, 612,
     "Prices swaptions, Heath-Jarrow-Morton",
     2.8, 0.30, {4, 0.60, 512, 0.1}, 2.0, 0.70,
     0, 0.99, 0.0, 0.0, 0.03},
    {"vips", Suite::Parsec, NS, 297,
     "Applies transformations to an image",
     2.4, 0.36, {10, 0.50, 16000, 1.0}, 3.0, 0.50,
     0, 0.96, 0.0, 0.0, 0.05},
    {"x264", Suite::Parsec, NS, 265,
     "MPEG-4 AVC / H.264 video encoder",
     2.6, 0.38, {10, 0.50, 16000, 1.5}, 4.0, 0.30,
     0, 0.94, 0.0, 0.0, 0.09},

    // ---- Java Non-scalable: SPECjvm --------------------------------
    {"compress", Suite::SpecJvm98, JN, 5.3,
     "Lempel-Ziv compression",
     2.0, 0.34, {15, 0.45, 32000, 2.0}, 4.0, 0.00,
     1, 0.0, 0.04, 0.02, 0.05},
    {"jess", Suite::SpecJvm98, JN, 1.4,
     "Java expert system shell",
     1.8, 0.36, {10, 0.50, 2000, 0.5}, 6.0, 0.00,
     1, 0.0, 0.08, 0.05, 0.08},
    {"db", Suite::SpecJvm98, JN, 6.8,
     "Small data management program",
     1.3, 0.42, {45, 0.30, 64000, 2.0}, 5.0, 0.00,
     1, 0.0, 0.05, 0.22, 0.06},
    {"javac", Suite::SpecJvm98, JN, 3.0,
     "The JDK 1.0.2 Java compiler",
     1.7, 0.38, {18, 0.50, 8000, 1.0}, 7.0, 0.00,
     1, 0.0, 0.10, 0.06, 0.10},
    {"mpegaudio", Suite::SpecJvm98, JN, 3.1,
     "MPEG-3 audio stream decoder",
     2.6, 0.32, {3, 0.60, 512, 0.1}, 2.0, 0.30,
     1, 0.0, 0.02, 0.01, 0.03},
    {"mtrt", Suite::SpecJvm98, JN, 0.8,
     "Dual-threaded raytracer",
     2.2, 0.34, {12, 0.50, 8000, 1.0}, 4.0, 0.30,
     2, 0.75, 0.10, 0.05, 0.08},
    {"jack", Suite::SpecJvm98, JN, 2.4,
     "Parser generator with lexical analysis",
     1.8, 0.36, {12, 0.50, 3000, 0.5}, 6.0, 0.00,
     1, 0.0, 0.14, 0.06, 0.08},

    // ---- Java Non-scalable: DaCapo 06-10-MR2 ------------------------
    {"antlr", Suite::DaCapo06, JN, 2.9,
     "Parser and translator generator",
     1.8, 0.36, {14, 0.50, 4000, 0.8}, 6.0, 0.00,
     1, 0.0, 0.42, 0.08, 0.12},
    {"bloat", Suite::DaCapo06, JN, 7.6,
     "Java bytecode optimization and analysis",
     1.6, 0.38, {16, 0.50, 16000, 1.0}, 6.0, 0.00,
     1, 0.0, 0.12, 0.07, 0.10},

    // ---- Java Non-scalable: DaCapo 9.12 ------------------------------
    {"avrora", Suite::DaCapo09, JN, 11.3,
     "Simulates the AVR microcontroller",
     1.6, 0.34, {8, 0.50, 4000, 0.5}, 7.0, 0.00,
     0, 0.30, 0.06, 0.04, 0.06},
    {"batik", Suite::DaCapo09, JN, 4.0,
     "Scalable Vector Graphics (SVG) toolkit",
     2.0, 0.36, {14, 0.50, 16000, 1.0}, 4.0, 0.20,
     0, 0.15, 0.10, 0.05, 0.08},
    {"fop", Suite::DaCapo09, JN, 1.8,
     "Output-independent print formatter",
     1.7, 0.38, {16, 0.50, 12000, 1.0}, 5.0, 0.00,
     1, 0.0, 0.17, 0.06, 0.10},
    {"h2", Suite::DaCapo09, JN, 14.4,
     "An SQL relational database engine in Java",
     1.4, 0.42, {35, 0.30, 200000, 2.0}, 5.0, 0.00,
     0, 0.05, 0.08, 0.08, 0.07},
    {"jython", Suite::DaCapo09, JN, 8.5,
     "Python interpreter in Java",
     1.6, 0.38, {16, 0.50, 10000, 1.0}, 7.0, 0.00,
     0, 0.35, 0.12, 0.06, 0.09},
    {"pmd", Suite::DaCapo09, JN, 6.9,
     "Source code analyzer for Java",
     1.6, 0.38, {18, 0.45, 24000, 1.5}, 6.0, 0.00,
     0, 0.12, 0.10, 0.07, 0.08},
    {"tradebeans", Suite::DaCapo09, JN, 18.4,
     "Tradebeans Daytrader benchmark",
     1.5, 0.40, {25, 0.35, 150000, 2.0}, 5.0, 0.00,
     0, 0.55, 0.09, 0.08, 0.08},
    {"luindex", Suite::DaCapo09, JN, 2.4,
     "A text indexing tool",
     1.8, 0.36, {12, 0.50, 6000, 0.8}, 5.0, 0.00,
     1, 0.0, 0.26, 0.07, 0.09},

    // ---- Java Non-scalable: pjbb2005 ---------------------------------
    {"pjbb2005", Suite::Pjbb2005, JN, 10.6,
     "Transaction processing (SPECjbb2005 variant)",
     1.6, 0.40, {25, 0.35, 200000, 2.0}, 5.0, 0.00,
     0, 0.65, 0.10, 0.08, 0.08},

    // ---- Java Scalable: DaCapo 9.12 -----------------------------------
    {"eclipse", Suite::DaCapo09, JS, 50.5,
     "Integrated development environment",
     1.6, 0.38, {20, 0.40, 150000, 1.5}, 6.0, 0.00,
     0, 0.75, 0.12, 0.07, 0.10},
    {"lusearch", Suite::DaCapo09, JS, 7.9,
     "Text search tool",
     1.8, 0.38, {18, 0.45, 32000, 2.0}, 4.0, 0.00,
     0, 0.85, 0.11, 0.06, 0.08},
    {"sunflow", Suite::DaCapo09, JS, 19.4,
     "Photo-realistic rendering system",
     2.0, 0.34, {8, 0.50, 8000, 0.8}, 3.0, 0.40,
     0, 0.99, 0.06, 0.04, 0.06},
    {"tomcat", Suite::DaCapo09, JS, 8.6,
     "Tomcat servlet container",
     1.7, 0.38, {18, 0.45, 50000, 1.5}, 5.0, 0.00,
     0, 0.92, 0.10, 0.06, 0.08},
    {"xalan", Suite::DaCapo09, JS, 6.9,
     "XSLT processor for XML documents",
     1.8, 0.40, {20, 0.45, 32000, 2.0}, 4.0, 0.00,
     0, 0.95, 0.10, 0.06, 0.08},
};

} // namespace

const std::vector<Benchmark> &
allBenchmarks()
{
    return database;
}

std::vector<const Benchmark *>
benchmarksInGroup(Group group)
{
    std::vector<const Benchmark *> result;
    for (const auto &bench : database)
        if (bench.group == group)
            result.push_back(&bench);
    return result;
}

const Benchmark *
findBenchmark(const std::string &name)
{
    for (const auto &bench : database)
        if (bench.name == name)
            return &bench;
    return nullptr;
}

const Benchmark &
benchmarkByName(const std::string &name)
{
    if (const Benchmark *bench = findBenchmark(name))
        return *bench;
    panic(msgOf("benchmarkByName: unknown benchmark '", name, "'"));
}

} // namespace lhr
