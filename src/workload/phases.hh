/**
 * @file
 * Program phase behaviour.
 *
 * Real executions are not flat: compilers alternate parse/optimize
 * phases, video codecs alternate frame types, and managed runtimes
 * interleave collector bursts — which is why the paper logs a 50Hz
 * power *trace* rather than a single reading. PhaseModel generates a
 * benchmark's activity waveform: a two-state Markov walk between
 * compute-leaning and memory-leaning phases whose amplitude is the
 * benchmark's phase variability, plus periodic garbage-collection
 * bursts for Java workloads.
 */

#ifndef LHR_WORKLOAD_PHASES_HH
#define LHR_WORKLOAD_PHASES_HH

#include <vector>

#include "util/rng.hh"
#include "workload/benchmark.hh"

namespace lhr
{

/** One phase's modulation of the execution's averages. */
struct PhasePoint
{
    /** Multiplier on core switching activity (centred on 1). */
    double activityMult;
    /** Multiplier on LLC/memory activity (centred on 1). */
    double memoryMult;
    /** True during a collector burst (Java only). */
    bool gcBurst;
};

/** Generates a benchmark's phase waveform. */
class PhaseModel
{
  public:
    /**
     * @param bench the workload (phase variability, language)
     * @param seed deterministic waveform seed
     */
    PhaseModel(const Benchmark &bench, uint64_t seed);

    /**
     * Generate `count` phase points covering the execution. The
     * sequence mean is ~1 in both multipliers, so phase behaviour
     * never biases average power — it only shapes the trace.
     */
    std::vector<PhasePoint> generate(int count);

    /** Phases between GC bursts for Java workloads. */
    static constexpr int gcPeriodPhases = 11;

    /** Activity kick of a collector burst (copying is busy work). */
    static constexpr double gcActivityKick = 1.25;

    /** Memory kick of a collector burst (it streams the heap). */
    static constexpr double gcMemoryKick = 1.6;

  private:
    const Benchmark &benchmark;
    Rng rng;
};

} // namespace lhr

#endif // LHR_WORKLOAD_PHASES_HH
