/**
 * @file
 * Native compiler models (paper section 2.1).
 *
 * The paper compiled SPEC CPU2006 with Intel icc 11.1 -o3 "because
 * we found that it consistently generated better performing code
 * than gcc", and PARSEC with gcc 4.4.1 -O3 because "the icc compiler
 * failed to produce correct code for many of the PARSEC benchmarks".
 * It leaves "systematic comparisons using both icc and gcc to future
 * work" — which this module enables: per-compiler code-quality
 * profiles and the miscompilation behaviour, applied to benchmark
 * descriptors.
 */

#ifndef LHR_WORKLOAD_COMPILER_HH
#define LHR_WORKLOAD_COMPILER_HH

#include <optional>
#include <string>
#include <vector>

#include "workload/benchmark.hh"

namespace lhr
{

/** The two compilers of the study. */
enum class NativeCompiler
{
    Icc11,   ///< Intel icc 11.1, 32-bit, -o3
    Gcc441   ///< gcc 4.4.1, -O3 (the PARSEC default scripts)
};

/** All compilers. */
const std::vector<NativeCompiler> &allCompilers();

/** Code-generation characteristics of one compiler. */
struct CompilerProfile
{
    NativeCompiler compiler;
    std::string name;       ///< "icc 11.1"
    std::string flags;      ///< "-o3"

    double intCodeQuality;  ///< ILP factor on integer code (gcc = 1)
    double fpCodeQuality;   ///< ILP factor on FP code
    double branchQuality;   ///< misprediction factor (<1 is better)
    double perBenchSpread;  ///< per-benchmark variation

    /** Fraction of PARSEC-style pthreads codes it miscompiles. */
    double parsecMiscompileRate;
};

/** Look up a compiler's profile. */
const CompilerProfile &compilerProfile(NativeCompiler compiler);

/**
 * Compile a native benchmark: returns the benchmark as built by this
 * compiler, or nullopt when the compiler miscompiles it (icc on many
 * PARSEC codes). Deterministic per (compiler, benchmark).
 * panic()s for Java benchmarks, which are not compiled ahead of
 * time.
 */
std::optional<Benchmark> compileBenchmark(const Benchmark &bench,
                                          NativeCompiler compiler);

} // namespace lhr

#endif // LHR_WORKLOAD_COMPILER_HH
