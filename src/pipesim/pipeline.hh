/**
 * @file
 * Micro-op-level pipeline simulation ("detailed mode").
 *
 * The analytic interval model (lhr::cpu) computes CPI stacks in
 * closed form. This module computes the same quantity by actually
 * issuing a synthetic micro-op trace through a superscalar pipeline
 * model — issue-width limits, a dependence-distance model of ILP, an
 * out-of-order window (or strict in-order issue for Bonnell), load
 * latencies probed from the structural cache simulator, and branch
 * misprediction flushes from a simulated predictor. The two layers
 * cross-validate in bench/ablation_pipesim and
 * tests/test_pipesim.cc, the way detailed and functional modes of a
 * production simulator keep each other honest.
 */

#ifndef LHR_PIPESIM_PIPELINE_HH
#define LHR_PIPESIM_PIPELINE_HH

#include <cstdint>
#include <vector>

#include "cachesim/cache_sim.hh"
#include "machine/processor.hh"
#include "trace/generator.hh"

namespace lhr
{

/** Pipeline geometry derived from a processor at a clock. */
struct PipelineConfig
{
    int issueWidth;          ///< micro-ops issued per cycle
    bool inOrder;            ///< Bonnell issues strictly in order
    int windowSize;          ///< ROB/scheduler reach (instructions)
    double branchPenalty;    ///< misprediction flush, cycles
    double issueEfficiency;  ///< front-end delivery efficiency
    double ilpExtraction;    ///< dependence-distance multiplier

    int l1LatencyCycles;     ///< load-to-use on an L1 hit
    /** Latency in cycles of a hit at each level beyond L1. */
    std::vector<int> levelLatencyCycles;
    int dramLatencyCycles;

    /**
     * Build the pipeline geometry of a processor at a clock:
     * issue/window parameters from its microarchitecture, memory
     * latencies from its cache hierarchy and DRAM converted to
     * cycles.
     */
    static PipelineConfig of(const ProcessorSpec &spec,
                             double clock_ghz);
};

/** Outcome of a pipeline simulation run. */
struct PipelineResult
{
    uint64_t instructions;
    double cycles;
    double ipc;

    /**
     * Attribution of per-op issue waits: the share caused by memory
     * (dependences on loads, window full behind a miss) and by
     * branch redirects. Shares of all accumulated waiting, not of
     * cycles — queued ops behind one miss each count their wait.
     */
    double memStallShare;
    double branchStallShare;
};

/**
 * The pipeline simulator: owns the structural caches and predictor
 * it probes, and consumes a TraceGenerator stream.
 */
class PipelineSim
{
  public:
    /**
     * @param config pipeline geometry
     * @param cache_levels (capacityKb, ways) pairs, innermost first
     */
    PipelineSim(const PipelineConfig &config,
                const std::vector<std::pair<double, int>> &cache_levels);

    /**
     * Issue `instructions` micro-ops of a benchmark's trace.
     *
     * @param bench the workload whose trace to run
     * @param seed trace seed
     * @param warmup unmeasured instructions to warm structures
     */
    PipelineResult run(const Benchmark &bench, uint64_t instructions,
                       uint64_t seed, uint64_t warmup = 100000);

  private:
    /** Load-to-use latency of one access, probing the caches. */
    int loadLatency(uint64_t addr);

    PipelineConfig cfg;
    HierarchySim caches;
};

} // namespace lhr

#endif // LHR_PIPESIM_PIPELINE_HH
