#include "pipesim/pipeline.hh"

#include <algorithm>
#include <cmath>

#include "bpred/predictor.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace lhr
{

PipelineConfig
PipelineConfig::of(const ProcessorSpec &spec, double clock_ghz)
{
    if (clock_ghz <= 0.0)
        panic("PipelineConfig::of: non-positive clock");
    const MicroArch &ua = spec.uarch();

    PipelineConfig cfg;
    cfg.issueWidth = ua.issueWidth;
    cfg.inOrder = !ua.outOfOrder;
    switch (spec.family) {
      case Family::NetBurst: cfg.windowSize = 48; break;
      case Family::Core:     cfg.windowSize = 96; break;
      case Family::Bonnell:  cfg.windowSize = 8; break;
      case Family::Nehalem:  cfg.windowSize = 128; break;
      case Family::SandyBridge: cfg.windowSize = 168; break;
      case Family::Haswell:     cfg.windowSize = 192; break;
      case Family::Broadwell:   cfg.windowSize = 192; break;
      case Family::SkylakeSP:   cfg.windowSize = 224; break;
    }
    cfg.branchPenalty = ua.branchPenalty;
    cfg.issueEfficiency = ua.issueEfficiency;
    cfg.ilpExtraction = ua.ilpExtraction;

    const CacheHierarchy hierarchy = makeHierarchy(spec);
    cfg.l1LatencyCycles = 3;
    for (size_t level = 1; level < hierarchy.levels().size(); ++level) {
        cfg.levelLatencyCycles.push_back(std::max(
            1, static_cast<int>(std::lround(
                   hierarchy.levels()[level].latencyNs * clock_ghz))));
    }
    cfg.dramLatencyCycles = std::max(
        1, static_cast<int>(
               std::lround(hierarchy.dramLatency() * clock_ghz)));
    return cfg;
}

PipelineSim::PipelineSim(
    const PipelineConfig &config,
    const std::vector<std::pair<double, int>> &cache_levels)
    : cfg(config), caches(cache_levels)
{
    if (cfg.issueWidth < 1 || cfg.windowSize < 1)
        panic("PipelineSim: invalid geometry");
}

int
PipelineSim::loadLatency(uint64_t addr)
{
    const int hitLevel = caches.accessHitLevel(addr);
    if (hitLevel < 0)
        return cfg.dramLatencyCycles;
    if (hitLevel == 0)
        return cfg.l1LatencyCycles;
    return cfg.levelLatencyCycles[hitLevel - 1];
}

PipelineResult
PipelineSim::run(const Benchmark &bench, uint64_t instructions,
                 uint64_t seed, uint64_t warmup)
{
    if (instructions == 0)
        panic("PipelineSim::run: zero instructions");

    TraceGenerator trace(bench, seed);
    BimodalPredictor predictor(14);
    Rng depRng(seed ^ 0xD0D0);

    // Ring buffers of recent op state (completion time, was-load).
    const size_t ring = 1024;
    std::vector<double> completion(ring, 0.0);
    std::vector<uint8_t> wasLoad(ring, 0);

    // Mean useful dependence distance: how far apart dependent
    // instructions sit, which is what "exploitable ILP" measures.
    const double meanDep =
        std::max(1.05, bench.ilp * cfg.ilpExtraction);
    // Sustained front-end delivery: issueWidth slots at the
    // front end's efficiency.
    const double slotsPerCycle = cfg.issueWidth * cfg.issueEfficiency;

    double frontEnd = 0.0;       // next front-end availability
    double memStall = 0.0;
    double branchStall = 0.0;
    double totalStall = 0.0;
    double lastCompletion = 0.0;
    double measureStartCycle = 0.0;

    // Micro-ops arrive in SoA blocks: the issue loop walks flat
    // arrays instead of pulling one struct at a time through the
    // generator.
    MicroOpBatch batch;
    const uint64_t total = warmup + instructions;
    for (uint64_t base = 0; base < total; base += batch.size()) {
        const size_t block = static_cast<size_t>(std::min<uint64_t>(
            MicroOpBatch::defaultSize, total - base));
        trace.fill(batch, block);

        for (size_t j = 0; j < block; ++j) {
            const uint64_t i = base + j;
            if (i == warmup)
                measureStartCycle = frontEnd;

            frontEnd += 1.0 / slotsPerCycle;

            // Dependence: this op consumes the value of an op `d`
            // earlier (exponential distances around the mean).
            const double u = depRng.uniformPositive();
            const uint64_t dist = std::max<uint64_t>(
                1,
                static_cast<uint64_t>(std::lround(-meanDep * std::log(u))));
            double ready = 0.0;
            bool depOnLoad = false;
            if (dist <= i && dist < ring) {
                ready = completion[(i - dist) % ring];
                depOnLoad = wasLoad[(i - dist) % ring];
            }

            // Window constraint: no more than windowSize ops in
            // flight (stall-on-use with a tiny window models
            // in-order issue).
            const auto window = static_cast<size_t>(cfg.windowSize);
            double windowReady = 0.0;
            bool windowOnLoad = false;
            if (i >= window) {
                windowReady = completion[(i - window) % ring];
                windowOnLoad = wasLoad[(i - window) % ring];
            }

            const double issue =
                std::max({frontEnd, ready, windowReady});

            // Attribute the stall beyond the front end. Out-of-order
            // machines keep fetching past a waiting op (only the
            // window limits them); an in-order machine serializes
            // issue behind it.
            const double stall = issue - frontEnd;
            if (stall > 0.0) {
                totalStall += stall;
                if ((ready >= windowReady && depOnLoad) ||
                    (windowReady > ready && windowOnLoad)) {
                    memStall += stall;
                }
                if (cfg.inOrder)
                    frontEnd = issue;
            }

            double latency = 1.0;
            bool isLoad = false;
            switch (batch.kindAt(j)) {
              case MicroOp::Kind::Alu:
                break;
              case MicroOp::Kind::Store:
                // Write buffers hide store latency.
                caches.access(batch.addr[j]);
                break;
              case MicroOp::Kind::Load:
                latency = loadLatency(batch.addr[j]);
                isLoad = true;
                break;
              case MicroOp::Kind::Branch: {
                if (predictor.runInline(batch.pc[j],
                                        batch.taken[j] != 0)) {
                    // Redirect after resolution.
                    const double resolve = issue + 1.0;
                    const double redirect = resolve + cfg.branchPenalty;
                    if (redirect > frontEnd) {
                        branchStall += redirect - frontEnd;
                        totalStall += redirect - frontEnd;
                        frontEnd = redirect;
                    }
                }
                break;
              }
            }

            const double done = issue + latency;
            completion[i % ring] = done;
            wasLoad[i % ring] = isLoad ? 1 : 0;
            lastCompletion = std::max(lastCompletion, done);
        }
    }

    PipelineResult result;
    result.instructions = instructions;
    result.cycles = std::max(1.0, lastCompletion - measureStartCycle);
    result.ipc = instructions / result.cycles;
    const double denom = std::max(1e-9, totalStall);
    result.memStallShare = memStall / denom;
    result.branchStallShare = branchStall / denom;
    return result;
}

} // namespace lhr
