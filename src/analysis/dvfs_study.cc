#include "analysis/dvfs_study.hh"

#include <limits>

#include "util/logging.hh"

namespace lhr
{

DvfsProfile
dvfsProfile(ExperimentRunner &runner, const ReferenceSet &ref,
            const std::string &processor_id, int steps)
{
    if (steps < 2)
        panic("dvfsProfile: need at least two steps");

    const ProcessorSpec &spec = processorById(processor_id);
    auto base = stockConfig(spec);
    if (spec.hasTurbo)
        base = withTurbo(base, false);

    DvfsProfile profile;
    profile.processorId = processor_id;
    profile.featureNm = spec.tech().featureNm;
    profile.fMinGhz = spec.fMinGhz;
    profile.fMaxGhz = spec.stockClockGhz;

    double bestEnergy = std::numeric_limits<double>::infinity();
    double energyAtMin = 0.0, energyAtMax = 0.0;
    for (int i = 0; i < steps; ++i) {
        const double f = spec.fMinGhz +
            (spec.stockClockGhz - spec.fMinGhz) * i / (steps - 1);
        const auto agg =
            aggregateConfig(runner, ref, withClock(base, f));
        const double energy = agg.weighted.energy;
        if (energy < bestEnergy) {
            bestEnergy = energy;
            profile.energyOptimalGhz = f;
        }
        if (i == 0)
            energyAtMin = energy;
        if (i == steps - 1)
            energyAtMax = energy;
    }
    profile.energyAtMinRel = energyAtMin / bestEnergy;
    profile.energyAtMaxRel = energyAtMax / bestEnergy;

    // Static share at the lowest clock for a representative
    // mid-intensity workload.
    const auto slow = withClock(base, spec.fMinGhz);
    const auto prof =
        runner.profile(slow, benchmarkByName("xalancbmk"));
    profile.staticShareAtMin = prof.power.leakW / prof.power.total();
    return profile;
}

} // namespace lhr
