#include "analysis/dvfs_study.hh"

#include <limits>

#include "analysis/features.hh"
#include "util/logging.hh"

namespace lhr
{

DvfsProfile
dvfsProfile(ExperimentRunner &runner, const ReferenceSet &ref,
            const std::string &processor_id, int steps)
{
    const ProcessorSpec &spec = processorById(processor_id);

    DvfsProfile profile;
    profile.processorId = processor_id;
    profile.featureNm = spec.tech().featureNm;
    profile.fMinGhz = spec.fMinGhz;
    profile.fMaxGhz = spec.stockClockGhz;

    // The same declared min-to-max clock grid the Figure 7 sweep
    // measures (Turbo disabled), so a prewarm covering one covers
    // the other.
    const auto configs = clockSweepConfigs(processor_id, steps);
    double bestEnergy = std::numeric_limits<double>::infinity();
    double energyAtMin = 0.0, energyAtMax = 0.0;
    for (size_t i = 0; i < configs.size(); ++i) {
        const auto agg = aggregateConfig(runner, ref, configs[i]);
        const double energy = agg.weighted.energy;
        if (energy < bestEnergy) {
            bestEnergy = energy;
            profile.energyOptimalGhz = configs[i].clockGhz;
        }
        if (i == 0)
            energyAtMin = energy;
        if (i + 1 == configs.size())
            energyAtMax = energy;
    }
    profile.energyAtMinRel = energyAtMin / bestEnergy;
    profile.energyAtMaxRel = energyAtMax / bestEnergy;

    // Static share at the lowest clock for a representative
    // mid-intensity workload.
    const auto prof =
        runner.profile(configs.front(), benchmarkByName("xalancbmk"));
    profile.staticShareAtMin = prof.power.leakW / prof.power.total();
    return profile;
}

} // namespace lhr
