/**
 * @file
 * Historical overview (paper section 4.1, Figure 11 and Table 4):
 * power and performance of the eight stock processors, absolute and
 * per transistor, with Table 4's rank ordering.
 */

#ifndef LHR_ANALYSIS_HISTORICAL_HH
#define LHR_ANALYSIS_HISTORICAL_HH

#include <string>
#include <vector>

#include "harness/aggregate.hh"

namespace lhr
{

/** One stock processor's aggregated historical data point. */
struct HistoricalPoint
{
    const ProcessorSpec *spec;
    ConfigAggregate aggregate;

    /** Weighted performance per million transistors. */
    double perfPerMtran() const;

    /** Weighted power (W) per million transistors. */
    double powerPerMtran() const;
};

/** Aggregate all eight stock processors. */
std::vector<HistoricalPoint> historicalOverview(ExperimentRunner &runner,
                                                const ReferenceSet &ref);

/**
 * Dense ranks (1 = best) of a value among the points; `ascending`
 * ranks smaller values first (used for power).
 */
std::vector<int> rankOf(const std::vector<double> &values, bool ascending);

/** A what-if design point projected to another technology node. */
struct ProjectedPoint
{
    std::string label;
    double perf;
    double powerW;
};

/**
 * Project a measured historical point to a target node — the
 * paper's Figure 11 thought experiment: "applying the die shrink
 * parameters [Finding 4] to the Pentium 4 design across four
 * generations ... would reduce power four fold and increase
 * performance two fold." Capacitance and voltage scale with the
 * technology models; the clock is raised by `clock_ratio` (the
 * historical ~2x across 130nm to 32nm).
 */
ProjectedPoint projectToNode(const HistoricalPoint &point,
                             Node target, double clock_ratio);

} // namespace lhr

#endif // LHR_ANALYSIS_HISTORICAL_HH
