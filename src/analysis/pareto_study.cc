#include "analysis/pareto_study.hh"

namespace lhr
{

std::vector<ParetoPoint>
paretoPoints45nm(ExperimentRunner &runner, const ReferenceSet &ref,
                 std::optional<Group> group)
{
    std::vector<ParetoPoint> points;
    for (const auto &cfg : configurations45nm()) {
        const ConfigAggregate agg = aggregateConfig(runner, ref, cfg);
        const GroupAggregate &ga =
            group ? agg.group(*group) : agg.weighted;
        points.push_back({cfg.label(), ga.perf, ga.energy});
    }
    return points;
}

std::vector<ParetoPoint>
paretoFrontier45nm(ExperimentRunner &runner, const ReferenceSet &ref,
                   std::optional<Group> group)
{
    return paretoFrontier(paretoPoints45nm(runner, ref, group));
}

} // namespace lhr
