/**
 * @file
 * DVFS "laws of diminishing returns" study.
 *
 * The paper's related work discusses Le Sueur and Heiser's finding
 * that as technology shrinks to 45nm, down-clocking saves less
 * energy because static power grows relative to dynamic power (§5).
 * Our substrate can test that claim directly: for each processor,
 * sweep the clock, find the energy-optimal frequency, and decompose
 * the energy at the extremes into static and dynamic shares.
 */

#ifndef LHR_ANALYSIS_DVFS_STUDY_HH
#define LHR_ANALYSIS_DVFS_STUDY_HH

#include <string>
#include <vector>

#include "harness/aggregate.hh"

namespace lhr
{

/** The DVFS profile of one processor. */
struct DvfsProfile
{
    std::string processorId;
    int featureNm;

    double fMinGhz;
    double fMaxGhz;
    double energyOptimalGhz;  ///< clock minimizing weighted energy

    /** Energy at min/max clock relative to the optimum (>= 1). */
    double energyAtMinRel;
    double energyAtMaxRel;

    /**
     * Static (leakage) share of chip power when running the
     * weighted-average workload at the lowest clock — the quantity
     * whose growth causes the diminishing returns.
     */
    double staticShareAtMin;
};

/**
 * Sweep a processor's clock in `steps` points and extract its DVFS
 * profile (Turbo disabled throughout).
 */
DvfsProfile dvfsProfile(ExperimentRunner &runner,
                        const ReferenceSet &ref,
                        const std::string &processor_id, int steps);

} // namespace lhr

#endif // LHR_ANALYSIS_DVFS_STUDY_HH
