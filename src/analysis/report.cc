#include "analysis/report.hh"

#include "util/csv.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace lhr
{

// ---- Sink buffering ---------------------------------------------------

void
Sink::beginTable(const std::string &id, std::vector<SinkColumn> columns,
                 TableStyle style)
{
    if (open)
        panic("Sink: beginTable with a table already open");
    if (columns.empty())
        panic("Sink: table needs at least one column");
    open.emplace();
    open->id = id;
    open->columns = std::move(columns);
    open->style = style;
}

void
Sink::beginRow()
{
    if (!open)
        panic("Sink: beginRow outside a table");
    if (!open->rows.empty() &&
        open->rows.back().size() != open->columns.size()) {
        panic(msgOf("Sink: row has ", open->rows.back().size(),
                    " cells, expected ", open->columns.size()));
    }
    open->rows.emplace_back();
}

void
Sink::cell(const std::string &text)
{
    if (!open || open->rows.empty())
        panic("Sink: cell outside a row");
    if (open->rows.back().size() >= open->columns.size())
        panic("Sink: too many cells in row");
    Cell c;
    c.kind = Cell::Kind::Text;
    c.text = text;
    open->rows.back().push_back(std::move(c));
}

void
Sink::cell(const char *text)
{
    cell(std::string(text));
}

void
Sink::cell(double value, int decimals)
{
    if (!open || open->rows.empty())
        panic("Sink: cell outside a row");
    if (open->rows.back().size() >= open->columns.size())
        panic("Sink: too many cells in row");
    Cell c;
    c.kind = Cell::Kind::Real;
    c.real = value;
    c.decimals = decimals;
    open->rows.back().push_back(std::move(c));
}

void
Sink::cell(long value)
{
    if (!open || open->rows.empty())
        panic("Sink: cell outside a row");
    if (open->rows.back().size() >= open->columns.size())
        panic("Sink: too many cells in row");
    Cell c;
    c.kind = Cell::Kind::Int;
    c.integer = value;
    open->rows.back().push_back(std::move(c));
}

void
Sink::endTable()
{
    if (!open)
        panic("Sink: endTable without beginTable");
    TableData table = std::move(*open);
    open.reset();
    emitTable(table);
}

// ---- TextSink ---------------------------------------------------------

TextSink::TextSink(std::ostream &os)
    : out(os)
{
}

void
TextSink::prose(const std::string &text)
{
    out << text;
}

void
TextSink::emitTable(const TableData &table)
{
    if (table.style == TableStyle::Csv) {
        std::vector<std::string> header;
        for (const auto &col : table.columns)
            header.push_back(col.header);
        CsvWriter csv(out, header);
        for (const auto &row : table.rows) {
            csv.beginRow();
            for (const auto &c : row) {
                switch (c.kind) {
                  case Cell::Kind::Text: csv.field(c.text); break;
                  case Cell::Kind::Real: csv.field(c.real, c.decimals); break;
                  case Cell::Kind::Int: csv.field(c.integer); break;
                }
            }
        }
        return; // ~CsvWriter flushes the last row
    }

    TableWriter writer;
    for (const auto &col : table.columns)
        writer.addColumn(col.header, col.align);
    for (const auto &row : table.rows) {
        writer.beginRow();
        for (const auto &c : row) {
            switch (c.kind) {
              case Cell::Kind::Text: writer.cell(c.text); break;
              case Cell::Kind::Real: writer.cell(c.real, c.decimals); break;
              case Cell::Kind::Int: writer.cell(c.integer); break;
            }
        }
    }
    writer.print(out);
}

// ---- CsvSink ----------------------------------------------------------

CsvSink::CsvSink(std::ostream &os)
    : out(os)
{
}

void
CsvSink::prose(const std::string &)
{
    // CSV artifacts carry the data, not the narration.
}

void
CsvSink::emitTable(const TableData &table)
{
    if (anyTable)
        out << '\n';
    anyTable = true;
    out << "# table " << table.id << '\n';

    std::vector<std::string> header;
    for (const auto &col : table.columns)
        header.push_back(col.header);
    CsvWriter csv(out, header);
    for (const auto &row : table.rows) {
        csv.beginRow();
        for (const auto &c : row) {
            switch (c.kind) {
              case Cell::Kind::Text: csv.field(c.text); break;
              case Cell::Kind::Real: csv.field(c.real, c.decimals); break;
              case Cell::Kind::Int: csv.field(c.integer); break;
            }
        }
    }
}

// ---- JsonSink ---------------------------------------------------------

JsonSink::JsonSink(std::ostream &os, const std::string &study,
                   const std::string &description, uint64_t seed)
    : json(std::make_unique<JsonWriter>(os))
{
    json->beginObject();
    json->key("study").value(study);
    json->key("description").value(description);
    json->key("seed").value(seed);
    json->key("blocks").beginArray();
}

JsonSink::~JsonSink()
{
    close();
}

void
JsonSink::close()
{
    if (closed)
        return;
    closed = true;
    json->endArray();
    json->endObject();
}

void
JsonSink::prose(const std::string &text)
{
    json->beginObject();
    json->key("type").value("prose");
    json->key("text").value(text);
    json->endObject();
}

void
JsonSink::emitTable(const TableData &table)
{
    json->beginObject();
    json->key("type").value("table");
    json->key("id").value(table.id);
    json->key("columns").beginArray();
    for (const auto &col : table.columns)
        json->value(col.header);
    json->endArray();
    json->key("rows").beginArray();
    for (const auto &row : table.rows) {
        json->beginArray();
        for (const auto &c : row) {
            switch (c.kind) {
              case Cell::Kind::Text: json->value(c.text); break;
              case Cell::Kind::Real: json->value(c.real, c.decimals); break;
              case Cell::Kind::Int: json->value(c.integer); break;
            }
        }
        json->endArray();
    }
    json->endArray();
    json->endObject();
}

// ---- grouped-effect layout --------------------------------------------

void
emitGroupedEffects(Sink &sink, const std::string &title,
                   const std::vector<GroupedEffect> &effects)
{
    sink.prose(title + "\n\n(a) average effect\n");
    sink.beginTable("average_effect",
                    {leftColumn(""), {"performance"}, {"power"},
                     {"energy"}});
    for (const auto &e : effects) {
        sink.beginRow();
        sink.cell(e.label);
        sink.cell(e.average.perf, 2);
        sink.cell(e.average.power, 2);
        sink.cell(e.average.energy, 2);
    }
    sink.endTable();

    sink.prose("\n(b) energy effect by workload group\n");
    std::vector<SinkColumn> columns = {leftColumn("")};
    for (const auto group : allGroups())
        columns.push_back({groupName(group)});
    sink.beginTable("group_energy", std::move(columns));
    for (const auto &e : effects) {
        sink.beginRow();
        sink.cell(e.label);
        for (const auto &g : e.byGroup)
            sink.cell(g.energy, 2);
    }
    sink.endTable();
    sink.prose("\n");
}

void
printGroupedEffects(std::ostream &os, const std::string &title,
                    const std::vector<GroupedEffect> &effects)
{
    TextSink sink(os);
    emitGroupedEffects(sink, title, effects);
}

} // namespace lhr
