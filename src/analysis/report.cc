#include "analysis/report.hh"

#include "util/table.hh"

namespace lhr
{

void
printGroupedEffects(std::ostream &os, const std::string &title,
                    const std::vector<GroupedEffect> &effects)
{
    os << title << "\n\n(a) average effect\n";
    {
        TableWriter table;
        table.addColumn("", TableWriter::Align::Left);
        table.addColumn("performance");
        table.addColumn("power");
        table.addColumn("energy");
        for (const auto &e : effects) {
            table.beginRow();
            table.cell(e.label);
            table.cell(e.average.perf, 2);
            table.cell(e.average.power, 2);
            table.cell(e.average.energy, 2);
        }
        table.print(os);
    }

    os << "\n(b) energy effect by workload group\n";
    {
        TableWriter table;
        table.addColumn("", TableWriter::Align::Left);
        for (const auto group : allGroups())
            table.addColumn(groupName(group));
        for (const auto &e : effects) {
            table.beginRow();
            table.cell(e.label);
            for (const auto &g : e.byGroup)
                table.cell(g.energy, 2);
        }
        table.print(os);
    }
    os << "\n";
}

} // namespace lhr
