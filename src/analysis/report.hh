/**
 * @file
 * Console reporting helpers shared by the bench binaries: the
 * paper's feature figures all follow the same two-panel layout —
 * (a) average performance/power/energy ratios, (b) per-group energy
 * ratios.
 */

#ifndef LHR_ANALYSIS_REPORT_HH
#define LHR_ANALYSIS_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "analysis/features.hh"

namespace lhr
{

/**
 * Print a feature study in the paper's figure layout: panel (a) with
 * the average perf/power/energy ratios per subject, panel (b) with
 * the per-group energy ratios.
 */
void printGroupedEffects(std::ostream &os, const std::string &title,
                         const std::vector<GroupedEffect> &effects);

} // namespace lhr

#endif // LHR_ANALYSIS_REPORT_HH
