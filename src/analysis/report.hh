/**
 * @file
 * Structured study reporting.
 *
 * Every study emits the same logical stream — prose paragraphs and
 * tables of typed cells — through a Sink. The sink decides the
 * artifact format:
 *
 *   TextSink  renders the paper's human-readable console layout
 *             (aligned tables via TableWriter, CSV-style tables via
 *             CsvWriter, prose verbatim) — byte-identical to the
 *             historical per-figure binaries;
 *   CsvSink   emits every table as CSV (prose dropped, tables
 *             separated by `# table <id>` comment lines);
 *   JsonSink  emits one JSON document with every block, keeping
 *             numeric cells as numbers.
 *
 * The paper's feature figures all share a two-panel layout —
 * (a) average performance/power/energy ratios, (b) per-group energy
 * ratios — provided here as emitGroupedEffects().
 */

#ifndef LHR_ANALYSIS_REPORT_HH
#define LHR_ANALYSIS_REPORT_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/features.hh"
#include "util/table.hh"

namespace lhr
{

class JsonWriter;

/** How a table renders in text mode. */
enum class TableStyle
{
    Aligned,  ///< TableWriter console layout
    Csv,      ///< comma-separated (the paper's companion-data style)
};

/** One declared column of a sink table. */
struct SinkColumn
{
    std::string header;
    TableWriter::Align align = TableWriter::Align::Right;
};

/** Left-aligned column shorthand. */
inline SinkColumn
leftColumn(const std::string &header)
{
    return {header, TableWriter::Align::Left};
}

/**
 * A structured output consumer. Studies call prose() and the
 * beginTable/beginRow/cell/endTable sequence; subclasses receive
 * complete tables through emitTable().
 */
class Sink
{
  public:
    virtual ~Sink() = default;

    /** Free-form text (text sinks print it verbatim). */
    virtual void prose(const std::string &text) = 0;

    /** Open a table; `id` names the machine-readable artifact. */
    void beginTable(const std::string &id,
                    std::vector<SinkColumn> columns,
                    TableStyle style = TableStyle::Aligned);

    /** Begin a row of the open table. */
    void beginRow();

    /** Append a text cell. */
    void cell(const std::string &text);
    void cell(const char *text);

    /** Append a numeric cell with fixed decimal places. */
    void cell(double value, int decimals = 2);

    /** Append an integer cell. */
    void cell(long value);

    /** Close and emit the open table. */
    void endTable();

    /** Finish the document (JSON closes its root object here). */
    virtual void close() {}

  protected:
    /** One typed cell: text, fixed-decimal real, or integer. */
    struct Cell
    {
        enum class Kind { Text, Real, Int };

        Kind kind;
        std::string text;
        double real = 0.0;
        int decimals = 0;
        long integer = 0;
    };

    /** A complete table handed to emitTable(). */
    struct TableData
    {
        std::string id;
        std::vector<SinkColumn> columns;
        TableStyle style = TableStyle::Aligned;
        std::vector<std::vector<Cell>> rows;
    };

    virtual void emitTable(const TableData &table) = 0;

  private:
    std::optional<TableData> open;
};

/** Renders the historical console output. */
class TextSink : public Sink
{
  public:
    explicit TextSink(std::ostream &os);

    void prose(const std::string &text) override;

  protected:
    void emitTable(const TableData &table) override;

  private:
    std::ostream &out;
};

/** Emits every table as CSV; prose is dropped. */
class CsvSink : public Sink
{
  public:
    explicit CsvSink(std::ostream &os);

    void prose(const std::string &text) override;

  protected:
    void emitTable(const TableData &table) override;

  private:
    std::ostream &out;
    bool anyTable = false;
};

/** Emits one JSON document with every prose and table block. */
class JsonSink : public Sink
{
  public:
    /**
     * Opens the document. `study`/`description` identify the
     * producer; `seed` records the experiment seed the numbers were
     * generated under.
     */
    JsonSink(std::ostream &os, const std::string &study,
             const std::string &description, uint64_t seed);
    ~JsonSink() override;

    void prose(const std::string &text) override;
    void close() override;

  protected:
    void emitTable(const TableData &table) override;

  private:
    std::unique_ptr<JsonWriter> json;
    bool closed = false;
};

/**
 * Emit a feature study in the paper's figure layout: panel (a) with
 * the average perf/power/energy ratios per subject, panel (b) with
 * the per-group energy ratios.
 */
void emitGroupedEffects(Sink &sink, const std::string &title,
                        const std::vector<GroupedEffect> &effects);

/**
 * Print a feature study to a stream in the console layout
 * (TextSink over emitGroupedEffects).
 */
void printGroupedEffects(std::ostream &os, const std::string &title,
                         const std::vector<GroupedEffect> &effects);

} // namespace lhr

#endif // LHR_ANALYSIS_REPORT_HH
