#include "analysis/perf_compare.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/json.hh"
#include "util/fp.hh"
#include "util/logging.hh"

namespace lhr
{

namespace
{

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
        text.compare(text.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

std::string
formatNumber(double v)
{
    char buf[64];
    if (!exactZero(v) && (std::fabs(v) >= 1e6 || std::fabs(v) < 1e-3))
        std::snprintf(buf, sizeof(buf), "%.3g", v);
    else
        std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
}

std::string
formatPercent(double rel)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", 100.0 * rel);
    return buf;
}

} // namespace

double
PerfRecord::metricOr(const std::string &key, double fallback) const
{
    for (const auto &metric : metrics)
        if (metric.first == key)
            return metric.second;
    return fallback;
}

bool
PerfRecord::hasMetric(const std::string &key) const
{
    for (const auto &metric : metrics)
        if (metric.first == key)
            return true;
    return false;
}

Expected<std::vector<PerfRecord>>
parsePerfRecords(const std::string &json_text)
{
    Expected<JsonValue> doc = parseJson(json_text);
    if (!doc.ok())
        return doc.status();
    const JsonValue &root = doc.value();
    if (!root.isArray())
        return Status::error(StatusCode::ParseError,
                             "bench baseline: document is not an "
                             "array of records");

    std::vector<PerfRecord> records;
    records.reserve(root.size());
    for (const JsonValue &entry : root.items()) {
        if (!entry.isObject())
            return Status::error(StatusCode::ParseError,
                                 "bench baseline: record is not an "
                                 "object");
        const JsonValue *name = entry.find("name");
        if (!name || !name->isString())
            return Status::error(StatusCode::ParseError,
                                 "bench baseline: record without a "
                                 "string \"name\"");
        PerfRecord record;
        record.name = name->asString();
        if (const JsonValue *metrics = entry.find("metrics");
            metrics && metrics->isObject()) {
            for (const auto &member : metrics->members()) {
                // The writer emits null for non-finite values; skip
                // those rather than compare garbage.
                if (member.second.isNumber())
                    record.metrics.emplace_back(
                        member.first, member.second.asNumber());
            }
        }
        if (const JsonValue *wall = entry.find("wall_sec");
            wall && wall->isNumber())
            record.metrics.emplace_back("wall_sec",
                                        wall->asNumber());
        records.push_back(std::move(record));
    }
    return records;
}

MetricDirection
metricDirection(const std::string &metric)
{
    // Spread metrics annotate their base metric's noise; they are
    // consumed by the gate, not gated themselves.
    if (endsWith(metric, "_spread_rel"))
        return MetricDirection::Informational;
    if (endsWith(metric, "_per_sec"))
        return MetricDirection::HigherIsBetter;
    return MetricDirection::Informational;
}

bool
PerfComparison::hasRegression() const
{
    return !regressions().empty();
}

std::vector<const PerfDelta *>
PerfComparison::regressions() const
{
    std::vector<const PerfDelta *> out;
    for (const PerfDelta &delta : deltas)
        if (delta.regression())
            out.push_back(&delta);
    return out;
}

PerfComparison
comparePerfRecords(const std::vector<PerfRecord> &before,
                   const std::vector<PerfRecord> &after,
                   double tolerance)
{
    if (tolerance < 0.0)
        panic("comparePerfRecords: negative tolerance");

    const auto findRecord =
        [](const std::vector<PerfRecord> &records,
           const std::string &name) -> const PerfRecord * {
        for (const PerfRecord &record : records)
            if (record.name == name)
                return &record;
        return nullptr;
    };

    PerfComparison cmp;
    for (const PerfRecord &b : after) {
        const PerfRecord *a = findRecord(before, b.name);
        if (!a) {
            cmp.onlyAfter.push_back(b.name);
            continue;
        }
        for (const auto &metric : b.metrics) {
            if (!a->hasMetric(metric.first))
                continue;
            PerfDelta delta;
            delta.record = b.name;
            delta.metric = metric.first;
            delta.before = a->metricOr(metric.first, 0.0);
            delta.after = metric.second;
            delta.direction = metricDirection(metric.first);
            const std::string spreadKey =
                metric.first + "_spread_rel";
            delta.tolerance = std::max(
                {tolerance, a->metricOr(spreadKey, 0.0),
                 b.metricOr(spreadKey, 0.0)});
            cmp.deltas.push_back(std::move(delta));
        }
    }
    for (const PerfRecord &a : before)
        if (!findRecord(after, a.name))
            cmp.onlyBefore.push_back(a.name);
    return cmp;
}

std::string
perfTableMarkdown(const PerfComparison &cmp, const std::string &title)
{
    std::string out = "### " + title + "\n\n";
    out += "| record | metric | before | after | delta | gate |\n";
    out += "|---|---|---:|---:|---:|---|\n";
    for (const PerfDelta &delta : cmp.deltas) {
        std::string gate = " ";
        if (delta.direction == MetricDirection::HigherIsBetter) {
            if (delta.regression())
                gate = "**FAIL** (tol " +
                    formatPercent(-delta.tolerance) + ")";
            else
                gate = "ok (tol " + formatPercent(-delta.tolerance) +
                    ")";
        }
        out += "| " + delta.record + " | " + delta.metric + " | " +
            formatNumber(delta.before) + " | " +
            formatNumber(delta.after) + " | " +
            formatPercent(delta.deltaRel()) + " | " + gate + " |\n";
    }
    for (const std::string &name : cmp.onlyBefore)
        out += "| " + name +
            " | — | — | *(record removed)* | | not gated |\n";
    for (const std::string &name : cmp.onlyAfter)
        out += "| " + name +
            " | — | *(new record)* | — | | not gated |\n";
    out += "\n";
    return out;
}

namespace
{

std::string
escapeHtml(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          default:  out += c;
        }
    }
    return out;
}

/**
 * A signed delta bar: width proportional to |delta| (clamped to
 * ±30%), green for improvements of gating metrics, red for drops,
 * grey for informational metrics.
 */
std::string
deltaBarHtml(const PerfDelta &delta)
{
    const double rel = delta.deltaRel();
    const double clamped = std::clamp(rel, -0.30, 0.30);
    const int widthPx =
        static_cast<int>(std::fabs(clamped) / 0.30 * 60.0);
    const char *color = "#999";
    if (delta.direction == MetricDirection::HigherIsBetter)
        color = rel < 0.0 ? "#c0392b" : "#27ae60";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "<span class=\"bar\" style=\"width:%dpx;"
                  "background:%s\"></span>",
                  widthPx, color);
    return buf;
}

} // namespace

std::string
perfReportHtml(
    const std::vector<std::pair<std::string, PerfComparison>> &sections,
    const std::string &title)
{
    std::string out =
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
        "<meta charset=\"utf-8\">\n<title>" +
        escapeHtml(title) +
        "</title>\n<style>\n"
        "body{font:14px/1.5 -apple-system,system-ui,sans-serif;"
        "margin:2em auto;max-width:60em;color:#222}\n"
        "table{border-collapse:collapse;width:100%;margin:1em 0}\n"
        "th,td{border:1px solid #ddd;padding:4px 8px;"
        "text-align:right;font-variant-numeric:tabular-nums}\n"
        "th:first-child,td:first-child,th:nth-child(2),"
        "td:nth-child(2){text-align:left}\n"
        "th{background:#f4f4f4}\n"
        ".bar{display:inline-block;height:10px;"
        "vertical-align:middle}\n"
        ".fail{color:#c0392b;font-weight:bold}\n"
        ".ok{color:#27ae60}\n"
        ".note{color:#777;font-style:italic}\n"
        "</style>\n</head>\n<body>\n<h1>" +
        escapeHtml(title) + "</h1>\n";

    for (const auto &[heading, cmp] : sections) {
        out += "<h2>" + escapeHtml(heading) + "</h2>\n";
        out += "<table>\n<tr><th>record</th><th>metric</th>"
               "<th>before</th><th>after</th><th>delta</th>"
               "<th></th><th>gate</th></tr>\n";
        for (const PerfDelta &delta : cmp.deltas) {
            std::string gate = "";
            if (delta.direction == MetricDirection::HigherIsBetter) {
                const std::string tol =
                    escapeHtml(formatPercent(-delta.tolerance));
                gate = delta.regression()
                    ? "<span class=\"fail\">FAIL</span> (tol " + tol +
                        ")"
                    : "<span class=\"ok\">ok</span> (tol " + tol + ")";
            }
            out += "<tr><td>" + escapeHtml(delta.record) + "</td><td>" +
                escapeHtml(delta.metric) + "</td><td>" +
                escapeHtml(formatNumber(delta.before)) + "</td><td>" +
                escapeHtml(formatNumber(delta.after)) + "</td><td>" +
                escapeHtml(formatPercent(delta.deltaRel())) +
                "</td><td>" + deltaBarHtml(delta) + "</td><td>" + gate +
                "</td></tr>\n";
        }
        for (const std::string &name : cmp.onlyBefore)
            out += "<tr><td>" + escapeHtml(name) +
                "</td><td colspan=\"6\" class=\"note\">record "
                "removed (not gated)</td></tr>\n";
        for (const std::string &name : cmp.onlyAfter)
            out += "<tr><td>" + escapeHtml(name) +
                "</td><td colspan=\"6\" class=\"note\">new record "
                "(not gated)</td></tr>\n";
        out += "</table>\n";
    }
    out += "</body>\n</html>\n";
    return out;
}

} // namespace lhr
