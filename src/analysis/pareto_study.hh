/**
 * @file
 * Measured Pareto efficiency analysis at 45nm (paper section 4.2,
 * Table 5 and Figure 12): the 29 45nm processor configurations are
 * treated as proxies for alternative design points, and the
 * energy/performance frontier is extracted per workload group and
 * for the equal-weight average.
 */

#ifndef LHR_ANALYSIS_PARETO_STUDY_HH
#define LHR_ANALYSIS_PARETO_STUDY_HH

#include <optional>
#include <vector>

#include "harness/aggregate.hh"
#include "stats/pareto.hh"

namespace lhr
{

/**
 * Energy/performance points of all 45nm configurations for one
 * workload group, or for the equal-weight average when `group` is
 * empty. Performance is speedup over reference; energy is
 * normalized to reference energy.
 */
std::vector<ParetoPoint>
paretoPoints45nm(ExperimentRunner &runner, const ReferenceSet &ref,
                 std::optional<Group> group);

/** The Pareto-efficient subset of paretoPoints45nm(). */
std::vector<ParetoPoint>
paretoFrontier45nm(ExperimentRunner &runner, const ReferenceSet &ref,
                   std::optional<Group> group);

} // namespace lhr

#endif // LHR_ANALYSIS_PARETO_STUDY_HH
