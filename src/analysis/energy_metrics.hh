/**
 * @file
 * Energy-efficiency metrics beyond plain energy.
 *
 * The paper analyzes energy (power x time) and the
 * energy/performance Pareto space. The design-exploration literature
 * it engages (Azizi et al., Horowitz et al.) also ranks designs by
 * energy-delay product (EDP) and energy-delay-squared (ED2P), which
 * weight performance progressively more. These helpers extend the
 * Pareto study with those metrics.
 */

#ifndef LHR_ANALYSIS_ENERGY_METRICS_HH
#define LHR_ANALYSIS_ENERGY_METRICS_HH

#include <optional>
#include <string>
#include <vector>

#include "harness/aggregate.hh"

namespace lhr
{

/** The efficiency metric used to rank configurations. */
enum class EfficiencyMetric
{
    Energy,  ///< normalized energy (the paper's y-axis)
    Edp,     ///< energy x delay
    Ed2p     ///< energy x delay^2
};

/** Printable metric name. */
std::string efficiencyMetricName(EfficiencyMetric metric);

/**
 * Metric value from a normalized (perf, energy) pair: delay is the
 * reciprocal of normalized performance, so
 *   Energy: E,   EDP: E / perf,   ED2P: E / perf^2.
 * Smaller is better for all three.
 */
double efficiencyValue(EfficiencyMetric metric, double perf,
                       double energy);

/** One configuration ranked under a metric. */
struct RankedConfig
{
    std::string label;
    double perf;
    double energy;
    double value;   ///< the metric value (smaller is better)
};

/**
 * Rank the 45nm configurations under a metric for one group (or the
 * equal-weight average when group is empty), best first.
 */
std::vector<RankedConfig>
rankConfigurations45nm(ExperimentRunner &runner, const ReferenceSet &ref,
                       EfficiencyMetric metric,
                       std::optional<Group> group);

} // namespace lhr

#endif // LHR_ANALYSIS_ENERGY_METRICS_HH
