#include "analysis/energy_metrics.hh"

#include <algorithm>

#include "analysis/pareto_study.hh"
#include "util/logging.hh"

namespace lhr
{

std::string
efficiencyMetricName(EfficiencyMetric metric)
{
    switch (metric) {
      case EfficiencyMetric::Energy: return "energy";
      case EfficiencyMetric::Edp:    return "EDP";
      case EfficiencyMetric::Ed2p:   return "ED^2P";
    }
    panic("efficiencyMetricName: unknown metric");
}

double
efficiencyValue(EfficiencyMetric metric, double perf, double energy)
{
    if (perf <= 0.0 || energy <= 0.0)
        panic("efficiencyValue: non-positive inputs");
    switch (metric) {
      case EfficiencyMetric::Energy: return energy;
      case EfficiencyMetric::Edp:    return energy / perf;
      case EfficiencyMetric::Ed2p:   return energy / (perf * perf);
    }
    panic("efficiencyValue: unknown metric");
}

std::vector<RankedConfig>
rankConfigurations45nm(ExperimentRunner &runner, const ReferenceSet &ref,
                       EfficiencyMetric metric,
                       std::optional<Group> group)
{
    std::vector<RankedConfig> ranked;
    for (const auto &pt : paretoPoints45nm(runner, ref, group)) {
        ranked.push_back(
            {pt.label, pt.performance, pt.energy,
             efficiencyValue(metric, pt.performance, pt.energy)});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const RankedConfig &a, const RankedConfig &b) {
                  return a.value < b.value;
              });
    return ranked;
}

} // namespace lhr
