#include "analysis/historical.hh"

#include <algorithm>

#include "util/logging.hh"

namespace lhr
{

double
HistoricalPoint::perfPerMtran() const
{
    return aggregate.weighted.perf / spec->transistorsM;
}

double
HistoricalPoint::powerPerMtran() const
{
    return aggregate.weighted.powerW / spec->transistorsM;
}

std::vector<HistoricalPoint>
historicalOverview(ExperimentRunner &runner, const ReferenceSet &ref)
{
    std::vector<HistoricalPoint> points;
    for (const auto &spec : allProcessors()) {
        HistoricalPoint pt{&spec,
                           aggregateConfig(runner, ref,
                                           stockConfig(spec))};
        points.push_back(pt);
    }
    return points;
}

ProjectedPoint
projectToNode(const HistoricalPoint &point, Node target,
              double clock_ratio)
{
    if (clock_ratio <= 0.0)
        panic("projectToNode: non-positive clock ratio");
    const TechNode &from = point.spec->tech();
    const TechNode &to = techNode(target);

    // Dynamic power scales with effective capacitance, V^2, and
    // frequency; performance is assumed clock-bound for a fixed
    // microarchitecture (memory latency in real silicon would eat
    // some of this — the paper's claim is deliberately first-order).
    const double vRatio = to.vNominal / from.vNominal;
    const double powerScale =
        (to.capScale / from.capScale) * vRatio * vRatio * clock_ratio;

    ProjectedPoint projected;
    projected.label = point.spec->id + " -> " + to.name +
        " (projected)";
    projected.perf = point.aggregate.weighted.perf * clock_ratio;
    projected.powerW = point.aggregate.weighted.powerW * powerScale;
    return projected;
}

std::vector<int>
rankOf(const std::vector<double> &values, bool ascending)
{
    std::vector<int> ranks(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
        int rank = 1;
        for (size_t j = 0; j < values.size(); ++j) {
            if (j == i)
                continue;
            const bool beats = ascending ? values[j] < values[i]
                                         : values[j] > values[i];
            if (beats)
                ++rank;
        }
        ranks[i] = rank;
    }
    return ranks;
}

} // namespace lhr
