/**
 * @file
 * A/B comparison of perf-baseline artifacts (BENCH_sweep.json,
 * BENCH_trace.json) for the CI regression gate.
 *
 * Both bench drivers emit an array of {name, config, metrics,
 * wall_sec} records; this module parses two such files, matches
 * records by name, and classifies every metric delta. Only
 * throughput metrics — names ending in "_per_sec" — gate: they are
 * medians over repetitions (see bench/sweep_throughput.cc), so a
 * drop beyond the tolerance is a real regression, not scheduler
 * noise. The gate is additionally noise-aware: when a record
 * carries "<metric>_spread_rel" (relative min-to-max spread across
 * the repetitions), the tolerance for that metric widens to at
 * least the spread observed on either side, so a machine whose
 * repetitions disagree by 20% cannot fail a 15% gate on noise
 * alone. Everything else (wall_sec, cache counters, speedup) is
 * reported in the table but never fails the build.
 */

#ifndef LHR_ANALYSIS_PERF_COMPARE_HH
#define LHR_ANALYSIS_PERF_COMPARE_HH

#include <string>
#include <utility>
#include <vector>

#include "util/fp.hh"
#include "util/status.hh"

namespace lhr
{

/** One bench record: its name and flattened numeric metrics. */
struct PerfRecord
{
    std::string name;
    /** "metrics.*" members plus wall_sec, in document order. */
    std::vector<std::pair<std::string, double>> metrics;

    /** Metric by name, or `fallback` when absent. */
    [[nodiscard]] double metricOr(const std::string &key, double fallback) const;
    [[nodiscard]] bool hasMetric(const std::string &key) const;
};

/**
 * Parse a bench baseline document (a JSON array of records).
 * Records without a string "name" are a ParseError; non-numeric
 * metrics are skipped (the writer emits null for non-finite values).
 */
[[nodiscard]] Expected<std::vector<PerfRecord>>
parsePerfRecords(const std::string &json_text);

/** How a metric's delta is judged. */
enum class MetricDirection
{
    HigherIsBetter, ///< throughput: "*_per_sec" — gates
    Informational,  ///< everything else — reported only
};

[[nodiscard]] MetricDirection metricDirection(const std::string &metric);

/** One metric of one record, before vs after. */
struct PerfDelta
{
    std::string record; ///< record name, e.g. "sweep_serial"
    std::string metric; ///< metric name, e.g. "experiments_per_sec"
    double before = 0.0;
    double after = 0.0;
    MetricDirection direction = MetricDirection::Informational;
    /**
     * Gate tolerance for this delta: the configured tolerance
     * widened to the repetition spread either side reported
     * ("<metric>_spread_rel"), so noisy hosts do not false-fail.
     */
    double tolerance = 0.0;

    /** (after - before) / before; 0 when before is 0. */
    [[nodiscard]] double deltaRel() const
    {
        return !exactZero(before) ? (after - before) / before : 0.0;
    }

    /** True when this delta fails the gate. */
    [[nodiscard]] bool regression() const
    {
        return direction == MetricDirection::HigherIsBetter &&
            deltaRel() < -tolerance;
    }
};

/** The full A/B comparison of two baseline files. */
struct PerfComparison
{
    std::vector<PerfDelta> deltas;       ///< matched, in B-file order
    std::vector<std::string> onlyBefore; ///< records gone in B
    std::vector<std::string> onlyAfter;  ///< records new in B

    [[nodiscard]] bool hasRegression() const;
    [[nodiscard]] std::vector<const PerfDelta *> regressions() const;
};

/**
 * Compare two parsed baselines. `tolerance` is the relative drop a
 * gating metric may take before it counts as a regression (0.15 =
 * 15%); per-metric spreads can only widen it, never narrow it.
 */
[[nodiscard]] PerfComparison comparePerfRecords(const std::vector<PerfRecord> &before,
                                  const std::vector<PerfRecord> &after,
                                  double tolerance);

/**
 * GitHub-flavoured markdown A/B table of the comparison — emitted
 * into the CI job summary whether or not the gate fails, so every
 * run documents its perf delta.
 */
std::string perfTableMarkdown(const PerfComparison &cmp,
                              const std::string &title);

/**
 * Self-contained single-file HTML A/B report of one or more
 * comparisons (the csbench idiom: inline CSS, no external assets, a
 * delta bar per metric), from the same data as perfTableMarkdown().
 * `sections` pairs each comparison with its heading (usually the
 * "BEFORE vs AFTER" file names).
 */
std::string perfReportHtml(
    const std::vector<std::pair<std::string, PerfComparison>> &sections,
    const std::string &title);

} // namespace lhr

#endif // LHR_ANALYSIS_PERF_COMPARE_HH
