/**
 * @file
 * Controlled feature analyses (paper section 3).
 *
 * Each study compares pairs of machine configurations that differ in
 * exactly one feature — core count (CMP), simultaneous
 * multithreading (SMT), clock frequency, die shrink, gross
 * microarchitecture, or Turbo Boost — and reports relative
 * performance, power, and energy, averaged with the paper's
 * equal-group weighting and broken down per workload group.
 */

#ifndef LHR_ANALYSIS_FEATURES_HH
#define LHR_ANALYSIS_FEATURES_HH

#include <array>
#include <string>
#include <vector>

#include "harness/aggregate.hh"

namespace lhr
{

/** Relative effect of a feature: ratios of new over old. */
struct FeatureEffect
{
    double perf;
    double power;
    double energy;
};

/** A feature effect with its per-group breakdown. */
struct GroupedEffect
{
    std::string label;                      ///< e.g. "i7 (45)"
    FeatureEffect average;                  ///< equal-group-weighted
    std::array<FeatureEffect, 4> byGroup;   ///< Group order
};

/**
 * Compare two configurations: ratios of the group aggregates of
 * `subject` over `baseline`.
 */
GroupedEffect compareConfigs(ExperimentRunner &runner,
                             const ReferenceSet &ref,
                             const MachineConfig &subject,
                             const MachineConfig &baseline,
                             const std::string &label);

/**
 * One controlled comparison: the two configurations a feature study
 * measures and the label its effect is reported under.
 *
 * Every feature study declares its comparisons as data (the *Pairs()
 * functions below) and measures by iterating them. The declaration
 * is what lets a driver union the configuration grids of many
 * studies into a single parallel Lab::prewarm pass before any study
 * measures serially.
 */
struct StudyPair
{
    MachineConfig subject;
    MachineConfig baseline;
    std::string label;
};

/** The comparisons of the CMP study (Figure 4). */
std::vector<StudyPair> cmpStudyPairs();

/** The comparisons of the SMT study (Figure 5). */
std::vector<StudyPair> smtStudyPairs();

/** The min/max-clock comparisons of the clock study (Figure 7a/b). */
std::vector<StudyPair> clockStudyPairs();

/** The comparisons of the die shrink study (Figure 8). */
std::vector<StudyPair> dieShrinkPairs(bool matched_clocks);

/** The comparisons of the microarchitecture study (Figure 9). */
std::vector<StudyPair> uarchStudyPairs();

/** The comparisons of the Turbo Boost study (Figure 10). */
std::vector<StudyPair> turboStudyPairs();

/** The clock points clockSweep() measures. */
std::vector<MachineConfig> clockSweepConfigs(
    const std::string &processor_id, int steps);

/** The two configurations javaScalability() measures. */
std::vector<MachineConfig> javaScalabilityConfigs();

/** The two configurations javaSingleThreadedCmp() measures. */
std::vector<MachineConfig> javaSingleThreadedCmpConfigs();

/** Flatten study pairs into their configuration grid. */
std::vector<MachineConfig> pairConfigs(
    const std::vector<StudyPair> &pairs);

/**
 * CMP study (Figure 4): two cores versus one, SMT and Turbo
 * disabled, on the i7 (45) and i5 (32).
 */
std::vector<GroupedEffect> cmpStudy(ExperimentRunner &runner,
                                    const ReferenceSet &ref);

/**
 * SMT study (Figure 5): two threads versus one on a single core, on
 * Pentium 4 (130), i7 (45), Atom (45), i5 (32); Turbo disabled.
 */
std::vector<GroupedEffect> smtStudy(ExperimentRunner &runner,
                                    const ReferenceSet &ref);

/**
 * Clock scaling study (Figure 7a/b): effect of doubling the clock,
 * derived from the min-to-max clock sweep of i7 (45), C2D (45) and
 * i5 (32), expressed per clock doubling.
 */
std::vector<GroupedEffect> clockStudy(ExperimentRunner &runner,
                                      const ReferenceSet &ref);

/** One point of a clock-scaling energy curve (Figure 7c/d). */
struct ClockPoint
{
    double clockGhz;
    double perfRelBase;     ///< performance / performance at fMin
    double energyRelBase;   ///< energy / energy at fMin
    std::array<double, 4> groupPerfAbs;  ///< perf vs reference
    std::array<double, 4> groupPowerW;   ///< absolute watts
};

/** Sweep a processor's clock range in `steps` points. */
std::vector<ClockPoint> clockSweep(ExperimentRunner &runner,
                                   const ReferenceSet &ref,
                                   const std::string &processor_id,
                                   int steps);

/**
 * Die shrink study (Figure 8): Core 2D (65)->(45) and Nehalem
 * i7 (45)->i5 (32) at native and matched clocks, controlling for
 * core/thread counts.
 */
std::vector<GroupedEffect> dieShrinkStudy(ExperimentRunner &runner,
                                          const ReferenceSet &ref,
                                          bool matched_clocks);

/**
 * Gross microarchitecture study (Figure 9): Nehalem versus Bonnell,
 * NetBurst and Core at matched clock speed and hardware parallelism.
 */
std::vector<GroupedEffect> uarchStudy(ExperimentRunner &runner,
                                      const ReferenceSet &ref);

/**
 * Turbo Boost study (Figure 10): enabled versus disabled, stock and
 * single-context, on the i7 (45) and i5 (32).
 */
std::vector<GroupedEffect> turboStudy(ExperimentRunner &runner,
                                      const ReferenceSet &ref);

/**
 * Scalability of the Java multithreaded benchmarks on the i7
 * (Figure 1): time on 1C1T divided by time on 4C2T, descending.
 */
std::vector<std::pair<std::string, double>>
javaScalability(ExperimentRunner &runner);

/**
 * CMP impact for single-threaded Java on the i7 (Figure 6):
 * time on 1C1T divided by time on 2C1T (SMT and Turbo off).
 */
std::vector<std::pair<std::string, double>>
javaSingleThreadedCmp(ExperimentRunner &runner);

} // namespace lhr

#endif // LHR_ANALYSIS_FEATURES_HH
