#include "analysis/features.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lhr
{

namespace
{

FeatureEffect
ratioOf(const GroupAggregate &subject, const GroupAggregate &baseline)
{
    return {subject.perf / baseline.perf,
            subject.powerW / baseline.powerW,
            subject.energy / baseline.energy};
}

} // namespace

GroupedEffect
compareConfigs(ExperimentRunner &runner, const ReferenceSet &ref,
               const MachineConfig &subject, const MachineConfig &baseline,
               const std::string &label)
{
    const ConfigAggregate s = aggregateConfig(runner, ref, subject);
    const ConfigAggregate b = aggregateConfig(runner, ref, baseline);
    GroupedEffect effect;
    effect.label = label;
    effect.average = ratioOf(s.weighted, b.weighted);
    for (size_t gi = 0; gi < effect.byGroup.size(); ++gi)
        effect.byGroup[gi] = ratioOf(s.byGroup[gi], b.byGroup[gi]);
    return effect;
}

std::vector<GroupedEffect>
cmpStudy(ExperimentRunner &runner, const ReferenceSet &ref)
{
    std::vector<GroupedEffect> effects;
    for (const std::string id : {"i7 (45)", "i5 (32)"}) {
        auto base = stockConfig(processorById(id));
        base = withTurbo(withSmt(base, false), false);
        const auto one = withCores(base, 1);
        const auto two = withCores(base, 2);
        effects.push_back(
            compareConfigs(runner, ref, two, one, id));
    }
    return effects;
}

std::vector<GroupedEffect>
smtStudy(ExperimentRunner &runner, const ReferenceSet &ref)
{
    std::vector<GroupedEffect> effects;
    for (const std::string id :
             {"Pentium4 (130)", "i7 (45)", "Atom (45)", "i5 (32)"}) {
        auto base = withCores(stockConfig(processorById(id)), 1);
        if (base.spec->hasTurbo)
            base = withTurbo(base, false);
        const auto smtOff = withSmt(base, false);
        const auto smtOn = withSmt(base, true);
        effects.push_back(
            compareConfigs(runner, ref, smtOn, smtOff, id));
    }
    return effects;
}

std::vector<GroupedEffect>
clockStudy(ExperimentRunner &runner, const ReferenceSet &ref)
{
    std::vector<GroupedEffect> effects;
    for (const std::string id : {"i7 (45)", "C2D (45)", "i5 (32)"}) {
        auto base = stockConfig(processorById(id));
        if (base.spec->hasTurbo)
            base = withTurbo(base, false);
        const auto slow = withClock(base, base.spec->fMinGhz);
        const auto fast = withClock(base, base.spec->stockClockGhz);
        GroupedEffect span =
            compareConfigs(runner, ref, fast, slow, id);

        // Normalize the min-to-max span to one clock doubling.
        const double doublings =
            std::log2(base.spec->stockClockGhz / base.spec->fMinGhz);
        auto perDoubling = [doublings](FeatureEffect &e) {
            e.perf = std::pow(e.perf, 1.0 / doublings);
            e.power = std::pow(e.power, 1.0 / doublings);
            e.energy = std::pow(e.energy, 1.0 / doublings);
        };
        perDoubling(span.average);
        for (auto &g : span.byGroup)
            perDoubling(g);
        effects.push_back(span);
    }
    return effects;
}

std::vector<ClockPoint>
clockSweep(ExperimentRunner &runner, const ReferenceSet &ref,
           const std::string &processor_id, int steps)
{
    if (steps < 2)
        panic("clockSweep: need at least two steps");
    auto base = stockConfig(processorById(processor_id));
    if (base.spec->hasTurbo)
        base = withTurbo(base, false);
    const double fLo = base.spec->fMinGhz;
    const double fHi = base.spec->stockClockGhz;

    std::vector<ClockPoint> points;
    double basePerf = 0.0;
    double baseEnergy = 0.0;
    for (int i = 0; i < steps; ++i) {
        const double f = fLo + (fHi - fLo) * i / (steps - 1);
        const auto cfg = withClock(base, f);
        const ConfigAggregate agg = aggregateConfig(runner, ref, cfg);
        if (i == 0) {
            basePerf = agg.weighted.perf;
            baseEnergy = agg.weighted.energy;
        }
        ClockPoint pt;
        pt.clockGhz = f;
        pt.perfRelBase = agg.weighted.perf / basePerf;
        pt.energyRelBase = agg.weighted.energy / baseEnergy;
        for (size_t gi = 0; gi < pt.groupPerfAbs.size(); ++gi) {
            pt.groupPerfAbs[gi] = agg.byGroup[gi].perf;
            pt.groupPowerW[gi] = agg.byGroup[gi].powerW;
        }
        points.push_back(pt);
    }
    return points;
}

std::vector<GroupedEffect>
dieShrinkStudy(ExperimentRunner &runner, const ReferenceSet &ref,
               bool matched_clocks)
{
    std::vector<GroupedEffect> effects;

    // Core family: Conroe (65nm) -> Wolfdale (45nm), both 2C1T.
    {
        const auto oldCfg = stockConfig(processorById("C2D (65)"));
        auto newCfg = stockConfig(processorById("C2D (45)"));
        if (matched_clocks)
            newCfg = withClock(newCfg, 2.4);
        effects.push_back(compareConfigs(
            runner, ref, newCfg, oldCfg,
            matched_clocks ? "Core 2.4GHz" : "Core"));
    }

    // Nehalem family: Bloomfield (45nm) -> Clarkdale (32nm),
    // controlling the i7 to the i5's two cores.
    {
        auto oldCfg = withCores(
            withTurbo(stockConfig(processorById("i7 (45)")), false), 2);
        auto newCfg = withTurbo(
            stockConfig(processorById("i5 (32)")), false);
        if (matched_clocks)
            newCfg = withClock(newCfg, oldCfg.spec->stockClockGhz);
        effects.push_back(compareConfigs(
            runner, ref, newCfg, oldCfg,
            matched_clocks ? "Nehalem 2C2T 2.6GHz" : "Nehalem 2C2T"));
    }
    return effects;
}

std::vector<GroupedEffect>
uarchStudy(ExperimentRunner &runner, const ReferenceSet &ref)
{
    std::vector<GroupedEffect> effects;

    // i7 vs Atom D510: 2 cores, 2 threads, 1.7GHz.
    {
        const auto atomD = stockConfig(processorById("AtomD (45)"));
        auto i7 = withTurbo(stockConfig(processorById("i7 (45)")), false);
        i7 = withClock(withCores(i7, 2), atomD.spec->stockClockGhz);
        effects.push_back(compareConfigs(
            runner, ref, i7, atomD, "Bonnell: i7 (45) / AtomD (45)"));
    }

    // i7 vs Pentium 4: 1 core, 2 threads, 2.4GHz.
    {
        const auto p4 = stockConfig(processorById("Pentium4 (130)"));
        auto i7 = withTurbo(stockConfig(processorById("i7 (45)")), false);
        i7 = withClock(withCores(i7, 1), 2.4);
        effects.push_back(compareConfigs(
            runner, ref, i7, p4, "NetBurst: i7 (45) / Pentium4 (130)"));
    }

    // i7 vs Core 2 Duo E7600: 2 cores, 1 thread, at the i7's clock.
    {
        auto i7 = withTurbo(stockConfig(processorById("i7 (45)")), false);
        i7 = withSmt(withCores(i7, 2), false);
        auto c2d = withClock(stockConfig(processorById("C2D (45)")),
                             i7.clockGhz);
        effects.push_back(compareConfigs(
            runner, ref, i7, c2d, "Core: i7 (45) / C2D (45)"));
    }

    // i5 vs Core 2 Duo E6600: 2 cores, 1 thread, 2.4GHz.
    {
        const auto c2d = stockConfig(processorById("C2D (65)"));
        auto i5 = withTurbo(stockConfig(processorById("i5 (32)")), false);
        i5 = withClock(withSmt(i5, false), 2.4);
        effects.push_back(compareConfigs(
            runner, ref, i5, c2d, "Core: i5 (32) / C2D (65)"));
    }
    return effects;
}

std::vector<GroupedEffect>
turboStudy(ExperimentRunner &runner, const ReferenceSet &ref)
{
    std::vector<GroupedEffect> effects;
    for (const std::string id : {"i7 (45)", "i5 (32)"}) {
        const auto stock = stockConfig(processorById(id));
        effects.push_back(compareConfigs(
            runner, ref, withTurbo(stock, true),
            withTurbo(stock, false),
            msgOf(id, " ", stock.enabledCores, "C",
                  stock.smtPerCore, "T")));
        const auto single = withSmt(withCores(stock, 1), false);
        effects.push_back(compareConfigs(
            runner, ref, withTurbo(single, true),
            withTurbo(single, false), id + " 1C1T"));
    }
    return effects;
}

std::vector<std::pair<std::string, double>>
javaScalability(ExperimentRunner &runner)
{
    auto base = withTurbo(stockConfig(processorById("i7 (45)")), false);
    const auto full = base;                                   // 4C2T
    const auto single = withSmt(withCores(base, 1), false);   // 1C1T

    std::vector<std::pair<std::string, double>> result;
    for (const auto &bench : allBenchmarks()) {
        if (bench.language() != Language::Java)
            continue;
        const bool multithreaded =
            bench.appThreads == 0 || bench.appThreads > 1;
        if (!multithreaded)
            continue;
        const double t1 = runner.measure(single, bench).timeSec;
        const double t8 = runner.measure(full, bench).timeSec;
        result.emplace_back(bench.name, t1 / t8);
    }
    std::sort(result.begin(), result.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    return result;
}

std::vector<std::pair<std::string, double>>
javaSingleThreadedCmp(ExperimentRunner &runner)
{
    auto base = withSmt(
        withTurbo(stockConfig(processorById("i7 (45)")), false), false);
    const auto one = withCores(base, 1);
    const auto two = withCores(base, 2);

    std::vector<std::pair<std::string, double>> result;
    for (const auto &bench : allBenchmarks()) {
        if (bench.language() != Language::Java)
            continue;
        if (bench.appThreads != 1)
            continue;
        const double t1 = runner.measure(one, bench).timeSec;
        const double t2 = runner.measure(two, bench).timeSec;
        result.emplace_back(bench.name, t1 / t2);
    }
    std::sort(result.begin(), result.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    return result;
}

} // namespace lhr
