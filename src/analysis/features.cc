#include "analysis/features.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lhr
{

namespace
{

FeatureEffect
ratioOf(const GroupAggregate &subject, const GroupAggregate &baseline)
{
    return {subject.perf / baseline.perf,
            subject.powerW / baseline.powerW,
            subject.energy / baseline.energy};
}

/** Measure every declared comparison of a study. */
std::vector<GroupedEffect>
compareAll(ExperimentRunner &runner, const ReferenceSet &ref,
           const std::vector<StudyPair> &pairs)
{
    std::vector<GroupedEffect> effects;
    for (const auto &pair : pairs) {
        effects.push_back(compareConfigs(runner, ref, pair.subject,
                                         pair.baseline, pair.label));
    }
    return effects;
}

} // namespace

GroupedEffect
compareConfigs(ExperimentRunner &runner, const ReferenceSet &ref,
               const MachineConfig &subject, const MachineConfig &baseline,
               const std::string &label)
{
    const ConfigAggregate s = aggregateConfig(runner, ref, subject);
    const ConfigAggregate b = aggregateConfig(runner, ref, baseline);
    GroupedEffect effect;
    effect.label = label;
    effect.average = ratioOf(s.weighted, b.weighted);
    for (size_t gi = 0; gi < effect.byGroup.size(); ++gi)
        effect.byGroup[gi] = ratioOf(s.byGroup[gi], b.byGroup[gi]);
    return effect;
}

std::vector<MachineConfig>
pairConfigs(const std::vector<StudyPair> &pairs)
{
    std::vector<MachineConfig> configs;
    for (const auto &pair : pairs) {
        configs.push_back(pair.subject);
        configs.push_back(pair.baseline);
    }
    return configs;
}

std::vector<StudyPair>
cmpStudyPairs()
{
    std::vector<StudyPair> pairs;
    for (const std::string id : {"i7 (45)", "i5 (32)"}) {
        auto base = stockConfig(processorById(id));
        base = withTurbo(withSmt(base, false), false);
        pairs.push_back({withCores(base, 2), withCores(base, 1), id});
    }
    return pairs;
}

std::vector<GroupedEffect>
cmpStudy(ExperimentRunner &runner, const ReferenceSet &ref)
{
    return compareAll(runner, ref, cmpStudyPairs());
}

std::vector<StudyPair>
smtStudyPairs()
{
    std::vector<StudyPair> pairs;
    for (const std::string id :
             {"Pentium4 (130)", "i7 (45)", "Atom (45)", "i5 (32)"}) {
        auto base = withCores(stockConfig(processorById(id)), 1);
        if (base.spec->hasTurbo)
            base = withTurbo(base, false);
        pairs.push_back(
            {withSmt(base, true), withSmt(base, false), id});
    }
    return pairs;
}

std::vector<GroupedEffect>
smtStudy(ExperimentRunner &runner, const ReferenceSet &ref)
{
    return compareAll(runner, ref, smtStudyPairs());
}

std::vector<StudyPair>
clockStudyPairs()
{
    std::vector<StudyPair> pairs;
    for (const std::string id : {"i7 (45)", "C2D (45)", "i5 (32)"}) {
        auto base = stockConfig(processorById(id));
        if (base.spec->hasTurbo)
            base = withTurbo(base, false);
        pairs.push_back({withClock(base, base.spec->stockClockGhz),
                         withClock(base, base.spec->fMinGhz), id});
    }
    return pairs;
}

std::vector<GroupedEffect>
clockStudy(ExperimentRunner &runner, const ReferenceSet &ref)
{
    std::vector<GroupedEffect> effects;
    for (const auto &pair : clockStudyPairs()) {
        GroupedEffect span = compareConfigs(
            runner, ref, pair.subject, pair.baseline, pair.label);

        // Normalize the min-to-max span to one clock doubling.
        const double doublings =
            std::log2(pair.subject.clockGhz / pair.baseline.clockGhz);
        auto perDoubling = [doublings](FeatureEffect &e) {
            e.perf = std::pow(e.perf, 1.0 / doublings);
            e.power = std::pow(e.power, 1.0 / doublings);
            e.energy = std::pow(e.energy, 1.0 / doublings);
        };
        perDoubling(span.average);
        for (auto &g : span.byGroup)
            perDoubling(g);
        effects.push_back(span);
    }
    return effects;
}

std::vector<MachineConfig>
clockSweepConfigs(const std::string &processor_id, int steps)
{
    if (steps < 2)
        panic("clockSweep: need at least two steps");
    auto base = stockConfig(processorById(processor_id));
    if (base.spec->hasTurbo)
        base = withTurbo(base, false);
    const double fLo = base.spec->fMinGhz;
    const double fHi = base.spec->stockClockGhz;

    std::vector<MachineConfig> configs;
    for (int i = 0; i < steps; ++i) {
        const double f = fLo + (fHi - fLo) * i / (steps - 1);
        configs.push_back(withClock(base, f));
    }
    return configs;
}

std::vector<ClockPoint>
clockSweep(ExperimentRunner &runner, const ReferenceSet &ref,
           const std::string &processor_id, int steps)
{
    std::vector<ClockPoint> points;
    double basePerf = 0.0;
    double baseEnergy = 0.0;
    for (const auto &cfg : clockSweepConfigs(processor_id, steps)) {
        const ConfigAggregate agg = aggregateConfig(runner, ref, cfg);
        if (points.empty()) {
            basePerf = agg.weighted.perf;
            baseEnergy = agg.weighted.energy;
        }
        ClockPoint pt;
        pt.clockGhz = cfg.clockGhz;
        pt.perfRelBase = agg.weighted.perf / basePerf;
        pt.energyRelBase = agg.weighted.energy / baseEnergy;
        for (size_t gi = 0; gi < pt.groupPerfAbs.size(); ++gi) {
            pt.groupPerfAbs[gi] = agg.byGroup[gi].perf;
            pt.groupPowerW[gi] = agg.byGroup[gi].powerW;
        }
        points.push_back(pt);
    }
    return points;
}

std::vector<StudyPair>
dieShrinkPairs(bool matched_clocks)
{
    std::vector<StudyPair> pairs;

    // Core family: Conroe (65nm) -> Wolfdale (45nm), both 2C1T.
    {
        const auto oldCfg = stockConfig(processorById("C2D (65)"));
        auto newCfg = stockConfig(processorById("C2D (45)"));
        if (matched_clocks)
            newCfg = withClock(newCfg, 2.4);
        pairs.push_back({newCfg, oldCfg,
                         matched_clocks ? "Core 2.4GHz" : "Core"});
    }

    // Nehalem family: Bloomfield (45nm) -> Clarkdale (32nm),
    // controlling the i7 to the i5's two cores.
    {
        auto oldCfg = withCores(
            withTurbo(stockConfig(processorById("i7 (45)")), false), 2);
        auto newCfg = withTurbo(
            stockConfig(processorById("i5 (32)")), false);
        if (matched_clocks)
            newCfg = withClock(newCfg, oldCfg.spec->stockClockGhz);
        pairs.push_back({newCfg, oldCfg,
                         matched_clocks ? "Nehalem 2C2T 2.6GHz"
                                        : "Nehalem 2C2T"});
    }
    return pairs;
}

std::vector<GroupedEffect>
dieShrinkStudy(ExperimentRunner &runner, const ReferenceSet &ref,
               bool matched_clocks)
{
    return compareAll(runner, ref, dieShrinkPairs(matched_clocks));
}

std::vector<StudyPair>
uarchStudyPairs()
{
    std::vector<StudyPair> pairs;

    // i7 vs Atom D510: 2 cores, 2 threads, 1.7GHz.
    {
        const auto atomD = stockConfig(processorById("AtomD (45)"));
        auto i7 = withTurbo(stockConfig(processorById("i7 (45)")), false);
        i7 = withClock(withCores(i7, 2), atomD.spec->stockClockGhz);
        pairs.push_back({i7, atomD, "Bonnell: i7 (45) / AtomD (45)"});
    }

    // i7 vs Pentium 4: 1 core, 2 threads, 2.4GHz.
    {
        const auto p4 = stockConfig(processorById("Pentium4 (130)"));
        auto i7 = withTurbo(stockConfig(processorById("i7 (45)")), false);
        i7 = withClock(withCores(i7, 1), 2.4);
        pairs.push_back({i7, p4, "NetBurst: i7 (45) / Pentium4 (130)"});
    }

    // i7 vs Core 2 Duo E7600: 2 cores, 1 thread, at the i7's clock.
    {
        auto i7 = withTurbo(stockConfig(processorById("i7 (45)")), false);
        i7 = withSmt(withCores(i7, 2), false);
        auto c2d = withClock(stockConfig(processorById("C2D (45)")),
                             i7.clockGhz);
        pairs.push_back({i7, c2d, "Core: i7 (45) / C2D (45)"});
    }

    // i5 vs Core 2 Duo E6600: 2 cores, 1 thread, 2.4GHz.
    {
        const auto c2d = stockConfig(processorById("C2D (65)"));
        auto i5 = withTurbo(stockConfig(processorById("i5 (32)")), false);
        i5 = withClock(withSmt(i5, false), 2.4);
        pairs.push_back({i5, c2d, "Core: i5 (32) / C2D (65)"});
    }
    return pairs;
}

std::vector<GroupedEffect>
uarchStudy(ExperimentRunner &runner, const ReferenceSet &ref)
{
    return compareAll(runner, ref, uarchStudyPairs());
}

std::vector<StudyPair>
turboStudyPairs()
{
    std::vector<StudyPair> pairs;
    for (const std::string id : {"i7 (45)", "i5 (32)"}) {
        const auto stock = stockConfig(processorById(id));
        pairs.push_back({withTurbo(stock, true),
                         withTurbo(stock, false),
                         msgOf(id, " ", stock.enabledCores, "C",
                               stock.smtPerCore, "T")});
        const auto single = withSmt(withCores(stock, 1), false);
        pairs.push_back({withTurbo(single, true),
                         withTurbo(single, false), id + " 1C1T"});
    }
    return pairs;
}

std::vector<GroupedEffect>
turboStudy(ExperimentRunner &runner, const ReferenceSet &ref)
{
    return compareAll(runner, ref, turboStudyPairs());
}

std::vector<MachineConfig>
javaScalabilityConfigs()
{
    auto base = withTurbo(stockConfig(processorById("i7 (45)")), false);
    // {1C1T, 4C2T}: measure() order in javaScalability().
    return {withSmt(withCores(base, 1), false), base};
}

std::vector<std::pair<std::string, double>>
javaScalability(ExperimentRunner &runner)
{
    const auto configs = javaScalabilityConfigs();
    const auto &single = configs[0];
    const auto &full = configs[1];

    std::vector<std::pair<std::string, double>> result;
    for (const auto &bench : allBenchmarks()) {
        if (bench.language() != Language::Java)
            continue;
        const bool multithreaded =
            bench.appThreads == 0 || bench.appThreads > 1;
        if (!multithreaded)
            continue;
        const double t1 = runner.measure(single, bench).timeSec;
        const double t8 = runner.measure(full, bench).timeSec;
        result.emplace_back(bench.name, t1 / t8);
    }
    std::sort(result.begin(), result.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    return result;
}

std::vector<MachineConfig>
javaSingleThreadedCmpConfigs()
{
    auto base = withSmt(
        withTurbo(stockConfig(processorById("i7 (45)")), false), false);
    return {withCores(base, 1), withCores(base, 2)};
}

std::vector<std::pair<std::string, double>>
javaSingleThreadedCmp(ExperimentRunner &runner)
{
    const auto configs = javaSingleThreadedCmpConfigs();
    const auto &one = configs[0];
    const auto &two = configs[1];

    std::vector<std::pair<std::string, double>> result;
    for (const auto &bench : allBenchmarks()) {
        if (bench.language() != Language::Java)
            continue;
        if (bench.appThreads != 1)
            continue;
        const double t1 = runner.measure(one, bench).timeSec;
        const double t2 = runner.measure(two, bench).timeSec;
        result.emplace_back(bench.name, t1 / t2);
    }
    std::sort(result.begin(), result.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    return result;
}

} // namespace lhr
