#include "counters/hwcounters.hh"

#include <algorithm>

#include "bpred/predictor.hh"
#include "cachesim/cache_sim.hh"
#include "trace/generator.hh"
#include "util/logging.hh"

namespace lhr
{

const char *
hwEventName(HwEvent event)
{
    switch (event) {
      case HwEvent::Instructions:       return "instructions";
      case HwEvent::MemAccesses:        return "mem-accesses";
      case HwEvent::L1dMisses:          return "L1d-misses";
      case HwEvent::L2Misses:           return "L2-misses";
      case HwEvent::LlcMisses:          return "LLC-misses";
      case HwEvent::BranchInstructions: return "branches";
      case HwEvent::BranchMispredicts:  return "branch-misses";
      case HwEvent::DtlbAccesses:       return "dTLB-accesses";
      case HwEvent::DtlbMisses:         return "dTLB-misses";
    }
    panic("hwEventName: unknown event");
}

CounterBank::CounterBank()
{
    counts.fill(0);
}

void
CounterBank::add(HwEvent event, uint64_t n)
{
    counts[static_cast<size_t>(event)] += n;
}

uint64_t
CounterBank::read(HwEvent event) const
{
    return counts[static_cast<size_t>(event)];
}

void
CounterBank::reset()
{
    counts.fill(0);
}

double
CounterBank::perKi(HwEvent event) const
{
    const uint64_t instructions = read(HwEvent::Instructions);
    if (instructions == 0)
        panic("CounterBank::perKi: no instructions counted");
    return read(event) * 1000.0 / static_cast<double>(instructions);
}

std::vector<std::pair<double, int>>
structuralLevels(const ProcessorSpec &spec)
{
    const CacheHierarchy hierarchy = makeHierarchy(spec);
    std::vector<std::pair<double, int>> levels;
    for (const auto &level : hierarchy.levels()) {
        const int ways = level.capacityKb <= 64 ? 8 : 16;
        levels.emplace_back(level.capacityKb, ways);
    }
    return levels;
}

Characterization
characterizeWorkload(const Benchmark &bench, const ProcessorSpec &spec,
                     uint64_t instructions, uint64_t seed,
                     double gc_displacement,
                     uint64_t warmup_instructions)
{
    if (instructions == 0)
        panic("characterizeWorkload: zero instructions");
    if (warmup_instructions == UINT64_MAX)
        warmup_instructions = instructions;

    // Build the structural hierarchy from the processor's geometry.
    HierarchySim caches(structuralLevels(spec));
    // Two-level DTLB reach differs by generation; model the
    // effective entry count.
    int tlbEntries = 64;
    switch (spec.family) {
      case Family::NetBurst: tlbEntries = 64; break;
      case Family::Core:     tlbEntries = 256; break;
      case Family::Bonnell:  tlbEntries = 64; break;
      case Family::Nehalem:  tlbEntries = 512; break;
      case Family::SandyBridge: tlbEntries = 512; break;
      case Family::Haswell:     tlbEntries = 1024; break;
      case Family::Broadwell:   tlbEntries = 1536; break;
      case Family::SkylakeSP:   tlbEntries = 1536; break;
    }
    TlbArray dtlb(tlbEntries);
    BimodalPredictor predictor(14);
    TraceGenerator trace(bench, seed);

    CounterBank counters;
    // A co-located collector interleaves fine-grained heap-scan
    // bursts with the application; each burst walks fresh pages
    // through the TLB and caches, displacing application state.
    const uint64_t gcPeriod = 20000;
    const int gcBurst = static_cast<int>(190.0 * gc_displacement);
    uint64_t gcScanAddr = 1ull << 44;

    // The trace arrives in SoA blocks (the profiling loop is a hot
    // path shared with pipesim; see trace/generator.hh).
    MicroOpBatch batch;
    const uint64_t total = warmup_instructions + instructions;
    for (uint64_t base = 0; base < total; base += batch.size()) {
        const size_t block = static_cast<size_t>(std::min<uint64_t>(
            MicroOpBatch::defaultSize, total - base));
        trace.fill(batch, block);

        for (size_t j = 0; j < block; ++j) {
            const uint64_t i = base + j;
            const bool measured = i >= warmup_instructions;
            if (measured)
                counters.add(HwEvent::Instructions);
            switch (batch.kindAt(j)) {
              case MicroOp::Kind::Alu:
                break;
              case MicroOp::Kind::Load:
              case MicroOp::Kind::Store: {
                const uint64_t addr = batch.addr[j];
                const bool tlbHit = dtlb.access(addr);
                const uint64_t beforeL1 = caches.level(0).misses();
                const size_t last = caches.levelCount() - 1;
                const uint64_t beforeLast =
                    caches.level(last).misses();
                caches.access(addr);
                if (measured) {
                    counters.add(HwEvent::MemAccesses);
                    counters.add(HwEvent::DtlbAccesses);
                    if (!tlbHit)
                        counters.add(HwEvent::DtlbMisses);
                    if (caches.level(0).misses() > beforeL1)
                        counters.add(HwEvent::L1dMisses);
                    if (caches.level(last).misses() > beforeLast)
                        counters.add(HwEvent::LlcMisses);
                }
                break;
              }
              case MicroOp::Kind::Branch: {
                const bool mispredicted = predictor.runInline(
                    batch.pc[j], batch.taken[j] != 0);
                if (measured) {
                    counters.add(HwEvent::BranchInstructions);
                    if (mispredicted)
                        counters.add(HwEvent::BranchMispredicts);
                }
                break;
              }
            }

            if (gcBurst > 0 && i > 0 && i % gcPeriod == 0) {
                // The collector's scan: sequential pages, polluting
                // the TLB and every cache level (unmeasured — the
                // counters profile application behaviour, as the
                // paper's instrumented HotSpot separates JVM from
                // application).
                for (int scan = 0; scan < gcBurst; ++scan) {
                    // Object scanning strides across pages: this is
                    // what displaces TLB state so effectively.
                    gcScanAddr += 4096 + 64;
                    dtlb.access(gcScanAddr);
                    caches.access(gcScanAddr);
                }
            }
        }
    }

    // L2 misses accumulate inside the simulated arrays (warmup and
    // GC traffic included); report the array totals.
    if (caches.levelCount() > 1)
        counters.add(HwEvent::L2Misses, caches.level(1).misses());

    Characterization result;
    result.counters = counters;
    result.l1Mpki = counters.perKi(HwEvent::L1dMisses);
    result.llcMpki = counters.perKi(HwEvent::LlcMisses);
    result.branchMispKi = counters.perKi(HwEvent::BranchMispredicts);
    result.dtlbMpki = counters.perKi(HwEvent::DtlbMisses);
    return result;
}

} // namespace lhr
