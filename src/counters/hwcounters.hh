/**
 * @file
 * Hardware event counters and the workload characterizer.
 *
 * The paper grounds its analysis in hardware event counters — "just
 * as hardware event counters provide a quantitative grounding for
 * performance innovations, power meters are necessary for optimizing
 * energy" — and uses DTLB miss counts to explain db's CMP speedup
 * (section 3.1). CounterBank is that facility for our simulated
 * substrate; characterizeWorkload() runs a synthetic trace through
 * the structural cache, TLB, and branch-predictor simulators and
 * fills the counters, the way `perf stat` profiles a real binary.
 */

#ifndef LHR_COUNTERS_HWCOUNTERS_HH
#define LHR_COUNTERS_HWCOUNTERS_HH

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "machine/processor.hh"
#include "workload/benchmark.hh"

namespace lhr
{

/** Countable events. */
enum class HwEvent
{
    Instructions,
    MemAccesses,
    L1dMisses,
    L2Misses,
    LlcMisses,       ///< misses of the outermost cache level
    BranchInstructions,
    BranchMispredicts,
    DtlbAccesses,
    DtlbMisses
};

/** Number of event kinds. */
constexpr size_t hwEventCount = 9;

/** Printable event name. */
const char *hwEventName(HwEvent event);

/** A bank of free-running event counters. */
class CounterBank
{
  public:
    CounterBank();

    void add(HwEvent event, uint64_t n = 1);
    uint64_t read(HwEvent event) const;
    void reset();

    /** Events per kilo-instruction. */
    double perKi(HwEvent event) const;

  private:
    std::array<uint64_t, hwEventCount> counts;
};

/**
 * (capacityKb, ways) pairs for a processor's hierarchy, for the
 * structural simulators. Associativity follows the era's designs:
 * 8-way private levels, 16-way shared arrays.
 */
std::vector<std::pair<double, int>>
structuralLevels(const ProcessorSpec &spec);

/** The result of characterizing one workload on one machine. */
struct Characterization
{
    CounterBank counters;
    double l1Mpki;
    double llcMpki;       ///< outermost level
    double branchMispKi;
    double dtlbMpki;
};

/**
 * Profile a benchmark's synthetic trace through the structural
 * simulators configured like a processor's hierarchy.
 *
 * @param bench the workload
 * @param spec the processor whose geometry to simulate
 * @param instructions trace length
 * @param seed deterministic trace seed
 * @param gc_displacement when nonzero, interleaves same-core
 *        garbage-collection scan bursts of this intensity through
 *        the TLB and caches — modeling the displacement the paper's
 *        db observation attributes to a co-located collector
 * @param warmup_instructions unmeasured instructions run first so
 *        the outer cache levels reach steady state (defaults to the
 *        measured length when SIZE_MAX)
 */
Characterization characterizeWorkload(
    const Benchmark &bench, const ProcessorSpec &spec,
    uint64_t instructions, uint64_t seed,
    double gc_displacement = 0.0,
    uint64_t warmup_instructions = UINT64_MAX);

} // namespace lhr

#endif // LHR_COUNTERS_HWCOUNTERS_HH
