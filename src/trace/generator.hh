/**
 * @file
 * Synthetic execution trace generation.
 *
 * The paper characterizes workloads with hardware event counters
 * (e.g. the DTLB counts that explained db's CMP speedup, section
 * 3.1). We have no real binaries to count, so this module generates
 * synthetic micro-op traces whose statistics are derived from each
 * benchmark's descriptor:
 *
 *  - memory addresses follow an LRU-stack-distance model: reuse
 *    distances are Pareto-distributed with the benchmark's locality
 *    exponent, so a cache of capacity C misses at the rate the
 *    analytic MissCurve predicts — the trace substrate and the
 *    interval model cross-validate (see bench/ablation_tracesim);
 *  - cold/streaming misses touch never-seen blocks at the curve's
 *    floor rate;
 *  - branches are drawn from a static-branch population whose biases
 *    reproduce the benchmark's misprediction rate under a realistic
 *    predictor.
 */

#ifndef LHR_TRACE_GENERATOR_HH
#define LHR_TRACE_GENERATOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/lru_stack.hh"
#include "util/rng.hh"
#include "workload/benchmark.hh"

namespace lhr
{

/** One micro-operation of a synthetic trace. */
struct MicroOp
{
    enum class Kind
    {
        Alu,
        Load,
        Store,
        Branch
    };

    Kind kind;
    uint64_t addr;   ///< byte address (loads/stores), 0 otherwise
    uint64_t pc;     ///< static instruction address
    bool taken;      ///< branch outcome (branches only)
};

/**
 * A block of micro-ops in structure-of-arrays layout, filled in one
 * call by TraceGenerator::fill() so hot consumers (the pipeline
 * simulator, the workload characterizer) iterate flat arrays
 * instead of pulling one struct at a time through the generator.
 */
struct MicroOpBatch
{
    /** Default block size consumers request per fill. */
    static constexpr size_t defaultSize = 4096;

    std::vector<uint8_t> kind;   ///< MicroOp::Kind values
    std::vector<uint64_t> addr;  ///< byte address, 0 for non-memory
    std::vector<uint64_t> pc;    ///< static instruction address
    std::vector<uint8_t> taken;  ///< branch outcome (branches only)

    size_t size() const { return kind.size(); }

    void resize(size_t n)
    {
        kind.resize(n);
        addr.resize(n);
        pc.resize(n);
        taken.resize(n);
    }

    MicroOp::Kind kindAt(size_t i) const
    {
        return static_cast<MicroOp::Kind>(kind[i]);
    }
};

/**
 * Generates memory addresses with a prescribed reuse-distance
 * distribution using the LRU-stack model: each access either reuses
 * the block at a Pareto-distributed stack depth (moving it to the
 * front) or touches a fresh block (a cold/streaming miss).
 */
class AddressGenerator
{
  public:
    /**
     * @param curve the miss curve the stream must reproduce
     * @param accesses_per_instr memory accesses per instruction
     * @param seed deterministic stream seed
     */
    AddressGenerator(const MissCurve &curve, double accesses_per_instr,
                     uint64_t seed);

    /** Next accessed byte address. */
    uint64_t next();

    /** Cache line size assumed by the stack model. */
    static constexpr uint64_t lineBytes = 64;

    /** Bound on the modeled stack (blocks); beyond is cold. */
    static constexpr size_t maxStackBlocks = 1u << 20;

    /** Pareto scale parameter derived from the curve (blocks). */
    double paretoScaleBlocks() const { return k0Blocks; }

    /** Probability an access is a cold/streaming miss. */
    double coldProbability() const { return coldProb; }

  private:
    size_t sampleDepth();

    MissCurve curve;
    double alpha;        ///< Pareto shape (the curve's beta)
    double k0Blocks;     ///< Pareto scale in blocks
    double coldProb;
    double wsBlocks;     ///< working-set truncation depth (blocks)
    double invNegAlpha;  ///< -1/alpha, hoisted out of sampleDepth
    uint64_t nextFreshBlock;
    LruStack stack;      ///< order-statistic move-to-front stack
    Rng rng;
};

/**
 * A static branch with a fixed taken-bias, as a real conditional in
 * a loop or condition would have.
 */
struct StaticBranch
{
    uint64_t pc;
    double takenBias;   ///< probability the branch is taken
};

/**
 * Generates a full micro-op stream for a benchmark: ALU ops,
 * loads/stores through an AddressGenerator, and branches drawn from
 * a static-branch population.
 */
class TraceGenerator
{
  public:
    TraceGenerator(const Benchmark &bench, uint64_t seed);

    /** Next micro-op of the stream. */
    MicroOp next();

    /**
     * Fill `batch` with the next `count` micro-ops of the stream, in
     * structure-of-arrays layout. The generated stream is identical
     * to `count` successive next() calls.
     */
    void fill(MicroOpBatch &batch, size_t count);

    /** Branch frequency used by the stream (per instruction). */
    static constexpr double branchPerInstr = 0.18;

    /** Number of static branches modeled. */
    static constexpr int staticBranches = 256;

    const std::vector<StaticBranch> &branches() const
    {
        return staticBranchPool;
    }

  private:
    /** Shared generation path behind next() and fill(). */
    MicroOp generate();

    double memAccessPerInstr;
    AddressGenerator addresses;
    std::vector<StaticBranch> staticBranchPool;
    Rng rng;
    uint64_t instructionPc;
};

} // namespace lhr

#endif // LHR_TRACE_GENERATOR_HH
