/**
 * @file
 * Order-statistic LRU stack.
 *
 * The LRU-stack-distance model (trace/generator.hh) needs exactly
 * three operations per generated address: find the block at stack
 * depth d, move a block to the front, and bound the stack at a
 * maximum size. A plain vector makes each of those O(stack size) —
 * a std::rotate over up to a million entries per access — which is
 * what capped trace lengths repo-wide.
 *
 * This structure is a two-tier move-to-front list:
 *
 *  - the shallow end (the Pareto-distributed common case) lives in a
 *    fixed-size ring buffer, where a push is a head decrement and a
 *    touch at depth d moves only d entries, all L1-resident;
 *  - deeper blocks live in a sparse arena: the block at depth d is
 *    the (d - front)-th occupied slot. Occupancy is a bitmap with
 *    two levels of population counts above it (per 4K slots and per
 *    256K slots), so rank-select is a handful of short sequential
 *    count scans plus an in-word popcount — no pointer chasing —
 *    and insert/remove are O(1) count updates;
 *  - ring overflow spills its deep half into the arena; arena
 *    insertions claim slots leftward, and the arena is recompacted
 *    (amortized O(1) per operation) when the left edge is reached or
 *    when removals have left it less than half occupied.
 *
 * The observable behaviour (the sequence of blocks returned by
 * touch() for given depths) is bit-identical to the vector
 * implementation it replaced.
 */

#ifndef LHR_TRACE_LRU_STACK_HH
#define LHR_TRACE_LRU_STACK_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace lhr
{

/** A move-to-front list with fast access by stack depth. */
class LruStack
{
  public:
    /** @param max_blocks size bound; pushes beyond it evict the back */
    explicit LruStack(size_t max_blocks);

    /** Number of blocks currently on the stack. */
    size_t size() const { return frontCount + arenaCount; }

    /**
     * Return the block at 1-indexed stack depth (1 = most recent)
     * and move it to the front. depth must be in [1, size()].
     * Defined inline: the ring-resident shallow case is the common
     * one, and its cost is a short L1 memmove.
     */
    uint64_t touch(size_t depth)
    {
        if (depth == 0 || depth > size())
            panicDepth();
        if (depth > frontCount)
            return touchDeep(depth);
        // Shallow: move the touched entry to the ring's head slot,
        // sliding the depth - 1 entries above it down by one. The
        // slide is one memmove, or two around the ring's wrap point.
        // head is masked into a local (an identity — it never leaves
        // [0, ringMask]) and the unwrapped slide length is written
        // as idx - head so the compiler can bound every memmove by
        // the ring size; otherwise inlined copies trip
        // -Wstringop-overflow at call sites where it cannot see
        // that large depths were routed to touchDeep above.
        const size_t head = frontHead & ringMask;
        const size_t idx = (head + depth - 1) & ringMask;
        const uint64_t block = frontBuf[idx];
        if (idx >= head) {
            std::memmove(&frontBuf[head + 1], &frontBuf[head],
                         (idx - head) * sizeof(uint64_t));
        } else {
            std::memmove(&frontBuf[1], &frontBuf[0],
                         idx * sizeof(uint64_t));
            frontBuf[0] = frontBuf[frontCapacity - 1];
            std::memmove(&frontBuf[head + 1], &frontBuf[head],
                         (frontCapacity - 1 - head) *
                             sizeof(uint64_t));
        }
        frontBuf[head] = block;
        return block;
    }

    /**
     * Push a never-seen block onto the front. If the stack exceeds
     * its bound, the deepest block falls off. Inline fast path: with
     * ring room and the bound unreached, a push is a head decrement.
     */
    void pushFront(uint64_t block)
    {
        if (frontCount < frontCapacity && size() < maxBlocks) {
            frontHead = (frontHead - 1) & ringMask;
            frontBuf[frontHead] = block;
            ++frontCount;
            return;
        }
        pushFrontSlow(block);
    }

  private:
    /** Ring capacity (power of two); shallower touches stay in L1. */
    static constexpr size_t frontCapacity = 4096;
    /** Entries kept in the ring when it spills into the arena. */
    static constexpr size_t spillKeep = frontCapacity / 2;
    /** Index mask for the power-of-two ring. */
    static constexpr size_t ringMask = frontCapacity - 1;
    /** Arena slots per bitmap word / count block / count super. */
    static constexpr size_t slotsPerWord = 64;
    static constexpr size_t slotsPerBlock = 64 * slotsPerWord;
    static constexpr size_t slotsPerSuper = 64 * slotsPerBlock;

    /**
     * blockCounts length for an arena: padded up to a multiple of
     * four zero entries so select()'s group-of-4 scan never reads
     * past the vector. Small arenas need the padding — at 8192
     * slots the arena spans only two count blocks.
     */
    static constexpr size_t blockEntries(size_t arena)
    {
        return (arena / slotsPerBlock + 3) & ~size_t{3};
    }

    /** Arena half of touch(): rank-select, remove, reinsert. */
    uint64_t touchDeep(size_t depth);

    /** pushFront() with a full ring or the size bound reached. */
    void pushFrontSlow(uint64_t block);

    /** Out-of-line panic keeps touch() small enough to inline. */
    [[noreturn]] static void panicDepth();

    /** Make `block` the new depth-1 entry of the ring. */
    void insertFront(uint64_t block);

    /** Claim the arena slot in front of everything for `block`. */
    void place(uint64_t block);

    /** Mark an occupied arena slot free. */
    void removeSlot(size_t pos);

    /** 0-based arena slot of the `rank`-th occupied slot. */
    size_t select(size_t rank) const;

    /** Compact live slots to the arena's right end; maybe resize. */
    void rebuild();

    size_t maxBlocks;
    size_t frontCount;  ///< live ring entries, MRU at frontHead
    size_t frontHead;   ///< ring index of the depth-1 entry
    std::array<uint64_t, frontCapacity> frontBuf;

    size_t arenaSize;   ///< multiple of slotsPerBlock
    size_t frontPos;    ///< next arena slot a place() claims, +1
    size_t arenaCount;  ///< occupied arena slots
    std::vector<uint64_t> slots;
    std::vector<uint64_t> words;        ///< occupancy bitmap
    std::vector<uint32_t> blockCounts;  ///< occupancy per 4K slots
    std::vector<uint32_t> superCounts;  ///< occupancy per 256K slots
};

} // namespace lhr

#endif // LHR_TRACE_LRU_STACK_HH
