#include "trace/generator.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lhr
{

AddressGenerator::AddressGenerator(const MissCurve &miss_curve,
                                   double accesses_per_instr,
                                   uint64_t seed)
    : curve(miss_curve), nextFreshBlock(0), stack(maxStackBlocks),
      rng(seed)
{
    if (accesses_per_instr <= 0.0)
        panic("AddressGenerator: non-positive access rate");
    alpha = curve.beta;

    // Cold misses happen at the curve's floor rate, independent of
    // capacity.
    coldProb = std::clamp(
        curve.coldMpki / (1000.0 * accesses_per_instr), 0.0, 0.9);

    // Match the reuse-distance tail to the curve at the 32KB
    // reference point: P(depth > 512 blocks) must equal the non-cold
    // part of the 32KB miss ratio.
    const double missRatio32 = std::clamp(
        (curve.missPerKi(32.0) - curve.coldMpki) /
            (1000.0 * accesses_per_instr) / std::max(1e-9, 1.0 - coldProb),
        1e-6, 1.0);
    // P(d > k) = (k / k0)^-alpha  =>  k0 = 512 * ratio^(1/alpha).
    // k0 far below one block is legitimate: it encodes a stream
    // whose reuse is overwhelmingly at the top of the stack.
    k0Blocks = std::max(1e-9, 512.0 * std::pow(missRatio32, 1.0 / alpha));

    // Constants of the depth distribution, hoisted out of the
    // per-access sampling path.
    wsBlocks = curve.workingSetKb * 1024.0 / lineBytes;
    invNegAlpha = -1.0 / alpha;
}

size_t
AddressGenerator::sampleDepth()
{
    // Inverse-CDF sampling of the Pareto tail, truncated at the
    // working set: the curve says reuse beyond it does not exist
    // (only cold misses do, and those are drawn separately).
    const double u = rng.uniformPositive();
    double depth = k0Blocks * std::pow(u, invNegAlpha);
    depth = std::min(depth, wsBlocks);
    if (depth >= static_cast<double>(maxStackBlocks))
        return maxStackBlocks;
    return static_cast<size_t>(std::max(1.0, depth));
}

uint64_t
AddressGenerator::next()
{
    uint64_t block = 0;
    const bool cold = rng.uniform() < coldProb;
    const size_t depth = cold ? maxStackBlocks : sampleDepth();

    if (!cold && depth <= stack.size()) {
        // Reuse the block at this stack depth; move it to the front.
        block = stack.touch(depth);
    } else {
        // Cold or deeper than anything seen: a fresh block.
        block = (1ull << 40) + nextFreshBlock++;
        stack.pushFront(block);
    }
    return block * lineBytes + rng.below(lineBytes / 8) * 8;
}

TraceGenerator::TraceGenerator(const Benchmark &bench, uint64_t seed)
    : memAccessPerInstr(bench.memAccessPerInstr),
      addresses(bench.miss, bench.memAccessPerInstr, seed ^ 0xADD2),
      rng(seed), instructionPc(0x400000)
{
    // Build a static-branch population whose mix of easy (strongly
    // biased) and hard (weakly biased) branches reproduces the
    // benchmark's misprediction rate under a 2-bit/gshare scheme:
    // hard branches mispredict at roughly min(b, 1-b).
    const double targetMispPerBranch =
        bench.branchMispKi / (branchPerInstr * 1000.0);
    const double easyRate = 0.02; // 0.99-biased branch under 2-bit
    const double hardRate = 0.36; // 0.70-biased branch under 2-bit
    const double hardFraction = std::clamp(
        (targetMispPerBranch - easyRate) / (hardRate - easyRate), 0.0,
        1.0);

    Rng pool(seed ^ 0xB4A2C4);
    staticBranchPool.reserve(staticBranches);
    for (int i = 0; i < staticBranches; ++i) {
        const bool hard = pool.uniform() < hardFraction;
        const double bias = hard
            ? 0.70 + pool.uniform(-0.05, 0.05)
            : (pool.uniform() < 0.5 ? 0.99 : 0.01);
        staticBranchPool.push_back(
            {0x400000ull + 16ull * i, bias});
    }
}

MicroOp
TraceGenerator::generate()
{
    instructionPc += 4;
    const double roll = rng.uniform();

    if (roll < branchPerInstr) {
        // The pool always holds exactly staticBranches entries; the
        // compile-time bound lets the modulo fold into a mask.
        const auto &branch = staticBranchPool[rng.below(
            static_cast<uint64_t>(staticBranches))];
        return {MicroOp::Kind::Branch, 0, branch.pc,
                rng.uniform() < branch.takenBias};
    }
    if (roll < branchPerInstr + memAccessPerInstr) {
        const bool store = rng.uniform() < 0.3;
        return {store ? MicroOp::Kind::Store : MicroOp::Kind::Load,
                addresses.next(), instructionPc, false};
    }
    return {MicroOp::Kind::Alu, 0, instructionPc, false};
}

MicroOp
TraceGenerator::next()
{
    return generate();
}

void
TraceGenerator::fill(MicroOpBatch &batch, size_t count)
{
    batch.resize(count);
    for (size_t i = 0; i < count; ++i) {
        const MicroOp op = generate();
        batch.kind[i] = static_cast<uint8_t>(op.kind);
        batch.addr[i] = op.addr;
        batch.pc[i] = op.pc;
        batch.taken[i] = op.taken ? 1 : 0;
    }
}

} // namespace lhr
