#include "trace/lru_stack.hh"

#include <bit>
#if defined(__x86_64__)
#include <immintrin.h>
#endif
#include <cstring>

#include "util/logging.hh"

namespace lhr
{

namespace
{

constexpr size_t initialArena = 8192;

#if defined(__x86_64__)
/** BMI2 path: deposit a single bit at the rank-th set position. */
__attribute__((target("bmi2"))) size_t
selectBitPdep(uint64_t word, size_t rank)
{
    return static_cast<size_t>(
        std::countr_zero(_pdep_u64(1ull << (rank - 1), word)));
}

const bool havePdep = __builtin_cpu_supports("bmi2");
#endif

/** 0-based position of the rank-th (1-indexed) set bit of word. */
size_t
selectBit(uint64_t word, size_t rank)
{
#if defined(__x86_64__)
    if (havePdep)
        return selectBitPdep(word, rank);
#endif
    for (size_t i = 1; i < rank; ++i)
        word &= word - 1;
    return static_cast<size_t>(std::countr_zero(word));
}

} // namespace

LruStack::LruStack(size_t max_blocks)
    : maxBlocks(max_blocks), frontCount(0), frontHead(0),
      arenaSize(initialArena), frontPos(initialArena), arenaCount(0),
      slots(initialArena, 0), words(initialArena / slotsPerWord, 0),
      blockCounts(blockEntries(initialArena), 0),
      superCounts((initialArena + slotsPerSuper - 1) / slotsPerSuper,
                  0)
{
    static_assert((frontCapacity & (frontCapacity - 1)) == 0);
    if (max_blocks == 0)
        panic("LruStack: zero capacity");
}

void
LruStack::removeSlot(size_t pos)
{
    words[pos / slotsPerWord] &= ~(1ull << (pos % slotsPerWord));
    --blockCounts[pos / slotsPerBlock];
    --superCounts[pos / slotsPerSuper];
    --arenaCount;
    // Removals punch holes into the live span; recompact before the
    // span gets less than half occupied so select() scans stay short.
    const size_t span = arenaSize - frontPos;
    if (span > 2 * arenaCount && span > initialArena)
        rebuild();
}

size_t
LruStack::select(size_t rank) const
{
    // Narrow down through the two count levels, then popcount
    // through the bitmap words of the chosen block.
    size_t super = 0;
    while (rank > superCounts[super])
        rank -= superCounts[super++];
    // Scan counts four at a time: the group sums are independent
    // adds, so the loop-carried rank chain advances 4 slots per
    // step. Groups never straddle a parent boundary (64 % 4 == 0),
    // rank is already bounded by the parent's total, and
    // blockCounts is zero-padded to a multiple of 4 entries
    // (blockEntries) so the last group never reads out of bounds.
    size_t blockIdx = super * (slotsPerSuper / slotsPerBlock);
    for (;; blockIdx += 4) {
        const uint32_t group = blockCounts[blockIdx] +
            blockCounts[blockIdx + 1] + blockCounts[blockIdx + 2] +
            blockCounts[blockIdx + 3];
        if (rank <= group)
            break;
        rank -= group;
    }
    while (rank > blockCounts[blockIdx])
        rank -= blockCounts[blockIdx++];
    size_t wordIdx = blockIdx * (slotsPerBlock / slotsPerWord);
    for (;; wordIdx += 4) {
        const size_t group = static_cast<size_t>(
            std::popcount(words[wordIdx]) +
            std::popcount(words[wordIdx + 1]) +
            std::popcount(words[wordIdx + 2]) +
            std::popcount(words[wordIdx + 3]));
        if (rank <= group)
            break;
        rank -= group;
    }
    for (;; ++wordIdx) {
        const size_t count = static_cast<size_t>(
            std::popcount(words[wordIdx]));
        if (rank <= count)
            break;
        rank -= count;
    }
    return wordIdx * slotsPerWord + selectBit(words[wordIdx], rank);
}

void
LruStack::rebuild()
{
    // Compact the live slots, in order, to the right end of an arena
    // sized so at least 3/4 is spare: the next compaction is then at
    // least max(arenaCount, 3/4 arena) operations away.
    size_t newArena = initialArena;
    while (newArena < 4 * arenaCount)
        newArena <<= 1;

    std::vector<uint64_t> ordered;
    ordered.reserve(arenaCount);
    for (size_t w = frontPos / slotsPerWord; w < words.size(); ++w) {
        uint64_t word = words[w];
        while (word != 0) {
            const size_t bit =
                static_cast<size_t>(std::countr_zero(word));
            ordered.push_back(slots[w * slotsPerWord + bit]);
            word &= word - 1;
        }
    }

    arenaSize = newArena;
    slots.assign(arenaSize, 0);
    words.assign(arenaSize / slotsPerWord, 0);
    blockCounts.assign(blockEntries(arenaSize), 0);
    superCounts.assign(
        (arenaSize + slotsPerSuper - 1) / slotsPerSuper, 0);
    frontPos = arenaSize - ordered.size();
    for (size_t i = 0; i < ordered.size(); ++i) {
        const size_t pos = frontPos + i;
        slots[pos] = ordered[i];
        words[pos / slotsPerWord] |= 1ull << (pos % slotsPerWord);
        ++blockCounts[pos / slotsPerBlock];
        ++superCounts[pos / slotsPerSuper];
    }
}

void
LruStack::place(uint64_t block)
{
    if (frontPos == 0)
        rebuild();
    --frontPos;
    slots[frontPos] = block;
    words[frontPos / slotsPerWord] |=
        1ull << (frontPos % slotsPerWord);
    ++blockCounts[frontPos / slotsPerBlock];
    ++superCounts[frontPos / slotsPerSuper];
    ++arenaCount;
}

void
LruStack::insertFront(uint64_t block)
{
    if (frontCount == frontCapacity) {
        // Spill the deep half into the arena, deepest first so the
        // arena keeps them in stack order.
        for (size_t k = frontCapacity; k > spillKeep; --k)
            place(frontBuf[(frontHead + k - 1) & ringMask]);
        frontCount = spillKeep;
    }
    frontHead = (frontHead - 1) & ringMask;
    frontBuf[frontHead] = block;
    ++frontCount;
}

uint64_t
LruStack::touchDeep(size_t depth)
{
    const size_t pos = select(depth - frontCount);
    const uint64_t block = slots[pos];
    removeSlot(pos);
    insertFront(block);
    return block;
}

void
LruStack::pushFrontSlow(uint64_t block)
{
    insertFront(block);
    if (size() > maxBlocks) {
        if (arenaCount > 0) {
            removeSlot(select(arenaCount));
        } else {
            --frontCount; // tiny bound: the back lives in the ring
        }
    }
}

void
LruStack::panicDepth()
{
    panic("LruStack::touch: depth out of range");
}

} // namespace lhr
