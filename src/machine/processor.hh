/**
 * @file
 * The eight experimental processors (paper Table 3) and the
 * BIOS-style configurator that produces the 45 experimental
 * configurations (paper section 2.8).
 *
 * Each ProcessorSpec carries the published Table 3 data (sSpec,
 * release, cores/SMT, LLC, clock, transistors, die area, VID range,
 * TDP, memory) plus per-part calibration: the effective DVFS voltage
 * span actually exercised between the lowest and highest clock
 * settings, uncore power terms, and scalar calibration factors
 * (real silicon requires per-part binning; ours requires per-part
 * fitting against the paper's Table 4).
 */

#ifndef LHR_MACHINE_PROCESSOR_HH
#define LHR_MACHINE_PROCESSOR_HH

#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "mem/dram.hh"
#include "tech/node.hh"
#include "uarch/descriptor.hh"

namespace lhr
{

/**
 * Machine era: the paper's four process generations plus the
 * post-2011 server generations the era extension adds (ROADMAP
 * item 3). Paper eras group parts by node; server eras are one part
 * per microarchitecture generation.
 */
enum class Era
{
    Paper130,
    Paper65,
    Paper45,
    Paper32,
    SandyBridge,
    Haswell,
    Broadwell,
    Skylake
};

/** Printable era name, e.g. "45nm" or "haswell". */
std::string eraName(Era era);

/** Parse an era name as printed by eraName(); panic()s when unknown. */
Era parseEra(const std::string &name);

/** All eras in chronological order. */
const std::vector<Era> &allEras();

/** Static description of one experimental processor. */
struct ProcessorSpec
{
    std::string id;          ///< short paper id, e.g. "i7 (45)"
    std::string model;       ///< e.g. "Core i7 920"
    std::string sSpec;       ///< Intel sSpec number
    std::string codename;    ///< e.g. "Bloomfield"
    Family family;
    Node node;
    Era era;                 ///< machine era (see Era)
    std::string releaseDate;
    double releasePriceUsd;  ///< 0 when unpublished

    int cores;
    int smtWays;             ///< hardware threads per core (1 or 2)
    double llcMb;
    double stockClockGhz;
    double transistorsM;     ///< package transistor count, millions
    double dieMm2;
    double vidMinV;          ///< published VID range (0 = unpublished)
    double vidMaxV;
    double tdpW;
    double fsbMhz;           ///< 0 for QPI/DMI parts
    std::string dram;        ///< key into dramModel()
    bool hasTurbo;

    // -- Per-part calibration ----------------------------------------
    double fMinGhz;          ///< lowest BIOS clock setting
    double vEffMin;          ///< core voltage at fMinGhz
    double vEffMax;          ///< core voltage at stock clock
    double vGamma;           ///< V(f) curvature (1 = linear)
    double uncoreBaseW;      ///< constant uncore/IO/package power
    double uncoreDynW;       ///< uncore power term at stock clock
    double perfCal;          ///< scalar performance calibration
    double powerCal;         ///< scalar core-power calibration
    double leakCal;          ///< scalar leakage calibration
    /**
     * Extra core voltage per Turbo step above the stock clock: the
     * governor overdrives VID to hold the boosted frequency, which
     * is why Turbo is power-expensive on the i7 (paper Finding 8).
     */
    double turboVKickV;

    /** Microarchitecture descriptor. */
    const MicroArch &uarch() const;

    /** Technology node model. */
    const TechNode &tech() const;

    /** Attached memory model. */
    const DramModel &memory() const;

    // -- Turbo and AVX behavior (defaults match the paper parts) -----
    /** Turbo Boost step size: 133 MHz on Nehalem, 100 MHz later. */
    double turboStepGhz = 0.133;
    /** Turbo steps above stock with one active core. */
    int turboSteps1C = 2;
    /** Turbo steps above stock with all cores active. */
    int turboStepsAllC = 1;
    /**
     * Fractional clock reduction under a full AVX license (Haswell
     * onwards): the effective penalty scales with the workload's
     * floating-point share. 0 disables the model entirely.
     */
    double avxClockPenalty = 0.0;
};

/** All eight processors in Table 3 order. */
const std::vector<ProcessorSpec> &allProcessors();

/**
 * The post-2011 server parts (Sandy Bridge through Skylake-SP) in
 * release order. Kept out of allProcessors() so the paper-era grids
 * and golden outputs are untouched.
 */
const std::vector<ProcessorSpec> &postPaperProcessors();

/**
 * Look up a processor by its short id (e.g. "i5 (32)") across the
 * paper and post-paper tables.
 */
const ProcessorSpec &processorById(const std::string &id);

/** Look up a processor by id; nullptr when unknown. */
const ProcessorSpec *findProcessor(const std::string &id);

/** Build the cache hierarchy for a processor. */
CacheHierarchy makeHierarchy(const ProcessorSpec &spec);

/**
 * One experimental configuration: a processor with BIOS-controlled
 * core count, SMT, clock and Turbo Boost (paper section 2.8).
 */
struct MachineConfig
{
    const ProcessorSpec *spec;
    int enabledCores;
    int smtPerCore;       ///< 1 = SMT disabled, 2 = enabled
    double clockGhz;
    bool turboEnabled;

    /** Total hardware contexts visible to software. */
    int contexts() const { return enabledCores * smtPerCore; }

    /** "i7 (45) 4C2T@2.7GHz" (+" NoTB" when Turbo is disabled
     *  on a Turbo-capable part). */
    std::string label() const;

    /** Core voltage at a given clock from the part's V(f) curve. */
    double voltageAt(double f_ghz) const;
};

/** The stock (as-sold) configuration of a processor. */
MachineConfig stockConfig(const ProcessorSpec &spec);

/** Copy of a config with a different enabled-core count. */
MachineConfig withCores(const MachineConfig &base, int cores);

/** Copy of a config with SMT enabled/disabled. */
MachineConfig withSmt(const MachineConfig &base, bool enabled);

/** Copy of a config down-clocked (or restored) to clock_ghz. */
MachineConfig withClock(const MachineConfig &base, double clock_ghz);

/** Copy of a config with Turbo Boost enabled/disabled. */
MachineConfig withTurbo(const MachineConfig &base, bool enabled);

/**
 * The full experimental configuration set: the 8 stock processors
 * plus the controlled variants, 45 configurations in all
 * (29 of them at 45nm, matching the paper's Pareto study).
 */
std::vector<MachineConfig> standardConfigurations();

/** The 45nm subset of standardConfigurations() (29 configs). */
std::vector<MachineConfig> configurations45nm();

/**
 * The configuration grid of one era: paper eras are the matching
 * subset of standardConfigurations(); each server era is a ten-point
 * BIOS ladder (core count, SMT, clock, Turbo) over its one part.
 */
std::vector<MachineConfig> configurationsOfEra(Era era);

/** One era's configuration grid, for configurationsByEra(). */
struct EraConfigurations
{
    Era era;
    std::vector<MachineConfig> configs;
};

/** Every era's grid in chronological order. */
std::vector<EraConfigurations> configurationsByEra();

} // namespace lhr

#endif // LHR_MACHINE_PROCESSOR_HH
