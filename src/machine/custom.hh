/**
 * @file
 * User-defined processors.
 *
 * The eight machines of the study are built in (machine/processor),
 * but a downstream user extending the methodology to other parts —
 * the paper itself wished for a 90nm Pentium M it could not isolate
 * a rail for — needs to define machines without editing the library.
 * CustomProcessor parses a simple `key = value` definition into a
 * ProcessorSpec that works with every model and the harness.
 *
 * Example definition:
 *
 *     id          = PentiumM (130)
 *     model       = Pentium M 735 (Banias class)
 *     family      = Core            # closest of the four families
 *     node_nm     = 130             # one of 130/65/45/32
 *     cores       = 1
 *     smt         = 1
 *     llc_mb      = 1
 *     clock_ghz   = 1.7
 *     fmin_ghz    = 0.6
 *     transistors_m = 77
 *     die_mm2     = 83
 *     tdp_w       = 24.5
 *     dram        = DDR-400
 *     veff_min    = 0.96
 *     veff_max    = 1.48
 *     uncore_base_w = 2.0
 */

#ifndef LHR_MACHINE_CUSTOM_HH
#define LHR_MACHINE_CUSTOM_HH

#include <istream>
#include <memory>
#include <string>

#include "machine/processor.hh"

namespace lhr
{

/**
 * A ProcessorSpec owned by the caller, built from a definition
 * stream. The returned object must outlive any MachineConfig or
 * model referring to it.
 */
class CustomProcessor
{
  public:
    /**
     * Parse a `key = value` definition ('#' comments, blank lines
     * allowed). Unknown keys and malformed values are fatal() —
     * definitions are user input. Missing optional keys take
     * defaults derived from the family and node.
     */
    static std::unique_ptr<CustomProcessor> parse(std::istream &is);

    /** Parse from a string (convenience). */
    static std::unique_ptr<CustomProcessor>
    parseString(const std::string &text);

    /** The spec, usable with stockConfig() and every model. */
    const ProcessorSpec &spec() const { return processorSpec; }

  private:
    CustomProcessor() = default;

    ProcessorSpec processorSpec;
};

} // namespace lhr

#endif // LHR_MACHINE_CUSTOM_HH
