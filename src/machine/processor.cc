#include "machine/processor.hh"

#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace lhr
{

namespace
{

// Table 3 of the paper, plus per-part calibration (fMin..powerCal).
const std::vector<ProcessorSpec> processors = {
    {
        "Pentium4 (130)", "Pentium 4", "SL6WF", "Northwood",
        Family::NetBurst, Node::Nm130, "May '03", 0.0,
        /* cores */ 1, /* smtWays */ 2, /* llcMb */ 0.5,
        /* clock */ 2.4, /* transM */ 55, /* die */ 131,
        /* vid */ 0.0, 0.0, /* tdp */ 66, /* fsb */ 800,
        "DDR-400", /* turbo */ false,
        /* fMin */ 2.4, /* vEff */ 1.50, 1.50, /* gamma */ 1.0,
        /* uncoreBase */ 5.0, /* uncoreDyn */ 3.0,
        /* perfCal */ 1.0, /* powerCal */ 0.97, /* leakCal */ 1.0,
        /* turboVKickV */ 0.0,
    },
    {
        "C2D (65)", "Core 2 Duo E6600", "SL9S8", "Conroe",
        Family::Core, Node::Nm65, "Jul '06", 316.0,
        2, 1, 4.0,
        2.4, 291, 143,
        0.85, 1.50, 65, 1066,
        "DDR2-800", false,
        1.6, 1.10, 1.30, 1.0,
        4.0, 2.0,
        1.0, 1.0, 1.0, 0.0,
    },
    {
        "C2Q (65)", "Core 2 Quad Q6600", "SL9UM", "Kentsfield",
        Family::Core, Node::Nm65, "Jan '07", 851.0,
        4, 1, 8.0,
        2.4, 582, 286,
        0.85, 1.50, 105, 1066,
        "DDR2-800", false,
        1.6, 1.10, 1.30, 1.0,
        6.0, 3.0,
        1.0, 1.12, 1.0, 0.0,
    },
    {
        "i7 (45)", "Core i7 920", "SLBCH", "Bloomfield",
        Family::Nehalem, Node::Nm45, "Nov '08", 284.0,
        4, 2, 8.0,
        2.667, 731, 263,
        0.80, 1.38, 130, 0,
        "DDR3-1066", true,
        1.6, 0.95, 1.25, 1.40,
        4.5, 1.5,
        1.0, 0.75, 0.45, 0.09,
    },
    {
        "Atom (45)", "Atom 230", "SLB6Z", "Diamondville",
        Family::Bonnell, Node::Nm45, "Jun '08", 29.0,
        1, 2, 0.5,
        1.667, 47, 26,
        0.90, 1.16, 4, 533,
        "DDR2-800-FSB533", false,
        1.2, 0.95, 1.10, 1.0,
        0.75, 0.30,
        1.0, 1.0, 1.0, 0.0,
    },
    {
        "C2D (45)", "Core 2 Duo E7600", "SLGTD", "Wolfdale",
        Family::Core, Node::Nm45, "May '09", 133.0,
        2, 1, 3.0,
        3.06, 228, 82,
        0.85, 1.36, 65, 1066,
        "DDR2-800", false,
        1.6, 0.97, 1.30, 1.50,
        3.0, 1.5,
        1.0, 1.0, 1.0, 0.0,
    },
    {
        "AtomD (45)", "Atom D510", "SLBLA", "Pineview",
        Family::Bonnell, Node::Nm45, "Dec '09", 63.0,
        2, 2, 1.0,
        1.667, 176, 87,
        0.80, 1.17, 13, 665,
        "DDR2-800-FSB665", false,
        1.2, 0.90, 1.05, 1.0,
        1.40, 0.40,
        1.0, 1.0, 1.0, 0.0,
    },
    {
        "i5 (32)", "Core i5 670", "SLBLT", "Clarkdale",
        Family::Nehalem, Node::Nm32, "Jan '10", 284.0,
        2, 2, 4.0,
        3.46, 382, 81,
        0.65, 1.40, 73, 0,
        "DDR3-1333", true,
        1.2, 1.05, 1.18, 0.80,
        3.5, 1.5,
        1.0, 0.88, 0.60, 0.015,
    },
};

} // namespace

const MicroArch &
ProcessorSpec::uarch() const
{
    return microArch(family);
}

const TechNode &
ProcessorSpec::tech() const
{
    return techNode(node);
}

const DramModel &
ProcessorSpec::memory() const
{
    return dramModel(dram);
}

const std::vector<ProcessorSpec> &
allProcessors()
{
    return processors;
}

const ProcessorSpec *
findProcessor(const std::string &id)
{
    for (const auto &spec : processors)
        if (spec.id == id)
            return &spec;
    return nullptr;
}

const ProcessorSpec &
processorById(const std::string &id)
{
    if (const ProcessorSpec *spec = findProcessor(id))
        return *spec;
    panic(msgOf("processorById: unknown processor '", id, "'"));
}

CacheHierarchy
makeHierarchy(const ProcessorSpec &spec)
{
    // L1 latency is folded into base CPI, so its latencyNs is 0; it
    // still filters the access stream.
    using Scope = CacheScope;
    switch (spec.family) {
      case Family::NetBurst:
        return CacheHierarchy({
            {"L1", 16, 0.0, Scope::PerCore, 1},
            {"L2", 512, 7.5, Scope::PerCore, 1},
        }, spec.memory().latencyNs);
      case Family::Core:
        // Kentsfield pairs two Conroe dies: each 4MB L2 instance is
        // shared by two cores.
        return CacheHierarchy({
            {"L1", 32, 0.0, Scope::PerCore, 1},
            {"L2", spec.cores == 4 ? 4096.0 : spec.llcMb * 1024.0,
             spec.llcMb >= 4.0 ? 5.8 : 4.6, Scope::Shared, 2},
        }, spec.memory().latencyNs);
      case Family::Bonnell:
        return CacheHierarchy({
            {"L1", 24, 0.0, Scope::PerCore, 1},
            {"L2", 512, 4.8, Scope::PerCore, 1},
        }, spec.memory().latencyNs);
      case Family::Nehalem:
        return CacheHierarchy({
            {"L1", 32, 0.0, Scope::PerCore, 1},
            {"L2", 256, spec.node == Node::Nm32 ? 3.2 : 3.7,
             Scope::PerCore, 1},
            {"L3", spec.llcMb * 1024.0,
             spec.node == Node::Nm32 ? 11.0 : 14.0,
             Scope::Shared, spec.cores},
        }, spec.memory().latencyNs);
    }
    panic("makeHierarchy: unknown family");
}

std::string
MachineConfig::label() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s %dC%dT@%.1fGHz",
                  spec->id.c_str(), enabledCores, smtPerCore, clockGhz);
    std::string out = buf;
    if (spec->hasTurbo && !turboEnabled)
        out += " NoTB";
    return out;
}

double
MachineConfig::voltageAt(double f_ghz) const
{
    const ProcessorSpec &s = *spec;
    if (f_ghz <= s.fMinGhz)
        return s.vEffMin;
    const double span = s.stockClockGhz - s.fMinGhz;
    if (span <= 0.0)
        return s.vEffMax;
    if (f_ghz > s.stockClockGhz + 1e-9) {
        // Turbo overdrive: the governor raises VID per boost step.
        const double steps =
            (f_ghz - s.stockClockGhz) / ProcessorSpec::turboStepGhz;
        return s.vEffMax + s.turboVKickV * steps;
    }
    const double x = (f_ghz - s.fMinGhz) / span;
    return s.vEffMin + (s.vEffMax - s.vEffMin) * std::pow(x, s.vGamma);
}

MachineConfig
stockConfig(const ProcessorSpec &spec)
{
    return {&spec, spec.cores, spec.smtWays, spec.stockClockGhz,
            spec.hasTurbo};
}

MachineConfig
withCores(const MachineConfig &base, int cores)
{
    if (cores < 1 || cores > base.spec->cores)
        panic(msgOf("withCores: ", cores, " cores out of range for ",
                    base.spec->id));
    MachineConfig cfg = base;
    cfg.enabledCores = cores;
    return cfg;
}

MachineConfig
withSmt(const MachineConfig &base, bool enabled)
{
    if (enabled && base.spec->smtWays < 2)
        panic(msgOf("withSmt: ", base.spec->id, " has no SMT"));
    MachineConfig cfg = base;
    cfg.smtPerCore = enabled ? 2 : 1;
    return cfg;
}

MachineConfig
withClock(const MachineConfig &base, double clock_ghz)
{
    if (clock_ghz < base.spec->fMinGhz - 1e-9 ||
        clock_ghz > base.spec->stockClockGhz + 1e-9) {
        panic(msgOf("withClock: ", clock_ghz, " GHz out of range for ",
                    base.spec->id));
    }
    MachineConfig cfg = base;
    cfg.clockGhz = clock_ghz;
    return cfg;
}

MachineConfig
withTurbo(const MachineConfig &base, bool enabled)
{
    if (enabled && !base.spec->hasTurbo)
        panic(msgOf("withTurbo: ", base.spec->id, " has no Turbo Boost"));
    MachineConfig cfg = base;
    cfg.turboEnabled = enabled;
    return cfg;
}

std::vector<MachineConfig>
configurations45nm()
{
    std::vector<MachineConfig> configs;

    // Atom 230: stock (1C2T) and SMT disabled.
    const auto atom = stockConfig(processorById("Atom (45)"));
    configs.push_back(atom);
    configs.push_back(withSmt(atom, false));

    // Atom D510: all four core/SMT combinations.
    const auto atomD = stockConfig(processorById("AtomD (45)"));
    configs.push_back(atomD);
    configs.push_back(withSmt(atomD, false));
    configs.push_back(withCores(atomD, 1));
    configs.push_back(withSmt(withCores(atomD, 1), false));

    // Core 2 Duo E7600: clock ladder plus single core.
    const auto c2d = stockConfig(processorById("C2D (45)"));
    configs.push_back(c2d);
    configs.push_back(withClock(c2d, 2.4));
    configs.push_back(withClock(c2d, 1.6));
    configs.push_back(withCores(c2d, 1));

    // Core i7 920: 19 configurations.
    const auto i7 = stockConfig(processorById("i7 (45)"));
    const auto i7NoTb = withTurbo(i7, false);
    for (int cores : {1, 2, 4}) {
        for (int smt : {1, 2}) {
            auto cfg = withCores(i7NoTb, cores);
            cfg.smtPerCore = smt;
            configs.push_back(cfg);                 // @2.7 NoTB
            configs.push_back(withClock(cfg, 1.6)); // @1.6
        }
    }
    configs.push_back(withClock(i7NoTb, 2.1));                    // 4C2T@2.1
    configs.push_back(withClock(withCores(i7NoTb, 1), 2.1));      // 1C2T@2.1
    configs.push_back(withClock(i7NoTb, 2.4));                    // 4C2T@2.4
    configs.push_back(withClock(withCores(i7NoTb, 1), 2.4));      // 1C2T@2.4
    configs.push_back(i7);                                        // stock TB
    configs.push_back(withSmt(i7, false));                        // 4C1T TB
    configs.push_back(withSmt(withCores(i7, 1), false));          // 1C1T TB

    return configs;
}

std::vector<MachineConfig>
standardConfigurations()
{
    std::vector<MachineConfig> configs;

    // Pentium 4: stock (1C2T) and SMT disabled.
    const auto p4 = stockConfig(processorById("Pentium4 (130)"));
    configs.push_back(p4);
    configs.push_back(withSmt(p4, false));

    // Core 2 Duo E6600: stock, single core, down-clocked.
    const auto c2d65 = stockConfig(processorById("C2D (65)"));
    configs.push_back(c2d65);
    configs.push_back(withCores(c2d65, 1));
    configs.push_back(withClock(c2d65, 1.6));

    // Core 2 Quad Q6600: stock, two cores, one core.
    const auto c2q = stockConfig(processorById("C2Q (65)"));
    configs.push_back(c2q);
    configs.push_back(withCores(c2q, 2));
    configs.push_back(withCores(c2q, 1));

    // All 29 45nm configurations.
    for (const auto &cfg : configurations45nm())
        configs.push_back(cfg);

    // Core i5 670: 8 configurations.
    const auto i5 = stockConfig(processorById("i5 (32)"));
    const auto i5NoTb = withTurbo(i5, false);
    configs.push_back(i5);                                   // stock TB
    configs.push_back(i5NoTb);                               // 2C2T NoTB
    configs.push_back(withSmt(i5NoTb, false));               // 2C1T
    configs.push_back(withCores(i5NoTb, 1));                 // 1C2T
    configs.push_back(withSmt(withCores(i5NoTb, 1), false)); // 1C1T NoTB
    configs.push_back(withSmt(withCores(i5, 1), false));     // 1C1T TB
    configs.push_back(withClock(i5NoTb, 1.73));              // 2C2T@1.7
    configs.push_back(withClock(i5NoTb, 1.2));               // 2C2T@1.2

    return configs;
}

} // namespace lhr
