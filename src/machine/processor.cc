#include "machine/processor.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace lhr
{

namespace
{

// Table 3 of the paper, plus per-part calibration (fMin..powerCal).
const std::vector<ProcessorSpec> processors = {
    {
        "Pentium4 (130)", "Pentium 4", "SL6WF", "Northwood",
        Family::NetBurst, Node::Nm130, Era::Paper130, "May '03", 0.0,
        /* cores */ 1, /* smtWays */ 2, /* llcMb */ 0.5,
        /* clock */ 2.4, /* transM */ 55, /* die */ 131,
        /* vid */ 0.0, 0.0, /* tdp */ 66, /* fsb */ 800,
        "DDR-400", /* turbo */ false,
        /* fMin */ 2.4, /* vEff */ 1.50, 1.50, /* gamma */ 1.0,
        /* uncoreBase */ 5.0, /* uncoreDyn */ 3.0,
        /* perfCal */ 1.0, /* powerCal */ 0.97, /* leakCal */ 1.0,
        /* turboVKickV */ 0.0,
    },
    {
        "C2D (65)", "Core 2 Duo E6600", "SL9S8", "Conroe",
        Family::Core, Node::Nm65, Era::Paper65, "Jul '06", 316.0,
        2, 1, 4.0,
        2.4, 291, 143,
        0.85, 1.50, 65, 1066,
        "DDR2-800", false,
        1.6, 1.10, 1.30, 1.0,
        4.0, 2.0,
        1.0, 1.0, 1.0, 0.0,
    },
    {
        "C2Q (65)", "Core 2 Quad Q6600", "SL9UM", "Kentsfield",
        Family::Core, Node::Nm65, Era::Paper65, "Jan '07", 851.0,
        4, 1, 8.0,
        2.4, 582, 286,
        0.85, 1.50, 105, 1066,
        "DDR2-800", false,
        1.6, 1.10, 1.30, 1.0,
        6.0, 3.0,
        1.0, 1.12, 1.0, 0.0,
    },
    {
        "i7 (45)", "Core i7 920", "SLBCH", "Bloomfield",
        Family::Nehalem, Node::Nm45, Era::Paper45, "Nov '08", 284.0,
        4, 2, 8.0,
        2.667, 731, 263,
        0.80, 1.38, 130, 0,
        "DDR3-1066", true,
        1.6, 0.95, 1.25, 1.40,
        4.5, 1.5,
        1.0, 0.75, 0.45, 0.09,
    },
    {
        "Atom (45)", "Atom 230", "SLB6Z", "Diamondville",
        Family::Bonnell, Node::Nm45, Era::Paper45, "Jun '08", 29.0,
        1, 2, 0.5,
        1.667, 47, 26,
        0.90, 1.16, 4, 533,
        "DDR2-800-FSB533", false,
        1.2, 0.95, 1.10, 1.0,
        0.75, 0.30,
        1.0, 1.0, 1.0, 0.0,
    },
    {
        "C2D (45)", "Core 2 Duo E7600", "SLGTD", "Wolfdale",
        Family::Core, Node::Nm45, Era::Paper45, "May '09", 133.0,
        2, 1, 3.0,
        3.06, 228, 82,
        0.85, 1.36, 65, 1066,
        "DDR2-800", false,
        1.6, 0.97, 1.30, 1.50,
        3.0, 1.5,
        1.0, 1.0, 1.0, 0.0,
    },
    {
        "AtomD (45)", "Atom D510", "SLBLA", "Pineview",
        Family::Bonnell, Node::Nm45, Era::Paper45, "Dec '09", 63.0,
        2, 2, 1.0,
        1.667, 176, 87,
        0.80, 1.17, 13, 665,
        "DDR2-800-FSB665", false,
        1.2, 0.90, 1.05, 1.0,
        1.40, 0.40,
        1.0, 1.0, 1.0, 0.0,
    },
    {
        "i5 (32)", "Core i5 670", "SLBLT", "Clarkdale",
        Family::Nehalem, Node::Nm32, Era::Paper32, "Jan '10", 284.0,
        2, 2, 4.0,
        3.46, 382, 81,
        0.65, 1.40, 73, 0,
        "DDR3-1333", true,
        1.2, 1.05, 1.18, 0.80,
        3.5, 1.5,
        1.0, 0.88, 0.60, 0.015,
    },
};

// Post-2011 server parts (Hofmann et al. generations, PAPERS.md).
// Kept in a separate table so allProcessors() — and with it every
// paper-era grid and golden output — is unchanged. Trailing fields:
// turboStepGhz, turboSteps1C, turboStepsAllC, avxClockPenalty.
const std::vector<ProcessorSpec> postPaper = {
    {
        "XeonE5 (32)", "Xeon E5-2670", "SR0KX", "Sandy Bridge-EP",
        Family::SandyBridge, Node::Nm32, Era::SandyBridge,
        "Mar '12", 1552.0,
        /* cores */ 8, /* smtWays */ 2, /* llcMb */ 20.0,
        /* clock */ 2.6, /* transM */ 2270, /* die */ 416,
        /* vid */ 0.60, 1.35, /* tdp */ 115, /* fsb */ 0,
        "DDR3-1600", /* turbo */ true,
        /* fMin */ 1.2, /* vEff */ 0.80, 1.05, /* gamma */ 1.2,
        /* uncoreBase */ 14.0, /* uncoreDyn */ 7.0,
        /* perfCal */ 1.0, /* powerCal */ 0.90, /* leakCal */ 0.25,
        /* turboVKickV */ 0.020,
        /* turboStepGhz */ 0.1, /* steps1C */ 7, /* stepsAllC */ 4,
        /* avxClockPenalty */ 0.0,
    },
    {
        "XeonE5v3 (22)", "Xeon E5-2690 v3", "SR1XN", "Haswell-EP",
        Family::Haswell, Node::Nm22, Era::Haswell,
        "Sep '14", 2090.0,
        12, 2, 30.0,
        2.6, 3840, 492,
        0.65, 1.30, 135, 0,
        "DDR4-2133", true,
        1.2, 0.75, 1.00, 1.2,
        18.0, 9.0,
        1.0, 0.90, 0.25, 0.020,
        0.1, 9, 5, 0.10,
    },
    {
        "XeonE5v4 (14)", "Xeon E5-2697 v4", "SR2JV", "Broadwell-EP",
        Family::Broadwell, Node::Nm14, Era::Broadwell,
        "Mar '16", 2702.0,
        18, 2, 45.0,
        2.3, 7200, 456,
        0.60, 1.25, 145, 0,
        "DDR4-2400", true,
        1.2, 0.70, 0.95, 1.2,
        20.0, 10.0,
        1.0, 0.90, 0.25, 0.018,
        0.1, 13, 5, 0.12,
    },
    {
        "XeonSP (14)", "Xeon Gold 6148", "SR3B6", "Skylake-SP",
        Family::SkylakeSP, Node::Nm14, Era::Skylake,
        "Jul '17", 3072.0,
        20, 2, 27.5,
        2.4, 8000, 694,
        0.60, 1.25, 150, 0,
        "DDR4-2666", true,
        1.2, 0.70, 0.95, 1.2,
        24.0, 12.0,
        1.0, 0.90, 0.25, 0.018,
        0.1, 13, 7, 0.18,
    },
};

/**
 * Startup guard: ids must be unique across both spec tables, or
 * id-keyed stores and sweep shards would silently collide. Runs once
 * on first table access.
 */
bool
checkUniqueIds()
{
    std::vector<const std::vector<ProcessorSpec> *> tables = {
        &processors, &postPaper};
    std::vector<std::string> seen;
    for (const auto *table : tables) {
        for (const auto &spec : *table) {
            for (const auto &id : seen)
                if (id == spec.id)
                    panic(msgOf("duplicate processor id '", spec.id,
                                "' in spec tables"));
            seen.push_back(spec.id);
        }
    }
    return true;
}

const bool idsChecked = checkUniqueIds();

} // namespace

const MicroArch &
ProcessorSpec::uarch() const
{
    return microArch(family);
}

const TechNode &
ProcessorSpec::tech() const
{
    return techNode(node);
}

const DramModel &
ProcessorSpec::memory() const
{
    return dramModel(dram);
}

const std::vector<ProcessorSpec> &
allProcessors()
{
    return processors;
}

const std::vector<ProcessorSpec> &
postPaperProcessors()
{
    return postPaper;
}

const ProcessorSpec *
findProcessor(const std::string &id)
{
    for (const auto &spec : processors)
        if (spec.id == id)
            return &spec;
    for (const auto &spec : postPaper)
        if (spec.id == id)
            return &spec;
    return nullptr;
}

const ProcessorSpec &
processorById(const std::string &id)
{
    if (const ProcessorSpec *spec = findProcessor(id))
        return *spec;
    std::string valid;
    for (const auto &spec : processors)
        valid += (valid.empty() ? "'" : ", '") + spec.id + "'";
    for (const auto &spec : postPaper)
        valid += ", '" + spec.id + "'";
    panic(msgOf("processorById: unknown processor '", id,
                "' (valid ids: ", valid, ")"));
}

std::string
eraName(Era era)
{
    switch (era) {
      case Era::Paper130:    return "130nm";
      case Era::Paper65:     return "65nm";
      case Era::Paper45:     return "45nm";
      case Era::Paper32:     return "32nm";
      case Era::SandyBridge: return "sandy-bridge";
      case Era::Haswell:     return "haswell";
      case Era::Broadwell:   return "broadwell";
      case Era::Skylake:     return "skylake";
    }
    panic("eraName: unknown era");
}

Era
parseEra(const std::string &name)
{
    for (Era era : allEras())
        if (eraName(era) == name)
            return era;
    std::string valid;
    for (Era era : allEras())
        valid += (valid.empty() ? "'" : ", '") + eraName(era) + "'";
    panic(msgOf("parseEra: unknown era '", name,
                "' (valid: ", valid, ")"));
}

const std::vector<Era> &
allEras()
{
    static const std::vector<Era> eras = {
        Era::Paper130, Era::Paper65, Era::Paper45, Era::Paper32,
        Era::SandyBridge, Era::Haswell, Era::Broadwell, Era::Skylake};
    return eras;
}

CacheHierarchy
makeHierarchy(const ProcessorSpec &spec)
{
    // L1 latency is folded into base CPI, so its latencyNs is 0; it
    // still filters the access stream.
    using Scope = CacheScope;
    switch (spec.family) {
      case Family::NetBurst:
        return CacheHierarchy({
            {"L1", 16, 0.0, Scope::PerCore, 1},
            {"L2", 512, 7.5, Scope::PerCore, 1},
        }, spec.memory().latencyNs);
      case Family::Core:
        // Kentsfield pairs two Conroe dies: each 4MB L2 instance is
        // shared by two cores.
        return CacheHierarchy({
            {"L1", 32, 0.0, Scope::PerCore, 1},
            {"L2", spec.cores == 4 ? 4096.0 : spec.llcMb * 1024.0,
             spec.llcMb >= 4.0 ? 5.8 : 4.6, Scope::Shared, 2},
        }, spec.memory().latencyNs);
      case Family::Bonnell:
        return CacheHierarchy({
            {"L1", 24, 0.0, Scope::PerCore, 1},
            {"L2", 512, 4.8, Scope::PerCore, 1},
        }, spec.memory().latencyNs);
      case Family::Nehalem:
        return CacheHierarchy({
            {"L1", 32, 0.0, Scope::PerCore, 1},
            {"L2", 256, spec.node == Node::Nm32 ? 3.2 : 3.7,
             Scope::PerCore, 1},
            {"L3", spec.llcMb * 1024.0,
             spec.node == Node::Nm32 ? 11.0 : 14.0,
             Scope::Shared, spec.cores},
        }, spec.memory().latencyNs);
      case Family::SandyBridge:
      case Family::Haswell:
      case Family::Broadwell:
        // Ring-connected inclusive L3, 256kB private L2s.
        return CacheHierarchy({
            {"L1", 32, 0.0, Scope::PerCore, 1},
            {"L2", 256, spec.family == Family::SandyBridge ? 3.5 : 3.2,
             Scope::PerCore, 1},
            {"L3", spec.llcMb * 1024.0,
             spec.family == Family::SandyBridge ? 13.0 : 12.0,
             Scope::Shared, spec.cores},
        }, spec.memory().latencyNs);
      case Family::SkylakeSP:
        // Mesh uncore: L2 grows to 1MB, L3 shrinks to a
        // non-inclusive victim cache.
        return CacheHierarchy({
            {"L1", 32, 0.0, Scope::PerCore, 1},
            {"L2", 1024, 4.2, Scope::PerCore, 1},
            {"L3", spec.llcMb * 1024.0, 16.0,
             Scope::Shared, spec.cores},
        }, spec.memory().latencyNs);
    }
    panic("makeHierarchy: unknown family");
}

std::string
MachineConfig::label() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s %dC%dT@%.1fGHz",
                  spec->id.c_str(), enabledCores, smtPerCore, clockGhz);
    std::string out = buf;
    if (spec->hasTurbo && !turboEnabled)
        out += " NoTB";
    return out;
}

double
MachineConfig::voltageAt(double f_ghz) const
{
    const ProcessorSpec &s = *spec;
    if (f_ghz <= s.fMinGhz)
        return s.vEffMin;
    const double span = s.stockClockGhz - s.fMinGhz;
    if (span <= 0.0)
        return s.vEffMax;
    if (f_ghz > s.stockClockGhz + 1e-9) {
        // Turbo overdrive: the governor raises VID per boost step.
        const double steps =
            (f_ghz - s.stockClockGhz) / s.turboStepGhz;
        return s.vEffMax + s.turboVKickV * steps;
    }
    const double x = (f_ghz - s.fMinGhz) / span;
    return s.vEffMin + (s.vEffMax - s.vEffMin) * std::pow(x, s.vGamma);
}

MachineConfig
stockConfig(const ProcessorSpec &spec)
{
    return {&spec, spec.cores, spec.smtWays, spec.stockClockGhz,
            spec.hasTurbo};
}

MachineConfig
withCores(const MachineConfig &base, int cores)
{
    if (cores < 1 || cores > base.spec->cores)
        panic(msgOf("withCores: ", cores, " cores out of range for ",
                    base.spec->id));
    MachineConfig cfg = base;
    cfg.enabledCores = cores;
    return cfg;
}

MachineConfig
withSmt(const MachineConfig &base, bool enabled)
{
    if (enabled && base.spec->smtWays < 2)
        panic(msgOf("withSmt: ", base.spec->id, " has no SMT"));
    MachineConfig cfg = base;
    cfg.smtPerCore = enabled ? 2 : 1;
    return cfg;
}

MachineConfig
withClock(const MachineConfig &base, double clock_ghz)
{
    if (clock_ghz < base.spec->fMinGhz - 1e-9 ||
        clock_ghz > base.spec->stockClockGhz + 1e-9) {
        panic(msgOf("withClock: ", clock_ghz, " GHz out of range for ",
                    base.spec->id));
    }
    MachineConfig cfg = base;
    cfg.clockGhz = clock_ghz;
    return cfg;
}

MachineConfig
withTurbo(const MachineConfig &base, bool enabled)
{
    if (enabled && !base.spec->hasTurbo)
        panic(msgOf("withTurbo: ", base.spec->id, " has no Turbo Boost"));
    MachineConfig cfg = base;
    cfg.turboEnabled = enabled;
    return cfg;
}

std::vector<MachineConfig>
configurations45nm()
{
    std::vector<MachineConfig> configs;

    // Atom 230: stock (1C2T) and SMT disabled.
    const auto atom = stockConfig(processorById("Atom (45)"));
    configs.push_back(atom);
    configs.push_back(withSmt(atom, false));

    // Atom D510: all four core/SMT combinations.
    const auto atomD = stockConfig(processorById("AtomD (45)"));
    configs.push_back(atomD);
    configs.push_back(withSmt(atomD, false));
    configs.push_back(withCores(atomD, 1));
    configs.push_back(withSmt(withCores(atomD, 1), false));

    // Core 2 Duo E7600: clock ladder plus single core.
    const auto c2d = stockConfig(processorById("C2D (45)"));
    configs.push_back(c2d);
    configs.push_back(withClock(c2d, 2.4));
    configs.push_back(withClock(c2d, 1.6));
    configs.push_back(withCores(c2d, 1));

    // Core i7 920: 19 configurations.
    const auto i7 = stockConfig(processorById("i7 (45)"));
    const auto i7NoTb = withTurbo(i7, false);
    for (int cores : {1, 2, 4}) {
        for (int smt : {1, 2}) {
            auto cfg = withCores(i7NoTb, cores);
            cfg.smtPerCore = smt;
            configs.push_back(cfg);                 // @2.7 NoTB
            configs.push_back(withClock(cfg, 1.6)); // @1.6
        }
    }
    configs.push_back(withClock(i7NoTb, 2.1));                    // 4C2T@2.1
    configs.push_back(withClock(withCores(i7NoTb, 1), 2.1));      // 1C2T@2.1
    configs.push_back(withClock(i7NoTb, 2.4));                    // 4C2T@2.4
    configs.push_back(withClock(withCores(i7NoTb, 1), 2.4));      // 1C2T@2.4
    configs.push_back(i7);                                        // stock TB
    configs.push_back(withSmt(i7, false));                        // 4C1T TB
    configs.push_back(withSmt(withCores(i7, 1), false));          // 1C1T TB

    return configs;
}

std::vector<MachineConfig>
standardConfigurations()
{
    std::vector<MachineConfig> configs;

    // Pentium 4: stock (1C2T) and SMT disabled.
    const auto p4 = stockConfig(processorById("Pentium4 (130)"));
    configs.push_back(p4);
    configs.push_back(withSmt(p4, false));

    // Core 2 Duo E6600: stock, single core, down-clocked.
    const auto c2d65 = stockConfig(processorById("C2D (65)"));
    configs.push_back(c2d65);
    configs.push_back(withCores(c2d65, 1));
    configs.push_back(withClock(c2d65, 1.6));

    // Core 2 Quad Q6600: stock, two cores, one core.
    const auto c2q = stockConfig(processorById("C2Q (65)"));
    configs.push_back(c2q);
    configs.push_back(withCores(c2q, 2));
    configs.push_back(withCores(c2q, 1));

    // All 29 45nm configurations.
    for (const auto &cfg : configurations45nm())
        configs.push_back(cfg);

    // Core i5 670: 8 configurations.
    const auto i5 = stockConfig(processorById("i5 (32)"));
    const auto i5NoTb = withTurbo(i5, false);
    configs.push_back(i5);                                   // stock TB
    configs.push_back(i5NoTb);                               // 2C2T NoTB
    configs.push_back(withSmt(i5NoTb, false));               // 2C1T
    configs.push_back(withCores(i5NoTb, 1));                 // 1C2T
    configs.push_back(withSmt(withCores(i5NoTb, 1), false)); // 1C1T NoTB
    configs.push_back(withSmt(withCores(i5, 1), false));     // 1C1T TB
    configs.push_back(withClock(i5NoTb, 1.73));              // 2C2T@1.7
    configs.push_back(withClock(i5NoTb, 1.2));               // 2C2T@1.2

    return configs;
}

namespace
{

/**
 * Ten-point BIOS ladder for one server part: the same knobs the
 * paper turned (core count, SMT, clock, Turbo) applied to a much
 * wider chip.
 */
std::vector<MachineConfig>
serverLadder(const ProcessorSpec &spec)
{
    std::vector<MachineConfig> configs;
    const auto stock = stockConfig(spec);
    const auto noTb = withTurbo(stock, false);
    configs.push_back(stock);                                 // stock TB
    configs.push_back(withSmt(stock, false));                 // TB, no SMT
    configs.push_back(noTb);
    configs.push_back(withSmt(noTb, false));
    configs.push_back(withCores(noTb, spec.cores / 2));
    configs.push_back(withCores(noTb, std::max(1, spec.cores / 4)));
    configs.push_back(withCores(noTb, 1));
    configs.push_back(withClock(noTb, 1.6));
    configs.push_back(withClock(noTb, 2.0));
    configs.push_back(withClock(withCores(noTb, spec.cores / 2), 1.6));
    return configs;
}

const ProcessorSpec &
eraServerPart(Era era)
{
    for (const auto &spec : postPaper)
        if (spec.era == era)
            return spec;
    panic(msgOf("eraServerPart: no server part for era ",
                eraName(era)));
}

} // namespace

std::vector<MachineConfig>
configurationsOfEra(Era era)
{
    switch (era) {
      case Era::Paper130:
      case Era::Paper65:
      case Era::Paper45:
      case Era::Paper32: {
        std::vector<MachineConfig> configs;
        for (const auto &cfg : standardConfigurations())
            if (cfg.spec->era == era)
                configs.push_back(cfg);
        return configs;
      }
      case Era::SandyBridge:
      case Era::Haswell:
      case Era::Broadwell:
      case Era::Skylake:
        return serverLadder(eraServerPart(era));
    }
    panic("configurationsOfEra: unknown era");
}

std::vector<EraConfigurations>
configurationsByEra()
{
    std::vector<EraConfigurations> eras;
    for (Era era : allEras())
        eras.push_back({era, configurationsOfEra(era)});
    return eras;
}

} // namespace lhr
