#include "machine/custom.hh"

#include <cstdlib>
#include <map>
#include <sstream>

#include "util/logging.hh"
#include "util/fp.hh"

namespace lhr
{

namespace
{

std::string
trim(const std::string &text)
{
    const auto first = text.find_first_not_of(" \t");
    if (first == std::string::npos)
        return "";
    const auto last = text.find_last_not_of(" \t");
    return text.substr(first, last - first + 1);
}

Family
parseFamily(const std::string &name)
{
    if (name == "NetBurst")
        return Family::NetBurst;
    if (name == "Core")
        return Family::Core;
    if (name == "Bonnell")
        return Family::Bonnell;
    if (name == "Nehalem")
        return Family::Nehalem;
    if (name == "SandyBridge")
        return Family::SandyBridge;
    if (name == "Haswell")
        return Family::Haswell;
    if (name == "Broadwell")
        return Family::Broadwell;
    if (name == "SkylakeSP")
        return Family::SkylakeSP;
    fatal("CustomProcessor: unknown family '" + name + "'");
}

Era
defaultEra(Family family, Node node)
{
    switch (family) {
      case Family::SandyBridge: return Era::SandyBridge;
      case Family::Haswell:     return Era::Haswell;
      case Family::Broadwell:   return Era::Broadwell;
      case Family::SkylakeSP:   return Era::Skylake;
      default: break;
    }
    switch (node) {
      case Node::Nm130: return Era::Paper130;
      case Node::Nm65:  return Era::Paper65;
      case Node::Nm45:  return Era::Paper45;
      default:          return Era::Paper32;
    }
}

double
parseNumber(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        fatal("CustomProcessor: bad number for " + key + ": '" +
              value + "'");
    return parsed;
}

} // namespace

std::unique_ptr<CustomProcessor>
CustomProcessor::parse(std::istream &is)
{
    std::map<std::string, std::string> kv;
    std::string line;
    size_t lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal(msgOf("CustomProcessor: line ", lineNo,
                        " is not 'key = value'"));
        kv[trim(line.substr(0, eq))] = trim(line.substr(eq + 1));
    }

    auto require = [&](const std::string &key) {
        const auto it = kv.find(key);
        if (it == kv.end())
            fatal("CustomProcessor: missing required key '" + key +
                  "'");
        return it->second;
    };
    auto number = [&](const std::string &key) {
        return parseNumber(key, require(key));
    };
    auto optional = [&](const std::string &key, double fallback) {
        const auto it = kv.find(key);
        return it == kv.end() ? fallback
                              : parseNumber(key, it->second);
    };

    auto custom = std::unique_ptr<CustomProcessor>(
        new CustomProcessor());
    ProcessorSpec &spec = custom->processorSpec;

    spec.id = require("id");
    spec.model = kv.count("model") ? kv["model"] : spec.id;
    spec.sSpec = kv.count("sspec") ? kv["sspec"] : "custom";
    spec.codename = kv.count("codename") ? kv["codename"] : "custom";
    spec.family = parseFamily(require("family"));
    const int nm = static_cast<int>(number("node_nm"));
    spec.node = techNodeByNm(nm).node;
    spec.era = kv.count("era") ? parseEra(kv["era"])
                               : defaultEra(spec.family, spec.node);
    spec.releaseDate = kv.count("released") ? kv["released"] : "--";
    spec.releasePriceUsd = optional("price_usd", 0.0);

    spec.cores = static_cast<int>(number("cores"));
    spec.smtWays = static_cast<int>(number("smt"));
    spec.llcMb = number("llc_mb");
    spec.stockClockGhz = number("clock_ghz");
    spec.transistorsM = number("transistors_m");
    spec.dieMm2 = number("die_mm2");
    spec.tdpW = number("tdp_w");
    spec.fsbMhz = optional("fsb_mhz", 0.0);
    spec.dram = require("dram");
    spec.hasTurbo = !exactZero(optional("turbo", 0.0));

    const TechNode &tech = spec.tech();
    spec.fMinGhz = optional("fmin_ghz", spec.stockClockGhz);
    spec.vEffMin = optional("veff_min", tech.vMin + 0.1);
    spec.vEffMax = optional("veff_max", tech.vNominal);
    spec.vidMinV = optional("vid_min", spec.vEffMin);
    spec.vidMaxV = optional("vid_max", spec.vEffMax);
    spec.vGamma = optional("vgamma", 1.0);
    spec.uncoreBaseW = optional("uncore_base_w", 0.05 * spec.tdpW);
    spec.uncoreDynW = optional("uncore_dyn_w", 0.02 * spec.tdpW);
    spec.perfCal = optional("perf_cal", 1.0);
    spec.powerCal = optional("power_cal", 1.0);
    spec.leakCal = optional("leak_cal", 1.0);
    spec.turboVKickV = optional("turbo_vkick", 0.0);
    spec.turboStepGhz = optional("turbo_step_ghz", 0.133);
    spec.turboSteps1C =
        static_cast<int>(optional("turbo_steps_1c", 2.0));
    spec.turboStepsAllC =
        static_cast<int>(optional("turbo_steps_allc", 1.0));
    spec.avxClockPenalty = optional("avx_clock_penalty", 0.0);

    // Validate the physics-facing fields now, loudly.
    if (spec.cores < 1 || spec.smtWays < 1 || spec.smtWays > 2)
        fatal("CustomProcessor: cores/smt out of range");
    if (spec.llcMb <= 0.0 || spec.stockClockGhz <= 0.0 ||
        spec.transistorsM <= 0.0 || spec.tdpW <= 0.0) {
        fatal("CustomProcessor: non-positive physical parameter");
    }
    if (spec.fMinGhz > spec.stockClockGhz)
        fatal("CustomProcessor: fmin_ghz above clock_ghz");
    if (spec.vEffMin > spec.vEffMax)
        fatal("CustomProcessor: veff_min above veff_max");
    if (spec.avxClockPenalty < 0.0 || spec.avxClockPenalty >= 1.0)
        fatal("CustomProcessor: avx_clock_penalty out of [0, 1)");
    if (spec.hasTurbo &&
        (spec.turboStepGhz <= 0.0 || spec.turboSteps1C < 1 ||
         spec.turboStepsAllC < 1)) {
        fatal("CustomProcessor: invalid turbo parameters");
    }
    dramModel(spec.dram); // fatal on unknown memory

    return custom;
}

std::unique_ptr<CustomProcessor>
CustomProcessor::parseString(const std::string &text)
{
    std::istringstream is(text);
    return parse(is);
}

} // namespace lhr
