#include "bpred/predictor.hh"

#include "util/logging.hh"

namespace lhr
{

bool
BranchPredictor::run(uint64_t pc, bool taken)
{
    ++branchCount;
    const bool predicted = predict(pc);
    update(pc, taken);
    if (predicted != taken) {
        ++mispredictCount;
        return true;
    }
    return false;
}

double
BranchPredictor::mispredictRatio() const
{
    return branchCount == 0
        ? 0.0
        : static_cast<double>(mispredictCount) / branchCount;
}

namespace
{

uint8_t
saturate(uint8_t counter, bool taken)
{
    if (taken)
        return counter < 3 ? counter + 1 : 3;
    return counter > 0 ? counter - 1 : 0;
}

} // namespace

BimodalPredictor::BimodalPredictor(int table_bits)
{
    if (table_bits < 1 || table_bits > 24)
        panic("BimodalPredictor: bad table size");
    mask = (1u << table_bits) - 1;
    counters.assign(mask + 1, 2); // weakly taken
}

bool
BimodalPredictor::predict(uint64_t pc) const
{
    return counters[index(pc)] >= 2;
}

void
BimodalPredictor::update(uint64_t pc, bool taken)
{
    uint8_t &counter = counters[index(pc)];
    counter = saturate(counter, taken);
}

GsharePredictor::GsharePredictor(int table_bits)
    : history(0)
{
    if (table_bits < 1 || table_bits > 24)
        panic("GsharePredictor: bad table size");
    mask = (1u << table_bits) - 1;
    counters.assign(mask + 1, 2);
}

uint32_t
GsharePredictor::index(uint64_t pc) const
{
    return (static_cast<uint32_t>(pc >> 2) ^ history) & mask;
}

bool
GsharePredictor::predict(uint64_t pc) const
{
    return counters[index(pc)] >= 2;
}

void
GsharePredictor::update(uint64_t pc, bool taken)
{
    uint8_t &counter = counters[index(pc)];
    counter = saturate(counter, taken);
    history = ((history << 1) | (taken ? 1u : 0u)) & mask;
}

} // namespace lhr
