/**
 * @file
 * Branch predictor simulation: bimodal and gshare schemes, used by
 * the workload characterizer to turn synthetic branch streams into
 * mispredictions-per-kilo-instruction, the event the interval model
 * charges at the pipeline-depth penalty.
 */

#ifndef LHR_BPRED_PREDICTOR_HH
#define LHR_BPRED_PREDICTOR_HH

#include <cstdint>
#include <vector>

namespace lhr
{

/** Common predictor interface. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the outcome of the branch at pc. */
    virtual bool predict(uint64_t pc) const = 0;

    /** Train with the actual outcome. */
    virtual void update(uint64_t pc, bool taken) = 0;

    /** Predict, train, and count; returns true on misprediction. */
    bool run(uint64_t pc, bool taken);

    uint64_t branches() const { return branchCount; }
    uint64_t mispredictions() const { return mispredictCount; }
    double mispredictRatio() const;

  protected:
    /**
     * Count one resolved branch; returns the misprediction flag.
     * Concrete predictors use this from devirtualized fast paths so
     * the statistics stay shared with the virtual interface.
     */
    bool note(bool mispredicted)
    {
        ++branchCount;
        if (mispredicted)
            ++mispredictCount;
        return mispredicted;
    }

  private:
    uint64_t branchCount = 0;
    uint64_t mispredictCount = 0;
};

/** Per-pc table of 2-bit saturating counters. */
class BimodalPredictor : public BranchPredictor
{
  public:
    explicit BimodalPredictor(int table_bits = 12);

    bool predict(uint64_t pc) const override;
    void update(uint64_t pc, bool taken) override;

    /**
     * Predict, train, and count in one inline step — the same
     * transition run() makes, without two virtual dispatches per
     * branch. Hot loops (pipesim, counters) use this.
     */
    bool runInline(uint64_t pc, bool taken)
    {
        uint8_t &counter = counters[index(pc)];
        const bool predicted = counter >= 2;
        if (taken) {
            if (counter < 3)
                ++counter;
        } else if (counter > 0) {
            --counter;
        }
        return note(predicted != taken);
    }

  private:
    uint32_t index(uint64_t pc) const
    {
        return static_cast<uint32_t>(pc >> 2) & mask;
    }

    uint32_t mask;
    std::vector<uint8_t> counters; ///< 0..3, >=2 predicts taken
};

/** Global-history-xor-pc indexed 2-bit counters. */
class GsharePredictor : public BranchPredictor
{
  public:
    explicit GsharePredictor(int table_bits = 12);

    bool predict(uint64_t pc) const override;
    void update(uint64_t pc, bool taken) override;

  private:
    uint32_t index(uint64_t pc) const;

    uint32_t mask;
    uint32_t history;
    std::vector<uint8_t> counters;
};

} // namespace lhr

#endif // LHR_BPRED_PREDICTOR_HH
