#include "store/results_store.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "util/csv.hh"
#include "util/logging.hh"

namespace lhr
{

namespace
{

const char *const storeHeader =
    "config,benchmark,time_s,time_ci95,power_w,power_ci95";

/**
 * Split one CSV line into fields, honouring double-quote quoting as
 * produced by CsvWriter.
 */
std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::string field;
    bool quoted = false;
    for (size_t i = 0; i < line.size(); ++i) {
        const char ch = line[i];
        if (quoted) {
            if (ch == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    field += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                field += ch;
            }
        } else if (ch == '"' && field.empty()) {
            quoted = true;
        } else if (ch == ',') {
            fields.push_back(field);
            field.clear();
        } else {
            field += ch;
        }
    }
    fields.push_back(field);
    return fields;
}

/** Strip surrounding whitespace (and a stray '\r') from a field. */
std::string
trimmed(const std::string &text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

double
parseDouble(const std::string &raw, const std::string &context)
{
    // Files written or hand-edited on Windows carry CRLF line ends;
    // getline leaves the '\r' on the last field. Trim it (and any
    // stray spaces) rather than rejecting the row.
    const std::string text = trimmed(raw);
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (text.empty() || end == text.c_str() || *end != '\0')
        fatal("ResultStore: bad number '" + raw + "' in " + context);
    return value;
}

} // namespace

std::string
ResultStore::key(const std::string &config_label,
                 const std::string &benchmark)
{
    return config_label + "\x1f" + benchmark;
}

void
ResultStore::put(const StoredResult &row)
{
    rows[key(row.configLabel, row.benchmark)] = row;
}

void
ResultStore::put(const MachineConfig &cfg, const Benchmark &bench,
                 const Measurement &m)
{
    put({cfg.label(), bench.name, m.timeSec, m.timeCi95Rel, m.powerW,
         m.powerCi95Rel});
}

const StoredResult *
ResultStore::find(const std::string &config_label,
                  const std::string &benchmark) const
{
    const auto it = rows.find(key(config_label, benchmark));
    return it == rows.end() ? nullptr : &it->second;
}

std::vector<const StoredResult *>
ResultStore::all() const
{
    std::vector<const StoredResult *> out;
    out.reserve(rows.size());
    for (const auto &[k, row] : rows)
        out.push_back(&row);
    return out;
}

void
ResultStore::save(std::ostream &os) const
{
    CsvWriter csv(os, {"config", "benchmark", "time_s", "time_ci95",
                       "power_w", "power_ci95"});
    for (const auto &[k, row] : rows) {
        csv.beginRow();
        csv.field(row.configLabel);
        csv.field(row.benchmark);
        csv.field(row.timeSec, 6);
        csv.field(row.timeCi95Rel, 6);
        csv.field(row.powerW, 6);
        csv.field(row.powerCi95Rel, 6);
    }
}

ResultStore
ResultStore::load(std::istream &is)
{
    // CRLF-tolerant line reader: drop the '\r' getline leaves behind
    // on files written or edited on Windows.
    auto getLine = [&is](std::string &line) -> bool {
        if (!std::getline(is, line))
            return false;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        return true;
    };

    std::string line;
    if (!getLine(line) || line != storeHeader)
        fatal("ResultStore: missing or unexpected CSV header");

    ResultStore store;
    size_t lineNo = 1;
    while (getLine(line)) {
        ++lineNo;
        if (line.empty())
            continue;
        const auto fields = splitCsvLine(line);
        if (fields.size() != 6) {
            fatal(msgOf("ResultStore: line ", lineNo, " has ",
                        fields.size(), " fields, expected 6"));
        }
        const std::string context = msgOf("line ", lineNo);
        store.put({fields[0], fields[1],
                   parseDouble(fields[2], context),
                   parseDouble(fields[3], context),
                   parseDouble(fields[4], context),
                   parseDouble(fields[5], context)});
    }
    return store;
}

ResultStore
ResultStore::snapshot(ExperimentRunner &runner,
                      const std::vector<MachineConfig> &configs)
{
    ResultStore store;
    for (const auto &cfg : configs)
        for (const auto &bench : allBenchmarks())
            store.put(cfg, bench, runner.measure(cfg, bench));
    return store;
}

StoreComparison
compareStores(const ResultStore &before, const ResultStore &after,
              double tolerance)
{
    if (tolerance < 0.0)
        panic("compareStores: negative tolerance");

    StoreComparison cmp;
    for (const auto *row : before.all()) {
        const StoredResult *other =
            after.find(row->configLabel, row->benchmark);
        if (!other) {
            cmp.onlyInBefore.push_back(row->configLabel + " / " +
                                       row->benchmark);
            continue;
        }
        ++cmp.compared;
        const double timeRatio = other->timeSec / row->timeSec;
        const double powerRatio = other->powerW / row->powerW;
        if (std::fabs(timeRatio - 1.0) > tolerance ||
            std::fabs(powerRatio - 1.0) > tolerance) {
            cmp.regressions.push_back(
                {row->configLabel, row->benchmark, timeRatio,
                 powerRatio, other->energyJ() / row->energyJ()});
        }
    }
    for (const auto *row : after.all()) {
        if (!before.find(row->configLabel, row->benchmark))
            cmp.onlyInAfter.push_back(row->configLabel + " / " +
                                      row->benchmark);
    }
    return cmp;
}

} // namespace lhr
