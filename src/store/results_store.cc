#include "store/results_store.hh"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/csv.hh"
#include "util/logging.hh"

namespace lhr
{

namespace
{

const char *const storeHeader =
    "config,benchmark,time_s,time_ci95,power_w,power_ci95";

bool
finiteRow(const StoredResult &row)
{
    return std::isfinite(row.timeSec) &&
        std::isfinite(row.timeCi95Rel) && std::isfinite(row.powerW) &&
        std::isfinite(row.powerCi95Rel);
}

} // namespace

Measurement
StoredResult::toMeasurement() const
{
    Measurement m;
    m.timeSec = timeSec;
    m.timeCi95Rel = timeCi95Rel;
    m.powerW = powerW;
    m.powerCi95Rel = powerCi95Rel;
    return m;
}

bool
StoredResult::sameBits(const StoredResult &other) const
{
    return timeSec == other.timeSec &&
        timeCi95Rel == other.timeCi95Rel && powerW == other.powerW &&
        powerCi95Rel == other.powerCi95Rel;
}

std::string
ResultStore::key(const std::string &config_label,
                 const std::string &benchmark)
{
    return config_label + "\x1f" + benchmark;
}

void
ResultStore::put(const StoredResult &row)
{
    rows[key(row.configLabel, row.benchmark)] = row;
}

void
ResultStore::put(const MachineConfig &cfg, const Benchmark &bench,
                 const Measurement &m)
{
    put({cfg.label(), bench.name, m.timeSec, m.timeCi95Rel, m.powerW,
         m.powerCi95Rel});
}

const StoredResult *
ResultStore::find(const std::string &config_label,
                  const std::string &benchmark) const
{
    const auto it = rows.find(key(config_label, benchmark));
    return it == rows.end() ? nullptr : &it->second;
}

std::vector<const StoredResult *>
ResultStore::all() const
{
    std::vector<const StoredResult *> out;
    out.reserve(rows.size());
    for (const auto &[k, row] : rows)
        out.push_back(&row);
    return out;
}

Status
ResultStore::merge(const ResultStore &other)
{
    // Validate-then-apply: a conflict anywhere leaves this store
    // exactly as it was, so a failed merge of N shard files never
    // produces a half-merged archive.
    for (const auto &[k, row] : other.rows) {
        const auto it = rows.find(k);
        if (it != rows.end() && !it->second.sameBits(row)) {
            return Status::error(
                StatusCode::Conflict,
                "stores disagree on '" + row.configLabel + "' / '" +
                    row.benchmark + "'");
        }
    }
    for (const auto &[k, row] : other.rows)
        rows[k] = row;
    return Status();
}

Status
ResultStore::save(std::ostream &os) const
{
    // Reject poisoned rows before emitting anything: tryLoad()
    // refuses non-finite fields, so writing them would produce a
    // snapshot this store's own reader cannot read back.
    for (const auto &[k, row] : rows) {
        if (!finiteRow(row)) {
            return Status::error(
                StatusCode::InvalidArgument,
                "non-finite measurement for '" + row.configLabel +
                    "' / '" + row.benchmark + "'");
        }
    }
    CsvWriter csv(os, {"config", "benchmark", "time_s", "time_ci95",
                       "power_w", "power_ci95"});
    for (const auto &[k, row] : rows) {
        csv.beginRow();
        csv.field(row.configLabel);
        csv.field(row.benchmark);
        csv.field(row.timeSec, 6);
        csv.field(row.timeCi95Rel, 6);
        csv.field(row.powerW, 6);
        csv.field(row.powerCi95Rel, 6);
    }
    return Status();
}

Status
ResultStore::saveToFile(const std::string &path) const
{
    // Temp-then-rename: a reader (or a crash) never observes a
    // half-written snapshot under the final name.
    const std::string temp = path + ".tmp";
    {
        std::ofstream os(temp, std::ios::trunc);
        if (!os) {
            return Status::error(StatusCode::IoError,
                                 "cannot write '" + temp + "'");
        }
        const Status written = save(os);
        if (!written.ok()) {
            os.close();
            std::remove(temp.c_str());
            return written;
        }
        os.flush();
        if (!os) {
            os.close();
            std::remove(temp.c_str());
            return Status::error(StatusCode::IoError,
                                 "write to '" + temp + "' failed");
        }
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        std::remove(temp.c_str());
        return Status::error(StatusCode::IoError,
                             "cannot rename '" + temp + "' to '" +
                                 path + "'");
    }
    return Status();
}

Expected<ResultStore>
ResultStore::tryLoad(std::istream &is)
{
    // CRLF-tolerant line reader: drop the '\r' getline leaves behind
    // on files written or edited on Windows.
    auto getLine = [&is](std::string &line) -> bool {
        if (!std::getline(is, line))
            return false;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        return true;
    };

    std::string line;
    if (!getLine(line) || line != storeHeader) {
        return Status::error(StatusCode::ParseError,
                             "missing or unexpected CSV header");
    }

    ResultStore store;
    size_t lineNo = 1;
    while (getLine(line)) {
        ++lineNo;
        if (line.empty())
            continue;
        const auto fields = splitCsvLine(line);
        if (fields.size() != 6) {
            return Status::error(
                StatusCode::ParseError,
                msgOf("line ", lineNo, " has ", fields.size(),
                      " fields, expected 6"));
        }
        StoredResult row;
        // splitCsvLine already trimmed unquoted fields and kept
        // quoted ones verbatim; trimming again here would corrupt a
        // quoted label whose whitespace is significant.
        row.configLabel = fields[0];
        row.benchmark = fields[1];
        double *const numbers[4] = {&row.timeSec, &row.timeCi95Rel,
                                    &row.powerW, &row.powerCi95Rel};
        for (int f = 0; f < 4; ++f) {
            Expected<double> parsed = parseCsvNumber(fields[2 + f]);
            if (!parsed.ok()) {
                return Status::error(
                    StatusCode::ParseError,
                    msgOf("line ", lineNo, ": ",
                          parsed.status().message()));
            }
            *numbers[f] = parsed.value();
        }
        if (store.find(row.configLabel, row.benchmark)) {
            return Status::error(
                StatusCode::ParseError,
                msgOf("line ", lineNo, ": duplicate row for '",
                      row.configLabel, "' / '", row.benchmark, "'"));
        }
        store.put(row);
    }
    return store;
}

Expected<ResultStore>
ResultStore::tryLoadFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        return Status::error(StatusCode::IoError,
                             "cannot open '" + path + "'");
    }
    Expected<ResultStore> store = tryLoad(is);
    if (!store.ok()) {
        return Status::error(store.status().code(),
                             path + ": " + store.status().message());
    }
    return store;
}

ResultStore
ResultStore::load(std::istream &is)
{
    Expected<ResultStore> store = tryLoad(is);
    if (!store.ok())
        fatal("ResultStore: " + store.status().message());
    return std::move(store).value();
}

// ResultStore::snapshot is defined in sweep/sweep.cc: it runs on
// the parallel SweepEngine, which links above this module.

StoreComparison
compareStores(const ResultStore &before, const ResultStore &after,
              double tolerance)
{
    if (tolerance < 0.0)
        panic("compareStores: negative tolerance");

    StoreComparison cmp;
    for (const auto *row : before.all()) {
        const StoredResult *other =
            after.find(row->configLabel, row->benchmark);
        if (!other) {
            cmp.onlyInBefore.push_back(row->configLabel + " / " +
                                       row->benchmark);
            continue;
        }
        ++cmp.compared;
        const double timeRatio = other->timeSec / row->timeSec;
        const double powerRatio = other->powerW / row->powerW;
        // A zero or NaN baseline makes a ratio inf/NaN; NaN fails
        // every `>` comparison, so without the isfinite test a real
        // regression against a nonsense baseline reads as clean.
        const bool suspect = !std::isfinite(timeRatio) ||
            !std::isfinite(powerRatio);
        if (suspect || std::fabs(timeRatio - 1.0) > tolerance ||
            std::fabs(powerRatio - 1.0) > tolerance) {
            cmp.regressions.push_back(
                {row->configLabel, row->benchmark, timeRatio,
                 powerRatio, other->energyJ() / row->energyJ()});
        }
    }
    for (const auto *row : after.all()) {
        if (!before.find(row->configLabel, row->benchmark))
            cmp.onlyInAfter.push_back(row->configLabel + " / " +
                                      row->benchmark);
    }
    return cmp;
}

} // namespace lhr
