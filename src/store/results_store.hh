/**
 * @file
 * Measurement persistence and run-to-run comparison.
 *
 * The paper published its complete measurement data as csv companion
 * files so others could re-analyze it. ResultStore is that facility
 * for this laboratory: snapshot a set of measurements to CSV, load
 * them back, and diff two snapshots — the workflow a lab needs when
 * a model change (or, with real hardware, a firmware/kernel change)
 * might silently shift results.
 */

#ifndef LHR_STORE_RESULTS_STORE_HH
#define LHR_STORE_RESULTS_STORE_HH

#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "util/status.hh"

namespace lhr
{

/** One stored measurement row. */
struct StoredResult
{
    std::string configLabel;
    std::string benchmark;
    double timeSec;
    double timeCi95Rel;
    double powerW;
    double powerCi95Rel;

    [[nodiscard]] double energyJ() const { return timeSec * powerW; }

    /**
     * The row as a Measurement, for re-seeding a runner's memo
     * cache on resume (SweepOptions::warmStart). Only the four
     * persisted fields carry over; invocation and fault-recovery
     * accounting is not stored, so it comes back zero.
     */
    [[nodiscard]] Measurement toMeasurement() const;

    /**
     * Bitwise equality of the persisted fields — the merge
     * conflict test. Compares exact double bits, not tolerances:
     * two shards of the same seeded sweep agree exactly or one of
     * them is wrong.
     */
    [[nodiscard]] bool sameBits(const StoredResult &other) const;
};

/** A keyed collection of measurements with CSV persistence. */
class ResultStore
{
  public:
    /** Insert or overwrite a row. */
    void put(const StoredResult &row);

    /** Convenience: store a Measurement under its experiment key. */
    void put(const MachineConfig &cfg, const Benchmark &bench,
             const Measurement &m);

    /** Find a row; nullptr when absent. */
    [[nodiscard]] const StoredResult *find(const std::string &config_label,
                             const std::string &benchmark) const;

    [[nodiscard]] size_t size() const { return rows.size(); }

    /** Rows in key order. */
    [[nodiscard]] std::vector<const StoredResult *> all() const;

    /**
     * Union another store into this one. Duplicate keys whose rows
     * are bit-identical are fine (an overlapping re-measurement of
     * the same seeded sweep); a duplicate key with differing bits
     * returns a Conflict naming the row, and this store is left
     * untouched (the check runs before any row is copied).
     */
    [[nodiscard]] Status merge(const ResultStore &other);

    /**
     * Serialize as CSV (stable row order). A row holding a
     * non-finite value returns InvalidArgument before anything is
     * written: the load path rejects NaN/inf fields, so writing
     * them would produce a snapshot save's own reader refuses.
     */
    [[nodiscard]] Status save(std::ostream &os) const;

    /**
     * Serialize to a file atomically: the CSV is written to a
     * sibling temporary and renamed into place, so a crash or a
     * full disk mid-write never leaves a truncated snapshot where a
     * good one (or nothing) used to be. Returns an IoError with the
     * failing path on any filesystem problem.
     */
    [[nodiscard]] Status saveToFile(const std::string &path) const;

    /**
     * Parse a store from CSV as written by save(). A malformed
     * input — wrong header, truncated row, non-numeric or non-finite
     * field, duplicate (config, benchmark) key — returns a
     * line-numbered ParseError instead of a store.
     */
    [[nodiscard]] static Expected<ResultStore> tryLoad(std::istream &is);

    /** tryLoad() on a file; IoError when it cannot be opened. */
    [[nodiscard]] static Expected<ResultStore> tryLoadFile(const std::string &path);

    /**
     * Parse a store from CSV as written by save(). fatal()s on a
     * malformed header or row (a user-supplied file is user input);
     * front ends that want to report instead of exit use tryLoad().
     */
    [[nodiscard]] static ResultStore load(std::istream &is);

    /**
     * Snapshot a configuration set: measures every benchmark on
     * every configuration. Runs on the parallel SweepEngine
     * (bit-identical to a serial loop by the engine's determinism
     * contract); defined in sweep/sweep.cc, which sits above this
     * module in the link graph.
     */
    static ResultStore snapshot(
        ExperimentRunner &runner,
        const std::vector<MachineConfig> &configs);

    /** Snapshot an explicit grid (configs x benchmarks). */
    static ResultStore snapshot(
        ExperimentRunner &runner,
        const std::vector<MachineConfig> &configs,
        const std::vector<Benchmark> &benchmarks);

  private:
    static std::string key(const std::string &config_label,
                           const std::string &benchmark);

    std::map<std::string, StoredResult> rows;
};

/** One row of a store comparison. */
struct ResultDelta
{
    std::string configLabel;
    std::string benchmark;
    double timeRatio;   ///< after / before
    double powerRatio;
    double energyRatio;
};

/** Outcome of comparing two stores. */
struct StoreComparison
{
    std::vector<ResultDelta> regressions; ///< beyond tolerance
    std::vector<std::string> onlyInBefore;
    std::vector<std::string> onlyInAfter;
    size_t compared = 0;

    [[nodiscard]] bool clean() const
    {
        return regressions.empty() && onlyInBefore.empty() &&
            onlyInAfter.empty();
    }
};

/**
 * Compare two stores: rows whose time or power moved by more than
 * `tolerance` (fractional) are reported as regressions. A ratio
 * that is not finite — a zero or NaN baseline yields inf/NaN, and
 * NaN fails every `>` comparison — is always a regression: a
 * nonsense baseline must never read as a clean run.
 */
[[nodiscard]] StoreComparison compareStores(const ResultStore &before,
                              const ResultStore &after,
                              double tolerance);

} // namespace lhr

#endif // LHR_STORE_RESULTS_STORE_HH
