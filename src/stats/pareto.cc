#include "stats/pareto.hh"

#include <algorithm>

namespace lhr
{

bool
dominates(const ParetoPoint &a, const ParetoPoint &b)
{
    const bool noWorse =
        a.performance >= b.performance && a.energy <= b.energy;
    const bool better =
        a.performance > b.performance || a.energy < b.energy;
    return noWorse && better;
}

std::vector<ParetoPoint>
paretoFrontier(const std::vector<ParetoPoint> &points)
{
    std::vector<ParetoPoint> frontier;
    for (const auto &candidate : points) {
        bool dominated = false;
        for (const auto &other : points) {
            if (dominates(other, candidate)) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            frontier.push_back(candidate);
    }
    std::sort(frontier.begin(), frontier.end(),
              [](const ParetoPoint &a, const ParetoPoint &b) {
                  if (a.performance != b.performance)
                      return a.performance < b.performance;
                  return a.energy < b.energy;
              });
    return frontier;
}

} // namespace lhr
