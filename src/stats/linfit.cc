#include "stats/linfit.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/fp.hh"

namespace lhr
{

LinearFit
fitLinear(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size())
        panic("fitLinear: mismatched vector sizes");
    const size_t n = xs.size();
    if (n < 2)
        panic("fitLinear: need at least two points");

    double sx = 0.0, sy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        sx += xs[i];
        sy += ys[i];
    }
    const double mx = sx / n;
    const double my = sy / n;

    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if (exactZero(sxx))
        panic("fitLinear: all x values identical");

    LinearFit fit;
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;

    if (exactZero(syy)) {
        fit.r2 = 1.0; // constant y perfectly explained
    } else {
        double ssRes = 0.0;
        for (size_t i = 0; i < n; ++i) {
            const double e = ys[i] - fit.at(xs[i]);
            ssRes += e * e;
        }
        fit.r2 = 1.0 - ssRes / syy;
    }
    return fit;
}

} // namespace lhr
