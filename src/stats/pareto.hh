/**
 * @file
 * Pareto frontier extraction for the energy/performance tradeoff
 * analysis (paper section 4.2, Table 5, Figure 12).
 *
 * A point is a (performance, energy) pair with an opaque label (the
 * processor configuration). Higher performance is better; lower
 * energy is better. A point is Pareto-efficient iff no other point
 * both performs at least as well and consumes at most as much energy
 * (with at least one strict).
 */

#ifndef LHR_STATS_PARETO_HH
#define LHR_STATS_PARETO_HH

#include <string>
#include <vector>

namespace lhr
{

/** One candidate design point in the energy/performance space. */
struct ParetoPoint
{
    std::string label;   ///< identifies the configuration
    double performance;  ///< larger is better
    double energy;       ///< smaller is better
};

/**
 * Return the Pareto-efficient subset, sorted by ascending
 * performance. Duplicate-coordinate points are all retained (they
 * dominate each other weakly, not strictly).
 */
std::vector<ParetoPoint>
paretoFrontier(const std::vector<ParetoPoint> &points);

/** True iff a dominates b (a is no worse in both and better in one). */
bool dominates(const ParetoPoint &a, const ParetoPoint &b);

} // namespace lhr

#endif // LHR_STATS_PARETO_HH
