#include "stats/summary.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"
#include "util/fp.hh"

namespace lhr
{

Summary::Summary()
    : n(0), meanAcc(0.0), m2Acc(0.0),
      minAcc(std::numeric_limits<double>::infinity()),
      maxAcc(-std::numeric_limits<double>::infinity())
{
}

void
Summary::add(double x)
{
    ++n;
    const double delta = x - meanAcc;
    meanAcc += delta / static_cast<double>(n);
    m2Acc += delta * (x - meanAcc);
    minAcc = std::min(minAcc, x);
    maxAcc = std::max(maxAcc, x);
}

double
Summary::mean() const
{
    if (n == 0)
        panic("Summary::mean on empty summary");
    return meanAcc;
}

double
Summary::variance() const
{
    if (n < 2)
        return 0.0;
    return m2Acc / static_cast<double>(n - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

double
Summary::min() const
{
    if (n == 0)
        panic("Summary::min on empty summary");
    return minAcc;
}

double
Summary::max() const
{
    if (n == 0)
        panic("Summary::max on empty summary");
    return maxAcc;
}

double
Summary::ci95() const
{
    if (n < 2)
        return 0.0;
    const double sem = stddev() / std::sqrt(static_cast<double>(n));
    return tCritical95(n - 1) * sem;
}

double
Summary::ci95Relative() const
{
    if (n == 0 || exactZero(meanAcc))
        return 0.0;
    return ci95() / std::fabs(meanAcc);
}

double
tCritical95(size_t df)
{
    // Two-sided 95% critical values of the t distribution.
    static const double table[] = {
        0.0,    // df = 0 (unused)
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    };
    if (df == 0)
        panic("tCritical95 with zero degrees of freedom");
    if (df < sizeof(table) / sizeof(table[0]))
        return table[df];
    if (df < 60)
        return 2.000;
    if (df < 120)
        return 1.980;
    return 1.960;
}

double
meanOf(const std::vector<double> &xs)
{
    if (xs.empty())
        panic("meanOf on empty vector");
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomeanOf(const std::vector<double> &xs)
{
    if (xs.empty())
        panic("geomeanOf on empty vector");
    double logSum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            panic("geomeanOf requires positive values");
        logSum += std::log(x);
    }
    return std::exp(logSum / static_cast<double>(xs.size()));
}

double
percentileOf(std::vector<double> xs, double pct)
{
    if (xs.empty())
        panic("percentileOf on empty vector");
    if (pct < 0.0 || pct > 100.0)
        panic("percentileOf: percentile out of range");
    std::sort(xs.begin(), xs.end());
    const double rank = pct / 100.0 * (xs.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(rank));
    const size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - lo;
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

} // namespace lhr
