/**
 * @file
 * Bootstrap confidence intervals.
 *
 * The paper's Table 2 uses Student-t intervals, which assume
 * normality — shaky at SPEC's prescribed three runs. The percentile
 * bootstrap makes no distributional assumption; the methodology
 * ablation (bench/ablation_bootstrap) compares the two at the
 * paper's repetition counts.
 */

#ifndef LHR_STATS_BOOTSTRAP_HH
#define LHR_STATS_BOOTSTRAP_HH

#include <vector>

#include "util/rng.hh"

namespace lhr
{

/** A two-sided confidence interval on a mean. */
struct BootstrapCi
{
    double mean;
    double lo;
    double hi;

    /** Half-width relative to the mean (comparable to ci95Relative). */
    double halfWidthRelative() const;
};

/**
 * Percentile-bootstrap 95% CI of the mean: resample with
 * replacement, take the 2.5th/97.5th percentiles of the resampled
 * means. Requires at least two samples.
 *
 * @param samples the observations
 * @param rng randomness for resampling
 * @param resamples bootstrap iterations
 */
BootstrapCi bootstrapCi95(const std::vector<double> &samples, Rng &rng,
                          int resamples = 2000);

} // namespace lhr

#endif // LHR_STATS_BOOTSTRAP_HH
