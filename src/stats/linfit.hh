/**
 * @file
 * Ordinary least-squares linear fit with R².
 *
 * The paper calibrates each Hall-effect sensor against 28 reference
 * currents and reports linear fits with R² of 0.999 or better
 * (section 2.5). LinearFit is used by sensor::Calibration to
 * reproduce that procedure.
 */

#ifndef LHR_STATS_LINFIT_HH
#define LHR_STATS_LINFIT_HH

#include <cstddef>
#include <vector>

namespace lhr
{

/** Result of an ordinary least-squares fit y = slope * x + intercept. */
struct LinearFit
{
    double slope;
    double intercept;
    double r2;          ///< coefficient of determination

    /** Evaluate the fitted line at x. */
    double at(double x) const { return slope * x + intercept; }
};

/**
 * Fit y = a*x + b by least squares. Requires at least two points with
 * distinct x values; panic()s otherwise.
 */
LinearFit fitLinear(const std::vector<double> &xs,
                    const std::vector<double> &ys);

} // namespace lhr

#endif // LHR_STATS_LINFIT_HH
