#include "stats/bootstrap.hh"

#include "stats/summary.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/fp.hh"

namespace lhr
{

double
BootstrapCi::halfWidthRelative() const
{
    if (exactZero(mean))
        return 0.0;
    return (hi - lo) / 2.0 / std::fabs(mean);
}

BootstrapCi
bootstrapCi95(const std::vector<double> &samples, Rng &rng,
              int resamples)
{
    if (samples.size() < 2)
        panic("bootstrapCi95: need at least two samples");
    if (resamples < 100)
        panic("bootstrapCi95: too few resamples");

    double sum = 0.0;
    for (double x : samples)
        sum += x;

    std::vector<double> means;
    means.reserve(resamples);
    for (int r = 0; r < resamples; ++r) {
        double resum = 0.0;
        for (size_t i = 0; i < samples.size(); ++i)
            resum += samples[rng.below(samples.size())];
        means.push_back(resum / samples.size());
    }
    BootstrapCi ci;
    ci.mean = sum / samples.size();
    ci.lo = percentileOf(means, 2.5);
    ci.hi = percentileOf(std::move(means), 97.5);
    return ci;
}

} // namespace lhr
