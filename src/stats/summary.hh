/**
 * @file
 * Running summary statistics and Student-t confidence intervals.
 *
 * The paper reports 95% confidence intervals on execution time and
 * power over 3 (SPEC prescription), 5 (PARSEC) or 20 (Java)
 * repetitions (Table 2). Summary accumulates samples with Welford's
 * online algorithm and produces those intervals.
 */

#ifndef LHR_STATS_SUMMARY_HH
#define LHR_STATS_SUMMARY_HH

#include <cstddef>
#include <vector>

namespace lhr
{

/**
 * Online accumulator for mean, variance, extrema and 95% CIs.
 */
class Summary
{
  public:
    Summary();

    /** Add a sample. */
    void add(double x);

    /** Number of samples. */
    size_t count() const { return n; }

    /** Arithmetic mean. panic()s when empty. */
    double mean() const;

    /** Unbiased sample variance; 0 when fewer than 2 samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample. panic()s when empty. */
    double min() const;

    /** Largest sample. panic()s when empty. */
    double max() const;

    /**
     * Half-width of the 95% confidence interval on the mean
     * (Student-t); 0 when fewer than 2 samples.
     */
    double ci95() const;

    /**
     * ci95() as a fraction of the mean — the "confidence interval"
     * percentage the paper tabulates. 0 when the mean is 0.
     */
    double ci95Relative() const;

  private:
    size_t n;
    double meanAcc;
    double m2Acc;
    double minAcc;
    double maxAcc;
};

/**
 * Two-sided 95% Student-t critical value for the given degrees of
 * freedom (df >= 1). Exact table for small df, asymptote above.
 */
double tCritical95(size_t df);

/** Arithmetic mean of a vector. panic()s when empty. */
double meanOf(const std::vector<double> &xs);

/** Geometric mean of a vector of positive values. panic()s when empty. */
double geomeanOf(const std::vector<double> &xs);

/**
 * Percentile in [0, 100] with linear interpolation between order
 * statistics. Copies and sorts; panic()s on empty input or an
 * out-of-range percentile.
 */
double percentileOf(std::vector<double> xs, double pct);

} // namespace lhr

#endif // LHR_STATS_SUMMARY_HH
