/**
 * @file
 * Operating-system CPU control: frequency governors and context
 * offlining.
 *
 * The paper controlled core count, SMT, and clock via the BIOS
 * because operating-system control "was not sufficiently reliable.
 * For example, operating system scaling of hardware contexts often
 * caused power consumption to increase as hardware resources were
 * decreased! Extensive investigation revealed a bug in the Linux
 * kernel [bug #5471]" (section 2.8). This module models both the
 * cpufreq governors of the 2.6.31 kernel the paper ran and the buggy
 * offline path, so the methodological choice can be demonstrated
 * quantitatively (bench/ablation_os_scaling).
 */

#ifndef LHR_OS_GOVERNOR_HH
#define LHR_OS_GOVERNOR_HH

#include <string>
#include <vector>

#include "machine/processor.hh"

namespace lhr
{

/** The cpufreq governors of the study-era kernel. */
enum class GovernorPolicy
{
    Performance,  ///< pin the highest frequency
    Powersave,    ///< pin the lowest frequency
    Ondemand,     ///< raise to max on load, decay when idle
    Userspace     ///< whatever userspace asked for
};

/** Printable policy name (sysfs spelling). */
std::string governorPolicyName(GovernorPolicy policy);

/**
 * A cpufreq governor driving one package's clock from utilization
 * samples, stepping through the part's P-state ladder.
 */
class CpuFreqGovernor
{
  public:
    /**
     * @param spec the processor (defines the frequency ladder)
     * @param policy the governor policy
     * @param pstates number of evenly spaced P-states
     */
    CpuFreqGovernor(const ProcessorSpec &spec, GovernorPolicy policy,
                    int pstates = 8);

    /**
     * Feed one utilization sample (0..1) and return the clock the
     * governor selects for the next interval.
     */
    double step(double utilization);

    /** Current selected clock. */
    double clockGhz() const;

    /** Userspace-requested frequency (Userspace policy only). */
    void setUserspaceGhz(double f_ghz);

    /** Ondemand thresholds from the 2.6.31 defaults. */
    static constexpr double upThreshold = 0.80;
    static constexpr double downDifferential = 0.10;

    const std::vector<double> &ladder() const { return pstateLadder; }

  private:
    const ProcessorSpec &processor;
    GovernorPolicy policyKind;
    std::vector<double> pstateLadder; ///< ascending GHz
    size_t currentIndex;
    double userspaceGhz;
};

/**
 * OS hot-unplug of hardware contexts, including the kernel bug the
 * paper hit: an offlined context enters the idle loop but — on the
 * affected kernels — fails to reach a deep C-state, so it keeps
 * clocking (polling in mwait-less idle) and draws MORE power than it
 * did sitting in the scheduler's idle class.
 */
struct OsContextScaling
{
    /**
     * Activity factor of an OS-offlined core.
     *
     * @param ua the core's microarchitecture
     * @param kernel_bug_5471 true on affected kernels (the paper's
     *        2.6.31 configuration)
     */
    static double offlinedCoreActivity(const MicroArch &ua,
                                       bool kernel_bug_5471);

    /**
     * Chip power of a single-threaded workload with `offlined`
     * cores removed by the OS instead of the BIOS. Returns the
     * power relative to the BIOS-disabled equivalent (> 1 means
     * "power increased as resources decreased").
     */
    static double osVsBiosPowerRatio(const ProcessorSpec &spec,
                                     int offlined,
                                     bool kernel_bug_5471);
};

} // namespace lhr

#endif // LHR_OS_GOVERNOR_HH
