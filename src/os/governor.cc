#include "os/governor.hh"

#include <algorithm>

#include "power/chip_power.hh"
#include "util/logging.hh"

namespace lhr
{

std::string
governorPolicyName(GovernorPolicy policy)
{
    switch (policy) {
      case GovernorPolicy::Performance: return "performance";
      case GovernorPolicy::Powersave:   return "powersave";
      case GovernorPolicy::Ondemand:    return "ondemand";
      case GovernorPolicy::Userspace:   return "userspace";
    }
    panic("governorPolicyName: unknown policy");
}

CpuFreqGovernor::CpuFreqGovernor(const ProcessorSpec &spec,
                                 GovernorPolicy policy, int pstates)
    : processor(spec), policyKind(policy),
      userspaceGhz(spec.fMinGhz)
{
    if (pstates < 2)
        panic("CpuFreqGovernor: need at least two P-states");
    for (int i = 0; i < pstates; ++i) {
        pstateLadder.push_back(
            spec.fMinGhz +
            (spec.stockClockGhz - spec.fMinGhz) * i / (pstates - 1));
    }
    currentIndex = policy == GovernorPolicy::Performance
        ? pstateLadder.size() - 1 : 0;
}

double
CpuFreqGovernor::clockGhz() const
{
    if (policyKind == GovernorPolicy::Userspace)
        return userspaceGhz;
    return pstateLadder[currentIndex];
}

void
CpuFreqGovernor::setUserspaceGhz(double f_ghz)
{
    if (policyKind != GovernorPolicy::Userspace)
        panic("setUserspaceGhz: governor is not userspace");
    userspaceGhz = std::clamp(f_ghz, pstateLadder.front(),
                              pstateLadder.back());
}

double
CpuFreqGovernor::step(double utilization)
{
    if (utilization < 0.0 || utilization > 1.0)
        panic("CpuFreqGovernor::step: utilization out of range");

    switch (policyKind) {
      case GovernorPolicy::Performance:
        currentIndex = pstateLadder.size() - 1;
        break;
      case GovernorPolicy::Powersave:
        currentIndex = 0;
        break;
      case GovernorPolicy::Userspace:
        break;
      case GovernorPolicy::Ondemand:
        // 2.6.31 ondemand: jump straight to max above the up
        // threshold; otherwise step down one state when utilization
        // would stay below (up - differential) at the lower state.
        if (utilization > upThreshold) {
            currentIndex = pstateLadder.size() - 1;
        } else if (currentIndex > 0) {
            const double atLower = utilization *
                pstateLadder[currentIndex] /
                pstateLadder[currentIndex - 1];
            if (atLower < upThreshold - downDifferential)
                --currentIndex;
        }
        break;
    }
    return clockGhz();
}

double
OsContextScaling::offlinedCoreActivity(const MicroArch &ua,
                                       bool kernel_bug_5471)
{
    // A healthy kernel parks the core as deep as the generation's
    // gating allows — like an enabled-but-idle core. The buggy path
    // leaves it polling the idle loop: the core's front end spins.
    const double parked = ua.idleCoreFraction * 0.45;
    if (!kernel_bug_5471)
        return parked;
    return std::min(1.0, std::max(parked, 0.40));
}

double
OsContextScaling::osVsBiosPowerRatio(const ProcessorSpec &spec,
                                     int offlined,
                                     bool kernel_bug_5471)
{
    if (offlined < 0 || offlined >= spec.cores)
        panic("osVsBiosPowerRatio: bad offline count");

    const ChipPowerModel power(spec);
    const MicroArch &ua = spec.uarch();
    const int active = spec.cores - offlined;

    // BIOS path: the cores are architecturally disabled.
    MachineConfig biosCfg = stockConfig(spec);
    biosCfg.turboEnabled = false;
    biosCfg.enabledCores = active;
    std::vector<double> biosAct(active, 0.0);
    biosAct[0] = 0.55; // one busy application core
    const double biosW =
        power.compute(biosCfg, spec.stockClockGhz, biosAct, 0.2, 2.0)
            .total();

    // OS path: all cores stay enabled; offlined ones sit in the
    // idle loop at whatever activity the kernel achieves.
    MachineConfig osCfg = stockConfig(spec);
    osCfg.turboEnabled = false;
    std::vector<double> osAct(spec.cores, 0.0);
    osAct[0] = 0.55;
    for (int core = active; core < spec.cores; ++core)
        osAct[core] = offlinedCoreActivity(ua, kernel_bug_5471);
    const double osW =
        power.compute(osCfg, spec.stockClockGhz, osAct, 0.2, 2.0)
            .total();

    return osW / biosW;
}

} // namespace lhr
