#include "jvm/vendors.hh"

#include <algorithm>
#include <cmath>

#include "util/hash.hh"
#include "util/fp.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace lhr
{

const std::vector<JvmVendor> &
allJvmVendors()
{
    static const std::vector<JvmVendor> vendors = {
        JvmVendor::HotSpot, JvmVendor::JRockit, JvmVendor::J9,
    };
    return vendors;
}

namespace
{

const JvmVendorProfile profiles[] = {
    // HotSpot is the reference runtime the paper reports.
    {JvmVendor::HotSpot, "HotSpot", "build 16.3-b01, Java 1.6.0",
     1.00, 0.00, 1.00, 1.00, 1.00},
    // JRockit: aggressive optimizing JIT, larger code and heap
    // footprint, slightly higher power.
    {JvmVendor::JRockit, "JRockit", "build R28.0.0-679-130297",
     1.00, 0.12, 1.06, 1.15, 1.10},
    // J9: balanced JIT with smaller footprint, slightly lower power.
    {JvmVendor::J9, "J9", "build pxi3260sr8",
     0.99, 0.14, 0.94, 0.90, 0.92},
};

} // namespace

const JvmVendorProfile &
jvmVendorProfile(JvmVendor vendor)
{
    for (const auto &profile : profiles)
        if (profile.vendor == vendor)
            return profile;
    panic("jvmVendorProfile: unknown vendor");
}

double
vendorPerfFactor(const JvmVendorProfile &profile,
                 const std::string &bench_name)
{
    if (exactZero(profile.perfSpread))
        return profile.perfBias;
    // Derive a fixed deviate from the (vendor, benchmark) pair so
    // the same JVM always wins or loses on the same benchmark.
    Rng rng(fnv1a(profile.name + "/" + bench_name));
    const double deviate =
        std::clamp(rng.gaussian(), -2.0, 2.0);
    return profile.perfBias * (1.0 + profile.perfSpread * deviate);
}

Benchmark
applyJvmVendor(const Benchmark &bench, JvmVendor vendor)
{
    if (bench.language() != Language::Java)
        panic(msgOf("applyJvmVendor: ", bench.name, " is native"));
    const JvmVendorProfile &profile = jvmVendorProfile(vendor);
    Benchmark adjusted = bench;
    adjusted.name = bench.name + " [" + profile.name + "]";
    const double factor = vendorPerfFactor(profile, bench.name);
    // Better code directly raises exploitable ILP; runtime footprint
    // shifts the working set; the JIT/GC mix scales service work.
    adjusted.ilp = std::clamp(bench.ilp * factor, 0.5, 4.0);
    adjusted.miss.workingSetKb =
        bench.miss.workingSetKb * profile.heapPressure;
    adjusted.jvmServiceFraction = std::min(
        0.49, bench.jvmServiceFraction * profile.serviceBias);
    // Aggregate power bias acts through switching intensity; model
    // it as an FP-share-like activity increment.
    adjusted.fpShare = std::clamp(
        bench.fpShare + (profile.powerBias - 1.0) * 4.0, 0.0, 1.0);
    return adjusted;
}

} // namespace lhr
