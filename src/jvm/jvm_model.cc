#include "jvm/jvm_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lhr
{

double
JvmModel::warmupFactor(int iteration)
{
    if (iteration < 1)
        panic("JvmModel::warmupFactor: iterations are 1-based");
    switch (iteration) {
      case 1: return 1.55;
      case 2: return 1.18;
      case 3: return 1.08;
      case 4: return 1.03;
      default: return 1.0;
    }
}

double
JvmModel::serviceAtHeap(double service_fraction, double heap_factor)
{
    if (heap_factor <= 1.0)
        panic("JvmModel::serviceAtHeap: heap must exceed the minimum");
    // GC work scales with collection frequency, which is inversely
    // proportional to the headroom above the live set. The 3x heap
    // of the methodology is the reference point.
    const double reference = JvmMethodology::heapFactor - 1.0;
    const double gcScale = reference / (heap_factor - 1.0);
    const double gc = service_fraction * gcShareOfService * gcScale;
    const double jit = service_fraction * (1.0 - gcShareOfService);
    return std::min(0.49, gc + jit);
}

PerfResult
JvmModel::run(const PerfModel &perf, const Benchmark &bench,
              const MachineConfig &cfg, double clock_ghz,
              double heap_factor)
{
    if (bench.language() != Language::Java)
        panic(msgOf("JvmModel::run on native benchmark ", bench.name));

    const double svc =
        serviceAtHeap(bench.jvmServiceFraction, heap_factor);
    // The database's instruction count is total machine work at the
    // methodology's 3x heap; a different heap changes the GC share,
    // so total work rescales around the fixed application work.
    const double work = bench.instructionsB() * 1e9 *
        (1.0 - bench.jvmServiceFraction) / (1.0 - svc);
    PerfResult result =
        perf.evaluate(bench, cfg, clock_ghz, work, bench.appThreads);
    if (svc <= 0.0)
        return result;

    const int spareCores = cfg.enabledCores - result.coresUsed;
    const bool spareSmt =
        cfg.smtPerCore > result.threadsPerCore && spareCores == 0;

    if (spareCores > 0) {
        // Service threads migrate to a spare core: most service work
        // is hidden, and moving GC off the application core stops it
        // displacing application cache and DTLB state.
        const double hidden = 1.0 - offloadEfficiency * svc;
        const double relief = 1.0 - bench.gcInterferenceRelief;
        result.timeSec *= hidden * relief;
        result.aggregateIps = work / result.timeSec;

        // The service core's activity tracks the service share of
        // the application's own intensity.
        const double appUtil = result.coreUtilization.empty()
            ? 0.0 : result.coreUtilization[0];
        const double svcUtil = std::min(0.5, 1.8 * svc * appUtil);
        result.coreUtilization[result.coresUsed] = svcUtil;
    } else if (spareSmt) {
        // Service threads land on the SMT sibling: some hiding, but
        // the sibling's footprint squeezes the core's caches for the
        // fraction of time services run. On a 512KB NetBurst part
        // with Java's working sets the squeeze wins; on an 8MB
        // Nehalem the hiding wins.
        const double aloneCpi = perf.threadCpi(
            bench, clock_ghz, 1, result.coresUsed).total();
        const double sharedCpi = perf.threadCpi(
            bench, clock_ghz, 2, result.coresUsed).total();
        const double squeeze = sharedCpi / aloneCpi;
        const double svcResidency = std::min(1.0, 3.0 * svc);
        const double contention = 1.0 + (squeeze - 1.0) * svcResidency;

        const double hidden = 1.0 - offloadEfficiency * smtOffloadShare * svc;
        const double relief =
            1.0 - 0.3 * bench.gcInterferenceRelief;
        result.timeSec *= contention * hidden * relief;
        result.aggregateIps = work / result.timeSec;

        // The sibling's service activity shows up as extra
        // utilization on the application cores.
        for (int core = 0; core < result.coresUsed; ++core) {
            result.coreUtilization[core] = std::min(
                1.0, result.coreUtilization[core] * (1.0 + svc));
        }
    } else {
        // Every context is busy with application threads. The
        // service work itself is already part of the instruction
        // stream; what remains is scheduling interference between
        // service and application threads.
        result.timeSec *= 1.0 + 0.15 * svc;
        result.aggregateIps = work / result.timeSec;
    }

    result.dramGBs *= gcTrafficFactor;
    return result;
}

} // namespace lhr
