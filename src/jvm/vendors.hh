/**
 * @file
 * JVM vendor models (paper section 2.2).
 *
 * The paper reports Oracle HotSpot as its primary JVM and notes
 * additional experiments with Oracle JRockit and IBM J9: "Their
 * average performance is similar to HotSpot, but individual
 * benchmarks vary substantially. We observe aggregate power
 * differences of up to 10% between JVMs," and calls the influence of
 * JVMs on power and energy "an interesting avenue for future
 * research." This module implements that avenue: per-vendor runtime
 * profiles that perturb a Java benchmark's characteristics
 * deterministically per (vendor, benchmark) pair.
 */

#ifndef LHR_JVM_VENDORS_HH
#define LHR_JVM_VENDORS_HH

#include <string>
#include <vector>

#include "workload/benchmark.hh"

namespace lhr
{

/** The three JVMs the paper measured. */
enum class JvmVendor
{
    HotSpot,  ///< Oracle (Sun) HotSpot — the paper's primary JVM
    JRockit,  ///< Oracle JRockit
    J9        ///< IBM J9
};

/** All vendors, HotSpot first. */
const std::vector<JvmVendor> &allJvmVendors();

/** Characteristics of one vendor's runtime. */
struct JvmVendorProfile
{
    JvmVendor vendor;
    std::string name;       ///< e.g. "HotSpot"
    std::string build;      ///< paper-reported build string

    double perfBias;        ///< mean speed vs HotSpot (~1.0)
    double perfSpread;      ///< per-benchmark variation (fractional)
    double powerBias;       ///< aggregate power multiplier
    double serviceBias;     ///< multiplier on JVM service work
    double heapPressure;    ///< multiplier on working-set size
};

/** Look up a vendor's profile. */
const JvmVendorProfile &jvmVendorProfile(JvmVendor vendor);

/**
 * Deterministic per-benchmark performance factor of a vendor:
 * centred on perfBias, spread by perfSpread, fixed for a given
 * (vendor, benchmark) pair — "individual benchmarks vary
 * substantially".
 */
double vendorPerfFactor(const JvmVendorProfile &profile,
                        const std::string &bench_name);

/**
 * A copy of a Java benchmark as this vendor's runtime executes it.
 * panic()s for native benchmarks.
 */
Benchmark applyJvmVendor(const Benchmark &bench, JvmVendor vendor);

} // namespace lhr

#endif // LHR_JVM_VENDORS_HH
