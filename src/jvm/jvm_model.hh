/**
 * @file
 * Managed-runtime (HotSpot-like JVM) execution model.
 *
 * The paper's Java measurements follow the recommended steady-state
 * methodology: -server, heap at 3x minimum, report the fifth
 * iteration inside one JVM invocation, twenty invocations for
 * statistical stability (section 2.2). Its key workload finding is
 * that the JVM's own services — JIT compilation, profiling, and
 * garbage collection — are concurrent and parallel, so ostensibly
 * single-threaded Java benchmarks speed up (about 10% on average, up
 * to 60%) when a second hardware context exists (Finding W1), partly
 * because moving GC off the application core stops it displacing
 * application state from caches and the DTLB (the db observation).
 *
 * JvmModel reproduces those mechanisms on top of the native
 * PerfModel: service work is offloaded to spare contexts when they
 * exist, interference relief applies when the spare context is a
 * separate core, and an SMT sibling running service threads both
 * helps (hiding) and hurts (cache pressure) — the balance is what
 * makes SMT a loss for Java on the Pentium 4's 512KB cache
 * (Finding W2) and a win on the i7.
 */

#ifndef LHR_JVM_JVM_MODEL_HH
#define LHR_JVM_JVM_MODEL_HH

#include "cpu/perf_model.hh"
#include "machine/processor.hh"
#include "workload/benchmark.hh"

namespace lhr
{

/** Steady-state measurement methodology constants (section 2.2). */
struct JvmMethodology
{
    static constexpr int measuredIteration = 5;   ///< report the 5th
    static constexpr int invocations = 20;        ///< JVM restarts
    static constexpr double heapFactor = 3.0;     ///< 3x minimum heap
};

/** The managed-runtime execution model. */
class JvmModel
{
  public:
    /**
     * Warmup multiplier for iteration `iteration` (1-based) within a
     * JVM invocation: class loading and heavy JIT activity dominate
     * early iterations; the measured fifth iteration is ~steady.
     */
    static double warmupFactor(int iteration);

    /**
     * Execute a Java benchmark under the runtime: evaluates the
     * application through the native performance model, then applies
     * service-thread offloading, interference relief or SMT-sibling
     * contention, and GC-driven memory traffic.
     *
     * @param perf the processor's performance model
     * @param bench the benchmark (must be a Java benchmark)
     * @param cfg machine configuration
     * @param clock_ghz operating clock
     */
    static PerfResult run(const PerfModel &perf, const Benchmark &bench,
                          const MachineConfig &cfg, double clock_ghz,
                          double heap_factor = JvmMethodology::heapFactor);

    /**
     * GC's share of the runtime's service work at the methodology's
     * 3x heap; the rest is JIT and profiling, which heap size does
     * not touch.
     */
    static constexpr double gcShareOfService = 0.60;

    /**
     * Scale a benchmark's service fraction to a heap size: a
     * generational collector's work is inversely proportional to
     * the headroom above the minimum heap (collections happen when
     * the nursery fills; a tighter heap fills it more often).
     *
     * @param service_fraction the 3x-heap service fraction
     * @param heap_factor heap as a multiple of the minimum (> 1)
     */
    static double serviceAtHeap(double service_fraction,
                                double heap_factor);

    /** Fraction of offloadable service work actually hidden. */
    static constexpr double offloadEfficiency = 0.60;

    /** Share of hiding achievable on an SMT sibling vs a full core. */
    static constexpr double smtOffloadShare = 0.35;

    /** GC allocation raises DRAM traffic by this factor. */
    static constexpr double gcTrafficFactor = 1.15;
};

} // namespace lhr

#endif // LHR_JVM_JVM_MODEL_HH
