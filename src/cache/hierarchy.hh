/**
 * @file
 * Analytic cache hierarchy model.
 *
 * Rather than simulating individual accesses, the model evaluates
 * each benchmark's miss curve against the effective capacity each
 * hardware thread sees at every level. SMT threads split their
 * core's private capacity; cores split a shared LLC. This is what
 * makes SMT costly on the 512KB Pentium 4 while nearly free on the
 * 8MB i7 (paper Findings 2 and W2).
 */

#ifndef LHR_CACHE_HIERARCHY_HH
#define LHR_CACHE_HIERARCHY_HH

#include <string>
#include <vector>

namespace lhr
{

/** Sharing scope of a cache level. */
enum class CacheScope
{
    PerThread,  ///< replicated per hardware thread (not used today)
    PerCore,    ///< private to a core, shared by its SMT threads
    Shared      ///< shared by a group of cores
};

/** One level of the cache hierarchy. */
struct CacheLevel
{
    std::string name;     ///< "L1", "L2", "L3"
    double capacityKb;    ///< total capacity at this level instance
    double latencyNs;     ///< load-to-use latency
    CacheScope scope;
    int sharedByCores;    ///< cores sharing one instance (Shared scope)
};

/**
 * A benchmark's locality behaviour as a capacity miss curve: misses
 * per kilo-instruction at a cache of capacity C follow the classic
 * power law
 *
 *   mpki(C) = mpki32 * (C / 32KB) ^ -beta
 *
 * floored at the cold/streaming miss rate, and dropping to that
 * floor once C covers the working set. Small beta means poor reuse
 * (pointer chasing, streaming); large beta means more capacity keeps
 * helping.
 *
 * The sub-32KB growth cap is 3*mpki32; keep mpki32 below a third of
 * the benchmark's access rate (memAccessPerInstr * 1000) or tiny
 * SMT-split caches can report more misses than accesses.
 */
struct MissCurve
{
    double mpki32;        ///< misses per Ki at a 32KB cache
    double beta;          ///< capacity decay exponent (0.15 - 0.6)
    double workingSetKb;  ///< beyond this, only cold misses remain
    double coldMpki;      ///< compulsory / streaming floor

    /** Misses per kilo-instruction at capacity capacityKb. */
    double missPerKi(double capacityKb) const;
};

/**
 * The cache hierarchy of one processor configuration together with
 * the logic to turn a miss curve into per-level stall time.
 */
class CacheHierarchy
{
  public:
    CacheHierarchy(std::vector<CacheLevel> levels, double dramLatencyNs);

    /** Miss traffic of one thread through the hierarchy. */
    struct Traffic
    {
        /**
         * Average memory stall time per instruction, in
         * nanoseconds: every miss at level i pays level i+1's
         * latency (first-level hit latency is folded into base
         * CPI).
         */
        double stallNsPerInstr;

        /** DRAM misses per kilo-instruction. */
        double dramMpki;

        /** First-level misses per kilo-instruction. */
        double l1Mpki;
    };

    /**
     * Evaluate a thread's traffic given how the capacity is shared.
     *
     * Divisors are fractional: two SMT threads with a cache-pressure
     * factor of 0.4 divide their core's capacity by 1.8, not 2.0,
     * because their footprints partially overlap.
     *
     * @param curve the benchmark thread's miss curve
     * @param coreDivisor effective capacity divisor for per-core
     *                    levels (>= 1)
     * @param llcDivisor  effective capacity divisor for shared
     *                    levels (>= 1), including both SMT threads
     *                    and sibling cores
     */
    Traffic evaluate(const MissCurve &curve, double coreDivisor,
                     double llcDivisor) const;

    /** The configured levels (outermost last). */
    const std::vector<CacheLevel> &levels() const { return cacheLevels; }

    /** DRAM access latency in nanoseconds. */
    double dramLatency() const { return dramLatencyNs; }

  private:
    std::vector<CacheLevel> cacheLevels;
    double dramLatencyNs;
};

} // namespace lhr

#endif // LHR_CACHE_HIERARCHY_HH
