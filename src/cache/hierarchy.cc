#include "cache/hierarchy.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lhr
{

double
MissCurve::missPerKi(double capacityKb) const
{
    if (mpki32 <= 0.0 || workingSetKb <= 0.0)
        panic("MissCurve: invalid parameters");
    if (capacityKb <= 0.0)
        return 3.0 * mpki32;
    if (capacityKb >= workingSetKb)
        return coldMpki;
    const double scaled = mpki32 * std::pow(capacityKb / 32.0, -beta);
    // A cache smaller than the 32KB reference cannot miss more than
    // every access plausibly allows; cap the growth at 3x.
    return std::clamp(scaled, coldMpki, 3.0 * mpki32);
}

CacheHierarchy::CacheHierarchy(std::vector<CacheLevel> levels,
                               double dram_latency_ns)
    : cacheLevels(std::move(levels)), dramLatencyNs(dram_latency_ns)
{
    if (cacheLevels.empty())
        panic("CacheHierarchy: needs at least one level");
    double prev = 0.0;
    for (const auto &level : cacheLevels) {
        if (level.capacityKb <= 0.0 || level.latencyNs < 0.0)
            panic("CacheHierarchy: invalid level parameters");
        if (level.latencyNs < prev)
            warn("CacheHierarchy: latency not monotonic across levels");
        prev = level.latencyNs;
    }
    if (dramLatencyNs <= 0.0)
        panic("CacheHierarchy: invalid DRAM latency");
}

CacheHierarchy::Traffic
CacheHierarchy::evaluate(const MissCurve &curve, double core_divisor,
                         double llc_divisor) const
{
    if (core_divisor < 1.0 || llc_divisor < 1.0)
        panic("CacheHierarchy::evaluate: divisors must be >= 1");

    Traffic traffic{0.0, 0.0, 0.0};
    double missMpki = 0.0; // misses per Ki leaving the previous level
    bool first = true;
    for (const auto &level : cacheLevels) {
        double effective = level.capacityKb;
        switch (level.scope) {
          case CacheScope::PerThread:
            break;
          case CacheScope::PerCore:
            effective /= core_divisor;
            break;
          case CacheScope::Shared:
            effective /= std::min(llc_divisor,
                                  core_divisor * level.sharedByCores);
            break;
        }
        // Misses leaving this level; monotonically non-increasing
        // down the hierarchy.
        double levelMpki = curve.missPerKi(effective);
        if (!first) {
            levelMpki = std::min(levelMpki, missMpki);
            // Traffic entering this level pays its latency.
            traffic.stallNsPerInstr +=
                missMpki / 1000.0 * level.latencyNs;
        } else {
            traffic.l1Mpki = levelMpki;
            first = false;
        }
        missMpki = levelMpki;
    }
    traffic.stallNsPerInstr += missMpki / 1000.0 * dramLatencyNs;
    traffic.dramMpki = missMpki;
    return traffic;
}

} // namespace lhr
