#include "mem/dram.hh"

#include <algorithm>

#include "util/logging.hh"

namespace lhr
{

namespace
{

// Loaded latencies include controller and (where present) FSB
// crossing; bandwidths are sustainable rather than peak.
const DramModel models[] = {
    // name           latencyNs  bandwidthGBs
    {"DDR-400",        95.0,       2.6},
    {"DDR2-800",       70.0,       4.8},
    {"DDR2-800-FSB533",78.0,       3.4},
    {"DDR2-800-FSB665",75.0,       4.2},
    {"DDR3-1066",      55.0,      19.0},
    {"DDR3-1333",      68.0,      16.0},
    // Server-era quad-channel configurations behind the post-2011
    // parts: latency flattens out while bandwidth keeps scaling with
    // channel count and transfer rate.
    {"DDR3-1600",      52.0,      51.2},
    {"DDR4-2133",      48.0,      68.0},
    {"DDR4-2400",      46.0,      76.8},
    {"DDR4-2666",      45.0,     128.0},
};

} // namespace

double
DramModel::throttle(double requested_gbs) const
{
    if (requested_gbs <= 0.0)
        return 1.0;
    if (requested_gbs <= bandwidthGBs)
        return 1.0;
    return bandwidthGBs / requested_gbs;
}

const DramModel &
dramModel(const std::string &name)
{
    for (const auto &m : models)
        if (m.name == name)
            return m;
    panic(msgOf("dramModel: unknown model '", name, "'"));
}

} // namespace lhr
