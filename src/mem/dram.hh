/**
 * @file
 * Main-memory models: the DRAM generations attached to the eight
 * processors (paper Table 3), from DDR-400 behind the Pentium 4's
 * front-side bus to the i5's dual-channel DDR3-1333 on an integrated
 * memory controller.
 *
 * The model has two terms that matter to the study: access latency
 * (which the clock-scaling analysis converts to cycles — the source
 * of sub-linear clock scaling, paper section 3.3) and sustainable
 * bandwidth (which caps multicore scaling of memory-hungry scalable
 * benchmarks, section 3.1).
 */

#ifndef LHR_MEM_DRAM_HH
#define LHR_MEM_DRAM_HH

#include <string>

namespace lhr
{

/** A main-memory configuration. */
struct DramModel
{
    std::string name;        ///< e.g. "DDR3-1333"
    double latencyNs;        ///< loaded average access latency
    double bandwidthGBs;     ///< sustainable bandwidth, GB/s

    /** Cache line transfer size in bytes (64B on all parts). */
    static constexpr double lineBytes = 64.0;

    /**
     * Throttle factor for a requested DRAM traffic level: returns
     * the fraction of the requested instruction throughput that the
     * memory system can sustain, in (0, 1].
     *
     * @param requestedGBs  DRAM traffic the cores would generate if
     *                      never bandwidth-stalled.
     */
    double throttle(double requestedGBs) const;
};

/** Look up a standard DRAM model by name; panic()s when unknown. */
const DramModel &dramModel(const std::string &name);

} // namespace lhr

#endif // LHR_MEM_DRAM_HH
