#include "serve/protocol.hh"

#include <sstream>

#include "util/json.hh"
#include "util/logging.hh"

namespace lhr
{

namespace
{

/**
 * Bound on the load-testing stall: a hostile or buggy client must
 * not be able to park a worker thread for minutes with one frame.
 */
constexpr double maxStallMs = 2000.0;

/** Typed lookup of an optional finite number member. */
Status
readNumber(const JsonValue &doc, const char *key, bool &present,
           double &out)
{
    const JsonValue *member = doc.find(key);
    present = member != nullptr;
    if (!present)
        return Status();
    if (!member->isNumber()) {
        return Status::error(StatusCode::InvalidArgument,
                             msgOf("\"", key, "\" must be a number"));
    }
    out = member->asNumber();
    return Status();
}

/** Typed lookup of an optional boolean member. */
Status
readBoolean(const JsonValue &doc, const char *key, bool &present,
            bool &out)
{
    const JsonValue *member = doc.find(key);
    present = member != nullptr;
    if (!present)
        return Status();
    if (!member->isBoolean()) {
        return Status::error(StatusCode::InvalidArgument,
                             msgOf("\"", key, "\" must be a boolean"));
    }
    out = member->asBoolean();
    return Status();
}

} // namespace

const char *
serveStatusName(ServeStatus status)
{
    switch (status) {
    case ServeStatus::Ok:
        return "ok";
    case ServeStatus::Overloaded:
        return "overloaded";
    case ServeStatus::DeadlineExceeded:
        return "deadline-exceeded";
    case ServeStatus::ShuttingDown:
        return "shutting-down";
    case ServeStatus::ParseError:
        return "parse-error";
    case ServeStatus::InvalidArgument:
        return "invalid-argument";
    case ServeStatus::Internal:
        return "internal";
    }
    panic("unhandled ServeStatus");
}

Expected<ServeRequest>
parseServeRequest(const std::string &body)
{
    Expected<JsonValue> parsed = parseJson(body);
    if (!parsed.ok())
        return parsed.status();
    const JsonValue &doc = parsed.value();
    if (!doc.isObject()) {
        return Status::error(StatusCode::ParseError,
                             "request must be a JSON object");
    }

    ServeRequest req;
    const std::string op = doc.stringOr("op", "");
    if (op == "measure") {
        req.op = ServeOp::Measure;
    } else if (op == "ping") {
        req.op = ServeOp::Ping;
    } else if (op == "stats") {
        req.op = ServeOp::Stats;
    } else if (op == "shutdown") {
        req.op = ServeOp::Shutdown;
    } else {
        return Status::error(
            StatusCode::InvalidArgument,
            msgOf("\"op\" must be measure|ping|stats|shutdown, got \"",
                  op, "\""));
    }

    req.id = static_cast<long>(doc.numberOr("id", 0.0));

    bool present = false;
    double number = 0.0;
    Status status = readNumber(doc, "deadline_ms", present, number);
    if (!status.ok())
        return status;
    if (present) {
        if (number < 0.0) {
            return Status::error(StatusCode::InvalidArgument,
                                 "\"deadline_ms\" must be >= 0");
        }
        req.deadlineMs = number;
    }

    if (req.op != ServeOp::Measure)
        return req;

    req.proc = doc.stringOr("proc", "");
    req.bench = doc.stringOr("bench", "");
    if (req.proc.empty() || req.bench.empty()) {
        return Status::error(
            StatusCode::InvalidArgument,
            "measure needs \"proc\" and \"bench\" strings");
    }

    status = readNumber(doc, "cores", present, number);
    if (!status.ok())
        return status;
    if (present)
        req.cores = static_cast<int>(number);

    bool flag = false;
    status = readBoolean(doc, "smt", present, flag);
    if (!status.ok())
        return status;
    if (present)
        req.smt = flag;

    status = readNumber(doc, "clock", present, number);
    if (!status.ok())
        return status;
    if (present)
        req.clockGhz = number;

    status = readBoolean(doc, "turbo", present, flag);
    if (!status.ok())
        return status;
    if (present)
        req.turbo = flag;

    status = readNumber(doc, "stall_ms", present, number);
    if (!status.ok())
        return status;
    if (present) {
        if (number < 0.0 || number > maxStallMs) {
            return Status::error(
                StatusCode::InvalidArgument,
                msgOf("\"stall_ms\" must be 0..", maxStallMs));
        }
        req.stallMs = number;
    }

    return req;
}

std::string
formatServeRequest(const ServeRequest &req)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.key("id").value(req.id);
    switch (req.op) {
    case ServeOp::Measure:
        json.key("op").value("measure");
        break;
    case ServeOp::Ping:
        json.key("op").value("ping");
        break;
    case ServeOp::Stats:
        json.key("op").value("stats");
        break;
    case ServeOp::Shutdown:
        json.key("op").value("shutdown");
        break;
    }
    if (req.op == ServeOp::Measure) {
        json.key("proc").value(req.proc);
        json.key("bench").value(req.bench);
        if (req.cores)
            json.key("cores").value(static_cast<long>(*req.cores));
        if (req.smt)
            json.key("smt").value(*req.smt);
        if (req.clockGhz)
            json.key("clock").value(*req.clockGhz, 3);
        if (req.turbo)
            json.key("turbo").value(*req.turbo);
        if (req.stallMs > 0.0)
            json.key("stall_ms").value(req.stallMs, 3);
    }
    if (req.deadlineMs > 0.0)
        json.key("deadline_ms").value(req.deadlineMs, 3);
    json.endObject();
    return out.str();
}

Expected<ResolvedQuery>
resolveQuery(const ServeRequest &req)
{
    const ProcessorSpec *spec = findProcessor(req.proc);
    if (spec == nullptr) {
        return Status::error(StatusCode::InvalidArgument,
                             msgOf("unknown processor \"", req.proc,
                                   "\""));
    }
    const Benchmark *bench = findBenchmark(req.bench);
    if (bench == nullptr) {
        return Status::error(StatusCode::InvalidArgument,
                             msgOf("unknown benchmark \"", req.bench,
                                   "\""));
    }

    MachineConfig cfg = stockConfig(*spec);
    if (req.cores) {
        if (*req.cores < 1 || *req.cores > spec->cores) {
            return Status::error(StatusCode::InvalidArgument,
                                 msgOf("cores must be 1..",
                                       spec->cores, " for ",
                                       spec->id));
        }
        cfg = withCores(cfg, *req.cores);
    }
    if (req.smt) {
        if (*req.smt && spec->smtWays < 2) {
            return Status::error(StatusCode::InvalidArgument,
                                 spec->id + " has no SMT");
        }
        cfg = withSmt(cfg, *req.smt);
    }
    if (req.clockGhz) {
        if (*req.clockGhz < spec->fMinGhz ||
            *req.clockGhz > spec->stockClockGhz) {
            return Status::error(
                StatusCode::InvalidArgument,
                msgOf("clock must be within ", spec->fMinGhz, "..",
                      spec->stockClockGhz, " GHz for ", spec->id));
        }
        cfg = withClock(cfg, *req.clockGhz);
    }
    if (req.turbo) {
        if (*req.turbo && !spec->hasTurbo) {
            return Status::error(StatusCode::InvalidArgument,
                                 spec->id + " has no Turbo Boost");
        }
        cfg = withTurbo(cfg, *req.turbo);
    }

    ResolvedQuery query;
    query.config = cfg;
    query.benchmark = bench;
    return query;
}

std::string
errorReplyJson(long id, ServeStatus status, const std::string &message)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.key("id").value(id);
    json.key("status").value(serveStatusName(status));
    json.key("message").value(message);
    json.endObject();
    return out.str();
}

std::string
measurementReplyJson(long id, const Measurement &m, bool degraded)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.key("id").value(id);
    json.key("status").value(serveStatusName(ServeStatus::Ok));
    json.key("degraded").value(degraded);
    json.key("time_sec").value(m.timeSec, 6);
    json.key("time_ci95_rel").value(m.timeCi95Rel, 6);
    json.key("power_w").value(m.powerW, 6);
    json.key("power_ci95_rel").value(m.powerCi95Rel, 6);
    json.key("energy_j").value(m.energyJ(), 6);
    json.key("invocations").value(static_cast<long>(m.invocations));
    json.endObject();
    return out.str();
}

} // namespace lhr
