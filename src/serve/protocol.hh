/**
 * @file
 * Wire protocol of `lhrlab serve`: request parsing, query
 * resolution, and reply formatting.
 *
 * Every frame body is one JSON object. Requests:
 *
 *   {"id": 7, "op": "measure", "proc": "i7 (45)", "bench": "mcf",
 *    "cores": 2, "smt": false, "clock": 2.0, "turbo": false,
 *    "stat": "all", "deadline_ms": 250}
 *
 * ops: "measure" (the data plane — admission-controlled),
 * "ping" / "stats" / "shutdown" (the control plane — answered
 * inline so clients can observe an overloaded daemon without
 * queueing behind the overload). "stall_ms" on a measure request is
 * a load-testing aid: the worker holds the request that long before
 * computing, standing in for expensive queries so soak tests can
 * jam a small queue deterministically.
 *
 * Replies always carry the request's id (responses may interleave
 * across a pipelined connection) and a typed "status":
 *
 *   ok | overloaded | deadline-exceeded | shutting-down |
 *   parse-error | invalid-argument | internal
 *
 * The non-ok statuses are the robustness surface: `overloaded` is
 * the admission queue's backpressure, `deadline-exceeded` is shed
 * work (never computed), `shutting-down` is the drain refusing new
 * work while flushing admitted work. An ok reply to a measure
 * carries the measurement fields plus "degraded": true when the
 * answer was served from warm cache while the queue was full.
 */

#ifndef LHR_SERVE_PROTOCOL_HH
#define LHR_SERVE_PROTOCOL_HH

#include <optional>
#include <string>

#include "harness/measurement.hh"
#include "machine/processor.hh"
#include "util/status.hh"
#include "workload/benchmark.hh"

namespace lhr
{

/** Request kinds. Measure is admission-controlled; the rest answer inline. */
enum class ServeOp
{
    Measure,
    Ping,
    Stats,
    Shutdown,
};

/** Typed reply statuses (stable wire names via serveStatusName). */
enum class ServeStatus
{
    Ok,
    Overloaded,       ///< admission queue full, nothing cached
    DeadlineExceeded, ///< deadline expired before compute; shed
    ShuttingDown,     ///< drain in progress; request refused
    ParseError,       ///< malformed frame body
    InvalidArgument,  ///< well-formed but out of contract
    Internal,         ///< unexpected failure while computing
};

/** Stable lower-case wire name, e.g. "deadline-exceeded". */
[[nodiscard]] const char *serveStatusName(ServeStatus status);

/** One parsed request. */
struct ServeRequest
{
    ServeOp op = ServeOp::Measure;
    long id = 0;
    std::string proc;  ///< processor id, e.g. "i7 (45)"
    std::string bench; ///< benchmark name, e.g. "mcf"
    std::optional<int> cores;
    std::optional<bool> smt;
    std::optional<double> clockGhz;
    std::optional<bool> turbo;
    double deadlineMs = 0.0; ///< 0 = server default (may be none)
    double stallMs = 0.0;    ///< worker hold time (load testing)
};

/**
 * Parse one request frame. Malformed JSON, a non-object document,
 * an unknown op, or a wrongly-typed field come back as typed
 * ParseError/InvalidArgument — the server turns these into
 * `parse-error` / `invalid-argument` replies without dropping the
 * connection (the frame boundary survives; see util/net.hh).
 */
[[nodiscard]] Expected<ServeRequest>
parseServeRequest(const std::string &body);

/** Serialize a request (the loadgen/client side of parseServeRequest). */
[[nodiscard]] std::string formatServeRequest(const ServeRequest &req);

/** A measure request resolved against the machine/workload tables. */
struct ResolvedQuery
{
    MachineConfig config;
    const Benchmark *benchmark = nullptr;
};

/**
 * Resolve a measure request to (MachineConfig, Benchmark): unknown
 * processor/benchmark, out-of-range cores/clock, or SMT/Turbo on a
 * part without them are InvalidArgument — the same contract the
 * `lhrlab measure` command enforces, typed instead of fatal.
 */
[[nodiscard]] Expected<ResolvedQuery>
resolveQuery(const ServeRequest &req);

/** An error reply: {"id": N, "status": "...", "message": "..."}. */
[[nodiscard]] std::string errorReplyJson(long id, ServeStatus status,
                                         const std::string &message);

/**
 * An ok measure reply carrying the measurement fields; `degraded`
 * marks answers served from warm cache while the queue was full.
 */
[[nodiscard]] std::string measurementReplyJson(long id,
                                               const Measurement &m,
                                               bool degraded);

} // namespace lhr

#endif // LHR_SERVE_PROTOCOL_HH
