#include "serve/server.hh"

#include <chrono>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "fault/fault.hh"
#include "serve/protocol.hh"
#include "util/bounded_queue.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/net.hh"

namespace lhr
{

namespace
{

using Clock = std::chrono::steady_clock;

/** How long the accept loop waits before re-checking drain flags. */
constexpr int acceptPollMs = 100;

/**
 * One connected client. Workers and the connection's reader thread
 * both write replies, so every frame goes out under the write lock —
 * frames interleave, bytes within a frame never do.
 */
struct ClientConn
{
    explicit ClientConn(Socket s) : sock(std::move(s)) {}

    [[nodiscard]] Status send(const std::string &body)
    {
        std::lock_guard<std::mutex> lock(writeMutex);
        return writeFrame(sock, body);
    }

    Socket sock;
    std::mutex writeMutex;
};

/** One admitted measure request, waiting for a worker. */
struct Job
{
    ServeRequest req;
    ResolvedQuery query;
    std::shared_ptr<ClientConn> conn;
    bool hasDeadline = false;
    Clock::time_point deadline;
};

/** Monotonic counters; snapshotted for the stats op. */
struct Counters
{
    std::atomic<uint64_t> connections{0};
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> served{0};
    std::atomic<uint64_t> degraded{0};
    std::atomic<uint64_t> overloaded{0};
    std::atomic<uint64_t> deadlineShed{0};
    std::atomic<uint64_t> coalesced{0};
    std::atomic<uint64_t> parseErrors{0};
    std::atomic<uint64_t> invalidArguments{0};
    std::atomic<uint64_t> refusedDraining{0};
    std::atomic<uint64_t> internalErrors{0};
};

/** A reply send can only fail because the client left; that is load. */
void
sendBestEffort(ClientConn &conn, const std::string &body)
{
    const Status status = conn.send(body);
    if (!status.ok())
        inform("serve: client gone before reply: " + status.message());
}

} // namespace

struct LabServer::Impl
{
    Impl(ExperimentRunner &r, ServeOptions o)
        : runner(r), options(std::move(o)), queue(options.queueDepth)
    {
    }

    ExperimentRunner &runner;
    const ServeOptions options;
    BoundedQueue<Job> queue;
    Counters counters;

    std::atomic<bool> draining{false};

    std::mutex connMutex; ///< guards conns (list of live connections)
    std::vector<std::shared_ptr<ClientConn>> conns;

    std::mutex inFlightMutex; ///< guards inFlight
    /**
     * Experiment keys currently being computed by a worker, with a
     * joiner count. A worker arriving at a key that is already here
     * will block inside the runner's call_once and receive the shared
     * result — that is a coalesced request, counted as such.
     */
    std::map<std::string, int> inFlight;

    void serveMeasure(const ServeRequest &req,
                      const std::shared_ptr<ClientConn> &conn);
    void serveStats(const ServeRequest &req, ClientConn &conn);
    void handleFrame(const std::string &body,
                     const std::shared_ptr<ClientConn> &conn);
    void connectionLoop(std::shared_ptr<ClientConn> conn);
    void workerLoop();
    void requestDrain();
    [[nodiscard]] ServeStatsSnapshot snapshot() const;
};

ServeStatsSnapshot
LabServer::Impl::snapshot() const
{
    ServeStatsSnapshot s;
    s.connections = counters.connections.load();
    s.admitted = counters.admitted.load();
    s.served = counters.served.load();
    s.degraded = counters.degraded.load();
    s.overloaded = counters.overloaded.load();
    s.deadlineShed = counters.deadlineShed.load();
    s.coalesced = counters.coalesced.load();
    s.parseErrors = counters.parseErrors.load();
    s.invalidArguments = counters.invalidArguments.load();
    s.refusedDraining = counters.refusedDraining.load();
    s.internalErrors = counters.internalErrors.load();
    return s;
}

void
LabServer::Impl::serveStats(const ServeRequest &req, ClientConn &conn)
{
    const ServeStatsSnapshot s = snapshot();
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.key("id").value(req.id);
    json.key("status").value(serveStatusName(ServeStatus::Ok));
    json.key("stats").beginObject();
    json.key("connections").value(s.connections);
    json.key("admitted").value(s.admitted);
    json.key("served").value(s.served);
    json.key("degraded").value(s.degraded);
    json.key("overloaded").value(s.overloaded);
    json.key("deadline_shed").value(s.deadlineShed);
    json.key("coalesced").value(s.coalesced);
    json.key("parse_errors").value(s.parseErrors);
    json.key("invalid_arguments").value(s.invalidArguments);
    json.key("refused_draining").value(s.refusedDraining);
    json.key("internal_errors").value(s.internalErrors);
    json.key("queue_depth").value(static_cast<uint64_t>(queue.size()));
    json.key("queue_capacity")
        .value(static_cast<uint64_t>(queue.capacity()));
    json.key("cached_measurements")
        .value(static_cast<uint64_t>(runner.cachedMeasurements()));
    json.endObject();
    json.endObject();
    sendBestEffort(conn, out.str());
}

void
LabServer::Impl::serveMeasure(const ServeRequest &req,
                              const std::shared_ptr<ClientConn> &conn)
{
    Expected<ResolvedQuery> resolved = resolveQuery(req);
    if (!resolved.ok()) {
        counters.invalidArguments.fetch_add(1);
        sendBestEffort(*conn, errorReplyJson(
                                  req.id, ServeStatus::InvalidArgument,
                                  resolved.status().message()));
        return;
    }

    if (draining.load()) {
        counters.refusedDraining.fetch_add(1);
        sendBestEffort(*conn,
                       errorReplyJson(req.id, ServeStatus::ShuttingDown,
                                      "daemon is draining"));
        return;
    }

    Job job;
    job.req = req;
    job.query = resolved.value();
    job.conn = conn;
    const double deadline_ms = req.deadlineMs > 0.0
                                   ? req.deadlineMs
                                   : options.defaultDeadlineMs;
    if (deadline_ms > 0.0) {
        job.hasDeadline = true;
        job.deadline =
            Clock::now() + std::chrono::microseconds(static_cast<long>(
                               deadline_ms * 1000.0));
    }

    if (queue.tryPush(std::move(job))) {
        counters.admitted.fetch_add(1);
        return;
    }

    // Queue full (or closed under a racing drain): degrade before
    // shedding. A warm cache entry answers instantly without a
    // worker; only a cold key is refused.
    const Measurement *cached =
        runner.peekCache(resolved.value().config,
                         *resolved.value().benchmark);
    if (cached != nullptr) {
        counters.degraded.fetch_add(1);
        sendBestEffort(*conn,
                       measurementReplyJson(req.id, *cached, true));
        return;
    }
    if (queue.closed()) {
        counters.refusedDraining.fetch_add(1);
        sendBestEffort(*conn,
                       errorReplyJson(req.id, ServeStatus::ShuttingDown,
                                      "daemon is draining"));
        return;
    }
    counters.overloaded.fetch_add(1);
    sendBestEffort(
        *conn,
        errorReplyJson(req.id, ServeStatus::Overloaded,
                       msgOf("admission queue full (depth ",
                             queue.capacity(), "); retry with backoff")));
}

void
LabServer::Impl::handleFrame(const std::string &body,
                             const std::shared_ptr<ClientConn> &conn)
{
    Expected<ServeRequest> parsed = parseServeRequest(body);
    if (!parsed.ok()) {
        const bool malformed =
            parsed.status().code() == StatusCode::ParseError;
        if (malformed)
            counters.parseErrors.fetch_add(1);
        else
            counters.invalidArguments.fetch_add(1);
        sendBestEffort(*conn,
                       errorReplyJson(0,
                                      malformed
                                          ? ServeStatus::ParseError
                                          : ServeStatus::InvalidArgument,
                                      parsed.status().message()));
        return;
    }

    const ServeRequest &req = parsed.value();
    switch (req.op) {
    case ServeOp::Ping:
        sendBestEffort(*conn, errorReplyJson(req.id, ServeStatus::Ok,
                                             "pong"));
        return;
    case ServeOp::Stats:
        serveStats(req, *conn);
        return;
    case ServeOp::Shutdown:
        sendBestEffort(*conn, errorReplyJson(req.id, ServeStatus::Ok,
                                             "draining"));
        requestDrain();
        return;
    case ServeOp::Measure:
        serveMeasure(req, conn);
        return;
    }
}

void
LabServer::Impl::connectionLoop(std::shared_ptr<ClientConn> conn)
{
    for (;;) {
        Expected<std::string> frame =
            readFrame(conn->sock, options.maxFrameBytes);
        if (!frame.ok()) {
            // An oversized prefix is the one protocol error the
            // stream cannot recover from: answer it, then drop the
            // connection (the next bytes are unframeable).
            if (frame.status().code() == StatusCode::InvalidArgument) {
                counters.parseErrors.fetch_add(1);
                sendBestEffort(
                    *conn,
                    errorReplyJson(0, ServeStatus::ParseError,
                                   frame.status().message()));
            }
            break; // EOF (clean or mid-frame) ends the connection
        }
        handleFrame(frame.value(), conn);
    }
    // Retire the connection from the live list. Admitted jobs keep
    // it alive through their own shared_ptr until their replies are
    // flushed; with none pending, dropping the last reference here
    // closes the socket and the client sees a clean EOF.
    std::lock_guard<std::mutex> lock(connMutex);
    for (size_t i = 0; i < conns.size(); ++i) {
        if (conns[i] == conn) {
            conns.erase(conns.begin() +
                        static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
}

void
LabServer::Impl::workerLoop()
{
    while (std::optional<Job> popped = queue.pop()) {
        Job &job = *popped;

        // Deadline gate one: shed work that expired while queued.
        if (job.hasDeadline && Clock::now() > job.deadline) {
            counters.deadlineShed.fetch_add(1);
            sendBestEffort(
                *job.conn,
                errorReplyJson(job.req.id,
                               ServeStatus::DeadlineExceeded,
                               "deadline expired in queue; shed"));
            continue;
        }

        // Load-test stall: stand in for an expensive query.
        if (job.req.stallMs > 0.0) {
            std::this_thread::sleep_for(std::chrono::microseconds(
                static_cast<long>(job.req.stallMs * 1000.0)));
            // Deadline gate two: the stall may have consumed it.
            if (job.hasDeadline && Clock::now() > job.deadline) {
                counters.deadlineShed.fetch_add(1);
                sendBestEffort(
                    *job.conn,
                    errorReplyJson(job.req.id,
                                   ServeStatus::DeadlineExceeded,
                                   "deadline expired in queue; shed"));
                continue;
            }
        }

        const std::string key = ExperimentRunner::keyOf(
            job.query.config, *job.query.benchmark);
        {
            std::lock_guard<std::mutex> lock(inFlightMutex);
            auto [it, inserted] = inFlight.try_emplace(key, 0);
            if (!inserted || it->second > 0)
                counters.coalesced.fetch_add(1);
            ++it->second;
        }

        try {
            const Measurement &m =
                runner.measure(job.query.config, *job.query.benchmark);
            counters.served.fetch_add(1);
            sendBestEffort(*job.conn,
                           measurementReplyJson(job.req.id, m, false));
        } catch (const FaultError &err) {
            counters.internalErrors.fetch_add(1);
            sendBestEffort(*job.conn,
                           errorReplyJson(job.req.id,
                                          ServeStatus::Internal,
                                          err.what()));
        }

        {
            std::lock_guard<std::mutex> lock(inFlightMutex);
            const auto it = inFlight.find(key);
            if (it != inFlight.end() && --it->second <= 0)
                inFlight.erase(it);
        }
    }
}

void
LabServer::Impl::requestDrain()
{
    draining.store(true);
}

LabServer::LabServer(ExperimentRunner &runner, ServeOptions options)
    : impl(new Impl(runner, std::move(options)))
{
}

LabServer::~LabServer() { delete impl; }

ServeStatsSnapshot
LabServer::statsSnapshot() const
{
    return impl->snapshot();
}

Status
LabServer::serve()
{
    Expected<Socket> listener = listenUnix(impl->options.socketPath);
    if (!listener.ok())
        return listener.status();
    inform("serve: listening on " + impl->options.socketPath);

    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(impl->options.workers));
    for (int i = 0; i < impl->options.workers; ++i)
        workers.emplace_back([this] { impl->workerLoop(); });

    std::vector<std::thread> connThreads;
    while (!impl->draining.load()) {
        if (impl->options.stopFlag != nullptr &&
            impl->options.stopFlag->load()) {
            impl->requestDrain();
            break;
        }
        Expected<Socket> client =
            acceptClient(listener.value(), acceptPollMs);
        if (!client.ok()) {
            if (client.status().code() == StatusCode::Timeout)
                continue; // lapse or signal: re-check the flags
            warn("serve: accept failed: " + client.status().message());
            continue;
        }
        auto conn =
            std::make_shared<ClientConn>(std::move(client.value()));
        impl->counters.connections.fetch_add(1);
        {
            std::lock_guard<std::mutex> lock(impl->connMutex);
            impl->conns.push_back(conn);
        }
        connThreads.emplace_back(
            [this, conn] { impl->connectionLoop(conn); });
    }

    // Drain, in order: stop accepting (done — the loop exited), wake
    // blocked readers so connection threads wind down, stop admitting
    // (queue.close: new pushes fail, admitted jobs still pop), finish
    // every admitted job, and only then let the sockets close. The
    // jobs keep their connections alive via shared_ptr, so replies to
    // admitted work always reach a writable socket.
    listener.value().close();
    {
        std::lock_guard<std::mutex> lock(impl->connMutex);
        for (const std::shared_ptr<ClientConn> &conn : impl->conns)
            conn->sock.shutdownRead();
    }
    for (std::thread &t : connThreads)
        t.join();
    impl->queue.close();
    for (std::thread &t : workers)
        t.join();
    {
        std::lock_guard<std::mutex> lock(impl->connMutex);
        impl->conns.clear();
    }
    inform("serve: drained cleanly");
    return Status();
}

} // namespace lhr
