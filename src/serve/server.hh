/**
 * @file
 * The `lhrlab serve` daemon: answers measurement queries over a
 * local socket from a shared warm ExperimentRunner.
 *
 * Robustness model (DESIGN.md section 11):
 *
 *  - Admission control. Measure requests pass through a bounded
 *    queue. A full queue NEVER blocks the client: the daemon either
 *    degrades (answers immediately from warm cache, reply flagged
 *    "degraded") or sheds (typed `overloaded` reply). Backpressure
 *    is explicit and observable, not an unbounded buffer.
 *
 *  - Deadlines. Each request carries (or inherits) a deadline.
 *    Expired work is shed at dequeue — a worker never spends compute
 *    on an answer nobody is waiting for.
 *
 *  - Coalescing. Concurrent requests for the same experiment key
 *    share one computation through the runner's call_once memo;
 *    the in-flight registry counts how often that saved a run.
 *
 *  - Control plane. ping/stats/shutdown are answered inline on the
 *    connection thread, so an overloaded daemon remains observable
 *    and drainable — the control plane never queues behind the
 *    data plane.
 *
 *  - Drain. On shutdown (signal or request) the daemon stops
 *    accepting, refuses new measures with `shutting-down`, finishes
 *    every admitted job, flushes every reply, and exits cleanly.
 *    No truncated frames, no lost admitted work.
 */

#ifndef LHR_SERVE_SERVER_HH
#define LHR_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "harness/runner.hh"
#include "util/status.hh"

namespace lhr
{

/** Tunables of one daemon instance. */
struct ServeOptions
{
    std::string socketPath;    ///< Unix-domain socket to listen on
    int workers = 2;           ///< measurement worker threads
    size_t queueDepth = 32;    ///< admission-queue bound
    double defaultDeadlineMs = 0.0; ///< applied when a request has none (0 = none)
    size_t maxFrameBytes = 1 << 20; ///< request-frame cap
    /**
     * External drain request (the CLI's signal handlers set it).
     * Polled by the accept loop; nullptr = only the shutdown op
     * drains.
     */
    const std::atomic<bool> *stopFlag = nullptr;
};

/** Counters the stats op reports (all monotonic since start). */
struct ServeStatsSnapshot
{
    uint64_t connections = 0;    ///< clients accepted
    uint64_t admitted = 0;       ///< measures that entered the queue
    uint64_t served = 0;         ///< measures answered with computed data
    uint64_t degraded = 0;       ///< queue-full answers from warm cache
    uint64_t overloaded = 0;     ///< queue-full sheds (nothing cached)
    uint64_t deadlineShed = 0;   ///< admitted but expired before compute
    uint64_t coalesced = 0;      ///< measures that joined an in-flight run
    uint64_t parseErrors = 0;    ///< malformed frames answered with an error
    uint64_t invalidArguments = 0; ///< well-formed but out-of-contract
    uint64_t refusedDraining = 0;  ///< measures refused during drain
    uint64_t internalErrors = 0;   ///< compute failures answered `internal`
};

/**
 * One daemon instance. Construct, then serve() until drained; serve()
 * owns every thread it spawns and joins them before returning.
 */
class LabServer
{
  public:
    LabServer(ExperimentRunner &runner, ServeOptions options);
    ~LabServer();

    LabServer(const LabServer &) = delete;
    LabServer &operator=(const LabServer &) = delete;

    /**
     * Listen, serve, drain, return. Blocks until a drain is
     * requested (stopFlag, shutdown op) and every admitted job has
     * been answered. IoError when the socket cannot be bound.
     */
    [[nodiscard]] Status serve();

    /** Point-in-time copy of the counters (also available via stats op). */
    [[nodiscard]] ServeStatsSnapshot statsSnapshot() const;

  private:
    struct Impl;
    Impl *impl;
};

} // namespace lhr

#endif // LHR_SERVE_SERVER_HH
