/**
 * @file
 * `lhrlab loadgen`: a closed-loop load generator for the serve
 * daemon, in the style of the classic OLTP bench workers — N client
 * threads, a spin barrier so everyone starts in the same instant,
 * per-worker operation/latency/outcome counters, and a merged
 * throughput + percentile report.
 *
 * Each worker opens its own connection and issues measure requests
 * round-robin over a fixed (processor, benchmark) mix; the mix size
 * (`keys`) controls how much cache reuse and coalescing the run
 * exercises. Every reply outcome is counted — ok, degraded,
 * overloaded, deadline-shed, refused — so an overload run reports
 * the daemon's shedding behaviour, not just its throughput.
 */

#ifndef LHR_SERVE_LOADGEN_HH
#define LHR_SERVE_LOADGEN_HH

#include <cstdint>
#include <string>

#include "util/status.hh"

namespace lhr
{

/** One load-generation run. */
struct LoadgenOptions
{
    std::string socketPath;
    int clients = 8;            ///< concurrent worker connections
    int requestsPerClient = 50; ///< closed-loop ops per worker
    int keys = 8;               ///< distinct experiment keys in the mix
    double deadlineMs = 0.0;    ///< per-request deadline (0 = none)
    double stallMs = 0.0;       ///< server-side stall per request
};

/** Merged outcome of one run. */
struct LoadgenReport
{
    int clients = 0;
    uint64_t ops = 0;        ///< requests sent (replies received)
    uint64_t okCount = 0;    ///< computed answers
    uint64_t degradedCount = 0;
    uint64_t overloadedCount = 0;
    uint64_t shedCount = 0;  ///< deadline-exceeded replies
    uint64_t refusedCount = 0; ///< shutting-down replies
    uint64_t errorCount = 0; ///< transport/parse/internal failures
    double wallSec = 0.0;
    double requestsPerSec = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;

    /** Replies the daemon answered without crashing or hanging. */
    uint64_t answered() const
    {
        return okCount + degradedCount + overloadedCount + shedCount +
            refusedCount;
    }
};

/**
 * Run one closed-loop load generation against a listening daemon.
 * Fails with IoError when the socket cannot be reached at all;
 * per-request failures are counted in the report instead.
 */
[[nodiscard]] Expected<LoadgenReport>
runLoadgen(const LoadgenOptions &options);

} // namespace lhr

#endif // LHR_SERVE_LOADGEN_HH
