#include "serve/loadgen.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "serve/protocol.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/net.hh"

namespace lhr
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Reply frames are small; a generous cap catches desync early. */
constexpr size_t replyFrameCap = 1 << 16;

/**
 * The fixed query mix: processors crossed with benchmarks, giving
 * `keys` distinct experiment keys when taken round-robin. Paper
 * parts only, so the mix is stable across era extensions.
 */
const char *const mixProcs[] = {"i7 (45)", "i5 (32)", "C2D (45)",
                                "Pentium4 (130)"};
const char *const mixBenches[] = {"mcf", "gcc", "bzip2", "hmmer",
                                  "libquantum", "perlbench", "sjeng",
                                  "astar"};

constexpr int mixProcCount =
    static_cast<int>(sizeof(mixProcs) / sizeof(mixProcs[0]));
constexpr int mixBenchCount =
    static_cast<int>(sizeof(mixBenches) / sizeof(mixBenches[0]));

/** The i-th key of the mix (wraps at mixProcCount * mixBenchCount). */
void
mixKey(int i, std::string &proc, std::string &bench)
{
    const int slot = i % (mixProcCount * mixBenchCount);
    proc = mixProcs[slot % mixProcCount];
    bench = mixBenches[slot / mixProcCount];
}

/** Per-worker tallies, merged after the join. */
struct WorkerTally
{
    uint64_t ops = 0;
    uint64_t okCount = 0;
    uint64_t degradedCount = 0;
    uint64_t overloadedCount = 0;
    uint64_t shedCount = 0;
    uint64_t refusedCount = 0;
    uint64_t errorCount = 0;
    std::vector<double> latenciesMs;
    Status firstError; ///< first transport failure, for diagnostics
};

void
workerLoop(const LoadgenOptions &options, int worker_index,
           std::atomic<int> &start_barrier, WorkerTally &tally)
{
    Expected<Socket> sock = connectUnix(options.socketPath);
    if (!sock.ok()) {
        tally.firstError = sock.status();
        tally.errorCount =
            static_cast<uint64_t>(options.requestsPerClient);
        start_barrier.fetch_sub(1);
        return;
    }

    // Spin barrier: every worker connects first, then all fire at
    // once, so the daemon sees the full client count from request 1.
    start_barrier.fetch_sub(1);
    while (start_barrier.load() > 0)
        std::this_thread::yield();

    tally.latenciesMs.reserve(
        static_cast<size_t>(options.requestsPerClient));
    for (int i = 0; i < options.requestsPerClient; ++i) {
        ServeRequest req;
        req.op = ServeOp::Measure;
        req.id = static_cast<long>(worker_index) * 1000000 + i;
        // Offset by the worker index so concurrent workers collide
        // on keys (exercising coalescing) while walking the mix.
        const int span = options.keys > 0
                             ? options.keys
                             : mixProcCount * mixBenchCount;
        mixKey((worker_index + i) % span, req.proc, req.bench);
        req.deadlineMs = options.deadlineMs;
        req.stallMs = options.stallMs;

        const Clock::time_point before = Clock::now();
        const Status sent =
            writeFrame(sock.value(), formatServeRequest(req));
        if (!sent.ok()) {
            if (tally.firstError.ok())
                tally.firstError = sent;
            ++tally.errorCount;
            break; // connection is gone; the rest would also fail
        }
        Expected<std::string> reply =
            readFrame(sock.value(), replyFrameCap);
        if (!reply.ok()) {
            if (tally.firstError.ok())
                tally.firstError = reply.status();
            ++tally.errorCount;
            break;
        }
        const double elapsed_ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      before)
                .count();
        ++tally.ops;
        tally.latenciesMs.push_back(elapsed_ms);

        Expected<JsonValue> parsed = parseJson(reply.value());
        const std::string status =
            parsed.ok() ? parsed.value().stringOr("status", "")
                        : std::string();
        if (status == "ok") {
            if (parsed.value().find("degraded") != nullptr &&
                parsed.value().find("degraded")->isBoolean() &&
                parsed.value().find("degraded")->asBoolean())
                ++tally.degradedCount;
            else
                ++tally.okCount;
        } else if (status == "overloaded") {
            ++tally.overloadedCount;
        } else if (status == "deadline-exceeded") {
            ++tally.shedCount;
        } else if (status == "shutting-down") {
            ++tally.refusedCount;
        } else {
            ++tally.errorCount;
        }
    }
}

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const size_t index = std::min(
        sorted.size() - 1,
        static_cast<size_t>(p * static_cast<double>(sorted.size())));
    return sorted[index];
}

} // namespace

Expected<LoadgenReport>
runLoadgen(const LoadgenOptions &options)
{
    if (options.clients < 1 || options.requestsPerClient < 1) {
        return Status::error(StatusCode::InvalidArgument,
                             "loadgen needs >= 1 client and request");
    }

    // Probe once before spawning anything, so "no daemon" is one
    // typed error instead of N workers' worth of connect failures.
    {
        Expected<Socket> probe = connectUnix(options.socketPath);
        if (!probe.ok())
            return probe.status();
    }

    std::vector<WorkerTally> tallies(
        static_cast<size_t>(options.clients));
    std::atomic<int> startBarrier{options.clients};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(options.clients));

    const Clock::time_point begin = Clock::now();
    for (int w = 0; w < options.clients; ++w) {
        threads.emplace_back([&options, w, &startBarrier, &tallies] {
            workerLoop(options, w, startBarrier,
                       tallies[static_cast<size_t>(w)]);
        });
    }
    for (std::thread &t : threads)
        t.join();
    const double wall_sec =
        std::chrono::duration<double>(Clock::now() - begin).count();

    LoadgenReport report;
    report.clients = options.clients;
    report.wallSec = wall_sec;
    std::vector<double> latencies;
    for (const WorkerTally &tally : tallies) {
        report.ops += tally.ops;
        report.okCount += tally.okCount;
        report.degradedCount += tally.degradedCount;
        report.overloadedCount += tally.overloadedCount;
        report.shedCount += tally.shedCount;
        report.refusedCount += tally.refusedCount;
        report.errorCount += tally.errorCount;
        latencies.insert(latencies.end(), tally.latenciesMs.begin(),
                         tally.latenciesMs.end());
        if (!tally.firstError.ok()) {
            warn("loadgen: worker error: " +
                 tally.firstError.message());
        }
    }
    std::sort(latencies.begin(), latencies.end());
    report.p50Ms = percentile(latencies, 0.50);
    report.p95Ms = percentile(latencies, 0.95);
    report.p99Ms = percentile(latencies, 0.99);
    report.requestsPerSec =
        wall_sec > 0.0 ? static_cast<double>(report.ops) / wall_sec
                       : 0.0;
    return report;
}

} // namespace lhr
