#include "fault/fault.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lhr
{

namespace
{

/**
 * Fold the per-class seed material into one stream seed. Mixing the
 * session ordinal with a large odd constant keeps sessions of the
 * same experiment on well-separated SplitMix64 trajectories.
 */
uint64_t
mixStreamSeed(uint64_t plan_seed, uint64_t stream_hash, int session)
{
    uint64_t x = plan_seed ^ 0x9e3779b97f4a7c15ull;
    x ^= stream_hash + 0x517cc1b727220a95ull + (x << 6) + (x >> 2);
    x ^= static_cast<uint64_t>(session) * 0xbf58476d1ce4e5b9ull;
    return x;
}

} // namespace

const char *
faultClassName(FaultClass cls)
{
    switch (cls) {
    case FaultClass::DroppedSample:
        return "dropped-sample";
    case FaultClass::DuplicatedSample:
        return "duplicated-sample";
    case FaultClass::SensorSaturation:
        return "sensor-saturation";
    case FaultClass::CalibrationDrift:
        return "calibration-drift";
    case FaultClass::LoggerDisconnect:
        return "logger-disconnect";
    case FaultClass::ThermalThrottle:
        return "thermal-throttle";
    case FaultClass::CorunInterference:
        return "corun-interference";
    case FaultClass::CounterWraparound:
        return "counter-wraparound";
    case FaultClass::StaleCounter:
        return "stale-counter";
    }
    panic("faultClassName: unknown fault class");
}

std::optional<FaultClass>
parseFaultClass(std::string_view text)
{
    for (const FaultClass cls : allFaultClasses()) {
        if (text == faultClassName(cls))
            return cls;
    }
    return std::nullopt;
}

std::array<FaultClass, faultClassCount>
allFaultClasses()
{
    return {FaultClass::DroppedSample,     FaultClass::DuplicatedSample,
            FaultClass::SensorSaturation,  FaultClass::CalibrationDrift,
            FaultClass::LoggerDisconnect,  FaultClass::ThermalThrottle,
            FaultClass::CorunInterference, FaultClass::CounterWraparound,
            FaultClass::StaleCounter};
}

FaultPlan &
FaultPlan::with(FaultClass cls, double rate)
{
    if (!(rate >= 0.0 && rate <= 1.0)) {
        panic(msgOf("FaultPlan: rate ", rate, " for ",
                    faultClassName(cls), " is outside [0, 1]"));
    }
    rates[static_cast<size_t>(cls)] = rate;
    return *this;
}

bool
FaultPlan::any() const
{
    return injectsSamples() || !poisonedConfig.empty();
}

bool
FaultPlan::injectsSamples() const
{
    for (const double r : rates) {
        if (r > 0.0)
            return true;
    }
    return false;
}

FaultInjector::FaultInjector(const FaultPlan &plan_, uint64_t stream_hash,
                             int session, int expected_samples)
    : plan(plan_),
      rng(mixStreamSeed(plan_.seed, stream_hash, session)),
      auxRng(mixStreamSeed(plan_.seed, stream_hash, session) ^
             0x5241504c434e5452ull), // "RAPLCNTR"
      expectedSamples(std::max(expected_samples, 1))
{
    // Session-scoped events are all decided up front, in a fixed
    // order, so the per-sample stream below is identical whether or
    // not any of them fired — determinism is per (plan, experiment,
    // session), never per code path taken.
    if (bernoulli(FaultClass::CalibrationDrift)) {
        // Gain ramps linearly to 6-12% off by session end, like a
        // Hall sensor warming next to an exhaust vent.
        const double endGain = rng.uniform(0.06, 0.12) *
                               (rng.uniform() < 0.5 ? -1.0 : 1.0);
        driftGainPerSample = endGain / expectedSamples;
    } else {
        rng.uniform();
        rng.uniform();
    }

    if (bernoulli(FaultClass::LoggerDisconnect)) {
        // The logger dies somewhere in the middle half of the
        // session: early enough to matter, late enough that some
        // samples exist.
        disconnectAt = static_cast<int>(
            expectedSamples * rng.uniform(0.25, 0.75));
    } else {
        rng.uniform();
    }

    if (bernoulli(FaultClass::ThermalThrottle)) {
        throttleStart = static_cast<int>(
            expectedSamples * rng.uniform(0.0, 0.6));
        throttleEnd = throttleStart + std::max(
            1, static_cast<int>(expectedSamples * rng.uniform(0.1, 0.4)));
        throttleScale = rng.uniform(0.55, 0.80);
    } else {
        rng.uniform();
        rng.uniform();
        rng.uniform();
    }

    if (bernoulli(FaultClass::CorunInterference)) {
        interfereStart = static_cast<int>(
            expectedSamples * rng.uniform(0.0, 0.6));
        interfereEnd = interfereStart + std::max(
            1, static_cast<int>(expectedSamples * rng.uniform(0.1, 0.4)));
        interfereScale = rng.uniform(1.25, 1.60);
    } else {
        rng.uniform();
        rng.uniform();
        rng.uniform();
    }
}

bool
FaultInjector::bernoulli(FaultClass cls)
{
    // Always draw, even at rate 0, so the stream position is a pure
    // function of the sample index.
    return rng.uniform() < plan.rate(cls);
}

SampleFault
FaultInjector::next()
{
    SampleFault fault;
    const int i = index++;

    if (disconnectAt >= 0 && i >= disconnectAt)
        fault.lost = true;

    if (bernoulli(FaultClass::DroppedSample))
        fault.lost = true;

    if (bernoulli(FaultClass::DuplicatedSample))
        fault.extraCopies = 1 + static_cast<int>(rng.below(2));
    else
        rng.next();

    // Saturation arrives in short bursts — a few consecutive railed
    // samples while the load transient exceeds the sensor's range.
    if (railRemaining > 0) {
        fault.railed = true;
        --railRemaining;
        rng.uniform(); // consumed in place of the burst-start check
    } else if (bernoulli(FaultClass::SensorSaturation)) {
        fault.railed = true;
        railRemaining = 1 + static_cast<int>(rng.uniform() * 3.0);
    } else {
        rng.uniform();
    }

    if (i >= throttleStart && i < throttleEnd)
        fault.powerScale *= throttleScale;
    if (i >= interfereStart && i < interfereEnd)
        fault.powerScale *= interfereScale;

    fault.countsGain = 1.0 + driftGainPerSample * i;

    // RAPL classes on the aux stream: a fixed three draws per slot
    // (one wrap check, two for the stale-burst machinery) keep the
    // aux position a pure function of the slot index too.
    fault.wrapGlitch =
        auxRng.uniform() < plan.rate(FaultClass::CounterWraparound);
    if (staleRemaining > 0) {
        fault.stale = true;
        --staleRemaining;
        auxRng.uniform(); // in place of the burst-start check
        auxRng.uniform();
    } else if (auxRng.uniform() <
               plan.rate(FaultClass::StaleCounter)) {
        fault.stale = true;
        staleRemaining = 1 + static_cast<int>(auxRng.uniform() * 2.0);
    } else {
        auxRng.uniform();
    }
    return fault;
}

} // namespace lhr
