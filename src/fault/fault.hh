/**
 * @file
 * Deterministic fault injection for the simulated measurement rig.
 *
 * The paper's credibility rests on measurement hygiene: calibrated
 * Hall sensors, 50Hz logging, repetitions until tight confidence
 * intervals (sections 2.5, Table 2). A real bench also fails in
 * mundane ways — the AVR logger drops or repeats samples, the Hall
 * element saturates past its rated current, sensor gain drifts with
 * temperature, the USB logger disconnects mid-run, the machine
 * thermally throttles, a stray co-runner lands on the box. This
 * module reproduces that fault model, seeded and fully
 * deterministic, so the hardened measurement pipeline
 * (harness/runner) can be exercised and its recovery quantified
 * (study: ablation_faults).
 *
 * Scope of each class:
 *   - per-sample: DroppedSample, DuplicatedSample, SensorSaturation
 *     (railing windows of a few samples at ratedAmps());
 *   - per-session (one invocation's sampling run): CalibrationDrift
 *     (gain ramp over the session), LoggerDisconnect (every sample
 *     after a cut point is lost), ThermalThrottle and
 *     CorunInterference (a contiguous window where the true power
 *     waveform itself is depressed/inflated).
 *
 * A FaultPlan can also poison one configuration outright
 * (alwaysThrow semantics): the runner throws FaultError for every
 * experiment on it, modelling a dead rig; SweepEngine degrades those
 * cells to flagged rows.
 */

#ifndef LHR_FAULT_FAULT_HH
#define LHR_FAULT_FAULT_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/rng.hh"

namespace lhr
{

/** The injectable fault classes. */
enum class FaultClass
{
    DroppedSample,      ///< logger misses a 50Hz slot entirely
    DuplicatedSample,   ///< logger records a stale repeat
    SensorSaturation,   ///< Hall output rails at the rated current
    CalibrationDrift,   ///< sensor gain ramps over a session
    LoggerDisconnect,   ///< all samples after a cut point are lost
    ThermalThrottle,    ///< true power depressed for a window
    CorunInterference,  ///< true power inflated for a window
    // RAPL-backend classes (no effect on the Hall chain):
    CounterWraparound,  ///< energy MSR wraps inside a read interval
    StaleCounter,       ///< MSR reads return a stale counter value
};

inline constexpr size_t faultClassCount = 9;

/** Stable kebab-case name, e.g. "dropped-sample". */
const char *faultClassName(FaultClass cls);

/** Parse a faultClassName(); nullopt when unknown. */
std::optional<FaultClass> parseFaultClass(std::string_view text);

/** All classes, in declaration order (for sweeps over the model). */
std::array<FaultClass, faultClassCount> allFaultClasses();

/**
 * The fault model of one rig: a rate per class plus an optional
 * poisoned configuration. Rates are probabilities — per 50Hz sample
 * for the sample-scoped classes, per sampling session for the
 * session-scoped ones. An all-zero plan (the default) injects
 * nothing and leaves the measurement pipeline bit-identical to the
 * fault-free laboratory.
 */
struct FaultPlan
{
    /** Extra entropy folded into every per-experiment fault stream. */
    uint64_t seed = 0;

    /** Per-class probabilities, all zero by default. */
    std::array<double, faultClassCount> rates{};

    /**
     * label() of a configuration whose every experiment throws
     * FaultError (a dead rig). Empty = none.
     */
    std::string poisonedConfig;

    double rate(FaultClass cls) const
    {
        return rates[static_cast<size_t>(cls)];
    }

    /** Builder-style rate setter; panics on a rate outside [0, 1]. */
    FaultPlan &with(FaultClass cls, double rate);

    /** True when any rate is nonzero or a config is poisoned. */
    bool any() const;

    /** True when any sample/session fault rate is nonzero. */
    bool injectsSamples() const;
};

/** What the injector did to one 50Hz sample slot. */
struct SampleFault
{
    bool lost = false;        ///< dropped, or after a disconnect
    bool railed = false;      ///< ADC pegged at the sensor's rail
    int extraCopies = 0;      ///< stale duplicates logged after it
    double powerScale = 1.0;  ///< throttle x interference on true W
    double countsGain = 1.0;  ///< calibration drift on the decode
    bool wrapGlitch = false;  ///< RAPL: mis-handled counter wrap
    bool stale = false;       ///< RAPL: read returns the old counter
};

/**
 * One sampling session's fault stream. Constructed per invocation
 * from the plan, a per-experiment hash, and the session ordinal, so
 * the injected faults are a pure function of (plan, experiment,
 * session) — independent of threads, retries elsewhere, or wall
 * time. next() advances one 50Hz slot.
 */
class FaultInjector
{
  public:
    /**
     * @param plan            the rig's fault model (copied)
     * @param stream_hash     per-experiment hash (e.g. fnv1a of the
     *                        experiment key)
     * @param session         ordinal of this sampling session
     * @param expected_samples planned 50Hz slots in the session
     */
    FaultInjector(const FaultPlan &plan, uint64_t stream_hash,
                  int session, int expected_samples);

    /** Fault decisions for the next sample slot. */
    SampleFault next();

    /** Slots consumed so far. */
    int sampleIndex() const { return index; }

  private:
    bool bernoulli(FaultClass cls);

    FaultPlan plan;
    Rng rng;
    /**
     * The RAPL fault classes draw from their own stream so enabling
     * them never shifts the draw positions — and therefore the
     * decisions — of the original seven classes.
     */
    Rng auxRng;
    int expectedSamples;
    int index = 0;

    int railRemaining = 0;
    int staleRemaining = 0;
    double driftGainPerSample = 0.0;
    int disconnectAt = -1;      ///< sample index; -1 = never
    int throttleStart = -1, throttleEnd = -1;
    double throttleScale = 1.0;
    int interfereStart = -1, interfereEnd = -1;
    double interfereScale = 1.0;
};

} // namespace lhr

#endif // LHR_FAULT_FAULT_HH
