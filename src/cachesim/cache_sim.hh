/**
 * @file
 * Structural cache and TLB simulation.
 *
 * Where the interval model (lhr::cache) evaluates analytic miss
 * curves, this module simulates actual set-associative arrays with
 * LRU replacement, access by access. It exists to (a) characterize
 * synthetic traces the way hardware event counters characterize real
 * executions, and (b) cross-validate the analytic curves
 * (bench/ablation_tracesim).
 */

#ifndef LHR_CACHESIM_CACHE_SIM_HH
#define LHR_CACHESIM_CACHE_SIM_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lhr
{

/** One set-associative, true-LRU cache array. */
class CacheArray
{
  public:
    /**
     * @param capacity_kb total capacity
     * @param ways associativity (capacity must cover >= 1 set)
     * @param line_bytes line size
     */
    CacheArray(double capacity_kb, int ways, int line_bytes = 64);

    /** Access a byte address; returns true on hit. Updates LRU. */
    bool access(uint64_t addr);

    uint64_t accesses() const { return accessCount; }
    uint64_t misses() const { return missCount; }
    double missRatio() const;

    int sets() const { return setCount; }
    int associativity() const { return wayCount; }

    /** Invalidate everything and clear statistics. */
    void reset();

  private:
    int wayCount;
    int lineBytes;
    int setCount;
    uint64_t accessCount;
    uint64_t missCount;
    /** Per set: tags in LRU order, MRU first. */
    std::vector<std::vector<uint64_t>> tagSets;
};

/** A fully-associative LRU TLB. */
class TlbArray
{
  public:
    /**
     * @param entries number of TLB entries
     * @param page_bytes page size (4KB on the study's systems)
     */
    explicit TlbArray(int entries, int page_bytes = 4096);

    /** Access a byte address; returns true on TLB hit. */
    bool access(uint64_t addr);

    uint64_t accesses() const { return accessCount; }
    uint64_t misses() const { return missCount; }

    /**
     * Model GC-style displacement: evict a fraction of the TLB, as
     * a collector scanning the heap on the same core does to the
     * application (the paper's db observation, section 3.1).
     */
    void displace(double fraction);

    void reset();

  private:
    size_t entryCount;
    int pageBytes;
    uint64_t accessCount;
    uint64_t missCount;
    std::vector<uint64_t> pages; ///< MRU first
};

/**
 * A multi-level simulated hierarchy: each level is accessed only on
 * a miss in the previous one (inclusive, no prefetching).
 */
class HierarchySim
{
  public:
    /** Level specs as (capacityKb, ways) pairs, innermost first. */
    explicit HierarchySim(
        const std::vector<std::pair<double, int>> &levels);

    /** Access an address through the hierarchy. */
    void access(uint64_t addr);

    /**
     * Access an address and report where it hit: the level index,
     * or -1 when it missed every level (DRAM).
     */
    int accessHitLevel(uint64_t addr);

    /** Misses of one level per kilo-instruction. */
    double mpki(size_t level, uint64_t instructions) const;

    size_t levelCount() const { return arrays.size(); }
    const CacheArray &level(size_t i) const { return arrays.at(i); }

    void reset();

  private:
    std::vector<CacheArray> arrays;
};

} // namespace lhr

#endif // LHR_CACHESIM_CACHE_SIM_HH
