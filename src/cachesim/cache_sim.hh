/**
 * @file
 * Structural cache and TLB simulation.
 *
 * Where the interval model (lhr::cache) evaluates analytic miss
 * curves, this module simulates actual set-associative arrays with
 * LRU replacement, access by access. It exists to (a) characterize
 * synthetic traces the way hardware event counters characterize real
 * executions, and (b) cross-validate the analytic curves
 * (bench/ablation_tracesim).
 *
 * The arrays store tags and last-touch ages in flat contiguous
 * vectors (no per-set node containers): LRU ordering is recovered by
 * comparing ages, which makes hit/miss decisions identical to an
 * explicit recency list while doing no allocation or element
 * shuffling on the access path.
 */

#ifndef LHR_CACHESIM_CACHE_SIM_HH
#define LHR_CACHESIM_CACHE_SIM_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lhr
{

/** One set-associative, true-LRU cache array. */
class CacheArray
{
  public:
    /**
     * @param capacity_kb total capacity
     * @param ways associativity (capacity must cover >= 1 set)
     * @param line_bytes line size
     */
    CacheArray(double capacity_kb, int ways, int line_bytes = 64);

    /**
     * Access a byte address; returns true on hit. Updates LRU.
     * Inline so PipelineSim's issue loop sees the whole L1-hit fast
     * path without a call per memory op.
     */
    bool access(uint64_t addr)
    {
        ++accessCount;
        const uint64_t line = addr >> lineShift;
        const size_t set = static_cast<size_t>(line & setMask);
        const uint64_t tag = line >> setShift;

        uint64_t *setTags = &tags[set * wayCount];
        uint64_t *setAges = &ages[set * wayCount];
        // Hit scan only; the victim scan below runs just on misses.
        for (size_t way = 0; way < wayCount; ++way) {
            if (setTags[way] == tag && setAges[way] != 0) {
                // Hit: bump to most recent.
                setAges[way] = ++stamp;
                return true;
            }
        }
        // Miss: fill an invalid way if any (age 0 sorts first), else
        // evict the least recently used one (first minimum).
        ++missCount;
        size_t victim = 0;
        uint64_t oldest = setAges[0];
        for (size_t way = 1; way < wayCount; ++way) {
            if (setAges[way] < oldest) {
                oldest = setAges[way];
                victim = way;
            }
        }
        setTags[victim] = tag;
        setAges[victim] = ++stamp;
        return false;
    }

    uint64_t accesses() const { return accessCount; }
    uint64_t misses() const { return missCount; }
    double missRatio() const;

    size_t sets() const { return setCount; }
    size_t associativity() const { return wayCount; }

    /** Invalidate everything and clear statistics. */
    void reset();

  private:
    size_t wayCount;
    size_t setCount;
    unsigned lineShift;          ///< log2(line bytes)
    unsigned setShift;           ///< log2(set count)
    uint64_t setMask;            ///< setCount - 1
    uint64_t accessCount;
    uint64_t missCount;
    uint64_t stamp;              ///< monotonic access clock
    /** setCount x wayCount tags, row-major by set. */
    std::vector<uint64_t> tags;
    /** Last-touch stamp per way; 0 marks an invalid way. */
    std::vector<uint64_t> ages;
};

/** A fully-associative LRU TLB. */
class TlbArray
{
  public:
    /**
     * @param entries number of TLB entries
     * @param page_bytes page size (4KB on the study's systems)
     */
    explicit TlbArray(int entries, int page_bytes = 4096);

    /** Access a byte address; returns true on TLB hit. */
    bool access(uint64_t addr);

    uint64_t accesses() const { return accessCount; }
    uint64_t misses() const { return missCount; }

    /**
     * Model GC-style displacement: evict a fraction of the TLB, as
     * a collector scanning the heap on the same core does to the
     * application (the paper's db observation, section 3.1). The
     * most recently used entries survive.
     */
    void displace(double fraction);

    void reset();

  private:
    size_t entryCount;
    unsigned pageShift;          ///< log2(page bytes)
    uint64_t accessCount;
    uint64_t missCount;
    uint64_t stamp;              ///< monotonic access clock
    size_t liveCount;            ///< valid entries
    std::vector<uint64_t> pages; ///< entryCount page numbers
    std::vector<uint64_t> ages;  ///< last-touch stamp; 0 = invalid
    std::vector<uint32_t> freeSlots;           ///< invalid slots
    // lhrlint:allow-next-line(det-unordered): page->slot lookups only — victims are chosen by the clock hand, never by map order
    std::unordered_map<uint64_t, uint32_t> pageIndex; ///< page->slot
};

/**
 * A multi-level simulated hierarchy: each level is accessed only on
 * a miss in the previous one (inclusive, no prefetching).
 */
class HierarchySim
{
  public:
    /** Level specs as (capacityKb, ways) pairs, innermost first. */
    explicit HierarchySim(
        const std::vector<std::pair<double, int>> &levels);

    /** Access an address through the hierarchy. */
    void access(uint64_t addr) { accessHitLevel(addr); }

    /**
     * Access an address and report where it hit: the level index,
     * or -1 when it missed every level (DRAM).
     */
    int accessHitLevel(uint64_t addr)
    {
        for (size_t level = 0; level < arrays.size(); ++level) {
            if (arrays[level].access(addr))
                return static_cast<int>(level);
        }
        return -1;
    }

    /** Misses of one level per kilo-instruction. */
    double mpki(size_t level, uint64_t instructions) const;

    size_t levelCount() const { return arrays.size(); }
    const CacheArray &level(size_t i) const { return arrays.at(i); }

    void reset();

  private:
    std::vector<CacheArray> arrays;
};

} // namespace lhr

#endif // LHR_CACHESIM_CACHE_SIM_HH
