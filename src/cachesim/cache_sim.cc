#include "cachesim/cache_sim.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>

#include "util/logging.hh"

namespace lhr
{

namespace
{

bool
isPowerOfTwo(int x)
{
    return x > 0 && (x & (x - 1)) == 0;
}

} // namespace

CacheArray::CacheArray(double capacity_kb, int ways, int line_bytes)
    : wayCount(static_cast<size_t>(ways)), accessCount(0),
      missCount(0), stamp(0)
{
    if (capacity_kb <= 0.0 || ways < 1 || !isPowerOfTwo(line_bytes))
        panic("CacheArray: invalid geometry");
    const double lines = capacity_kb * 1024.0 / line_bytes;
    // Round the set count down to a power of two for indexing.
    setCount = std::bit_floor(
        std::max<size_t>(1, static_cast<size_t>(lines / ways)));
    // Both divisors are powers of two: index with shifts and masks.
    lineShift = static_cast<unsigned>(
        std::countr_zero(static_cast<unsigned>(line_bytes)));
    setShift = static_cast<unsigned>(std::countr_zero(setCount));
    setMask = setCount - 1;
    tags.assign(setCount * wayCount, 0);
    ages.assign(setCount * wayCount, 0);
}

double
CacheArray::missRatio() const
{
    return accessCount == 0
        ? 0.0
        : static_cast<double>(missCount) / accessCount;
}

void
CacheArray::reset()
{
    std::fill(ages.begin(), ages.end(), 0);
    stamp = 0;
    accessCount = 0;
    missCount = 0;
}

TlbArray::TlbArray(int entries, int page_bytes)
    : entryCount(static_cast<size_t>(entries)), accessCount(0),
      missCount(0), stamp(0), liveCount(0)
{
    if (entries < 1 || !isPowerOfTwo(page_bytes))
        panic("TlbArray: invalid geometry");
    pageShift = static_cast<unsigned>(
        std::countr_zero(static_cast<unsigned>(page_bytes)));
    pages.assign(entryCount, 0);
    ages.assign(entryCount, 0);
    freeSlots.reserve(entryCount);
    for (size_t i = entryCount; i-- > 0;)
        freeSlots.push_back(static_cast<uint32_t>(i));
    pageIndex.reserve(entryCount);
}

bool
TlbArray::access(uint64_t addr)
{
    ++accessCount;
    const uint64_t page = addr >> pageShift;
    const auto it = pageIndex.find(page);
    if (it != pageIndex.end()) {
        ages[it->second] = ++stamp;
        return true;
    }
    ++missCount;
    uint32_t victim = 0;
    if (!freeSlots.empty()) {
        victim = freeSlots.back();
        freeSlots.pop_back();
        ++liveCount;
    } else {
        // Full: evict the least recently used entry (min age).
        uint64_t oldest = UINT64_MAX;
        for (size_t i = 0; i < entryCount; ++i) {
            if (ages[i] < oldest) {
                oldest = ages[i];
                victim = static_cast<uint32_t>(i);
            }
        }
        pageIndex.erase(pages[victim]);
    }
    pages[victim] = page;
    ages[victim] = ++stamp;
    pageIndex.emplace(page, victim);
    return false;
}

void
TlbArray::displace(double fraction)
{
    if (fraction < 0.0 || fraction > 1.0)
        panic("TlbArray::displace: fraction out of range");
    const size_t keep = static_cast<size_t>(
        std::ceil(liveCount * (1.0 - fraction)));
    if (keep >= liveCount)
        return;
    uint64_t cutoff = UINT64_MAX;
    if (keep > 0) {
        // Keep the `keep` highest ages (the MRU entries); ages are
        // unique, so the cutoff is exact.
        std::vector<uint64_t> live;
        live.reserve(liveCount);
        for (const uint64_t age : ages) {
            if (age != 0)
                live.push_back(age);
        }
        std::nth_element(live.begin(), live.begin() + (keep - 1),
                         live.end(), std::greater<>());
        cutoff = live[keep - 1];
    }
    for (size_t i = 0; i < entryCount; ++i) {
        if (ages[i] != 0 && ages[i] < cutoff) {
            ages[i] = 0;
            pageIndex.erase(pages[i]);
            freeSlots.push_back(static_cast<uint32_t>(i));
        }
    }
    liveCount = keep;
}

void
TlbArray::reset()
{
    std::fill(ages.begin(), ages.end(), 0);
    stamp = 0;
    liveCount = 0;
    accessCount = 0;
    missCount = 0;
    pageIndex.clear();
    freeSlots.clear();
    for (size_t i = entryCount; i-- > 0;)
        freeSlots.push_back(static_cast<uint32_t>(i));
}

HierarchySim::HierarchySim(
    const std::vector<std::pair<double, int>> &levels)
{
    if (levels.empty())
        panic("HierarchySim: needs at least one level");
    arrays.reserve(levels.size());
    for (const auto &[capacityKb, ways] : levels)
        arrays.emplace_back(capacityKb, ways);
}

double
HierarchySim::mpki(size_t level, uint64_t instructions) const
{
    if (instructions == 0)
        panic("HierarchySim::mpki: zero instructions");
    return arrays.at(level).misses() * 1000.0 /
        static_cast<double>(instructions);
}

void
HierarchySim::reset()
{
    for (auto &array : arrays)
        array.reset();
}

} // namespace lhr
