#include "cachesim/cache_sim.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lhr
{

namespace
{

bool
isPowerOfTwo(int x)
{
    return x > 0 && (x & (x - 1)) == 0;
}

} // namespace

CacheArray::CacheArray(double capacity_kb, int ways, int line_bytes)
    : wayCount(ways), lineBytes(line_bytes), accessCount(0),
      missCount(0)
{
    if (capacity_kb <= 0.0 || ways < 1 || !isPowerOfTwo(line_bytes))
        panic("CacheArray: invalid geometry");
    const double lines = capacity_kb * 1024.0 / line_bytes;
    setCount = std::max(1, static_cast<int>(lines / ways));
    // Round the set count down to a power of two for indexing.
    while (!isPowerOfTwo(setCount))
        --setCount;
    tagSets.assign(setCount, {});
}

bool
CacheArray::access(uint64_t addr)
{
    ++accessCount;
    const uint64_t line = addr / lineBytes;
    auto &set = tagSets[line & (setCount - 1)];
    const uint64_t tag = line / setCount;

    const auto it = std::find(set.begin(), set.end(), tag);
    if (it != set.end()) {
        // Hit: move to MRU.
        set.erase(it);
        set.insert(set.begin(), tag);
        return true;
    }
    ++missCount;
    set.insert(set.begin(), tag);
    if (static_cast<int>(set.size()) > wayCount)
        set.pop_back();
    return false;
}

double
CacheArray::missRatio() const
{
    return accessCount == 0
        ? 0.0
        : static_cast<double>(missCount) / accessCount;
}

void
CacheArray::reset()
{
    for (auto &set : tagSets)
        set.clear();
    accessCount = 0;
    missCount = 0;
}

TlbArray::TlbArray(int entries, int page_bytes)
    : entryCount(entries), pageBytes(page_bytes), accessCount(0),
      missCount(0)
{
    if (entries < 1 || !isPowerOfTwo(page_bytes))
        panic("TlbArray: invalid geometry");
}

bool
TlbArray::access(uint64_t addr)
{
    ++accessCount;
    const uint64_t page = addr / pageBytes;
    const auto it = std::find(pages.begin(), pages.end(), page);
    if (it != pages.end()) {
        pages.erase(it);
        pages.insert(pages.begin(), page);
        return true;
    }
    ++missCount;
    pages.insert(pages.begin(), page);
    if (pages.size() > entryCount)
        pages.pop_back();
    return false;
}

void
TlbArray::displace(double fraction)
{
    if (fraction < 0.0 || fraction > 1.0)
        panic("TlbArray::displace: fraction out of range");
    const size_t keep = static_cast<size_t>(
        std::ceil(pages.size() * (1.0 - fraction)));
    pages.resize(keep);
}

void
TlbArray::reset()
{
    pages.clear();
    accessCount = 0;
    missCount = 0;
}

HierarchySim::HierarchySim(
    const std::vector<std::pair<double, int>> &levels)
{
    if (levels.empty())
        panic("HierarchySim: needs at least one level");
    arrays.reserve(levels.size());
    for (const auto &[capacityKb, ways] : levels)
        arrays.emplace_back(capacityKb, ways);
}

void
HierarchySim::access(uint64_t addr)
{
    accessHitLevel(addr);
}

int
HierarchySim::accessHitLevel(uint64_t addr)
{
    for (size_t level = 0; level < arrays.size(); ++level) {
        if (arrays[level].access(addr))
            return static_cast<int>(level);
    }
    return -1;
}

double
HierarchySim::mpki(size_t level, uint64_t instructions) const
{
    if (instructions == 0)
        panic("HierarchySim::mpki: zero instructions");
    return arrays.at(level).misses() * 1000.0 /
        static_cast<double>(instructions);
}

void
HierarchySim::reset()
{
    for (auto &array : arrays)
        array.reset();
}

} // namespace lhr
