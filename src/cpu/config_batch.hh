/**
 * @file
 * Structure-of-arrays layout of machine configurations for batch
 * model evaluation.
 *
 * The sweep evaluates one benchmark against 45+ configurations; the
 * scalar path walks MachineConfig objects one at a time, so every
 * model pass reloads spec pointers and scattered fields per cell. A
 * ConfigBatch regroups one processor's configurations into
 * contiguous per-field arrays (clock, cores, SMT, turbo, contexts,
 * V(f) voltage) plus the spec-wide cache-geometry and process-node
 * constants every lane shares, so PerfModel::evaluateBatch and
 * ChipPowerModel::computeBatch can run tight lane loops over flat
 * data — the auto-vectorizable shape — while still producing, lane
 * for lane, exactly the floating-point operation sequence of the
 * scalar path (the bit-identity contract, DESIGN.md §8).
 *
 * A batch holds configurations of a single ProcessorSpec: cache
 * geometry and process-node parameters are per-spec, so mixing specs
 * in one batch would turn the shared constants back into per-lane
 * loads. partition() splits an arbitrary configuration list into
 * per-spec batches, remembering each lane's index in the original
 * list so callers can scatter results back.
 */

#ifndef LHR_CPU_CONFIG_BATCH_HH
#define LHR_CPU_CONFIG_BATCH_HH

#include <cstdint>
#include <vector>

#include "machine/processor.hh"

namespace lhr
{

/** SoA view of one processor's configurations; see file comment. */
struct ConfigBatch
{
    /** The processor every lane belongs to. */
    const ProcessorSpec *spec = nullptr;

    /** Original MachineConfig of each lane (not owned). */
    std::vector<const MachineConfig *> configs;

    /** Lane's index in the list handed to partition(). */
    std::vector<size_t> sourceIndex;

    // -- Per-configuration arrays (one entry per lane) ---------------
    std::vector<int> enabledCores;
    std::vector<int> smtPerCore;
    std::vector<double> clockGhz;
    std::vector<uint8_t> turboEnabled;
    std::vector<int> contexts;      ///< enabledCores * smtPerCore
    std::vector<double> voltage;    ///< cfg.voltageAt(cfg.clockGhz)

    // -- Spec-wide constants shared by every lane --------------------
    double llcMb = 0.0;             ///< cache geometry
    double capScale = 0.0;          ///< process node: capacitance scale
    double leakScale = 0.0;         ///< process node: leakage scale
    double tdpW = 0.0;
    double stockClockGhz = 0.0;

    size_t size() const { return configs.size(); }
    bool empty() const { return configs.empty(); }

    /** Append one lane; panics when cfg's spec differs. */
    void push(const MachineConfig &cfg, size_t source_index);

    /**
     * Split a configuration list into per-spec batches. Batches
     * appear in order of each spec's first appearance; lanes keep
     * the original relative order. Null entries are not allowed.
     */
    static std::vector<ConfigBatch>
    partition(const std::vector<const MachineConfig *> &configs);
};

} // namespace lhr

#endif // LHR_CPU_CONFIG_BATCH_HH
