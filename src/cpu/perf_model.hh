/**
 * @file
 * The interval performance model.
 *
 * For each (benchmark, machine configuration) pair the model
 * computes a CPI stack per thread — issue-limited base CPI, branch
 * misprediction CPI, and memory CPI from the cache hierarchy and
 * DRAM — then composes threads onto cores (SMT slot filling) and
 * cores onto the chip (Amdahl's law with a DRAM bandwidth ceiling).
 *
 * The memory CPI term converts DRAM nanoseconds into cycles at the
 * configured clock, which is what makes performance scale
 * sub-linearly with frequency (paper section 3.3) and differently
 * for memory-bound and compute-bound workloads (Finding W3).
 */

#ifndef LHR_CPU_PERF_MODEL_HH
#define LHR_CPU_PERF_MODEL_HH

#include <vector>

#include "cache/hierarchy.hh"
#include "cpu/config_batch.hh"
#include "machine/processor.hh"
#include "util/arena.hh"
#include "workload/benchmark.hh"

namespace lhr
{

/** Per-thread CPI decomposition, in cycles per instruction. */
struct CpiStack
{
    double base;     ///< issue/ILP-limited component
    double branch;   ///< misprediction stalls
    double memory;   ///< cache and DRAM stalls

    double total() const { return base + branch + memory; }
    double ipc() const { return 1.0 / total(); }
};

/** Result of evaluating a benchmark on a configuration. */
struct PerfResult
{
    double timeSec;           ///< completion time of the workload
    double aggregateIps;      ///< time-averaged instructions per second
    int coresUsed;            ///< cores running application threads
    int threadsPerCore;       ///< SMT threads per used core
    /**
     * Time-averaged utilization (achieved IPC / issue width) of each
     * enabled core; idle enabled cores appear with 0.
     */
    std::vector<double> coreUtilization;
    double dramGBs;           ///< average DRAM traffic
    double llcActivity;       ///< 0..1, accesses beyond L1 density
    double bandwidthThrottle; ///< 1 = unconstrained by DRAM bandwidth
};

/**
 * SoA result of evaluating one benchmark across a ConfigBatch. All
 * arrays are arena slices sized to the batch (lane i = batch lane i)
 * and stay valid until the arena resets. coreUtil is ragged — lane
 * i's enabled cores occupy [utilOffset[i], utilOffset[i+1]).
 *
 * Every lane carries exactly the values PerfModel::evaluate would
 * return for that configuration, bit for bit, plus the parallel-
 * phase thread CPI stack (base/branch/memory) the scalar API folds
 * into its IPC composition.
 */
struct PerfBatch
{
    size_t lanes = 0;

    double *timeSec = nullptr;
    double *aggregateIps = nullptr;
    int *coresUsed = nullptr;
    int *threadsPerCore = nullptr;
    double *dramGBs = nullptr;
    double *llcActivity = nullptr;
    double *bandwidthThrottle = nullptr;

    /** Parallel-phase per-thread CPI stack of each lane. */
    double *cpiBase = nullptr;
    double *cpiBranch = nullptr;
    double *cpiMemory = nullptr;

    double *coreUtil = nullptr;   ///< flat ragged utilization rows
    size_t *utilOffset = nullptr; ///< lanes + 1 entries

    double *utilRow(size_t lane) { return coreUtil + utilOffset[lane]; }
    const double *utilRow(size_t lane) const
    {
        return coreUtil + utilOffset[lane];
    }
    size_t utilCount(size_t lane) const
    {
        return utilOffset[lane + 1] - utilOffset[lane];
    }
};

/**
 * The performance model for one processor. Construct once per
 * ProcessorSpec; evaluate() is pure and thread-safe.
 */
class PerfModel
{
  public:
    explicit PerfModel(const ProcessorSpec &spec);

    /**
     * CPI stack of one thread given capacity sharing.
     *
     * @param bench the workload
     * @param clock_ghz core clock
     * @param threads_on_core active SMT threads on the thread's core
     * @param cores_on_llc active cores per shared LLC instance
     */
    CpiStack threadCpi(const Benchmark &bench, double clock_ghz,
                       int threads_on_core, double cores_on_llc) const;

    /**
     * Aggregate IPC of one core running the given number of SMT
     * threads of this benchmark: the second thread fills idle issue
     * slots at the microarchitecture's SMT quality, while both
     * threads share the core's cache capacity.
     */
    double coreIpc(const Benchmark &bench, double clock_ghz,
                   int threads_on_core, double cores_on_llc) const;

    /**
     * Evaluate the full execution of a benchmark's computational
     * work on the configuration, at an explicit clock (the Turbo
     * governor may call this at boosted clocks).
     *
     * @param work_instructions total work, in instructions
     * @param app_threads thread count (0 = one per context)
     */
    PerfResult evaluate(const Benchmark &bench, const MachineConfig &cfg,
                        double clock_ghz, double work_instructions,
                        int app_threads) const;

    /**
     * Evaluate one benchmark against every lane of a ConfigBatch in
     * a single flat pass (the sweep's batch fill mode). Result
     * arrays live in the arena. Lane i is bit-identical to
     * evaluate(bench, *batch.configs[i], clock[i], ...): the two
     * paths share the per-lane implementation, so the floating-point
     * operation sequence per cell is the same by construction.
     *
     * @param clock_ghz per-lane clocks; nullptr = each lane's BIOS
     *        clock (batch.clockGhz)
     */
    PerfBatch evaluateBatch(const Benchmark &bench,
                            const ConfigBatch &batch,
                            const double *clock_ghz,
                            double work_instructions, int app_threads,
                            Arena &arena) const;

    const ProcessorSpec &spec() const { return processor; }
    const CacheHierarchy &hierarchy() const { return caches; }

  private:
    /** Scalar per-lane outputs shared by evaluate/evaluateBatch. */
    struct LaneResult
    {
        double timeSec;
        double aggregateIps;
        int coresUsed;
        int threadsPerCore;
        double dramGBs;
        double llcActivity;
        double bandwidthThrottle;
        CpiStack parallelCpi; ///< parallel-phase thread CPI stack
    };

    /**
     * The one true per-cell evaluation, used by both the scalar and
     * the batch entry points. core_util must hold cfg.enabledCores
     * slots; it is fully overwritten.
     */
    void evaluateLane(const Benchmark &bench, const MachineConfig &cfg,
                      double clock_ghz, double work_instructions,
                      int app_threads, double *core_util,
                      LaneResult &out) const;

    const ProcessorSpec &processor;
    CacheHierarchy caches;
};

} // namespace lhr

#endif // LHR_CPU_PERF_MODEL_HH
