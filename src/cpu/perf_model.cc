#include "cpu/perf_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lhr
{

PerfModel::PerfModel(const ProcessorSpec &spec)
    : processor(spec), caches(makeHierarchy(spec))
{
}

CpiStack
PerfModel::threadCpi(const Benchmark &bench, double clock_ghz,
                     int threads_on_core, double cores_on_llc) const
{
    if (clock_ghz <= 0.0)
        panic("threadCpi: non-positive clock");
    if (threads_on_core < 1 || cores_on_llc < 1.0)
        panic("threadCpi: invalid sharing");

    const MicroArch &ua = processor.uarch();
    const double effWidth = ua.issueWidth * ua.issueEfficiency;
    // The scheduling window determines how much of the benchmark's
    // inherent ILP the pipeline can actually expose.
    const double ilpEff = bench.ilp * ua.ilpExtraction;

    CpiStack stack;
    stack.base = 1.0 / std::min(effWidth, ilpEff);
    stack.branch = bench.branchMispKi / 1000.0 * ua.branchPenalty;

    // Two SMT threads with partially overlapping footprints divide
    // the private capacity by less than 2.
    const double coreDivisor =
        1.0 + (threads_on_core - 1) * 2.0 * ua.smtCachePressure;
    const double llcDivisor = coreDivisor * cores_on_llc;
    const auto traffic =
        caches.evaluate(bench.miss, coreDivisor, llcDivisor);

    stack.memory = traffic.stallNsPerInstr * clock_ghz *
        ua.stallExposure;
    return stack;
}

double
PerfModel::coreIpc(const Benchmark &bench, double clock_ghz,
                   int threads_on_core, double cores_on_llc) const
{
    const MicroArch &ua = processor.uarch();
    const double ipc1 =
        threadCpi(bench, clock_ghz, threads_on_core, cores_on_llc).ipc();
    if (threads_on_core <= 1)
        return ipc1;

    // The second thread fills a smtQuality share of the idle issue
    // slots; total throughput never exceeds what the two threads
    // could consume.
    const double effWidth = ua.issueWidth * ua.issueEfficiency;
    const double filled =
        ipc1 + ua.smtQuality * std::max(0.0, effWidth - ipc1);
    return std::min(threads_on_core * ipc1, filled);
}

/**
 * The one per-cell evaluation body. Both evaluate() and
 * evaluateBatch() run cells through here, so the floating-point
 * operation sequence per cell is identical on the two paths — the
 * bit-identity contract of the sweep's batch fill mode.
 *
 * The serial/parallel core IPC computations inline coreIpc() (same
 * expressions, same order) so the parallel-phase CPI stack is
 * available as an output instead of being folded away.
 */
void
PerfModel::evaluateLane(const Benchmark &bench, const MachineConfig &cfg,
                        double clock_ghz, double work_instructions,
                        int app_threads, double *core_util,
                        LaneResult &out) const
{
    if (work_instructions <= 0.0)
        panic("PerfModel::evaluate: non-positive work");
    if (cfg.spec != &processor)
        panic("PerfModel::evaluate: config is for a different processor");

    const MicroArch &ua = processor.uarch();
    const int contexts = cfg.contexts();
    const int threads =
        app_threads == 0 ? contexts : std::min(app_threads, contexts);
    const int coresUsed = std::min(threads, cfg.enabledCores);
    const int threadsPerCore =
        (threads + coresUsed - 1) / coresUsed; // 1 or 2

    const double hz = clock_ghz * 1e9;

    // Serial phase: one thread, one active core. (coreIpc at one
    // thread is the stack's own IPC.)
    const auto serialTraffic = caches.evaluate(bench.miss, 1.0, 1.0);
    const double serialIpc =
        threadCpi(bench, clock_ghz, 1, 1.0).ipc();
    const double serialRate = serialIpc * hz * processor.perfCal;

    // Parallel phase: all threads running.
    const CpiStack parallelStack =
        threadCpi(bench, clock_ghz, threadsPerCore, coresUsed);
    double parallelCoreIpc = parallelStack.ipc();
    if (threadsPerCore > 1) {
        // The second thread fills a smtQuality share of the idle
        // issue slots (coreIpc()'s SMT composition, inlined).
        const double effWidth = ua.issueWidth * ua.issueEfficiency;
        const double filled = parallelCoreIpc +
            ua.smtQuality * std::max(0.0, effWidth - parallelCoreIpc);
        parallelCoreIpc =
            std::min(threadsPerCore * parallelCoreIpc, filled);
    }
    // Synchronization and scheduling overhead grows mildly with the
    // number of threads.
    const double syncFactor = 1.0 / (1.0 + 0.05 * (threads - 1));
    double parallelRate = coresUsed * parallelCoreIpc * hz * syncFactor *
        processor.perfCal;

    // DRAM bandwidth ceiling on the parallel phase.
    const double coreDivisor =
        1.0 + (threadsPerCore - 1) * 2.0 * ua.smtCachePressure;
    const auto parallelTraffic = caches.evaluate(
        bench.miss, coreDivisor, coreDivisor * coresUsed);
    const double requestedGBs = parallelRate *
        parallelTraffic.dramMpki / 1000.0 * DramModel::lineBytes / 1e9;
    const double throttle = processor.memory().throttle(requestedGBs);
    parallelRate *= throttle;

    const double p = threads > 1 ? bench.parallelFraction : 0.0;
    const double serialTime = work_instructions * (1.0 - p) / serialRate;
    const double parallelTime = work_instructions * p / parallelRate;
    const double timeSec = serialTime + parallelTime;

    out.timeSec = timeSec;
    out.aggregateIps = work_instructions / timeSec;
    out.coresUsed = coresUsed;
    out.threadsPerCore = threadsPerCore;
    out.bandwidthThrottle = throttle;
    out.parallelCpi = parallelStack;

    const double width = ua.issueWidth;
    const double serialUtil = serialIpc / width;
    const double parallelUtil = parallelCoreIpc * syncFactor *
        throttle / width;
    for (int core = 0; core < cfg.enabledCores; ++core)
        core_util[core] = 0.0;
    for (int core = 0; core < coresUsed; ++core) {
        const double active =
            (core == 0 ? serialTime * serialUtil : 0.0) +
            parallelTime * parallelUtil;
        core_util[core] = active / timeSec;
    }

    const double serialGBs = serialRate *
        serialTraffic.dramMpki / 1000.0 * DramModel::lineBytes / 1e9;
    out.dramGBs = (serialTime * serialGBs +
                   parallelTime * requestedGBs * throttle) / timeSec;

    const double llcAccessesPerSec = out.aggregateIps *
        parallelTraffic.l1Mpki / 1000.0;
    out.llcActivity = std::min(1.0, llcAccessesPerSec / 2e8);
}

PerfResult
PerfModel::evaluate(const Benchmark &bench, const MachineConfig &cfg,
                    double clock_ghz, double work_instructions,
                    int app_threads) const
{
    PerfResult result;
    result.coreUtilization.resize(
        cfg.enabledCores > 0 ? cfg.enabledCores : 0);
    LaneResult lane;
    evaluateLane(bench, cfg, clock_ghz, work_instructions, app_threads,
                 result.coreUtilization.data(), lane);
    result.timeSec = lane.timeSec;
    result.aggregateIps = lane.aggregateIps;
    result.coresUsed = lane.coresUsed;
    result.threadsPerCore = lane.threadsPerCore;
    result.dramGBs = lane.dramGBs;
    result.llcActivity = lane.llcActivity;
    result.bandwidthThrottle = lane.bandwidthThrottle;
    return result;
}

PerfBatch
PerfModel::evaluateBatch(const Benchmark &bench, const ConfigBatch &batch,
                         const double *clock_ghz,
                         double work_instructions, int app_threads,
                         Arena &arena) const
{
    if (batch.spec != &processor)
        panic("PerfModel::evaluateBatch: batch is for a different "
              "processor");
    const size_t n = batch.size();
    if (clock_ghz == nullptr)
        clock_ghz = batch.clockGhz.data();

    PerfBatch out;
    out.lanes = n;
    out.timeSec = arena.alloc<double>(n);
    out.aggregateIps = arena.alloc<double>(n);
    out.coresUsed = arena.alloc<int>(n);
    out.threadsPerCore = arena.alloc<int>(n);
    out.dramGBs = arena.alloc<double>(n);
    out.llcActivity = arena.alloc<double>(n);
    out.bandwidthThrottle = arena.alloc<double>(n);
    out.cpiBase = arena.alloc<double>(n);
    out.cpiBranch = arena.alloc<double>(n);
    out.cpiMemory = arena.alloc<double>(n);
    out.utilOffset = arena.alloc<size_t>(n + 1);

    size_t utilTotal = 0;
    for (size_t i = 0; i < n; ++i) {
        out.utilOffset[i] = utilTotal;
        utilTotal += static_cast<size_t>(batch.enabledCores[i]);
    }
    out.utilOffset[n] = utilTotal;
    out.coreUtil = arena.alloc<double>(utilTotal);

    for (size_t i = 0; i < n; ++i) {
        LaneResult lane;
        evaluateLane(bench, *batch.configs[i], clock_ghz[i],
                     work_instructions, app_threads,
                     out.coreUtil + out.utilOffset[i], lane);
        out.timeSec[i] = lane.timeSec;
        out.aggregateIps[i] = lane.aggregateIps;
        out.coresUsed[i] = lane.coresUsed;
        out.threadsPerCore[i] = lane.threadsPerCore;
        out.dramGBs[i] = lane.dramGBs;
        out.llcActivity[i] = lane.llcActivity;
        out.bandwidthThrottle[i] = lane.bandwidthThrottle;
        out.cpiBase[i] = lane.parallelCpi.base;
        out.cpiBranch[i] = lane.parallelCpi.branch;
        out.cpiMemory[i] = lane.parallelCpi.memory;
    }
    return out;
}

} // namespace lhr
