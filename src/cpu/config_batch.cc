#include "cpu/config_batch.hh"

#include "util/logging.hh"

namespace lhr
{

void
ConfigBatch::push(const MachineConfig &cfg, size_t source_index)
{
    if (cfg.spec == nullptr)
        panic("ConfigBatch: configuration without a spec");
    if (spec == nullptr) {
        spec = cfg.spec;
        llcMb = spec->llcMb;
        capScale = spec->tech().capScale;
        leakScale = spec->tech().leakScale;
        tdpW = spec->tdpW;
        stockClockGhz = spec->stockClockGhz;
    } else if (cfg.spec != spec) {
        panic("ConfigBatch: mixed processor specs in one batch");
    }
    configs.push_back(&cfg);
    sourceIndex.push_back(source_index);
    enabledCores.push_back(cfg.enabledCores);
    smtPerCore.push_back(cfg.smtPerCore);
    clockGhz.push_back(cfg.clockGhz);
    turboEnabled.push_back(cfg.turboEnabled ? 1 : 0);
    contexts.push_back(cfg.contexts());
    voltage.push_back(cfg.voltageAt(cfg.clockGhz));
}

std::vector<ConfigBatch>
ConfigBatch::partition(const std::vector<const MachineConfig *> &configs)
{
    std::vector<ConfigBatch> batches;
    for (size_t i = 0; i < configs.size(); ++i) {
        const MachineConfig *cfg = configs[i];
        if (cfg == nullptr)
            panic("ConfigBatch::partition: null configuration");
        ConfigBatch *batch = nullptr;
        for (ConfigBatch &b : batches) {
            if (b.spec == cfg->spec) {
                batch = &b;
                break;
            }
        }
        if (batch == nullptr) {
            batches.emplace_back();
            batch = &batches.back();
        }
        batch->push(*cfg, i);
    }
    return batches;
}

} // namespace lhr
