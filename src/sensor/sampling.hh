/**
 * @file
 * Batched, bit-exact 50Hz sampling sessions.
 *
 * One sampling session converts a benchmark invocation's phase power
 * waveform into the sum of calibrated Hall-sensor readings:
 *
 *   for s in [0, samples):
 *     k      = phase index of sample s
 *     trueW  = phasePowerW[k] * scale * (1 + 0.003 * gaussian)
 *     counts = channel.sampleCounts(trueW, rng)   // 10-bit ADC
 *     wattsSum += calibration.wattsFromCounts(counts)
 *
 * This is the hot loop of the whole laboratory (~85% of a full-grid
 * sweep), and nearly all of it is libm transcendentals inside
 * Rng::gaussian. sampleSessionWatts() computes the same sum, bit for
 * bit, several times faster:
 *
 *  - The per-sample gaussians feed only an *integer* ADC count; the
 *    count is a step function of the pair, constant between
 *    quantization boundaries.
 *  - All Box-Muller pairs of a session are generated at once with an
 *    approximate vectorizable kernel (gauss_kernel.hh), uniforms
 *    drawn from the real Rng in the exact scalar order.
 *  - Each sample's ADC value is accepted only when it lies further
 *    from every quantization boundary than a certainty window three
 *    orders of magnitude wider than the kernel's worst-case error;
 *    the rare boundary-straddling sample (~1e-6 of them) is
 *    recomputed through exact libm calls.
 *  - The accepted integer counts then flow through the identical
 *    calibration arithmetic, accumulated in sample order.
 *
 * The result is therefore the same double runMeasurement's legacy
 * loop produced, on every input, on every CPU — the golden-output
 * and batch-equivalence tests pin this down.
 */

#ifndef LHR_SENSOR_SAMPLING_HH
#define LHR_SENSOR_SAMPLING_HH

#include "sensor/calibration.hh"
#include "sensor/channel.hh"
#include "util/rng.hh"

namespace lhr
{

/**
 * Run one sampling session and return the sum of calibrated watts
 * readings, bitwise equal to the scalar loop documented above.
 *
 * @param phase_power_w the per-phase true power waveform
 * @param phases number of entries in phase_power_w
 * @param invocation_power_scale this invocation's power scale factor
 * @param samples number of 50Hz samples (sample s reads phase
 *        (s * phases) / samples)
 * @param inv_rng the invocation stream, positioned exactly where the
 *        scalar loop would start drawing (a pending Box-Muller half
 *        from the preamble is honoured)
 */
double sampleSessionWatts(const PowerChannel &channel,
                          const Calibration &calibration,
                          const double *phase_power_w, int phases,
                          double invocation_power_scale, int samples,
                          Rng &inv_rng);

} // namespace lhr

#endif // LHR_SENSOR_SAMPLING_HH
