#include "sensor/sensor.hh"

#include <cstdint>
#include <cstdlib>

#include "machine/processor.hh"
#include "sensor/hall.hh"
#include "sensor/rapl.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace lhr
{

namespace
{

std::optional<SensorBackend> backendOverride;

} // namespace

const char *
sensorBackendName(SensorBackend backend)
{
    switch (backend) {
      case SensorBackend::HallEffect: return "hall";
      case SensorBackend::Rapl:       return "rapl";
    }
    panic("sensorBackendName: unknown backend");
}

std::optional<SensorBackend>
parseSensorBackend(std::string_view text)
{
    if (text == "hall")
        return SensorBackend::HallEffect;
    if (text == "rapl")
        return SensorBackend::Rapl;
    return std::nullopt;
}

double
PowerSensor::sessionWatts(const double *phase_power_w, int phases,
                          double scale, int samples,
                          Rng &inv_rng) const
{
    const auto session = beginSession(inv_rng);
    const SampleFault noFault;
    double sum = 0.0;
    for (int s = 0; s < samples; ++s) {
        const int k = static_cast<int>(
            static_cast<int64_t>(s) * phases / samples) % phases;
        const double trueW = phase_power_w[k] * scale *
            (1.0 + 0.003 * inv_rng.gaussian());
        sum += session->read(trueW, inv_rng, noFault).watts;
    }
    return sum;
}

std::unique_ptr<PowerSensor>
makeSensor(SensorBackend backend, const ProcessorSpec &spec,
           uint64_t base_seed)
{
    switch (backend) {
      case SensorBackend::HallEffect: {
        // Parts whose peak rail current exceeds 5A carry the 30A
        // sensor (the paper names the i7 explicitly). Seeds and
        // construction order are the pre-abstraction rig's, so the
        // Hall chain stays byte-identical.
        const bool big = spec.tdpW > 70.0;
        const auto variant =
            big ? SensorVariant::A30 : SensorVariant::A5;
        return std::make_unique<HallEffectSensor>(
            variant, base_seed ^ fnv1a(spec.id),
            base_seed ^ fnv1a(spec.id + "/cal"));
      }
      case SensorBackend::Rapl:
        return std::make_unique<RaplSensor>(
            base_seed ^ fnv1a(spec.id + "/rapl"));
    }
    panic("makeSensor: unknown backend");
}

SensorBackend
defaultSensorBackend(const ProcessorSpec &spec)
{
    if (const auto backend = sensorBackendOverride())
        return *backend;
    // Paper-era rigs carry the Hall chain (the golden-output
    // contract); server-era parts expose energy MSRs.
    return spec.era >= Era::SandyBridge ? SensorBackend::Rapl
                                        : SensorBackend::HallEffect;
}

void
setSensorBackendOverride(std::optional<SensorBackend> backend)
{
    backendOverride = backend;
}

std::optional<SensorBackend>
sensorBackendOverride()
{
    if (backendOverride)
        return backendOverride;
    if (const char *env = std::getenv("LHR_SENSOR")) {
        const auto parsed = parseSensorBackend(env);
        if (!parsed)
            panic(msgOf("LHR_SENSOR: unknown backend '", env,
                        "' (valid: hall, rapl)"));
        return parsed;
    }
    return std::nullopt;
}

} // namespace lhr
