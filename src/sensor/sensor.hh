/**
 * @file
 * The power-sensor abstraction: one measurement backend per rig.
 *
 * The paper's chain — Hall sensor, ADC, calibration decode — is one
 * way to observe chip power; post-2011 parts expose another, the
 * RAPL cumulative-energy MSRs. PowerSensor is the seam between the
 * harness and whichever chain a rig carries: a session converts true
 * watts to a recorded code and decoded watts, one 50Hz slot at a
 * time, under the same SampleFault decisions the FaultInjector
 * produces for either chain.
 *
 * The Hall backend (sensor/hall.hh) wraps the original
 * PowerChannel + Calibration pipeline and is bit-identical to it;
 * the RAPL backend (sensor/rapl.hh) models energy-counter semantics.
 */

#ifndef LHR_SENSOR_SENSOR_HH
#define LHR_SENSOR_SENSOR_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "fault/fault.hh"
#include "util/rng.hh"

namespace lhr
{

struct ProcessorSpec;
class Calibration;

/** The measurement backends a rig can carry. */
enum class SensorBackend
{
    HallEffect,  ///< ACS714 Hall sensor on the 12V rail (the paper)
    Rapl         ///< cumulative-energy MSR, read per 50Hz slot
};

/** Stable name, "hall" or "rapl". */
const char *sensorBackendName(SensorBackend backend);

/** Parse a sensorBackendName(); nullopt when unknown. */
std::optional<SensorBackend> parseSensorBackend(std::string_view text);

/** One recorded sensor slot: the raw code and its decode. */
struct SensorReading
{
    int code;      ///< raw recorded value (ADC counts / energy units)
    double watts;  ///< decoded power
};

/**
 * One sampling session of a sensor: stateful where the backend is
 * (RAPL carries its counter), created per invocation. read()
 * converts one 50Hz slot's true power under a fault decision; it
 * always converts — draws are consumed even for a lost slot — so the
 * random stream position stays a pure function of the slot index.
 */
class SensorSession
{
  public:
    virtual ~SensorSession() = default;

    virtual SensorReading read(double true_watts, Rng &rng,
                               const SampleFault &fault) = 0;
};

/**
 * One rig's measurement backend. Thread-safe after construction:
 * all mutable sampling state lives in the per-invocation session.
 */
class PowerSensor
{
  public:
    virtual ~PowerSensor() = default;

    virtual SensorBackend backend() const = 0;

    /**
     * Codes at the backend's recording limits. The hardened
     * measurement pipeline screens recorded codes against these:
     * a railed Hall slot records railHighCode(); a wrap-glitched or
     * stale RAPL slot records railHighCode() / railLowCode().
     */
    virtual int railHighCode() const = 0;
    virtual int railLowCode() const = 0;

    /**
     * Start a sampling session. Backends with per-session state may
     * draw from rng (the invocation stream) to place it; the Hall
     * backend draws nothing, keeping its stream byte-identical to
     * the pre-abstraction harness.
     */
    virtual std::unique_ptr<SensorSession>
    beginSession(Rng &rng) const = 0;

    /**
     * Run one clean (fault-free) sampling session over a phase power
     * waveform and return the sum of decoded watts — the harness's
     * hot path. Sample s reads phase (s * phases) / samples with
     * <1% supply ripple applied inside the session:
     *
     *   trueW = phase_power_w[k] * scale * (1 + 0.003 * gaussian)
     *
     * The base implementation loops beginSession() + read(); the
     * Hall backend overrides it with the vectorized bit-exact
     * sampler (sensor/sampling.hh semantics).
     */
    virtual double sessionWatts(const double *phase_power_w,
                                int phases, double scale, int samples,
                                Rng &inv_rng) const;

    /**
     * The counts-to-watts calibration when the backend has one
     * (Hall); nullptr for backends that decode directly (RAPL).
     */
    virtual const Calibration *calibration() const { return nullptr; }
};

/** Build a backend's sensor for a processor's rig. */
std::unique_ptr<PowerSensor> makeSensor(SensorBackend backend,
                                        const ProcessorSpec &spec,
                                        uint64_t base_seed);

/**
 * The backend a rig carries by default: the process-wide override
 * when one is installed (setSensorBackendOverride / LHR_SENSOR),
 * else Hall for the paper parts and RAPL for the post-2011 server
 * eras.
 */
SensorBackend defaultSensorBackend(const ProcessorSpec &spec);

/**
 * Install (or, with nullopt, clear) a process-wide backend override
 * (lhrlab --sensor). Like setSeedOverride, it must be installed
 * before runners build their rigs.
 */
void setSensorBackendOverride(std::optional<SensorBackend> backend);

/** The installed override, or LHR_SENSOR, or nullopt. */
std::optional<SensorBackend> sensorBackendOverride();

} // namespace lhr

#endif // LHR_SENSOR_SENSOR_HH
