/**
 * @file
 * The Hall-effect measurement backend: the paper's original chain —
 * ACS714 sensor on the 12V rail, 10-bit ADC, 28-point calibration —
 * behind the PowerSensor interface. Construction, random draws and
 * arithmetic reproduce the pre-abstraction rig exactly, so the
 * paper-era grid stays byte-identical to the golden outputs.
 */

#ifndef LHR_SENSOR_HALL_HH
#define LHR_SENSOR_HALL_HH

#include "sensor/calibration.hh"
#include "sensor/channel.hh"
#include "sensor/sensor.hh"

namespace lhr
{

/**
 * One Hall-chain sampling session. Stateless between slots; read()
 * replays the channel conversion with the fault decisions applied
 * to what gets recorded (see PowerTraceLogger).
 */
class HallSession : public SensorSession
{
  public:
    HallSession(const PowerChannel &channel,
                const Calibration &calibration)
        : chan(channel), calib(calibration)
    {
    }

    SensorReading read(double true_watts, Rng &rng,
                       const SampleFault &fault) override;

  private:
    const PowerChannel &chan;
    const Calibration &calib;
};

/** The Hall-effect backend of one rig. */
class HallEffectSensor : public PowerSensor
{
  public:
    /**
     * @param variant sensor model (A30 above 5A peak rail current)
     * @param device_seed per-device seed fixing its error terms
     * @param cal_seed seed of the calibration sweep's random stream
     */
    HallEffectSensor(SensorVariant variant, uint64_t device_seed,
                     uint64_t cal_seed);

    SensorBackend backend() const override
    {
        return SensorBackend::HallEffect;
    }

    int railHighCode() const override
    {
        return chan.railHighCounts();
    }

    int railLowCode() const override { return chan.railLowCounts(); }

    std::unique_ptr<SensorSession>
    beginSession(Rng &rng) const override;

    /** The vectorized bit-exact session (sensor/sampling.hh). */
    double sessionWatts(const double *phase_power_w, int phases,
                        double scale, int samples,
                        Rng &inv_rng) const override;

    const Calibration *calibration() const override { return &calib; }

    const PowerChannel &channel() const { return chan; }

  private:
    PowerChannel chan;
    Calibration calib;
};

} // namespace lhr

#endif // LHR_SENSOR_HALL_HH
