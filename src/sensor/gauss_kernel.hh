/**
 * @file
 * Vector-friendly Box-Muller transcendental kernel.
 *
 * The sampling hot loop (ExperimentRunner::runMeasurement) spends
 * most of its time in libm log/sin/cos inside Rng::gaussian. Those
 * three are the only operations in the whole measurement chain whose
 * SIMD versions would not be bitwise identical to the scalar ones
 * (IEEE +,-,*,/ and sqrt are correctly rounded everywhere; library
 * transcendentals are not). The batch sampler therefore computes
 * gaussian pairs with this *approximate* polynomial kernel — close
 * to libm to well under 1e-12 absolute — and the caller keeps the
 * result only where the downstream integer ADC count provably cannot
 * change within that error (see sampling.cc's certainty window);
 * everything else is recomputed through the exact scalar path. The
 * kernel's accuracy therefore affects only how often the fallback
 * runs, never the bits of a Measurement.
 *
 * Two translation units compile the same loop: a baseline build and
 * an AVX2+FMA build selected at runtime when the CPU supports it.
 * Their results may differ from each other — that is fine, for the
 * same reason.
 */

#ifndef LHR_SENSOR_GAUSS_KERNEL_HH
#define LHR_SENSOR_GAUSS_KERNEL_HH

#include <cstddef>
#include <cstdint>

namespace lhr
{

/**
 * Fill gcos/gsin with approximate Box-Muller gaussian pairs:
 *   r = sqrt(-2 log u1), theta = 2 pi u2,
 *   gcos[i] ~= r cos(theta), gsin[i] ~= r sin(theta).
 * u1 values must lie in (0, 1), u2 in [0, 1).
 */
using GaussKernelFn = void (*)(const double *u1, const double *u2,
                               double *gcos, double *gsin, size_t n);

/** The portable kernel, always available. */
void gaussPairsBase(const double *u1, const double *u2, double *gcos,
                    double *gsin, size_t n);

/**
 * The AVX2+FMA build of the same loop, or nullptr when this binary
 * was compiled without AVX2 support for that translation unit.
 */
GaussKernelFn gaussKernelAvx2OrNull();

/** Best kernel for the running CPU (resolved once, cheap to call). */
GaussKernelFn resolveGaussKernel();

/**
 * Upper bound on |kernel - libm| per gaussian, used to size the
 * certainty window. Deliberately loose: the measured worst case is
 * below 1e-13 (see test_batch.cc).
 */
constexpr double gaussKernelMaxError = 1e-11;

/**
 * Per-session constants of the sample-quantize kernel: the channel's
 * device personality plus the certainty window sampling.cc derives
 * from it (see there for the window's soundness argument).
 */
struct SampleQuantizeParams
{
    double sens = 0.0;           ///< sensor volts per amp
    double gainFactor = 0.0;     ///< 1 + device gain error
    double offsetVolts = 0.0;    ///< device offset
    double noiseVolts = 0.0;     ///< sampling-noise sigma
    double ratedAmps = 0.0;      ///< over-range knee
    double window = 0.0;         ///< certainty window in ADC counts
    double zeroWattsGuard = 0.0; ///< near-0W lanes take the fallback
};

/**
 * Quantize a session's samples to ADC counts in batch:
 *   counts[s] = quantize(outputVolts(w[s] ripple-scaled by g1[s],
 *                        noise g2[s]))
 * for every lane whose integer count provably cannot differ from the
 * exact-libm computation given |g - g_exact| <= gaussKernelMaxError.
 * Lanes that cannot be proven (boundary-straddling or near-zero
 * power) are appended to `uncertain` (capacity n) and their counts
 * slot is left unwritten; returns how many were flagged. w[s] is the
 * sample's phase power pre-multiplied by the invocation scale.
 */
using SampleQuantizeFn = size_t (*)(const double *w, const double *g1,
                                    const double *g2, int n,
                                    const SampleQuantizeParams &p,
                                    int32_t *counts,
                                    int32_t *uncertain);

/** The portable quantize loop, always available. */
size_t sampleQuantizeBase(const double *w, const double *g1,
                          const double *g2, int n,
                          const SampleQuantizeParams &p,
                          int32_t *counts, int32_t *uncertain);

/** The AVX2+FMA build, or nullptr (same contract as the gaussian). */
SampleQuantizeFn sampleQuantizeAvx2OrNull();

/** Best quantize kernel for the running CPU. */
SampleQuantizeFn resolveSampleQuantize();

} // namespace lhr

#endif // LHR_SENSOR_GAUSS_KERNEL_HH
