/**
 * @file
 * AVX2+FMA build of the gaussian-pair kernel, written with explicit
 * 4-wide intrinsics: profiling showed the "branchless so the
 * auto-vectorizer can handle it" portable loop in gauss_kernel.inl
 * compiles to scalar code under -O2, and this kernel is the hottest
 * function of a full-grid sweep (DESIGN.md §8). The math is the same
 * as the portable loop — bit-exact log/sin/cos agreement between the
 * two builds is NOT required (and not promised by GaussKernelFn's
 * contract); both stay far inside gaussKernelMaxError and the
 * certainty-window fallback in sampling.cc makes the final ADC
 * counts independent of which build ran.
 *
 * The build system compiles only this file with -mavx2 -mfma (when
 * the toolchain targets x86-64); on other targets or toolchains the
 * guard below leaves the kernel out and the resolver falls back to
 * the base build. Runtime dispatch in resolveGaussKernel() checks
 * CPU support before this code ever executes.
 */

#include "sensor/gauss_kernel.hh"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

// Scalar tails for the final n % 4 lanes.
#define LHR_GAUSS_KERNEL_FN lhrGaussPairsAvx2Tail
#include "sensor/gauss_kernel.inl"
#undef LHR_GAUSS_KERNEL_FN
#define LHR_SAMPLE_QUANTIZE_FN lhrSampleQuantizeAvx2Tail
#include "sensor/sample_quantize.inl"
#undef LHR_SAMPLE_QUANTIZE_FN

namespace
{

/** p = p * x + c, 4-wide. */
inline __m256d
step(__m256d p, __m256d x, double c)
{
    return _mm256_fmadd_pd(p, x, _mm256_set1_pd(c));
}

} // namespace

void
lhrGaussPairsAvx2Impl(const double *u1, const double *u2, double *gcos,
                      double *gsin, size_t n)
{
    // Same constant splits as gauss_kernel.inl.
    const __m256d LN2_HI = _mm256_set1_pd(6.93147180369123816490e-01);
    const __m256d LN2_LO = _mm256_set1_pd(1.90821492927058770002e-10);
    const __m256d SQRT2 = _mm256_set1_pd(1.41421356237309514547);
    const __m256d TWO_PI = _mm256_set1_pd(6.28318530717958647693);
    const __m256d TWO_OVER_PI =
        _mm256_set1_pd(6.36619772367581382433e-01);
    const __m256d PIO2_HI = _mm256_set1_pd(1.57079632673412561417e+00);
    const __m256d PIO2_LO = _mm256_set1_pd(6.07710050650619224932e-11);

    const __m256d half = _mm256_set1_pd(0.5);
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d signBit = _mm256_set1_pd(-0.0);
    const __m256i mantissaMask =
        _mm256_set1_epi64x(0x000fffffffffffffll);
    const __m256i oneBits = _mm256_set1_epi64x(0x3ff0000000000000ll);
    // 2^52 + 1023: see the exponent extraction below.
    const __m256d expBias =
        _mm256_set1_pd(4503599627370496.0 + 1023.0);
    const __m256i expMagic = _mm256_set1_epi64x(0x4330000000000000ll);

    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        // ---- log(u1): u1 in (0,1) is normal, never subnormal ------
        const __m256d u = _mm256_loadu_pd(u1 + i);
        const __m256i bits = _mm256_castpd_si256(u);
        // Exponent to double without cvtepi64: (bits >> 52) is in
        // [0, 2046]; OR-ing the bit pattern of 2^52 on top makes the
        // lane the double 2^52 + e_raw, so one subtract de-biases.
        const __m256d eRaw = _mm256_castsi256_pd(
            _mm256_or_si256(_mm256_srli_epi64(bits, 52), expMagic));
        __m256d e = _mm256_sub_pd(eRaw, expBias);
        __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
            _mm256_and_si256(bits, mantissaMask), oneBits)); // [1, 2)
        const __m256d shrink =
            _mm256_cmp_pd(m, SQRT2, _CMP_GT_OQ);
        m = _mm256_blendv_pd(m, _mm256_mul_pd(m, half), shrink);
        e = _mm256_add_pd(e, _mm256_and_pd(shrink, one));

        const __m256d t = _mm256_div_pd(_mm256_sub_pd(m, one),
                                        _mm256_add_pd(m, one));
        const __m256d t2 = _mm256_mul_pd(t, t);
        // 2*atanh(t) = log(m); coefficients 2/(2k+1).
        __m256d p = _mm256_set1_pd(2.0 / 19.0);
        p = step(p, t2, 2.0 / 17.0);
        p = step(p, t2, 2.0 / 15.0);
        p = step(p, t2, 2.0 / 13.0);
        p = step(p, t2, 2.0 / 11.0);
        p = step(p, t2, 2.0 / 9.0);
        p = step(p, t2, 2.0 / 7.0);
        p = step(p, t2, 2.0 / 5.0);
        p = step(p, t2, 2.0 / 3.0);
        p = step(p, t2, 2.0);
        const __m256d logm = _mm256_mul_pd(t, p);
        const __m256d logu = _mm256_fmadd_pd(
            e, LN2_HI, _mm256_fmadd_pd(e, LN2_LO, logm));

        const __m256d r = _mm256_sqrt_pd(
            _mm256_mul_pd(_mm256_set1_pd(-2.0), logu));

        // ---- sin/cos(2 pi u2): quadrant-reduce to |x| <= pi/4 -----
        const __m256d theta =
            _mm256_mul_pd(TWO_PI, _mm256_loadu_pd(u2 + i));
        const __m256d qd = _mm256_round_pd(
            _mm256_mul_pd(theta, TWO_OVER_PI),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC); // 0..4
        const __m256d x = _mm256_fnmadd_pd(
            qd, PIO2_LO, _mm256_fnmadd_pd(qd, PIO2_HI, theta));

        const __m256d x2 = _mm256_mul_pd(x, x);
        __m256d sp = _mm256_set1_pd(-1.0 / 1307674368000.0); // -1/15!
        sp = step(sp, x2, 1.0 / 6227020800.0);               //  1/13!
        sp = step(sp, x2, -1.0 / 39916800.0);                // -1/11!
        sp = step(sp, x2, 1.0 / 362880.0);                   //  1/9!
        sp = step(sp, x2, -1.0 / 5040.0);                    // -1/7!
        sp = step(sp, x2, 1.0 / 120.0);                      //  1/5!
        sp = step(sp, x2, -1.0 / 6.0);                       // -1/3!
        const __m256d sinx = _mm256_fmadd_pd(
            _mm256_mul_pd(x, x2), sp, x);

        __m256d cp = _mm256_set1_pd(1.0 / 20922789888000.0); //  1/16!
        cp = step(cp, x2, -1.0 / 87178291200.0);             // -1/14!
        cp = step(cp, x2, 1.0 / 479001600.0);                //  1/12!
        cp = step(cp, x2, -1.0 / 3628800.0);                 // -1/10!
        cp = step(cp, x2, 1.0 / 40320.0);                    //  1/8!
        cp = step(cp, x2, -1.0 / 720.0);                     // -1/6!
        cp = step(cp, x2, 1.0 / 24.0);                       //  1/4!
        cp = step(cp, x2, -0.5);                             // -1/2!
        const __m256d cosx = _mm256_fmadd_pd(x2, cp, one);

        // cos(x + q pi/2), sin(x + q pi/2) by swap and sign. q is a
        // small non-negative integer-valued double: adding 2^52
        // parks it in the low mantissa bits, where integer tests
        // are cheap.
        const __m256i q = _mm256_and_si256(
            _mm256_castpd_si256(_mm256_add_pd(
                qd, _mm256_set1_pd(4503599627370496.0))),
            _mm256_set1_epi64x(0xf));
        const __m256i oneQ = _mm256_set1_epi64x(1);
        const __m256i twoQ = _mm256_set1_epi64x(2);
        const __m256d odd = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
            _mm256_and_si256(q, oneQ), oneQ));
        const __m256d sinNeg = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
            _mm256_and_si256(q, twoQ), twoQ));
        const __m256d cosNeg = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
            _mm256_and_si256(_mm256_add_epi64(q, oneQ), twoQ), twoQ));

        const __m256d cosMag = _mm256_blendv_pd(cosx, sinx, odd);
        const __m256d sinMag = _mm256_blendv_pd(sinx, cosx, odd);
        const __m256d cosVal =
            _mm256_xor_pd(cosMag, _mm256_and_pd(cosNeg, signBit));
        const __m256d sinVal =
            _mm256_xor_pd(sinMag, _mm256_and_pd(sinNeg, signBit));

        _mm256_storeu_pd(gcos + i, _mm256_mul_pd(r, cosVal));
        _mm256_storeu_pd(gsin + i, _mm256_mul_pd(r, sinVal));
    }

    if (i < n)
        lhrGaussPairsAvx2Tail(u1 + i, u2 + i, gcos + i, gsin + i,
                              n - i);
}

namespace
{

size_t
lhrSampleQuantizeAvx2Impl(const double *w, const double *g1,
                          const double *g2, int n,
                          const lhr::SampleQuantizeParams &p,
                          int32_t *counts, int32_t *uncertain)
{
    using lhr::PowerChannel;

    const __m256d rippleGain = _mm256_set1_pd(0.003);
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d rail = _mm256_set1_pd(PowerChannel::railVolts);
    const __m256d rated = _mm256_set1_pd(p.ratedAmps);
    const __m256d ratedNeg = _mm256_set1_pd(-p.ratedAmps);
    const __m256d overGain = _mm256_set1_pd(PowerChannel::overRangeGain);
    const __m256d zeroV = _mm256_set1_pd(PowerChannel::zeroCurrentVolts);
    const __m256d sens = _mm256_set1_pd(p.sens);
    const __m256d gain = _mm256_set1_pd(p.gainFactor);
    const __m256d offset = _mm256_set1_pd(p.offsetVolts);
    const __m256d noise = _mm256_set1_pd(p.noiseVolts);
    const __m256d vref = _mm256_set1_pd(PowerChannel::adcVref);
    const __m256d countSpan =
        _mm256_set1_pd(PowerChannel::adcCounts - 1);
    const __m256d zero = _mm256_setzero_pd();
    const __m256d half = _mm256_set1_pd(0.5);
    const __m256d window = _mm256_set1_pd(p.window);
    const __m256d guard = _mm256_set1_pd(p.zeroWattsGuard);
    const __m256d absMask =
        _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffll));
    const __m128i countMax =
        _mm_set1_epi32(PowerChannel::adcCounts - 1);
    const __m128i countMin = _mm_setzero_si128();

    size_t flagged = 0;
    int s = 0;
    for (; s + 4 <= n; s += 4) {
        // Same operation order as the scalar loop (no FMA here): the
        // fast path must track PowerChannel::outputVolts closely
        // enough that the certainty window's soundness argument
        // applies unchanged; plain mul/add keeps the two within an
        // ulp or two, far inside the window's 1000x margin.
        const __m256d trueW = _mm256_mul_pd(
            _mm256_loadu_pd(w + s),
            _mm256_add_pd(one,
                          _mm256_mul_pd(rippleGain,
                                        _mm256_loadu_pd(g1 + s))));
        const __m256d amps = _mm256_div_pd(trueW, rail);
        const __m256d high = _mm256_add_pd(
            rated,
            _mm256_mul_pd(_mm256_sub_pd(amps, rated), overGain));
        const __m256d low = _mm256_add_pd(
            ratedNeg,
            _mm256_mul_pd(_mm256_sub_pd(amps, ratedNeg), overGain));
        __m256d effective = _mm256_blendv_pd(
            amps, high, _mm256_cmp_pd(amps, rated, _CMP_GT_OQ));
        effective = _mm256_blendv_pd(
            effective, low,
            _mm256_cmp_pd(amps, ratedNeg, _CMP_LT_OQ));
        const __m256d volts = _mm256_add_pd(
            _mm256_add_pd(
                _mm256_add_pd(
                    zeroV,
                    _mm256_mul_pd(_mm256_mul_pd(sens, effective),
                                  gain)),
                offset),
            _mm256_mul_pd(noise, _mm256_loadu_pd(g2 + s)));
        const __m256d clamped =
            _mm256_min_pd(_mm256_max_pd(volts, zero), vref);
        const __m256d y = _mm256_mul_pd(_mm256_div_pd(clamped, vref),
                                        countSpan);

        const __m256d frac = _mm256_sub_pd(y, _mm256_floor_pd(y));
        const __m256d certain = _mm256_and_pd(
            _mm256_cmp_pd(trueW, guard, _CMP_GT_OQ),
            _mm256_cmp_pd(
                _mm256_and_pd(_mm256_sub_pd(frac, half), absMask),
                window, _CMP_GT_OQ));

        // (int)(y + 0.5): cvtt truncates toward zero like the cast.
        __m128i c = _mm256_cvttpd_epi32(_mm256_add_pd(y, half));
        c = _mm_min_epi32(_mm_max_epi32(c, countMin), countMax);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(counts + s), c);

        const int mask = _mm256_movemask_pd(certain);
        if (mask != 0xf) {
            for (int lane = 0; lane < 4; ++lane)
                if ((mask & (1 << lane)) == 0)
                    uncertain[flagged++] = s + lane;
        }
    }

    if (s < n) {
        // Tail indices come back relative to its base; rebase to s.
        const size_t tailFlagged = lhrSampleQuantizeAvx2Tail(
            w + s, g1 + s, g2 + s, n - s, p, counts + s,
            uncertain + flagged);
        for (size_t t = 0; t < tailFlagged; ++t)
            uncertain[flagged + t] += s;
        flagged += tailFlagged;
    }

    return flagged;
}

} // namespace

namespace lhr
{

GaussKernelFn
gaussKernelAvx2OrNull()
{
    return &lhrGaussPairsAvx2Impl;
}

SampleQuantizeFn
sampleQuantizeAvx2OrNull()
{
    return &lhrSampleQuantizeAvx2Impl;
}

} // namespace lhr

#else

namespace lhr
{

GaussKernelFn
gaussKernelAvx2OrNull()
{
    return nullptr;
}

} // namespace lhr

#endif
