/**
 * @file
 * The RAPL-style energy-counter backend.
 *
 * Post-2011 Intel parts expose package energy as a cumulative MSR:
 * a 32-bit counter of fixed energy units (2^-16 J) that the firmware
 * advances at a ~1ms update interval and that wraps modulo 2^32. A
 * software reader samples it once per 50Hz slot and differences
 * consecutive readings; correct readers difference in unsigned
 * 32-bit arithmetic so a natural wrap mid-session is harmless.
 *
 * The model reproduces those semantics deterministically: per-update
 * quantization to whole energy units, a per-device systematic gain
 * error (RAPL is a model, not a measurement), a random counter start
 * per session, and the two reader failure modes the fault injector
 * drives — a mis-handled wraparound (the recorded slot pegs at
 * wrapGlitchCode) and a stale read (the reader sees the previous
 * value: a zero-delta slot, then a double-delta catch-up).
 */

#ifndef LHR_SENSOR_RAPL_HH
#define LHR_SENSOR_RAPL_HH

#include <cstdint>

#include "sensor/sensor.hh"

namespace lhr
{

class RaplSensor;

/** One RAPL sampling session: the counter and the reader's state. */
class RaplSession : public SensorSession
{
  public:
    /** Draws the session's counter start from rng. */
    RaplSession(const RaplSensor &sensor, Rng &rng);

    SensorReading read(double true_watts, Rng &rng,
                      const SampleFault &fault) override;

  private:
    const RaplSensor &rapl;
    uint32_t counter;   ///< the MSR: always advances, wraps mod 2^32
    uint32_t lastRead;  ///< last value the reader consumed
};

/** The RAPL backend of one rig. */
class RaplSensor : public PowerSensor
{
  public:
    explicit RaplSensor(uint64_t device_seed);

    SensorBackend backend() const override
    {
        return SensorBackend::Rapl;
    }

    /**
     * A mis-handled wrap records this code: 2^21 units per 20ms slot
     * is 1600W, far outside any real delta, so the hardened
     * pipeline's rail screen rejects it. A stale read records 0
     * (railLowCode), rejected the same way.
     */
    int railHighCode() const override { return wrapGlitchCode; }
    int railLowCode() const override { return 0; }

    std::unique_ptr<SensorSession>
    beginSession(Rng &rng) const override;

    /** Systematic energy-model gain error of this device. */
    double deviceGain() const { return gain; }

    static constexpr double energyUnitJ = 1.0 / 65536.0;  // 2^-16 J
    static constexpr double updateHz = 1000.0;
    static constexpr int wrapGlitchCode = 1 << 21;

  private:
    double gain;  ///< about ±2%, fixed per device
};

} // namespace lhr

#endif // LHR_SENSOR_RAPL_HH
