/**
 * @file
 * Shared loop body of the sample-quantize kernel; see
 * gauss_kernel.hh. Included by gauss_kernel_base.cc and
 * gauss_kernel_avx2.cc with LHR_SAMPLE_QUANTIZE_FN set to the
 * function name each translation unit defines (the AVX2 build uses
 * it only for the final n % 4 tail).
 *
 * Mirrors PowerChannel::outputVolts + quantize op for op on the fast
 * path; lanes whose integer count is not provably independent of the
 * gaussian kernel's error (or whose power is close enough to 0 W to
 * reach the quantizer's negative-power panic) are flagged for the
 * caller's exact-libm fallback instead of quantized.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "sensor/channel.hh"

size_t
LHR_SAMPLE_QUANTIZE_FN(const double *w, const double *g1,
                       const double *g2, int n,
                       const lhr::SampleQuantizeParams &p,
                       int32_t *counts, int32_t *uncertain)
{
    size_t flagged = 0;
    for (int s = 0; s < n; ++s) {
        const double trueW = w[s] * (1.0 + 0.003 * g1[s]);
        const double amps = trueW / lhr::PowerChannel::railVolts;
        double effective = amps;
        if (amps > p.ratedAmps) {
            effective = p.ratedAmps +
                (amps - p.ratedAmps) * lhr::PowerChannel::overRangeGain;
        } else if (amps < -p.ratedAmps) {
            effective = -p.ratedAmps +
                (amps + p.ratedAmps) * lhr::PowerChannel::overRangeGain;
        }
        const double volts = lhr::PowerChannel::zeroCurrentVolts +
            p.sens * effective * p.gainFactor + p.offsetVolts +
            (0.0 + p.noiseVolts * g2[s]);
        const double clamped =
            std::clamp(volts, 0.0, lhr::PowerChannel::adcVref);
        const double y = clamped / lhr::PowerChannel::adcVref *
            (lhr::PowerChannel::adcCounts - 1);

        const double frac = y - std::floor(y);
        if (trueW > p.zeroWattsGuard &&
            std::fabs(frac - 0.5) > p.window) {
            const int c = static_cast<int>(y + 0.5); // lround, y >= 0
            counts[s] = std::clamp(
                c, 0, lhr::PowerChannel::adcCounts - 1);
        } else {
            uncertain[flagged++] = s;
        }
    }
    return flagged;
}
