/**
 * @file
 * Shared loop body of the Box-Muller kernel; see gauss_kernel.hh.
 *
 * Included by gauss_kernel_base.cc and gauss_kernel_avx2.cc with
 * LHR_GAUSS_KERNEL_FN set to the function name each translation unit
 * defines. The loop is written branchless over plain arrays so the
 * compiler's auto-vectorizer can go 4-wide under AVX2.
 *
 * Accuracy: log via an atanh series on m in [sqrt(1/2), sqrt(2)]
 * (|t| <= 0.1716, truncation < 1e-17), sin/cos via Taylor on
 * |x| <= pi/4 after quadrant reduction (truncation < 5e-17). With
 * rounding noise the per-gaussian error stays below ~1e-14, orders
 * of magnitude inside gaussKernelMaxError.
 */

#include <cmath>
#include <cstdint>
#include <cstring>

namespace
{

inline double
bitsToDouble(uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

inline uint64_t
doubleToBits(double d)
{
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

} // namespace

void
LHR_GAUSS_KERNEL_FN(const double *u1, const double *u2, double *gcos,
                    double *gsin, size_t n)
{
    // ln(2) split so that e * LN2_HI is exact for |e| <= 1024.
    constexpr double LN2_HI = 6.93147180369123816490e-01;
    constexpr double LN2_LO = 1.90821492927058770002e-10;
    constexpr double SQRT2 = 1.41421356237309514547;
    constexpr double TWO_PI = 6.28318530717958647693;
    constexpr double TWO_OVER_PI = 6.36619772367581382433e-01;
    // pi/2 split; q <= 4 keeps q * PIO2_HI exact.
    constexpr double PIO2_HI = 1.57079632673412561417e+00;
    constexpr double PIO2_LO = 6.07710050650619224932e-11;

    for (size_t i = 0; i < n; ++i) {
        // ---- log(u1): u1 in (0,1) is normal, never subnormal ------
        const uint64_t bits = doubleToBits(u1[i]);
        double e = static_cast<double>(
            static_cast<int64_t>(bits >> 52) - 1023);
        double m = bitsToDouble((bits & 0x000fffffffffffffull) |
                                0x3ff0000000000000ull); // [1, 2)
        const bool shrink = m > SQRT2;
        m = shrink ? 0.5 * m : m; // [sqrt(1/2), sqrt(2)]
        e = shrink ? e + 1.0 : e;

        const double t = (m - 1.0) / (m + 1.0);
        const double t2 = t * t;
        // 2*atanh(t) = log(m); coefficients 2/(2k+1).
        double p = 2.0 / 19.0;
        p = p * t2 + 2.0 / 17.0;
        p = p * t2 + 2.0 / 15.0;
        p = p * t2 + 2.0 / 13.0;
        p = p * t2 + 2.0 / 11.0;
        p = p * t2 + 2.0 / 9.0;
        p = p * t2 + 2.0 / 7.0;
        p = p * t2 + 2.0 / 5.0;
        p = p * t2 + 2.0 / 3.0;
        p = p * t2 + 2.0;
        const double logm = t * p;
        const double logu = e * LN2_HI + (logm + e * LN2_LO);

        const double r = std::sqrt(-2.0 * logu);

        // ---- sin/cos(2 pi u2): quadrant-reduce to |x| <= pi/4 -----
        const double theta = TWO_PI * u2[i];
        const double qd = std::nearbyint(theta * TWO_OVER_PI); // 0..4
        const double x = (theta - qd * PIO2_HI) - qd * PIO2_LO;
        const int q = static_cast<int>(qd);

        const double x2 = x * x;
        double sp = -1.0 / 1307674368000.0; // -1/15!
        sp = sp * x2 + 1.0 / 6227020800.0;  //  1/13!
        sp = sp * x2 - 1.0 / 39916800.0;    // -1/11!
        sp = sp * x2 + 1.0 / 362880.0;      //  1/9!
        sp = sp * x2 - 1.0 / 5040.0;        // -1/7!
        sp = sp * x2 + 1.0 / 120.0;         //  1/5!
        sp = sp * x2 - 1.0 / 6.0;           // -1/3!
        const double sinx = x + x * x2 * sp;

        double cp = 1.0 / 20922789888000.0; //  1/16!
        cp = cp * x2 - 1.0 / 87178291200.0; // -1/14!
        cp = cp * x2 + 1.0 / 479001600.0;   //  1/12!
        cp = cp * x2 - 1.0 / 3628800.0;     // -1/10!
        cp = cp * x2 + 1.0 / 40320.0;       //  1/8!
        cp = cp * x2 - 1.0 / 720.0;         // -1/6!
        cp = cp * x2 + 1.0 / 24.0;          //  1/4!
        cp = cp * x2 - 0.5;                 // -1/2!
        const double cosx = 1.0 + x2 * cp;

        // cos(x + q pi/2), sin(x + q pi/2) by swap and sign.
        const bool odd = (q & 1) != 0;
        const double cosMag = odd ? sinx : cosx;
        const double sinMag = odd ? cosx : sinx;
        const double cosSign = ((q + 1) & 2) != 0 ? -1.0 : 1.0;
        const double sinSign = (q & 2) != 0 ? -1.0 : 1.0;

        gcos[i] = r * (cosSign * cosMag);
        gsin[i] = r * (sinSign * sinMag);
    }
}
