/**
 * @file
 * Power trace logging.
 *
 * The paper's rig logs every 50Hz sensor sample to a host over USB
 * and computes average power offline (§2.5). PowerTraceLogger is
 * that logger: it records the timestamped raw ADC counts and decoded
 * watts of a sampling session and computes the summary statistics a
 * phase analysis needs (mean, extremes, percentiles).
 */

#ifndef LHR_SENSOR_TRACE_LOG_HH
#define LHR_SENSOR_TRACE_LOG_HH

#include <cstddef>
#include <memory>
#include <ostream>
#include <vector>

#include "fault/fault.hh"
#include "sensor/calibration.hh"
#include "sensor/channel.hh"
#include "sensor/sensor.hh"

namespace lhr
{

/** One logged sensor sample. */
struct TraceSample
{
    double timeSec;  ///< time since logging started
    int counts;      ///< raw ADC reading
    double watts;    ///< decoded through the calibration
};

/** Records and summarizes a power sampling session. */
class PowerTraceLogger
{
  public:
    /**
     * Bind to a Hall channel and its calibration (the historical
     * rig): logs through an internally owned HallSession.
     */
    PowerTraceLogger(const PowerChannel &channel,
                     const Calibration &calibration);

    /**
     * Bind to an already-begun sensor session of any backend. The
     * session must outlive the logger.
     */
    explicit PowerTraceLogger(SensorSession &session);

    /**
     * Sample a true power value at a timestamp (the harness calls
     * this at the 50Hz grid).
     */
    void sample(double time_sec, double true_watts, Rng &rng);

    /**
     * sample() with a fault decision applied. The sensor always
     * converts — the same rng draws are consumed as on the clean
     * path — and the fault acts on what the logger records: a lost
     * slot is counted but not logged, a railed slot records the
     * channel's rail counts, calibration drift rescales the counts
     * about the zero-current code, duplicates re-log the slot.
     */
    void sampleFaulted(double time_sec, double true_watts, Rng &rng,
                       const SampleFault &fault);

    /** Slots the logger missed (drops + post-disconnect). */
    size_t lostSamples() const { return lostCount; }

    /** Stale repeats logged beyond the real slots. */
    size_t duplicatedSamples() const { return duplicateCount; }

    /** All samples in arrival order. */
    const std::vector<TraceSample> &samples() const { return log; }

    size_t count() const { return log.size(); }

    /** Mean decoded power; panic()s when empty. */
    double meanW() const;

    /** Extremes of the decoded trace. */
    double minW() const;
    double maxW() const;

    /**
     * Percentile of decoded power in [0, 100]; linear interpolation
     * between order statistics.
     */
    double percentileW(double pct) const;

    /** Emit the trace as CSV (time_s, counts, watts). */
    void writeCsv(std::ostream &os) const;

    /** Drop all samples and reset the fault counters. */
    void clear()
    {
        log.clear();
        lostCount = 0;
        duplicateCount = 0;
    }

  private:
    std::unique_ptr<SensorSession> ownedSession; ///< legacy ctor only
    SensorSession &session;
    std::vector<TraceSample> log;
    size_t lostCount = 0;
    size_t duplicateCount = 0;
};

} // namespace lhr

#endif // LHR_SENSOR_TRACE_LOG_HH
