#include "sensor/rapl.hh"

#include <algorithm>
#include <cmath>

#include "sensor/channel.hh"

namespace lhr
{

RaplSensor::RaplSensor(uint64_t device_seed)
{
    // RAPL reports a power *model*'s output, not a measurement; its
    // systematic error is a fixed property of the part's fusing.
    Rng deviceRng(device_seed);
    gain = 1.0 + 0.02 * deviceRng.gaussian();
}

std::unique_ptr<SensorSession>
RaplSensor::beginSession(Rng &rng) const
{
    return std::make_unique<RaplSession>(*this, rng);
}

RaplSession::RaplSession(const RaplSensor &sensor, Rng &rng)
    : rapl(sensor), counter(static_cast<uint32_t>(rng.next()))
{
    // The reader primes itself with one read before the session, so
    // the first slot's delta is genuine.
    lastRead = counter;
}

SensorReading
RaplSession::read(double true_watts, Rng &, const SampleFault &fault)
{
    // Firmware updates between two reader visits: at 1000Hz there
    // are 20 updates per 50Hz slot, each adding a whole number of
    // energy units. Power is constant within a slot, so each update
    // adds the same quantized increment. Calibration drift maps to
    // the energy model's gain ramping.
    const double scaledW = true_watts * fault.powerScale;
    const double updateJ =
        scaledW * rapl.deviceGain() * fault.countsGain /
        RaplSensor::updateHz;
    const long units =
        std::lround(updateJ / RaplSensor::energyUnitJ);
    const int updates = static_cast<int>(
        RaplSensor::updateHz / PowerChannel::sampleHz);
    counter += static_cast<uint32_t>(units) *
               static_cast<uint32_t>(updates);

    // The reader differences in uint32 arithmetic, so a natural
    // counter wrap inside the slot is absorbed here. A stale read
    // returns the previous visible value: delta 0 now, and the next
    // good read catches up with the accumulated energy.
    const uint32_t returned = fault.stale ? lastRead : counter;
    uint32_t delta = returned - lastRead;
    lastRead = returned;

    int code = static_cast<int>(std::min<uint32_t>(
        delta, static_cast<uint32_t>(RaplSensor::wrapGlitchCode)));
    if (fault.wrapGlitch) {
        // The reader's wrap handling misfires and produces a
        // nonsense delta; the recorded slot pegs at the glitch code.
        code = RaplSensor::wrapGlitchCode;
    }
    const double watts =
        code * RaplSensor::energyUnitJ * PowerChannel::sampleHz;
    return {code, watts};
}

} // namespace lhr
