#include "sensor/channel.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lhr
{

double
sensorSensitivity(SensorVariant variant)
{
    switch (variant) {
      case SensorVariant::A5:  return 0.185;
      case SensorVariant::A30: return 0.066;
    }
    panic("sensorSensitivity: unknown variant");
}

PowerChannel::PowerChannel(SensorVariant variant, uint64_t device_seed)
    : sensorVariant(variant)
{
    Rng device(device_seed);
    // The datasheet's "typical total output error" of 1.5% is
    // dominated by gain error and offset, both stable per device.
    gainError = device.gaussian(0.0, 0.006);
    offsetVolts = device.gaussian(0.0, 0.008);
    noiseVolts = 0.004;
}

double
PowerChannel::ratedAmps() const
{
    return sensorVariant == SensorVariant::A5 ? 5.0 : 30.0;
}

double
PowerChannel::outputVolts(double amps, Rng &noise) const
{
    const double sens = sensorSensitivity(sensorVariant);
    // Linear inside the rated range; compressed beyond it.
    const double rated = ratedAmps();
    double effective = amps;
    if (amps > rated)
        effective = rated + (amps - rated) * overRangeGain;
    else if (amps < -rated)
        effective = -rated + (amps + rated) * overRangeGain;
    return zeroCurrentVolts + sens * effective * (1.0 + gainError) +
        offsetVolts + noise.gaussian(0.0, noiseVolts);
}

int
PowerChannel::quantize(double volts)
{
    const double clamped = std::clamp(volts, 0.0, adcVref);
    const int counts = static_cast<int>(
        std::lround(clamped / adcVref * (adcCounts - 1)));
    return std::clamp(counts, 0, adcCounts - 1);
}

int
PowerChannel::railHighCounts() const
{
    return quantize(zeroCurrentVolts +
                    sensorSensitivity(sensorVariant) * ratedAmps());
}

int
PowerChannel::railLowCounts() const
{
    return quantize(zeroCurrentVolts -
                    sensorSensitivity(sensorVariant) * ratedAmps());
}

int
PowerChannel::sampleCounts(double watts, Rng &noise) const
{
    if (watts < 0.0)
        panic("PowerChannel::sampleCounts: negative power");
    return quantize(outputVolts(railAmps(watts), noise));
}

} // namespace lhr
