#include "sensor/gauss_kernel.hh"

#define LHR_GAUSS_KERNEL_FN lhrGaussPairsBaseImpl
#include "sensor/gauss_kernel.inl"
#undef LHR_GAUSS_KERNEL_FN

#define LHR_SAMPLE_QUANTIZE_FN lhrSampleQuantizeBaseImpl
#include "sensor/sample_quantize.inl"
#undef LHR_SAMPLE_QUANTIZE_FN

namespace lhr
{

void
gaussPairsBase(const double *u1, const double *u2, double *gcos,
               double *gsin, size_t n)
{
    lhrGaussPairsBaseImpl(u1, u2, gcos, gsin, n);
}

GaussKernelFn
resolveGaussKernel()
{
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    if (__builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("fma")) {
        if (GaussKernelFn fn = gaussKernelAvx2OrNull())
            return fn;
    }
#endif
    return &gaussPairsBase;
}

size_t
sampleQuantizeBase(const double *w, const double *g1, const double *g2,
                   int n, const SampleQuantizeParams &p,
                   int32_t *counts, int32_t *uncertain)
{
    return lhrSampleQuantizeBaseImpl(w, g1, g2, n, p, counts,
                                     uncertain);
}

SampleQuantizeFn
resolveSampleQuantize()
{
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    if (__builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("fma")) {
        if (SampleQuantizeFn fn = sampleQuantizeAvx2OrNull())
            return fn;
    }
#endif
    return &sampleQuantizeBase;
}

} // namespace lhr
