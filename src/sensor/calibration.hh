/**
 * @file
 * Sensor calibration against a laboratory current source
 * (paper section 2.5): 28 reference currents, a linear fit from ADC
 * counts to amperes, and an R^2 quality gate of 0.999.
 */

#ifndef LHR_SENSOR_CALIBRATION_HH
#define LHR_SENSOR_CALIBRATION_HH

#include "sensor/channel.hh"
#include "stats/linfit.hh"
#include "util/rng.hh"

namespace lhr
{

/**
 * The counts-to-amperes calibration of one PowerChannel, produced by
 * sweeping a reference current source through the sensor.
 */
class Calibration
{
  public:
    /**
     * Run the 28-point calibration sweep. Reference currents span
     * 0.3A-3A for the 5A sensor and 2A-25A for the 30A sensor; each
     * point averages repeated ADC readings.
     */
    static Calibration calibrate(const PowerChannel &channel, Rng &rng);

    /** Decode an ADC reading (possibly averaged, hence double). */
    double ampsFromCounts(double counts) const;

    /** Decode an ADC reading directly to rail watts. */
    double wattsFromCounts(double counts) const;

    /** Goodness of the calibration fit. */
    double r2() const { return countsToAmps.r2; }

    const LinearFit &fit() const { return countsToAmps; }

    static constexpr int calibrationPoints = 28;
    static constexpr int readingsPerPoint = 64;
    static constexpr double r2Gate = 0.999;

  private:
    explicit Calibration(LinearFit fit) : countsToAmps(fit) {}

    LinearFit countsToAmps;
};

} // namespace lhr

#endif // LHR_SENSOR_CALIBRATION_HH
