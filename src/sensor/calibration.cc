#include "sensor/calibration.hh"

#include <vector>

#include "util/logging.hh"

namespace lhr
{

Calibration
Calibration::calibrate(const PowerChannel &channel, Rng &rng)
{
    const bool small = channel.variant() == SensorVariant::A5;
    const double lo = small ? 0.3 : 2.0;
    const double hi = small ? 3.0 : 25.0;

    std::vector<double> counts, amps;
    counts.reserve(calibrationPoints);
    amps.reserve(calibrationPoints);
    for (int point = 0; point < calibrationPoints; ++point) {
        const double current =
            lo + (hi - lo) * point / (calibrationPoints - 1);
        double sum = 0.0;
        for (int reading = 0; reading < readingsPerPoint; ++reading)
            sum += PowerChannel::quantize(
                channel.outputVolts(current, rng));
        counts.push_back(sum / readingsPerPoint);
        amps.push_back(current);
    }

    const LinearFit fit = fitLinear(counts, amps);
    if (fit.r2 < r2Gate) {
        warn(msgOf("sensor calibration fit R^2 = ", fit.r2,
                   " below the ", r2Gate, " gate"));
    }
    return Calibration(fit);
}

double
Calibration::ampsFromCounts(double counts) const
{
    return countsToAmps.at(counts);
}

double
Calibration::wattsFromCounts(double counts) const
{
    return ampsFromCounts(counts) * PowerChannel::railVolts;
}

} // namespace lhr
