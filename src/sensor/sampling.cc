#include "sensor/sampling.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "sensor/gauss_kernel.hh"
#include "util/arena.hh"
#include "util/logging.hh"

namespace lhr
{

double
sampleSessionWatts(const PowerChannel &channel,
                   const Calibration &calibration,
                   const double *phase_power_w, int phases,
                   double invocation_power_scale, int samples,
                   Rng &inv_rng)
{
    static const GaussKernelFn kernel = resolveGaussKernel();
    static const SampleQuantizeFn quantize = resolveSampleQuantize();
    thread_local Arena arena;
    arena.reset();

    if (samples <= 0 || phases <= 0)
        panic("sampleSessionWatts: empty session");

    // ---- Gaussian stream ------------------------------------------
    // The scalar loop draws 2 gaussians per sample: supply ripple
    // (G1), then sensor noise (G2). A Java preamble leaves the
    // second half of a Box-Muller pair cached in inv_rng; drain it
    // first (it is already exact), which shifts every following pair
    // by one slot. Gaussian stream slot i lands in (i odd ? G2 : G1)
    // [i / 2], so the two per-sample streams come out deinterleaved
    // for the batch quantizer.
    const size_t need = 2 * static_cast<size_t>(samples);
    double *G1 = arena.alloc<double>(samples);
    double *G2 = arena.alloc<double>(samples);
    const auto slot = [&](size_t i) -> double & {
        return (i & 1 ? G2 : G1)[i >> 1];
    };
    size_t drained = 0;
    while (inv_rng.hasPendingGaussian() && drained < need) {
        slot(drained) = inv_rng.gaussian();
        ++drained;
    }

    // Uniforms come from the real generator in the exact scalar
    // order (u1 positive-rejected, then u2), so the raw stream is
    // untouched; only log/sin/cos go through the batch kernel.
    const size_t pairs = (need - drained + 1) / 2;
    double *u1 = arena.alloc<double>(pairs);
    double *u2 = arena.alloc<double>(pairs);
    for (size_t j = 0; j < pairs; ++j) {
        u1[j] = inv_rng.uniformPositive();
        u2[j] = inv_rng.uniform();
    }
    double *gc = arena.alloc<double>(pairs);
    double *gs = arena.alloc<double>(pairs);
    kernel(u1, u2, gc, gs, pairs);
    for (size_t j = 0; j < pairs; ++j) {
        const size_t ci = drained + 2 * j;
        if (ci < need)
            slot(ci) = gc[j];
        if (ci + 1 < need)
            slot(ci + 1) = gs[j]; // last half may fall off: discarded
    }

    // Exact value of gaussian slot i, for fallback lanes.
    auto exactG = [&](size_t i) {
        if (i < drained)
            return slot(i); // drained halves were computed by libm
        const size_t rel = i - drained;
        const size_t j = rel >> 1;
        const double r = std::sqrt(-2.0 * std::log(u1[j]));
        const double theta = 2.0 * M_PI * u2[j];
        return (rel & 1) ? r * std::sin(theta) : r * std::cos(theta);
    };

    // ---- Certainty window -----------------------------------------
    // |d(ADC value)/d(gaussian)| is bounded per session; the window
    // keeps a 1000x margin over the kernel's error bound through
    // that sensitivity, so an accepted integer count provably equals
    // the exact-libm one.
    SampleQuantizeParams p;
    p.sens = sensorSensitivity(channel.variant());
    p.gainFactor = 1.0 + channel.deviceGainError();
    p.offsetVolts = channel.deviceOffsetVolts();
    p.noiseVolts = channel.sampleNoiseVolts();
    p.ratedAmps = channel.ratedAmps();
    const double countsPerVolt =
        (PowerChannel::adcCounts - 1) / PowerChannel::adcVref;

    double maxAbsW = 0.0;
    for (int k = 0; k < phases; ++k)
        maxAbsW = std::max(
            maxAbsW,
            std::fabs(phase_power_w[k] * invocation_power_scale));
    const double rippleSlope = countsPerVolt * p.sens *
        std::fabs(p.gainFactor) * maxAbsW * 0.003 /
        PowerChannel::railVolts;
    const double noiseSlope = countsPerVolt * p.noiseVolts;
    p.window = std::max(
        1e-6,
        1e3 * (rippleSlope + noiseSlope) * gaussKernelMaxError);
    // Same margin for the negative-power panic decision: a sample
    // this close to 0W goes through the exact path, which reproduces
    // sampleCounts' own check.
    p.zeroWattsGuard = std::max(
        1e-9, 1e3 * maxAbsW * 0.003 * gaussKernelMaxError);

    // ---- Quantize the whole session in batch ----------------------
    // W[s] = phase power x invocation scale, the sample's pre-ripple
    // watts; k = (s * phases) / samples tracked incrementally.
    double *W = arena.alloc<double>(samples);
    {
        int k = 0, rem = 0;
        for (int s = 0; s < samples; ++s) {
            W[s] = phase_power_w[k] * invocation_power_scale;
            rem += phases;
            while (rem >= samples) {
                rem -= samples;
                ++k;
            }
        }
    }

    int32_t *counts = arena.alloc<int32_t>(samples);
    int32_t *uncertain = arena.alloc<int32_t>(samples);
    const size_t flagged =
        quantize(W, G1, G2, samples, p, counts, uncertain);

    // Boundary-straddling (or near-zero power) lanes: redo with
    // exact libm gaussians and the quantizer's own rounding,
    // channel.sampleCounts op for op.
    for (size_t u = 0; u < flagged; ++u) {
        const int s = uncertain[u];
        const double g1e = exactG(2 * static_cast<size_t>(s));
        const double g2e = exactG(2 * static_cast<size_t>(s) + 1);
        const double trueWe = W[s] * (1.0 + 0.003 * g1e);
        if (trueWe < 0.0)
            panic("PowerChannel::sampleCounts: negative power");
        const double ampsE = trueWe / PowerChannel::railVolts;
        double effectiveE = ampsE;
        if (ampsE > p.ratedAmps) {
            effectiveE = p.ratedAmps +
                (ampsE - p.ratedAmps) * PowerChannel::overRangeGain;
        } else if (ampsE < -p.ratedAmps) {
            effectiveE = -p.ratedAmps +
                (ampsE + p.ratedAmps) * PowerChannel::overRangeGain;
        }
        const double voltsE = PowerChannel::zeroCurrentVolts +
            p.sens * effectiveE * p.gainFactor + p.offsetVolts +
            (0.0 + p.noiseVolts * g2e);
        const double clampedE =
            std::clamp(voltsE, 0.0, PowerChannel::adcVref);
        const int c = static_cast<int>(
            std::lround(clampedE / PowerChannel::adcVref *
                        (PowerChannel::adcCounts - 1)));
        counts[s] = std::clamp(c, 0, PowerChannel::adcCounts - 1);
    }

    // ---- Integrate ------------------------------------------------
    // calibration.wattsFromCounts(counts) inlined through the fit;
    // the sum stays sequential in sample order — reassociating it
    // would change the bits.
    const LinearFit &fit = calibration.fit();
    double wattsSum = 0.0;
    for (int s = 0; s < samples; ++s)
        wattsSum += fit.at(counts[s]) * PowerChannel::railVolts;
    return wattsSum;
}

} // namespace lhr
