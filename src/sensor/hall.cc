#include "sensor/hall.hh"

#include <algorithm>
#include <cmath>

#include "sensor/sampling.hh"
#include "util/fp.hh"

namespace lhr
{

SensorReading
HallSession::read(double true_watts, Rng &rng,
                  const SampleFault &fault)
{
    // The sensor always converts — the same rng draws are consumed
    // as on the clean path — and the fault acts on what gets
    // recorded: a railed slot records the rail counts, calibration
    // drift rescales the counts about the zero-current code. The
    // RAPL-only flags (wrapGlitch, stale) have no Hall equivalent.
    const double scaledW = true_watts * fault.powerScale;
    int counts = chan.sampleCounts(scaledW, rng);
    if (fault.railed)
        counts = chan.railHighCounts();
    if (!exactlyEqual(fault.countsGain, 1.0)) {
        // Drift scales the sensor transfer about the zero-current
        // output, so the recorded code drifts proportionally to the
        // distance from the zero code.
        const int zero =
            PowerChannel::quantize(PowerChannel::zeroCurrentVolts);
        const double shifted =
            zero + (counts - zero) * fault.countsGain;
        counts = std::clamp(
            static_cast<int>(std::lround(shifted)), 0,
            PowerChannel::adcCounts - 1);
    }
    return {counts, calib.wattsFromCounts(counts)};
}

HallEffectSensor::HallEffectSensor(SensorVariant variant,
                                   uint64_t device_seed,
                                   uint64_t cal_seed)
    : chan(variant, device_seed),
      calib([&] {
          Rng calRng(cal_seed);
          return Calibration::calibrate(chan, calRng);
      }())
{
}

std::unique_ptr<SensorSession>
HallEffectSensor::beginSession(Rng &) const
{
    // Draws nothing: the Hall chain has no per-session state, and
    // consuming a draw here would shift every downstream stream.
    return std::make_unique<HallSession>(chan, calib);
}

double
HallEffectSensor::sessionWatts(const double *phase_power_w, int phases,
                               double scale, int samples,
                               Rng &inv_rng) const
{
    return sampleSessionWatts(chan, calib, phase_power_w, phases,
                              scale, samples, inv_rng);
}

} // namespace lhr
