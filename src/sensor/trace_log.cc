#include "sensor/trace_log.hh"

#include <algorithm>
#include <cmath>

#include "sensor/hall.hh"
#include "stats/summary.hh"
#include "util/csv.hh"
#include "util/logging.hh"

namespace lhr
{

PowerTraceLogger::PowerTraceLogger(const PowerChannel &channel,
                                   const Calibration &calibration)
    : ownedSession(std::make_unique<HallSession>(channel, calibration)),
      session(*ownedSession)
{
}

PowerTraceLogger::PowerTraceLogger(SensorSession &session_)
    : session(session_)
{
}

void
PowerTraceLogger::sample(double time_sec, double true_watts, Rng &rng)
{
    const SensorReading r = session.read(true_watts, rng, SampleFault{});
    log.push_back({time_sec, r.code, r.watts});
}

void
PowerTraceLogger::sampleFaulted(double time_sec, double true_watts,
                                Rng &rng, const SampleFault &fault)
{
    // The session always converts (rng draws are consumed as on the
    // clean path); the fault's recording effects act on what the
    // logger keeps: a lost slot is counted but not logged,
    // duplicates re-log the slot.
    const SensorReading r = session.read(true_watts, rng, fault);
    if (fault.lost) {
        ++lostCount;
        return;
    }
    log.push_back({time_sec, r.code, r.watts});
    for (int i = 0; i < fault.extraCopies; ++i) {
        ++duplicateCount;
        log.push_back({time_sec, r.code, r.watts});
    }
}

double
PowerTraceLogger::meanW() const
{
    if (log.empty())
        panic("PowerTraceLogger: empty trace");
    double sum = 0.0;
    for (const auto &sample : log)
        sum += sample.watts;
    return sum / log.size();
}

double
PowerTraceLogger::minW() const
{
    if (log.empty())
        panic("PowerTraceLogger: empty trace");
    double lo = log.front().watts;
    for (const auto &sample : log)
        lo = std::min(lo, sample.watts);
    return lo;
}

double
PowerTraceLogger::maxW() const
{
    if (log.empty())
        panic("PowerTraceLogger: empty trace");
    double hi = log.front().watts;
    for (const auto &sample : log)
        hi = std::max(hi, sample.watts);
    return hi;
}

double
PowerTraceLogger::percentileW(double pct) const
{
    if (log.empty())
        panic("PowerTraceLogger: empty trace");
    if (pct < 0.0 || pct > 100.0)
        panic("PowerTraceLogger: percentile out of range");
    std::vector<double> watts;
    watts.reserve(log.size());
    for (const auto &sample : log)
        watts.push_back(sample.watts);
    return percentileOf(std::move(watts), pct);
}

void
PowerTraceLogger::writeCsv(std::ostream &os) const
{
    CsvWriter csv(os, {"time_s", "counts", "watts"});
    for (const auto &sample : log) {
        csv.beginRow();
        csv.field(sample.timeSec, 3);
        csv.field(static_cast<long>(sample.counts));
        csv.field(sample.watts, 3);
    }
}

} // namespace lhr
