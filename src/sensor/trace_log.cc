#include "sensor/trace_log.hh"

#include <algorithm>
#include <cmath>

#include "stats/summary.hh"
#include "util/csv.hh"
#include "util/logging.hh"

namespace lhr
{

PowerTraceLogger::PowerTraceLogger(const PowerChannel &channel,
                                   const Calibration &calibration)
    : sensorChannel(channel), calib(calibration)
{
}

void
PowerTraceLogger::sample(double time_sec, double true_watts, Rng &rng)
{
    const int counts = sensorChannel.sampleCounts(true_watts, rng);
    log.push_back({time_sec, counts, calib.wattsFromCounts(counts)});
}

void
PowerTraceLogger::sampleFaulted(double time_sec, double true_watts,
                                Rng &rng, const SampleFault &fault)
{
    const double scaledW = true_watts * fault.powerScale;
    int counts = sensorChannel.sampleCounts(scaledW, rng);
    if (fault.railed)
        counts = sensorChannel.railHighCounts();
    if (fault.countsGain != 1.0) {
        // Drift scales the sensor transfer about the zero-current
        // output, so the recorded code drifts proportionally to the
        // distance from the zero code.
        const int zero = PowerChannel::quantize(
            PowerChannel::zeroCurrentVolts);
        const double shifted = zero + (counts - zero) * fault.countsGain;
        counts = std::clamp(
            static_cast<int>(std::lround(shifted)), 0,
            PowerChannel::adcCounts - 1);
    }
    if (fault.lost) {
        ++lostCount;
        return;
    }
    log.push_back({time_sec, counts, calib.wattsFromCounts(counts)});
    for (int i = 0; i < fault.extraCopies; ++i) {
        ++duplicateCount;
        log.push_back({time_sec, counts, calib.wattsFromCounts(counts)});
    }
}

double
PowerTraceLogger::meanW() const
{
    if (log.empty())
        panic("PowerTraceLogger: empty trace");
    double sum = 0.0;
    for (const auto &sample : log)
        sum += sample.watts;
    return sum / log.size();
}

double
PowerTraceLogger::minW() const
{
    if (log.empty())
        panic("PowerTraceLogger: empty trace");
    double lo = log.front().watts;
    for (const auto &sample : log)
        lo = std::min(lo, sample.watts);
    return lo;
}

double
PowerTraceLogger::maxW() const
{
    if (log.empty())
        panic("PowerTraceLogger: empty trace");
    double hi = log.front().watts;
    for (const auto &sample : log)
        hi = std::max(hi, sample.watts);
    return hi;
}

double
PowerTraceLogger::percentileW(double pct) const
{
    if (log.empty())
        panic("PowerTraceLogger: empty trace");
    if (pct < 0.0 || pct > 100.0)
        panic("PowerTraceLogger: percentile out of range");
    std::vector<double> watts;
    watts.reserve(log.size());
    for (const auto &sample : log)
        watts.push_back(sample.watts);
    return percentileOf(std::move(watts), pct);
}

void
PowerTraceLogger::writeCsv(std::ostream &os) const
{
    CsvWriter csv(os, {"time_s", "counts", "watts"});
    for (const auto &sample : log) {
        csv.beginRow();
        csv.field(sample.timeSec, 3);
        csv.field(static_cast<long>(sample.counts));
        csv.field(sample.watts, 3);
    }
}

} // namespace lhr
