/**
 * @file
 * The power measurement signal chain (paper section 2.5).
 *
 * The paper isolates the processor's 12V supply on the motherboard,
 * inserts a Pololu ACS714 carrier (Allegro Hall-effect linear
 * current sensor, 185mV/A, 2.5V zero-current output, <1.5% typical
 * error), digitizes the output with an AVR data-logging stick, and
 * samples at 50Hz. The i7's higher current requires the 30A variant
 * (66mV/A). Each physical sensor is calibrated against 28 reference
 * currents with a linear fit (R^2 >= 0.999).
 *
 * We reproduce the same chain: a true chip power waveform is
 * converted to rail current, through the sensor transfer function
 * (with per-device gain/offset error and noise), quantized by a
 * 10-bit ADC, then decoded through the calibration fit. Measurement
 * error in the reproduced Table 2 comes from here.
 */

#ifndef LHR_SENSOR_CHANNEL_HH
#define LHR_SENSOR_CHANNEL_HH

#include <cstdint>

#include "util/rng.hh"

namespace lhr
{

/** ACS714 sensor variants used in the study. */
enum class SensorVariant
{
    A5,   ///< ±5A, 185 mV/A
    A30   ///< ±30A, 66 mV/A (used on the i7)
};

/** Sensitivity of a variant in volts per ampere. */
double sensorSensitivity(SensorVariant variant);

/**
 * One physical measurement channel: Hall sensor soldered into a
 * specific machine's 12V rail plus the logging ADC. Per-device gain
 * and offset errors are drawn once at construction (devices differ;
 * calibration removes most of the error).
 */
class PowerChannel
{
  public:
    /**
     * @param variant sensor model
     * @param device_seed per-device seed fixing its error terms
     */
    PowerChannel(SensorVariant variant, uint64_t device_seed);

    /** Sensor analog output voltage for a rail current, with noise. */
    double outputVolts(double amps, Rng &noise) const;

    /** Rated linear range of the variant in amperes. */
    double ratedAmps() const;

    /**
     * Fraction of incremental sensitivity retained beyond the rated
     * range: the Hall element compresses, so currents past the
     * rating read low — why the i7's rig needs the 30A part
     * (section 2.5).
     */
    static constexpr double overRangeGain = 0.25;

    /** One ADC sample (counts) for a true chip power in watts. */
    int sampleCounts(double watts, Rng &noise) const;

    /**
     * ADC counts of the sensor pegged at its positive/negative rail:
     * the ideal output at ±ratedAmps(), no noise or device error. A
     * saturated logger slot reads exactly railHighCounts(); the
     * hardened measurement pipeline detects railing by comparing
     * recorded counts against these (see MeasurementPolicy).
     */
    int railHighCounts() const;
    int railLowCounts() const;

    /** True rail current for a chip power (I = P / 12V). */
    static double railAmps(double watts) { return watts / railVolts; }

    SensorVariant variant() const { return sensorVariant; }

    /**
     * The device's fixed error terms and noise sigma. The batch
     * sampler (sensor/sampling.cc) replays outputVolts() op for op
     * over many samples at once, so it needs the same constants this
     * channel draws at construction.
     */
    double deviceGainError() const { return gainError; }
    double deviceOffsetVolts() const { return offsetVolts; }
    double sampleNoiseVolts() const { return noiseVolts; }

    static constexpr double railVolts = 12.0;
    static constexpr double zeroCurrentVolts = 2.5;
    static constexpr double sampleHz = 50.0;

    /** 10-bit ADC against a 5V reference. */
    static int quantize(double volts);
    static constexpr int adcCounts = 1024;
    static constexpr double adcVref = 5.0;

  private:
    SensorVariant sensorVariant;
    double gainError;    ///< multiplicative, about ±1%
    double offsetVolts;  ///< additive, about ±10mV
    double noiseVolts;   ///< gaussian sample noise sigma
};

} // namespace lhr

#endif // LHR_SENSOR_CHANNEL_HH
