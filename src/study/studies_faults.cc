/**
 * @file
 * The fault-injection ablation: how measurement confidence degrades
 * when the rig is flaky, raw versus recovered.
 *
 * The paper's methodology re-runs every experiment until the 95%
 * confidence intervals are tight (Table 2: time averages 1.2% and
 * never exceeds 2.2%; power averages 1.5% and never exceeds 7.1%).
 * That protocol implicitly assumes the rig itself is healthy. This
 * study injects each fault class at a representative rate into the
 * simulated sensor chain and measures the same experiments twice:
 * once through the naive pipeline that believes the logger (raw),
 * and once through the hardened pipeline (recovered — see
 * MeasurementPolicy). The table reports the bias against the
 * fault-free ground truth and the confidence interval each pipeline
 * achieves, against the paper's published worst-case bounds.
 */

#include "study/builtin.hh"

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "core/lab.hh"
#include "fault/fault.hh"
#include "harness/runner.hh"
#include "machine/processor.hh"
#include "study/study.hh"
#include "util/logging.hh"
#include "workload/benchmark.hh"

namespace lhr
{

namespace
{

/** The paper's worst-case relative 95% CI bounds (Table 2). */
constexpr double paperTimeCiBound = 0.022;
constexpr double paperPowerCiBound = 0.071;

struct FaultScenario
{
    FaultClass cls;
    double rate;
};

/**
 * One representative rate per class: per-sample classes at rates a
 * marginal logger really shows, session classes at rates that make
 * the fault land in a minority of invocations (the regime where a
 * naive mean is most misleading).
 */
std::vector<FaultScenario>
scenarios()
{
    return {
        {FaultClass::DroppedSample, 0.10},
        {FaultClass::DuplicatedSample, 0.10},
        {FaultClass::SensorSaturation, 0.02},
        {FaultClass::CalibrationDrift, 0.50},
        {FaultClass::LoggerDisconnect, 0.35},
        {FaultClass::ThermalThrottle, 0.40},
        {FaultClass::CorunInterference, 0.40},
    };
}

/**
 * Measure one experiment through a dedicated runner carrying the
 * plan and pipeline choice. A fresh runner per call keeps the
 * fault/policy combination from contaminating any cache; nullopt
 * when even the hardened pipeline could not recover.
 */
std::optional<Measurement>
measureUnder(uint64_t seed, const FaultPlan &plan, bool harden,
             const MachineConfig &cfg, const Benchmark &bench)
{
    ExperimentRunner runner(seed);
    MeasurementPolicy pol;
    pol.harden = harden;
    runner.setFaultPlan(plan);
    runner.setMeasurementPolicy(pol);
    try {
        return runner.measure(cfg, bench);
    } catch (const FaultError &) {
        return std::nullopt;
    }
}

std::string
recoveryFlags(const Measurement &m)
{
    std::string flags;
    auto append = [&flags](const std::string &part) {
        if (!flags.empty())
            flags += " ";
        flags += part;
    };
    if (m.retries > 0)
        append(msgOf("r", m.retries));
    if (m.extraInvocations > 0)
        append(msgOf("+", m.extraInvocations));
    if (m.outlierInvocations > 0)
        append(msgOf("x", m.outlierInvocations));
    if (m.degraded)
        append("DEGRADED");
    return flags.empty() ? "-" : flags;
}

void
runAblationFaults(Lab &lab, ReportContext &ctx)
{
    Sink &sink = ctx.out();
    const auto cfg = stockConfig(processorById("i7 (45)"));
    // One native SPEC benchmark (3 prescribed invocations — the
    // regime where one bad invocation wrecks the CI) and one Java
    // benchmark (20 invocations, more raw material to recover from).
    const std::vector<const Benchmark *> benches = {
        &benchmarkByName("mcf"), &benchmarkByName("db")};

    sink.prose(
        "Ablation: fault injection vs the hardened measurement "
        "pipeline\non the stock i7 (45).\n"
        "raw = believe the logger; recovered = validate sessions,\n"
        "retry, reject outliers, re-run to the CI gate "
        "(MeasurementPolicy).\n"
        "Paper worst-case 95% CI bounds (Table 2): time 2.2%, "
        "power 7.1%.\n"
        "Flags: rN = sessions retried, +N = CI-gate extra "
        "invocations,\nxN = outlier invocations rejected.\n\n");

    sink.beginTable(
        "faults",
        {leftColumn("Fault class"), {"Rate"}, leftColumn("Bench"),
         {"True W"}, {"Raw W"}, {"Raw err%"}, {"Raw CI%"}, {"Rec W"},
         {"Rec err%"}, {"Rec CI%"}, leftColumn("Flags")});

    int rawBusts = 0;      // raw CI beyond the paper's power bound
    int recRestored = 0;   // ... where recovery got back inside it
    for (const FaultScenario &scenario : scenarios()) {
        FaultPlan plan;
        plan.seed = lab.seed();
        plan.with(scenario.cls, scenario.rate);

        for (const Benchmark *bench : benches) {
            const Measurement &truth = lab.measure(cfg, *bench);
            const auto raw = measureUnder(lab.seed(), plan, false,
                                          cfg, *bench);
            const auto rec = measureUnder(lab.seed(), plan, true,
                                          cfg, *bench);

            sink.beginRow();
            sink.cell(std::string(faultClassName(scenario.cls)));
            sink.cell(scenario.rate, 2);
            sink.cell(bench->name);
            sink.cell(truth.powerW, 1);
            if (raw) {
                sink.cell(raw->powerW, 1);
                sink.cell(100.0 * (raw->powerW - truth.powerW) /
                              truth.powerW, 1);
                sink.cell(100.0 * raw->powerCi95Rel, 1);
            } else {
                sink.cell(std::string("-"));
                sink.cell(std::string("-"));
                sink.cell(std::string("-"));
            }
            if (rec) {
                sink.cell(rec->powerW, 1);
                sink.cell(100.0 * (rec->powerW - truth.powerW) /
                              truth.powerW, 1);
                sink.cell(100.0 * rec->powerCi95Rel, 1);
                sink.cell(recoveryFlags(*rec));
            } else {
                sink.cell(std::string("-"));
                sink.cell(std::string("-"));
                sink.cell(std::string("-"));
                sink.cell(std::string("UNRECOVERABLE"));
            }

            if (raw && raw->powerCi95Rel > paperPowerCiBound) {
                ++rawBusts;
                if (rec && rec->powerCi95Rel <= paperPowerCiBound)
                    ++recRestored;
            }
        }
    }
    sink.endTable();

    sink.prose(msgOf(
        "\nRows where the raw pipeline's power CI exceeds the "
        "paper's\n7.1% worst case: ", rawBusts,
        "; recovered back inside the bound: ", recRestored,
        ".\nThe hardened pipeline buys back the paper's protocol "
        "on a\nflaky rig; what it cannot buy back it flags instead "
        "of\nreporting quietly.\n"));

    // Keep the time bound in the report too: the fault model leaves
    // time measurement alone (faults live in the power chain), so
    // the time CI staying under 2.2% is the control experiment.
    (void)paperTimeCiBound;
}

} // namespace

void
registerFaultStudies(StudyRegistry &registry)
{
    registry.add(makeStudy(
        "ablation_faults",
        "Ablation: fault injection vs the hardened pipeline",
        [] { return std::vector<MachineConfig>{}; },
        runAblationFaults));
}

} // namespace lhr
