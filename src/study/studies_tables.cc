/**
 * @file
 * The paper's tables (1-5, plus the extended characterization
 * table) as registered studies.
 */

#include "study/builtin.hh"

#include <algorithm>
#include <array>
#include <map>
#include <optional>
#include <set>

#include "core/lab.hh"
#include "cpu/perf_model.hh"
#include "study/study.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace lhr
{

namespace
{

void
runTable1(Lab &lab, ReportContext &ctx)
{
    const auto &ref = lab.reference();
    Sink &sink = ctx.out();

    sink.prose("Table 1: Benchmark groups (61 benchmarks)\n\n");

    sink.beginTable("benchmarks",
                    {leftColumn("Group"), leftColumn("Suite"),
                     leftColumn("Name"), {"Paper ref (s)"},
                     {"Measured ref (s)"}, leftColumn("Description")});
    for (const auto group : allGroups()) {
        for (const auto *bench : benchmarksInGroup(group)) {
            sink.beginRow();
            sink.cell(groupName(group));
            sink.cell(suiteName(bench->suite));
            sink.cell(bench->name);
            sink.cell(bench->refTimeSec, 1);
            sink.cell(ref.refTimeSec(*bench), 1);
            sink.cell(bench->description);
        }
    }
    sink.endTable();
    sink.prose("\nTotal benchmarks: " +
               std::to_string(allBenchmarks().size()) + "\n");
}

void
runTable1x(Lab &, ReportContext &ctx)
{
    const auto &i7 = processorById("i7 (45)");
    const PerfModel model(i7);
    Sink &sink = ctx.out();

    sink.prose("Extended Table 1: benchmark characterization "
               "(model quantities, i7 (45))\n\n");

    sink.beginTable("characterization",
                    {leftColumn("Benchmark"), leftColumn("Group"),
                     {"MPKI@32K"}, {"@256K"}, {"@8M"}, {"misp/Ki"},
                     {"ILP"}, {"pfrac"}, {"jvmSvc"}, {"IPC i7"},
                     {"memCPI %"}});
    for (const auto &bench : allBenchmarks()) {
        const auto stack =
            model.threadCpi(bench, i7.stockClockGhz, 1, 1.0);
        sink.beginRow();
        sink.cell(bench.name);
        sink.cell(groupName(bench.group).substr(0, 9));
        sink.cell(bench.miss.missPerKi(32.0), 1);
        sink.cell(bench.miss.missPerKi(256.0), 1);
        sink.cell(bench.miss.missPerKi(8192.0), 2);
        sink.cell(bench.branchMispKi, 1);
        sink.cell(bench.ilp, 1);
        sink.cell(bench.parallelFraction, 2);
        sink.cell(bench.jvmServiceFraction, 2);
        sink.cell(stack.ipc(), 2);
        sink.cell(100.0 * stack.memory / stack.total(), 1);
    }
    sink.endTable();
}

struct CiAggregate
{
    double timeSum = 0.0, timeMax = 0.0;
    double powerSum = 0.0, powerMax = 0.0;
    int n = 0;

    void
    add(const Measurement &m)
    {
        timeSum += m.timeCi95Rel;
        timeMax = std::max(timeMax, m.timeCi95Rel);
        powerSum += m.powerCi95Rel;
        powerMax = std::max(powerMax, m.powerCi95Rel);
        ++n;
    }
};

void
runTable2(Lab &lab, ReportContext &ctx)
{
    // Paper Table 2 aggregates over all processor configurations;
    // we use the full 45-configuration set (prewarmed by the
    // declared grid, so the loop below is pure cache hits).
    CiAggregate overall;
    std::array<CiAggregate, 4> byGroup;

    for (const auto &cfg : standardConfigurations()) {
        for (const auto &bench : allBenchmarks()) {
            const auto &m = lab.measure(cfg, bench);
            overall.add(m);
            byGroup[static_cast<size_t>(bench.group)].add(m);
        }
    }

    Sink &sink = ctx.out();
    sink.prose(
        "Table 2: Aggregate 95% confidence intervals (percent)\n"
        "Paper: overall avg 1.2% / 2.2% time, 1.5% / 7.1% power\n\n");

    sink.beginTable("confidence",
                    {leftColumn(""), {"Time avg %"}, {"Time max %"},
                     {"Power avg %"}, {"Power max %"}});
    auto emit = [&](const std::string &label, const CiAggregate &ci) {
        sink.beginRow();
        sink.cell(label);
        sink.cell(100.0 * ci.timeSum / ci.n, 1);
        sink.cell(100.0 * ci.timeMax, 1);
        sink.cell(100.0 * ci.powerSum / ci.n, 1);
        sink.cell(100.0 * ci.powerMax, 1);
    };
    emit("Average", overall);
    for (size_t gi = 0; gi < byGroup.size(); ++gi)
        emit(groupName(allGroups()[gi]), byGroup[gi]);
    sink.endTable();
}

void
runTable3(Lab &, ReportContext &ctx)
{
    Sink &sink = ctx.out();
    sink.prose("Table 3: The eight experimental processors\n\n");

    sink.beginTable(
        "processors",
        {leftColumn("Processor"), leftColumn("uArch"),
         leftColumn("Codename"), leftColumn("sSpec"),
         leftColumn("Released"), {"USD"}, leftColumn("CMP/SMT"),
         {"LLC"}, {"GHz"}, {"nm"}, {"MTrans"}, {"mm2"},
         leftColumn("VID"), {"TDP W"}, leftColumn("Memory")});
    for (const auto &spec : allProcessors()) {
        sink.beginRow();
        sink.cell(spec.model);
        sink.cell(familyName(spec.family));
        sink.cell(spec.codename);
        sink.cell(spec.sSpec);
        sink.cell(spec.releaseDate);
        if (spec.releasePriceUsd > 0.0)
            sink.cell(static_cast<long>(spec.releasePriceUsd));
        else
            sink.cell(std::string("--"));
        sink.cell(msgOf(spec.cores, "C", spec.smtWays, "T"));
        sink.cell(spec.llcMb >= 1.0
                  ? msgOf(spec.llcMb, "M")
                  : msgOf(spec.llcMb * 1024.0, "K"));
        sink.cell(spec.stockClockGhz, 2);
        sink.cell(static_cast<long>(spec.tech().featureNm));
        sink.cell(spec.transistorsM, 0);
        sink.cell(spec.dieMm2, 0);
        if (spec.vidMaxV > 0.0) {
            sink.cell(msgOf(formatFixed(spec.vidMinV, 2), " - ",
                            formatFixed(spec.vidMaxV, 2)));
        } else {
            sink.cell(std::string("--"));
        }
        sink.cell(spec.tdpW, 0);
        sink.cell(spec.dram);
    }
    sink.endTable();
}

// Paper Table 4, Avg_w columns, for side-by-side comparison.
struct PaperRow
{
    const char *id;
    double perfAvgW;
    double powerAvgW;
};

constexpr PaperRow paperRows[] = {
    {"Pentium4 (130)", 0.82, 44.1},
    {"C2D (65)",       2.04, 26.4},
    {"C2Q (65)",       2.70, 58.1},
    {"i7 (45)",        4.46, 47.0},
    {"Atom (45)",      0.52,  2.4},
    {"C2D (45)",       2.54, 20.8},
    {"AtomD (45)",     0.74,  4.7},
    {"i5 (32)",        3.80, 25.7},
};

double
paperPerf(const std::string &id)
{
    for (const auto &row : paperRows)
        if (id == row.id)
            return row.perfAvgW;
    return 0.0;
}

double
paperPower(const std::string &id)
{
    for (const auto &row : paperRows)
        if (id == row.id)
            return row.powerAvgW;
    return 0.0;
}

void
runTable4(Lab &lab, ReportContext &ctx)
{
    Sink &sink = ctx.out();
    sink.prose(
        "Table 4: Average performance and power characteristics\n"
        "(speedup over reference | watts; paper Avg_w in "
        "brackets)\n\n");

    sink.beginTable("perfpower",
                    {leftColumn("Processor"), {"NN"}, {"NS"}, {"JN"},
                     {"JS"}, {"AvgW"}, {"AvgB"}, {"Min"}, {"Max"},
                     {"[paper AvgW]"}, {"P:NN"}, {"P:NS"}, {"P:JN"},
                     {"P:JS"}, {"P:AvgW"}, {"P:Min"}, {"P:Max"},
                     {"[paper P]"}});
    for (const auto &spec : allProcessors()) {
        const auto agg = lab.aggregate(stockConfig(spec));
        sink.beginRow();
        sink.cell(spec.id);
        for (const auto &g : agg.byGroup)
            sink.cell(g.perf, 2);
        sink.cell(agg.weighted.perf, 2);
        sink.cell(agg.simple.perf, 2);
        sink.cell(agg.minPerf, 2);
        sink.cell(agg.maxPerf, 2);
        sink.cell(paperPerf(spec.id), 2);
        for (const auto &g : agg.byGroup)
            sink.cell(g.powerW, 1);
        sink.cell(agg.weighted.powerW, 1);
        sink.cell(agg.minPowerW, 1);
        sink.cell(agg.maxPowerW, 1);
        sink.cell(paperPower(spec.id), 1);
    }
    sink.endTable();
}

void
runTable5(Lab &lab, ReportContext &ctx)
{
    // Collect frontier membership per group.
    std::map<std::string, std::set<std::string>> membership;
    std::set<std::string> allMembers;

    auto collect = [&](std::optional<Group> group,
                       const std::string &label) {
        for (const auto &pt : paretoFrontier45nm(
                 lab.runner(), lab.reference(), group)) {
            membership[pt.label].insert(label);
            allMembers.insert(pt.label);
        }
    };

    collect(std::nullopt, "Average");
    for (const auto group : allGroups())
        collect(group, groupName(group));

    Sink &sink = ctx.out();
    sink.prose(
        "Table 5: Pareto-efficient 45nm configurations per group\n"
        "(paper: 15 of 29 configurations appear; all AtomD configs\n"
        " absent; all Native Non-scalable picks are i7 configs)\n\n");

    std::vector<SinkColumn> columns = {leftColumn("Configuration"),
                                       leftColumn("Avg")};
    for (const auto group : allGroups())
        columns.push_back(leftColumn(groupName(group)));
    sink.beginTable("membership", std::move(columns));
    for (const auto &[label, groups] : membership) {
        sink.beginRow();
        sink.cell(label);
        sink.cell(groups.count("Average") ? "x" : "");
        for (const auto group : allGroups())
            sink.cell(groups.count(groupName(group)) ? "x" : "");
    }
    sink.endTable();

    sink.prose("\nConfigurations on some frontier: " +
               std::to_string(allMembers.size()) + " of " +
               std::to_string(configurations45nm().size()) + "\n");
}

} // namespace

void
registerTableStudies(StudyRegistry &registry)
{
    registry.add(makeStudy(
        "table1", "Table 1: the 61 benchmarks and their groups",
        [] { return std::vector<MachineConfig>{}; }, runTable1));

    registry.add(makeStudy(
        "table1x",
        "Extended Table 1: model-level benchmark characterization",
        [] { return std::vector<MachineConfig>{}; }, runTable1x));

    registry.add(makeStudy(
        "table2",
        "Table 2: aggregate 95% confidence intervals",
        [] { return standardConfigurations(); }, runTable2));

    registry.add(makeStudy(
        "table3", "Table 3: the eight experimental processors",
        [] { return std::vector<MachineConfig>{}; }, runTable3));

    registry.add(makeStudy(
        "table4",
        "Table 4: average performance and power per processor",
        [] {
            std::vector<MachineConfig> stock;
            for (const auto &spec : allProcessors())
                stock.push_back(stockConfig(spec));
            return stock;
        },
        runTable4));

    registry.add(makeStudy(
        "table5",
        "Table 5: Pareto-efficient 45nm configurations per group",
        [] { return configurations45nm(); }, runTable5));
}

} // namespace lhr
