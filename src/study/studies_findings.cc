/**
 * @file
 * The reproduction scorecard (every numbered finding of the paper
 * as a PASS/FAIL row) and the full dataset export, as registered
 * studies.
 */

#include "study/builtin.hh"

#include <algorithm>
#include <optional>
#include <set>

#include "core/lab.hh"
#include "study/study.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace lhr
{

namespace
{

GroupedEffect
effectFor(const std::vector<GroupedEffect> &effects,
          const std::string &label)
{
    for (const auto &e : effects)
        if (e.label == label)
            return e;
    return {};
}

void
runFindings(Lab &lab, ReportContext &ctx)
{
    auto &runner = lab.runner();
    const auto &ref = lab.reference();
    Sink &sink = ctx.out();

    sink.prose("Reproduction scorecard: the paper's findings "
               "against this laboratory\n\n");

    sink.beginTable("scorecard",
                    {leftColumn("Finding"), leftColumn("Claim"),
                     leftColumn("Measured"), leftColumn("Verdict")});
    auto row = [&](const std::string &id, const std::string &claim,
                   const std::string &measured, bool pass) {
        sink.beginRow();
        sink.cell(id);
        sink.cell(claim);
        sink.cell(measured);
        sink.cell(pass ? "PASS" : "FAIL");
    };

    // A1 — CMP not consistently energy efficient.
    {
        const auto effects = cmpStudy(runner, ref);
        const auto i7 = effectFor(effects, "i7 (45)");
        const auto i5 = effectFor(effects, "i5 (32)");
        row("A1", "CMP not consistently energy efficient",
            "NN energy i7 " + formatFixed(i7.byGroup[0].energy, 2) +
                ", i5 " + formatFixed(i5.byGroup[0].energy, 2),
            i7.byGroup[0].energy > 1.0 && i5.byGroup[0].energy > 1.0);
    }

    // A2 — SMT saves energy on i5 and Atom.
    {
        const auto effects = smtStudy(runner, ref);
        const double i5 = effectFor(effects, "i5 (32)").average.energy;
        const double atom =
            effectFor(effects, "Atom (45)").average.energy;
        row("A2", "SMT delivers energy savings (i5, Atom)",
            "energy i5 " + formatFixed(i5, 2) + ", Atom " +
                formatFixed(atom, 2),
            i5 < 0.95 && atom < 0.95);
    }

    // A3 — i5 energy-flat across clock; i7/C2D are not.
    {
        const auto effects = clockStudy(runner, ref);
        const double i5 = effectFor(effects, "i5 (32)").average.energy;
        const double i7 = effectFor(effects, "i7 (45)").average.energy;
        row("A3", "i5 energy flat vs clock; i7 not",
            "energy/2x i5 " + formatFixed(i5, 2) + ", i7 " +
                formatFixed(i7, 2),
            i5 < 1.1 && i7 > 1.3);
    }

    // A4/A5 — die shrinks cut energy at matched clocks, twice.
    {
        const auto matched = dieShrinkStudy(runner, ref, true);
        row("A4+A5", "Die shrinks cut energy ~2x, both generations",
            "Core " + formatFixed(matched[0].average.energy, 2) +
                ", Nehalem " +
                formatFixed(matched[1].average.energy, 2),
            matched[0].average.energy < 0.75 &&
                matched[1].average.energy < 0.75);
    }

    // A6/A7 — Nehalem moderately faster than Core; energy parity at
    // a fixed node; order of magnitude vs NetBurst.
    {
        const auto effects = uarchStudy(runner, ref);
        const auto core45 =
            effectFor(effects, "Core: i7 (45) / C2D (45)");
        const auto netburst =
            effectFor(effects, "NetBurst: i7 (45) / Pentium4 (130)");
        row("A6", "Nehalem beats Core at matched clock",
            "perf " + formatFixed(core45.average.perf, 2),
            core45.average.perf > 1.05);
        row("A7", "Energy parity at 45nm; 7x+ vs NetBurst",
            "energy vs Core " +
                formatFixed(core45.average.energy, 2) + ", vs P4 " +
                formatFixed(netburst.average.energy, 2),
            core45.average.energy > 0.75 &&
                core45.average.energy < 1.25 &&
                netburst.average.energy < 0.25);
    }

    // A8 — Turbo not energy efficient on i7.
    {
        const auto effects = turboStudy(runner, ref);
        const double i7 =
            effectFor(effects, "i7 (45) 4C2T").average.energy;
        const double i5 =
            effectFor(effects, "i5 (32) 2C2T").average.energy;
        row("A8", "Turbo costs energy on i7, neutral on i5",
            "energy i7 " + formatFixed(i7, 2) + ", i5 " +
                formatFixed(i5, 2),
            i7 > 1.05 && i5 < 1.06);
    }

    // A9 — power per transistor consistent within families.
    {
        const auto points = historicalOverview(runner, ref);
        double p4 = 0.0, maxOther = 0.0;
        for (const auto &pt : points) {
            if (pt.spec->family == Family::NetBurst)
                p4 = pt.powerPerMtran();
            else
                maxOther = std::max(maxOther, pt.powerPerMtran());
        }
        row("A9", "P4 is the power/transistor outlier",
            formatFixed(1e3 * p4, 0) + " vs <= " +
                formatFixed(1e3 * maxOther, 0) + " mW/MT",
            p4 > 2.0 * maxOther);
    }

    // W1 — JVM-induced parallelism.
    {
        const auto scaling = javaSingleThreadedCmp(runner);
        double sum = 0.0;
        for (const auto &[name, s] : scaling)
            sum += s;
        const double avg = sum / scaling.size();
        row("W1", "Single-threaded Java gains from a 2nd core",
            "avg " + formatFixed(avg, 2) + ", max " +
                formatFixed(scaling.front().second, 2) + " (" +
                scaling.front().first + ")",
            avg > 1.05 && scaling.front().second > 1.4);
    }

    // W2 — SMT hurts Java Non-scalable on the Pentium 4.
    {
        const auto effects = smtStudy(runner, ref);
        const auto p4 = effectFor(effects, "Pentium4 (130)");
        const double jn = p4.byGroup[static_cast<size_t>(
            Group::JavaNonScalable)].energy;
        row("W2", "P4 SMT costs Java Non-scalable energy",
            "JN energy " + formatFixed(jn, 2), jn > 1.0);
    }

    // W3 — Native Non-scalable is the power outlier.
    {
        const auto agg =
            lab.aggregate(stockConfig(processorById("i7 (45)")));
        const double nn = agg.group(Group::NativeNonScalable).powerW;
        const double others = std::min(
            {agg.group(Group::NativeScalable).powerW,
             agg.group(Group::JavaNonScalable).powerW,
             agg.group(Group::JavaScalable).powerW});
        row("W3", "Native Non-scalable draws the least power",
            formatFixed(nn, 1) + " W vs next " +
                formatFixed(others, 1) + " W",
            nn < others);
    }

    // W4 — Pareto frontiers are workload sensitive.
    {
        auto labels = [&](std::optional<Group> group) {
            std::set<std::string> set;
            for (const auto &pt :
                 paretoFrontier45nm(runner, ref, group))
                set.insert(pt.label);
            return set;
        };
        const auto nn = labels(Group::NativeNonScalable);
        const auto ns = labels(Group::NativeScalable);
        const auto jn = labels(Group::JavaNonScalable);
        row("W4", "Per-group Pareto frontiers differ",
            msgOf(nn.size(), " / ", ns.size(), " / ", jn.size(),
                  " members"),
            nn != ns && nn != jn && ns != jn);
    }

    sink.endTable();
}

void
runDataset(Lab &lab, ReportContext &ctx)
{
    const auto &ref = lab.reference();
    Sink &sink = ctx.out();

    sink.beginTable("dataset",
                    {{"configuration"}, {"processor"}, {"cores"},
                     {"smt"}, {"clock_ghz"}, {"turbo"}, {"benchmark"},
                     {"group"}, {"suite"}, {"time_s"}, {"time_ci95"},
                     {"power_w"}, {"power_ci95"}, {"energy_j"},
                     {"perf_vs_ref"}, {"energy_vs_ref"}},
                    TableStyle::Csv);
    for (const auto &cfg : standardConfigurations()) {
        for (const auto &bench : allBenchmarks()) {
            const auto &m = lab.measure(cfg, bench);
            sink.beginRow();
            sink.cell(cfg.label());
            sink.cell(cfg.spec->id);
            sink.cell(static_cast<long>(cfg.enabledCores));
            sink.cell(static_cast<long>(cfg.smtPerCore));
            sink.cell(cfg.clockGhz, 3);
            sink.cell(std::string(
                cfg.spec->hasTurbo
                    ? (cfg.turboEnabled ? "on" : "off") : "n/a"));
            sink.cell(bench.name);
            sink.cell(groupName(bench.group));
            sink.cell(suiteName(bench.suite));
            sink.cell(m.timeSec, 4);
            sink.cell(m.timeCi95Rel, 5);
            sink.cell(m.powerW, 3);
            sink.cell(m.powerCi95Rel, 5);
            sink.cell(m.energyJ(), 2);
            sink.cell(ref.refTimeSec(bench) / m.timeSec, 4);
            sink.cell(m.energyJ() / ref.refEnergyJ(bench), 4);
        }
    }
    sink.endTable();
}

std::vector<MachineConfig>
findingsGrid()
{
    std::vector<MachineConfig> grid;
    auto append = [&](const std::vector<MachineConfig> &configs) {
        grid.insert(grid.end(), configs.begin(), configs.end());
    };
    append(pairConfigs(cmpStudyPairs()));
    append(pairConfigs(smtStudyPairs()));
    append(pairConfigs(clockStudyPairs()));
    append(pairConfigs(dieShrinkPairs(true)));
    append(pairConfigs(uarchStudyPairs()));
    append(pairConfigs(turboStudyPairs()));
    append(javaSingleThreadedCmpConfigs());
    append({stockConfig(processorById("i7 (45)"))});
    append(configurations45nm());
    return grid;
}

} // namespace

void
registerFindingsStudies(StudyRegistry &registry)
{
    registry.add(makeStudy(
        "findings",
        "Reproduction scorecard: every paper finding, PASS/FAIL",
        findingsGrid, runFindings));

    registry.add(makeStudy(
        "dataset",
        "Full 45x61 measurement grid as companion-data CSV",
        [] { return standardConfigurations(); }, runDataset));
}

} // namespace lhr
