/**
 * @file
 * Per-translation-unit registration hooks for the builtin studies.
 * registerBuiltinStudies() calls each of these exactly once; the
 * explicit calls keep the studies alive through static linking,
 * where self-registering global objects would be garbage-collected.
 */

#ifndef LHR_STUDY_BUILTIN_HH
#define LHR_STUDY_BUILTIN_HH

namespace lhr
{

class StudyRegistry;

void registerFigureStudies(StudyRegistry &registry);
void registerTableStudies(StudyRegistry &registry);
void registerFindingsStudies(StudyRegistry &registry);
void registerModelAblationStudies(StudyRegistry &registry);
void registerLabAblationStudies(StudyRegistry &registry);
void registerFaultStudies(StudyRegistry &registry);
void registerHistoryStudies(StudyRegistry &registry);

} // namespace lhr

#endif // LHR_STUDY_BUILTIN_HH
