/**
 * @file
 * The post-paper history study: the paper's energy/performance
 * Pareto analysis (Figure 12) extended past 2011. Each era — the
 * paper's four process nodes, then the Sandy Bridge through
 * Skylake-SP server parts — contributes its configuration grid
 * (configurationsByEra()), and the study reports each era's
 * Pareto-efficient frontier, showing how the frontier kept moving
 * after the study period closed.
 */

#include "study/builtin.hh"

#include "core/lab.hh"
#include "stats/pareto.hh"
#include "study/study.hh"
#include "util/table.hh"

namespace lhr
{

namespace
{

std::vector<MachineConfig>
historyGrid()
{
    std::vector<MachineConfig> grid;
    for (const auto &era : configurationsByEra())
        grid.insert(grid.end(), era.configs.begin(),
                    era.configs.end());
    return grid;
}

void
runParetoHistory(Lab &lab, ReportContext &ctx)
{
    Sink &sink = ctx.out();
    sink.prose(
        "Pareto history: energy / performance frontiers by era\n"
        "(the paper's Figure 12 analysis, weighted workload average,\n"
        " extended past 2011: paper nodes measured on the Hall rig,\n"
        " server eras on their RAPL energy counters; performance and\n"
        " energy normalized to the paper's reference)\n\n");

    for (const auto &era : configurationsByEra()) {
        std::vector<ParetoPoint> points;
        points.reserve(era.configs.size());
        for (const auto &cfg : era.configs) {
            const ConfigAggregate agg =
                aggregateConfig(lab.runner(), lab.reference(), cfg);
            points.push_back(
                {cfg.label(), agg.weighted.perf, agg.weighted.energy});
        }
        const auto frontier = paretoFrontier(points);

        const std::string label = eraName(era.era);
        sink.prose(label + " (" + std::to_string(frontier.size()) +
                   " of " + std::to_string(points.size()) +
                   " configurations efficient):\n");
        sink.beginTable("frontier_" + label,
                        {leftColumn("Configuration"), {"Perf/Ref"},
                         {"Energy/Ref"}});
        for (const auto &pt : frontier) {
            sink.beginRow();
            sink.cell(pt.label);
            sink.cell(pt.performance, 2);
            sink.cell(pt.energy, 2);
        }
        sink.endTable();
        sink.prose("\n");
    }
}

} // namespace

void
registerHistoryStudies(StudyRegistry &registry)
{
    registry.add(makeStudy(
        "pareto_history",
        "Energy/performance Pareto frontiers per era, 130nm to "
        "Skylake-SP",
        historyGrid, runParetoHistory));
}

} // namespace lhr
