/**
 * @file
 * The study framework: every reproduced figure, table, and ablation
 * of the paper as a named, registered Study.
 *
 * A Study couples three things:
 *
 *   - an identity (name(), description()) the front ends list;
 *   - a declared measurement grid (grid()) — the machine
 *     configurations the study will read through the memo cache —
 *     so a driver can union many studies' grids into one parallel
 *     Lab::prewarm pass before anything runs serially;
 *   - the report itself (run()), emitted through a Sink so the same
 *     study renders as the historical console text, CSV, or JSON.
 *
 * Studies register in the global StudyRegistry via explicit
 * registration functions (static initializers would be dropped when
 * the study library is linked statically). The historical
 * per-figure binaries under bench/ are three-line shims over
 * studyMain().
 */

#ifndef LHR_STUDY_STUDY_HH
#define LHR_STUDY_STUDY_HH

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/report.hh"
#include "machine/processor.hh"

namespace lhr
{

class Lab;

/** The artifact format a study run emits. */
enum class OutputFormat
{
    Text,  ///< the historical console layout (byte-identical)
    Csv,   ///< every table as CSV, prose dropped
    Json,  ///< one JSON document per study
};

/** Parse "text" / "csv" / "json"; nullopt otherwise. */
std::optional<OutputFormat> parseOutputFormat(std::string_view text);

/** File extension (without dot) of a format: txt, csv, json. */
const char *outputFormatExtension(OutputFormat format);

/** Everything a running study reports through. */
class ReportContext
{
  public:
    ReportContext(Sink &sink, OutputFormat format)
        : sinkRef(sink), fmt(format)
    {
    }

    /** The sink the study writes its prose and tables to. */
    Sink &out() { return sinkRef; }

    /** The format the sink renders (rarely needed by studies). */
    OutputFormat format() const { return fmt; }

  private:
    Sink &sinkRef;
    OutputFormat fmt;
};

/** One reproduced figure, table, or ablation. */
class Study
{
  public:
    virtual ~Study() = default;

    /** Registry key and artifact basename, e.g. "fig04". */
    virtual const std::string &name() const = 0;

    /** One-line description shown by `lhrlab list`. */
    virtual const std::string &description() const = 0;

    /**
     * The machine configurations this study measures through the
     * memo cache. A driver that prewarms exactly this grid makes
     * the study's own measurement loop run entirely from cache.
     * Studies whose work bypasses the cache declare an empty grid.
     */
    virtual std::vector<MachineConfig> grid() const = 0;

    /** Compute and report. */
    virtual void run(Lab &lab, ReportContext &ctx) const = 0;
};

/** Build a Study from its parts (the usual registration idiom). */
std::unique_ptr<Study> makeStudy(
    std::string name, std::string description,
    std::function<std::vector<MachineConfig>()> grid,
    std::function<void(Lab &, ReportContext &)> run);

/** The process-wide name -> Study table. */
class StudyRegistry
{
  public:
    /** The global registry, with the builtin studies registered. */
    static StudyRegistry &instance();

    /** Register a study; panics on a duplicate name. */
    void add(std::unique_ptr<Study> study);

    /** Look a study up by name; nullptr when absent. */
    const Study *find(const std::string &name) const;

    /** Every registered study, in registration order. */
    std::vector<const Study *> all() const;

  private:
    std::vector<std::unique_ptr<Study>> studies;
    std::map<std::string, size_t> byName;
};

/** Options of a study run (the shared CLI surface). */
struct StudyOptions
{
    OutputFormat format = OutputFormat::Text;

    /** Artifact directory; empty writes to stdout. */
    std::string outDir;

    /** Prewarm worker threads; 0 = ThreadPool default. */
    int threads = 0;

    /** Skip the prewarm pass (measure serially on demand). */
    bool prewarm = true;
};

/**
 * The union of the studies' declared grids, deduplicated by full
 * configuration identity (label() truncates the clock).
 */
std::vector<MachineConfig> unionGrid(
    const std::vector<const Study *> &studies);

/** Run one study into an explicit sink (no prewarm; test seam). */
void runStudy(Lab &lab, const Study &study, Sink &sink,
              OutputFormat format = OutputFormat::Text);

/**
 * Run studies in order: one union-grid prewarm, then each study
 * serially into stdout or `<outDir>/<name>.<ext>`.
 */
int runStudies(Lab &lab, const std::vector<const Study *> &studies,
               const StudyOptions &options);

/**
 * The `lhrlab run` command body. `args` holds study names (or
 * --all) and options: --format=text|csv|json, --out DIR, --seed N,
 * --jobs N, --no-prewarm.
 */
int runStudyCommand(const std::vector<std::string> &args);

/** List registered studies; names only (for scripting) or a table. */
void listStudies(std::ostream &os, bool namesOnly);

/** main() body of a per-study shim binary. */
int studyMain(const char *name, int argc, char **argv);

/** Register every builtin study (idempotent via instance()). */
void registerBuiltinStudies(StudyRegistry &registry);

} // namespace lhr

#endif // LHR_STUDY_STUDY_HH
