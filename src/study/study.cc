#include "study/study.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <utility>

#include "core/lab.hh"
#include "study/builtin.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace lhr
{

// ---- formats ----------------------------------------------------------

std::optional<OutputFormat>
parseOutputFormat(std::string_view text)
{
    if (text == "text")
        return OutputFormat::Text;
    if (text == "csv")
        return OutputFormat::Csv;
    if (text == "json")
        return OutputFormat::Json;
    return std::nullopt;
}

const char *
outputFormatExtension(OutputFormat format)
{
    switch (format) {
      case OutputFormat::Text: return "txt";
      case OutputFormat::Csv: return "csv";
      case OutputFormat::Json: return "json";
    }
    panic("unknown output format");
}

// ---- makeStudy --------------------------------------------------------

namespace
{

class LambdaStudy : public Study
{
  public:
    LambdaStudy(std::string name, std::string description,
                std::function<std::vector<MachineConfig>()> grid,
                std::function<void(Lab &, ReportContext &)> run)
        : studyName(std::move(name)),
          studyDescription(std::move(description)),
          gridFn(std::move(grid)), runFn(std::move(run))
    {
    }

    const std::string &name() const override { return studyName; }

    const std::string &
    description() const override
    {
        return studyDescription;
    }

    std::vector<MachineConfig>
    grid() const override
    {
        return gridFn ? gridFn() : std::vector<MachineConfig>{};
    }

    void
    run(Lab &lab, ReportContext &ctx) const override
    {
        runFn(lab, ctx);
    }

  private:
    std::string studyName;
    std::string studyDescription;
    std::function<std::vector<MachineConfig>()> gridFn;
    std::function<void(Lab &, ReportContext &)> runFn;
};

} // namespace

std::unique_ptr<Study>
makeStudy(std::string name, std::string description,
          std::function<std::vector<MachineConfig>()> grid,
          std::function<void(Lab &, ReportContext &)> run)
{
    if (!run)
        panic("makeStudy: study '" + name + "' has no run function");
    return std::make_unique<LambdaStudy>(
        std::move(name), std::move(description), std::move(grid),
        std::move(run));
}

// ---- registry ---------------------------------------------------------

StudyRegistry &
StudyRegistry::instance()
{
    static StudyRegistry &reg = []() -> StudyRegistry & {
        static StudyRegistry r;
        registerBuiltinStudies(r);
        return r;
    }();
    return reg;
}

void
StudyRegistry::add(std::unique_ptr<Study> study)
{
    if (!study)
        panic("StudyRegistry: null study");
    const std::string &name = study->name();
    if (byName.count(name))
        panic("StudyRegistry: duplicate study '" + name + "'");
    byName[name] = studies.size();
    studies.push_back(std::move(study));
}

const Study *
StudyRegistry::find(const std::string &name) const
{
    const auto it = byName.find(name);
    return it == byName.end() ? nullptr : studies[it->second].get();
}

std::vector<const Study *>
StudyRegistry::all() const
{
    std::vector<const Study *> out;
    out.reserve(studies.size());
    for (const auto &study : studies)
        out.push_back(study.get());
    return out;
}

void
registerBuiltinStudies(StudyRegistry &registry)
{
    registerFigureStudies(registry);
    registerTableStudies(registry);
    registerFindingsStudies(registry);
    registerModelAblationStudies(registry);
    registerLabAblationStudies(registry);
    registerFaultStudies(registry);
    registerHistoryStudies(registry);
}

// ---- running ----------------------------------------------------------

namespace
{

/** Full-precision configuration identity (label() rounds the clock). */
std::string
configKey(const MachineConfig &cfg)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s|%d|%d|%.17g|%d",
                  cfg.spec->id.c_str(),
                  static_cast<int>(cfg.enabledCores),
                  static_cast<int>(cfg.smtPerCore), cfg.clockGhz,
                  cfg.turboEnabled ? 1 : 0);
    return buf;
}

std::unique_ptr<Sink>
makeSink(std::ostream &os, OutputFormat format, const Study &study,
         uint64_t seed)
{
    switch (format) {
      case OutputFormat::Text:
        return std::make_unique<TextSink>(os);
      case OutputFormat::Csv:
        return std::make_unique<CsvSink>(os);
      case OutputFormat::Json:
        return std::make_unique<JsonSink>(os, study.name(),
                                          study.description(), seed);
    }
    panic("unknown output format");
}

} // namespace

std::vector<MachineConfig>
unionGrid(const std::vector<const Study *> &studies)
{
    std::vector<MachineConfig> grid;
    std::set<std::string> seen;
    for (const Study *study : studies) {
        for (const auto &cfg : study->grid()) {
            if (seen.insert(configKey(cfg)).second)
                grid.push_back(cfg);
        }
    }
    return grid;
}

void
runStudy(Lab &lab, const Study &study, Sink &sink, OutputFormat format)
{
    ReportContext ctx(sink, format);
    study.run(lab, ctx);
    sink.close();
}

int
runStudies(Lab &lab, const std::vector<const Study *> &studies,
           const StudyOptions &options)
{
    if (studies.empty())
        fatal("no studies selected (see: lhrlab list)");
    if (options.outDir.empty() && studies.size() > 1 &&
        options.format != OutputFormat::Text) {
        fatal("csv/json output of multiple studies needs --out DIR");
    }

    if (options.prewarm) {
        const auto grid = unionGrid(studies);
        if (!grid.empty())
            lab.prewarm(grid, {.threads = options.threads});
    }

    if (!options.outDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options.outDir, ec);
        if (ec)
            fatal("cannot create " + options.outDir + ": " +
                  ec.message());
    }

    size_t index = 0;
    for (const Study *study : studies) {
        ++index;
        std::ofstream file;
        std::ostream *os = &std::cout;
        std::string path;
        if (!options.outDir.empty()) {
            path = options.outDir + "/" + study->name() + "." +
                   outputFormatExtension(options.format);
            file.open(path, std::ios::binary);
            if (!file)
                fatal("cannot write " + path);
            os = &file;
        } else if (studies.size() > 1) {
            // Several text reports share stdout; banner them. A
            // single study stays byte-identical to its historical
            // binary.
            std::cout << "=== " << study->name() << " ===\n";
        }

        const auto sink =
            makeSink(*os, options.format, *study, lab.seed());
        runStudy(lab, *study, *sink, options.format);

        if (!path.empty()) {
            std::cerr << "[" << index << "/" << studies.size() << "] "
                      << study->name() << " -> " << path << "\n";
        }
    }
    return 0;
}

// ---- CLI --------------------------------------------------------------

void
listStudies(std::ostream &os, bool namesOnly)
{
    const auto studies = StudyRegistry::instance().all();
    if (namesOnly) {
        for (const Study *study : studies)
            os << study->name() << "\n";
        return;
    }
    TableWriter table;
    table.addColumn("Study", TableWriter::Align::Left);
    table.addColumn("Grid");
    table.addColumn("Description", TableWriter::Align::Left);
    for (const Study *study : studies) {
        table.beginRow();
        table.cell(study->name());
        table.cell(static_cast<long>(study->grid().size()));
        table.cell(study->description());
    }
    table.print(os);
    os << "(" << studies.size() << " studies)\n";
}

int
runStudyCommand(const std::vector<std::string> &args)
{
    StudyOptions options;
    std::vector<std::string> names;
    bool all = false;

    auto valueOf = [&](const std::string &opt, size_t &i,
                       const std::string &inline_value,
                       bool has_inline) -> std::string {
        if (has_inline)
            return inline_value;
        if (i + 1 >= args.size())
            fatal("option " + opt + " needs a value");
        return args[++i];
    };

    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        std::string opt = arg, inlineValue;
        bool hasInline = false;
        if (const auto eq = arg.find('=');
            arg.rfind("--", 0) == 0 && eq != std::string::npos) {
            opt = arg.substr(0, eq);
            inlineValue = arg.substr(eq + 1);
            hasInline = true;
        }

        if (opt == "--all") {
            all = true;
        } else if (opt == "--format") {
            const auto value =
                valueOf(opt, i, inlineValue, hasInline);
            const auto format = parseOutputFormat(value);
            if (!format)
                fatal("unknown format '" + value +
                      "' (text|csv|json)");
            options.format = *format;
        } else if (opt == "--out") {
            options.outDir = valueOf(opt, i, inlineValue, hasInline);
        } else if (opt == "--seed") {
            const auto value =
                valueOf(opt, i, inlineValue, hasInline);
            const auto seed = parseSeed(value);
            if (!seed)
                fatal("malformed --seed '" + value + "'");
            setSeedOverride(seed);
        } else if (opt == "--jobs") {
            const auto value =
                valueOf(opt, i, inlineValue, hasInline);
            // Strict parse: atoi would quietly turn "banana" into 0
            // (= hardware concurrency), hiding the typo.
            const Expected<long> jobs = parseInt(value, 0, 1024);
            if (!jobs.ok())
                fatal("--jobs: " + jobs.status().message());
            options.threads = static_cast<int>(jobs.value());
        } else if (opt == "--no-prewarm") {
            options.prewarm = false;
        } else if (arg.rfind("--", 0) == 0) {
            fatal("unknown option " + arg);
        } else {
            names.push_back(arg);
        }
    }

    const auto &registry = StudyRegistry::instance();
    std::vector<const Study *> studies;
    if (all) {
        if (!names.empty())
            fatal("--all does not combine with study names");
        studies = registry.all();
    } else {
        for (const auto &name : names) {
            const Study *study = registry.find(name);
            if (!study)
                fatal("unknown study '" + name +
                      "' (see: lhrlab list)");
            studies.push_back(study);
        }
    }

    Lab lab;
    return runStudies(lab, studies, options);
}

int
studyMain(const char *name, int argc, char **argv)
{
    std::vector<std::string> args = {name};
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);
    return runStudyCommand(args);
}

} // namespace lhr
