/**
 * @file
 * Ablation studies that measure through the laboratory — compiler
 * and JVM-vendor comparisons, co-location and SPECrate
 * multiprogramming, power instrumentation, DVFS returns, metric and
 * weighting choices.
 */

#include "study/builtin.hh"

#include <algorithm>
#include <optional>

#include "analysis/dvfs_study.hh"
#include "analysis/energy_metrics.hh"
#include "core/lab.hh"
#include "harness/corun.hh"
#include "harness/multiprog.hh"
#include "jvm/vendors.hh"
#include "power/meters.hh"
#include "stats/summary.hh"
#include "study/study.hh"
#include "system/wall_power.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workload/compiler.hh"

namespace lhr
{

namespace
{

void
runAblationCompilers(Lab &lab, ReportContext &ctx)
{
    const auto cfg = stockConfig(processorById("C2D (45)"));
    Sink &sink = ctx.out();

    sink.prose(
        "Ablation: icc 11.1 -o3 vs gcc 4.4.1 -O3 on C2D (45)\n"
        "(paper section 2.1: icc consistently better on SPEC; icc\n"
        " fails to produce correct code for many PARSEC "
        "benchmarks)\n\n");

    Summary intGain, fpGain;
    std::vector<std::string> miscompiled;

    for (const auto &bench : allBenchmarks()) {
        if (bench.language() != Language::Native)
            continue;
        const auto gccBuild =
            compileBenchmark(bench, NativeCompiler::Gcc441);
        const auto iccBuild =
            compileBenchmark(bench, NativeCompiler::Icc11);
        if (!iccBuild) {
            miscompiled.push_back(bench.name);
            continue;
        }
        const double tGcc = lab.measure(cfg, *gccBuild).timeSec;
        const double tIcc = lab.measure(cfg, *iccBuild).timeSec;
        const double speedup = tGcc / tIcc;
        if (bench.fpShare > 0.3)
            fpGain.add(speedup);
        else
            intGain.add(speedup);
    }

    sink.beginTable("speedups",
                    {leftColumn("Workload class"),
                     {"icc speedup over gcc"}, {"min"}, {"max"}});
    sink.beginRow();
    sink.cell(std::string("Integer-dominated"));
    sink.cell(intGain.mean(), 3);
    sink.cell(intGain.min(), 3);
    sink.cell(intGain.max(), 3);
    sink.beginRow();
    sink.cell(std::string("FP-dominated"));
    sink.cell(fpGain.mean(), 3);
    sink.cell(fpGain.min(), 3);
    sink.cell(fpGain.max(), 3);
    sink.endTable();

    std::string tail = "\nPARSEC benchmarks icc miscompiles (" +
                       std::to_string(miscompiled.size()) + "):";
    for (const auto &name : miscompiled)
        tail += " " + name;
    tail += "\n";
    sink.prose(tail);
}

void
emitCorunMatrix(CoRunner &corunner, Sink &sink,
                const MachineConfig &cfg,
                const std::vector<const Benchmark *> &set)
{
    sink.prose(cfg.label() +
               " (rows: victim slowdown when co-run with column)\n");
    const auto matrix = corunner.matrix(cfg, set);
    std::vector<SinkColumn> columns = {leftColumn("victim \\ rival")};
    for (const auto *bench : set)
        columns.push_back({bench->name});
    sink.beginTable("corun_" + cfg.label(), std::move(columns));
    for (size_t i = 0; i < set.size(); ++i) {
        sink.beginRow();
        sink.cell(set[i]->name);
        for (size_t j = 0; j < set.size(); ++j)
            sink.cell(matrix[i][j], 2);
    }
    sink.endTable();
    sink.prose("\n");
}

void
runAblationCorun(Lab &lab, ReportContext &ctx)
{
    CoRunner corunner(lab.runner());
    Sink &sink = ctx.out();

    const std::vector<const Benchmark *> set = {
        &benchmarkByName("hmmer"),
        &benchmarkByName("povray"),
        &benchmarkByName("gcc"),
        &benchmarkByName("xalancbmk"),
        &benchmarkByName("mcf"),
        &benchmarkByName("libquantum"),
    };

    sink.prose("Ablation: heterogeneous co-run interference\n\n");

    // The 2006-class part: 4MB shared L2 and a DDR2 FSB make
    // colocation expensive.
    emitCorunMatrix(corunner, sink,
                    stockConfig(processorById("C2D (65)")), set);
    // The 2008 i7: the 8MB L3 and triple-channel DDR3 absorb most of
    // the same interference.
    emitCorunMatrix(
        corunner, sink,
        withSmt(withTurbo(stockConfig(processorById("i7 (45)")),
                          false),
                false),
        set);

    sink.prose(
        "Interference shrank generation over generation: bigger\n"
        "shared caches and integrated memory controllers are why.\n");
}

void
runAblationDvfsReturns(Lab &lab, ReportContext &ctx)
{
    Sink &sink = ctx.out();
    sink.prose(
        "Ablation: DVFS diminishing returns across technology\n"
        "(energy-optimal clock and the cost of running at the\n"
        " extremes; Turbo disabled)\n\n");

    sink.beginTable("returns",
                    {leftColumn("Processor"), {"nm"},
                     leftColumn("Range GHz"), {"E-optimal GHz"},
                     {"E(min)/E(opt)"}, {"E(max)/E(opt)"},
                     {"Static share @min %"}});
    for (const char *id :
         {"C2D (65)", "i7 (45)", "C2D (45)", "i5 (32)"}) {
        const auto profile =
            dvfsProfile(lab.runner(), lab.reference(), id, 7);
        sink.beginRow();
        sink.cell(profile.processorId);
        sink.cell(static_cast<long>(profile.featureNm));
        sink.cell(msgOf(formatFixed(profile.fMinGhz, 1), " - ",
                        formatFixed(profile.fMaxGhz, 1)));
        sink.cell(profile.energyOptimalGhz, 2);
        sink.cell(profile.energyAtMinRel, 3);
        sink.cell(profile.energyAtMaxRel, 3);
        sink.cell(100.0 * profile.staticShareAtMin, 1);
    }
    sink.endTable();

    sink.prose(
        "\nOn the 45nm parts the lowest clock is (near-)optimal; on\n"
        "the 32nm i5 the optimum moves INTO the range — down-clocking\n"
        "past it wastes static energy, the diminishing-returns\n"
        "effect.\n");
}

void
runAblationJvmVendors(Lab &lab, ReportContext &ctx)
{
    const auto cfg = stockConfig(processorById("i7 (45)"));
    Sink &sink = ctx.out();

    sink.prose(
        "Ablation: JVM vendors on i7 (45)\n"
        "(paper section 2.2: similar average performance, individual\n"
        " benchmarks vary substantially, up to 10% aggregate power\n"
        " difference)\n\n");

    struct VendorRow
    {
        std::string name;
        double meanTimeRel;
        double meanPowerRel;
        double worstSlowdown;
        double bestSpeedup;
        std::string worstBench, bestBench;
    };
    std::vector<VendorRow> rows;

    for (const auto vendor : allJvmVendors()) {
        const auto &profile = jvmVendorProfile(vendor);
        Summary timeRel, powerRel;
        double worst = 0.0, best = 1e9;
        std::string worstBench, bestBench;
        for (const auto &bench : allBenchmarks()) {
            if (bench.language() != Language::Java)
                continue;
            const auto adjusted = applyJvmVendor(bench, vendor);
            const auto &base = lab.measure(cfg, bench);
            const auto &m = lab.measure(cfg, adjusted);
            const double tRel = m.timeSec / base.timeSec;
            timeRel.add(tRel);
            powerRel.add(m.powerW / base.powerW);
            if (tRel > worst) {
                worst = tRel;
                worstBench = bench.name;
            }
            if (tRel < best) {
                best = tRel;
                bestBench = bench.name;
            }
        }
        rows.push_back({profile.name + " (" + profile.build + ")",
                        timeRel.mean(), powerRel.mean(), worst, best,
                        worstBench, bestBench});
    }

    sink.beginTable("vendors",
                    {leftColumn("JVM"), {"Time vs HotSpot"},
                     {"Power vs HotSpot"}, {"Worst bench"},
                     leftColumn(""), {"Best bench"}, leftColumn("")});
    for (const auto &row : rows) {
        sink.beginRow();
        sink.cell(row.name);
        sink.cell(row.meanTimeRel, 3);
        sink.cell(row.meanPowerRel, 3);
        sink.cell(row.worstSlowdown, 2);
        sink.cell(row.worstBench);
        sink.cell(row.bestSpeedup, 2);
        sink.cell(row.bestBench);
    }
    sink.endTable();
}

void
runAblationMeters(Lab &lab, ReportContext &ctx)
{
    const auto cfg = stockConfig(processorById("i7 (45)"));
    Sink &sink = ctx.out();

    sink.prose(
        "Ablation: on-chip structure meters vs external Hall sensor\n"
        "on the stock i7 (45) (the paper's recommendation: expose\n"
        " per-structure power meters)\n\n");

    sink.beginTable("meters",
                    {leftColumn("Benchmark"), {"Meter pkg W"},
                     {"Hall W"}, {"Err %"}, {"Cores %"}, {"LLC %"},
                     {"Uncore %"}});
    for (const char *name :
         {"omnetpp", "povray", "fluidanimate", "db", "xalan",
          "pjbb2005"}) {
        const auto &bench = benchmarkByName(name);
        double duration = 0.0;
        const auto meters = lab.runner().meterRun(cfg, bench, &duration);
        const double pkgW =
            meters.energyJ(MeterDomain::Package) / duration;
        const double hallW = lab.measure(cfg, bench).powerW;

        const double coresJ = meters.energyJ(MeterDomain::Cores);
        const double llcJ = meters.energyJ(MeterDomain::Llc);
        const double uncoreJ = meters.energyJ(MeterDomain::Uncore);
        const double pkgJ = meters.energyJ(MeterDomain::Package);

        sink.beginRow();
        sink.cell(bench.name);
        sink.cell(pkgW, 1);
        sink.cell(hallW, 1);
        sink.cell(100.0 * (hallW - pkgW) / pkgW, 1);
        sink.cell(100.0 * coresJ / pkgJ, 1);
        sink.cell(100.0 * llcJ / pkgJ, 1);
        sink.cell(100.0 * uncoreJ / pkgJ, 1);
    }
    sink.endTable();

    sink.prose(
        "\nThe external sensor sees only the package total; the\n"
        "meters attribute it. Note how the cores' share collapses\n"
        "for uncore-heavy workloads.\n");
}

void
runAblationMetrics(Lab &lab, ReportContext &ctx)
{
    Sink &sink = ctx.out();
    sink.prose(
        "Ablation: efficiency metric choice at 45nm "
        "(equal-weight average)\n"
        "(energy favours the lowest-power points; ED^2P favours\n"
        " performance — the 'best' design is metric-dependent)\n\n");

    for (const auto metric :
         {EfficiencyMetric::Energy, EfficiencyMetric::Edp,
          EfficiencyMetric::Ed2p}) {
        const auto ranked = rankConfigurations45nm(
            lab.runner(), lab.reference(), metric, std::nullopt);
        sink.prose("Top 5 by " +
                   std::string(efficiencyMetricName(metric)) + ":\n");
        sink.beginTable(
            "top5_" + std::string(efficiencyMetricName(metric)),
            {leftColumn("Configuration"), {"Perf/Ref"},
             {"Energy/Ref"}, {"Value"}});
        for (size_t i = 0; i < 5 && i < ranked.size(); ++i) {
            sink.beginRow();
            sink.cell(ranked[i].label);
            sink.cell(ranked[i].perf, 2);
            sink.cell(ranked[i].energy, 3);
            sink.cell(ranked[i].value, 3);
        }
        sink.endTable();
        sink.prose("\n");
    }
}

void
runAblationSpecrate(Lab &lab, ReportContext &ctx)
{
    RateRunner rate(lab.runner());
    Sink &sink = ctx.out();

    sink.prose(
        "Ablation: SPECrate-style multiprogramming (paper section 2.1\n"
        "scope-out). Copies of single-threaded benchmarks sharing a\n"
        "chip; throughput relative to one copy.\n\n");

    for (const char *procId : {"i7 (45)", "C2Q (65)"}) {
        const auto cfg =
            withTurbo(stockConfig(processorById(procId)), false);
        sink.prose(cfg.label() + ":\n");
        sink.beginTable("rate_" + cfg.label(),
                        {leftColumn("Benchmark"), {"Copies"},
                         {"Throughput"}, {"Efficiency"}, {"Power W"},
                         {"J/copy"}});
        for (const char *name : {"hmmer", "mcf", "libquantum"}) {
            const auto &bench = benchmarkByName(name);
            for (const auto &r : rate.sweep(cfg, bench)) {
                if (r.copies != 1 && r.copies != 2 &&
                    r.copies != cfg.contexts())
                    continue;
                sink.beginRow();
                sink.cell(r.copies == 1 ? bench.name : "");
                sink.cell(static_cast<long>(r.copies));
                sink.cell(r.throughput, 2);
                sink.cell(r.rateEfficiency, 2);
                sink.cell(r.powerW, 1);
                sink.cell(r.energyPerCopyJ, 0);
            }
        }
        sink.endTable();
        sink.prose("\n");
    }

    sink.prose(
        "Compute-bound hmmer rates near-linearly; mcf loses\n"
        "throughput to cache sharing; libquantum saturates DRAM\n"
        "bandwidth. Energy per copy can IMPROVE with load even as\n"
        "per-copy performance degrades — the fixed uncore/leakage\n"
        "cost amortizes.\n");
}

void
runAblationWallPower(Lab &lab, ReportContext &ctx)
{
    const auto platform = PlatformConfig::desktop2009();
    Sink &sink = ctx.out();

    sink.prose(
        "Ablation: chip (12V rail) vs wall (clamp ammeter) power\n"
        "(stock configurations, busiest and leanest benchmark per\n"
        " machine; desktop-2009 platform around each chip)\n\n");

    sink.beginTable("wall",
                    {leftColumn("Processor"), {"Chip W"}, {"Wall W"},
                     {"Chip share %"}, {"Wall/nameplate %"}});
    for (const auto &spec : allProcessors()) {
        const WallPowerModel wallModel(spec, platform);
        const auto cfg = stockConfig(spec);
        double maxChip = 0.0, maxDram = 0.0;
        for (const auto &bench : allBenchmarks()) {
            const auto profile = lab.runner().profile(cfg, bench);
            if (profile.power.total() > maxChip) {
                maxChip = profile.power.total();
                maxDram = profile.dramGBs;
            }
        }
        const auto wall = wallModel.at(maxChip, maxDram);
        sink.beginRow();
        sink.cell(spec.id);
        sink.cell(wall.chipW, 1);
        sink.cell(wall.wallW, 1);
        sink.cell(100.0 * wall.chipShare(), 1);
        sink.cell(100.0 * wall.wallW / wallModel.nameplateW(), 1);
    }
    sink.endTable();

    sink.prose(
        "\nTwo methodological lessons the paper draws:\n"
        "1. The chip is only part of wall power (here 5-45%) — a\n"
        "   clamp ammeter cannot isolate processor effects, hence\n"
        "   the Hall sensor on the 12V rail.\n"
        "2. Fan et al.: even the hungriest workload stays far below\n"
        "   nameplate (here well under 60%) — provisioning by\n"
        "   nameplate wastes datacenter capacity.\n");
}

void
runAblationWeighting(Lab &lab, ReportContext &ctx)
{
    Sink &sink = ctx.out();
    sink.prose(
        "Ablation: equal-group weighting (Avg_w) vs simple benchmark\n"
        "mean (Avg_b) across the stock processors (paper Table 4)\n\n");

    std::vector<std::string> ids;
    std::vector<double> avgW, avgB;
    for (const auto &spec : allProcessors()) {
        const auto agg = lab.aggregate(stockConfig(spec));
        ids.push_back(spec.id);
        avgW.push_back(agg.weighted.perf);
        avgB.push_back(agg.simple.perf);
    }
    const auto rankW = rankOf(avgW, false);
    const auto rankB = rankOf(avgB, false);

    sink.beginTable("weighting",
                    {leftColumn("Processor"), {"AvgW"}, {"rank"},
                     {"AvgB"}, {"rank"}, {"Bias %"}});
    int rankChanges = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
        sink.beginRow();
        sink.cell(ids[i]);
        sink.cell(avgW[i], 2);
        sink.cell(static_cast<long>(rankW[i]));
        sink.cell(avgB[i], 2);
        sink.cell(static_cast<long>(rankB[i]));
        sink.cell(100.0 * (avgB[i] - avgW[i]) / avgW[i], 1);
        if (rankW[i] != rankB[i])
            ++rankChanges;
    }
    sink.endTable();
    sink.prose("\nRank changes between weightings: " +
               std::to_string(rankChanges) + " of " +
               std::to_string(ids.size()) +
               "\n(the 27 Native Non-scalable benchmarks dominate "
               "Avg_b,\n deflating multicore parts)\n");
}

std::vector<MachineConfig>
stockI7Grid()
{
    return {stockConfig(processorById("i7 (45)"))};
}

} // namespace

void
registerLabAblationStudies(StudyRegistry &registry)
{
    registry.add(makeStudy(
        "ablation_compilers",
        "Ablation: icc vs gcc on the native benchmarks",
        [] { return std::vector<MachineConfig>{}; },
        runAblationCompilers));

    registry.add(makeStudy(
        "ablation_corun",
        "Ablation: heterogeneous co-location interference",
        [] { return std::vector<MachineConfig>{}; },
        runAblationCorun));

    registry.add(makeStudy(
        "ablation_dvfs_returns",
        "Ablation: DVFS diminishing returns across technology",
        [] {
            std::vector<MachineConfig> grid;
            for (const char *id :
                 {"C2D (65)", "i7 (45)", "C2D (45)", "i5 (32)"}) {
                const auto configs = clockSweepConfigs(id, 7);
                grid.insert(grid.end(), configs.begin(),
                            configs.end());
            }
            return grid;
        },
        runAblationDvfsReturns));

    registry.add(makeStudy(
        "ablation_jvm_vendors",
        "Ablation: JVM vendor influence on power and performance",
        stockI7Grid, runAblationJvmVendors));

    registry.add(makeStudy(
        "ablation_meters",
        "Ablation: on-chip structure meters vs Hall sensor",
        stockI7Grid, runAblationMeters));

    registry.add(makeStudy(
        "ablation_metrics",
        "Ablation: energy vs EDP vs ED^2P ranking at 45nm",
        [] { return configurations45nm(); }, runAblationMetrics));

    registry.add(makeStudy(
        "ablation_specrate",
        "Ablation: SPECrate-style multiprogramming",
        [] { return std::vector<MachineConfig>{}; },
        runAblationSpecrate));

    registry.add(makeStudy(
        "ablation_wall_power",
        "Ablation: chip vs wall power and nameplate provisioning",
        [] { return std::vector<MachineConfig>{}; },
        runAblationWallPower));

    registry.add(makeStudy(
        "ablation_weighting",
        "Ablation: equal-group vs simple-mean aggregation",
        [] {
            std::vector<MachineConfig> stock;
            for (const auto &spec : allProcessors())
                stock.push_back(stockConfig(spec));
            return stock;
        },
        runAblationWeighting));
}

} // namespace lhr
