/**
 * @file
 * The paper's figures (1-12) as registered studies. Each run()
 * reproduces the corresponding historical bench binary's output
 * byte-for-byte through a TextSink; the declared grids let a driver
 * prewarm everything the figures measure in one parallel pass.
 */

#include "study/builtin.hh"

#include <optional>

#include "core/lab.hh"
#include "stats/summary.hh"
#include "study/study.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace lhr
{

namespace
{

std::vector<MachineConfig>
stockConfigs()
{
    std::vector<MachineConfig> stock;
    for (const auto &spec : allProcessors())
        stock.push_back(stockConfig(spec));
    return stock;
}

std::vector<MachineConfig>
concatConfigs(std::vector<MachineConfig> a,
              const std::vector<MachineConfig> &b)
{
    a.insert(a.end(), b.begin(), b.end());
    return a;
}

void
runFig01(Lab &lab, ReportContext &ctx)
{
    const auto scaling = javaScalability(lab.runner());
    Sink &sink = ctx.out();

    sink.prose(
        "Figure 1: Scalability of Java multithreaded benchmarks on "
        "i7 (45)\n(4C2T / 1C1T, descending; paper: sunflow ~4.3 down "
        "to h2 ~1.05,\n Java Scalable group average 3.4)\n\n");

    sink.beginTable("scalability",
                    {leftColumn("Benchmark"), {"4C2T / 1C1T"},
                     leftColumn("Group")});
    double scalableSum = 0.0;
    int scalableCount = 0;
    for (const auto &[name, speedup] : scaling) {
        const auto &bench = benchmarkByName(name);
        sink.beginRow();
        sink.cell(name);
        sink.cell(speedup, 2);
        sink.cell(groupName(bench.group));
        if (bench.group == Group::JavaScalable) {
            scalableSum += speedup;
            ++scalableCount;
        }
    }
    sink.endTable();
    sink.prose("\nJava Scalable group average: " +
               formatFixed(scalableSum / scalableCount, 2) +
               " (paper: 3.4)\n");
}

void
runFig02(Lab &lab, ReportContext &ctx)
{
    Sink &sink = ctx.out();
    sink.prose(
        "Figure 2: Measured benchmark power vs TDP per processor\n"
        "(paper: TDP strictly above measured; widest range on "
        "i7/i5)\n\n");

    sink.beginTable("power_vs_tdp",
                    {leftColumn("Processor"), {"TDP W"}, {"Min W"},
                     {"Mean W"}, {"Max W"}, {"Max/Min"}, {"TDP/Max"}});
    for (const auto &spec : allProcessors()) {
        const auto cfg = stockConfig(spec);
        double minW = 1e9, maxW = 0.0, sumW = 0.0;
        for (const auto &bench : allBenchmarks()) {
            const double w = lab.measure(cfg, bench).powerW;
            minW = std::min(minW, w);
            maxW = std::max(maxW, w);
            sumW += w;
        }
        sink.beginRow();
        sink.cell(spec.id);
        sink.cell(spec.tdpW, 0);
        sink.cell(minW, 1);
        sink.cell(sumW / allBenchmarks().size(), 1);
        sink.cell(maxW, 1);
        sink.cell(maxW / minW, 2);
        sink.cell(spec.tdpW / maxW, 2);
    }
    sink.endTable();

    const auto i7 = stockConfig(processorById("i7 (45)"));
    sink.prose(
        "\nPer-benchmark power on the i7 (45) extremes "
        "(paper: 23W omnetpp .. 89W fluidanimate):\n  omnetpp: " +
        formatFixed(
            lab.measure(i7, benchmarkByName("omnetpp")).powerW, 1) +
        " W\n  fluidanimate: " +
        formatFixed(
            lab.measure(i7, benchmarkByName("fluidanimate")).powerW,
            1) +
        " W\n");
}

void
runFig03(Lab &lab, ReportContext &ctx)
{
    const auto cfg = stockConfig(processorById("i7 (45)"));
    Sink &sink = ctx.out();

    sink.prose(
        "Figure 3: Benchmark power and performance on i7 (45)\n"
        "(performance normalized to reference; CSV series below)\n\n");

    sink.beginTable("scatter",
                    {{"group"}, {"benchmark"}, {"performance"},
                     {"power_w"}},
                    TableStyle::Csv);
    std::array<Summary, 4> perfByGroup, powerByGroup;
    for (const auto &bench : allBenchmarks()) {
        const auto r = lab.result(cfg, bench);
        sink.beginRow();
        sink.cell(groupName(bench.group));
        sink.cell(bench.name);
        sink.cell(r.perf, 3);
        sink.cell(r.powerW, 2);
        perfByGroup[static_cast<size_t>(bench.group)].add(r.perf);
        powerByGroup[static_cast<size_t>(bench.group)].add(r.powerW);
    }
    sink.endTable();

    sink.prose("\nGroup centroids:\n");
    sink.beginTable("centroids",
                    {leftColumn("Group"), {"Perf mean"}, {"Perf min"},
                     {"Perf max"}, {"Power mean W"}, {"Power min W"},
                     {"Power max W"}});
    for (size_t gi = 0; gi < 4; ++gi) {
        sink.beginRow();
        sink.cell(groupName(allGroups()[gi]));
        sink.cell(perfByGroup[gi].mean(), 2);
        sink.cell(perfByGroup[gi].min(), 2);
        sink.cell(perfByGroup[gi].max(), 2);
        sink.cell(powerByGroup[gi].mean(), 1);
        sink.cell(powerByGroup[gi].min(), 1);
        sink.cell(powerByGroup[gi].max(), 1);
    }
    sink.endTable();
}

void
runFig06(Lab &lab, ReportContext &ctx)
{
    const auto scaling = javaSingleThreadedCmp(lab.runner());
    Sink &sink = ctx.out();

    sink.prose(
        "Figure 6: Scalability of single-threaded Java on i7 (45)\n"
        "(2C1T / 1C1T; paper: avg ~1.1, max ~1.55 for antlr)\n\n");

    sink.beginTable("scalability",
                    {leftColumn("Benchmark"), {"2C1T / 1C1T"}});
    double sum = 0.0;
    for (const auto &[name, speedup] : scaling) {
        sink.beginRow();
        sink.cell(name);
        sink.cell(speedup, 2);
        sum += speedup;
    }
    sink.endTable();
    sink.prose("\nAverage: " + formatFixed(sum / scaling.size(), 2) +
               "\n");
}

void
runFig07(Lab &lab, ReportContext &ctx)
{
    auto &runner = lab.runner();
    const auto &ref = lab.reference();
    Sink &sink = ctx.out();

    emitGroupedEffects(
        sink,
        "Figure 7(a,b): Effect of doubling clock frequency "
        "(ratios per 2x)\nPaper (a): i7 1.83/2.80/1.60; "
        "C2D 1.73/2.59/1.56; i5 1.78/1.73/0.96",
        clockStudy(runner, ref));

    sink.prose("Figure 7(c): energy vs performance across the "
               "clock range (relative to lowest clock)\n\n");
    for (const std::string id : {"i7 (45)", "C2D (45)", "i5 (32)"}) {
        const auto sweep = clockSweep(runner, ref, id, 5);
        sink.beginTable("clock_energy_" + id,
                        {leftColumn(id), {"GHz"}, {"perf/base"},
                         {"energy/base"}});
        for (const auto &pt : sweep) {
            sink.beginRow();
            sink.cell(std::string());
            sink.cell(pt.clockGhz, 2);
            sink.cell(pt.perfRelBase, 2);
            sink.cell(pt.energyRelBase, 2);
        }
        sink.endTable();
        sink.prose("\n");
    }

    sink.prose("Figure 7(d): absolute power by workload group "
               "across clock (i7 and i5)\n\n");
    for (const std::string id : {"i7 (45)", "i5 (32)"}) {
        const auto sweep = clockSweep(runner, ref, id, 5);
        std::vector<SinkColumn> columns = {leftColumn(id), {"GHz"}};
        for (const auto group : allGroups()) {
            columns.push_back({groupName(group) + " perf"});
            columns.push_back({"W"});
        }
        sink.beginTable("clock_power_" + id, std::move(columns));
        for (const auto &pt : sweep) {
            sink.beginRow();
            sink.cell(std::string());
            sink.cell(pt.clockGhz, 2);
            for (size_t gi = 0; gi < 4; ++gi) {
                sink.cell(pt.groupPerfAbs[gi], 2);
                sink.cell(pt.groupPowerW[gi], 1);
            }
        }
        sink.endTable();
        sink.prose("\n");
    }
}

void
runFig11(Lab &lab, ReportContext &ctx)
{
    const auto points = historicalOverview(lab.runner(), lab.reference());
    Sink &sink = ctx.out();

    sink.prose(
        "Figure 11(a): Power and performance by stock processor\n\n");
    sink.beginTable("absolute",
                    {leftColumn("Processor"), leftColumn("uArch"),
                     {"Perf/Ref"}, {"Power W"}});
    for (const auto &pt : points) {
        sink.beginRow();
        sink.cell(pt.spec->id);
        sink.cell(familyName(pt.spec->family));
        sink.cell(pt.aggregate.weighted.perf, 2);
        sink.cell(pt.aggregate.weighted.powerW, 1);
    }
    sink.endTable();

    sink.prose(
        "\nFigure 11(b): Per-transistor power and performance\n"
        "(paper: power/transistor consistent within a family; "
        "Pentium 4 is\n the high outlier on both axes)\n\n");
    sink.beginTable("per_transistor",
                    {leftColumn("Processor"), leftColumn("uArch"),
                     {"Perf/MTran x1e3"}, {"mW/MTran"}});
    for (const auto &pt : points) {
        sink.beginRow();
        sink.cell(pt.spec->id);
        sink.cell(familyName(pt.spec->family));
        sink.cell(1e3 * pt.perfPerMtran(), 2);
        sink.cell(1e3 * pt.powerPerMtran(), 1);
    }
    sink.endTable();

    for (const auto &pt : points) {
        if (pt.spec->family != Family::NetBurst)
            continue;
        const auto projected = projectToNode(pt, Node::Nm32, 2.0);
        sink.prose(
            "\nProjection (paper: 'four fold less power, two fold\n"
            "more performance' for a 32nm Pentium 4):\n  " +
            projected.label + ": perf " +
            formatFixed(projected.perf, 2) + " (x" +
            formatFixed(projected.perf / pt.aggregate.weighted.perf,
                        2) +
            "), power " + formatFixed(projected.powerW, 1) + " W (/" +
            formatFixed(
                pt.aggregate.weighted.powerW / projected.powerW, 2) +
            ")\n");
    }
}

void
emitFrontier(Lab &lab, Sink &sink, std::optional<Group> group,
             const std::string &label)
{
    const auto frontier =
        paretoFrontier45nm(lab.runner(), lab.reference(), group);
    sink.prose(label + ":\n");
    sink.beginTable("frontier_" + label,
                    {leftColumn("Configuration"), {"Perf/Ref"},
                     {"Energy/Ref"}});
    for (const auto &pt : frontier) {
        sink.beginRow();
        sink.cell(pt.label);
        sink.cell(pt.performance, 2);
        sink.cell(pt.energy, 2);
    }
    sink.endTable();
    sink.prose("\n");
}

void
runFig12(Lab &lab, ReportContext &ctx)
{
    Sink &sink = ctx.out();
    sink.prose(
        "Figure 12: Energy / performance Pareto frontiers (45nm)\n"
        "(paper: scalable groups extend the frontier right to perf ~7\n"
        " at constant energy; each group's frontier deviates from the\n"
        " average)\n\n");

    emitFrontier(lab, sink, std::nullopt, "Average");
    for (const auto group : allGroups())
        emitFrontier(lab, sink, group, groupName(group));
}

} // namespace

void
registerFigureStudies(StudyRegistry &registry)
{
    registry.add(makeStudy(
        "fig01",
        "Figure 1: Java multithreaded scalability on the i7 (45)",
        [] { return javaScalabilityConfigs(); }, runFig01));

    registry.add(makeStudy(
        "fig02",
        "Figure 2: measured benchmark power vs TDP per processor",
        [] { return stockConfigs(); }, runFig02));

    registry.add(makeStudy(
        "fig03",
        "Figure 3: benchmark power/performance scatter on i7 (45)",
        [] {
            return std::vector<MachineConfig>{
                stockConfig(processorById("i7 (45)"))};
        },
        runFig03));

    registry.add(makeStudy(
        "fig04", "Figure 4: effect of CMP (2 cores / 1 core)",
        [] { return pairConfigs(cmpStudyPairs()); },
        [](Lab &lab, ReportContext &ctx) {
            emitGroupedEffects(
                ctx.out(),
                "Figure 4: Effect of CMP (2 cores / 1 core, no SMT, "
                "no TB)\n"
                "Paper (a): i7 1.32/1.57/1.12; i5 1.34/1.29/0.91",
                cmpStudy(lab.runner(), lab.reference()));
        }));

    registry.add(makeStudy(
        "fig05", "Figure 5: effect of SMT (2 threads / 1 thread)",
        [] { return pairConfigs(smtStudyPairs()); },
        [](Lab &lab, ReportContext &ctx) {
            emitGroupedEffects(
                ctx.out(),
                "Figure 5: Effect of SMT (2 threads / 1 thread, 1 "
                "core)\n"
                "Paper (a): P4 1.06/1.06/0.98; i7 1.14/1.15/0.97; "
                "Atom 1.24/1.10/0.86; i5 1.17/1.10/0.89",
                smtStudy(lab.runner(), lab.reference()));
        }));

    registry.add(makeStudy(
        "fig06",
        "Figure 6: CMP impact for single-threaded Java on i7 (45)",
        [] { return javaSingleThreadedCmpConfigs(); }, runFig06));

    registry.add(makeStudy(
        "fig07", "Figure 7: clock scaling effects and energy curves",
        [] {
            auto grid = pairConfigs(clockStudyPairs());
            for (const char *id : {"i7 (45)", "C2D (45)", "i5 (32)"})
                grid = concatConfigs(std::move(grid),
                                     clockSweepConfigs(id, 5));
            return grid;
        },
        runFig07));

    registry.add(makeStudy(
        "fig08", "Figure 8: die shrink effects (native and matched "
                 "clocks)",
        [] {
            return concatConfigs(pairConfigs(dieShrinkPairs(false)),
                                 pairConfigs(dieShrinkPairs(true)));
        },
        [](Lab &lab, ReportContext &ctx) {
            auto &runner = lab.runner();
            const auto &ref = lab.reference();
            emitGroupedEffects(
                ctx.out(),
                "Figure 8(a): Die shrink at native clocks (new / "
                "old)\n"
                "Paper: Core 1.25/0.79/0.65; Nehalem 2C2T "
                "1.14/0.77/0.69",
                dieShrinkStudy(runner, ref, false));
            emitGroupedEffects(
                ctx.out(),
                "Figure 8(b,c): Die shrink at matched clocks (new / "
                "old)\n"
                "Paper: Core 2.4GHz 1.01/0.55/0.54; "
                "Nehalem 2C2T 2.6GHz 0.90/0.53/0.60",
                dieShrinkStudy(runner, ref, true));
        }));

    registry.add(makeStudy(
        "fig09", "Figure 9: effect of gross microarchitecture change",
        [] { return pairConfigs(uarchStudyPairs()); },
        [](Lab &lab, ReportContext &ctx) {
            emitGroupedEffects(
                ctx.out(),
                "Figure 9: Effect of gross microarchitecture change\n"
                "Paper (a): Bonnell 2.70/2.38/0.85; NetBurst "
                "2.60/0.33/0.13; "
                "Core45 1.14/1.14/1.00; Core65 1.14/0.55/0.48",
                uarchStudy(lab.runner(), lab.reference()));
        }));

    registry.add(makeStudy(
        "fig10", "Figure 10: effect of Turbo Boost",
        [] { return pairConfigs(turboStudyPairs()); },
        [](Lab &lab, ReportContext &ctx) {
            emitGroupedEffects(
                ctx.out(),
                "Figure 10: Effect of Turbo Boost (enabled / "
                "disabled)\n"
                "Paper (a): i7 4C2T 1.05/1.19/1.13; i7 1C1T "
                "1.07/1.49/1.39; "
                "i5 2C2T 1.03/1.07/1.04; i5 1C1T 1.05/1.05/1.00",
                turboStudy(lab.runner(), lab.reference()));
        }));

    registry.add(makeStudy(
        "fig11",
        "Figure 11: historical power/performance overview",
        [] { return stockConfigs(); }, runFig11));

    registry.add(makeStudy(
        "fig12",
        "Figure 12: energy/performance Pareto frontiers at 45nm",
        [] { return configurations45nm(); }, runFig12));
}

} // namespace lhr
