/**
 * @file
 * Ablation studies that exercise the modeling substrates directly
 * (statistics, OS behaviour, pipeline and trace simulation, JVM
 * methodology) — none of them measure through the memo cache, so
 * they all declare empty grids.
 */

#include "study/builtin.hh"

#include <cmath>

#include "core/lab.hh"
#include "counters/hwcounters.hh"
#include "cpu/perf_model.hh"
#include "jvm/jvm_model.hh"
#include "os/governor.hh"
#include "pipesim/pipeline.hh"
#include "sensor/calibration.hh"
#include "sensor/channel.hh"
#include "stats/bootstrap.hh"
#include "stats/summary.hh"
#include "study/study.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace lhr
{

namespace
{

void
runAblationBootstrap(Lab &, ReportContext &ctx)
{
    Sink &sink = ctx.out();
    sink.prose(
        "Ablation: t vs bootstrap 95% CIs at the paper's repetition\n"
        "counts (2000 trials of gaussian measurements, sd 1.5% of\n"
        " the mean — the harness's invocation noise)\n\n");

    sink.beginTable("coverage",
                    {{"n"}, {"t halfwidth %"}, {"t coverage %"},
                     {"boot halfwidth %"}, {"boot coverage %"}});

    const double trueMean = 100.0;
    const double sd = 1.5;
    Rng rng(2027);

    for (int n : {3, 5, 10, 20}) {
        double tWidth = 0.0, bootWidth = 0.0;
        int tCover = 0, bootCover = 0;
        const int trials = 2000;
        for (int trial = 0; trial < trials; ++trial) {
            std::vector<double> samples;
            Summary summary;
            for (int i = 0; i < n; ++i) {
                const double x = rng.gaussian(trueMean, sd);
                samples.push_back(x);
                summary.add(x);
            }
            tWidth += summary.ci95Relative();
            if (std::fabs(summary.mean() - trueMean) <= summary.ci95())
                ++tCover;
            const auto boot = bootstrapCi95(samples, rng, 400);
            bootWidth += boot.halfWidthRelative();
            if (boot.lo <= trueMean && trueMean <= boot.hi)
                ++bootCover;
        }
        sink.beginRow();
        sink.cell(static_cast<long>(n));
        sink.cell(100.0 * tWidth / trials, 2);
        sink.cell(100.0 * tCover / trials, 1);
        sink.cell(100.0 * bootWidth / trials, 2);
        sink.cell(100.0 * bootCover / trials, 1);
    }
    sink.endTable();

    sink.prose(
        "\nAt n=3 the bootstrap badly under-covers (it cannot see\n"
        "variation beyond three points); the paper's t intervals are\n"
        "the right call for SPEC's prescribed three runs.\n");
}

void
runAblationOsScaling(Lab &, ReportContext &ctx)
{
    Sink &sink = ctx.out();
    sink.prose(
        "Ablation (a): OS core offlining vs BIOS core disabling\n"
        "(power of a single-threaded run, OS / BIOS; > 1.00 means the\n"
        " OS path draws MORE power with FEWER usable cores)\n\n");
    {
        sink.beginTable("offlining",
                        {leftColumn("Processor"), {"Offlined"},
                         {"2.6.31 (bug #5471)"}, {"fixed kernel"}});
        for (const char *id : {"i7 (45)", "C2Q (65)", "i5 (32)"}) {
            const auto &spec = processorById(id);
            for (int offlined = 1; offlined < spec.cores;
                 offlined += 2) {
                sink.beginRow();
                sink.cell(spec.id);
                sink.cell(static_cast<long>(offlined));
                sink.cell(OsContextScaling::osVsBiosPowerRatio(
                              spec, offlined, true), 2);
                sink.cell(OsContextScaling::osVsBiosPowerRatio(
                              spec, offlined, false), 2);
            }
        }
        sink.endTable();
    }

    sink.prose(
        "\nAblation (b): cpufreq governors on a bursty load\n"
        "(i7 (45), alternating 95%/10% utilization phases)\n\n");
    {
        const auto &spec = processorById("i7 (45)");
        sink.beginTable("governors",
                        {leftColumn("Governor"), {"Mean GHz"},
                         {"GHz in busy phases"}});
        for (const auto policy :
             {GovernorPolicy::Performance, GovernorPolicy::Ondemand,
              GovernorPolicy::Powersave}) {
            CpuFreqGovernor governor(spec, policy);
            double sum = 0.0, busySum = 0.0;
            int busyCount = 0;
            const int samples = 400;
            for (int i = 0; i < samples; ++i) {
                const bool busy = (i / 20) % 2 == 0;
                const double f = governor.step(busy ? 0.95 : 0.10);
                sum += f;
                if (busy) {
                    busySum += f;
                    ++busyCount;
                }
            }
            sink.beginRow();
            sink.cell(governorPolicyName(policy));
            sink.cell(sum / samples, 2);
            sink.cell(busySum / busyCount, 2);
        }
        sink.endTable();
        sink.prose(
            "\nondemand tracks the bursts, but its clock depends on\n"
            "load history — the BIOS pin the paper uses is the only\n"
            "way to hold frequency constant per configuration.\n");
    }
}

void
runAblationPipesim(Lab &, ReportContext &ctx)
{
    // Long traces only became affordable with the O(log n) LRU
    // stack; 3M instructions tightens the IPC estimate an order of
    // magnitude over the old 300k cap.
    const uint64_t instructions = 3000000;
    Sink &sink = ctx.out();

    sink.prose(msgOf(
        "Ablation: micro-op pipeline simulation vs analytic CPI\n(",
        instructions, "-instruction traces, IPC per thread)\n\n"));

    for (const char *procId :
         {"i7 (45)", "C2D (65)", "Atom (45)", "Pentium4 (130)"}) {
        const auto &spec = processorById(procId);
        const PerfModel analytic(spec);
        const auto pipeCfg =
            PipelineConfig::of(spec, spec.stockClockGhz);

        const auto levels = structuralLevels(spec);

        sink.prose(spec.id + " @ " +
                   formatFixed(spec.stockClockGhz, 2) + " GHz:\n");
        sink.beginTable("ipc_" + spec.id,
                        {leftColumn("Benchmark"), {"IPC pipe"},
                         {"IPC analytic"}, {"ratio"}, {"mem wait %"},
                         {"branch wait %"}});
        for (const char *name :
             {"hmmer", "gcc", "mcf", "xalan", "povray"}) {
            const auto &bench = benchmarkByName(name);
            PipelineSim pipe(pipeCfg, levels);
            const auto r = pipe.run(bench, instructions, 99);
            const double analyticIpc =
                analytic.threadCpi(bench, spec.stockClockGhz, 1, 1.0)
                    .ipc();
            sink.beginRow();
            sink.cell(bench.name);
            sink.cell(r.ipc, 2);
            sink.cell(analyticIpc, 2);
            sink.cell(r.ipc / analyticIpc, 2);
            sink.cell(100.0 * r.memStallShare, 1);
            sink.cell(100.0 * r.branchStallShare, 1);
        }
        sink.endTable();
        sink.prose("\n");
    }

    sink.prose(
        "Both layers must agree on ordering (hmmer fastest, mcf\n"
        "slowest) and on the microarchitecture ranking per clock\n"
        "(Nehalem > Core > NetBurst ~ Bonnell). The detailed model\n"
        "sits systematically below the analytic one (it exposes L1\n"
        "latency on dependence chains the closed form folds into the\n"
        "base term); what must match is structure, not the constant.\n");
}

void
runAblationSensorRate(Lab &, ReportContext &ctx)
{
    Sink &sink = ctx.out();
    sink.prose(
        "Ablation: sampling-rate sensitivity of average power\n"
        "(paper methodology: 50Hz Hall-sensor logging)\n\n");

    // A phase-rich 30-second trace: base 45W, +-20% phases at a few
    // hertz plus GC-style spikes.
    const double durationSec = 30.0;
    auto truePowerAt = [](double t) {
        double w = 45.0;
        w *= 1.0 + 0.20 * std::sin(2.0 * M_PI * 1.3 * t);
        if (std::fmod(t, 2.7) < 0.12)
            w *= 1.35; // collector spike
        return w;
    };

    // Ground-truth average by fine integration.
    double truthSum = 0.0;
    const int fine = 300000;
    for (int i = 0; i < fine; ++i)
        truthSum += truePowerAt(durationSec * i / fine);
    const double truthW = truthSum / fine;

    const PowerChannel channel(SensorVariant::A30, 2024);
    Rng calRng(77);
    const auto cal = Calibration::calibrate(channel, calRng);

    sink.beginTable("rates",
                    {{"Rate Hz"}, {"Samples"}, {"Mean W"}, {"Err %"},
                     {"Run-to-run sd %"}});
    for (double rate : {1.0, 5.0, 10.0, 50.0, 200.0, 1000.0}) {
        Summary runs;
        for (int trial = 0; trial < 16; ++trial) {
            Rng rng(1000 + trial);
            const double phase0 = rng.uniform(0.0, 1.0);
            const int n = static_cast<int>(durationSec * rate);
            double sum = 0.0;
            for (int i = 0; i < n; ++i) {
                const double t =
                    std::fmod(phase0 + i / rate, durationSec);
                sum += cal.wattsFromCounts(
                    channel.sampleCounts(truePowerAt(t), rng));
            }
            runs.add(sum / n);
        }
        sink.beginRow();
        sink.cell(rate, 0);
        sink.cell(static_cast<long>(durationSec * rate));
        sink.cell(runs.mean(), 2);
        sink.cell(100.0 * (runs.mean() - truthW) / truthW, 2);
        sink.cell(100.0 * runs.stddev() / runs.mean(), 2);
    }
    sink.endTable();
    sink.prose("\nGround truth: " + formatFixed(truthW, 2) + " W\n");
}

void
runAblationTracesim(Lab &, ReportContext &ctx)
{
    const auto &i7 = processorById("i7 (45)");
    const uint64_t traceLength = 400000;
    Sink &sink = ctx.out();

    sink.prose(msgOf(
        "Ablation: structural trace simulation vs analytic curves\n"
        "(i7 (45) geometry, ", traceLength,
        "-instruction synthetic traces)\n\n"));

    sink.beginTable("mpki",
                    {leftColumn("Benchmark"), {"L1 MPKI sim"},
                     {"analytic"}, {"LLC MPKI sim"}, {"analytic"},
                     {"misp/Ki sim"}, {"target"}, {"dTLB MPKI"}});
    const auto hierarchy = makeHierarchy(i7);
    for (const char *name :
         {"hmmer", "gcc", "mcf", "libquantum", "db", "xalan",
          "fluidanimate"}) {
        const auto &bench = benchmarkByName(name);
        const auto profile =
            characterizeWorkload(bench, i7, traceLength, 7);

        const auto analytic = hierarchy.evaluate(bench.miss, 1.0, 1.0);

        sink.beginRow();
        sink.cell(bench.name);
        sink.cell(profile.l1Mpki, 1);
        sink.cell(analytic.l1Mpki, 1);
        sink.cell(profile.llcMpki, 2);
        sink.cell(analytic.dramMpki, 2);
        sink.cell(profile.branchMispKi, 1);
        sink.cell(bench.branchMispKi, 1);
        sink.cell(profile.dtlbMpki, 2);
    }
    sink.endTable();

    sink.prose(
        "\nGC DTLB displacement (the db effect): dTLB MPKI of db with\n"
        "a same-core collector vs an offloaded one:\n");
    const auto &db = benchmarkByName("db");
    const auto sameCore =
        characterizeWorkload(db, i7, traceLength, 7, 0.7);
    const auto offloaded =
        characterizeWorkload(db, i7, traceLength, 7, 0.0);
    sink.prose(
        "  same-core GC: " + formatFixed(sameCore.dtlbMpki, 2) +
        "  offloaded GC: " + formatFixed(offloaded.dtlbMpki, 2) +
        "  ratio: " +
        formatFixed(sameCore.dtlbMpki / offloaded.dtlbMpki, 2) +
        " (paper: factor ~2.5 fewer DTLB misses with the\n"
        "   collector elsewhere)\n");
}

void
runAblationMethodology(Lab &lab, ReportContext &ctx)
{
    const auto &spec = processorById("i7 (45)");
    const auto cfg = withTurbo(stockConfig(spec), false);
    const auto &perf = lab.runner().perfModel(spec);
    Sink &sink = ctx.out();

    sink.prose(
        "Ablation (a): which iteration is reported (paper: the 5th)\n"
        "Reported time relative to steady state, all Java "
        "benchmarks:\n\n");
    {
        sink.beginTable("iterations",
                        {{"Iteration"}, {"Time vs steady"}});
        for (int iteration = 1; iteration <= 5; ++iteration) {
            sink.beginRow();
            sink.cell(static_cast<long>(iteration));
            sink.cell(JvmModel::warmupFactor(iteration), 2);
        }
        sink.endTable();
        sink.prose(
            "Reporting iteration 1 overstates every Java time by "
            "~55%\nand would corrupt every energy number downstream.\n");
    }

    sink.prose(
        "\nAblation (b): heap size (paper: 3x the minimum)\n"
        "Mean Java time and JVM service share vs heap factor:\n\n");
    {
        sink.beginTable("heap",
                        {{"Heap x min"}, {"Time vs 3x"},
                         {"Svc share (pjbb2005)"}});
        for (double heap : {1.5, 2.0, 3.0, 4.0, 6.0}) {
            Summary rel;
            for (const auto &bench : allBenchmarks()) {
                if (bench.language() != Language::Java)
                    continue;
                const double t = JvmModel::run(
                    perf, bench, cfg, cfg.clockGhz, heap).timeSec;
                const double t3 = JvmModel::run(
                    perf, bench, cfg, cfg.clockGhz).timeSec;
                rel.add(t / t3);
            }
            sink.beginRow();
            sink.cell(heap, 1);
            sink.cell(rel.mean(), 3);
            sink.cell(JvmModel::serviceAtHeap(
                          benchmarkByName("pjbb2005")
                              .jvmServiceFraction,
                          heap), 3);
        }
        sink.endTable();
        sink.prose(
            "A 1.5x heap roughly doubles GC work; beyond 3x the\n"
            "returns flatten — the methodology's choice is the knee.\n");
    }
}

std::vector<MachineConfig>
emptyGrid()
{
    return {};
}

} // namespace

void
registerModelAblationStudies(StudyRegistry &registry)
{
    registry.add(makeStudy(
        "ablation_bootstrap",
        "Ablation: t vs bootstrap confidence intervals",
        emptyGrid, runAblationBootstrap));

    registry.add(makeStudy(
        "ablation_methodology",
        "Ablation: Java reporting iteration and heap sizing",
        emptyGrid, runAblationMethodology));

    registry.add(makeStudy(
        "ablation_os_scaling",
        "Ablation: OS vs BIOS hardware control, cpufreq governors",
        emptyGrid, runAblationOsScaling));

    registry.add(makeStudy(
        "ablation_pipesim",
        "Ablation: pipeline simulation vs analytic CPI stacks",
        emptyGrid, runAblationPipesim));

    registry.add(makeStudy(
        "ablation_sensor_rate",
        "Ablation: sensor sampling-rate sensitivity",
        emptyGrid, runAblationSensorRate));

    registry.add(makeStudy(
        "ablation_tracesim",
        "Ablation: trace simulation vs analytic miss curves",
        emptyGrid, runAblationTracesim));
}

} // namespace lhr
