/**
 * @file
 * lhr::SweepEngine — the parallel full-grid sweep executor.
 *
 * The paper's core artifact is a grid: 45 processor configurations
 * x 61 benchmarks, re-measured after every BIOS-style feature
 * toggle. SweepEngine fans that grid out across a work-stealing
 * thread pool (one task per (configuration, benchmark) cell) and
 * produces results bit-identical to a serial run.
 *
 * Determinism contract: ExperimentRunner derives every experiment's
 * random stream from its experiment key, so a Measurement does not
 * depend on when or on which thread it is computed. SweepEngine
 * relies on exactly that — it imposes no ordering between cells and
 * still returns the cells in deterministic row-major (config-major)
 * order, each carrying the same bits a serial sweep would produce.
 *
 * Thread count: SweepOptions::threads, 0 meaning the LHR_THREADS
 * environment variable or, failing that, the hardware concurrency
 * (see ThreadPool::defaultThreadCount).
 *
 * Observability: per-cell wall time, runner cache hit/miss deltas,
 * total wall time and throughput (experiments/sec) come back in the
 * SweepReport; bench/sweep_throughput.cc turns that into the perf
 * baseline future changes are measured against.
 *
 * Scale-out: SweepOptions::shardIndex/shardCount split the grid
 * deterministically across independent processes (each shard's
 * partial ResultStore merges back into a byte-identical full
 * store), SweepOptions::warmStart re-seeds the memo cache from a
 * prior store so an interrupted sweep resumes without recomputing,
 * and SweepOptions::checkpointEvery persists partial results
 * mid-run. See DESIGN.md "Sharded sweeps".
 */

#ifndef LHR_SWEEP_SWEEP_HH
#define LHR_SWEEP_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "machine/processor.hh"
#include "store/results_store.hh"
#include "workload/benchmark.hh"

namespace lhr
{

/** Knobs of one sweep execution. */
struct SweepOptions
{
    /** Worker threads; 0 = ThreadPool::defaultThreadCount(). */
    int threads = 0;

    /**
     * Fill the grid benchmark by benchmark through
     * ExperimentRunner::measureBatch (one pool task per benchmark,
     * SoA batch model evaluation across that benchmark's pending
     * configurations) instead of cell by cell. Results are
     * bit-identical either way; the batch mode only changes how the
     * work is traversed. The engine automatically falls back to the
     * per-cell path when semantics require it: an installed fault
     * plan (poisoned configuration or injection rates), a per-cell
     * wall-time budget (cellTimeoutSec), or failure-triggered
     * cancellation (maxFailures >= 0) all need true per-cell
     * execution. In batch mode a cell's wallSec is its group's wall
     * time divided evenly across the group's cells.
     */
    bool batchFill = true;

    /** Emit progress/throughput lines to stderr while sweeping. */
    bool progress = false;

    /**
     * Wall-time budget per cell in seconds; a cell that exceeds it
     * is flagged StatusCode::Timeout in its status (the measurement
     * still completes — the flag marks the row as suspect, it does
     * not preempt model code). 0 disables the budget.
     */
    double cellTimeoutSec = 0.0;

    /**
     * Failed cells tolerated before the sweep cooperatively cancels
     * the rest (remaining cells come back StatusCode::Cancelled
     * without running). Negative = never cancel: every cell runs
     * and failures degrade to flagged rows.
     */
    int maxFailures = -1;

    /**
     * Shard contract (`lhrlab snapshot --shard i/N`): the row-major
     * cell list is partitioned deterministically across shardCount
     * shards and this engine runs only the cells whose global index
     * is congruent to shardIndex (mod shardCount) — a strided
     * partition, so expensive configurations spread across shards.
     * Every shard of the same grid and seed produces bits identical
     * to the corresponding cells of a single-process sweep, so the
     * N partial stores merge into a byte-identical full store.
     * Defaults run the whole grid; run() panics on an index outside
     * [0, shardCount).
     */
    int shardIndex = 0;
    int shardCount = 1;

    /**
     * Warm-start store for checkpoint/resume: cells of this sweep
     * found in the store (by config label and benchmark name) are
     * pre-seeded into the runner's memo cache and come back as
     * cache hits without re-measuring. Only the persisted fields
     * survive (see StoredResult::toMeasurement). The store must
     * outlive run(); not owned.
     */
    const ResultStore *warmStart = nullptr;

    /**
     * Checkpoint cadence: every N completed cells the rows measured
     * so far (plus any warm-started ones) are saved atomically to
     * checkpointPath, so a killed shard resumes from its last
     * checkpoint instead of recomputing. 0 disables checkpointing.
     */
    size_t checkpointEvery = 0;
    std::string checkpointPath = "";

    /**
     * Cooperative stop request (typically set by a SIGINT/SIGTERM
     * handler): checked before each batch group / cell, so a stop
     * lands at the next cell boundary. Cells not yet started come
     * back StatusCode::Cancelled without running; cells already
     * measuring finish normally — their rows are kept, which is
     * what lets `lhrlab snapshot` flush a final checkpoint at the
     * last *completed* cell instead of the last --checkpoint
     * boundary. nullptr = never stopped externally. Not owned.
     */
    const std::atomic<bool> *stopFlag = nullptr;
};

/**
 * One grid cell. A cell that measured cleanly carries a Measurement
 * and an ok() status; a cell whose experiment threw (poisoned rig,
 * unrecoverable faults, any other error) carries a null measurement
 * and the error — one bad cell never aborts the sweep.
 */
struct SweepCell
{
    const MachineConfig *config = nullptr;    ///< report's own grid
    const Benchmark *benchmark = nullptr;     ///< report's own grid
    const Measurement *measurement = nullptr; ///< runner's cache; null on failure
    double wallSec = 0.0;   ///< time this cell's measure() took
    Status status;          ///< ok, or why the cell has no result

    [[nodiscard]] bool ok() const { return status.ok() && measurement != nullptr; }
};

/** Outcome and observability of one sweep. */
struct SweepReport
{
    /**
     * Cells in row-major order: configs outer, benchmarks inner.
     * A sharded sweep (shardCount > 1) holds only this shard's
     * cells, still in ascending row-major order.
     */
    std::vector<SweepCell> cells;

    /**
     * The report owns its grid: cells point into these copies, so a
     * report outlives any temporary vectors handed to run() (the
     * measurements themselves live in the runner's cache).
     */
    std::vector<MachineConfig> configs;
    std::vector<Benchmark> benchmarks;

    int threads = 0;           ///< workers that executed the sweep
    double wallSec = 0.0;      ///< whole-sweep wall time
    double maxCellSec = 0.0;   ///< slowest single experiment
    double sumCellSec = 0.0;   ///< total work across cells
    CacheStats cache;          ///< runner hit/miss delta of this sweep
    int shardIndex = 0;        ///< which shard this report covers
    int shardCount = 1;        ///< total shards of the grid
    size_t seededCells = 0;    ///< cells warm-started from a store

    [[nodiscard]] size_t experiments() const { return cells.size(); }

    /** Cells that failed (FaultError, timeout flag, cancellation). */
    [[nodiscard]] size_t failedCells() const;

    /** Cells whose recovery hit a cap (Measurement::degraded). */
    [[nodiscard]] size_t degradedCells() const;

    /** Throughput in experiments per second of wall time. */
    [[nodiscard]] double experimentsPerSec() const
    {
        return wallSec > 0.0 ? cells.size() / wallSec : 0.0;
    }

    /**
     * Parallel efficiency proxy: total per-cell work divided by
     * (wall time x threads). 1.0 means perfectly packed workers.
     */
    [[nodiscard]] double utilization() const
    {
        const double capacity = wallSec * threads;
        return capacity > 0.0 ? sumCellSec / capacity : 0.0;
    }

    /** One-paragraph human-readable summary. */
    [[nodiscard]] std::string summary() const;
};

/**
 * Runs (configuration, benchmark) grids through an ExperimentRunner
 * on a work-stealing thread pool.
 */
class SweepEngine
{
  public:
    explicit SweepEngine(ExperimentRunner &runner,
                         SweepOptions options = {});

    /**
     * Measure every configuration x benchmark cell. Cells come back
     * in row-major order regardless of execution interleaving; the
     * report copies the grid vectors, and the Measurement pointers
     * stay valid for the runner's lifetime.
     */
    [[nodiscard]] SweepReport run(std::vector<MachineConfig> configs,
                    std::vector<Benchmark> benchmarks);

    /**
     * The paper's full grid: standardConfigurations() (45) x
     * allBenchmarks() (61).
     */
    [[nodiscard]] SweepReport runFullGrid();

  private:
    ExperimentRunner &runner;
    SweepOptions options;
};

/**
 * Convert a sweep's cells into a persistable ResultStore. Failed
 * cells (no measurement) are skipped — the store holds only rows
 * that actually measured.
 */
[[nodiscard]] ResultStore toStore(const SweepReport &report);

} // namespace lhr

#endif // LHR_SWEEP_SWEEP_HH
