/**
 * @file
 * lhr::SweepEngine — the parallel full-grid sweep executor.
 *
 * The paper's core artifact is a grid: 45 processor configurations
 * x 61 benchmarks, re-measured after every BIOS-style feature
 * toggle. SweepEngine fans that grid out across a work-stealing
 * thread pool (one task per (configuration, benchmark) cell) and
 * produces results bit-identical to a serial run.
 *
 * Determinism contract: ExperimentRunner derives every experiment's
 * random stream from its experiment key, so a Measurement does not
 * depend on when or on which thread it is computed. SweepEngine
 * relies on exactly that — it imposes no ordering between cells and
 * still returns the cells in deterministic row-major (config-major)
 * order, each carrying the same bits a serial sweep would produce.
 *
 * Thread count: SweepOptions::threads, 0 meaning the LHR_THREADS
 * environment variable or, failing that, the hardware concurrency
 * (see ThreadPool::defaultThreadCount).
 *
 * Observability: per-cell wall time, runner cache hit/miss deltas,
 * total wall time and throughput (experiments/sec) come back in the
 * SweepReport; bench/sweep_throughput.cc turns that into the perf
 * baseline future changes are measured against.
 */

#ifndef LHR_SWEEP_SWEEP_HH
#define LHR_SWEEP_SWEEP_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "machine/processor.hh"
#include "store/results_store.hh"
#include "workload/benchmark.hh"

namespace lhr
{

/** Knobs of one sweep execution. */
struct SweepOptions
{
    /** Worker threads; 0 = ThreadPool::defaultThreadCount(). */
    int threads = 0;

    /** Emit progress/throughput lines to stderr while sweeping. */
    bool progress = false;
};

/** One completed grid cell. */
struct SweepCell
{
    const MachineConfig *config;     ///< into the report's own grid
    const Benchmark *benchmark;      ///< into the report's own grid
    const Measurement *measurement;  ///< owned by the runner's cache
    double wallSec;                  ///< time this cell's measure() took
};

/** Outcome and observability of one sweep. */
struct SweepReport
{
    /** Cells in row-major order: configs outer, benchmarks inner. */
    std::vector<SweepCell> cells;

    /**
     * The report owns its grid: cells point into these copies, so a
     * report outlives any temporary vectors handed to run() (the
     * measurements themselves live in the runner's cache).
     */
    std::vector<MachineConfig> configs;
    std::vector<Benchmark> benchmarks;

    int threads = 0;           ///< workers that executed the sweep
    double wallSec = 0.0;      ///< whole-sweep wall time
    double maxCellSec = 0.0;   ///< slowest single experiment
    double sumCellSec = 0.0;   ///< total work across cells
    CacheStats cache;          ///< runner hit/miss delta of this sweep

    size_t experiments() const { return cells.size(); }

    /** Throughput in experiments per second of wall time. */
    double experimentsPerSec() const
    {
        return wallSec > 0.0 ? cells.size() / wallSec : 0.0;
    }

    /**
     * Parallel efficiency proxy: total per-cell work divided by
     * (wall time x threads). 1.0 means perfectly packed workers.
     */
    double utilization() const
    {
        const double capacity = wallSec * threads;
        return capacity > 0.0 ? sumCellSec / capacity : 0.0;
    }

    /** One-paragraph human-readable summary. */
    std::string summary() const;
};

/**
 * Runs (configuration, benchmark) grids through an ExperimentRunner
 * on a work-stealing thread pool.
 */
class SweepEngine
{
  public:
    explicit SweepEngine(ExperimentRunner &runner,
                         SweepOptions options = {});

    /**
     * Measure every configuration x benchmark cell. Cells come back
     * in row-major order regardless of execution interleaving; the
     * report copies the grid vectors, and the Measurement pointers
     * stay valid for the runner's lifetime.
     */
    SweepReport run(std::vector<MachineConfig> configs,
                    std::vector<Benchmark> benchmarks);

    /**
     * The paper's full grid: standardConfigurations() (45) x
     * allBenchmarks() (61).
     */
    SweepReport runFullGrid();

  private:
    ExperimentRunner &runner;
    SweepOptions options;
};

/** Convert a sweep's cells into a persistable ResultStore. */
ResultStore toStore(const SweepReport &report);

} // namespace lhr

#endif // LHR_SWEEP_SWEEP_HH
