#include "sweep/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <mutex>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace lhr
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

std::string
SweepReport::summary() const
{
    return msgOf("sweep: ", cells.size(), " experiments on ", threads,
                 threads == 1 ? " thread" : " threads", " in ",
                 wallSec, "s (", experimentsPerSec(),
                 " exp/s, utilization ", utilization(), ", cache ",
                 cache.hits, " hits / ", cache.misses, " misses)");
}

SweepEngine::SweepEngine(ExperimentRunner &runner, SweepOptions options)
    : runner(runner), options(options)
{
}

SweepReport
SweepEngine::runFullGrid()
{
    return run(standardConfigurations(), allBenchmarks());
}

SweepReport
SweepEngine::run(std::vector<MachineConfig> configs,
                 std::vector<Benchmark> benchmarks)
{
    SweepReport report;
    report.configs = std::move(configs);
    report.benchmarks = std::move(benchmarks);

    const size_t nBench = report.benchmarks.size();
    const size_t total = report.configs.size() * nBench;
    report.cells.resize(total);

    const CacheStats before = runner.cacheStats();
    ThreadPool pool(options.threads);
    report.threads = pool.threadCount();

    std::atomic<size_t> done{0};
    std::mutex progressMutex;
    const size_t progressEvery = std::max<size_t>(1, total / 16);
    const Clock::time_point start = Clock::now();

    // One task per cell; the pool's work stealing keeps every worker
    // busy even though Java benchmarks on big parts cost far more
    // than native ones on the Atom. Cells write disjoint slots, so
    // the results vector needs no lock.
    pool.parallelFor(total, [&](size_t idx) {
        const size_t ci = idx / nBench;
        const size_t bi = idx % nBench;
        const MachineConfig &cfg = report.configs[ci];
        const Benchmark &bench = report.benchmarks[bi];
        const Clock::time_point cellStart = Clock::now();
        const Measurement &m = runner.measure(cfg, bench);
        report.cells[idx] = {&cfg, &bench, &m,
                             secondsSince(cellStart)};

        const size_t finished =
            done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (options.progress &&
            (finished % progressEvery == 0 || finished == total)) {
            const double elapsed = secondsSince(start);
            std::lock_guard<std::mutex> lock(progressMutex);
            std::cerr << "sweep: " << finished << "/" << total << " ("
                      << (elapsed > 0.0 ? finished / elapsed : 0.0)
                      << " exp/s)" << (finished == total ? "\n" : "\r")
                      << std::flush;
        }
    });

    report.wallSec = secondsSince(start);
    const CacheStats after = runner.cacheStats();
    report.cache.hits = after.hits - before.hits;
    report.cache.misses = after.misses - before.misses;
    for (const SweepCell &cell : report.cells) {
        report.maxCellSec = std::max(report.maxCellSec, cell.wallSec);
        report.sumCellSec += cell.wallSec;
    }
    return report;
}

ResultStore
toStore(const SweepReport &report)
{
    ResultStore store;
    for (const SweepCell &cell : report.cells)
        store.put(*cell.config, *cell.benchmark, *cell.measurement);
    return store;
}

} // namespace lhr
