#include "sweep/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <mutex>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace lhr
{

namespace
{

// The sweep's wall-clock reads feed only observability fields
// (SweepReport wallSec/throughput, progress lines, the perf
// baselines) — never a Measurement. The persisted store fields are
// produced entirely from seeded model evaluation.
using Clock = std::chrono::steady_clock; // lhrlint:allow(det-clock): observability-only timing, never reaches measured outputs

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

size_t
SweepReport::failedCells() const
{
    size_t n = 0;
    for (const SweepCell &cell : cells)
        if (!cell.ok())
            ++n;
    return n;
}

size_t
SweepReport::degradedCells() const
{
    size_t n = 0;
    for (const SweepCell &cell : cells)
        if (cell.measurement && cell.measurement->degraded)
            ++n;
    return n;
}

std::string
SweepReport::summary() const
{
    std::string text =
        msgOf("sweep: ", cells.size(), " experiments on ", threads,
              threads == 1 ? " thread" : " threads", " in ",
              wallSec, "s (", experimentsPerSec(),
              " exp/s, utilization ", utilization(), ", cache ",
              cache.hits, " hits / ", cache.misses, " misses)");
    if (shardCount > 1)
        text += msgOf(", shard ", shardIndex + 1, "/", shardCount);
    if (seededCells > 0)
        text += msgOf(", ", seededCells, " resumed from store");
    const size_t failed = failedCells();
    const size_t degraded = degradedCells();
    if (failed > 0)
        text += msgOf(", ", failed, " failed");
    if (degraded > 0)
        text += msgOf(", ", degraded, " degraded");
    return text;
}

SweepEngine::SweepEngine(ExperimentRunner &runner, SweepOptions options)
    : runner(runner), options(options)
{
}

SweepReport
SweepEngine::runFullGrid()
{
    return run(standardConfigurations(), allBenchmarks());
}

SweepReport
SweepEngine::run(std::vector<MachineConfig> configs,
                 std::vector<Benchmark> benchmarks)
{
    if (options.shardCount < 1 || options.shardIndex < 0 ||
        options.shardIndex >= options.shardCount) {
        panic(msgOf("SweepEngine: shard ", options.shardIndex, "/",
                    options.shardCount, " is outside the contract"));
    }

    SweepReport report;
    report.configs = std::move(configs);
    report.benchmarks = std::move(benchmarks);
    report.shardIndex = options.shardIndex;
    report.shardCount = options.shardCount;

    const size_t nBench = report.benchmarks.size();
    const size_t gridTotal = report.configs.size() * nBench;

    // Deterministic strided partition of the row-major cell list:
    // shard i owns the global indices congruent to i (mod N). The
    // stride interleaves cheap Atom cells with expensive Java-on-i7
    // ones, so shards finish in comparable wall time.
    std::vector<size_t> mine;
    mine.reserve(gridTotal / options.shardCount + 1);
    for (size_t idx = static_cast<size_t>(options.shardIndex);
         idx < gridTotal;
         idx += static_cast<size_t>(options.shardCount))
        mine.push_back(idx);
    const size_t total = mine.size();
    report.cells.resize(total);

    // Checkpoint/resume plumbing. The checkpoint store accumulates
    // every row this shard has (seeded or measured) and is saved
    // atomically every checkpointEvery completions, so a kill loses
    // at most one checkpoint interval of work.
    std::mutex checkpointMutex;
    ResultStore checkpointStore;
    if (options.warmStart) {
        for (const size_t idx : mine) {
            const MachineConfig &cfg = report.configs[idx / nBench];
            const Benchmark &bench = report.benchmarks[idx % nBench];
            const StoredResult *prior =
                options.warmStart->find(cfg.label(), bench.name);
            if (prior &&
                runner.seedCache(cfg, bench, prior->toMeasurement())) {
                ++report.seededCells;
                checkpointStore.put(*prior);
            }
        }
    }

    const CacheStats before = runner.cacheStats();
    ThreadPool pool(options.threads);
    report.threads = pool.threadCount();

    std::atomic<size_t> done{0};
    std::mutex progressMutex;
    const size_t progressEvery = std::max<size_t>(1, total / 16);
    const Clock::time_point start = Clock::now();

    std::atomic<int> failures{0};

    // External stop (snapshot's signal handler sets the flag): work
    // not yet started is marked Cancelled instead of run, so the
    // sweep returns at the next cell/group boundary with every
    // completed row intact.
    const auto stopRequested = [this] {
        return options.stopFlag != nullptr && options.stopFlag->load();
    };

    // Shared per-cell completion bookkeeping (checkpoint + progress),
    // identical between the batch and per-cell fill paths.
    const auto finishCell = [&](SweepCell &cell, const MachineConfig &cfg,
                                const Benchmark &bench) {
        const size_t finished =
            done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (options.checkpointEvery > 0 && cell.measurement) {
            // Accumulate under the lock (cells finish out of order)
            // and persist atomically every checkpointEvery cells;
            // the last partial interval is covered by the caller's
            // final save of the full shard store.
            std::lock_guard<std::mutex> lock(checkpointMutex);
            checkpointStore.put(cfg, bench, *cell.measurement);
            if (finished % options.checkpointEvery == 0 &&
                finished != total) {
                const Status saved =
                    checkpointStore.saveToFile(options.checkpointPath);
                if (!saved.ok()) {
                    std::cerr << "sweep: checkpoint failed: "
                              << saved.toString() << "\n";
                }
            }
        }
        if (options.progress &&
            (finished % progressEvery == 0 || finished == total)) {
            const double elapsed = secondsSince(start);
            std::lock_guard<std::mutex> lock(progressMutex);
            std::cerr << "sweep: " << finished << "/" << total << " ("
                      << (elapsed > 0.0 ? finished / elapsed : 0.0)
                      << " exp/s)" << (finished == total ? "\n" : "\r")
                      << std::flush;
        }
    };

    // Batch fill: group this shard's cells by benchmark and run each
    // group through ExperimentRunner::measureBatch, which evaluates
    // the group's pending configurations through the SoA batch model
    // path. Bit-identical to the per-cell path (the runner's batch
    // and scalar paths share their per-lane implementations); only
    // the traversal changes. Requires the semantics the per-cell
    // path alone provides to be off: no fault plan (measureBatch
    // already falls back per cell for faulted plans, but a poisoned
    // grid is the fault rig's domain and stays on the reference
    // path), no per-cell timeout flagging, and no failure-triggered
    // cancellation — under those options a group is not divisible
    // into per-cell wall times or cancellation points.
    const bool cleanPlan = runner.faultPlan().poisonedConfig.empty() &&
                           !runner.faultPlan().injectsSamples();
    if (options.batchFill && cleanPlan && options.cellTimeoutSec <= 0.0 &&
        options.maxFailures < 0) {
        struct Group
        {
            size_t bi = 0;             // benchmark index
            std::vector<size_t> slots; // this shard's cells, in order
        };
        std::vector<Group> groups(nBench);
        for (size_t bi = 0; bi < nBench; ++bi)
            groups[bi].bi = bi;
        for (size_t slot = 0; slot < total; ++slot)
            groups[mine[slot] % nBench].slots.push_back(slot);
        groups.erase(std::remove_if(groups.begin(), groups.end(),
                                    [](const Group &g) {
                                        return g.slots.empty();
                                    }),
                     groups.end());

        pool.parallelFor(groups.size(), [&](size_t gi) {
            const Group &group = groups[gi];
            const Benchmark &bench = report.benchmarks[group.bi];
            if (stopRequested()) {
                for (const size_t slot : group.slots) {
                    SweepCell &cell = report.cells[slot];
                    cell.config =
                        &report.configs[mine[slot] / nBench];
                    cell.benchmark = &bench;
                    cell.status = Status::error(
                        StatusCode::Cancelled,
                        "sweep stopped before this group ran");
                    finishCell(cell, *cell.config, bench);
                }
                return;
            }
            const Clock::time_point groupStart = Clock::now();
            std::vector<const MachineConfig *> cfgs;
            cfgs.reserve(group.slots.size());
            for (const size_t slot : group.slots)
                cfgs.push_back(&report.configs[mine[slot] / nBench]);
            const std::vector<ExperimentRunner::BatchOutcome> outcomes =
                runner.measureBatch(cfgs, bench);
            // The group is measured as one unit, so per-cell wall
            // time is the group's wall time spread evenly.
            const double cellSec =
                secondsSince(groupStart) / group.slots.size();
            for (size_t j = 0; j < group.slots.size(); ++j) {
                SweepCell &cell = report.cells[group.slots[j]];
                cell.config = cfgs[j];
                cell.benchmark = &bench;
                cell.measurement = outcomes[j].measurement;
                cell.status = outcomes[j].status;
                cell.wallSec = cellSec;
                finishCell(cell, *cfgs[j], bench);
            }
        });

        report.wallSec = secondsSince(start);
        const CacheStats after = runner.cacheStats();
        report.cache.hits = after.hits - before.hits;
        report.cache.misses = after.misses - before.misses;
        for (const SweepCell &cell : report.cells) {
            report.maxCellSec = std::max(report.maxCellSec, cell.wallSec);
            report.sumCellSec += cell.wallSec;
        }
        return report;
    }

    // One task per cell; the pool's work stealing keeps every worker
    // busy even though Java benchmarks on big parts cost far more
    // than native ones on the Atom. Cells write disjoint slots, so
    // the results vector needs no lock. A throwing experiment
    // degrades its own cell to a flagged row and never takes the
    // sweep down; past maxFailures the pool is cancelled and the
    // remaining cells come back Cancelled without running.
    pool.parallelFor(total, [&](size_t slot) {
        const size_t idx = mine[slot];
        const size_t ci = idx / nBench;
        const size_t bi = idx % nBench;
        const MachineConfig &cfg = report.configs[ci];
        const Benchmark &bench = report.benchmarks[bi];
        SweepCell &cell = report.cells[slot];
        cell.config = &cfg;
        cell.benchmark = &bench;

        if (stopRequested()) {
            cell.status =
                Status::error(StatusCode::Cancelled,
                              "sweep stopped before this cell ran");
        } else if (pool.cancelled()) {
            cell.status = Status::error(
                StatusCode::Cancelled,
                "sweep cancelled after too many failed cells");
        } else {
            const Clock::time_point cellStart = Clock::now();
            try {
                cell.measurement = &runner.measure(cfg, bench);
            } catch (const FaultError &e) {
                cell.status = e.status();
            } catch (const std::exception &e) {
                cell.status =
                    Status::error(StatusCode::Internal, e.what());
            }
            cell.wallSec = secondsSince(cellStart);
            if (cell.status.ok() && options.cellTimeoutSec > 0.0 &&
                cell.wallSec > options.cellTimeoutSec) {
                cell.status = Status::error(
                    StatusCode::Timeout,
                    msgOf("cell took ", cell.wallSec, "s, budget ",
                          options.cellTimeoutSec, "s"));
            }
            if (!cell.status.ok() && options.maxFailures >= 0 &&
                failures.fetch_add(1, std::memory_order_relaxed) + 1 >
                    options.maxFailures)
                pool.cancel();
        }

        finishCell(cell, cfg, bench);
    });

    report.wallSec = secondsSince(start);
    const CacheStats after = runner.cacheStats();
    report.cache.hits = after.hits - before.hits;
    report.cache.misses = after.misses - before.misses;
    for (const SweepCell &cell : report.cells) {
        report.maxCellSec = std::max(report.maxCellSec, cell.wallSec);
        report.sumCellSec += cell.wallSec;
    }
    return report;
}

ResultStore
toStore(const SweepReport &report)
{
    ResultStore store;
    for (const SweepCell &cell : report.cells) {
        if (cell.measurement)
            store.put(*cell.config, *cell.benchmark, *cell.measurement);
    }
    return store;
}

// Defined here rather than in store/results_store.cc: snapshot runs
// on the parallel SweepEngine, and the sweep module links above the
// store module. Bit-identical to the old serial double loop by the
// engine's determinism contract (tests/test_store.cc asserts it).
ResultStore
ResultStore::snapshot(ExperimentRunner &runner,
                      const std::vector<MachineConfig> &configs)
{
    return snapshot(runner, configs, allBenchmarks());
}

ResultStore
ResultStore::snapshot(ExperimentRunner &runner,
                      const std::vector<MachineConfig> &configs,
                      const std::vector<Benchmark> &benchmarks)
{
    SweepEngine engine(runner);
    return toStore(engine.run(configs, benchmarks));
}

} // namespace lhr
