#include "harness/aggregate.hh"

#include <algorithm>
#include <limits>

#include "stats/summary.hh"
#include "util/logging.hh"

namespace lhr
{

const GroupAggregate &
ConfigAggregate::group(Group g) const
{
    return byGroup[static_cast<size_t>(g)];
}

BenchResult
benchResult(ExperimentRunner &runner, const ReferenceSet &ref,
            const MachineConfig &cfg, const Benchmark &bench)
{
    const Measurement &m = runner.measure(cfg, bench);
    BenchResult r;
    r.bench = &bench;
    r.perf = ref.refTimeSec(bench) / m.timeSec;
    r.powerW = m.powerW;
    r.energy = m.energyJ() / ref.refEnergyJ(bench);
    return r;
}

ConfigAggregate
aggregateConfig(ExperimentRunner &runner, const ReferenceSet &ref,
                const MachineConfig &cfg)
{
    ConfigAggregate agg;
    agg.minPerf = std::numeric_limits<double>::infinity();
    agg.maxPerf = -agg.minPerf;
    agg.minPowerW = agg.minPerf;
    agg.maxPowerW = agg.maxPerf;

    Summary allPerf, allPower, allEnergy;
    for (size_t gi = 0; gi < allGroups().size(); ++gi) {
        Summary perf, power, energy;
        for (const auto *bench : benchmarksInGroup(allGroups()[gi])) {
            const BenchResult r = benchResult(runner, ref, cfg, *bench);
            perf.add(r.perf);
            power.add(r.powerW);
            energy.add(r.energy);
            allPerf.add(r.perf);
            allPower.add(r.powerW);
            allEnergy.add(r.energy);
            agg.minPerf = std::min(agg.minPerf, r.perf);
            agg.maxPerf = std::max(agg.maxPerf, r.perf);
            agg.minPowerW = std::min(agg.minPowerW, r.powerW);
            agg.maxPowerW = std::max(agg.maxPowerW, r.powerW);
        }
        agg.byGroup[gi] = {perf.mean(), power.mean(), energy.mean()};
    }

    Summary groupPerf, groupPower, groupEnergy;
    for (const auto &g : agg.byGroup) {
        groupPerf.add(g.perf);
        groupPower.add(g.powerW);
        groupEnergy.add(g.energy);
    }
    agg.weighted = {groupPerf.mean(), groupPower.mean(),
                    groupEnergy.mean()};
    agg.simple = {allPerf.mean(), allPower.mean(), allEnergy.mean()};
    return agg;
}

} // namespace lhr
