#include "harness/runner.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <utility>

#include "jvm/jvm_model.hh"
#include "sensor/trace_log.hh"
#include "workload/phases.hh"
#include "power/turbo.hh"
#include "stats/summary.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace lhr
{

namespace
{

/** Switching-activity vector from a PerfResult's utilizations. */
std::vector<double>
activityOf(const PerfResult &run, const Benchmark &bench)
{
    // A second SMT thread keeps more of the core's front end and
    // thread-duplicated state toggling even at equal utilization.
    const double smtBoost = 0.07 * (run.threadsPerCore - 1);
    std::vector<double> act(run.coreUtilization.size(), 0.0);
    for (size_t i = 0; i < act.size(); ++i) {
        if (run.coreUtilization[i] > 0.0) {
            act[i] = std::min(1.0,
                switchingActivity(run.coreUtilization[i],
                                  bench.fpShare) + smtBoost);
        }
    }
    return act;
}

int
countActive(const std::vector<double> &activity)
{
    int n = 0;
    for (double a : activity)
        if (a > 0.0)
            ++n;
    return std::max(1, n);
}

} // namespace

ExperimentRunner::ExperimentRunner(uint64_t seed)
    : baseSeed(seed)
{
}

/**
 * Exact identity of one experiment. The display label rounds the
 * clock to one decimal, so it MUST NOT key caches or random
 * streams: configurations 0.04GHz apart would silently share
 * measurements.
 *
 * The numeric mid-section is sized by a first snprintf pass, so the
 * key can never be silently truncated (truncation would alias cache
 * keys and RNG streams between distinct configurations).
 */
std::string
ExperimentRunner::keyOf(const MachineConfig &cfg, const Benchmark &bench)
{
    static const char *const fmt = "|%d|%d|%.6f|%d|";
    const int turbo = cfg.turboEnabled ? 1 : 0;
    const int len = std::snprintf(nullptr, 0, fmt, cfg.enabledCores,
                                  cfg.smtPerCore, cfg.clockGhz, turbo);
    if (len <= 0)
        panic("ExperimentRunner::keyOf: cannot format configuration "
              "fields");
    std::string mid(static_cast<size_t>(len), '\0');
    const int written =
        std::snprintf(mid.data(), mid.size() + 1, fmt, cfg.enabledCores,
                      cfg.smtPerCore, cfg.clockGhz, turbo);
    if (written != len)
        panic(msgOf("ExperimentRunner::keyOf: truncated key for '",
                    cfg.spec->id, "' (needed ", len, ", wrote ",
                    written, ")"));
    return cfg.spec->id + mid + bench.name;
}

void
ExperimentRunner::setFaultPlan(FaultPlan plan)
{
    if (cachedMeasurements() > 0) {
        panic("ExperimentRunner::setFaultPlan: measurements taken "
              "under the previous plan are already cached");
    }
    faults = std::move(plan);
}

void
ExperimentRunner::setMeasurementPolicy(const MeasurementPolicy &pol)
{
    if (cachedMeasurements() > 0) {
        panic("ExperimentRunner::setMeasurementPolicy: measurements "
              "taken under the previous policy are already cached");
    }
    policy = pol;
}

/**
 * Find-or-create the spec's slot under specMutex, then build its
 * value exactly once outside that lock. Concurrent callers for the
 * same spec block on the slot's once_flag, not on each other's
 * builds for different specs.
 */
template <typename T, typename Build>
const T &
ExperimentRunner::specOnce(SpecSlotMap<T> &map,
                           const ProcessorSpec &spec, Build &&build)
{
    OnceSlot<T> *slot;
    {
        std::lock_guard<std::mutex> lock(specMutex);
        auto &owned = map[&spec];
        if (!owned)
            owned = std::make_unique<OnceSlot<T>>();
        slot = owned.get();
    }
    std::call_once(slot->once, [&] { build(slot->value); });
    return slot->value;
}

const PerfModel &
ExperimentRunner::perfModel(const ProcessorSpec &spec)
{
    return *specOnce(perfModels, spec,
                     [&](std::unique_ptr<PerfModel> &value) {
                         value = std::make_unique<PerfModel>(spec);
                     });
}

const ChipPowerModel &
ExperimentRunner::powerModel(const ProcessorSpec &spec)
{
    return *specOnce(powerModels, spec,
                     [&](std::unique_ptr<ChipPowerModel> &value) {
                         value = std::make_unique<ChipPowerModel>(spec);
                     });
}

const ExperimentRunner::Rig &
ExperimentRunner::rig(const ProcessorSpec &spec)
{
    return specOnce(rigs, spec, [&](Rig &value) {
        const SensorBackend backend =
            backendChoice ? *backendChoice : defaultSensorBackend(spec);
        value.sensor = makeSensor(backend, spec, baseSeed);
    });
}

const Calibration &
ExperimentRunner::calibration(const ProcessorSpec &spec)
{
    const PowerSensor &s = *rig(spec).sensor;
    const Calibration *calib = s.calibration();
    if (calib == nullptr) {
        panic(msgOf("ExperimentRunner::calibration: the '",
                    sensorBackendName(s.backend()), "' rig of '",
                    spec.id, "' decodes without a calibration"));
    }
    return *calib;
}

const PowerSensor &
ExperimentRunner::sensor(const ProcessorSpec &spec)
{
    return *rig(spec).sensor;
}

void
ExperimentRunner::setSensorBackend(std::optional<SensorBackend> backend)
{
    {
        std::lock_guard<std::mutex> lock(specMutex);
        if (!rigs.empty()) {
            panic("ExperimentRunner::setSensorBackend: rigs built "
                  "under the previous backend already exist");
        }
    }
    backendChoice = backend;
}

ExecutionProfile
ExperimentRunner::profile(const MachineConfig &cfg, const Benchmark &bench)
{
    const ProcessorSpec &spec = *cfg.spec;
    const PerfModel &perf = perfModel(spec);
    const ChipPowerModel &power = powerModel(spec);
    const double work = bench.instructionsB() * 1e9;

    // AVX license derating (server parts): vector-heavy code pulls
    // the core below its granted clock, with the benchmark's FP share
    // standing in for AVX residency. The pipeline and the power model
    // both see the licensed clock; the granted clock keeps its Turbo
    // -step semantics. Guarded so paper parts (penalty 0) evaluate
    // the exact same expression as before.
    auto licensed = [&](double f) {
        return spec.avxClockPenalty > 0.0
            ? f * (1.0 - spec.avxClockPenalty * bench.fpShare)
            : f;
    };

    auto execute = [&](double clock_ghz) {
        const double f = licensed(clock_ghz);
        if (bench.language() == Language::Java)
            return JvmModel::run(perf, bench, cfg, f);
        return perf.evaluate(bench, cfg, f, work, bench.appThreads);
    };

    PerfResult run = execute(cfg.clockGhz);
    std::vector<double> activity = activityOf(run, bench);
    int activeCores = countActive(activity);

    double clock = cfg.clockGhz;
    if (spec.hasTurbo && cfg.turboEnabled) {
        // The governor probes each candidate clock twice (power cap
        // and junction cap); breakdownAt is pure per clock, so one
        // memoized slot halves the model work of the turbo search.
        auto breakdownAt = [&, memoClock = -1.0,
                            memo = PowerBreakdown{}](double f) mutable {
            if (f != memoClock) {
                const PerfResult r = execute(f);
                memo = power.compute(cfg, licensed(f),
                                     activityOf(r, bench),
                                     r.llcActivity, r.dramGBs);
                memoClock = f;
            }
            return memo;
        };
        auto powerAt = [&](double f) { return breakdownAt(f).total(); };
        auto junctionAt = [&](double f) {
            return breakdownAt(f).junctionC;
        };
        clock = TurboGovernor::grant(cfg, activeCores, powerAt,
                                     junctionAt);
        // A same-clock grant (no boost headroom) must not trigger a
        // spurious re-execution: compare with the governor's own
        // clock tolerance, not exact float equality.
        if (std::fabs(clock - cfg.clockGhz) >
            TurboGovernor::clockToleranceGhz) {
            run = execute(clock);
            activity = activityOf(run, bench);
            activeCores = countActive(activity);
        }
    }

    ExecutionProfile prof;
    prof.timeSec = run.timeSec;
    prof.grantedClockGhz = clock;
    prof.effectiveClockGhz = licensed(clock);
    prof.coreActivity = activity;
    prof.llcActivity = run.llcActivity;
    prof.dramGBs = run.dramGBs;
    prof.activeCores = activeCores;
    prof.power = power.compute(cfg, prof.effectiveClockGhz, activity,
                               run.llcActivity, run.dramGBs);
    return prof;
}

/**
 * Execution profiles for every lane of one spec's ConfigBatch. JVM
 * executions size their heap per configuration and turbo lanes run
 * the governor's iterative clock search, so those stay scalar; every
 * other lane flows through PerfModel::evaluateBatch and
 * ChipPowerModel::computeBatch in one flat pass. Per lane the result
 * is bit-identical to profile(): the batch entry points share their
 * per-lane bodies with the scalar ones, and the activity composition
 * below repeats activityOf() op for op.
 */
std::vector<ExecutionProfile>
ExperimentRunner::profileBatch(const ConfigBatch &batch,
                               const Benchmark &bench)
{
    const ProcessorSpec &spec = *batch.spec;
    std::vector<ExecutionProfile> profiles(batch.size());

    std::vector<size_t> plainLanes;
    plainLanes.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        const MachineConfig &cfg = *batch.configs[i];
        if (bench.language() == Language::Java ||
            (spec.hasTurbo && cfg.turboEnabled))
            profiles[i] = profile(cfg, bench);
        else
            plainLanes.push_back(i);
    }
    if (plainLanes.empty())
        return profiles;

    const PerfModel &perf = perfModel(spec);
    const ChipPowerModel &power = powerModel(spec);
    const double work = bench.instructionsB() * 1e9;

    ConfigBatch sub; // plain lanes, remembering their batch index
    for (const size_t i : plainLanes)
        sub.push(*batch.configs[i], i);

    thread_local Arena arena;
    arena.reset();

    // AVX license derating (see profile()): lanes of a derated spec
    // run and burn power at the licensed clock. The nullptr fast path
    // (each lane's BIOS clock) is kept for penalty-free specs so the
    // paper grid's batch arithmetic is untouched.
    const double *laneClock = nullptr;
    if (spec.avxClockPenalty > 0.0) {
        const double derate =
            1.0 - spec.avxClockPenalty * bench.fpShare;
        double *clk = arena.alloc<double>(sub.size());
        for (size_t j = 0; j < sub.size(); ++j)
            clk[j] = sub.clockGhz[j] * derate;
        laneClock = clk;
    }

    const PerfBatch runs =
        perf.evaluateBatch(bench, sub, laneClock, work,
                           bench.appThreads, arena);

    // Switching activity per lane: activityOf(), flattened onto the
    // batch's ragged core rows.
    double *act = arena.alloc<double>(runs.utilOffset[runs.lanes]);
    for (size_t j = 0; j < runs.lanes; ++j) {
        const double smtBoost = 0.07 * (runs.threadsPerCore[j] - 1);
        const double *util = runs.utilRow(j);
        double *row = act + runs.utilOffset[j];
        for (size_t c = 0; c < runs.utilCount(j); ++c) {
            row[c] = util[c] > 0.0
                ? std::min(1.0, switchingActivity(util[c],
                                                  bench.fpShare) +
                               smtBoost)
                : 0.0;
        }
    }
    const PowerBatch pw =
        power.computeBatch(sub, laneClock, act, runs.utilOffset,
                           runs.llcActivity, runs.dramGBs, arena);

    for (size_t j = 0; j < runs.lanes; ++j) {
        ExecutionProfile &prof = profiles[sub.sourceIndex[j]];
        prof.timeSec = runs.timeSec[j];
        prof.grantedClockGhz = sub.clockGhz[j]; // no turbo: BIOS clock
        prof.effectiveClockGhz =
            laneClock ? laneClock[j] : sub.clockGhz[j];
        prof.coreActivity.assign(act + runs.utilOffset[j],
                                 act + runs.utilOffset[j + 1]);
        prof.llcActivity = runs.llcActivity[j];
        prof.dramGBs = runs.dramGBs[j];
        int active = 0;
        for (const double a : prof.coreActivity)
            if (a > 0.0)
                ++active;
        prof.activeCores = std::max(1, active);
        prof.power = pw.breakdown(j);
    }
    return profiles;
}

const Measurement &
ExperimentRunner::measure(const MachineConfig &cfg, const Benchmark &bench)
{
    const std::string key = ExperimentRunner::keyOf(cfg, bench);
    MemoShard &shard = memoShards[fnv1a(key) % memoShardCount];

    MemoEntry *entry;
    bool inserted;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto [it, fresh] = shard.entries.try_emplace(key);
        if (fresh)
            it->second = std::make_unique<MemoEntry>();
        entry = it->second.get();
        inserted = fresh;
    }
    if (inserted)
        shard.misses.fetch_add(1, std::memory_order_relaxed);
    else
        shard.hits.fetch_add(1, std::memory_order_relaxed);

    // The inserting thread measures; concurrent readers of the same
    // key block here until the measurement is published. `ready`
    // flips only after the value is fully assigned (release pairs
    // with peekCache's acquire).
    std::call_once(entry->once, [&] {
        entry->value = runMeasurement(cfg, bench);
        entry->ready.store(true, std::memory_order_release);
    });
    return entry->value;
}

std::vector<ExperimentRunner::BatchOutcome>
ExperimentRunner::measureBatch(
    const std::vector<const MachineConfig *> &configs,
    const Benchmark &bench)
{
    std::vector<BatchOutcome> out(configs.size());
    if (configs.empty())
        return out;

    // Cache lookup for every cell up front — same keys and the same
    // per-shard hit/miss accounting as measure(): the cell that
    // inserts its entry is the miss, every other lookup a hit
    // (duplicates within one call included).
    std::vector<MemoEntry *> entries(configs.size());
    std::vector<const MachineConfig *> pendingCfg;
    std::vector<size_t> pendingOut;
    for (size_t i = 0; i < configs.size(); ++i) {
        if (configs[i] == nullptr)
            panic("ExperimentRunner::measureBatch: null configuration");
        const std::string key = ExperimentRunner::keyOf(*configs[i], bench);
        MemoShard &shard = memoShards[fnv1a(key) % memoShardCount];
        bool inserted;
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            auto [it, fresh] = shard.entries.try_emplace(key);
            if (fresh)
                it->second = std::make_unique<MemoEntry>();
            entries[i] = it->second.get();
            inserted = fresh;
        }
        if (inserted) {
            shard.misses.fetch_add(1, std::memory_order_relaxed);
            pendingCfg.push_back(configs[i]);
            pendingOut.push_back(i);
        } else {
            shard.hits.fetch_add(1, std::memory_order_relaxed);
        }
    }

    // Publish cell i through its once_flag. A compute() that throws
    // leaves the flag unset (exactly measure()'s semantics: the next
    // caller retries) and degrades only this cell's outcome.
    auto resolve = [&](size_t i, auto &&compute) {
        try {
            std::call_once(entries[i]->once, [&] {
                entries[i]->value = compute();
                entries[i]->ready.store(true,
                                        std::memory_order_release);
            });
            out[i].measurement = &entries[i]->value;
        } catch (const FaultError &e) {
            out[i].status = e.status();
        } catch (const std::exception &e) {
            out[i].status =
                Status::error(StatusCode::Internal, e.what());
        }
    };

    const bool cleanPlan =
        faults.poisonedConfig.empty() && !faults.injectsSamples();
    if (cleanPlan && !pendingCfg.empty()) {
        // The batch fill proper: group this call's fresh cells per
        // spec and compute their profiles through the SoA model
        // batch, then run each cell's sampling off its batch lane.
        for (const ConfigBatch &batch :
             ConfigBatch::partition(pendingCfg)) {
            const std::vector<ExecutionProfile> profiles =
                profileBatch(batch, bench);
            for (size_t lane = 0; lane < batch.size(); ++lane) {
                const size_t i = pendingOut[batch.sourceIndex[lane]];
                resolve(i, [&] {
                    return measureWithProfile(*batch.configs[lane],
                                              bench, profiles[lane]);
                });
            }
        }
    }

    // Hits, faulted plans (poison checks and injection live in the
    // scalar path), and any cell whose concurrent producer threw all
    // resolve here; a published entry makes this a plain read.
    for (size_t i = 0; i < out.size(); ++i) {
        if (out[i].measurement != nullptr || !out[i].status.ok())
            continue;
        resolve(i, [&] { return runMeasurement(*configs[i], bench); });
    }
    return out;
}

bool
ExperimentRunner::seedCache(const MachineConfig &cfg,
                            const Benchmark &bench,
                            const Measurement &m)
{
    const std::string key = ExperimentRunner::keyOf(cfg, bench);
    MemoShard &shard = memoShards[fnv1a(key) % memoShardCount];

    MemoEntry *entry;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto [it, fresh] = shard.entries.try_emplace(key);
        if (!fresh)
            return false;
        it->second = std::make_unique<MemoEntry>();
        entry = it->second.get();
    }
    // Publish through the slot's once_flag, the same protocol
    // measure() uses: a concurrent measure() of this key blocks on
    // the flag and then reads the seeded value as a plain hit.
    std::call_once(entry->once, [&] {
        entry->value = m;
        entry->ready.store(true, std::memory_order_release);
    });
    return true;
}

const Measurement *
ExperimentRunner::peekCache(const MachineConfig &cfg,
                            const Benchmark &bench) const
{
    const std::string key = ExperimentRunner::keyOf(cfg, bench);
    const MemoShard &shard = memoShards[fnv1a(key) % memoShardCount];
    const MemoEntry *entry;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.entries.find(key);
        if (it == shard.entries.end())
            return nullptr;
        entry = it->second.get();
    }
    // An entry exists from the moment a producer claims the key; it
    // is only readable once published. Never block on the once_flag
    // here — the whole point of the probe is answering "not yet"
    // instantly while another thread is mid-measurement.
    if (!entry->ready.load(std::memory_order_acquire))
        return nullptr;
    return &entry->value;
}

CacheStats
ExperimentRunner::cacheStats() const
{
    CacheStats stats;
    for (const MemoShard &shard : memoShards) {
        stats.hits += shard.hits.load(std::memory_order_relaxed);
        stats.misses += shard.misses.load(std::memory_order_relaxed);
    }
    return stats;
}

void
ExperimentRunner::resetCacheStats()
{
    for (MemoShard &shard : memoShards) {
        shard.hits.store(0, std::memory_order_relaxed);
        shard.misses.store(0, std::memory_order_relaxed);
    }
}

size_t
ExperimentRunner::cachedMeasurements() const
{
    size_t n = 0;
    for (const MemoShard &shard : memoShards) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        n += shard.entries.size();
    }
    return n;
}

std::vector<PowerBreakdown>
ExperimentRunner::phaseBreakdowns(const MachineConfig &cfg,
                                  const Benchmark &bench,
                                  const ExecutionProfile &prof,
                                  Rng &rng)
{
    // Phase behaviour from the workload's phase model: compute- and
    // memory-leaning intervals plus GC bursts for Java, producing
    // the nonuniform power traces real workloads show.
    const ChipPowerModel &power = powerModel(*cfg.spec);
    Rng phaseRng = rng.fork();
    PhaseModel phaseModel(bench, phaseRng.next());
    const auto points = phaseModel.generate(powerPhases);

    std::vector<PowerBreakdown> phases(points.size());
    for (size_t k = 0; k < points.size(); ++k) {
        std::vector<double> act = prof.coreActivity;
        for (double &a : act)
            a = std::clamp(a * points[k].activityMult, 0.0, 1.0);
        phases[k] = power.compute(
            cfg, prof.effectiveClockGhz, act,
            std::clamp(prof.llcActivity * points[k].memoryMult, 0.0,
                       1.0),
            prof.dramGBs * points[k].memoryMult);
    }
    return phases;
}

std::vector<PowerBreakdown>
ExperimentRunner::phasePowerSeries(const MachineConfig &cfg,
                                   const Benchmark &bench)
{
    const ExecutionProfile prof = profile(cfg, bench);
    Rng rng(baseSeed ^ fnv1a(ExperimentRunner::keyOf(cfg, bench)));
    return phaseBreakdowns(cfg, bench, prof, rng);
}

StructureMeters
ExperimentRunner::meterRun(const MachineConfig &cfg,
                           const Benchmark &bench, double *duration_sec)
{
    const ExecutionProfile prof = profile(cfg, bench);
    // The meters see the identical phase series the Hall sensor
    // samples in measure(): same derived stream, same phases.
    Rng rng(baseSeed ^ fnv1a(ExperimentRunner::keyOf(cfg, bench)));
    const auto phases = phaseBreakdowns(cfg, bench, prof, rng);

    StructureMeters meters;
    const double dt = prof.timeSec / phases.size();
    for (const auto &phase : phases)
        meters.deposit(phase, dt);
    if (duration_sec)
        *duration_sec = prof.timeSec;
    return meters;
}

Measurement
ExperimentRunner::runMeasurement(const MachineConfig &cfg,
                                 const Benchmark &bench)
{
    if (!faults.poisonedConfig.empty() &&
        cfg.label() == faults.poisonedConfig) {
        throw FaultError(Status::error(
            StatusCode::FaultDetected,
            "rig offline for poisoned configuration '" + cfg.label() +
                "' (" + bench.name + ")"));
    }
    return measureWithProfile(cfg, bench, profile(cfg, bench));
}

/**
 * Everything downstream of the execution profile: phase waveform,
 * invocation methodology, the sensor sampling sessions. Split from
 * runMeasurement() so the batch fill path can feed profiles computed
 * through the SoA model batch while sharing the rest verbatim.
 */
Measurement
ExperimentRunner::measureWithProfile(const MachineConfig &cfg,
                                     const Benchmark &bench,
                                     const ExecutionProfile &prof)
{
    const Rig &sensorRig = rig(*cfg.spec);
    const bool java = bench.language() == Language::Java;

    const uint64_t streamHash = fnv1a(ExperimentRunner::keyOf(cfg, bench));
    Rng rng(baseSeed ^ streamHash);

    const std::vector<PowerBreakdown> phases =
        phaseBreakdowns(cfg, bench, prof, rng);
    std::vector<double> phasePowerW(phases.size());
    for (size_t k = 0; k < phases.size(); ++k)
        phasePowerW[k] = phases[k].total();

    // A plan with nonzero rates takes the fault-aware path. With an
    // empty plan the runner must stay byte-identical to the
    // fault-free laboratory (the golden-output contract); the clean
    // path below keeps that contract while sampling each session
    // through the batched bit-exact pipeline.
    if (faults.injectsSamples()) {
        return faultedMeasurement(cfg, bench, prof, phasePowerW, rng,
                                  streamHash);
    }

    const int invocations = bench.prescribedInvocations();
    const double timeSigma = java ? 0.016 : 0.004;
    // Run-to-run power differs beyond sensor noise: thermal drift,
    // GC/phase alignment, OS scheduling. Phase-rich benchmarks vary
    // more.
    const double powerSigma =
        (java ? 0.012 : 0.008) + 0.04 * bench.phaseVariability;

    Summary timeStats, powerStats;
    for (int inv = 0; inv < invocations; ++inv) {
        Rng invRng = rng.fork();

        double trueTime = prof.timeSec;
        if (java) {
            // Warm-up iterations 1..4 run unmeasured inside the
            // invocation; the measured fifth iteration still carries
            // a little residual compiler activity.
            trueTime *= JvmModel::warmupFactor(
                JvmMethodology::measuredIteration);
            trueTime *= 1.0 + 0.01 * std::fabs(invRng.gaussian());
        }
        const double measuredTime =
            trueTime * (1.0 + timeSigma * invRng.gaussian());

        const double invocationPowerScale =
            1.0 + powerSigma * invRng.gaussian();

        // Sample the power trace at 50Hz through the sensor chain —
        // supply ripple on the 12V rail (< 1%, section 2.5), Hall
        // sensor, ADC, calibration decode. The batched session is
        // bitwise equal to sampling one-by-one through
        // channel->sampleCounts (see sensor/sampling.hh).
        const double duration = std::min(measuredTime, maxSampledSec);
        const int samples = std::max(
            10, static_cast<int>(duration * PowerChannel::sampleHz));
        const double wattsSum = sensorRig.sensor->sessionWatts(
            phasePowerW.data(), powerPhases, invocationPowerScale,
            samples, invRng);

        timeStats.add(measuredTime);
        powerStats.add(wattsSum / samples);
    }

    Measurement m;
    m.timeSec = timeStats.mean();
    m.timeCi95Rel = timeStats.ci95Relative();
    m.powerW = powerStats.mean();
    m.powerCi95Rel = powerStats.ci95Relative();
    m.invocations = invocations;
    return m;
}

/**
 * The fault-aware measurement path. Every sampling session (one
 * benchmark invocation's 50Hz run) goes through the FaultInjector
 * and PowerTraceLogger; the raw pipeline (policy.harden == false)
 * then averages whatever the logger recorded, while the hardened
 * pipeline validates, retries, screens and re-runs per
 * MeasurementPolicy. Fully deterministic: sessions are numbered, and
 * every random decision flows from the experiment's derived stream.
 */
Measurement
ExperimentRunner::faultedMeasurement(const MachineConfig &cfg,
                                     const Benchmark &bench,
                                     const ExecutionProfile &prof,
                                     const std::vector<double> &phasePowerW,
                                     Rng &rng, uint64_t stream_hash)
{
    const Rig &sensorRig = rig(*cfg.spec);
    const bool java = bench.language() == Language::Java;
    const int invocations = bench.prescribedInvocations();
    const double timeSigma = java ? 0.016 : 0.004;
    const double powerSigma =
        (java ? 0.012 : 0.008) + 0.04 * bench.phaseVariability;
    const int railHigh = sensorRig.sensor->railHighCode();
    const int railLow = sensorRig.sensor->railLowCode();

    struct Session
    {
        double measuredTime = 0.0;
        int expectedSamples = 0;
        long lost = 0;
        std::vector<TraceSample> trace;
    };

    // Sessions are numbered across the whole measurement (initial
    // invocations, retries, CI-gate extras) so every one gets its
    // own fault stream and the sequence is reproducible.
    int nextSession = 0;
    auto runSession = [&]() {
        const int session = nextSession++;
        Rng invRng = rng.fork();

        double trueTime = prof.timeSec;
        if (java) {
            trueTime *= JvmModel::warmupFactor(
                JvmMethodology::measuredIteration);
            trueTime *= 1.0 + 0.01 * std::fabs(invRng.gaussian());
        }
        Session out;
        out.measuredTime =
            trueTime * (1.0 + timeSigma * invRng.gaussian());
        const double invocationPowerScale =
            1.0 + powerSigma * invRng.gaussian();

        const double duration =
            std::min(out.measuredTime, maxSampledSec);
        const int samples = std::max(
            10, static_cast<int>(duration * PowerChannel::sampleHz));
        out.expectedSamples = samples;

        FaultInjector injector(faults, stream_hash, session, samples);
        const auto sensorSession =
            sensorRig.sensor->beginSession(invRng);
        PowerTraceLogger logger(*sensorSession);
        for (int s = 0; s < samples; ++s) {
            const int k = static_cast<int>(
                static_cast<int64_t>(s) * powerPhases / samples) %
                powerPhases;
            const double trueW = phasePowerW[k] * invocationPowerScale *
                (1.0 + 0.003 * invRng.gaussian());
            logger.sampleFaulted(s / PowerChannel::sampleHz, trueW,
                                 invRng, injector.next());
        }
        out.lost = static_cast<long>(logger.lostSamples());
        out.trace = logger.samples();
        return out;
    };

    Measurement m;

    if (!policy.harden) {
        // The naive pipeline: believe the logger. A disconnected
        // logger reads as zero power, a railed sensor as its rail.
        Summary timeStats, powerStats;
        for (int inv = 0; inv < invocations; ++inv) {
            const Session s = runSession();
            double mean = 0.0;
            if (!s.trace.empty()) {
                double sum = 0.0;
                for (const TraceSample &ts : s.trace)
                    sum += ts.watts;
                mean = sum / s.trace.size();
            }
            timeStats.add(s.measuredTime);
            powerStats.add(mean);
            m.samplesLost += s.lost;
        }
        m.timeSec = timeStats.mean();
        m.timeCi95Rel = timeStats.ci95Relative();
        m.powerW = powerStats.mean();
        m.powerCi95Rel = powerStats.ci95Relative();
        m.invocations = invocations;
        return m;
    }

    struct Accepted
    {
        double timeSec;
        double powerW;
    };
    std::vector<Accepted> accepted;

    // Session validation: reject duplicate timestamps and railed ADC
    // codes sample by sample, then the session as a whole when too
    // few samples survive or its two halves disagree on mean power.
    auto validateSession = [&](const Session &s, Accepted &out) {
        m.samplesLost += s.lost;
        double sum = 0.0, headSum = 0.0, tailSum = 0.0;
        long kept = 0, headN = 0, tailN = 0;
        const double midTime =
            s.expectedSamples / PowerChannel::sampleHz * 0.5;
        double prevTime = -1.0;
        for (const TraceSample &ts : s.trace) {
            if (ts.timeSec == prevTime) {
                ++m.samplesDuplicated;
                continue;
            }
            prevTime = ts.timeSec;
            if (ts.counts >= railHigh || ts.counts <= railLow) {
                ++m.samplesRailed;
                continue;
            }
            sum += ts.watts;
            ++kept;
            if (ts.timeSec < midTime) {
                headSum += ts.watts;
                ++headN;
            } else {
                tailSum += ts.watts;
                ++tailN;
            }
        }
        if (kept < policy.minSampleFraction * s.expectedSamples)
            return false;
        const double mean = sum / kept;
        if (headN > 0 && tailN > 0 && mean > 0.0) {
            const double skew =
                std::fabs(headSum / headN - tailSum / tailN);
            if (skew > policy.balanceGateRel * mean)
                return false;
        }
        out.timeSec = s.measuredTime;
        out.powerW = mean;
        return true;
    };

    // One accepted invocation, re-running invalid sessions with a
    // fresh stream up to the retry cap.
    auto acquire = [&]() {
        for (int attempt = 0; attempt <= policy.maxRetries; ++attempt) {
            if (attempt > 0)
                ++m.retries;
            const Session s = runSession();
            Accepted a;
            if (validateSession(s, a)) {
                accepted.push_back(a);
                return true;
            }
        }
        return false;
    };

    for (int inv = 0; inv < invocations; ++inv) {
        if (!acquire())
            m.degraded = true;
    }
    if (accepted.size() < 2) {
        throw FaultError(Status::error(
            StatusCode::FaultDetected,
            msgOf("unrecoverable measurement for '", cfg.label(), "' / ",
                  bench.name, ": only ", accepted.size(),
                  " valid invocations after retries")));
    }

    // Median/MAD screen across accepted invocations, then the
    // paper's protocol: add invocations until the CIs pass the gate.
    Summary timeStats, powerStats;
    int rejected = 0;
    auto aggregate = [&]() {
        std::vector<double> powers;
        powers.reserve(accepted.size());
        for (const Accepted &a : accepted)
            powers.push_back(a.powerW);
        const double med = percentileOf(powers, 50.0);
        std::vector<double> dev;
        dev.reserve(powers.size());
        for (const double p : powers)
            dev.push_back(std::fabs(p - med));
        const double mad = percentileOf(std::move(dev), 50.0);
        // The noise floor keeps a near-zero MAD (tightly clustered
        // invocations) from rejecting everything over rounding dust.
        const double limit =
            policy.outlierMadK * std::max(mad, 0.005 * med);
        timeStats = Summary();
        powerStats = Summary();
        rejected = 0;
        for (const Accepted &a : accepted) {
            if (std::fabs(a.powerW - med) > limit) {
                ++rejected;
                continue;
            }
            timeStats.add(a.timeSec);
            powerStats.add(a.powerW);
        }
    };

    aggregate();
    while ((timeStats.count() < 2 ||
            timeStats.ci95Relative() > policy.ciGateRel ||
            powerStats.ci95Relative() > policy.ciGateRel) &&
           m.extraInvocations < policy.maxExtraInvocations) {
        ++m.extraInvocations;
        if (!acquire())
            m.degraded = true;
        aggregate();
    }
    if (timeStats.count() < 2) {
        // The screen left too little data; fall back to every
        // accepted invocation and flag the result.
        timeStats = Summary();
        powerStats = Summary();
        rejected = 0;
        for (const Accepted &a : accepted) {
            timeStats.add(a.timeSec);
            powerStats.add(a.powerW);
        }
        m.degraded = true;
    }
    if (timeStats.ci95Relative() > policy.ciGateRel ||
        powerStats.ci95Relative() > policy.ciGateRel)
        m.degraded = true;

    m.outlierInvocations = rejected;
    m.timeSec = timeStats.mean();
    m.timeCi95Rel = timeStats.ci95Relative();
    m.powerW = powerStats.mean();
    m.powerCi95Rel = powerStats.ci95Relative();
    m.invocations = static_cast<int>(timeStats.count());
    return m;
}

} // namespace lhr
