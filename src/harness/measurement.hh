/**
 * @file
 * Measurement results of the experimental harness.
 */

#ifndef LHR_HARNESS_MEASUREMENT_HH
#define LHR_HARNESS_MEASUREMENT_HH

#include <vector>

#include "power/chip_power.hh"

namespace lhr
{

/**
 * The aggregated measurement of one benchmark on one configuration:
 * means and relative 95% confidence intervals over the prescribed
 * number of invocations.
 */
struct Measurement
{
    double timeSec = 0.0;      ///< mean measured execution time
    double timeCi95Rel = 0.0;  ///< 95% CI as a fraction of the mean
    double powerW = 0.0;       ///< mean measured average power
    double powerCi95Rel = 0.0; ///< 95% CI as a fraction of the mean
    int invocations = 0;       ///< repetitions aggregated

    // Measurement-quality accounting, populated only when a fault
    // plan routed sampling through the injector (all zero on the
    // clean path; see MeasurementPolicy for the recovery protocol).
    long samplesLost = 0;       ///< 50Hz slots the logger missed
    long samplesRailed = 0;     ///< saturated ADC codes rejected
    long samplesDuplicated = 0; ///< stale repeats rejected
    int retries = 0;            ///< sessions re-run after validation
    int extraInvocations = 0;   ///< CI-gate re-runs beyond prescribed
    int outlierInvocations = 0; ///< invocations the MAD screen dropped
    bool degraded = false;      ///< recovery hit a cap; suspect result

    /** Energy = power x time (paper section 1). */
    double energyJ() const { return timeSec * powerW; }
};

/**
 * One deterministic (noise-free) execution: the ground truth the
 * sensor chain then measures. Exposed for model-level analyses and
 * tests that need to see behind the measurement error.
 */
struct ExecutionProfile
{
    double timeSec;                    ///< true execution time
    double grantedClockGhz;            ///< after the Turbo governor
    /**
     * The clock the pipeline actually ran at: grantedClockGhz minus
     * any AVX license reduction (ProcessorSpec::avxClockPenalty).
     * Equal to grantedClockGhz on the paper parts.
     */
    double effectiveClockGhz;
    std::vector<double> coreActivity;  ///< per enabled core (0 idle)
    double llcActivity;
    double dramGBs;
    int activeCores;                   ///< cores with nonzero activity
    PowerBreakdown power;              ///< true chip power
};

} // namespace lhr

#endif // LHR_HARNESS_MEASUREMENT_HH
