/**
 * @file
 * Reference execution times and energies (paper section 2.6).
 *
 * To avoid biasing results toward any one design, each benchmark's
 * execution time is normalized to its average time on four stock
 * machines spanning all four microarchitectures and technology
 * generations: Pentium 4 (130), Core 2 Duo (65), Atom (45) and
 * i5 (32). Reference energy is the average power on those machines
 * times the average time.
 */

#ifndef LHR_HARNESS_REFERENCE_HH
#define LHR_HARNESS_REFERENCE_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "harness/runner.hh"
#include "workload/benchmark.hh"

namespace lhr
{

/** Per-benchmark reference time / power / energy. */
class ReferenceSet
{
  public:
    /** Measure all benchmarks on the four reference machines. */
    explicit ReferenceSet(ExperimentRunner &runner);

    /** Average execution time across the reference machines. */
    double refTimeSec(const Benchmark &bench) const;

    /** Average power across the reference machines. */
    double refPowerW(const Benchmark &bench) const;

    /** Reference energy = average power x average time. */
    double refEnergyJ(const Benchmark &bench) const;

    /** Ids of the four reference processors. */
    static const std::vector<std::string> &referenceProcessorIds();

  private:
    struct Entry
    {
        double timeSec;
        double powerW;
    };

    // lhrlint:allow-next-line(det-unordered): keyed lookups only — never iterated, so the unspecified order cannot reach output
    std::unordered_map<std::string, Entry> entries;
    const Entry &entry(const Benchmark &bench) const;
};

} // namespace lhr

#endif // LHR_HARNESS_REFERENCE_HH
