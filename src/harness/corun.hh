/**
 * @file
 * Heterogeneous co-run interference.
 *
 * The paper measures benchmarks in isolation (§2.1) and defers
 * multi-programmed analysis. Beyond homogeneous SPECrate
 * (harness/multiprog), the other canonical question is heterogeneous
 * co-location: two different single-threaded programs sharing a
 * chip's LLC and memory bandwidth. CoRunner computes each program's
 * slowdown relative to running alone on the same configuration — the
 * interference matrix that colocation schedulers are built on.
 */

#ifndef LHR_HARNESS_CORUN_HH
#define LHR_HARNESS_CORUN_HH

#include "harness/runner.hh"

namespace lhr
{

/** Result of co-running two benchmarks on two cores. */
struct CoRunResult
{
    double slowdownA;   ///< timeA(co-run) / timeA(alone), >= ~1
    double slowdownB;
    double llcShareA;   ///< fraction of the LLC A's footprint wins
    double powerW;      ///< chip power while both run
};

/** Evaluates pairwise co-location interference. */
class CoRunner
{
  public:
    explicit CoRunner(ExperimentRunner &runner) : lab(runner) {}

    /**
     * Run two single-threaded benchmarks on two cores of the
     * configuration (SMT unused). panic()s when the configuration
     * has fewer than two cores or a benchmark is multithreaded.
     */
    CoRunResult run(const MachineConfig &cfg, const Benchmark &a,
                    const Benchmark &b);

    /**
     * Full interference matrix over a benchmark set: entry [i][j] is
     * the slowdown of benchmark i when co-run with benchmark j.
     */
    std::vector<std::vector<double>>
    matrix(const MachineConfig &cfg,
           const std::vector<const Benchmark *> &set);

  private:
    /** Per-thread IPC with an explicit fractional LLC share. */
    double ipcWithShare(const PerfModel &perf, const Benchmark &bench,
                        double clock_ghz, double llc_share) const;

    ExperimentRunner &lab;
};

} // namespace lhr

#endif // LHR_HARNESS_CORUN_HH
