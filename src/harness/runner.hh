/**
 * @file
 * The experiment runner: executes a benchmark on a machine
 * configuration end to end — performance model, JVM model for Java,
 * Turbo governor, chip power model, phase behaviour, the Hall-sensor
 * measurement chain, and the per-suite repetition methodology — and
 * returns the Measurement the paper's analyses consume.
 *
 * Concurrency: every public method is safe to call from multiple
 * threads. The memo cache is sharded by key hash; each entry is
 * computed exactly once (std::call_once) while other threads asking
 * for the same experiment block until it is ready. Per-processor
 * models and sensor rigs are built lazily the same way. Because each
 * experiment derives its own random stream from its key, results are
 * bit-identical whatever the thread count or execution order — the
 * contract lhr::SweepEngine builds on.
 */

#ifndef LHR_HARNESS_RUNNER_HH
#define LHR_HARNESS_RUNNER_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "cpu/perf_model.hh"
#include "fault/fault.hh"
#include "harness/measurement.hh"
#include "machine/processor.hh"
#include "util/env.hh"
#include "power/chip_power.hh"
#include "power/meters.hh"
#include "sensor/calibration.hh"
#include "sensor/channel.hh"
#include "sensor/sensor.hh"
#include "util/rng.hh"
#include "util/status.hh"
#include "workload/benchmark.hh"

namespace lhr
{

/** Memo-cache hit/miss counters (see ExperimentRunner::cacheStats). */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;

    uint64_t lookups() const { return hits + misses; }
};

/**
 * How the measurement pipeline defends itself when a rig is flaky
 * (a FaultPlan with nonzero rates is installed). With harden on, the
 * runner mirrors the paper's protocol of re-running until intervals
 * are tight: it validates every sampling session (drops railed ADC
 * codes and duplicate timestamps, rejects sessions with too few
 * surviving samples or an unbalanced first/second-half power mean),
 * re-runs invalid sessions with a fresh random stream, screens
 * accepted invocations with a median/MAD outlier test, and keeps
 * adding invocations until the 95% CIs pass the gate — all within
 * hard caps, so a dead rig degrades to a FaultError instead of an
 * infinite loop. None of this runs when the plan injects nothing:
 * the clean path is byte-identical to the fault-free laboratory.
 */
struct MeasurementPolicy
{
    /** Recover (true) or record the raw faulted stream (false). */
    bool harden = true;

    /** Re-run until both relative 95% CIs are inside this gate. */
    double ciGateRel = 0.05;

    /**
     * A session whose first- and second-half power means differ by
     * more than this fraction is rejected (calibration drift,
     * throttle or co-runner windows show up as exactly this skew).
     */
    double balanceGateRel = 0.04;

    /** Minimum surviving-sample fraction for a session to count. */
    double minSampleFraction = 0.6;

    /** Re-runs allowed per invalid invocation. */
    int maxRetries = 3;

    /** Extra invocations allowed by the CI gate. */
    int maxExtraInvocations = 12;

    /** Median/MAD rejection threshold across invocations. */
    double outlierMadK = 6.0;
};

/**
 * Runs experiments and caches results. Deterministic for a given
 * seed: every (configuration, benchmark) pair derives its own random
 * stream, so measurements are independent of execution order and of
 * the number of threads driving the runner.
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(uint64_t seed = defaultSeed());

    ExperimentRunner(const ExperimentRunner &) = delete;
    ExperimentRunner &operator=(const ExperimentRunner &) = delete;

    /**
     * Measure a benchmark on a configuration with the paper's
     * methodology: 3 invocations for SPEC CPU, 5 for PARSEC, 20 JVM
     * invocations reporting the fifth iteration for Java. Results
     * are cached; the returned reference stays valid for the
     * runner's lifetime. Thread-safe: concurrent calls under the
     * same key compute the measurement once and all receive the
     * same object.
     */
    const Measurement &measure(const MachineConfig &cfg,
                               const Benchmark &bench);

    /**
     * Outcome of one cell of measureBatch(): a cached measurement on
     * success, or the error that cell's experiment raised. One bad
     * cell never poisons its batch.
     */
    struct BatchOutcome
    {
        const Measurement *measurement = nullptr;
        Status status;

        bool ok() const { return status.ok() && measurement != nullptr; }
    };

    /**
     * Measure one benchmark across many configurations — the sweep's
     * batch fill mode. Semantically measure() per element (same keys,
     * same cache, same hit/miss accounting: one miss per cell this
     * call computes, one hit per cell already cached), but pending
     * cells are grouped per processor spec into ConfigBatches and
     * their execution profiles computed through the SoA batch model
     * path (PerfModel::evaluateBatch / ChipPowerModel::computeBatch).
     * Results are bit-identical to scalar measure() — the batch and
     * scalar paths share their per-lane implementations.
     *
     * Cells whose plan is faulted (a poisoned configuration or
     * nonzero injection rates) fall back to the scalar path cell by
     * cell, so fault behaviour is exactly measure()'s; the outcome
     * of a throwing cell carries the error while clean cells of the
     * same batch are unaffected.
     */
    std::vector<BatchOutcome>
    measureBatch(const std::vector<const MachineConfig *> &configs,
                 const Benchmark &bench);

    /**
     * Install a fault model. Experiments on the plan's poisoned
     * configuration throw FaultError from measure(); nonzero rates
     * route sampling through the FaultInjector. Must be called
     * before any measurement is cached (panic otherwise — cached
     * results taken under another plan would silently mix in).
     */
    void setFaultPlan(FaultPlan plan);
    const FaultPlan &faultPlan() const { return faults; }

    /**
     * Install the recovery policy (see MeasurementPolicy). Same
     * no-cached-measurements precondition as setFaultPlan().
     */
    void setMeasurementPolicy(const MeasurementPolicy &policy);
    const MeasurementPolicy &measurementPolicy() const { return policy; }

    /**
     * The deterministic execution profile (no sensor, no noise) at
     * the granted (possibly Turbo-boosted) clock.
     */
    ExecutionProfile profile(const MachineConfig &cfg,
                             const Benchmark &bench);

    /** The performance model of a processor (built lazily, once). */
    const PerfModel &perfModel(const ProcessorSpec &spec);

    /** The power model of a processor (built lazily, once). */
    const ChipPowerModel &powerModel(const ProcessorSpec &spec);

    /**
     * The calibrated measurement channel of a processor's rig.
     * panic()s when the rig's backend has no calibration (RAPL
     * decodes directly from energy units).
     */
    const Calibration &calibration(const ProcessorSpec &spec);

    /** The measurement backend of a processor's rig. */
    const PowerSensor &sensor(const ProcessorSpec &spec);

    /**
     * Force every rig this runner builds onto one backend (nullopt
     * restores the per-spec default). Must be called before any rig
     * is built — a rig constructed under another backend would
     * silently mix measurement chains (panic otherwise).
     */
    void setSensorBackend(std::optional<SensorBackend> backend);

    /**
     * The true per-phase power waveform of one execution — the
     * series the Hall sensor samples and the meters integrate.
     * Deterministic per (config, benchmark).
     */
    std::vector<PowerBreakdown> phasePowerSeries(
        const MachineConfig &cfg, const Benchmark &bench);

    /**
     * Replay one execution into on-chip structure meters — the
     * instrumentation the paper recommends architects expose. The
     * same phase series drives the external Hall sensor in
     * measure(), so the two can be compared.
     *
     * @param duration_sec out-parameter for the metered interval
     */
    StructureMeters meterRun(const MachineConfig &cfg,
                             const Benchmark &bench,
                             double *duration_sec = nullptr);

    /**
     * Pre-seed the memo cache with a previously persisted
     * measurement (checkpoint/resume: see SweepOptions::warmStart).
     * The entry behaves exactly like a computed one — measure() on
     * the same key returns it as a cache hit without running the
     * experiment. Returns false (and changes nothing) when the key
     * is already cached or being computed. Seeding counts neither
     * as a hit nor a miss.
     */
    bool seedCache(const MachineConfig &cfg, const Benchmark &bench,
                   const Measurement &m);

    /**
     * Probe the memo cache without computing, blocking, or touching
     * the hit/miss counters: the published measurement if this key
     * has one, nullptr when the key is absent OR still being
     * computed by another thread. This is the degraded-serve fast
     * path of `lhrlab serve` — under overload the daemon answers
     * from whatever is already warm rather than queueing, so the
     * probe must never wait on an in-flight computation.
     */
    [[nodiscard]] const Measurement *peekCache(const MachineConfig &cfg,
                                               const Benchmark &bench) const;

    /**
     * The exact cache/stream identity of one experiment — the string
     * the memo shards and random streams key on. Exposed for layers
     * that must agree with the cache about identity (the serve
     * module's request-coalescing registry); the display label is
     * NOT a substitute (it rounds the clock).
     */
    [[nodiscard]] static std::string keyOf(const MachineConfig &cfg,
                                           const Benchmark &bench);

    /**
     * Memo-cache counters since construction (or the last reset).
     * A miss is counted by the thread that inserts the entry; every
     * other lookup of that key is a hit, including lookups that
     * block while the inserting thread is still measuring.
     */
    CacheStats cacheStats() const;

    /** Zero the hit/miss counters (entries stay cached). */
    void resetCacheStats();

    /** Number of measurements currently memoized. */
    size_t cachedMeasurements() const;

    /** Sensor sampling is capped to this many simulated seconds. */
    static constexpr double maxSampledSec = 30.0;

    /** Number of power phases per execution. */
    static constexpr int powerPhases = 64;

  private:
    struct Rig
    {
        std::unique_ptr<PowerSensor> sensor;
    };

    /**
     * A lazily-built, build-exactly-once slot. The map that owns the
     * slot is guarded by a mutex, but construction of the value runs
     * outside that lock under the slot's own once_flag, so slow
     * builds (model fitting, calibration sweeps) of different specs
     * proceed in parallel.
     */
    template <typename T>
    struct OnceSlot
    {
        std::once_flag once;
        T value;
    };

    /**
     * One memoized measurement. Producers publish through the
     * once_flag (concurrent readers of the same key block there);
     * `ready` flips true only after `value` is fully assigned, so
     * peekCache() can answer "is this published?" without blocking
     * on an in-flight computation.
     */
    struct MemoEntry
    {
        std::once_flag once;
        std::atomic<bool> ready{false};
        Measurement value;
    };

    /**
     * One memo-cache shard: a mutex plus the entries it guards. The
     * hit/miss counters live per shard too (summed by cacheStats()),
     * so the counter cache line is contended by at most the threads
     * hashing into one shard instead of by every lookup in the
     * process.
     */
    struct MemoShard
    {
        mutable std::mutex mutex;
        // unique_ptr gives every entry a stable address: references
        // handed out by measure() survive rehashing and concurrent
        // inserts into the same shard.
        // lhrlint:allow-next-line(det-unordered): keyed lookups only — the memo cache is never iterated (sweeps emit in row-major grid order)
        std::unordered_map<std::string, std::unique_ptr<MemoEntry>>
            entries;
        std::atomic<uint64_t> hits{0};
        std::atomic<uint64_t> misses{0};
    };

    static constexpr size_t memoShardCount = 16;

    template <typename T>
    using SpecSlotMap = // lhrlint:allow-next-line(det-unordered): keyed lookups only — slot maps are never iterated
        std::unordered_map<const ProcessorSpec *,
                           std::unique_ptr<OnceSlot<T>>>;

    template <typename T, typename Build>
    const T &specOnce(SpecSlotMap<T> &map, const ProcessorSpec &spec,
                      Build &&build);

    const Rig &rig(const ProcessorSpec &spec);
    Measurement runMeasurement(const MachineConfig &cfg,
                               const Benchmark &bench);
    Measurement measureWithProfile(const MachineConfig &cfg,
                                   const Benchmark &bench,
                                   const ExecutionProfile &prof);
    std::vector<ExecutionProfile> profileBatch(const ConfigBatch &batch,
                                               const Benchmark &bench);
    Measurement faultedMeasurement(const MachineConfig &cfg,
                                   const Benchmark &bench,
                                   const ExecutionProfile &prof,
                                   const std::vector<double> &phasePowerW,
                                   Rng &rng, uint64_t stream_hash);
    std::vector<PowerBreakdown> phaseBreakdowns(
        const MachineConfig &cfg, const Benchmark &bench,
        const ExecutionProfile &prof, Rng &rng);

    uint64_t baseSeed;
    FaultPlan faults;
    MeasurementPolicy policy;
    std::optional<SensorBackend> backendChoice;

    std::array<MemoShard, memoShardCount> memoShards;

    std::mutex specMutex; ///< guards the three per-spec slot maps
    SpecSlotMap<std::unique_ptr<PerfModel>> perfModels;
    SpecSlotMap<std::unique_ptr<ChipPowerModel>> powerModels;
    SpecSlotMap<Rig> rigs;
};

} // namespace lhr

#endif // LHR_HARNESS_RUNNER_HH
