/**
 * @file
 * The experiment runner: executes a benchmark on a machine
 * configuration end to end — performance model, JVM model for Java,
 * Turbo governor, chip power model, phase behaviour, the Hall-sensor
 * measurement chain, and the per-suite repetition methodology — and
 * returns the Measurement the paper's analyses consume.
 */

#ifndef LHR_HARNESS_RUNNER_HH
#define LHR_HARNESS_RUNNER_HH

#include <memory>
#include <string>
#include <unordered_map>

#include "cpu/perf_model.hh"
#include "harness/measurement.hh"
#include "machine/processor.hh"
#include "power/chip_power.hh"
#include "power/meters.hh"
#include "sensor/calibration.hh"
#include "sensor/channel.hh"
#include "util/rng.hh"
#include "workload/benchmark.hh"

namespace lhr
{

/**
 * Runs experiments and caches results. Deterministic for a given
 * seed: every (configuration, benchmark) pair derives its own random
 * stream, so measurements are independent of execution order.
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(uint64_t seed = 0xC0FFEEull);

    /**
     * Measure a benchmark on a configuration with the paper's
     * methodology: 3 invocations for SPEC CPU, 5 for PARSEC, 20 JVM
     * invocations reporting the fifth iteration for Java. Results
     * are cached.
     */
    const Measurement &measure(const MachineConfig &cfg,
                               const Benchmark &bench);

    /**
     * The deterministic execution profile (no sensor, no noise) at
     * the granted (possibly Turbo-boosted) clock.
     */
    ExecutionProfile profile(const MachineConfig &cfg,
                             const Benchmark &bench);

    /** The performance model of a processor (built lazily). */
    const PerfModel &perfModel(const ProcessorSpec &spec);

    /** The power model of a processor (built lazily). */
    const ChipPowerModel &powerModel(const ProcessorSpec &spec);

    /** The calibrated measurement channel of a processor's rig. */
    const Calibration &calibration(const ProcessorSpec &spec);

    /**
     * The true per-phase power waveform of one execution — the
     * series the Hall sensor samples and the meters integrate.
     * Deterministic per (config, benchmark).
     */
    std::vector<PowerBreakdown> phasePowerSeries(
        const MachineConfig &cfg, const Benchmark &bench);

    /**
     * Replay one execution into on-chip structure meters — the
     * instrumentation the paper recommends architects expose. The
     * same phase series drives the external Hall sensor in
     * measure(), so the two can be compared.
     *
     * @param duration_sec out-parameter for the metered interval
     */
    StructureMeters meterRun(const MachineConfig &cfg,
                             const Benchmark &bench,
                             double *duration_sec = nullptr);

    /** Sensor sampling is capped to this many simulated seconds. */
    static constexpr double maxSampledSec = 30.0;

    /** Number of power phases per execution. */
    static constexpr int powerPhases = 64;

  private:
    struct Rig
    {
        std::unique_ptr<PowerChannel> channel;
        std::unique_ptr<Calibration> calib;
    };

    const Rig &rig(const ProcessorSpec &spec);
    Measurement runMeasurement(const MachineConfig &cfg,
                               const Benchmark &bench);
    std::vector<PowerBreakdown> phaseBreakdowns(
        const MachineConfig &cfg, const Benchmark &bench,
        const ExecutionProfile &prof, Rng &rng);

    uint64_t baseSeed;
    std::unordered_map<std::string, Measurement> cache;
    std::unordered_map<const ProcessorSpec *,
                       std::unique_ptr<PerfModel>> perfModels;
    std::unordered_map<const ProcessorSpec *,
                       std::unique_ptr<ChipPowerModel>> powerModels;
    std::unordered_map<const ProcessorSpec *, Rig> rigs;
};

} // namespace lhr

#endif // LHR_HARNESS_RUNNER_HH
