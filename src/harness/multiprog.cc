#include "harness/multiprog.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lhr
{

RateResult
RateRunner::run(const MachineConfig &cfg, const Benchmark &bench,
                int copies)
{
    if (bench.appThreads != 1)
        panic(msgOf("RateRunner: ", bench.name,
                    " is not single-threaded"));
    if (copies < 1 || copies > cfg.contexts())
        panic(msgOf("RateRunner: ", copies, " copies out of range"));

    const ProcessorSpec &spec = *cfg.spec;
    const PerfModel &perf = lab.perfModel(spec);
    const ChipPowerModel &power = lab.powerModel(spec);
    const MicroArch &ua = spec.uarch();

    // Copies spread across cores first, then SMT contexts.
    const int coresUsed = std::min(copies, cfg.enabledCores);
    const int threadsPerCore = (copies + coresUsed - 1) / coresUsed;

    const double coreIpc = perf.coreIpc(
        bench, cfg.clockGhz, threadsPerCore, coresUsed);
    double aggregateIps =
        coresUsed * coreIpc * cfg.clockGhz * 1e9 * spec.perfCal;

    // DRAM bandwidth ceiling over all copies.
    const double coreDivisor =
        1.0 + (threadsPerCore - 1) * 2.0 * ua.smtCachePressure;
    const auto traffic = perf.hierarchy().evaluate(
        bench.miss, coreDivisor, coreDivisor * coresUsed);
    const double requestedGBs = aggregateIps * traffic.dramMpki /
        1000.0 * DramModel::lineBytes / 1e9;
    const double throttle = spec.memory().throttle(requestedGBs);
    aggregateIps *= throttle;

    const double work = bench.instructionsB() * 1e9;
    RateResult result;
    result.copies = copies;
    result.timeSec = copies * work / aggregateIps;

    // Relative throughput: one copy on the same configuration.
    const double soloIpc =
        perf.coreIpc(bench, cfg.clockGhz, 1, 1.0) * cfg.clockGhz *
        1e9 * spec.perfCal;
    result.throughput = aggregateIps / soloIpc;
    result.rateEfficiency = result.throughput / copies;

    // Chip power while the batch runs.
    const double util = coreIpc * throttle / ua.issueWidth;
    std::vector<double> activity(cfg.enabledCores, 0.0);
    for (int core = 0; core < coresUsed; ++core) {
        activity[core] = std::min(
            1.0, switchingActivity(std::min(1.0, util),
                                   bench.fpShare) +
                0.07 * (threadsPerCore - 1));
    }
    const double dramGBs = std::min(requestedGBs,
                                    spec.memory().bandwidthGBs);
    const double llcActivity = std::min(
        1.0, aggregateIps * traffic.l1Mpki / 1000.0 / 2e8);
    result.powerW = power.compute(cfg, cfg.clockGhz, activity,
                                  llcActivity, dramGBs).total();
    result.energyPerCopyJ = result.powerW * result.timeSec / copies;
    return result;
}

std::vector<RateResult>
RateRunner::sweep(const MachineConfig &cfg, const Benchmark &bench)
{
    std::vector<RateResult> results;
    for (int copies = 1; copies <= cfg.contexts(); ++copies)
        results.push_back(run(cfg, bench, copies));
    return results;
}

} // namespace lhr
