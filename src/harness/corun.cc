#include "harness/corun.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lhr
{

double
CoRunner::ipcWithShare(const PerfModel &perf, const Benchmark &bench,
                       double clock_ghz, double llc_share) const
{
    // The share maps to a per-thread LLC capacity divisor.
    return perf.threadCpi(bench, clock_ghz, 1, 1.0 / llc_share).ipc();
}

CoRunResult
CoRunner::run(const MachineConfig &cfg, const Benchmark &a,
              const Benchmark &b)
{
    if (cfg.enabledCores < 2)
        panic("CoRunner: needs at least two cores");
    if (a.appThreads != 1 || b.appThreads != 1)
        panic("CoRunner: both benchmarks must be single-threaded");

    const ProcessorSpec &spec = *cfg.spec;
    const PerfModel &perf = lab.perfModel(spec);
    const ChipPowerModel &power = lab.powerModel(spec);
    const double hz = cfg.clockGhz * 1e9 * spec.perfCal;

    // LRU capacity contention: the thread inserting more lines wins
    // more of the shared array. Weight by miss pressure at half the
    // LLC each.
    const double llcKb = spec.llcMb * 1024.0;
    const double pressureA = a.miss.missPerKi(llcKb / 2.0) + 0.05;
    const double pressureB = b.miss.missPerKi(llcKb / 2.0) + 0.05;
    double shareA = pressureA / (pressureA + pressureB);
    shareA = std::clamp(shareA, 0.15, 0.85);

    const double soloIpcA = ipcWithShare(perf, a, cfg.clockGhz, 1.0);
    const double soloIpcB = ipcWithShare(perf, b, cfg.clockGhz, 1.0);
    double coIpcA = ipcWithShare(perf, a, cfg.clockGhz, shareA);
    double coIpcB =
        ipcWithShare(perf, b, cfg.clockGhz, 1.0 - shareA);

    // Shared memory bandwidth: both threads' DRAM traffic together.
    const auto trafficA =
        perf.hierarchy().evaluate(a.miss, 1.0, 1.0 / shareA);
    const auto trafficB =
        perf.hierarchy().evaluate(b.miss, 1.0, 1.0 / (1.0 - shareA));
    const double requestedGBs =
        (coIpcA * hz * trafficA.dramMpki +
         coIpcB * hz * trafficB.dramMpki) /
        1000.0 * DramModel::lineBytes / 1e9;
    const double throttle = spec.memory().throttle(requestedGBs);
    coIpcA *= throttle;
    coIpcB *= throttle;

    CoRunResult result;
    result.llcShareA = shareA;
    result.slowdownA = soloIpcA / coIpcA;
    result.slowdownB = soloIpcB / coIpcB;

    // Chip power while both run.
    const MicroArch &ua = spec.uarch();
    std::vector<double> activity(cfg.enabledCores, 0.0);
    activity[0] = switchingActivity(
        std::min(1.0, coIpcA / ua.issueWidth), a.fpShare);
    activity[1] = switchingActivity(
        std::min(1.0, coIpcB / ua.issueWidth), b.fpShare);
    const double llcActivity = std::min(
        1.0,
        (coIpcA * hz * trafficA.l1Mpki +
         coIpcB * hz * trafficB.l1Mpki) / 1000.0 / 2e8);
    result.powerW = power.compute(
        cfg, cfg.clockGhz, activity, llcActivity,
        std::min(requestedGBs, spec.memory().bandwidthGBs)).total();
    return result;
}

std::vector<std::vector<double>>
CoRunner::matrix(const MachineConfig &cfg,
                 const std::vector<const Benchmark *> &set)
{
    std::vector<std::vector<double>> slowdowns(
        set.size(), std::vector<double>(set.size(), 1.0));
    for (size_t i = 0; i < set.size(); ++i) {
        for (size_t j = 0; j < set.size(); ++j) {
            const auto result = run(cfg, *set[i], *set[j]);
            slowdowns[i][j] = result.slowdownA;
        }
    }
    return slowdowns;
}

} // namespace lhr
