#include "harness/reference.hh"

#include "util/logging.hh"

namespace lhr
{

const std::vector<std::string> &
ReferenceSet::referenceProcessorIds()
{
    static const std::vector<std::string> ids = {
        "Pentium4 (130)", "C2D (65)", "Atom (45)", "i5 (32)",
    };
    return ids;
}

ReferenceSet::ReferenceSet(ExperimentRunner &runner)
{
    for (const auto &bench : allBenchmarks()) {
        double timeSum = 0.0;
        double powerSum = 0.0;
        for (const auto &id : referenceProcessorIds()) {
            const auto cfg = stockConfig(processorById(id));
            const Measurement &m = runner.measure(cfg, bench);
            timeSum += m.timeSec;
            powerSum += m.powerW;
        }
        const double n = referenceProcessorIds().size();
        entries[bench.name] = {timeSum / n, powerSum / n};
    }
}

const ReferenceSet::Entry &
ReferenceSet::entry(const Benchmark &bench) const
{
    auto it = entries.find(bench.name);
    if (it == entries.end())
        panic(msgOf("ReferenceSet: no entry for ", bench.name));
    return it->second;
}

double
ReferenceSet::refTimeSec(const Benchmark &bench) const
{
    return entry(bench).timeSec;
}

double
ReferenceSet::refPowerW(const Benchmark &bench) const
{
    return entry(bench).powerW;
}

double
ReferenceSet::refEnergyJ(const Benchmark &bench) const
{
    const Entry &e = entry(bench);
    return e.timeSec * e.powerW;
}

} // namespace lhr
