/**
 * @file
 * Equal-weight aggregation of benchmark results (paper section 2.6).
 *
 * Benchmarks are weighted equally within each group; the four groups
 * are weighted equally in the overall average (Avg_w), avoiding bias
 * from the differing group sizes (5 to 27 benchmarks). The simple
 * benchmark mean (Avg_b) is also reported, as in Table 4.
 */

#ifndef LHR_HARNESS_AGGREGATE_HH
#define LHR_HARNESS_AGGREGATE_HH

#include <array>

#include "harness/reference.hh"
#include "harness/runner.hh"
#include "workload/benchmark.hh"

namespace lhr
{

/** Aggregated performance, power and normalized energy. */
struct GroupAggregate
{
    double perf;     ///< mean of refTime / time (speedup over reference)
    double powerW;   ///< mean measured power
    double energy;   ///< mean of energy / refEnergy
};

/** Full aggregation of one configuration over all benchmarks. */
struct ConfigAggregate
{
    std::array<GroupAggregate, 4> byGroup; ///< indexed by Group order
    GroupAggregate weighted;               ///< Avg_w: mean of groups
    GroupAggregate simple;                 ///< Avg_b: mean of benchmarks
    double minPerf, maxPerf;               ///< per-benchmark extremes
    double minPowerW, maxPowerW;

    const GroupAggregate &group(Group g) const;
};

/** Per-benchmark normalized result on one configuration. */
struct BenchResult
{
    const Benchmark *bench;
    double perf;     ///< refTime / time
    double powerW;
    double energy;   ///< energy / refEnergy
};

/** Normalized result of one benchmark on one configuration. */
BenchResult benchResult(ExperimentRunner &runner, const ReferenceSet &ref,
                        const MachineConfig &cfg, const Benchmark &bench);

/**
 * Measure every benchmark on the configuration and aggregate
 * (Table 4's methodology).
 */
ConfigAggregate aggregateConfig(ExperimentRunner &runner,
                                const ReferenceSet &ref,
                                const MachineConfig &cfg);

} // namespace lhr

#endif // LHR_HARNESS_AGGREGATE_HH
