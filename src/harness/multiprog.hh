/**
 * @file
 * Multi-programmed (SPECrate-style) workloads.
 *
 * The paper's methodology section scopes this out: "While
 * multi-programmed workload measurements, such as SPECrate, can be
 * valuable, the methodological and analysis challenges they raise
 * are beyond the scope of this paper" (§2.1). This module takes it
 * on: N independent copies of a single-threaded benchmark run on N
 * hardware contexts, sharing caches, DRAM bandwidth, and the power
 * budget. The headline metric is rate throughput (copies x work /
 * time) and the energy per copy.
 */

#ifndef LHR_HARNESS_MULTIPROG_HH
#define LHR_HARNESS_MULTIPROG_HH

#include "harness/runner.hh"

namespace lhr
{

/** Result of a rate run. */
struct RateResult
{
    int copies;
    double timeSec;        ///< completion time of the batch
    double throughput;     ///< copies / time, relative to one copy
    double powerW;         ///< true chip power during the batch
    double energyPerCopyJ; ///< energy divided by copies
    double rateEfficiency; ///< throughput / copies (1 = perfect)
};

/**
 * Evaluates SPECrate-style homogeneous multiprogramming on a
 * configuration: each copy is an independent single-threaded
 * process, so there is no serial section, but the copies contend for
 * cache capacity and DRAM bandwidth exactly as the paper's scalable
 * workloads do.
 */
class RateRunner
{
  public:
    explicit RateRunner(ExperimentRunner &runner) : lab(runner) {}

    /**
     * Run `copies` copies of a single-threaded benchmark.
     * panic()s for multithreaded benchmarks or copies outside
     * [1, contexts].
     */
    RateResult run(const MachineConfig &cfg, const Benchmark &bench,
                   int copies);

    /** Rate sweep from 1 copy to the configuration's context count. */
    std::vector<RateResult> sweep(const MachineConfig &cfg,
                                  const Benchmark &bench);

  private:
    ExperimentRunner &lab;
};

} // namespace lhr

#endif // LHR_HARNESS_MULTIPROG_HH
