#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace lhr
{

namespace
{
LogLevel globalLevel = LogLevel::Warn;
} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const std::string &msg)
{
    if (globalLevel >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (globalLevel >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace lhr
