#include "util/csv.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace lhr
{

namespace
{

bool
hasWhitespaceEdge(const std::string &text)
{
    return !text.empty() &&
        (std::isspace(static_cast<unsigned char>(text.front())) ||
         std::isspace(static_cast<unsigned char>(text.back())));
}

std::string
quoteIfNeeded(const std::string &text)
{
    // Leading/trailing whitespace is significant only inside quotes
    // (splitCsvLine trims unquoted fields), so such fields must be
    // quoted or they would not survive a save/load round trip.
    if (text.find_first_of(",\"\n") == std::string::npos &&
        !hasWhitespaceEdge(text))
        return text;
    std::string out = "\"";
    for (char ch : text) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

CsvWriter::CsvWriter(std::ostream &os, const std::vector<std::string> &header)
    : out(os), columnCount(header.size()), rowOpen(false)
{
    if (header.empty())
        panic("CsvWriter: empty header");
    for (size_t i = 0; i < header.size(); ++i)
        out << (i ? "," : "") << quoteIfNeeded(header[i]);
    out << '\n';
}

void
CsvWriter::beginRow()
{
    if (rowOpen)
        flushRow();
    pending.clear();
    rowOpen = true;
}

void
CsvWriter::field(const std::string &text)
{
    if (!rowOpen)
        panic("CsvWriter: field before beginRow");
    if (pending.size() >= columnCount)
        panic("CsvWriter: too many fields in row");
    pending.push_back(quoteIfNeeded(text));
}

void
CsvWriter::field(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    field(std::string(buf));
}

void
CsvWriter::field(long value)
{
    field(std::to_string(value));
}

void
CsvWriter::flushRow()
{
    if (pending.size() != columnCount) {
        panic(msgOf("CsvWriter: row has ", pending.size(),
                    " fields, expected ", columnCount));
    }
    for (size_t i = 0; i < pending.size(); ++i)
        out << (i ? "," : "") << pending[i];
    out << '\n';
    rowOpen = false;
}

CsvWriter::~CsvWriter()
{
    if (rowOpen)
        flushRow();
}

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::string field;
    bool quoted = false;     // currently inside a quoted run
    bool wasQuoted = false;  // this field had a quoted run
    bool prefixBlank = true; // nothing but whitespace seen so far

    const auto finishField = [&] {
        // Whitespace around an unquoted field is insignificant
        // (CRLF remnants, hand-padded rows); quoted content is
        // verbatim, which is what lets labels with significant
        // whitespace round-trip.
        fields.push_back(wasQuoted ? field : trimmedField(field));
        field.clear();
        quoted = false;
        wasQuoted = false;
        prefixBlank = true;
    };

    for (size_t i = 0; i < line.size(); ++i) {
        const char ch = line[i];
        if (quoted) {
            if (ch == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    field += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                field += ch;
            }
        } else if (ch == '"' && !wasQuoted && prefixBlank) {
            // An opening quote may follow stray whitespace (a
            // hand-edited ` "a,b"` field); the whitespace is not
            // part of the field.
            field.clear();
            quoted = true;
            wasQuoted = true;
        } else if (ch == ',') {
            finishField();
        } else if (wasQuoted) {
            // Junk after the closing quote: ignore the whitespace a
            // hand edit leaves, keep anything else (lenient).
            if (!std::isspace(static_cast<unsigned char>(ch)))
                field += ch;
        } else {
            if (!std::isspace(static_cast<unsigned char>(ch)))
                prefixBlank = false;
            field += ch;
        }
    }
    finishField();
    return fields;
}

std::string
trimmedField(const std::string &text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

Expected<double>
parseCsvNumber(const std::string &raw)
{
    // Files written or hand-edited on Windows carry CRLF line ends;
    // getline leaves the '\r' on the last field. Trim it (and any
    // stray spaces) rather than rejecting the field.
    const std::string text = trimmedField(raw);
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (text.empty() || end == text.c_str() || *end != '\0') {
        return Status::error(StatusCode::ParseError,
                             "bad number '" + raw + "'");
    }
    if (!std::isfinite(value)) {
        return Status::error(StatusCode::ParseError,
                             "non-finite number '" + raw + "'");
    }
    return value;
}

} // namespace lhr
