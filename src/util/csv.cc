#include "util/csv.hh"

#include <cstdio>

#include "util/logging.hh"

namespace lhr
{

namespace
{

std::string
quoteIfNeeded(const std::string &text)
{
    if (text.find_first_of(",\"\n") == std::string::npos)
        return text;
    std::string out = "\"";
    for (char ch : text) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

CsvWriter::CsvWriter(std::ostream &os, const std::vector<std::string> &header)
    : out(os), columnCount(header.size()), rowOpen(false)
{
    if (header.empty())
        panic("CsvWriter: empty header");
    for (size_t i = 0; i < header.size(); ++i)
        out << (i ? "," : "") << quoteIfNeeded(header[i]);
    out << '\n';
}

void
CsvWriter::beginRow()
{
    if (rowOpen)
        flushRow();
    pending.clear();
    rowOpen = true;
}

void
CsvWriter::field(const std::string &text)
{
    if (!rowOpen)
        panic("CsvWriter: field before beginRow");
    if (pending.size() >= columnCount)
        panic("CsvWriter: too many fields in row");
    pending.push_back(quoteIfNeeded(text));
}

void
CsvWriter::field(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    field(std::string(buf));
}

void
CsvWriter::field(long value)
{
    field(std::to_string(value));
}

void
CsvWriter::flushRow()
{
    if (pending.size() != columnCount) {
        panic(msgOf("CsvWriter: row has ", pending.size(),
                    " fields, expected ", columnCount));
    }
    for (size_t i = 0; i < pending.size(); ++i)
        out << (i ? "," : "") << pending[i];
    out << '\n';
    rowOpen = false;
}

CsvWriter::~CsvWriter()
{
    if (rowOpen)
        flushRow();
}

} // namespace lhr
