/**
 * @file
 * String hashing for deriving deterministic random streams from
 * names (experiment keys, vendor/benchmark pairs).
 */

#ifndef LHR_UTIL_HASH_HH
#define LHR_UTIL_HASH_HH

#include <cstdint>
#include <string>

namespace lhr
{

/** FNV-1a over the bytes of a string. */
uint64_t fnv1a(const std::string &text);

} // namespace lhr

#endif // LHR_UTIL_HASH_HH
