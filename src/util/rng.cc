#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace lhr
{

namespace
{

/** SplitMix64 step, used for seeding. */
uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(uint64_t seed)
    : cachedGaussian(0.0), hasCachedGaussian(false)
{
    uint64_t x = seed;
    for (auto &word : s)
        word = splitMix64(x);
}

double
Rng::gaussian()
{
    if (hasCachedGaussian) {
        hasCachedGaussian = false;
        return cachedGaussian;
    }
    const double u1 = uniformPositive();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian = r * std::sin(theta);
    hasCachedGaussian = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

void
Rng::panicBelowZero()
{
    panic("Rng::below called with n == 0");
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

} // namespace lhr
