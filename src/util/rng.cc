#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace lhr
{

namespace
{

/** SplitMix64 step, used for seeding. */
uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
    : cachedGaussian(0.0), hasCachedGaussian(false)
{
    uint64_t x = seed;
    for (auto &word : s)
        word = splitMix64(x);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

double
Rng::gaussian()
{
    if (hasCachedGaussian) {
        hasCachedGaussian = false;
        return cachedGaussian;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian = r * std::sin(theta);
    hasCachedGaussian = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

uint64_t
Rng::below(uint64_t n)
{
    if (n == 0)
        panic("Rng::below called with n == 0");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t v = 0;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

} // namespace lhr
