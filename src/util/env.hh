/**
 * @file
 * Process-environment knobs of the laboratory.
 *
 * Every Lab and ExperimentRunner seeds its random streams from
 * defaultSeed(): the LHR_SEED environment variable when set (decimal
 * or 0x-prefixed hex), otherwise the historical 0xC0FFEE default the
 * paper reproduction has always used. Front ends (lhrlab --seed)
 * can override both with setSeedOverride().
 */

#ifndef LHR_UTIL_ENV_HH
#define LHR_UTIL_ENV_HH

#include <cstdint>
#include <optional>
#include <string>

#include "util/status.hh"

namespace lhr
{

/** The seed used when none is given explicitly: 0xC0FFEE. */
inline constexpr uint64_t builtinSeed = 0xC0FFEEull;

/**
 * The experiment seed: the --seed override if one was installed,
 * else LHR_SEED from the environment, else builtinSeed.
 */
[[nodiscard]] uint64_t defaultSeed();

/** Install (or, with nullopt, clear) a process-wide seed override. */
void setSeedOverride(std::optional<uint64_t> seed);

/**
 * Parse a seed string: decimal or 0x-prefixed hexadecimal.
 * Returns nullopt on malformed input.
 */
[[nodiscard]] std::optional<uint64_t> parseSeed(const std::string &text);

/**
 * Parse a command-line integer strictly: the whole string must be a
 * decimal integer inside [min, max]. Unlike atoi, "banana" and "4x"
 * are ParseErrors instead of silently becoming 0 and 4.
 */
[[nodiscard]] Expected<long> parseInt(const std::string &text, long min, long max);

/**
 * Parse a command-line real strictly: the whole string must be a
 * finite number. Unlike atof, trailing junk is a ParseError.
 */
[[nodiscard]] Expected<double> parseReal(const std::string &text);

} // namespace lhr

#endif // LHR_UTIL_ENV_HH
