#include "util/env.hh"

#include <cstdlib>

namespace lhr
{

namespace
{

std::optional<uint64_t> &
seedOverrideSlot()
{
    static std::optional<uint64_t> slot;
    return slot;
}

} // namespace

std::optional<uint64_t>
parseSeed(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    const bool hex =
        text.size() > 2 && text[0] == '0' &&
        (text[1] == 'x' || text[1] == 'X');
    errno = 0;
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str() + (hex ? 2 : 0), &end, hex ? 16 : 10);
    if (errno != 0 || end == nullptr || *end != '\0')
        return std::nullopt;
    return static_cast<uint64_t>(value);
}

uint64_t
defaultSeed()
{
    if (seedOverrideSlot())
        return *seedOverrideSlot();
    if (const char *env = std::getenv("LHR_SEED")) {
        if (const auto seed = parseSeed(env))
            return *seed;
    }
    return builtinSeed;
}

void
setSeedOverride(std::optional<uint64_t> seed)
{
    seedOverrideSlot() = seed;
}

} // namespace lhr
