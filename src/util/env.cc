#include "util/env.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/logging.hh"

namespace lhr
{

namespace
{

std::optional<uint64_t> &
seedOverrideSlot()
{
    static std::optional<uint64_t> slot;
    return slot;
}

} // namespace

std::optional<uint64_t>
parseSeed(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    const bool hex =
        text.size() > 2 && text[0] == '0' &&
        (text[1] == 'x' || text[1] == 'X');
    errno = 0;
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str() + (hex ? 2 : 0), &end, hex ? 16 : 10);
    if (errno != 0 || end == nullptr || *end != '\0')
        return std::nullopt;
    return static_cast<uint64_t>(value);
}

uint64_t
defaultSeed()
{
    if (seedOverrideSlot())
        return *seedOverrideSlot();
    if (const char *env = std::getenv("LHR_SEED")) {
        if (const auto seed = parseSeed(env))
            return *seed;
    }
    return builtinSeed;
}

void
setSeedOverride(std::optional<uint64_t> seed)
{
    seedOverrideSlot() = seed;
}

Expected<long>
parseInt(const std::string &text, long min, long max)
{
    errno = 0;
    char *end = nullptr;
    const long value = std::strtol(text.c_str(), &end, 10);
    if (text.empty() || end == text.c_str() || *end != '\0' ||
        errno == ERANGE) {
        return Status::error(StatusCode::ParseError,
                             "'" + text + "' is not an integer");
    }
    if (value < min || value > max) {
        return Status::error(
            StatusCode::InvalidArgument,
            msgOf("'", text, "' is outside ", min, "..", max));
    }
    return value;
}

Expected<double>
parseReal(const std::string &text)
{
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (text.empty() || end == text.c_str() || *end != '\0') {
        return Status::error(StatusCode::ParseError,
                             "'" + text + "' is not a number");
    }
    if (!std::isfinite(value)) {
        return Status::error(StatusCode::InvalidArgument,
                             "'" + text + "' is not finite");
    }
    return value;
}

} // namespace lhr
