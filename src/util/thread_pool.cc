#include "util/thread_pool.hh"

#include <cstdlib>
#include <string>

#include "util/logging.hh"

namespace lhr
{

int
ThreadPool::defaultThreadCount()
{
    if (const char *env = std::getenv("LHR_THREADS")) {
        char *end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && n > 0 && n <= 1024)
            return static_cast<int>(n);
        warn("LHR_THREADS='" + std::string(env) +
             "' is not a positive integer; ignoring");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads)
{
    if (threads < 0)
        panic(msgOf("ThreadPool: negative thread count ", threads));
    if (threads == 0)
        threads = defaultThreadCount();

    queues.reserve(threads);
    for (int i = 0; i < threads; ++i)
        queues.push_back(std::make_unique<WorkerQueue>());
    workers.reserve(threads);
    for (int i = 0; i < threads; ++i)
        workers.emplace_back(
            [this, i] { workerLoop(static_cast<size_t>(i)); });
}

ThreadPool::~ThreadPool()
{
    drain();
    {
        std::lock_guard<std::mutex> lock(sleepMutex);
        if (firstError) {
            // A task failed and nobody called wait() to collect the
            // error; surface it rather than swallowing it silently
            // (throwing from a destructor is not an option).
            try {
                std::rethrow_exception(firstError);
            } catch (const std::exception &e) {
                warn(std::string("ThreadPool: uncollected task "
                                 "error: ") + e.what());
            } catch (...) {
                warn("ThreadPool: uncollected non-standard task "
                     "exception");
            }
            firstError = nullptr;
        }
    }
    {
        std::lock_guard<std::mutex> lock(sleepMutex);
        shuttingDown = true;
    }
    workAvailable.notify_all();
    for (auto &worker : workers)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    const size_t slot =
        nextQueue.fetch_add(1, std::memory_order_relaxed) %
        queues.size();
    {
        std::lock_guard<std::mutex> lock(queues[slot]->mutex);
        queues[slot]->tasks.push_back(std::move(task));
    }
    {
        std::lock_guard<std::mutex> lock(sleepMutex);
        ++queuedTasks;
        ++pendingTasks;
    }
    workAvailable.notify_one();
}

bool
ThreadPool::popTask(size_t index, std::function<void()> &task)
{
    // Own queue first (front: oldest local work), then steal from the
    // back of the others, starting at the right-hand neighbour so
    // thieves spread out instead of all raiding worker 0.
    const size_t n = queues.size();
    for (size_t k = 0; k < n; ++k) {
        WorkerQueue &q = *queues[(index + k) % n];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (q.tasks.empty())
            continue;
        if (k == 0) {
            task = std::move(q.tasks.front());
            q.tasks.pop_front();
        } else {
            task = std::move(q.tasks.back());
            q.tasks.pop_back();
        }
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(size_t index)
{
    for (;;) {
        std::function<void()> task;
        if (popTask(index, task)) {
            {
                std::lock_guard<std::mutex> lock(sleepMutex);
                --queuedTasks;
            }
            // A throwing task must neither kill this worker
            // (std::terminate) nor stall the batch: capture the
            // first exception for wait() to rethrow and keep
            // draining, so sibling tasks still complete.
            try {
                task();
            } catch (...) {
                std::lock_guard<std::mutex> lock(sleepMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
            size_t left;
            {
                std::lock_guard<std::mutex> lock(sleepMutex);
                left = --pendingTasks;
            }
            if (left == 0)
                allDone.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(sleepMutex);
        // queuedTasks can be momentarily stale (another worker popped
        // but has not decremented yet); the predicate re-checks after
        // every wakeup, so the worst case is one extra scan.
        workAvailable.wait(lock, [this] {
            return shuttingDown || queuedTasks > 0;
        });
        if (shuttingDown && queuedTasks == 0)
            return;
    }
}

void
ThreadPool::drain()
{
    std::unique_lock<std::mutex> lock(sleepMutex);
    allDone.wait(lock, [this] { return pendingTasks == 0; });
}

void
ThreadPool::wait()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(sleepMutex);
        allDone.wait(lock, [this] { return pendingTasks == 0; });
        error = firstError;
        firstError = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    for (size_t i = 0; i < n; ++i)
        submit([&fn, i] { fn(i); });
    wait();
}

} // namespace lhr
