/**
 * @file
 * Status-message and error-reporting helpers in the gem5 spirit.
 *
 * panic()  — an internal invariant was violated: a bug in lhrlab itself.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments).
 * warn()   — something is approximated or suspicious but survivable.
 * inform() — normal operating status for the user.
 */

#ifndef LHR_UTIL_LOGGING_HH
#define LHR_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace lhr
{

/** Verbosity levels understood by setLogLevel(). */
enum class LogLevel
{
    Silent,  ///< suppress warn() and inform()
    Warn,    ///< show warn() only
    Info     ///< show warn() and inform()
};

/** Set the global log verbosity. Default is LogLevel::Warn. */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/**
 * Report an internal invariant violation and abort().
 * Use only for conditions that indicate a bug in lhrlab.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Report an unrecoverable user error and exit(1).
 */
[[noreturn]] void fatal(const std::string &msg);

/** Report a survivable anomaly (shown at LogLevel::Warn and above). */
void warn(const std::string &msg);

/** Report normal status (shown at LogLevel::Info). */
void inform(const std::string &msg);

/**
 * Build a message from stream-formattable pieces.
 * Example: panic(msgOf("bad index ", i, " of ", n));
 */
template <typename... Args>
std::string
msgOf(Args &&...args)
{
    std::ostringstream os;
    if constexpr (sizeof...(Args) > 0)
        (os << ... << args);
    return os.str();
}

} // namespace lhr

#endif // LHR_UTIL_LOGGING_HH
