#include "util/hash.hh"

namespace lhr
{

uint64_t
fnv1a(const std::string &text)
{
    uint64_t h = 1469598103934665603ull;
    for (char ch : text) {
        h ^= static_cast<unsigned char>(ch);
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace lhr
