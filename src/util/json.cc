#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace lhr
{

std::string
jsonQuote(const std::string &text)
{
    std::string out = "\"";
    for (const char ch : text) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
    return out;
}

JsonWriter::JsonWriter(std::ostream &os)
    : out(os)
{
}

void
JsonWriter::indent()
{
    out << '\n' << std::string(2 * firstInScope.size(), ' ');
}

void
JsonWriter::separate()
{
    if (afterKey) {
        afterKey = false;
        return;
    }
    if (firstInScope.empty())
        return;
    if (!firstInScope.back())
        out << ',';
    firstInScope.back() = false;
    indent();
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out << '{';
    firstInScope.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (firstInScope.empty())
        panic("JsonWriter: endObject without beginObject");
    const bool empty = firstInScope.back();
    firstInScope.pop_back();
    if (!empty)
        indent();
    out << '}';
    if (firstInScope.empty())
        out << '\n';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out << '[';
    firstInScope.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (firstInScope.empty())
        panic("JsonWriter: endArray without beginArray");
    const bool empty = firstInScope.back();
    firstInScope.pop_back();
    if (!empty)
        indent();
    out << ']';
    if (firstInScope.empty())
        out << '\n';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    separate();
    out << jsonQuote(name) << ": ";
    afterKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &text)
{
    separate();
    out << jsonQuote(text);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string(text));
}

JsonWriter &
JsonWriter::value(double number, int decimals)
{
    separate();
    if (std::isfinite(number)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", decimals, number);
        out << buf;
    } else {
        // JSON has no inf/nan literals; be explicit rather than
        // emit an invalid document.
        out << "null";
    }
    return *this;
}

JsonWriter &
JsonWriter::value(long number)
{
    separate();
    out << number;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t number)
{
    separate();
    out << number;
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    separate();
    out << (flag ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &token)
{
    separate();
    out << token;
    return *this;
}

bool
JsonValue::asBoolean() const
{
    if (!isBoolean())
        panic("JsonValue: asBoolean on a non-boolean");
    return boolValue;
}

double
JsonValue::asNumber() const
{
    if (!isNumber())
        panic("JsonValue: asNumber on a non-number");
    return numberValue;
}

const std::string &
JsonValue::asString() const
{
    if (!isString())
        panic("JsonValue: asString on a non-string");
    return stringValue;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (!isArray())
        panic("JsonValue: items on a non-array");
    return elements;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (!isObject())
        panic("JsonValue: members on a non-object");
    return fields;
}

size_t
JsonValue::size() const
{
    if (isArray())
        return elements.size();
    if (isObject())
        return fields.size();
    return 0;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (!isObject())
        return nullptr;
    for (const auto &member : fields)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *member = find(key);
    return member && member->isNumber() ? member->numberValue
                                        : fallback;
}

std::string
JsonValue::stringOr(const std::string &key, std::string fallback) const
{
    const JsonValue *member = find(key);
    return member && member->isString() ? member->stringValue
                                        : std::move(fallback);
}

JsonValue
JsonValue::makeBoolean(bool flag)
{
    JsonValue v;
    v.valueKind = Kind::Boolean;
    v.boolValue = flag;
    return v;
}

JsonValue
JsonValue::makeNumber(double number)
{
    JsonValue v;
    v.valueKind = Kind::Number;
    v.numberValue = number;
    return v;
}

JsonValue
JsonValue::makeString(std::string text)
{
    JsonValue v;
    v.valueKind = Kind::String;
    v.stringValue = std::move(text);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> elements)
{
    JsonValue v;
    v.valueKind = Kind::Array;
    v.elements = std::move(elements);
    return v;
}

JsonValue
JsonValue::makeObject(
    std::vector<std::pair<std::string, JsonValue>> fields)
{
    JsonValue v;
    v.valueKind = Kind::Object;
    v.fields = std::move(fields);
    return v;
}

namespace
{

/**
 * Recursive-descent JSON parser. One instance parses one document;
 * errors propagate as ParseError Status with 1-based line/column of
 * the offending byte. Nesting is depth-capped so a hostile document
 * degrades to an error instead of a stack overflow.
 */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text(text) {}

    Expected<JsonValue> parse()
    {
        Expected<JsonValue> root = parseValue(0);
        if (!root.ok())
            return root;
        skipWhitespace();
        if (pos != text.size())
            return errorHere("trailing characters after the document");
        return root;
    }

  private:
    static constexpr int maxDepth = 64;

    Status errorHere(const std::string &what) const
    {
        // Recount line/column only on the error path; the happy path
        // tracks nothing.
        size_t line = 1, col = 1;
        for (size_t i = 0; i < pos && i < text.size(); ++i) {
            if (text[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        return Status::error(StatusCode::ParseError,
                             msgOf("json: line ", line, " column ", col,
                                   ": ", what));
    }

    void skipWhitespace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool consumeLiteral(const char *word)
    {
        const size_t len = std::char_traits<char>::length(word);
        if (text.compare(pos, len, word) != 0)
            return false;
        pos += len;
        return true;
    }

    Expected<JsonValue> parseValue(int depth)
    {
        if (depth > maxDepth)
            return errorHere("nesting deeper than 64 levels");
        skipWhitespace();
        if (pos >= text.size())
            return errorHere("unexpected end of document");
        const char ch = text[pos];
        switch (ch) {
          case 'n':
            if (consumeLiteral("null"))
                return JsonValue::makeNull();
            return errorHere("expected 'null'");
          case 't':
            if (consumeLiteral("true"))
                return JsonValue::makeBoolean(true);
            return errorHere("expected 'true'");
          case 'f':
            if (consumeLiteral("false"))
                return JsonValue::makeBoolean(false);
            return errorHere("expected 'false'");
          case '"': return parseString();
          case '[': return parseArray(depth);
          case '{': return parseObject(depth);
          default:
            if (ch == '-' || (ch >= '0' && ch <= '9'))
                return parseNumber();
            return errorHere(msgOf("unexpected character '", ch, "'"));
        }
    }

    Expected<JsonValue> parseNumber()
    {
        const size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        // Strict JSON: an integer part is "0" or starts 1-9; strtod
        // alone would accept C-style leading zeros like "01".
        if (pos + 1 < text.size() && text[pos] == '0' &&
            std::isdigit(static_cast<unsigned char>(text[pos + 1]))) {
            pos = start;
            return errorHere("number with a leading zero");
        }
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            ++pos;
        const std::string token = text.substr(start, pos - start);
        char *end = nullptr;
        const double number = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || token.empty() ||
            !std::isfinite(number)) {
            pos = start;
            return errorHere(msgOf("malformed number '", token, "'"));
        }
        return JsonValue::makeNumber(number);
    }

    /** Append one Unicode code point as UTF-8. */
    static void appendUtf8(std::string &out, uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool parseHex4(uint32_t &out)
    {
        if (pos + 4 > text.size())
            return false;
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char ch = text[pos + i];
            uint32_t digit;
            if (ch >= '0' && ch <= '9')
                digit = ch - '0';
            else if (ch >= 'a' && ch <= 'f')
                digit = 10 + (ch - 'a');
            else if (ch >= 'A' && ch <= 'F')
                digit = 10 + (ch - 'A');
            else
                return false;
            out = out * 16 + digit;
        }
        pos += 4;
        return true;
    }

    Expected<JsonValue> parseString()
    {
        ++pos; // opening quote
        std::string out;
        while (true) {
            if (pos >= text.size())
                return errorHere("unterminated string");
            const char ch = text[pos];
            if (ch == '"') {
                ++pos;
                return JsonValue::makeString(std::move(out));
            }
            if (static_cast<unsigned char>(ch) < 0x20)
                return errorHere("raw control character in string");
            if (ch != '\\') {
                out += ch;
                ++pos;
                continue;
            }
            ++pos;
            if (pos >= text.size())
                return errorHere("unterminated escape");
            const char esc = text[pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                uint32_t cp;
                if (!parseHex4(cp))
                    return errorHere("malformed \\u escape");
                if (cp >= 0xd800 && cp < 0xdc00) {
                    // High surrogate: the low half must follow.
                    uint32_t lo;
                    if (pos + 2 > text.size() || text[pos] != '\\' ||
                        text[pos + 1] != 'u')
                        return errorHere("unpaired surrogate");
                    pos += 2;
                    if (!parseHex4(lo) ||
                        !(lo >= 0xdc00 && lo < 0xe000))
                        return errorHere("unpaired surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) +
                        (lo - 0xdc00);
                } else if (cp >= 0xdc00 && cp < 0xe000) {
                    return errorHere("unpaired surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return errorHere(
                    msgOf("unknown escape '\\", esc, "'"));
            }
        }
    }

    Expected<JsonValue> parseArray(int depth)
    {
        ++pos; // '['
        std::vector<JsonValue> elements;
        skipWhitespace();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return JsonValue::makeArray(std::move(elements));
        }
        while (true) {
            Expected<JsonValue> element = parseValue(depth + 1);
            if (!element.ok())
                return element;
            elements.push_back(std::move(element).value());
            skipWhitespace();
            if (pos >= text.size())
                return errorHere("unterminated array");
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == ']') {
                ++pos;
                return JsonValue::makeArray(std::move(elements));
            }
            return errorHere("expected ',' or ']' in array");
        }
    }

    Expected<JsonValue> parseObject(int depth)
    {
        ++pos; // '{'
        std::vector<std::pair<std::string, JsonValue>> fields;
        skipWhitespace();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return JsonValue::makeObject(std::move(fields));
        }
        while (true) {
            skipWhitespace();
            if (pos >= text.size() || text[pos] != '"')
                return errorHere("expected string key in object");
            Expected<JsonValue> key = parseString();
            if (!key.ok())
                return key;
            skipWhitespace();
            if (pos >= text.size() || text[pos] != ':')
                return errorHere("expected ':' after object key");
            ++pos;
            Expected<JsonValue> member = parseValue(depth + 1);
            if (!member.ok())
                return member;
            fields.emplace_back(key.value().asString(),
                                std::move(member).value());
            skipWhitespace();
            if (pos >= text.size())
                return errorHere("unterminated object");
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == '}') {
                ++pos;
                return JsonValue::makeObject(std::move(fields));
            }
            return errorHere("expected ',' or '}' in object");
        }
    }

    const std::string &text;
    size_t pos = 0;
};

} // namespace

Expected<JsonValue>
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace lhr
