#include "util/json.hh"

#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace lhr
{

std::string
jsonQuote(const std::string &text)
{
    std::string out = "\"";
    for (const char ch : text) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
    return out;
}

JsonWriter::JsonWriter(std::ostream &os)
    : out(os)
{
}

void
JsonWriter::indent()
{
    out << '\n' << std::string(2 * firstInScope.size(), ' ');
}

void
JsonWriter::separate()
{
    if (afterKey) {
        afterKey = false;
        return;
    }
    if (firstInScope.empty())
        return;
    if (!firstInScope.back())
        out << ',';
    firstInScope.back() = false;
    indent();
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out << '{';
    firstInScope.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (firstInScope.empty())
        panic("JsonWriter: endObject without beginObject");
    const bool empty = firstInScope.back();
    firstInScope.pop_back();
    if (!empty)
        indent();
    out << '}';
    if (firstInScope.empty())
        out << '\n';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out << '[';
    firstInScope.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (firstInScope.empty())
        panic("JsonWriter: endArray without beginArray");
    const bool empty = firstInScope.back();
    firstInScope.pop_back();
    if (!empty)
        indent();
    out << ']';
    if (firstInScope.empty())
        out << '\n';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    separate();
    out << jsonQuote(name) << ": ";
    afterKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &text)
{
    separate();
    out << jsonQuote(text);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string(text));
}

JsonWriter &
JsonWriter::value(double number, int decimals)
{
    separate();
    if (std::isfinite(number)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", decimals, number);
        out << buf;
    } else {
        // JSON has no inf/nan literals; be explicit rather than
        // emit an invalid document.
        out << "null";
    }
    return *this;
}

JsonWriter &
JsonWriter::value(long number)
{
    separate();
    out << number;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t number)
{
    separate();
    out << number;
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    separate();
    out << (flag ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &token)
{
    separate();
    out << token;
    return *this;
}

} // namespace lhr
