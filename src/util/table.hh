/**
 * @file
 * Console table formatting for experiment output.
 *
 * Every bench binary prints its table/figure data both as an aligned
 * console table (human inspection) and, optionally, as CSV
 * (machine consumption). TableWriter handles the former.
 */

#ifndef LHR_UTIL_TABLE_HH
#define LHR_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace lhr
{

/**
 * An aligned console table. Columns are declared up front; rows are
 * appended cell by cell. Numeric cells are right-aligned, text cells
 * left-aligned.
 */
class TableWriter
{
  public:
    /** Column alignment. */
    enum class Align { Left, Right };

    /** Declare a column with a header and alignment. */
    void addColumn(const std::string &header, Align align = Align::Right);

    /** Begin a new row. */
    void beginRow();

    /** Append a text cell to the current row. */
    void cell(const std::string &text);

    /** Append a numeric cell with fixed decimal places. */
    void cell(double value, int decimals = 2);

    /** Append an integer cell. */
    void cell(long value);

    /** Append an empty cell. */
    void emptyCell();

    /** Number of data rows appended so far. */
    size_t rowCount() const { return rows.size(); }

    /** Render the table (header, separator, rows) to a stream. */
    void print(std::ostream &os) const;

  private:
    struct Column
    {
        std::string header;
        Align align;
    };

    std::vector<Column> columns;
    std::vector<std::vector<std::string>> rows;
};

/**
 * Format a double with fixed decimal places (convenience for ad-hoc
 * output around TableWriter).
 */
std::string formatFixed(double value, int decimals);

} // namespace lhr

#endif // LHR_UTIL_TABLE_HH
