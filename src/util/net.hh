/**
 * @file
 * Local-socket transport for `lhrlab serve`: RAII Unix-domain
 * sockets plus the length-prefixed frame format both sides speak.
 *
 * A frame is a 4-byte big-endian length followed by that many bytes
 * of JSON. The prefix makes message boundaries explicit, so a
 * malformed body never desynchronizes the stream — the reader knows
 * exactly how much to consume before the next frame starts. The one
 * unrecoverable case is a hostile prefix (longer than the agreed
 * cap): the reader refuses to allocate and the connection must be
 * dropped, which readFrame reports as a typed InvalidArgument.
 *
 * Every operation returns Status/Expected instead of throwing: a
 * client hanging up mid-frame is routine server load, not an
 * exception.
 */

#ifndef LHR_UTIL_NET_HH
#define LHR_UTIL_NET_HH

#include <cstdint>
#include <string>

#include "util/status.hh"

namespace lhr
{

/** Move-only owner of one socket file descriptor. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fileDescriptor(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept
        : fileDescriptor(other.fileDescriptor)
    {
        other.fileDescriptor = -1;
    }

    Socket &operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fileDescriptor = other.fileDescriptor;
            other.fileDescriptor = -1;
        }
        return *this;
    }

    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    [[nodiscard]] int fd() const { return fileDescriptor; }
    [[nodiscard]] bool valid() const { return fileDescriptor >= 0; }

    /** Close now (idempotent; the destructor also closes). */
    void close();

    /**
     * Shut down the read side only: a blocked reader on the peer
     * returns EOF while responses in flight still drain.
     */
    void shutdownRead();

  private:
    int fileDescriptor = -1;
};

/**
 * Bind and listen on a Unix-domain socket path. An existing file at
 * `path` is unlinked first (a dead daemon's leftover socket must not
 * block the next one). Fails with IoError on bind/listen problems —
 * most usefully a path longer than sockaddr_un allows.
 */
[[nodiscard]] Expected<Socket> listenUnix(const std::string &path,
                                          int backlog = 64);

/** Connect to a listening Unix-domain socket. */
[[nodiscard]] Expected<Socket> connectUnix(const std::string &path);

/**
 * Accept one client, waiting at most `timeout_ms` (-1 = forever).
 * A timeout comes back as StatusCode::Timeout so accept loops can
 * poll a drain flag between waits without treating the lapse as an
 * error.
 */
[[nodiscard]] Expected<Socket> acceptClient(const Socket &listener,
                                            int timeout_ms);

/**
 * Write one length-prefixed frame, retrying partial writes until
 * the whole frame is on the wire — a response is either fully
 * written or the connection errors; no truncated frames.
 */
[[nodiscard]] Status writeFrame(const Socket &sock,
                                const std::string &body);

/**
 * Read one length-prefixed frame of at most `max_bytes` payload.
 * Typed failures:
 *   IoError          — peer closed (message "connection closed" at
 *                      a clean frame boundary) or a transport error;
 *   InvalidArgument  — the prefix exceeds max_bytes (hostile or
 *                      corrupt: drop the connection, the stream
 *                      cannot be resynchronized).
 */
[[nodiscard]] Expected<std::string> readFrame(const Socket &sock,
                                              size_t max_bytes);

} // namespace lhr

#endif // LHR_UTIL_NET_HH
