/**
 * @file
 * A small work-stealing thread pool.
 *
 * Each worker owns a deque of tasks; submission distributes tasks
 * round-robin across the workers, a worker pops from the front of
 * its own deque and, when empty, steals from the back of a
 * neighbour's. The pool exists to fan the (configuration, benchmark)
 * experiment grid out across cores: tasks are coarse (one experiment
 * each, milliseconds of model evaluation), so a mutex per deque is
 * cheap relative to the work and keeps the implementation obviously
 * correct under ThreadSanitizer.
 *
 * Determinism contract: the pool schedules work in a nondeterministic
 * order, so anything executed on it must be order-independent. The
 * experiment harness guarantees this by deriving every experiment's
 * random stream from its own key (see ExperimentRunner).
 */

#ifndef LHR_UTIL_THREAD_POOL_HH
#define LHR_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lhr
{

/** A fixed-size work-stealing thread pool. */
class ThreadPool
{
  public:
    /**
     * Start the workers.
     *
     * @param threads worker count; 0 means defaultThreadCount()
     */
    explicit ThreadPool(int threads = 0);

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. Thread-safe. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished, then rethrow
     * the first exception any of them raised (if one did). A
     * throwing task never takes down a worker or loses its
     * siblings' work: the remaining tasks all still run, and the
     * pool stays usable after the rethrow.
     */
    void wait();

    /** Number of worker threads. */
    [[nodiscard]] int threadCount() const { return static_cast<int>(workers.size()); }

    /**
     * The pool size used when none is requested: the LHR_THREADS
     * environment variable when set to a positive integer, otherwise
     * std::thread::hardware_concurrency() (at least 1).
     */
    [[nodiscard]] static int defaultThreadCount();

    /**
     * Run fn(0) .. fn(n-1) across the pool and wait for all of them.
     * Iterations must be independent; they run in arbitrary order on
     * arbitrary workers. Rethrows like wait() if an iteration threw.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /**
     * Cooperative cancellation: cancel() raises a flag that
     * submitted work can poll via cancelled() to cut a batch short
     * (e.g. a sweep abandoning a dead rig after too many failures).
     * The pool itself keeps running every task; it is the tasks'
     * job to return early. reset by resetCancel().
     */
    void cancel() { cancelFlag.store(true, std::memory_order_relaxed); }
    [[nodiscard]] bool cancelled() const
    {
        return cancelFlag.load(std::memory_order_relaxed);
    }
    void resetCancel()
    {
        cancelFlag.store(false, std::memory_order_relaxed);
    }

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(size_t index);
    bool popTask(size_t index, std::function<void()> &task);
    void drain(); ///< wait() without the rethrow (used by ~ThreadPool)

    std::vector<std::unique_ptr<WorkerQueue>> queues;
    std::vector<std::thread> workers;

    std::mutex sleepMutex;
    std::condition_variable workAvailable;
    std::condition_variable allDone;
    size_t queuedTasks = 0;    ///< tasks sitting in deques
    size_t pendingTasks = 0;   ///< submitted but not yet finished
    bool shuttingDown = false; ///< all three guarded by sleepMutex
    std::exception_ptr firstError; ///< guarded by sleepMutex
    std::atomic<size_t> nextQueue{0};
    std::atomic<bool> cancelFlag{false};
};

} // namespace lhr

#endif // LHR_UTIL_THREAD_POOL_HH
