/**
 * @file
 * A bounded multi-producer/multi-consumer queue with explicit
 * backpressure — the admission-control primitive of `lhrlab serve`.
 *
 * The shape matters more than the throughput: tryPush() NEVER
 * blocks. A full queue is a normal, typed outcome the caller must
 * handle (the server answers `overloaded` immediately), not a
 * condition to wait out — blocking producers is exactly how an
 * overloaded daemon stops accepting even the requests it could
 * shed cheaply. Consumers block in pop() until an item or shutdown
 * arrives.
 *
 * close() ends the queue's life in two phases: pushes fail from the
 * moment it is called, while pops continue to drain whatever was
 * admitted before — so a draining server finishes every request it
 * accepted and loses none (the clean-drain contract in
 * DESIGN.md "Serving & overload policy").
 */

#ifndef LHR_UTIL_BOUNDED_QUEUE_HH
#define LHR_UTIL_BOUNDED_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace lhr
{

/** A fixed-capacity FIFO; full is a result, never a wait. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity) : cap(capacity) {}

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Admit one item without ever blocking. Returns false when the
     * queue is full (backpressure: the caller sheds or degrades) or
     * closed (drain: the caller reports shutdown instead).
     */
    [[nodiscard]] bool tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (closedFlag || items.size() >= cap)
                return false;
            items.push_back(std::move(item));
        }
        itemAvailable.notify_one();
        return true;
    }

    /**
     * Take the oldest item, blocking until one arrives. Returns
     * nullopt only when the queue is closed AND drained — a consumer
     * seeing nullopt can exit knowing no admitted work remains.
     */
    [[nodiscard]] std::optional<T> pop()
    {
        std::unique_lock<std::mutex> lock(mutex);
        itemAvailable.wait(lock, [&] {
            return closedFlag || !items.empty();
        });
        if (items.empty())
            return std::nullopt;
        T item = std::move(items.front());
        items.pop_front();
        return item;
    }

    /**
     * Stop admissions; wake every blocked consumer. Items already
     * admitted stay poppable (two-phase drain). Idempotent.
     */
    void close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            closedFlag = true;
        }
        itemAvailable.notify_all();
    }

    [[nodiscard]] bool closed() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return closedFlag;
    }

    /** Instantaneous depth (racy by nature; observability only). */
    [[nodiscard]] size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return items.size();
    }

    [[nodiscard]] size_t capacity() const { return cap; }

  private:
    const size_t cap;
    mutable std::mutex mutex;
    std::condition_variable itemAvailable;
    std::deque<T> items;
    bool closedFlag = false;
};

} // namespace lhr

#endif // LHR_UTIL_BOUNDED_QUEUE_HH
