/**
 * @file
 * A bump-pointer arena for per-session scratch.
 *
 * The batch evaluation path (PerfModel::evaluateBatch,
 * ChipPowerModel::computeBatch, ExperimentRunner::measureBatch)
 * needs many short-lived arrays per cell — core-utilization rows,
 * phase activity lanes, gaussian pair buffers. Allocating them per
 * cell through the heap is measurable at grid scale; the arena hands
 * out slices of a few retained blocks and reset() recycles the whole
 * lot in O(number of blocks) without touching the allocator.
 *
 * Only trivially-destructible element types are supported: reset()
 * runs no destructors. Not thread-safe — each batch session owns its
 * own arena.
 */

#ifndef LHR_UTIL_ARENA_HH
#define LHR_UTIL_ARENA_HH

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace lhr
{

/** Growable bump allocator; see file comment. */
class Arena
{
  public:
    explicit Arena(size_t initial_bytes = 1u << 16)
        : firstBlockBytes(initial_bytes < 64 ? 64 : initial_bytes)
    {
    }

    /**
     * An uninitialized array of n elements, aligned for T. The
     * memory stays valid until reset() or destruction.
     */
    template <typename T>
    T *alloc(size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "Arena never runs destructors");
        if (n == 0)
            return nullptr;
        return static_cast<T *>(
            allocBytes(n * sizeof(T), alignof(T)));
    }

    /** A zero-initialized array of n elements. */
    template <typename T>
    T *allocZeroed(size_t n)
    {
        T *p = alloc<T>(n);
        for (size_t i = 0; i < n; ++i)
            p[i] = T{};
        return p;
    }

    /** Recycle every block; previously handed-out slices die. */
    void reset()
    {
        blockIndex = 0;
        used = 0;
    }

    /** Total bytes currently reserved across blocks. */
    size_t capacityBytes() const
    {
        size_t total = 0;
        for (const Block &b : blocks)
            total += b.size;
        return total;
    }

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> mem;
        size_t size = 0;
    };

    void *allocBytes(size_t bytes, size_t align)
    {
        while (true) {
            if (blockIndex < blocks.size()) {
                Block &b = blocks[blockIndex];
                const size_t aligned =
                    (used + align - 1) & ~(align - 1);
                if (aligned + bytes <= b.size) {
                    used = aligned + bytes;
                    return b.mem.get() + aligned;
                }
                // Current block full: move on (its tail is wasted
                // until the next reset()).
                ++blockIndex;
                used = 0;
                continue;
            }
            // Need a new block: double the last size until the
            // request fits, so huge one-off asks do not fragment.
            size_t size = blocks.empty()
                ? firstBlockBytes
                : blocks.back().size * 2;
            while (size < bytes + align)
                size *= 2;
            Block b;
            b.mem = std::make_unique<std::byte[]>(size);
            b.size = size;
            blocks.push_back(std::move(b));
        }
    }

    size_t firstBlockBytes;
    std::vector<Block> blocks;
    size_t blockIndex = 0; ///< block currently being bumped
    size_t used = 0;       ///< bytes consumed in that block
};

} // namespace lhr

#endif // LHR_UTIL_ARENA_HH
