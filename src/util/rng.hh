/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in lhrlab (sensor noise, JIT/GC
 * nondeterminism, phase jitter) flows through Rng so that every
 * experiment is exactly reproducible from its seed. The generator is
 * xoshiro256**, seeded via SplitMix64 so that nearby seeds yield
 * uncorrelated streams.
 */

#ifndef LHR_UTIL_RNG_HH
#define LHR_UTIL_RNG_HH

#include <cstdint>

namespace lhr
{

/**
 * A small, fast, deterministic random number generator
 * (xoshiro256** with SplitMix64 seeding).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. Equal seeds yield equal streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /**
     * Next raw 64-bit value. Defined inline (as are the uniform
     * draws below) so hot simulation loops pay a handful of
     * register ops per draw instead of a call.
     */
    uint64_t next()
    {
        const uint64_t result = rotl(s[1] * 5, 7) * 9;
        const uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double uniform() { return (next() >> 11) * 0x1.0p-53; }

    /**
     * Uniform double in (0, 1): rejects exact zeros so the result
     * is safe to pass to log() or raise to a negative power. Draws
     * from the same stream as uniform(), one value per non-zero.
     */
    double uniformPositive()
    {
        double u = 0.0;
        do {
            u = uniform();
        } while (u <= 0.0);
        return u;
    }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Standard normal deviate (Box-Muller, cached pair). */
    double gaussian();

    /**
     * Whether the next gaussian() will return the cached second half
     * of a Box-Muller pair (and so consume no uniforms). The batch
     * sampler uses this to align its pair stream with the scalar one.
     */
    bool hasPendingGaussian() const { return hasCachedGaussian; }

    /** Normal deviate with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Uniform integer in [0, n). n must be > 0. */
    uint64_t below(uint64_t n)
    {
        if (n == 0)
            panicBelowZero();
        // Rejection sampling to avoid modulo bias. With a
        // compile-time-constant n the compiler folds both remainders
        // into masks or multiplications.
        const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
        uint64_t v = 0;
        do {
            v = next();
        } while (v >= limit);
        return v % n;
    }

    /**
     * Derive an independent child generator. Streams of a parent and
     * its children do not overlap in practice; used to give every
     * (benchmark, invocation) pair its own stream.
     */
    Rng fork();

  private:
    static uint64_t rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** Out-of-line panic keeps below() small enough to inline. */
    [[noreturn]] static void panicBelowZero();

    uint64_t s[4];
    double cachedGaussian;
    bool hasCachedGaussian;
};

} // namespace lhr

#endif // LHR_UTIL_RNG_HH
