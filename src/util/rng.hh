/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in lhrlab (sensor noise, JIT/GC
 * nondeterminism, phase jitter) flows through Rng so that every
 * experiment is exactly reproducible from its seed. The generator is
 * xoshiro256**, seeded via SplitMix64 so that nearby seeds yield
 * uncorrelated streams.
 */

#ifndef LHR_UTIL_RNG_HH
#define LHR_UTIL_RNG_HH

#include <cstdint>

namespace lhr
{

/**
 * A small, fast, deterministic random number generator
 * (xoshiro256** with SplitMix64 seeding).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. Equal seeds yield equal streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Standard normal deviate (Box-Muller, cached pair). */
    double gaussian();

    /** Normal deviate with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Uniform integer in [0, n). n must be > 0. */
    uint64_t below(uint64_t n);

    /**
     * Derive an independent child generator. Streams of a parent and
     * its children do not overlap in practice; used to give every
     * (benchmark, invocation) pair its own stream.
     */
    Rng fork();

  private:
    uint64_t s[4];
    double cachedGaussian;
    bool hasCachedGaussian;
};

} // namespace lhr

#endif // LHR_UTIL_RNG_HH
