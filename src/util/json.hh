/**
 * @file
 * Minimal streaming JSON emission for the laboratory's structured
 * artifacts (study sinks, perf-baseline files). Values are written
 * as they are appended; objects and arrays nest via begin/end pairs.
 * The writer tracks separators and indentation; the caller supplies
 * structure in order.
 */

#ifndef LHR_UTIL_JSON_HH
#define LHR_UTIL_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace lhr
{

/** Escape and double-quote a string for JSON. */
std::string jsonQuote(const std::string &text);

/**
 * Writes one JSON document to a stream. Usage:
 *
 *   JsonWriter json(out);
 *   json.beginObject();
 *   json.key("name").value("sweep");
 *   json.key("metrics").beginObject();
 *   json.key("speedup").value(7.9, 2);
 *   json.endObject();
 *   json.endObject();   // emits a trailing newline at depth 0
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object member key; must be followed by exactly one value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &text);
    JsonWriter &value(const char *text);
    JsonWriter &value(double number, int decimals);
    JsonWriter &value(long number);
    JsonWriter &value(uint64_t number);
    JsonWriter &value(bool flag);

    /** Emit a raw, pre-serialized JSON token (trusted input). */
    JsonWriter &raw(const std::string &token);

  private:
    void separate();
    void indent();

    std::ostream &out;
    /** true = first element of the open container not yet written */
    std::vector<bool> firstInScope;
    bool afterKey = false;
};

} // namespace lhr

#endif // LHR_UTIL_JSON_HH
