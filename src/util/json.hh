/**
 * @file
 * Minimal JSON for the laboratory's structured artifacts (study
 * sinks, perf-baseline files): streaming emission (JsonWriter) and a
 * small recursive-descent parser (parseJson -> JsonValue) so tools
 * like bench/bench_compare can read the artifacts back. Values are
 * written as they are appended; objects and arrays nest via
 * begin/end pairs. The writer tracks separators and indentation; the
 * caller supplies structure in order.
 */

#ifndef LHR_UTIL_JSON_HH
#define LHR_UTIL_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/status.hh"

namespace lhr
{

/** Escape and double-quote a string for JSON. */
std::string jsonQuote(const std::string &text);

/**
 * Writes one JSON document to a stream. Usage:
 *
 *   JsonWriter json(out);
 *   json.beginObject();
 *   json.key("name").value("sweep");
 *   json.key("metrics").beginObject();
 *   json.key("speedup").value(7.9, 2);
 *   json.endObject();
 *   json.endObject();   // emits a trailing newline at depth 0
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object member key; must be followed by exactly one value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &text);
    JsonWriter &value(const char *text);
    JsonWriter &value(double number, int decimals);
    JsonWriter &value(long number);
    JsonWriter &value(uint64_t number);
    JsonWriter &value(bool flag);

    /** Emit a raw, pre-serialized JSON token (trusted input). */
    JsonWriter &raw(const std::string &token);

  private:
    void separate();
    void indent();

    std::ostream &out;
    /** true = first element of the open container not yet written */
    std::vector<bool> firstInScope;
    bool afterKey = false;
};

/**
 * One parsed JSON value. A tree of these comes back from parseJson;
 * the accessors follow the repo's contract style: asX() on the wrong
 * kind panics (a caller that cannot assume the kind checks isX()
 * first or uses the *Or lookups, which fall back instead).
 */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Boolean,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    Kind kind() const { return valueKind; }
    bool isNull() const { return valueKind == Kind::Null; }
    bool isBoolean() const { return valueKind == Kind::Boolean; }
    bool isNumber() const { return valueKind == Kind::Number; }
    bool isString() const { return valueKind == Kind::String; }
    bool isArray() const { return valueKind == Kind::Array; }
    bool isObject() const { return valueKind == Kind::Object; }

    bool asBoolean() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Array elements (panics unless isArray()). */
    const std::vector<JsonValue> &items() const;

    /** Object members in document order (panics unless isObject()). */
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

    /** Element/member count of an array/object; 0 for scalars. */
    size_t size() const;

    /** Member by key, or nullptr (absent key or non-object). */
    const JsonValue *find(const std::string &key) const;

    /** Member's number, or `fallback` (absent / not a number). */
    double numberOr(const std::string &key, double fallback) const;

    /** Member's string, or `fallback` (absent / not a string). */
    std::string stringOr(const std::string &key,
                         std::string fallback) const;

    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue makeBoolean(bool flag);
    static JsonValue makeNumber(double number);
    static JsonValue makeString(std::string text);
    static JsonValue makeArray(std::vector<JsonValue> elements);
    static JsonValue
    makeObject(std::vector<std::pair<std::string, JsonValue>> fields);

  private:
    Kind valueKind = Kind::Null;
    bool boolValue = false;
    double numberValue = 0.0;
    std::string stringValue;
    std::vector<JsonValue> elements;
    std::vector<std::pair<std::string, JsonValue>> fields;
};

/**
 * Parse one JSON document (the whole string must be consumed, bar
 * trailing whitespace). Accepts exactly what JsonWriter emits plus
 * standard JSON: null/true/false, numbers, strings with the usual
 * escapes (\uXXXX decodes to UTF-8; unpaired surrogates are a
 * ParseError), arrays and objects. Errors carry 1-based line/column.
 */
[[nodiscard]] Expected<JsonValue> parseJson(const std::string &text);

} // namespace lhr

#endif // LHR_UTIL_JSON_HH
