#include "util/net.hh"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/logging.hh"

namespace lhr
{

namespace
{

Status
ioError(const std::string &what)
{
    return Status::error(StatusCode::IoError,
                         what + ": " + std::strerror(errno));
}

/**
 * Write all of buf, absorbing EINTR and partial writes.
 * MSG_NOSIGNAL: a peer that hung up must surface as EPIPE (a typed
 * IoError the caller absorbs as routine client churn), never as a
 * process-killing SIGPIPE.
 */
Status
writeAll(int fd, const char *buf, size_t len)
{
    size_t done = 0;
    while (done < len) {
        const ssize_t n =
            ::send(fd, buf + done, len - done, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ioError("send");
        }
        done += static_cast<size_t>(n);
    }
    return Status();
}

/**
 * Read exactly len bytes. eof_ok distinguishes the two flavours of
 * hangup: EOF before any byte of a frame is a clean close; EOF
 * mid-frame is a truncated message.
 */
Status
readAll(int fd, char *buf, size_t len, bool eof_ok_at_start)
{
    size_t done = 0;
    while (done < len) {
        const ssize_t n = ::read(fd, buf + done, len - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ioError("read");
        }
        if (n == 0) {
            if (done == 0 && eof_ok_at_start) {
                return Status::error(StatusCode::IoError,
                                     "connection closed");
            }
            return Status::error(StatusCode::IoError,
                                 "connection closed mid-frame");
        }
        done += static_cast<size_t>(n);
    }
    return Status();
}

} // namespace

void
Socket::close()
{
    if (fileDescriptor >= 0) {
        ::close(fileDescriptor);
        fileDescriptor = -1;
    }
}

void
Socket::shutdownRead()
{
    if (fileDescriptor >= 0)
        ::shutdown(fileDescriptor, SHUT_RD);
}

Expected<Socket>
listenUnix(const std::string &path, int backlog)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        return Status::error(
            StatusCode::InvalidArgument,
            msgOf("socket path must be 1..",
                  sizeof(addr.sun_path) - 1, " bytes, got ",
                  path.size()));
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!sock.valid())
        return ioError("socket");
    // A stale socket file from a killed daemon must not wedge the
    // next start; unlink failures surface as the bind error below.
    ::unlink(path.c_str());
    if (::bind(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return ioError("bind " + path);
    if (::listen(sock.fd(), backlog) != 0)
        return ioError("listen " + path);
    return sock;
}

Expected<Socket>
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        return Status::error(
            StatusCode::InvalidArgument,
            msgOf("socket path must be 1..",
                  sizeof(addr.sun_path) - 1, " bytes, got ",
                  path.size()));
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!sock.valid())
        return ioError("socket");
    if (::connect(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        return ioError("connect " + path);
    return sock;
}

Expected<Socket>
acceptClient(const Socket &listener, int timeout_ms)
{
    pollfd pfd{};
    pfd.fd = listener.fd();
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
        if (errno == EINTR) {
            // A signal (typically the drain request itself) landed
            // during the wait; report it as the timeout it behaves
            // like so the accept loop re-checks its flags.
            return Status::error(StatusCode::Timeout,
                                 "accept interrupted by signal");
        }
        return ioError("poll");
    }
    if (ready == 0)
        return Status::error(StatusCode::Timeout, "accept timed out");
    Socket client(::accept(listener.fd(), nullptr, nullptr));
    if (!client.valid())
        return ioError("accept");
    return client;
}

Status
writeFrame(const Socket &sock, const std::string &body)
{
    if (body.size() > 0xFFFFFFFFull) {
        return Status::error(StatusCode::InvalidArgument,
                             "frame body exceeds the u32 prefix");
    }
    const uint32_t len = static_cast<uint32_t>(body.size());
    char prefix[4] = {
        static_cast<char>((len >> 24) & 0xFF),
        static_cast<char>((len >> 16) & 0xFF),
        static_cast<char>((len >> 8) & 0xFF),
        static_cast<char>(len & 0xFF),
    };
    const Status head = writeAll(sock.fd(), prefix, sizeof(prefix));
    if (!head.ok())
        return head;
    return writeAll(sock.fd(), body.data(), body.size());
}

Expected<std::string>
readFrame(const Socket &sock, size_t max_bytes)
{
    char prefix[4];
    const Status head =
        readAll(sock.fd(), prefix, sizeof(prefix), true);
    if (!head.ok())
        return head;
    const uint32_t len =
        (static_cast<uint32_t>(static_cast<unsigned char>(prefix[0]))
         << 24) |
        (static_cast<uint32_t>(static_cast<unsigned char>(prefix[1]))
         << 16) |
        (static_cast<uint32_t>(static_cast<unsigned char>(prefix[2]))
         << 8) |
        static_cast<uint32_t>(static_cast<unsigned char>(prefix[3]));
    if (len > max_bytes) {
        return Status::error(
            StatusCode::InvalidArgument,
            msgOf("frame of ", len, " bytes exceeds the ", max_bytes,
                  "-byte cap"));
    }
    std::string body(len, '\0');
    if (len > 0) {
        const Status rest = readAll(sock.fd(), body.data(), len, false);
        if (!rest.ok())
            return rest;
    }
    return body;
}

} // namespace lhr
