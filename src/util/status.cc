#include "util/status.hh"

#include "util/logging.hh"

namespace lhr
{

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:              return "ok";
      case StatusCode::InvalidArgument: return "invalid-argument";
      case StatusCode::ParseError:      return "parse-error";
      case StatusCode::IoError:         return "io-error";
      case StatusCode::FaultDetected:   return "fault-detected";
      case StatusCode::Timeout:         return "timeout";
      case StatusCode::Cancelled:       return "cancelled";
      case StatusCode::Conflict:        return "conflict";
      case StatusCode::Internal:        return "internal";
    }
    panic("statusCodeName: unknown code");
}

Status
Status::error(StatusCode code, std::string message)
{
    if (code == StatusCode::Ok)
        panic("Status::error: StatusCode::Ok is not an error");
    return Status(code, std::move(message));
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    return std::string(statusCodeName(statusCode)) + ": " + text;
}

} // namespace lhr
