#include "util/table.hh"

#include <algorithm>
#include <cstdio>

#include "util/logging.hh"

namespace lhr
{

std::string
formatFixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

void
TableWriter::addColumn(const std::string &header, Align align)
{
    if (!rows.empty())
        panic("TableWriter: cannot add columns after rows");
    columns.push_back({header, align});
}

void
TableWriter::beginRow()
{
    if (!rows.empty() && rows.back().size() != columns.size()) {
        panic(msgOf("TableWriter: previous row has ", rows.back().size(),
                    " cells, expected ", columns.size()));
    }
    rows.emplace_back();
}

void
TableWriter::cell(const std::string &text)
{
    if (rows.empty())
        panic("TableWriter: cell before beginRow");
    if (rows.back().size() >= columns.size())
        panic("TableWriter: too many cells in row");
    rows.back().push_back(text);
}

void
TableWriter::cell(double value, int decimals)
{
    cell(formatFixed(value, decimals));
}

void
TableWriter::cell(long value)
{
    cell(std::to_string(value));
}

void
TableWriter::emptyCell()
{
    cell(std::string());
}

void
TableWriter::print(std::ostream &os) const
{
    std::vector<size_t> widths(columns.size());
    for (size_t c = 0; c < columns.size(); ++c)
        widths[c] = columns[c].header.size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto pad = [&](const std::string &text, size_t c) {
        std::string out;
        const size_t fill = widths[c] - text.size();
        if (columns[c].align == Align::Right)
            out = std::string(fill, ' ') + text;
        else
            out = text + std::string(fill, ' ');
        return out;
    };

    for (size_t c = 0; c < columns.size(); ++c) {
        os << pad(columns[c].header, c)
           << (c + 1 < columns.size() ? "  " : "");
    }
    os << '\n';
    size_t total = 0;
    for (size_t c = 0; c < columns.size(); ++c)
        total += widths[c] + (c + 1 < columns.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';

    for (const auto &row : rows) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << pad(row[c], c) << (c + 1 < columns.size() ? "  " : "");
        }
        os << '\n';
    }
}

} // namespace lhr
