/**
 * @file
 * Minimal CSV emission and parsing, mirroring the paper's companion
 * csv data sets. Parsing reports malformed input through
 * Expected/Status (util/status.hh) so loaders can attach line
 * numbers and degrade instead of crashing.
 */

#ifndef LHR_UTIL_CSV_HH
#define LHR_UTIL_CSV_HH

#include <ostream>
#include <string>
#include <vector>

#include "util/status.hh"

namespace lhr
{

/**
 * Writes rows of comma-separated values with proper quoting. The
 * header row is emitted on construction.
 */
class CsvWriter
{
  public:
    /** Bind to a stream and write the header row. */
    CsvWriter(std::ostream &os, const std::vector<std::string> &header);

    /** Begin a new row (flushes the previous one). */
    void beginRow();

    /**
     * Append a text field (quoted if it contains , " or newline, or
     * has leading/trailing whitespace — which is only significant
     * inside quotes).
     */
    void field(const std::string &text);

    /** Append a numeric field with fixed decimals. */
    void field(double value, int decimals = 6);

    /** Append an integer field. */
    void field(long value);

    /** Flush any pending row. */
    ~CsvWriter();

  private:
    void flushRow();

    std::ostream &out;
    size_t columnCount;
    std::vector<std::string> pending;
    bool rowOpen;
};

/**
 * Split one CSV line into fields, honouring the double-quote quoting
 * CsvWriter produces. Unquoted fields are returned with surrounding
 * whitespace trimmed (hand-padded rows, CRLF remnants); quoted
 * fields are returned verbatim, and the opening quote may follow
 * stray whitespace. Significant leading/trailing whitespace
 * therefore survives a round trip exactly when the writer quotes it
 * (CsvWriter does).
 */
[[nodiscard]] std::vector<std::string> splitCsvLine(const std::string &line);

/** Strip surrounding whitespace (and a stray '\r') from a field. */
[[nodiscard]] std::string trimmedField(const std::string &text);

/**
 * Parse one CSV field as a finite double. Tolerates surrounding
 * whitespace (CRLF files, hand-padded numbers); rejects empty
 * fields, trailing junk, and non-finite values (NaN/inf) with a
 * ParseError naming the offending text.
 */
[[nodiscard]] Expected<double> parseCsvNumber(const std::string &raw);

} // namespace lhr

#endif // LHR_UTIL_CSV_HH
