/**
 * @file
 * Minimal CSV emission, mirroring the paper's companion csv data sets.
 */

#ifndef LHR_UTIL_CSV_HH
#define LHR_UTIL_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace lhr
{

/**
 * Writes rows of comma-separated values with proper quoting. The
 * header row is emitted on construction.
 */
class CsvWriter
{
  public:
    /** Bind to a stream and write the header row. */
    CsvWriter(std::ostream &os, const std::vector<std::string> &header);

    /** Begin a new row (flushes the previous one). */
    void beginRow();

    /** Append a text field (quoted if it contains , " or newline). */
    void field(const std::string &text);

    /** Append a numeric field with fixed decimals. */
    void field(double value, int decimals = 6);

    /** Append an integer field. */
    void field(long value);

    /** Flush any pending row. */
    ~CsvWriter();

  private:
    void flushRow();

    std::ostream &out;
    size_t columnCount;
    std::vector<std::string> pending;
    bool rowOpen;
};

} // namespace lhr

#endif // LHR_UTIL_CSV_HH
