/**
 * @file
 * Named floating-point comparisons.
 *
 * A raw `==`/`!=` between doubles is ambiguous to a reader (and to
 * lhrlint's float-compare rule): is it a tolerance bug, a sentinel
 * check, or a deliberate bit-identity test? These helpers make the
 * intent part of the call site:
 *
 *   nearlyEqual(a, b)   — tolerance comparison, the default for
 *                         anything that went through arithmetic;
 *   exactZero(x)        — sentinel/degenerate-value check ("was this
 *                         knob left at its 0.0 default?", "is this
 *                         denominator exactly zero?") where an
 *                         epsilon would be wrong;
 *   exactlyEqual(a, b)  — the general exact sentinel comparison, and
 *                         the spelling golden bit-identity checks use
 *                         (two shards of the same seeded sweep agree
 *                         exactly or one of them is wrong).
 */

#ifndef LHR_UTIL_FP_HH
#define LHR_UTIL_FP_HH

#include <algorithm>
#include <cmath>

namespace lhr
{

/**
 * True when a and b agree to `relTol` of the larger magnitude, or
 * to `absTol` near zero (where relative tolerance degenerates).
 * NaN compares unequal to everything, like the builtin operator.
 */
[[nodiscard]] inline bool
nearlyEqual(double a, double b, double relTol = 1e-9,
            double absTol = 1e-12)
{
    const double diff = std::fabs(a - b);
    if (diff <= absTol)
        return true;
    const double scale = std::max(std::fabs(a), std::fabs(b));
    return diff <= relTol * scale;
}

/** Exact sentinel comparison; see the file comment for when. */
[[nodiscard]] inline constexpr bool
exactlyEqual(double a, double b)
{
    return a == b; // lhrlint:allow(float-compare): this is the named exact-compare helper
}

/** x is exactly 0.0 (or -0.0) — the unset-knob / zero-denominator check. */
[[nodiscard]] inline constexpr bool
exactZero(double x)
{
    return x == 0.0; // lhrlint:allow(float-compare): this is the named exact-compare helper
}

} // namespace lhr

#endif // LHR_UTIL_FP_HH
