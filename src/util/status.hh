/**
 * @file
 * Typed, recoverable errors for the measurement pipeline.
 *
 * panic()/fatal() (util/logging) end the process; they are the right
 * tool for invariant violations and unusable command lines, but a
 * production sweep cannot afford them for per-row trouble: one
 * malformed CSV line or one faulted rig must degrade to a flagged
 * result, not abort a 45-configuration run. Status and Expected<T>
 * carry that class of error to the caller instead:
 *
 *   Status     — an error code plus a human-readable message;
 *   Expected<T> — a T or the Status explaining its absence;
 *   FaultError — the throwable form, for paths (worker tasks, the
 *                memo cache's call_once) where a return value cannot
 *                flow; SweepEngine catches it per cell.
 */

#ifndef LHR_UTIL_STATUS_HH
#define LHR_UTIL_STATUS_HH

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace lhr
{

/** Coarse classification of a recoverable error. */
enum class StatusCode
{
    Ok,
    InvalidArgument,  ///< caller-supplied value out of contract
    ParseError,       ///< malformed input text (CSV, numbers, flags)
    IoError,          ///< filesystem or stream failure
    FaultDetected,    ///< the rig fault model fired and won
    Timeout,          ///< per-experiment deadline exceeded
    Cancelled,        ///< abandoned after the sweep's failure cap
    Conflict,         ///< two stores disagree about the same key
    Internal,         ///< unexpected exception from lower layers
};

/** Stable lower-case name of a code, e.g. "parse-error". */
[[nodiscard]] const char *statusCodeName(StatusCode code);

/** An error code with its explanation; default-constructed is Ok. */
class [[nodiscard]] Status
{
  public:
    Status() = default;

    /** Build a non-Ok status; panics if called with StatusCode::Ok. */
    [[nodiscard]] static Status error(StatusCode code, std::string message);

    [[nodiscard]] bool ok() const { return statusCode == StatusCode::Ok; }

    [[nodiscard]] StatusCode code() const { return statusCode; }

    /** Empty for Ok statuses. */
    [[nodiscard]] const std::string &message() const { return text; }

    /** "parse-error: line 3 has 4 fields, expected 6" (or "ok"). */
    [[nodiscard]] std::string toString() const;

  private:
    Status(StatusCode code, std::string message)
        : statusCode(code), text(std::move(message))
    {
    }

    StatusCode statusCode = StatusCode::Ok;
    std::string text;
};

/**
 * A value or the Status explaining why there is none. value() on an
 * error (and status() on a value) panic: check ok() first.
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    Expected(T value) : held(std::move(value)) {}

    /** Implicit from a non-Ok Status (panics on an Ok one). */
    Expected(Status error) : errorStatus(std::move(error))
    {
        if (errorStatus.ok())
            throw std::logic_error(
                "Expected: constructed from an Ok status");
    }

    [[nodiscard]] bool ok() const { return held.has_value(); }
    explicit operator bool() const { return ok(); }

    [[nodiscard]] const T &value() const &
    {
        requireValue();
        return *held;
    }

    [[nodiscard]] T &value() &
    {
        requireValue();
        return *held;
    }

    [[nodiscard]] T &&value() &&
    {
        requireValue();
        return std::move(*held);
    }

    /** The error; panics when this Expected holds a value. */
    [[nodiscard]] const Status &status() const
    {
        if (ok())
            throw std::logic_error(
                "Expected: status() on a value");
        return errorStatus;
    }

    /** The value, or `fallback` when this holds an error. */
    [[nodiscard]] T valueOr(T fallback) const
    {
        return ok() ? *held : std::move(fallback);
    }

  private:
    void requireValue() const
    {
        if (!ok())
            throw std::logic_error("Expected: value() on error: " +
                                   errorStatus.toString());
    }

    std::optional<T> held;
    Status errorStatus;
};

/**
 * Throwable Status, for call sites (thread-pool tasks, call_once
 * bodies) where errors cannot flow through a return value.
 */
class FaultError : public std::runtime_error
{
  public:
    explicit FaultError(Status status)
        : std::runtime_error(status.toString()),
          errorStatus(std::move(status))
    {
    }

    const Status &status() const { return errorStatus; }

  private:
    Status errorStatus;
};

} // namespace lhr

#endif // LHR_UTIL_STATUS_HH
