/**
 * @file
 * Whole-system (wall) power model.
 *
 * The paper deliberately measures *chip* power at the isolated 12V
 * rail, in contrast to the whole-system studies it cites (Isci &
 * Martonosi's clamp-ammeter work, Fan et al.'s datacenter
 * provisioning, Le Sueur & Heiser's RAM-disk setup, §5). This module
 * builds the wall-side view those studies measure: platform
 * components (motherboard, DRAM, disk, fans, GPU slot) behind a PSU
 * with a realistic load-dependent efficiency curve — so the two
 * measurement scopes can be compared, and Fan et al.'s observation
 * ("even the most power-consuming workloads draw less than 60% of
 * nameplate") can be checked against our machines.
 */

#ifndef LHR_SYSTEM_WALL_POWER_HH
#define LHR_SYSTEM_WALL_POWER_HH

#include "harness/runner.hh"

namespace lhr
{

/** Platform components around the processor. */
struct PlatformConfig
{
    double boardIdleW;      ///< chipset, VRM losses, fans, IO
    double dramPerGbW;      ///< DRAM power per GB at typical load
    double dramGb;          ///< installed memory
    double diskIdleW;       ///< disk spindle (the paper's rigs
                            ///< keep disks; Le Sueur used a RAM disk)
    double diskActiveW;     ///< additional when IO-active
    double psuNameplateW;   ///< rated PSU output
    /** PSU efficiency at 20/50/100% load (80-Plus-era curve). */
    double psuEff20, psuEff50, psuEff100;

    /** A desktop platform of the study's era. */
    static PlatformConfig desktop2009();
};

/** Decomposed wall power. */
struct WallPower
{
    double chipW;       ///< the 12V-rail measurement (paper scope)
    double platformW;   ///< board + DRAM + disk (DC side)
    double psuLossW;    ///< conversion loss
    double wallW;       ///< what a clamp ammeter reads (AC side)

    /** Chip share of wall power. */
    double chipShare() const { return chipW / wallW; }
};

/** The wall-power model around one processor. */
class WallPowerModel
{
  public:
    WallPowerModel(const ProcessorSpec &spec,
                   const PlatformConfig &platform);

    /**
     * Wall power when the chip draws `chip_w` and memory traffic is
     * `dram_gbs` (drives DRAM activity); disk assumed idle as in the
     * paper's compute-bound workloads.
     */
    WallPower at(double chip_w, double dram_gbs) const;

    /** PSU efficiency at a DC load (piecewise-linear on the curve). */
    double psuEfficiency(double dc_load_w) const;

    /**
     * "Nameplate" power of the machine: PSU rating plus nominal
     * everything — the number Fan et al. showed real machines never
     * approach.
     */
    double nameplateW() const;

  private:
    const ProcessorSpec &processor;
    PlatformConfig config;
};

} // namespace lhr

#endif // LHR_SYSTEM_WALL_POWER_HH
