#include "system/wall_power.hh"

#include <algorithm>

#include "util/logging.hh"

namespace lhr
{

PlatformConfig
PlatformConfig::desktop2009()
{
    PlatformConfig platform;
    platform.boardIdleW = 28.0;
    platform.dramPerGbW = 2.5;
    platform.dramGb = 4.0;
    platform.diskIdleW = 6.0;
    platform.diskActiveW = 5.0;
    platform.psuNameplateW = 450.0;
    platform.psuEff20 = 0.80;
    platform.psuEff50 = 0.84;
    platform.psuEff100 = 0.80;
    return platform;
}

WallPowerModel::WallPowerModel(const ProcessorSpec &spec,
                               const PlatformConfig &platform)
    : processor(spec), config(platform)
{
    if (config.psuNameplateW <= 0.0)
        panic("WallPowerModel: invalid PSU rating");
}

double
WallPowerModel::psuEfficiency(double dc_load_w) const
{
    if (dc_load_w < 0.0)
        panic("WallPowerModel: negative load");
    const double load = dc_load_w / config.psuNameplateW;
    // Piecewise linear through the 20/50/100% efficiency points,
    // degrading sharply below 20% load (real PSUs do).
    if (load <= 0.20) {
        const double low = 0.60;
        return low + (config.psuEff20 - low) * (load / 0.20);
    }
    if (load <= 0.50) {
        return config.psuEff20 +
            (config.psuEff50 - config.psuEff20) *
            ((load - 0.20) / 0.30);
    }
    const double capped = std::min(load, 1.0);
    return config.psuEff50 +
        (config.psuEff100 - config.psuEff50) *
        ((capped - 0.50) / 0.50);
}

WallPower
WallPowerModel::at(double chip_w, double dram_gbs) const
{
    if (chip_w < 0.0 || dram_gbs < 0.0)
        panic("WallPowerModel::at: negative inputs");

    WallPower wall;
    wall.chipW = chip_w;
    // DRAM power rises with traffic (activate/precharge energy).
    const double dramW = config.dramPerGbW * config.dramGb *
        (0.5 + 0.5 * std::min(1.0, dram_gbs / 10.0));
    wall.platformW = config.boardIdleW + dramW + config.diskIdleW;

    const double dcW = wall.chipW + wall.platformW;
    const double efficiency = psuEfficiency(dcW);
    wall.wallW = dcW / efficiency;
    wall.psuLossW = wall.wallW - dcW;
    return wall;
}

double
WallPowerModel::nameplateW() const
{
    // What the sticker arithmetic suggests: the PSU rating is the
    // provisioning number datacenters used before Fan et al.
    return config.psuNameplateW;
}

} // namespace lhr
