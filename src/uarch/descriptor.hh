/**
 * @file
 * Microarchitecture descriptors.
 *
 * The study covers four Intel microarchitectures: NetBurst
 * (Pentium 4), Core (Conroe/Kentsfield/Wolfdale), Bonnell (Atom) and
 * Nehalem (Bloomfield/Clarkdale). MicroArch captures the pipeline
 * parameters the performance model consumes and the architectural
 * capacitance terms the power model consumes.
 */

#ifndef LHR_UARCH_DESCRIPTOR_HH
#define LHR_UARCH_DESCRIPTOR_HH

#include <string>

namespace lhr
{

/**
 * The four microarchitecture families in the study plus the
 * post-2011 server generations the era extension models.
 */
enum class Family
{
    NetBurst,
    Core,
    Bonnell,
    Nehalem,
    SandyBridge,
    Haswell,
    Broadwell,
    SkylakeSP
};

/** Printable family name. */
std::string familyName(Family family);

/**
 * True for families that power gate *idle* (enabled but unused)
 * cores at runtime (C6): Nehalem and everything descended from it.
 * Pre-Nehalem parts only gate BIOS-disabled cores, and leakily.
 */
bool familyPowerGatesIdleCores(Family family);

/**
 * Clock ceiling of the LLC/uncore domain in GHz, or 0 when the LLC
 * shares the core clock domain (pre-Nehalem parts). Nehalem's L3
 * sits in a fixed ~2.13GHz uncore; the server generations run a
 * separate uncore clock whose ceiling creeps up per generation while
 * its power share grows.
 */
double familyUncoreClockCapGhz(Family family);

/** Pipeline and energy parameters of one microarchitecture. */
struct MicroArch
{
    Family family;
    std::string name;

    int issueWidth;          ///< sustained issue slots per cycle
    int pipelineDepth;       ///< stages, sets branch penalty
    bool outOfOrder;         ///< false for Bonnell (in-order)

    /**
     * Pipeline efficiency: fraction of nominal issue slots usable on
     * typical integer code, before branch and memory stalls. NetBurst
     * is notoriously low (trace cache misses, replay); Core/Nehalem
     * are high.
     */
    double issueEfficiency;

    /**
     * ILP extraction factor: how much of a benchmark's inherent
     * instruction-level parallelism the machine exposes. Large
     * out-of-order windows (Nehalem) extract more than the window
     * of Core; in-order Bonnell far less.
     */
    double ilpExtraction;

    /**
     * Exposed-latency multiplier for in-order pipelines: an in-order
     * core cannot hide L1/L2 latency under independent work, so
     * memory stall cycles are multiplied by this factor (1.0 for
     * out-of-order cores that can overlap a large share).
     */
    double stallExposure;

    /**
     * SMT implementation quality in [0,1]: fraction of idle issue
     * slots a second hardware thread can fill. NetBurst's first
     * implementation is poor; Nehalem's is good; Bonnell relies on
     * it heavily.
     */
    double smtQuality;

    /**
     * Fraction of per-thread effective cache capacity lost when two
     * SMT threads share a core's caches.
     */
    double smtCachePressure;

    /** Branch misprediction penalty in cycles. */
    double branchPenalty;

    /**
     * Effective switched core capacitance at the 130nm reference
     * node, in nF (P_dyn = act * cap * V^2 * f[GHz] yields watts).
     * Scaled by TechNode::capScale at the part's node.
     */
    double coreCapNf130;

    /** Same reference capacitance for the LLC, per MB. */
    double llcCapNfPerMb130;

    /**
     * Fraction of an active core's power an idle (architecturally
     * enabled but unused) core still draws: clock gating quality.
     * NetBurst-era gating is coarse; Nehalem power gates cores.
     */
    double idleCoreFraction;

    /** Millions of transistors per core (logic + private caches). */
    double coreTransistorsM;
};

/** Look up the descriptor for a family. */
const MicroArch &microArch(Family family);

} // namespace lhr

#endif // LHR_UARCH_DESCRIPTOR_HH
