#include "uarch/descriptor.hh"

#include "util/logging.hh"

namespace lhr
{

std::string
familyName(Family family)
{
    switch (family) {
      case Family::NetBurst: return "NetBurst";
      case Family::Core:     return "Core";
      case Family::Bonnell:  return "Bonnell";
      case Family::Nehalem:  return "Nehalem";
    }
    panic("familyName: unknown family");
}

namespace
{

// Pipeline parameters follow the published microarchitecture
// descriptions; capacitance and idle fractions are calibrated so
// that each part's measured-power targets (paper Table 4) emerge.
const MicroArch uarchs[] = {
    {
        Family::NetBurst, "NetBurst",
        /* issueWidth */ 3, /* pipelineDepth */ 20, /* outOfOrder */ true,
        /* issueEfficiency */ 0.44,
        /* ilpExtraction */ 0.85,
        /* stallExposure */ 0.70,
        /* smtQuality */ 0.22, /* smtCachePressure */ 0.65,
        /* branchPenalty */ 20.0,
        /* coreCapNf130 */ 15.5, /* llcCapNfPerMb130 */ 2.0,
        /* idleCoreFraction */ 0.75,
        /* coreTransistorsM */ 25.0,
    },
    {
        Family::Core, "Core",
        /* issueWidth */ 4, /* pipelineDepth */ 14, /* outOfOrder */ true,
        /* issueEfficiency */ 0.70,
        /* ilpExtraction */ 1.00,
        /* stallExposure */ 0.50,
        /* smtQuality */ 0.0, /* smtCachePressure */ 0.50,
        /* branchPenalty */ 14.0,
        /* coreCapNf130 */ 9.0, /* llcCapNfPerMb130 */ 1.2,
        /* idleCoreFraction */ 0.75,
        /* coreTransistorsM */ 55.0,
    },
    {
        Family::Bonnell, "Bonnell",
        /* issueWidth */ 2, /* pipelineDepth */ 16, /* outOfOrder */ false,
        /* issueEfficiency */ 0.50,
        /* ilpExtraction */ 0.60,
        /* stallExposure */ 1.45,
        /* smtQuality */ 0.70, /* smtCachePressure */ 0.45,
        /* branchPenalty */ 13.0,
        /* coreCapNf130 */ 2.3, /* llcCapNfPerMb130 */ 1.2,
        /* idleCoreFraction */ 0.55,
        /* coreTransistorsM */ 14.0,
    },
    {
        Family::Nehalem, "Nehalem",
        /* issueWidth */ 4, /* pipelineDepth */ 14, /* outOfOrder */ true,
        /* issueEfficiency */ 0.76,
        /* ilpExtraction */ 1.28,
        /* stallExposure */ 0.33,
        /* smtQuality */ 0.42, /* smtCachePressure */ 0.40,
        /* branchPenalty */ 14.0,
        /* coreCapNf130 */ 16.5, /* llcCapNfPerMb130 */ 1.2,
        /* idleCoreFraction */ 0.20,
        /* coreTransistorsM */ 90.0,
    },
};

} // namespace

const MicroArch &
microArch(Family family)
{
    for (const auto &ua : uarchs)
        if (ua.family == family)
            return ua;
    panic("microArch: unknown family");
}

} // namespace lhr
