#include "uarch/descriptor.hh"

#include "util/logging.hh"

namespace lhr
{

std::string
familyName(Family family)
{
    switch (family) {
      case Family::NetBurst:    return "NetBurst";
      case Family::Core:        return "Core";
      case Family::Bonnell:     return "Bonnell";
      case Family::Nehalem:     return "Nehalem";
      case Family::SandyBridge: return "SandyBridge";
      case Family::Haswell:     return "Haswell";
      case Family::Broadwell:   return "Broadwell";
      case Family::SkylakeSP:   return "SkylakeSP";
    }
    panic("familyName: unknown family");
}

bool
familyPowerGatesIdleCores(Family family)
{
    switch (family) {
      case Family::NetBurst:
      case Family::Core:
      case Family::Bonnell:
        return false;
      case Family::Nehalem:
      case Family::SandyBridge:
      case Family::Haswell:
      case Family::Broadwell:
      case Family::SkylakeSP:
        return true;
    }
    panic("familyPowerGatesIdleCores: unknown family");
}

double
familyUncoreClockCapGhz(Family family)
{
    switch (family) {
      case Family::NetBurst:
      case Family::Core:
      case Family::Bonnell:
        return 0.0; // LLC in the core clock domain
      case Family::Nehalem:     return 2.13;
      case Family::SandyBridge: return 2.70;
      case Family::Haswell:     return 3.00;
      case Family::Broadwell:   return 2.80;
      case Family::SkylakeSP:   return 2.40;
    }
    panic("familyUncoreClockCapGhz: unknown family");
}

namespace
{

// Pipeline parameters follow the published microarchitecture
// descriptions; capacitance and idle fractions are calibrated so
// that each part's measured-power targets (paper Table 4) emerge.
const MicroArch uarchs[] = {
    {
        Family::NetBurst, "NetBurst",
        /* issueWidth */ 3, /* pipelineDepth */ 20, /* outOfOrder */ true,
        /* issueEfficiency */ 0.44,
        /* ilpExtraction */ 0.85,
        /* stallExposure */ 0.70,
        /* smtQuality */ 0.22, /* smtCachePressure */ 0.65,
        /* branchPenalty */ 20.0,
        /* coreCapNf130 */ 15.5, /* llcCapNfPerMb130 */ 2.0,
        /* idleCoreFraction */ 0.75,
        /* coreTransistorsM */ 25.0,
    },
    {
        Family::Core, "Core",
        /* issueWidth */ 4, /* pipelineDepth */ 14, /* outOfOrder */ true,
        /* issueEfficiency */ 0.70,
        /* ilpExtraction */ 1.00,
        /* stallExposure */ 0.50,
        /* smtQuality */ 0.0, /* smtCachePressure */ 0.50,
        /* branchPenalty */ 14.0,
        /* coreCapNf130 */ 9.0, /* llcCapNfPerMb130 */ 1.2,
        /* idleCoreFraction */ 0.75,
        /* coreTransistorsM */ 55.0,
    },
    {
        Family::Bonnell, "Bonnell",
        /* issueWidth */ 2, /* pipelineDepth */ 16, /* outOfOrder */ false,
        /* issueEfficiency */ 0.50,
        /* ilpExtraction */ 0.60,
        /* stallExposure */ 1.45,
        /* smtQuality */ 0.70, /* smtCachePressure */ 0.45,
        /* branchPenalty */ 13.0,
        /* coreCapNf130 */ 2.3, /* llcCapNfPerMb130 */ 1.2,
        /* idleCoreFraction */ 0.55,
        /* coreTransistorsM */ 14.0,
    },
    {
        Family::Nehalem, "Nehalem",
        /* issueWidth */ 4, /* pipelineDepth */ 14, /* outOfOrder */ true,
        /* issueEfficiency */ 0.76,
        /* ilpExtraction */ 1.28,
        /* stallExposure */ 0.33,
        /* smtQuality */ 0.42, /* smtCachePressure */ 0.40,
        /* branchPenalty */ 14.0,
        /* coreCapNf130 */ 16.5, /* llcCapNfPerMb130 */ 1.2,
        /* idleCoreFraction */ 0.20,
        /* coreTransistorsM */ 90.0,
    },
    // Post-2011 server generations (Hofmann et al., PAPERS.md):
    // pipeline parameters from the published descriptions, energy
    // terms calibrated so each part lands inside its TDP at stock.
    {
        Family::SandyBridge, "SandyBridge",
        /* issueWidth */ 4, /* pipelineDepth */ 14, /* outOfOrder */ true,
        /* issueEfficiency */ 0.80,
        /* ilpExtraction */ 1.45,
        /* stallExposure */ 0.30,
        /* smtQuality */ 0.45, /* smtCachePressure */ 0.40,
        /* branchPenalty */ 14.0,
        /* coreCapNf130 */ 18.0, /* llcCapNfPerMb130 */ 1.2,
        /* idleCoreFraction */ 0.18,
        /* coreTransistorsM */ 150.0,
    },
    {
        Family::Haswell, "Haswell",
        /* issueWidth */ 4, /* pipelineDepth */ 14, /* outOfOrder */ true,
        /* issueEfficiency */ 0.83,
        /* ilpExtraction */ 1.60,
        /* stallExposure */ 0.28,
        /* smtQuality */ 0.48, /* smtCachePressure */ 0.38,
        /* branchPenalty */ 14.0,
        /* coreCapNf130 */ 20.0, /* llcCapNfPerMb130 */ 1.3,
        /* idleCoreFraction */ 0.15,
        /* coreTransistorsM */ 190.0,
    },
    {
        Family::Broadwell, "Broadwell",
        /* issueWidth */ 4, /* pipelineDepth */ 14, /* outOfOrder */ true,
        /* issueEfficiency */ 0.84,
        /* ilpExtraction */ 1.68,
        /* stallExposure */ 0.27,
        /* smtQuality */ 0.48, /* smtCachePressure */ 0.38,
        /* branchPenalty */ 14.0,
        /* coreCapNf130 */ 19.0, /* llcCapNfPerMb130 */ 1.3,
        /* idleCoreFraction */ 0.14,
        /* coreTransistorsM */ 200.0,
    },
    {
        Family::SkylakeSP, "SkylakeSP",
        /* issueWidth */ 5, /* pipelineDepth */ 14, /* outOfOrder */ true,
        /* issueEfficiency */ 0.85,
        /* ilpExtraction */ 1.80,
        /* stallExposure */ 0.26,
        /* smtQuality */ 0.50, /* smtCachePressure */ 0.36,
        /* branchPenalty */ 14.0,
        /* coreCapNf130 */ 24.0, /* llcCapNfPerMb130 */ 1.4,
        /* idleCoreFraction */ 0.12,
        /* coreTransistorsM */ 260.0,
    },
};

} // namespace

const MicroArch &
microArch(Family family)
{
    for (const auto &ua : uarchs)
        if (ua.family == family)
            return ua;
    panic("microArch: unknown family");
}

} // namespace lhr
