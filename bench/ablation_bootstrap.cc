/**
 * @file
 * Ablation: Student-t vs percentile-bootstrap confidence intervals
 * at the paper's repetition counts (3 for SPEC, 5 for PARSEC, 20 for
 * Java). At n=3 the t interval's 4.3x critical value is doing heavy
 * lifting; the bootstrap's narrow intervals under-cover instead.
 * Either way, Table 2's intervals are honest about which benchmarks
 * are noisy.
 */

#include <cmath>
#include <iostream>

#include "stats/bootstrap.hh"
#include "stats/summary.hh"
#include "util/rng.hh"
#include "util/table.hh"

int
main()
{
    std::cout <<
        "Ablation: t vs bootstrap 95% CIs at the paper's repetition\n"
        "counts (2000 trials of gaussian measurements, sd 1.5% of\n"
        " the mean — the harness's invocation noise)\n\n";

    lhr::TableWriter table;
    table.addColumn("n");
    table.addColumn("t halfwidth %");
    table.addColumn("t coverage %");
    table.addColumn("boot halfwidth %");
    table.addColumn("boot coverage %");

    const double trueMean = 100.0;
    const double sd = 1.5;
    lhr::Rng rng(2027);

    for (int n : {3, 5, 10, 20}) {
        double tWidth = 0.0, bootWidth = 0.0;
        int tCover = 0, bootCover = 0;
        const int trials = 2000;
        for (int trial = 0; trial < trials; ++trial) {
            std::vector<double> samples;
            lhr::Summary summary;
            for (int i = 0; i < n; ++i) {
                const double x = rng.gaussian(trueMean, sd);
                samples.push_back(x);
                summary.add(x);
            }
            tWidth += summary.ci95Relative();
            if (std::fabs(summary.mean() - trueMean) <= summary.ci95())
                ++tCover;
            const auto boot = lhr::bootstrapCi95(samples, rng, 400);
            bootWidth += boot.halfWidthRelative();
            if (boot.lo <= trueMean && trueMean <= boot.hi)
                ++bootCover;
        }
        table.beginRow();
        table.cell(static_cast<long>(n));
        table.cell(100.0 * tWidth / trials, 2);
        table.cell(100.0 * tCover / trials, 1);
        table.cell(100.0 * bootWidth / trials, 2);
        table.cell(100.0 * bootCover / trials, 1);
    }
    table.print(std::cout);

    std::cout <<
        "\nAt n=3 the bootstrap badly under-covers (it cannot see\n"
        "variation beyond three points); the paper's t intervals are\n"
        "the right call for SPEC's prescribed three runs.\n";
    return 0;
}
