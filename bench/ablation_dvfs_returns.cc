/**
 * @file
 * Shim over the registered "ablation_dvfs_returns" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("ablation_dvfs_returns", argc, argv);
}
