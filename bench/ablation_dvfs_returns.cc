/**
 * @file
 * Ablation: the DVFS "laws of diminishing returns" (Le Sueur &
 * Heiser, discussed in the paper's §5): where is each processor's
 * energy-optimal clock, and how much does down-clocking still save
 * as technology shrinks?
 */

#include <iostream>

#include "analysis/dvfs_study.hh"
#include "core/lab.hh"
#include "util/logging.hh"
#include "util/table.hh"

int
main()
{
    lhr::Lab lab;

    std::cout <<
        "Ablation: DVFS diminishing returns across technology\n"
        "(energy-optimal clock and the cost of running at the\n"
        " extremes; Turbo disabled)\n\n";

    lhr::TableWriter table;
    table.addColumn("Processor", lhr::TableWriter::Align::Left);
    table.addColumn("nm");
    table.addColumn("Range GHz", lhr::TableWriter::Align::Left);
    table.addColumn("E-optimal GHz");
    table.addColumn("E(min)/E(opt)");
    table.addColumn("E(max)/E(opt)");
    table.addColumn("Static share @min %");

    for (const char *id :
         {"C2D (65)", "i7 (45)", "C2D (45)", "i5 (32)"}) {
        const auto profile =
            lhr::dvfsProfile(lab.runner(), lab.reference(), id, 7);
        table.beginRow();
        table.cell(profile.processorId);
        table.cell(static_cast<long>(profile.featureNm));
        table.cell(lhr::msgOf(lhr::formatFixed(profile.fMinGhz, 1),
                              " - ",
                              lhr::formatFixed(profile.fMaxGhz, 1)));
        table.cell(profile.energyOptimalGhz, 2);
        table.cell(profile.energyAtMinRel, 3);
        table.cell(profile.energyAtMaxRel, 3);
        table.cell(100.0 * profile.staticShareAtMin, 1);
    }
    table.print(std::cout);

    std::cout <<
        "\nOn the 45nm parts the lowest clock is (near-)optimal; on\n"
        "the 32nm i5 the optimum moves INTO the range — down-clocking\n"
        "past it wastes static energy, the diminishing-returns\n"
        "effect.\n";
    return 0;
}
