/**
 * @file
 * Shim over the registered "fig12" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("fig12", argc, argv);
}
