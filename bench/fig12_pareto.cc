/**
 * @file
 * Reproduces paper Figure 12: energy/performance Pareto frontiers at
 * 45nm, per workload group and for the equal-weight average, over
 * the 29 45nm processor configurations.
 */

#include <iostream>
#include <optional>

#include "analysis/pareto_study.hh"
#include "core/lab.hh"
#include "util/table.hh"

namespace
{

void
printFrontier(lhr::Lab &lab, std::optional<lhr::Group> group,
              const std::string &label)
{
    const auto frontier = lhr::paretoFrontier45nm(
        lab.runner(), lab.reference(), group);
    std::cout << label << ":\n";
    lhr::TableWriter table;
    table.addColumn("Configuration", lhr::TableWriter::Align::Left);
    table.addColumn("Perf/Ref");
    table.addColumn("Energy/Ref");
    for (const auto &pt : frontier) {
        table.beginRow();
        table.cell(pt.label);
        table.cell(pt.performance, 2);
        table.cell(pt.energy, 2);
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    lhr::Lab lab;
    std::cout <<
        "Figure 12: Energy / performance Pareto frontiers (45nm)\n"
        "(paper: scalable groups extend the frontier right to perf ~7\n"
        " at constant energy; each group's frontier deviates from the\n"
        " average)\n\n";

    printFrontier(lab, std::nullopt, "Average");
    for (const auto group : lhr::allGroups())
        printFrontier(lab, group, lhr::groupName(group));
    return 0;
}
