/**
 * @file
 * Ablation: aggregation weighting. The paper weights the four
 * workload groups equally (Avg_w) instead of averaging benchmarks
 * directly (Avg_b), "avoiding bias due to the varying number of
 * benchmarks within each group (from 5 to 27)" — section 2.6. This
 * study quantifies how much the choice changes processor rankings.
 */

#include <iostream>

#include "analysis/historical.hh"
#include "core/lab.hh"
#include "util/table.hh"

int
main()
{
    lhr::Lab lab;

    std::cout <<
        "Ablation: equal-group weighting (Avg_w) vs simple benchmark\n"
        "mean (Avg_b) across the stock processors (paper Table 4)\n\n";

    std::vector<std::string> ids;
    std::vector<double> avgW, avgB;
    for (const auto &spec : lhr::allProcessors()) {
        const auto agg = lab.aggregate(lhr::stockConfig(spec));
        ids.push_back(spec.id);
        avgW.push_back(agg.weighted.perf);
        avgB.push_back(agg.simple.perf);
    }
    const auto rankW = lhr::rankOf(avgW, false);
    const auto rankB = lhr::rankOf(avgB, false);

    lhr::TableWriter table;
    table.addColumn("Processor", lhr::TableWriter::Align::Left);
    table.addColumn("AvgW");
    table.addColumn("rank");
    table.addColumn("AvgB");
    table.addColumn("rank");
    table.addColumn("Bias %");
    int rankChanges = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
        table.beginRow();
        table.cell(ids[i]);
        table.cell(avgW[i], 2);
        table.cell(static_cast<long>(rankW[i]));
        table.cell(avgB[i], 2);
        table.cell(static_cast<long>(rankB[i]));
        table.cell(100.0 * (avgB[i] - avgW[i]) / avgW[i], 1);
        if (rankW[i] != rankB[i])
            ++rankChanges;
    }
    table.print(std::cout);
    std::cout << "\nRank changes between weightings: " << rankChanges
              << " of " << ids.size()
              << "\n(the 27 Native Non-scalable benchmarks dominate "
                 "Avg_b,\n deflating multicore parts)\n";
    return 0;
}
