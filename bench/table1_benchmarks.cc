/**
 * @file
 * Shim over the registered "table1" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("table1", argc, argv);
}
