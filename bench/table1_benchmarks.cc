/**
 * @file
 * Reproduces paper Table 1: the 61 benchmarks, their groups, suites,
 * reference running times, and descriptions — plus the reference
 * times our own four-machine normalization produces.
 */

#include <iostream>

#include "core/lab.hh"
#include "util/table.hh"

int
main()
{
    lhr::Lab lab;
    const auto &ref = lab.reference();

    std::cout << "Table 1: Benchmark groups (61 benchmarks)\n\n";

    lhr::TableWriter table;
    table.addColumn("Group", lhr::TableWriter::Align::Left);
    table.addColumn("Suite", lhr::TableWriter::Align::Left);
    table.addColumn("Name", lhr::TableWriter::Align::Left);
    table.addColumn("Paper ref (s)");
    table.addColumn("Measured ref (s)");
    table.addColumn("Description", lhr::TableWriter::Align::Left);

    for (const auto group : lhr::allGroups()) {
        for (const auto *bench : lhr::benchmarksInGroup(group)) {
            table.beginRow();
            table.cell(lhr::groupName(group));
            table.cell(lhr::suiteName(bench->suite));
            table.cell(bench->name);
            table.cell(bench->refTimeSec, 1);
            table.cell(ref.refTimeSec(*bench), 1);
            table.cell(bench->description);
        }
    }
    table.print(std::cout);
    std::cout << "\nTotal benchmarks: " << lhr::allBenchmarks().size()
              << "\n";
    return 0;
}
