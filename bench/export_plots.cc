/**
 * @file
 * Exports gnuplot-ready data and scripts for the paper's graphical
 * figures (2, 3, 7c, 11, 12) into ./plots. Run, then:
 *     cd plots && gnuplot *.gp
 * to render SVGs of the reproduced figures.
 */

#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/features.hh"
#include "analysis/historical.hh"
#include "analysis/pareto_study.hh"
#include "core/lab.hh"
#include "util/logging.hh"

namespace
{

std::ofstream
openOut(const std::filesystem::path &path)
{
    std::ofstream out(path);
    if (!out)
        lhr::fatal("cannot write " + path.string());
    return out;
}

void
writeScript(const std::filesystem::path &dir, const std::string &name,
            const std::string &body)
{
    auto out = openOut(dir / (name + ".gp"));
    out << "set terminal svg size 760,540 background 'white'\n"
        << "set output '" << name << ".svg'\n"
        << "set grid\n"
        << body;
}

} // namespace

int
main()
{
    const std::filesystem::path dir = "plots";
    std::filesystem::create_directories(dir);

    lhr::Lab lab;
    // Warm the stock rows every plot below draws from in parallel.
    {
        std::vector<lhr::MachineConfig> stock;
        for (const auto &spec : lhr::allProcessors())
            stock.push_back(lhr::stockConfig(spec));
        lab.prewarm(stock);
    }
    auto &runner = lab.runner();
    const auto &ref = lab.reference();

    // ---- Figure 2: measured power vs TDP (log/log) -----------------
    {
        auto out = openOut(dir / "fig02_tdp.dat");
        out << "# tdp_w power_w processor\n";
        for (const auto &spec : lhr::allProcessors()) {
            const auto cfg = lhr::stockConfig(spec);
            for (const auto &bench : lhr::allBenchmarks()) {
                out << spec.tdpW << " "
                    << lab.measure(cfg, bench).powerW << " \""
                    << spec.id << "\"\n";
            }
        }
        writeScript(dir, "fig02_tdp",
                    "set logscale xy\n"
                    "set xlabel 'TDP (W)'\n"
                    "set ylabel 'Measured power (W)'\n"
                    "set key off\n"
                    "plot 'fig02_tdp.dat' using 1:2 with points "
                    "pt 7 ps 0.4, x with lines dt 2\n");
    }

    // ---- Figure 3: i7 power/performance scatter by group -----------
    {
        auto out = openOut(dir / "fig03_scatter.dat");
        out << "# perf power group_index\n";
        const auto cfg =
            lhr::stockConfig(lhr::processorById("i7 (45)"));
        for (const auto &bench : lhr::allBenchmarks()) {
            const auto r = lab.result(cfg, bench);
            out << r.perf << " " << r.powerW << " "
                << static_cast<int>(bench.group) << "\n";
        }
        writeScript(
            dir, "fig03_scatter",
            "set xlabel 'Performance / reference'\n"
            "set ylabel 'Power (W)'\n"
            "plot for [g=0:3] 'fig03_scatter.dat' "
            "using ($3==g?$1:1/0):2 with points pt g+5 ps 0.7 "
            "title sprintf('group %d', g)\n");
    }

    // ---- Figure 7c: clock-scaling energy curves ---------------------
    {
        auto out = openOut(dir / "fig07c_clock.dat");
        out << "# processor_index perf_rel energy_rel\n";
        int index = 0;
        for (const char *id : {"i7 (45)", "C2D (45)", "i5 (32)"}) {
            for (const auto &pt : lhr::clockSweep(runner, ref, id, 6))
                out << index << " " << pt.perfRelBase << " "
                    << pt.energyRelBase << "\n";
            out << "\n\n"; // gnuplot dataset separator
            ++index;
        }
        writeScript(
            dir, "fig07c_clock",
            "set xlabel 'Performance / performance at base clock'\n"
            "set ylabel 'Energy / energy at base clock'\n"
            "plot 'fig07c_clock.dat' index 0 using 2:3 "
            "with linespoints title 'i7 (45)', "
            "'' index 1 using 2:3 with linespoints "
            "title 'C2D (45)', "
            "'' index 2 using 2:3 with linespoints "
            "title 'i5 (32)'\n");
    }

    // ---- Figure 11: historical power/performance --------------------
    {
        auto out = openOut(dir / "fig11_historical.dat");
        out << "# perf power perf_per_mtran mw_per_mtran label\n";
        for (const auto &pt : lhr::historicalOverview(runner, ref)) {
            out << pt.aggregate.weighted.perf << " "
                << pt.aggregate.weighted.powerW << " "
                << 1e3 * pt.perfPerMtran() << " "
                << 1e3 * pt.powerPerMtran() << " \""
                << pt.spec->id << "\"\n";
        }
        writeScript(
            dir, "fig11_historical",
            "set logscale xy\n"
            "set xlabel 'Performance / reference'\n"
            "set ylabel 'Power (W)'\n"
            "set key off\n"
            "plot 'fig11_historical.dat' using 1:2 with points "
            "pt 7 ps 1.2, '' using 1:2:5 with labels offset 1,0.6\n");
    }

    // ---- Figure 12: Pareto frontiers ---------------------------------
    {
        auto out = openOut(dir / "fig12_pareto.dat");
        out << "# perf energy\n";
        auto dump = [&](std::optional<lhr::Group> group) {
            for (const auto &pt :
                 lhr::paretoFrontier45nm(runner, ref, group))
                out << pt.performance << " " << pt.energy << "\n";
            out << "\n\n";
        };
        dump(std::nullopt);
        for (const auto group : lhr::allGroups())
            dump(group);
        writeScript(
            dir, "fig12_pareto",
            "set xlabel 'Group performance / reference'\n"
            "set ylabel 'Normalized group energy'\n"
            "plot 'fig12_pareto.dat' index 0 with linespoints "
            "title 'Average', "
            "'' index 1 with linespoints title 'Native Non-scal.', "
            "'' index 2 with linespoints title 'Native Scalable', "
            "'' index 3 with linespoints title 'Java Non-scal.', "
            "'' index 4 with linespoints title 'Java Scalable'\n");
    }

    std::cout << "wrote gnuplot data and scripts for figures 2, 3, "
                 "7c, 11, 12 to ./plots\n";
    return 0;
}
