/**
 * @file
 * Reproduces paper Figure 7: clock scaling on i7 (45), C2D (45) and
 * i5 (32) — (a) average effect of doubling the clock, (b) per-group
 * energy effect, (c) energy/performance curves across the clock
 * range, (d) absolute power vs performance per group per clock.
 *
 * Paper (a): i7 +83% perf / +180% power / +60% energy;
 *            C2D +73% / +159% / +56%; i5 +78% / +73% / -4%.
 */

#include <iostream>

#include "analysis/features.hh"
#include "analysis/report.hh"
#include "core/lab.hh"
#include "util/table.hh"

int
main()
{
    lhr::Lab lab;
    auto &runner = lab.runner();
    const auto &ref = lab.reference();

    {
        auto effects = lhr::clockStudy(runner, ref);
        // Express as percent change per clock doubling, as the
        // paper's Figure 7(a)/(b) does.
        std::vector<lhr::GroupedEffect> pct = effects;
        lhr::printGroupedEffects(
            std::cout,
            "Figure 7(a,b): Effect of doubling clock frequency "
            "(ratios per 2x)\nPaper (a): i7 1.83/2.80/1.60; "
            "C2D 1.73/2.59/1.56; i5 1.78/1.73/0.96",
            pct);
    }

    std::cout << "Figure 7(c): energy vs performance across the "
                 "clock range (relative to lowest clock)\n\n";
    for (const std::string id : {"i7 (45)", "C2D (45)", "i5 (32)"}) {
        const auto sweep = lhr::clockSweep(runner, ref, id, 5);
        lhr::TableWriter table;
        table.addColumn(id, lhr::TableWriter::Align::Left);
        table.addColumn("GHz");
        table.addColumn("perf/base");
        table.addColumn("energy/base");
        for (const auto &pt : sweep) {
            table.beginRow();
            table.cell(std::string());
            table.cell(pt.clockGhz, 2);
            table.cell(pt.perfRelBase, 2);
            table.cell(pt.energyRelBase, 2);
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Figure 7(d): absolute power by workload group "
                 "across clock (i7 and i5)\n\n";
    for (const std::string id : {"i7 (45)", "i5 (32)"}) {
        const auto sweep = lhr::clockSweep(runner, ref, id, 5);
        lhr::TableWriter table;
        table.addColumn(id, lhr::TableWriter::Align::Left);
        table.addColumn("GHz");
        for (const auto group : lhr::allGroups()) {
            table.addColumn(lhr::groupName(group) + " perf");
            table.addColumn("W");
        }
        for (const auto &pt : sweep) {
            table.beginRow();
            table.cell(std::string());
            table.cell(pt.clockGhz, 2);
            for (size_t gi = 0; gi < 4; ++gi) {
                table.cell(pt.groupPerfAbs[gi], 2);
                table.cell(pt.groupPowerW[gi], 1);
            }
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
