/**
 * @file
 * Shim over the registered "fig07" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("fig07", argc, argv);
}
