/**
 * @file
 * Extended Table 1: model-level characterization of every benchmark
 * — the per-workload quantities behind the study (miss rates at the
 * interesting capacities, predicted single-thread IPC on the i7,
 * branch behaviour, parallelism). This is the table the paper's
 * event-counter methodology implies but does not print.
 */

#include <iostream>

#include "core/lab.hh"
#include "cpu/perf_model.hh"
#include "util/table.hh"

int
main()
{
    const auto &i7 = lhr::processorById("i7 (45)");
    const lhr::PerfModel model(i7);

    std::cout <<
        "Extended Table 1: benchmark characterization "
        "(model quantities, i7 (45))\n\n";

    lhr::TableWriter table;
    table.addColumn("Benchmark", lhr::TableWriter::Align::Left);
    table.addColumn("Group", lhr::TableWriter::Align::Left);
    table.addColumn("MPKI@32K");
    table.addColumn("@256K");
    table.addColumn("@8M");
    table.addColumn("misp/Ki");
    table.addColumn("ILP");
    table.addColumn("pfrac");
    table.addColumn("jvmSvc");
    table.addColumn("IPC i7");
    table.addColumn("memCPI %");

    for (const auto &bench : lhr::allBenchmarks()) {
        const auto stack =
            model.threadCpi(bench, i7.stockClockGhz, 1, 1.0);
        table.beginRow();
        table.cell(bench.name);
        table.cell(lhr::groupName(bench.group).substr(0, 9));
        table.cell(bench.miss.missPerKi(32.0), 1);
        table.cell(bench.miss.missPerKi(256.0), 1);
        table.cell(bench.miss.missPerKi(8192.0), 2);
        table.cell(bench.branchMispKi, 1);
        table.cell(bench.ilp, 1);
        table.cell(bench.parallelFraction, 2);
        table.cell(bench.jvmServiceFraction, 2);
        table.cell(stack.ipc(), 2);
        table.cell(100.0 * stack.memory / stack.total(), 1);
    }
    table.print(std::cout);
    return 0;
}
