/**
 * @file
 * Shim over the registered "table1x" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("table1x", argc, argv);
}
