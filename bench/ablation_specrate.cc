/**
 * @file
 * Ablation: SPECrate-style multiprogramming — the analysis the paper
 * scopes out in §2.1. N copies of single-threaded SPEC codes share a
 * chip: compute-bound copies scale almost linearly while cache- and
 * bandwidth-bound copies collapse, and energy per copy tells a
 * different story than single-copy energy.
 */

#include <iostream>

#include "core/lab.hh"
#include "harness/multiprog.hh"
#include "util/table.hh"

int
main()
{
    lhr::Lab lab;
    lhr::RateRunner rate(lab.runner());

    std::cout <<
        "Ablation: SPECrate-style multiprogramming (paper section 2.1\n"
        "scope-out). Copies of single-threaded benchmarks sharing a\n"
        "chip; throughput relative to one copy.\n\n";

    for (const char *procId : {"i7 (45)", "C2Q (65)"}) {
        const auto cfg = lhr::withTurbo(
            lhr::stockConfig(lhr::processorById(procId)), false);
        std::cout << cfg.label() << ":\n";
        lhr::TableWriter table;
        table.addColumn("Benchmark", lhr::TableWriter::Align::Left);
        table.addColumn("Copies");
        table.addColumn("Throughput");
        table.addColumn("Efficiency");
        table.addColumn("Power W");
        table.addColumn("J/copy");
        for (const char *name : {"hmmer", "mcf", "libquantum"}) {
            const auto &bench = lhr::benchmarkByName(name);
            for (const auto &r : rate.sweep(cfg, bench)) {
                if (r.copies != 1 && r.copies != 2 &&
                    r.copies != cfg.contexts())
                    continue;
                table.beginRow();
                table.cell(r.copies == 1 ? bench.name : "");
                table.cell(static_cast<long>(r.copies));
                table.cell(r.throughput, 2);
                table.cell(r.rateEfficiency, 2);
                table.cell(r.powerW, 1);
                table.cell(r.energyPerCopyJ, 0);
            }
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout <<
        "Compute-bound hmmer rates near-linearly; mcf loses\n"
        "throughput to cache sharing; libquantum saturates DRAM\n"
        "bandwidth. Energy per copy can IMPROVE with load even as\n"
        "per-copy performance degrades — the fixed uncore/leakage\n"
        "cost amortizes.\n";
    return 0;
}
