/**
 * @file
 * Shim over the registered "fig11" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("fig11", argc, argv);
}
