/**
 * @file
 * Reproduces paper Figure 11: the historical power/performance
 * overview of the eight stock processors, absolute (a) and per
 * transistor (b). Paper Finding 9: power per transistor is
 * consistent within a microarchitecture family; the Pentium 4 is
 * the outlier with both the most performance and the most power per
 * transistor.
 */

#include <iostream>

#include "analysis/historical.hh"
#include "core/lab.hh"
#include "util/table.hh"

int
main()
{
    lhr::Lab lab;
    const auto points =
        lhr::historicalOverview(lab.runner(), lab.reference());

    std::cout <<
        "Figure 11(a): Power and performance by stock processor\n\n";
    {
        lhr::TableWriter table;
        table.addColumn("Processor", lhr::TableWriter::Align::Left);
        table.addColumn("uArch", lhr::TableWriter::Align::Left);
        table.addColumn("Perf/Ref");
        table.addColumn("Power W");
        for (const auto &pt : points) {
            table.beginRow();
            table.cell(pt.spec->id);
            table.cell(lhr::familyName(pt.spec->family));
            table.cell(pt.aggregate.weighted.perf, 2);
            table.cell(pt.aggregate.weighted.powerW, 1);
        }
        table.print(std::cout);
    }

    std::cout <<
        "\nFigure 11(b): Per-transistor power and performance\n"
        "(paper: power/transistor consistent within a family; "
        "Pentium 4 is\n the high outlier on both axes)\n\n";
    {
        lhr::TableWriter table;
        table.addColumn("Processor", lhr::TableWriter::Align::Left);
        table.addColumn("uArch", lhr::TableWriter::Align::Left);
        table.addColumn("Perf/MTran x1e3");
        table.addColumn("mW/MTran");
        for (const auto &pt : points) {
            table.beginRow();
            table.cell(pt.spec->id);
            table.cell(lhr::familyName(pt.spec->family));
            table.cell(1e3 * pt.perfPerMtran(), 2);
            table.cell(1e3 * pt.powerPerMtran(), 1);
        }
        table.print(std::cout);
    }

    // The paper's closing thought experiment for Figure 11(b):
    // project the Pentium 4 design to 32nm.
    for (const auto &pt : points) {
        if (pt.spec->family != lhr::Family::NetBurst)
            continue;
        const auto projected =
            lhr::projectToNode(pt, lhr::Node::Nm32, 2.0);
        std::cout <<
            "\nProjection (paper: 'four fold less power, two fold\n"
            "more performance' for a 32nm Pentium 4):\n  "
                  << projected.label << ": perf "
                  << lhr::formatFixed(projected.perf, 2) << " (x"
                  << lhr::formatFixed(
                         projected.perf / pt.aggregate.weighted.perf, 2)
                  << "), power "
                  << lhr::formatFixed(projected.powerW, 1) << " W (/"
                  << lhr::formatFixed(
                         pt.aggregate.weighted.powerW / projected.powerW,
                         2)
                  << ")\n";
    }
    return 0;
}
