/**
 * @file
 * Ablation: the Java measurement methodology itself (paper §2.2).
 *
 * (a) Reported iteration: the paper reports the fifth in-invocation
 *     iteration to capture steady state. Reporting earlier
 *     iterations inflates times with class loading and JIT work —
 *     quantified here per iteration.
 * (b) Heap size: the paper fixes the heap at a "generous 3x the
 *     minimum". Tighter heaps collect more often, inflating the
 *     runtime's share of work; larger heaps buy little beyond 3x.
 */

#include <iostream>

#include "core/lab.hh"
#include "jvm/jvm_model.hh"
#include "stats/summary.hh"
#include "util/table.hh"

int
main()
{
    lhr::Lab lab;
    const auto &spec = lhr::processorById("i7 (45)");
    const auto cfg = lhr::withTurbo(lhr::stockConfig(spec), false);
    const auto &perf = lab.runner().perfModel(spec);

    std::cout <<
        "Ablation (a): which iteration is reported (paper: the 5th)\n"
        "Reported time relative to steady state, all Java "
        "benchmarks:\n\n";
    {
        lhr::TableWriter table;
        table.addColumn("Iteration");
        table.addColumn("Time vs steady");
        for (int iteration = 1; iteration <= 5; ++iteration) {
            table.beginRow();
            table.cell(static_cast<long>(iteration));
            table.cell(lhr::JvmModel::warmupFactor(iteration), 2);
        }
        table.print(std::cout);
        std::cout <<
            "Reporting iteration 1 overstates every Java time by "
            "~55%\nand would corrupt every energy number downstream.\n";
    }

    std::cout <<
        "\nAblation (b): heap size (paper: 3x the minimum)\n"
        "Mean Java time and JVM service share vs heap factor:\n\n";
    {
        lhr::TableWriter table;
        table.addColumn("Heap x min");
        table.addColumn("Time vs 3x");
        table.addColumn("Svc share (pjbb2005)");
        for (double heap : {1.5, 2.0, 3.0, 4.0, 6.0}) {
            lhr::Summary rel;
            for (const auto &bench : lhr::allBenchmarks()) {
                if (bench.language() != lhr::Language::Java)
                    continue;
                const double t = lhr::JvmModel::run(
                    perf, bench, cfg, cfg.clockGhz, heap).timeSec;
                const double t3 = lhr::JvmModel::run(
                    perf, bench, cfg, cfg.clockGhz).timeSec;
                rel.add(t / t3);
            }
            table.beginRow();
            table.cell(heap, 1);
            table.cell(rel.mean(), 3);
            table.cell(lhr::JvmModel::serviceAtHeap(
                           lhr::benchmarkByName("pjbb2005")
                               .jvmServiceFraction,
                           heap), 3);
        }
        table.print(std::cout);
        std::cout <<
            "A 1.5x heap roughly doubles GC work; beyond 3x the\n"
            "returns flatten — the methodology's choice is the knee.\n";
    }
    return 0;
}
