/**
 * @file
 * Ablation: JVM vendor influence on power and performance — the
 * future-work study paper section 2.2 sketches. Runs every Java
 * benchmark on the stock i7 (45) under HotSpot, JRockit, and J9.
 *
 * Expected shape (paper): average performance similar across JVMs,
 * individual benchmarks vary substantially, aggregate power differs
 * by up to ~10%.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "core/lab.hh"
#include "jvm/vendors.hh"
#include "stats/summary.hh"
#include "util/table.hh"

int
main()
{
    lhr::Lab lab;
    const auto cfg = lhr::stockConfig(lhr::processorById("i7 (45)"));

    std::cout <<
        "Ablation: JVM vendors on i7 (45)\n"
        "(paper section 2.2: similar average performance, individual\n"
        " benchmarks vary substantially, up to 10% aggregate power\n"
        " difference)\n\n";

    struct VendorRow
    {
        std::string name;
        double meanTimeRel;
        double meanPowerRel;
        double worstSlowdown;
        double bestSpeedup;
        std::string worstBench, bestBench;
    };
    std::vector<VendorRow> rows;

    for (const auto vendor : lhr::allJvmVendors()) {
        const auto &profile = lhr::jvmVendorProfile(vendor);
        lhr::Summary timeRel, powerRel;
        double worst = 0.0, best = 1e9;
        std::string worstBench, bestBench;
        for (const auto &bench : lhr::allBenchmarks()) {
            if (bench.language() != lhr::Language::Java)
                continue;
            const auto adjusted = lhr::applyJvmVendor(bench, vendor);
            const auto &base = lab.measure(cfg, bench);
            const auto &m = lab.measure(cfg, adjusted);
            const double tRel = m.timeSec / base.timeSec;
            timeRel.add(tRel);
            powerRel.add(m.powerW / base.powerW);
            if (tRel > worst) {
                worst = tRel;
                worstBench = bench.name;
            }
            if (tRel < best) {
                best = tRel;
                bestBench = bench.name;
            }
        }
        rows.push_back({profile.name + " (" + profile.build + ")",
                        timeRel.mean(), powerRel.mean(), worst, best,
                        worstBench, bestBench});
    }

    lhr::TableWriter table;
    table.addColumn("JVM", lhr::TableWriter::Align::Left);
    table.addColumn("Time vs HotSpot");
    table.addColumn("Power vs HotSpot");
    table.addColumn("Worst bench");
    table.addColumn("", lhr::TableWriter::Align::Left);
    table.addColumn("Best bench");
    table.addColumn("", lhr::TableWriter::Align::Left);
    for (const auto &row : rows) {
        table.beginRow();
        table.cell(row.name);
        table.cell(row.meanTimeRel, 3);
        table.cell(row.meanPowerRel, 3);
        table.cell(row.worstSlowdown, 2);
        table.cell(row.worstBench);
        table.cell(row.bestSpeedup, 2);
        table.cell(row.bestBench);
    }
    table.print(std::cout);
    return 0;
}
