/**
 * @file
 * Shim over the registered "ablation_jvm_vendors" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("ablation_jvm_vendors", argc, argv);
}
