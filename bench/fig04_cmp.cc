/**
 * @file
 * Shim over the registered "fig04" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("fig04", argc, argv);
}
