/**
 * @file
 * Reproduces paper Figure 4: the effect of enabling a second core
 * (SMT and Turbo Boost disabled) on the i7 (45) and i5 (32).
 *
 * Paper: i7 perf 1.32 / power 1.57 / energy 1.12;
 *        i5 perf 1.34 / power 1.29 / energy 0.91.
 * Per-group energy (i7): NN 1.13, NS 1.09, JN 1.19, JS 1.08;
 *               (i5): NN 1.04, NS 0.81, JN 1.00, JS 0.82.
 */

#include <iostream>

#include "analysis/report.hh"
#include "core/lab.hh"

int
main()
{
    lhr::Lab lab;
    const auto effects = lhr::cmpStudy(lab.runner(), lab.reference());
    lhr::printGroupedEffects(
        std::cout,
        "Figure 4: Effect of CMP (2 cores / 1 core, no SMT, no TB)\n"
        "Paper (a): i7 1.32/1.57/1.12; i5 1.34/1.29/0.91",
        effects);
    return 0;
}
