/**
 * @file
 * Shim over the registered "fig03" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("fig03", argc, argv);
}
