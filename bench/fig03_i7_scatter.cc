/**
 * @file
 * Reproduces paper Figure 3: the power/performance distribution of
 * all 61 benchmarks on the stock i7 (45), by workload group.
 * Scalable benchmarks land fast and power-hungry (eight hardware
 * contexts); non-scalable ones span a wide range.
 */

#include <iostream>

#include "core/lab.hh"
#include "stats/summary.hh"
#include "util/csv.hh"
#include "util/table.hh"

int
main()
{
    lhr::Lab lab;
    const auto cfg = lhr::stockConfig(lhr::processorById("i7 (45)"));
    // Measure the 61 benchmarks (and the reference machines result()
    // normalizes against) on all cores before the serial scan.
    lab.prewarm({cfg});

    std::cout <<
        "Figure 3: Benchmark power and performance on i7 (45)\n"
        "(performance normalized to reference; CSV series below)\n\n";

    lhr::CsvWriter csv(std::cout,
                       {"group", "benchmark", "performance", "power_w"});
    std::array<lhr::Summary, 4> perfByGroup, powerByGroup;
    for (const auto &bench : lhr::allBenchmarks()) {
        const auto r = lab.result(cfg, bench);
        csv.beginRow();
        csv.field(lhr::groupName(bench.group));
        csv.field(bench.name);
        csv.field(r.perf, 3);
        csv.field(r.powerW, 2);
        perfByGroup[static_cast<size_t>(bench.group)].add(r.perf);
        powerByGroup[static_cast<size_t>(bench.group)].add(r.powerW);
    }

    std::cout << "\nGroup centroids:\n";
    lhr::TableWriter table;
    table.addColumn("Group", lhr::TableWriter::Align::Left);
    table.addColumn("Perf mean");
    table.addColumn("Perf min");
    table.addColumn("Perf max");
    table.addColumn("Power mean W");
    table.addColumn("Power min W");
    table.addColumn("Power max W");
    for (size_t gi = 0; gi < 4; ++gi) {
        table.beginRow();
        table.cell(lhr::groupName(lhr::allGroups()[gi]));
        table.cell(perfByGroup[gi].mean(), 2);
        table.cell(perfByGroup[gi].min(), 2);
        table.cell(perfByGroup[gi].max(), 2);
        table.cell(powerByGroup[gi].mean(), 1);
        table.cell(powerByGroup[gi].min(), 1);
        table.cell(powerByGroup[gi].max(), 1);
    }
    table.print(std::cout);
    return 0;
}
