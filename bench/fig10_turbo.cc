/**
 * @file
 * Reproduces paper Figure 10: the effect of Turbo Boost (enabled /
 * disabled) on the i7 (45) and i5 (32), in stock and single-context
 * configurations.
 *
 * Paper (a): i7 4C2T 1.05/1.19/1.13; i7 1C1T 1.07/1.49/1.39;
 *            i5 2C2T 1.03/1.07/1.04; i5 1C1T 1.05/1.05/1.00.
 */

#include <iostream>

#include "analysis/report.hh"
#include "core/lab.hh"

int
main()
{
    lhr::Lab lab;
    lhr::printGroupedEffects(
        std::cout,
        "Figure 10: Effect of Turbo Boost (enabled / disabled)\n"
        "Paper (a): i7 4C2T 1.05/1.19/1.13; i7 1C1T 1.07/1.49/1.39; "
        "i5 2C2T 1.03/1.07/1.04; i5 1C1T 1.05/1.05/1.00",
        lhr::turboStudy(lab.runner(), lab.reference()));
    return 0;
}
