/**
 * @file
 * Shim over the registered "fig10" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("fig10", argc, argv);
}
