/**
 * @file
 * Shim over the registered "fig09" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("fig09", argc, argv);
}
