/**
 * @file
 * Reproduces paper Figure 9: the effect of gross microarchitecture
 * change — Nehalem compared against Bonnell, NetBurst and Core,
 * controlling clock speed and hardware parallelism.
 *
 * Paper (a): i7/AtomD 2.70/2.38/0.85; i7/Pentium4 2.60/0.33/0.13;
 *            i7/C2D(45) 1.14/1.14/1.00; i5/C2D(65) 1.14/0.55/0.48.
 */

#include <iostream>

#include "analysis/report.hh"
#include "core/lab.hh"

int
main()
{
    lhr::Lab lab;
    lhr::printGroupedEffects(
        std::cout,
        "Figure 9: Effect of gross microarchitecture change\n"
        "Paper (a): Bonnell 2.70/2.38/0.85; NetBurst 2.60/0.33/0.13; "
        "Core45 1.14/1.14/1.00; Core65 1.14/0.55/0.48",
        lhr::uarchStudy(lab.runner(), lab.reference()));
    return 0;
}
