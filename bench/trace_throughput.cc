/**
 * @file
 * Perf baseline of the trace substrate: times the three layers a
 * trace flows through — the address-generator kernel (LRU-stack
 * sampling), batched micro-op generation (TraceGenerator::fill),
 * and a full PipelineSim::run — and prints one JSON line per
 * measurement. Future PRs compare against these numbers before
 * touching the hot path.
 *
 * The address-generator numbers are the interesting ones: the
 * O(log n) stack keeps throughput flat in trace length, where the
 * previous O(n) vector stack degraded linearly (a deep-reuse
 * benchmark like mcf ran >20x slower at 8M accesses).
 *
 * Usage: trace_throughput [--accesses N] [--instructions N]
 *   --accesses N      addresses per addrgen run   (default 8000000)
 *   --instructions N  micro-ops per fill/pipe run (default 3000000)
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/lab.hh"
#include "counters/hwcounters.hh"
#include "pipesim/pipeline.hh"
#include "trace/generator.hh"
#include "workload/benchmark.hh"

namespace
{

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t accesses = 8000000;
    uint64_t instructions = 3000000;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--accesses") == 0 && i + 1 < argc) {
            accesses = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--instructions") == 0 &&
                   i + 1 < argc) {
            instructions = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: trace_throughput [--accesses N] "
                         "[--instructions N]\n");
            return 2;
        }
    }

    const auto &spec = lhr::processorById("i7 (45)");
    const auto levels = lhr::structuralLevels(spec);
    const auto pipeCfg =
        lhr::PipelineConfig::of(spec, spec.stockClockGhz);
    const uint64_t seed = 7;

    // hmmer reuses near the stack top, gcc in the middle, mcf deep:
    // together they exercise every path through the substrate.
    for (const char *name : {"hmmer", "gcc", "mcf"}) {
        const auto &bench = lhr::benchmarkByName(name);

        {
            lhr::AddressGenerator gen(
                bench.miss, bench.memAccessPerInstr, seed ^ 0xADD2);
            uint64_t sink = 0;
            const auto t0 = std::chrono::steady_clock::now();
            for (uint64_t i = 0; i < accesses; ++i)
                sink ^= gen.next();
            const double sec = seconds(t0);
            std::printf(
                "{\"kernel\": \"addrgen\", \"benchmark\": \"%s\", "
                "\"accesses\": %llu, \"seconds\": %.3f, "
                "\"maccess_per_sec\": %.2f, \"sink\": \"%llx\"}\n",
                name, (unsigned long long)accesses, sec,
                accesses / sec / 1e6, (unsigned long long)sink);
        }

        {
            lhr::TraceGenerator trace(bench, seed);
            lhr::MicroOpBatch batch;
            uint64_t sink = 0;
            const auto t0 = std::chrono::steady_clock::now();
            for (uint64_t done = 0; done < instructions;) {
                const uint64_t block =
                    std::min<uint64_t>(lhr::MicroOpBatch::defaultSize,
                                       instructions - done);
                trace.fill(batch, block);
                sink ^= batch.addr[block - 1];
                done += block;
            }
            const double sec = seconds(t0);
            std::printf(
                "{\"kernel\": \"fill\", \"benchmark\": \"%s\", "
                "\"micro_ops\": %llu, \"seconds\": %.3f, "
                "\"mops_per_sec\": %.2f, \"sink\": \"%llx\"}\n",
                name, (unsigned long long)instructions, sec,
                instructions / sec / 1e6, (unsigned long long)sink);
        }

        {
            lhr::PipelineSim pipe(pipeCfg, levels);
            const auto t0 = std::chrono::steady_clock::now();
            const auto r = pipe.run(bench, instructions, seed);
            const double sec = seconds(t0);
            std::printf(
                "{\"kernel\": \"pipesim\", \"benchmark\": \"%s\", "
                "\"instructions\": %llu, \"seconds\": %.3f, "
                "\"minstr_per_sec\": %.2f, \"ipc\": %.4f}\n",
                name, (unsigned long long)instructions, sec,
                instructions / sec / 1e6, r.ipc);
        }
    }
    return 0;
}
