/**
 * @file
 * Perf baseline of the trace substrate: times the three layers a
 * trace flows through — the address-generator kernel (LRU-stack
 * sampling), batched micro-op generation (TraceGenerator::fill),
 * and a full PipelineSim::run — and prints one JSON line per
 * measurement. Future PRs compare against these numbers before
 * touching the hot path.
 *
 * The address-generator numbers are the interesting ones: the
 * O(log n) stack keeps throughput flat in trace length, where the
 * previous O(n) vector stack degraded linearly (a deep-reuse
 * benchmark like mcf ran >20x slower at 8M accesses).
 *
 * Writes the measurements to BENCH_trace.json (one record per
 * kernel x benchmark: {name, config, metrics, wall_sec}) so CI can
 * archive them as an artifact and regressions are diffable across
 * commits.
 *
 * Usage: trace_throughput [--accesses N] [--instructions N] [--json F]
 *   --accesses N      addresses per addrgen run   (default 8000000)
 *   --instructions N  micro-ops per fill/pipe run (default 3000000)
 *   --json FILE       baseline file to write (default BENCH_trace.json)
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/lab.hh"
#include "counters/hwcounters.hh"
#include "pipesim/pipeline.hh"
#include "trace/generator.hh"
#include "util/json.hh"
#include "workload/benchmark.hh"

namespace
{

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** One {name, config, metrics, wall_sec} baseline record. */
void
record(lhr::JsonWriter &json, const std::string &kernel,
       const std::string &benchmark, const std::string &sizeKey,
       uint64_t size, const std::string &rateKey, double rate,
       double wallSec, double ipc = 0.0)
{
    json.beginObject();
    json.key("name").value(kernel + "/" + benchmark);
    json.key("config").beginObject();
    json.key("kernel").value(kernel);
    json.key("benchmark").value(benchmark);
    json.key(sizeKey).value(size);
    json.endObject();
    json.key("metrics").beginObject();
    json.key(rateKey).value(rate, 2);
    if (ipc > 0.0)
        json.key("ipc").value(ipc, 4);
    json.endObject();
    json.key("wall_sec").value(wallSec, 6);
    json.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t accesses = 8000000;
    uint64_t instructions = 3000000;
    std::string jsonPath = "BENCH_trace.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--accesses") == 0 && i + 1 < argc) {
            accesses = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--instructions") == 0 &&
                   i + 1 < argc) {
            instructions = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--json") == 0 &&
                   i + 1 < argc) {
            jsonPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: trace_throughput [--accesses N] "
                         "[--instructions N] [--json FILE]\n");
            return 2;
        }
    }

    const auto &spec = lhr::processorById("i7 (45)");
    const auto levels = lhr::structuralLevels(spec);
    const auto pipeCfg =
        lhr::PipelineConfig::of(spec, spec.stockClockGhz);
    const uint64_t seed = 7;

    std::ofstream jsonOut(jsonPath, std::ios::binary);
    lhr::JsonWriter json(jsonOut);
    json.beginArray();

    // hmmer reuses near the stack top, gcc in the middle, mcf deep:
    // together they exercise every path through the substrate.
    for (const char *name : {"hmmer", "gcc", "mcf"}) {
        const auto &bench = lhr::benchmarkByName(name);

        {
            lhr::AddressGenerator gen(
                bench.miss, bench.memAccessPerInstr, seed ^ 0xADD2);
            uint64_t sink = 0;
            const auto t0 = std::chrono::steady_clock::now();
            for (uint64_t i = 0; i < accesses; ++i)
                sink ^= gen.next();
            const double sec = seconds(t0);
            std::printf(
                "{\"kernel\": \"addrgen\", \"benchmark\": \"%s\", "
                "\"accesses\": %llu, \"seconds\": %.3f, "
                "\"maccess_per_sec\": %.2f, \"sink\": \"%llx\"}\n",
                name, (unsigned long long)accesses, sec,
                accesses / sec / 1e6, (unsigned long long)sink);
            record(json, "addrgen", name, "accesses", accesses,
                   "maccess_per_sec", accesses / sec / 1e6, sec);
        }

        {
            lhr::TraceGenerator trace(bench, seed);
            lhr::MicroOpBatch batch;
            uint64_t sink = 0;
            const auto t0 = std::chrono::steady_clock::now();
            for (uint64_t done = 0; done < instructions;) {
                const uint64_t block =
                    std::min<uint64_t>(lhr::MicroOpBatch::defaultSize,
                                       instructions - done);
                trace.fill(batch, block);
                sink ^= batch.addr[block - 1];
                done += block;
            }
            const double sec = seconds(t0);
            std::printf(
                "{\"kernel\": \"fill\", \"benchmark\": \"%s\", "
                "\"micro_ops\": %llu, \"seconds\": %.3f, "
                "\"mops_per_sec\": %.2f, \"sink\": \"%llx\"}\n",
                name, (unsigned long long)instructions, sec,
                instructions / sec / 1e6, (unsigned long long)sink);
            record(json, "fill", name, "micro_ops", instructions,
                   "mops_per_sec", instructions / sec / 1e6, sec);
        }

        {
            lhr::PipelineSim pipe(pipeCfg, levels);
            const auto t0 = std::chrono::steady_clock::now();
            const auto r = pipe.run(bench, instructions, seed);
            const double sec = seconds(t0);
            std::printf(
                "{\"kernel\": \"pipesim\", \"benchmark\": \"%s\", "
                "\"instructions\": %llu, \"seconds\": %.3f, "
                "\"minstr_per_sec\": %.2f, \"ipc\": %.4f}\n",
                name, (unsigned long long)instructions, sec,
                instructions / sec / 1e6, r.ipc);
            record(json, "pipesim", name, "instructions",
                   instructions, "minstr_per_sec",
                   instructions / sec / 1e6, sec, r.ipc);
        }
    }

    json.endArray();
    std::fprintf(stderr, "baseline written: %s\n", jsonPath.c_str());
    return 0;
}
