/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: the cost
 * of the performance model, the power model, the sensor chain, and a
 * full measurement, so regressions in the lab's own speed are
 * visible.
 */

#include <benchmark/benchmark.h>

#include "core/lab.hh"
#include "counters/hwcounters.hh"
#include "pipesim/pipeline.hh"
#include "stats/bootstrap.hh"
#include "trace/generator.hh"
#include "jvm/jvm_model.hh"

namespace
{

const lhr::ProcessorSpec &i7()
{
    return lhr::processorById("i7 (45)");
}

void
BM_ThreadCpi(benchmark::State &state)
{
    const lhr::PerfModel model(i7());
    const auto &bench = lhr::benchmarkByName("mcf");
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.threadCpi(bench, 2.667, 1, 1.0).total());
    }
}
BENCHMARK(BM_ThreadCpi);

void
BM_PerfEvaluate(benchmark::State &state)
{
    const lhr::PerfModel model(i7());
    const auto &bench = lhr::benchmarkByName("fluidanimate");
    const auto cfg = lhr::stockConfig(i7());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluate(bench, cfg, 2.667,
                           bench.instructionsB() * 1e9,
                           bench.appThreads).timeSec);
    }
}
BENCHMARK(BM_PerfEvaluate);

void
BM_JvmRun(benchmark::State &state)
{
    const lhr::PerfModel model(i7());
    const auto &bench = lhr::benchmarkByName("lusearch");
    const auto cfg = lhr::stockConfig(i7());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            lhr::JvmModel::run(model, bench, cfg, 2.667).timeSec);
    }
}
BENCHMARK(BM_JvmRun);

void
BM_PowerCompute(benchmark::State &state)
{
    const lhr::ChipPowerModel model(i7());
    const auto cfg = lhr::stockConfig(i7());
    const std::vector<double> activity(4, 0.6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.compute(cfg, 2.667, activity, 0.4, 5.0).total());
    }
}
BENCHMARK(BM_PowerCompute);

void
BM_SensorSample(benchmark::State &state)
{
    const lhr::PowerChannel channel(lhr::SensorVariant::A30, 7);
    lhr::Rng rng(11);
    for (auto _ : state)
        benchmark::DoNotOptimize(channel.sampleCounts(50.0, rng));
}
BENCHMARK(BM_SensorSample);

void
BM_FullMeasurement(benchmark::State &state)
{
    const auto cfg = lhr::stockConfig(i7());
    const auto &bench = lhr::benchmarkByName("xalan");
    for (auto _ : state) {
        // A fresh runner each iteration so the cache cannot hide
        // the work being measured.
        lhr::ExperimentRunner runner(state.iterations());
        benchmark::DoNotOptimize(runner.measure(cfg, bench).powerW);
    }
}
BENCHMARK(BM_FullMeasurement);

void
BM_TraceGeneration(benchmark::State &state)
{
    lhr::TraceGenerator trace(lhr::benchmarkByName("gcc"), 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(trace.next().addr);
}
BENCHMARK(BM_TraceGeneration);

void
BM_CacheSimAccess(benchmark::State &state)
{
    lhr::HierarchySim caches({{32.0, 8}, {256.0, 8}, {8192.0, 16}});
    lhr::AddressGenerator gen(lhr::benchmarkByName("gcc").miss, 0.35,
                              4);
    for (auto _ : state)
        caches.access(gen.next());
}
BENCHMARK(BM_CacheSimAccess);

void
BM_PipelineKiloInstr(benchmark::State &state)
{
    const auto &spec = i7();
    const auto cfg = lhr::PipelineConfig::of(spec, 2.667);
    for (auto _ : state) {
        lhr::PipelineSim pipe(cfg, {{32.0, 8}, {256.0, 8},
                                    {8192.0, 16}});
        benchmark::DoNotOptimize(
            pipe.run(lhr::benchmarkByName("gcc"), 1000,
                     state.iterations(), 0).ipc);
    }
}
BENCHMARK(BM_PipelineKiloInstr);

void
BM_Characterize100k(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            lhr::characterizeWorkload(lhr::benchmarkByName("gcc"),
                                      i7(), 100000,
                                      state.iterations(), 0.0, 0)
                .l1Mpki);
    }
}
BENCHMARK(BM_Characterize100k);

void
BM_BootstrapCi(benchmark::State &state)
{
    lhr::Rng rng(5);
    std::vector<double> samples;
    for (int i = 0; i < 20; ++i)
        samples.push_back(rng.gaussian(100.0, 2.0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            lhr::bootstrapCi95(samples, rng, 400).hi);
    }
}
BENCHMARK(BM_BootstrapCi);

} // namespace

BENCHMARK_MAIN();
