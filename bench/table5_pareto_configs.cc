/**
 * @file
 * Reproduces paper Table 5: the Pareto-efficient 45nm processor
 * configurations for each benchmark group and the average.
 *
 * Paper highlights: 15 of the 29 configurations appear on some
 * frontier; no Atom D510 configuration is Pareto-efficient for any
 * group; every Native Non-scalable frontier point is an i7
 * configuration (contradicting Azizi et al.'s in-order prediction);
 * Java and native frontiers share few choices.
 */

#include <iostream>
#include <map>
#include <optional>
#include <set>

#include "analysis/pareto_study.hh"
#include "core/lab.hh"
#include "util/table.hh"

int
main()
{
    lhr::Lab lab;

    // Collect frontier membership per group.
    std::map<std::string, std::set<std::string>> membership;
    std::set<std::string> allMembers;

    auto collect = [&](std::optional<lhr::Group> group,
                       const std::string &label) {
        for (const auto &pt : lhr::paretoFrontier45nm(
                 lab.runner(), lab.reference(), group)) {
            membership[pt.label].insert(label);
            allMembers.insert(pt.label);
        }
    };

    collect(std::nullopt, "Average");
    for (const auto group : lhr::allGroups())
        collect(group, lhr::groupName(group));

    std::cout <<
        "Table 5: Pareto-efficient 45nm configurations per group\n"
        "(paper: 15 of 29 configurations appear; all AtomD configs\n"
        " absent; all Native Non-scalable picks are i7 configs)\n\n";

    lhr::TableWriter table;
    table.addColumn("Configuration", lhr::TableWriter::Align::Left);
    table.addColumn("Avg", lhr::TableWriter::Align::Left);
    for (const auto group : lhr::allGroups())
        table.addColumn(lhr::groupName(group), lhr::TableWriter::Align::Left);

    for (const auto &[label, groups] : membership) {
        table.beginRow();
        table.cell(label);
        table.cell(groups.count("Average") ? "x" : "");
        for (const auto group : lhr::allGroups())
            table.cell(groups.count(lhr::groupName(group)) ? "x" : "");
    }
    table.print(std::cout);

    std::cout << "\nConfigurations on some frontier: "
              << allMembers.size() << " of "
              << lhr::configurations45nm().size() << "\n";
    return 0;
}
