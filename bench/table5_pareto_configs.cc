/**
 * @file
 * Shim over the registered "table5" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("table5", argc, argv);
}
