/**
 * @file
 * Ablation: why the paper controls hardware through the BIOS.
 *
 * (a) OS hot-unplug versus BIOS core disabling: on the paper's
 *     2.6.31 kernel (Linux bug #5471), offlined cores keep polling,
 *     so "power consumption increased as hardware resources were
 *     decreased" (section 2.8).
 * (b) cpufreq governor behaviour on a bursty utilization profile:
 *     ondemand recovers most of powersave's energy at a fraction of
 *     its slowdown, but none of the governors equal fixed BIOS
 *     control for controlled experiments.
 */

#include <cmath>
#include <iostream>

#include "os/governor.hh"
#include "util/table.hh"

int
main()
{
    std::cout <<
        "Ablation (a): OS core offlining vs BIOS core disabling\n"
        "(power of a single-threaded run, OS / BIOS; > 1.00 means the\n"
        " OS path draws MORE power with FEWER usable cores)\n\n";
    {
        lhr::TableWriter table;
        table.addColumn("Processor", lhr::TableWriter::Align::Left);
        table.addColumn("Offlined");
        table.addColumn("2.6.31 (bug #5471)");
        table.addColumn("fixed kernel");
        for (const char *id : {"i7 (45)", "C2Q (65)", "i5 (32)"}) {
            const auto &spec = lhr::processorById(id);
            for (int offlined = 1; offlined < spec.cores;
                 offlined += 2) {
                table.beginRow();
                table.cell(spec.id);
                table.cell(static_cast<long>(offlined));
                table.cell(lhr::OsContextScaling::osVsBiosPowerRatio(
                               spec, offlined, true), 2);
                table.cell(lhr::OsContextScaling::osVsBiosPowerRatio(
                               spec, offlined, false), 2);
            }
        }
        table.print(std::cout);
    }

    std::cout <<
        "\nAblation (b): cpufreq governors on a bursty load\n"
        "(i7 (45), alternating 95%/10% utilization phases)\n\n";
    {
        const auto &spec = lhr::processorById("i7 (45)");
        lhr::TableWriter table;
        table.addColumn("Governor", lhr::TableWriter::Align::Left);
        table.addColumn("Mean GHz");
        table.addColumn("GHz in busy phases");
        for (const auto policy :
             {lhr::GovernorPolicy::Performance,
              lhr::GovernorPolicy::Ondemand,
              lhr::GovernorPolicy::Powersave}) {
            lhr::CpuFreqGovernor governor(spec, policy);
            double sum = 0.0, busySum = 0.0;
            int busyCount = 0;
            const int samples = 400;
            for (int i = 0; i < samples; ++i) {
                const bool busy = (i / 20) % 2 == 0;
                const double f = governor.step(busy ? 0.95 : 0.10);
                sum += f;
                if (busy) {
                    busySum += f;
                    ++busyCount;
                }
            }
            table.beginRow();
            table.cell(lhr::governorPolicyName(policy));
            table.cell(sum / samples, 2);
            table.cell(busySum / busyCount, 2);
        }
        table.print(std::cout);
        std::cout <<
            "\nondemand tracks the bursts, but its clock depends on\n"
            "load history — the BIOS pin the paper uses is the only\n"
            "way to hold frequency constant per configuration.\n";
    }
    return 0;
}
