/**
 * @file
 * Shim over the registered "ablation_os_scaling" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("ablation_os_scaling", argc, argv);
}
