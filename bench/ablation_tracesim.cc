/**
 * @file
 * Shim over the registered "ablation_tracesim" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("ablation_tracesim", argc, argv);
}
