/**
 * @file
 * Ablation: cross-validation of the two modeling substrates. The
 * interval performance model consumes analytic miss curves; the
 * structural substrate simulates actual LRU arrays over synthetic
 * traces generated from the same descriptors. If the two disagree,
 * one of them is wrong. This bench characterizes representative
 * benchmarks on the i7's geometry and compares simulated MPKI,
 * branch misprediction, and DTLB behaviour against the analytic
 * values — including the GC-displacement DTLB effect behind the
 * paper's db observation (section 3.1).
 */

#include <iostream>

#include "counters/hwcounters.hh"
#include "core/lab.hh"
#include "util/table.hh"

int
main()
{
    const auto &i7 = lhr::processorById("i7 (45)");
    const uint64_t traceLength = 400000;

    std::cout <<
        "Ablation: structural trace simulation vs analytic curves\n"
        "(i7 (45) geometry, " << traceLength
              << "-instruction synthetic traces)\n\n";

    lhr::TableWriter table;
    table.addColumn("Benchmark", lhr::TableWriter::Align::Left);
    table.addColumn("L1 MPKI sim");
    table.addColumn("analytic");
    table.addColumn("LLC MPKI sim");
    table.addColumn("analytic");
    table.addColumn("misp/Ki sim");
    table.addColumn("target");
    table.addColumn("dTLB MPKI");

    const auto hierarchy = lhr::makeHierarchy(i7);
    for (const char *name :
         {"hmmer", "gcc", "mcf", "libquantum", "db", "xalan",
          "fluidanimate"}) {
        const auto &bench = lhr::benchmarkByName(name);
        const auto profile =
            lhr::characterizeWorkload(bench, i7, traceLength, 7);

        const auto analytic = hierarchy.evaluate(bench.miss, 1.0, 1.0);

        table.beginRow();
        table.cell(bench.name);
        table.cell(profile.l1Mpki, 1);
        table.cell(analytic.l1Mpki, 1);
        table.cell(profile.llcMpki, 2);
        table.cell(analytic.dramMpki, 2);
        table.cell(profile.branchMispKi, 1);
        table.cell(bench.branchMispKi, 1);
        table.cell(profile.dtlbMpki, 2);
    }
    table.print(std::cout);

    std::cout <<
        "\nGC DTLB displacement (the db effect): dTLB MPKI of db with\n"
        "a same-core collector vs an offloaded one:\n";
    const auto &db = lhr::benchmarkByName("db");
    const auto sameCore =
        lhr::characterizeWorkload(db, i7, traceLength, 7, 0.7);
    const auto offloaded =
        lhr::characterizeWorkload(db, i7, traceLength, 7, 0.0);
    std::cout << "  same-core GC: "
              << lhr::formatFixed(sameCore.dtlbMpki, 2)
              << "  offloaded GC: "
              << lhr::formatFixed(offloaded.dtlbMpki, 2)
              << "  ratio: "
              << lhr::formatFixed(
                     sameCore.dtlbMpki / offloaded.dtlbMpki, 2)
              << " (paper: factor ~2.5 fewer DTLB misses with the\n"
                 "   collector elsewhere)\n";
    return 0;
}
