/**
 * @file
 * Shim over the registered "ablation_corun" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("ablation_corun", argc, argv);
}
