/**
 * @file
 * Ablation: heterogeneous co-location interference on the i7 (45) —
 * the pairwise slowdown matrix of single-threaded benchmarks sharing
 * the 8MB LLC and DRAM bandwidth. Cache-insensitive codes (hmmer,
 * povray) neither suffer nor inflict; capacity-hungry codes (mcf)
 * suffer from and inflict on each other; streaming codes
 * (libquantum) inflict via bandwidth without caring about capacity.
 */

#include <iostream>

#include "core/lab.hh"
#include "harness/corun.hh"
#include "util/table.hh"

namespace
{

void
printMatrix(lhr::CoRunner &corunner, const lhr::MachineConfig &cfg,
            const std::vector<const lhr::Benchmark *> &set)
{
    std::cout << cfg.label()
              << " (rows: victim slowdown when co-run with column)\n";
    const auto matrix = corunner.matrix(cfg, set);
    lhr::TableWriter table;
    table.addColumn("victim \\ rival", lhr::TableWriter::Align::Left);
    for (const auto *bench : set)
        table.addColumn(bench->name);
    for (size_t i = 0; i < set.size(); ++i) {
        table.beginRow();
        table.cell(set[i]->name);
        for (size_t j = 0; j < set.size(); ++j)
            table.cell(matrix[i][j], 2);
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    lhr::Lab lab;
    lhr::CoRunner corunner(lab.runner());

    const std::vector<const lhr::Benchmark *> set = {
        &lhr::benchmarkByName("hmmer"),
        &lhr::benchmarkByName("povray"),
        &lhr::benchmarkByName("gcc"),
        &lhr::benchmarkByName("xalancbmk"),
        &lhr::benchmarkByName("mcf"),
        &lhr::benchmarkByName("libquantum"),
    };

    std::cout <<
        "Ablation: heterogeneous co-run interference\n\n";

    // The 2006-class part: 4MB shared L2 and a DDR2 FSB make
    // colocation expensive.
    printMatrix(corunner, lhr::stockConfig(lhr::processorById("C2D (65)")),
                set);
    // The 2008 i7: the 8MB L3 and triple-channel DDR3 absorb most of
    // the same interference.
    printMatrix(corunner,
                lhr::withSmt(lhr::withTurbo(lhr::stockConfig(
                                 lhr::processorById("i7 (45)")), false),
                             false),
                set);

    std::cout <<
        "Interference shrank generation over generation: bigger\n"
        "shared caches and integrated memory controllers are why.\n";
    return 0;
}
