/**
 * @file
 * Reproduces paper Table 2: aggregate 95% confidence intervals for
 * measured execution time and power — average and maximum across all
 * processor configurations and benchmarks, overall and per group.
 */

#include <algorithm>
#include <iostream>

#include "core/lab.hh"
#include "util/table.hh"

namespace
{

struct CiAggregate
{
    double timeSum = 0.0, timeMax = 0.0;
    double powerSum = 0.0, powerMax = 0.0;
    int n = 0;

    void
    add(const lhr::Measurement &m)
    {
        timeSum += m.timeCi95Rel;
        timeMax = std::max(timeMax, m.timeCi95Rel);
        powerSum += m.powerCi95Rel;
        powerMax = std::max(powerMax, m.powerCi95Rel);
        ++n;
    }
};

} // namespace

int
main()
{
    lhr::Lab lab;
    // Measure the whole grid on the parallel sweep engine first;
    // the aggregation loop below is then pure cache hits.
    lab.sweepFullGrid();

    // Paper Table 2 aggregates over all processor configurations;
    // we use the full 45-configuration set.
    CiAggregate overall;
    std::array<CiAggregate, 4> byGroup;

    for (const auto &cfg : lhr::standardConfigurations()) {
        for (const auto &bench : lhr::allBenchmarks()) {
            const auto &m = lab.measure(cfg, bench);
            overall.add(m);
            byGroup[static_cast<size_t>(bench.group)].add(m);
        }
    }

    std::cout <<
        "Table 2: Aggregate 95% confidence intervals (percent)\n"
        "Paper: overall avg 1.2% / 2.2% time, 1.5% / 7.1% power\n\n";

    lhr::TableWriter table;
    table.addColumn("", lhr::TableWriter::Align::Left);
    table.addColumn("Time avg %");
    table.addColumn("Time max %");
    table.addColumn("Power avg %");
    table.addColumn("Power max %");

    auto emit = [&](const std::string &label, const CiAggregate &ci) {
        table.beginRow();
        table.cell(label);
        table.cell(100.0 * ci.timeSum / ci.n, 1);
        table.cell(100.0 * ci.timeMax, 1);
        table.cell(100.0 * ci.powerSum / ci.n, 1);
        table.cell(100.0 * ci.powerMax, 1);
    };

    emit("Average", overall);
    for (size_t gi = 0; gi < byGroup.size(); ++gi)
        emit(lhr::groupName(lhr::allGroups()[gi]), byGroup[gi]);
    table.print(std::cout);
    return 0;
}
