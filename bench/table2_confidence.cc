/**
 * @file
 * Shim over the registered "table2" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("table2", argc, argv);
}
