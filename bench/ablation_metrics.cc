/**
 * @file
 * Ablation: how the choice of efficiency metric (energy, EDP, ED^2P)
 * changes which 45nm configuration "wins" — extending the paper's
 * Pareto analysis (section 4.2) with the weighted metrics used by
 * the design-exploration work it cites.
 */

#include <iostream>

#include "analysis/energy_metrics.hh"
#include "core/lab.hh"
#include "util/table.hh"

int
main()
{
    lhr::Lab lab;

    std::cout <<
        "Ablation: efficiency metric choice at 45nm "
        "(equal-weight average)\n"
        "(energy favours the lowest-power points; ED^2P favours\n"
        " performance — the 'best' design is metric-dependent)\n\n";

    for (const auto metric :
         {lhr::EfficiencyMetric::Energy, lhr::EfficiencyMetric::Edp,
          lhr::EfficiencyMetric::Ed2p}) {
        const auto ranked = lhr::rankConfigurations45nm(
            lab.runner(), lab.reference(), metric, std::nullopt);
        std::cout << "Top 5 by " << lhr::efficiencyMetricName(metric)
                  << ":\n";
        lhr::TableWriter table;
        table.addColumn("Configuration", lhr::TableWriter::Align::Left);
        table.addColumn("Perf/Ref");
        table.addColumn("Energy/Ref");
        table.addColumn("Value");
        for (size_t i = 0; i < 5 && i < ranked.size(); ++i) {
            table.beginRow();
            table.cell(ranked[i].label);
            table.cell(ranked[i].perf, 2);
            table.cell(ranked[i].energy, 3);
            table.cell(ranked[i].value, 3);
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
