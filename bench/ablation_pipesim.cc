/**
 * @file
 * Ablation: detailed pipeline simulation vs the analytic CPI stacks.
 * The micro-op pipeline model issues real synthetic traces through
 * issue-width, dependence, window, cache-latency, and branch-flush
 * constraints; the analytic layer computes the same IPC in closed
 * form. Agreement across benchmarks and microarchitectures is the
 * strongest internal-consistency check the laboratory has.
 */

#include <iostream>

#include "core/lab.hh"
#include "counters/hwcounters.hh"
#include "cpu/perf_model.hh"
#include "pipesim/pipeline.hh"
#include "util/table.hh"

int
main()
{
    // Long traces only became affordable with the O(log n) LRU
    // stack; 3M instructions tightens the IPC estimate an order of
    // magnitude over the old 300k cap.
    const uint64_t instructions = 3000000;

    std::cout <<
        "Ablation: micro-op pipeline simulation vs analytic CPI\n"
        "(" << instructions << "-instruction traces, IPC per thread)\n\n";

    for (const char *procId :
         {"i7 (45)", "C2D (65)", "Atom (45)", "Pentium4 (130)"}) {
        const auto &spec = lhr::processorById(procId);
        const lhr::PerfModel analytic(spec);
        const auto pipeCfg =
            lhr::PipelineConfig::of(spec, spec.stockClockGhz);

        const auto levels = lhr::structuralLevels(spec);

        std::cout << spec.id << " @ "
                  << lhr::formatFixed(spec.stockClockGhz, 2)
                  << " GHz:\n";
        lhr::TableWriter table;
        table.addColumn("Benchmark", lhr::TableWriter::Align::Left);
        table.addColumn("IPC pipe");
        table.addColumn("IPC analytic");
        table.addColumn("ratio");
        table.addColumn("mem wait %");
        table.addColumn("branch wait %");

        for (const char *name :
             {"hmmer", "gcc", "mcf", "xalan", "povray"}) {
            const auto &bench = lhr::benchmarkByName(name);
            lhr::PipelineSim pipe(pipeCfg, levels);
            const auto r = pipe.run(bench, instructions, 99);
            const double analyticIpc =
                analytic.threadCpi(bench, spec.stockClockGhz, 1, 1.0)
                    .ipc();
            table.beginRow();
            table.cell(bench.name);
            table.cell(r.ipc, 2);
            table.cell(analyticIpc, 2);
            table.cell(r.ipc / analyticIpc, 2);
            table.cell(100.0 * r.memStallShare, 1);
            table.cell(100.0 * r.branchStallShare, 1);
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout <<
        "Both layers must agree on ordering (hmmer fastest, mcf\n"
        "slowest) and on the microarchitecture ranking per clock\n"
        "(Nehalem > Core > NetBurst ~ Bonnell). The detailed model\n"
        "sits systematically below the analytic one (it exposes L1\n"
        "latency on dependence chains the closed form folds into the\n"
        "base term); what must match is structure, not the constant.\n";
    return 0;
}
