/**
 * @file
 * Perf baseline of the parallel sweep engine: runs the experimental
 * grid serially (one worker) and in parallel (all workers), verifies
 * the two produce bit-identical Measurements, and reports wall time,
 * throughput (experiments/sec), speedup and cache behaviour. Future
 * PRs compare against these numbers before touching the hot path.
 *
 * Usage: sweep_throughput [--threads N] [--grid full|small]
 *   --threads N   parallel worker count (default: auto)
 *   --grid small  8 configurations x all benchmarks (quick check)
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "sweep/sweep.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace
{

bool
identical(const lhr::Measurement &a, const lhr::Measurement &b)
{
    return a.timeSec == b.timeSec && a.timeCi95Rel == b.timeCi95Rel &&
        a.powerW == b.powerW && a.powerCi95Rel == b.powerCi95Rel &&
        a.invocations == b.invocations;
}

} // namespace

int
main(int argc, char **argv)
{
    int threads = 0;
    bool smallGrid = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--grid") == 0 && i + 1 < argc) {
            smallGrid = std::string(argv[++i]) == "small";
        } else {
            std::cerr << "usage: sweep_throughput [--threads N] "
                         "[--grid full|small]\n";
            return 2;
        }
    }

    std::vector<lhr::MachineConfig> configs =
        lhr::standardConfigurations();
    if (smallGrid)
        configs.resize(8);
    const auto &benchmarks = lhr::allBenchmarks();

    std::cout << "sweep_throughput: " << configs.size()
              << " configurations x " << benchmarks.size()
              << " benchmarks = " << configs.size() * benchmarks.size()
              << " experiments\n\n";

    // Serial baseline: a fresh runner, one worker.
    lhr::ExperimentRunner serialRunner;
    lhr::SweepEngine serial(serialRunner, {.threads = 1});
    const lhr::SweepReport serialReport =
        serial.run(configs, benchmarks);
    std::cout << "serial   " << serialReport.summary() << "\n";

    // Parallel run: a fresh runner so nothing is pre-cached.
    lhr::ExperimentRunner parallelRunner;
    lhr::SweepEngine parallel(parallelRunner, {.threads = threads});
    const lhr::SweepReport parallelReport =
        parallel.run(configs, benchmarks);
    std::cout << "parallel " << parallelReport.summary() << "\n";

    // Re-sweep on the warm cache: the memoization path.
    const lhr::SweepReport cachedReport =
        parallel.run(configs, benchmarks);
    std::cout << "cached   " << cachedReport.summary() << "\n\n";

    size_t mismatches = 0;
    for (size_t i = 0; i < serialReport.cells.size(); ++i) {
        if (!identical(*serialReport.cells[i].measurement,
                       *parallelReport.cells[i].measurement))
            ++mismatches;
    }

    const double speedup = parallelReport.wallSec > 0.0
        ? serialReport.wallSec / parallelReport.wallSec : 0.0;
    std::cout << "speedup: " << speedup << "x on "
              << parallelReport.threads << " threads (host reports "
              << lhr::ThreadPool::defaultThreadCount()
              << " available)\n";
    std::cout << "bit-identical to serial: "
              << (mismatches == 0 ? "yes" : "NO") << " (" << mismatches
              << " mismatching cells)\n";
    std::cout << "slowest experiment: " << serialReport.maxCellSec
              << "s\n";

    if (mismatches != 0) {
        std::cerr << "FAIL: parallel sweep diverged from serial\n";
        return 1;
    }
    return 0;
}
