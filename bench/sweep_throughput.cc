/**
 * @file
 * Perf baseline of the parallel sweep engine: runs the experimental
 * grid serially (one worker) and in parallel (all workers), verifies
 * the two produce bit-identical Measurements, and reports wall time,
 * throughput (experiments/sec), speedup and cache behaviour. Future
 * PRs compare against these numbers before touching the hot path.
 *
 * Writes the measurements to BENCH_sweep.json (one record per run:
 * {name, config, metrics, wall_sec}) so CI can archive them as an
 * artifact and regressions are diffable across commits.
 *
 * Usage: sweep_throughput [--threads N] [--grid full|small] [--json F]
 *   --threads N   parallel worker count (default: auto)
 *   --grid small  8 configurations x all benchmarks (quick check)
 *   --json FILE   baseline file to write (default: BENCH_sweep.json)
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sweep/sweep.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace
{

bool
identical(const lhr::Measurement &a, const lhr::Measurement &b)
{
    return a.timeSec == b.timeSec && a.timeCi95Rel == b.timeCi95Rel &&
        a.powerW == b.powerW && a.powerCi95Rel == b.powerCi95Rel &&
        a.invocations == b.invocations;
}

void
record(lhr::JsonWriter &json, const std::string &name,
       const std::string &grid, const lhr::SweepReport &report,
       double speedup = 0.0)
{
    json.beginObject();
    json.key("name").value(name);
    json.key("config").beginObject();
    json.key("grid").value(grid);
    json.key("configurations").value((uint64_t)report.configs.size());
    json.key("benchmarks").value((uint64_t)report.benchmarks.size());
    json.key("threads").value((long)report.threads);
    json.endObject();
    json.key("metrics").beginObject();
    json.key("experiments").value((uint64_t)report.experiments());
    json.key("experiments_per_sec")
        .value(report.experimentsPerSec(), 1);
    json.key("max_cell_sec").value(report.maxCellSec, 6);
    json.key("sum_cell_sec").value(report.sumCellSec, 6);
    json.key("cache_hits").value(report.cache.hits);
    json.key("cache_misses").value(report.cache.misses);
    if (speedup > 0.0)
        json.key("speedup").value(speedup, 3);
    json.endObject();
    json.key("wall_sec").value(report.wallSec, 6);
    json.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    int threads = 0;
    bool smallGrid = false;
    std::string jsonPath = "BENCH_sweep.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--grid") == 0 && i + 1 < argc) {
            smallGrid = std::string(argv[++i]) == "small";
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            jsonPath = argv[++i];
        } else {
            std::cerr << "usage: sweep_throughput [--threads N] "
                         "[--grid full|small] [--json FILE]\n";
            return 2;
        }
    }

    std::vector<lhr::MachineConfig> configs =
        lhr::standardConfigurations();
    if (smallGrid)
        configs.resize(8);
    const auto &benchmarks = lhr::allBenchmarks();

    std::cout << "sweep_throughput: " << configs.size()
              << " configurations x " << benchmarks.size()
              << " benchmarks = " << configs.size() * benchmarks.size()
              << " experiments\n\n";

    // Serial baseline: a fresh runner, one worker.
    lhr::ExperimentRunner serialRunner;
    lhr::SweepEngine serial(serialRunner, {.threads = 1});
    const lhr::SweepReport serialReport =
        serial.run(configs, benchmarks);
    std::cout << "serial   " << serialReport.summary() << "\n";

    // Parallel run: a fresh runner so nothing is pre-cached.
    lhr::ExperimentRunner parallelRunner;
    lhr::SweepEngine parallel(parallelRunner, {.threads = threads});
    const lhr::SweepReport parallelReport =
        parallel.run(configs, benchmarks);
    std::cout << "parallel " << parallelReport.summary() << "\n";

    // Re-sweep on the warm cache: the memoization path.
    const lhr::SweepReport cachedReport =
        parallel.run(configs, benchmarks);
    std::cout << "cached   " << cachedReport.summary() << "\n\n";

    size_t mismatches = 0;
    for (size_t i = 0; i < serialReport.cells.size(); ++i) {
        if (!identical(*serialReport.cells[i].measurement,
                       *parallelReport.cells[i].measurement))
            ++mismatches;
    }

    const double speedup = parallelReport.wallSec > 0.0
        ? serialReport.wallSec / parallelReport.wallSec : 0.0;
    std::cout << "speedup: " << speedup << "x on "
              << parallelReport.threads << " threads (host reports "
              << lhr::ThreadPool::defaultThreadCount()
              << " available)\n";
    std::cout << "bit-identical to serial: "
              << (mismatches == 0 ? "yes" : "NO") << " (" << mismatches
              << " mismatching cells)\n";
    std::cout << "slowest experiment: " << serialReport.maxCellSec
              << "s\n";

    const std::string grid = smallGrid ? "small" : "full";
    std::ofstream jsonOut(jsonPath, std::ios::binary);
    lhr::JsonWriter json(jsonOut);
    json.beginArray();
    record(json, "sweep_serial", grid, serialReport);
    record(json, "sweep_parallel", grid, parallelReport, speedup);
    record(json, "sweep_cached", grid, cachedReport);
    json.endArray();
    std::cout << "baseline written: " << jsonPath << "\n";

    if (mismatches != 0) {
        std::cerr << "FAIL: parallel sweep diverged from serial\n";
        return 1;
    }
    return 0;
}
