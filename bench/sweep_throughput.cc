/**
 * @file
 * Perf baseline of the parallel sweep engine: runs the experimental
 * grid serially (one worker, batch fill) and in parallel (all
 * workers), repeats each mode to separate signal from scheduler
 * noise, verifies batch fill, scalar per-cell fill and the parallel
 * run all produce bit-identical Measurements, and reports min/median
 * wall time, throughput (experiments/sec), speedup and cache
 * behaviour. Future PRs compare against these numbers before
 * touching the hot path — bench/bench_compare.cc gates CI on the
 * medians (see DESIGN.md §8).
 *
 * Writes the measurements to BENCH_sweep.json (one record per run:
 * {name, config, metrics, wall_sec}) so CI can archive them as an
 * artifact and regressions are diffable across commits. wall_sec and
 * experiments_per_sec are medians over the repetitions; *_best is
 * the fastest repetition and *_spread_rel the min-to-max spread the
 * gate uses to stay noise-aware.
 *
 * Usage: sweep_throughput [--threads N] [--grid full|small]
 *                         [--reps N] [--json F]
 *   --threads N   parallel worker count (default: auto)
 *   --grid small  8 configurations x all benchmarks (quick check)
 *   --reps N      repetitions per mode (default 5, min 1)
 *   --json FILE   baseline file to write (default: BENCH_sweep.json)
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "sweep/sweep.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace
{

bool
identical(const lhr::Measurement &a, const lhr::Measurement &b)
{
    return a.timeSec == b.timeSec && a.timeCi95Rel == b.timeCi95Rel &&
        a.powerW == b.powerW && a.powerCi95Rel == b.powerCi95Rel &&
        a.invocations == b.invocations && a.degraded == b.degraded;
}

size_t
mismatchingCells(const lhr::SweepReport &a, const lhr::SweepReport &b)
{
    size_t mismatches = 0;
    for (size_t i = 0; i < a.cells.size(); ++i) {
        if (!a.cells[i].measurement || !b.cells[i].measurement ||
            !identical(*a.cells[i].measurement,
                       *b.cells[i].measurement))
            ++mismatches;
    }
    return mismatches;
}

/** Wall times of one mode's repetitions, plus the last report. */
struct RepeatedRun
{
    lhr::SweepReport last;      ///< cells/cache of the final rep
    std::vector<double> wallSec; ///< one entry per repetition

    double medianWallSec() const
    {
        std::vector<double> sorted = wallSec;
        std::sort(sorted.begin(), sorted.end());
        const size_t n = sorted.size();
        return n % 2 == 1 ? sorted[n / 2]
                          : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
    }

    double minWallSec() const
    {
        return *std::min_element(wallSec.begin(), wallSec.end());
    }

    /** Min-to-max spread relative to the median, for the gate. */
    double spreadRel() const
    {
        const double median = medianWallSec();
        if (median <= 0.0)
            return 0.0;
        const double max =
            *std::max_element(wallSec.begin(), wallSec.end());
        return (max - minWallSec()) / median;
    }

    double medianExpPerSec() const
    {
        const double median = medianWallSec();
        return median > 0.0 ? last.experiments() / median : 0.0;
    }

    double bestExpPerSec() const
    {
        const double best = minWallSec();
        return best > 0.0 ? last.experiments() / best : 0.0;
    }
};

void
record(lhr::JsonWriter &json, const std::string &name,
       const std::string &grid, const RepeatedRun &run,
       double speedup = 0.0)
{
    const lhr::SweepReport &report = run.last;
    json.beginObject();
    json.key("name").value(name);
    json.key("config").beginObject();
    json.key("grid").value(grid);
    json.key("configurations").value((uint64_t)report.configs.size());
    json.key("benchmarks").value((uint64_t)report.benchmarks.size());
    json.key("threads").value((long)report.threads);
    json.key("reps").value((uint64_t)run.wallSec.size());
    json.endObject();
    json.key("metrics").beginObject();
    json.key("experiments").value((uint64_t)report.experiments());
    json.key("experiments_per_sec").value(run.medianExpPerSec(), 1);
    json.key("experiments_per_sec_best").value(run.bestExpPerSec(), 1);
    json.key("experiments_per_sec_spread_rel")
        .value(run.spreadRel(), 4);
    json.key("max_cell_sec").value(report.maxCellSec, 6);
    json.key("sum_cell_sec").value(report.sumCellSec, 6);
    json.key("cache_hits").value(report.cache.hits);
    json.key("cache_misses").value(report.cache.misses);
    if (speedup > 0.0)
        json.key("speedup").value(speedup, 3);
    json.endObject();
    json.key("wall_sec").value(run.medianWallSec(), 6);
    json.key("wall_sec_min").value(run.minWallSec(), 6);
    json.endObject();
}

void
show(const std::string &label, const RepeatedRun &run)
{
    std::cout << label << " " << run.last.summary() << "\n"
              << label << "   over " << run.wallSec.size()
              << " reps: median " << run.medianWallSec() << "s ("
              << run.medianExpPerSec() << " exp/s), best "
              << run.minWallSec() << "s (" << run.bestExpPerSec()
              << " exp/s), spread "
              << 100.0 * run.spreadRel() << "%\n";
}

} // namespace

int
main(int argc, char **argv)
{
    int threads = 0;
    bool smallGrid = false;
    int reps = 5;
    std::string jsonPath = "BENCH_sweep.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--grid") == 0 && i + 1 < argc) {
            smallGrid = std::string(argv[++i]) == "small";
        } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = std::max(1, std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            jsonPath = argv[++i];
        } else {
            std::cerr << "usage: sweep_throughput [--threads N] "
                         "[--grid full|small] [--reps N] "
                         "[--json FILE]\n";
            return 2;
        }
    }

    std::vector<lhr::MachineConfig> configs =
        lhr::standardConfigurations();
    if (smallGrid)
        configs.resize(8);
    const auto &benchmarks = lhr::allBenchmarks();

    std::cout << "sweep_throughput: " << configs.size()
              << " configurations x " << benchmarks.size()
              << " benchmarks = " << configs.size() * benchmarks.size()
              << " experiments, " << reps << " reps per mode\n\n";

    // Every repetition measures a fresh runner (nothing pre-cached);
    // medians over the repetitions feed the CI gate. The runner
    // holders live outside the loop because a SweepReport's cells
    // point into its runner's memo cache: the runners backing the
    // kept reports must outlive the reporting below.
    RepeatedRun serialRun, parallelRun, cachedRun, scalarRun;
    size_t parallelMismatches = 0;
    size_t scalarFillMismatches = 0;
    std::unique_ptr<lhr::ExperimentRunner> serialRunner;
    std::unique_ptr<lhr::ExperimentRunner> parallelRunner;
    std::unique_ptr<lhr::ExperimentRunner> scalarRunner;
    for (int rep = 0; rep < reps; ++rep) {
        // Serial baseline: one worker, batch fill (the default).
        serialRunner = std::make_unique<lhr::ExperimentRunner>();
        lhr::SweepEngine serial(*serialRunner, {.threads = 1});
        lhr::SweepReport serialReport = serial.run(configs, benchmarks);
        serialRun.wallSec.push_back(serialReport.wallSec);

        // Parallel run: all workers, fresh runner.
        parallelRunner = std::make_unique<lhr::ExperimentRunner>();
        lhr::SweepEngine parallel(*parallelRunner,
                                  {.threads = threads});
        lhr::SweepReport parallelReport =
            parallel.run(configs, benchmarks);
        parallelRun.wallSec.push_back(parallelReport.wallSec);

        // Re-sweep on the warm cache: the memoization path.
        lhr::SweepReport cachedReport =
            parallel.run(configs, benchmarks);
        cachedRun.wallSec.push_back(cachedReport.wallSec);

        parallelMismatches +=
            mismatchingCells(serialReport, parallelReport);

        if (rep == 0) {
            // Scalar per-cell fill, once: the reference path batch
            // fill must be bit-identical to (and is measured against
            // as sweep_scalar_fill).
            scalarRunner = std::make_unique<lhr::ExperimentRunner>();
            lhr::SweepEngine scalar(
                *scalarRunner, {.threads = 1, .batchFill = false});
            lhr::SweepReport scalarReport =
                scalar.run(configs, benchmarks);
            scalarRun.wallSec.push_back(scalarReport.wallSec);
            scalarFillMismatches +=
                mismatchingCells(serialReport, scalarReport);
            scalarRun.last = std::move(scalarReport);
        }

        if (rep == reps - 1) {
            serialRun.last = std::move(serialReport);
            parallelRun.last = std::move(parallelReport);
            cachedRun.last = std::move(cachedReport);
        }
    }

    show("serial  ", serialRun);
    show("parallel", parallelRun);
    show("cached  ", cachedRun);
    show("scalar  ", scalarRun);
    std::cout << "\n";

    const double speedup = parallelRun.medianWallSec() > 0.0
        ? serialRun.medianWallSec() / parallelRun.medianWallSec()
        : 0.0;
    std::cout << "speedup: " << speedup << "x on "
              << parallelRun.last.threads << " threads (host reports "
              << lhr::ThreadPool::defaultThreadCount()
              << " available)\n";
    const double batchSpeedup = serialRun.medianWallSec() > 0.0
        ? scalarRun.medianWallSec() / serialRun.medianWallSec() : 0.0;
    std::cout << "batch fill vs scalar fill: " << batchSpeedup
              << "x on one worker\n";
    std::cout << "bit-identical to serial: "
              << (parallelMismatches == 0 ? "yes" : "NO") << " ("
              << parallelMismatches << " mismatching cells)\n";
    std::cout << "batch fill bit-identical to scalar fill: "
              << (scalarFillMismatches == 0 ? "yes" : "NO") << " ("
              << scalarFillMismatches << " mismatching cells)\n";
    std::cout << "slowest experiment: " << serialRun.last.maxCellSec
              << "s\n";

    const std::string grid = smallGrid ? "small" : "full";
    std::ofstream jsonOut(jsonPath, std::ios::binary);
    lhr::JsonWriter json(jsonOut);
    json.beginArray();
    record(json, "sweep_serial", grid, serialRun);
    record(json, "sweep_parallel", grid, parallelRun, speedup);
    record(json, "sweep_cached", grid, cachedRun);
    record(json, "sweep_scalar_fill", grid, scalarRun);
    json.endArray();
    std::cout << "baseline written: " << jsonPath << "\n";

    if (parallelMismatches != 0) {
        std::cerr << "FAIL: parallel sweep diverged from serial\n";
        return 1;
    }
    if (scalarFillMismatches != 0) {
        std::cerr << "FAIL: batch fill diverged from scalar fill\n";
        return 1;
    }
    return 0;
}
