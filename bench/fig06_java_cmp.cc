/**
 * @file
 * Reproduces paper Figure 6: CMP impact for single-threaded Java on
 * the i7 (45): speedup of 2C1T over 1C1T. The JVM's own parallelism
 * (JIT, GC) gives ostensibly sequential benchmarks a speedup —
 * about 10% on average and up to ~60% (antlr), with db's gain coming
 * from reduced GC cache/DTLB displacement (Workload Finding 1).
 */

#include <iostream>

#include "analysis/features.hh"
#include "core/lab.hh"
#include "util/table.hh"

int
main()
{
    lhr::Lab lab;
    const auto scaling = lhr::javaSingleThreadedCmp(lab.runner());

    std::cout <<
        "Figure 6: Scalability of single-threaded Java on i7 (45)\n"
        "(2C1T / 1C1T; paper: avg ~1.1, max ~1.55 for antlr)\n\n";

    lhr::TableWriter table;
    table.addColumn("Benchmark", lhr::TableWriter::Align::Left);
    table.addColumn("2C1T / 1C1T");
    double sum = 0.0;
    for (const auto &[name, speedup] : scaling) {
        table.beginRow();
        table.cell(name);
        table.cell(speedup, 2);
        sum += speedup;
    }
    table.print(std::cout);
    std::cout << "\nAverage: "
              << lhr::formatFixed(sum / scaling.size(), 2) << "\n";
    return 0;
}
