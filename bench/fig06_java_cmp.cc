/**
 * @file
 * Shim over the registered "fig06" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("fig06", argc, argv);
}
