/**
 * @file
 * Ablation: on-chip structure meters versus the external Hall
 * sensor — demonstrating the instrumentation the paper's conclusion
 * recommends manufacturers expose, and quantifying what the external
 * rail measurement misses (per-structure attribution).
 */

#include <iostream>

#include "core/lab.hh"
#include "power/meters.hh"
#include "util/table.hh"

int
main()
{
    lhr::Lab lab;
    const auto cfg = lhr::stockConfig(lhr::processorById("i7 (45)"));

    std::cout <<
        "Ablation: on-chip structure meters vs external Hall sensor\n"
        "on the stock i7 (45) (the paper's recommendation: expose\n"
        " per-structure power meters)\n\n";

    lhr::TableWriter table;
    table.addColumn("Benchmark", lhr::TableWriter::Align::Left);
    table.addColumn("Meter pkg W");
    table.addColumn("Hall W");
    table.addColumn("Err %");
    table.addColumn("Cores %");
    table.addColumn("LLC %");
    table.addColumn("Uncore %");

    for (const char *name :
         {"omnetpp", "povray", "fluidanimate", "db", "xalan",
          "pjbb2005"}) {
        const auto &bench = lhr::benchmarkByName(name);
        double duration = 0.0;
        const auto meters =
            lab.runner().meterRun(cfg, bench, &duration);
        const double pkgW =
            meters.energyJ(lhr::MeterDomain::Package) / duration;
        const double hallW = lab.measure(cfg, bench).powerW;

        const double coresJ = meters.energyJ(lhr::MeterDomain::Cores);
        const double llcJ = meters.energyJ(lhr::MeterDomain::Llc);
        const double uncoreJ =
            meters.energyJ(lhr::MeterDomain::Uncore);
        const double pkgJ = meters.energyJ(lhr::MeterDomain::Package);

        table.beginRow();
        table.cell(bench.name);
        table.cell(pkgW, 1);
        table.cell(hallW, 1);
        table.cell(100.0 * (hallW - pkgW) / pkgW, 1);
        table.cell(100.0 * coresJ / pkgJ, 1);
        table.cell(100.0 * llcJ / pkgJ, 1);
        table.cell(100.0 * uncoreJ / pkgJ, 1);
    }
    table.print(std::cout);

    std::cout <<
        "\nThe external sensor sees only the package total; the\n"
        "meters attribute it. Note how the cores' share collapses\n"
        "for uncore-heavy workloads.\n";
    return 0;
}
