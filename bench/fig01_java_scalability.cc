/**
 * @file
 * Shim over the registered "fig01" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("fig01", argc, argv);
}
