/**
 * @file
 * Reproduces paper Figure 1: scalability of the Java multithreaded
 * benchmarks on the i7 (45), measured as speedup of 4C2T over 1C1T,
 * in descending order. The five most scalable (sunflow, xalan,
 * tomcat, lusearch, eclipse) form the Java Scalable group and
 * average ~3.4x in the paper.
 */

#include <iostream>

#include "analysis/features.hh"
#include "core/lab.hh"
#include "util/table.hh"

int
main()
{
    lhr::Lab lab;
    const auto scaling = lhr::javaScalability(lab.runner());

    std::cout <<
        "Figure 1: Scalability of Java multithreaded benchmarks on "
        "i7 (45)\n(4C2T / 1C1T, descending; paper: sunflow ~4.3 down "
        "to h2 ~1.05,\n Java Scalable group average 3.4)\n\n";

    lhr::TableWriter table;
    table.addColumn("Benchmark", lhr::TableWriter::Align::Left);
    table.addColumn("4C2T / 1C1T");
    table.addColumn("Group", lhr::TableWriter::Align::Left);

    double scalableSum = 0.0;
    int scalableCount = 0;
    for (const auto &[name, speedup] : scaling) {
        const auto &bench = lhr::benchmarkByName(name);
        table.beginRow();
        table.cell(name);
        table.cell(speedup, 2);
        table.cell(lhr::groupName(bench.group));
        if (bench.group == lhr::Group::JavaScalable) {
            scalableSum += speedup;
            ++scalableCount;
        }
    }
    table.print(std::cout);
    std::cout << "\nJava Scalable group average: "
              << lhr::formatFixed(scalableSum / scalableCount, 2)
              << " (paper: 3.4)\n";
    return 0;
}
