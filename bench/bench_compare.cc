/**
 * @file
 * The CI perf regression gate: diff freshly measured perf baselines
 * (BENCH_sweep.json / BENCH_trace.json) against the previous run's
 * artifacts and fail on a real regression.
 *
 * Usage:
 *   bench_compare [--tolerance R] [--summary FILE] [--html FILE]
 *                 BEFORE.json AFTER.json [BEFORE2 AFTER2 ...]
 *
 *   --tolerance R   relative drop a throughput metric may take
 *                   before failing (default 0.15 = 15%); per-metric
 *                   repetition spreads widen it (see perf_compare.hh)
 *   --summary FILE  append the markdown A/B table to FILE as well
 *                   (point it at $GITHUB_STEP_SUMMARY in CI) — the
 *                   table is written whether or not the gate fails
 *   --html FILE     write a self-contained single-file HTML report
 *                   of the same comparison (inline CSS, delta bars)
 *
 * Exit status: 0 pass, 1 regression, 2 usage or unreadable input.
 * A missing BEFORE file is a pass with a note (first run on a
 * branch has no prior artifact to compare against). Likewise a
 * record name present on only one side is reported ("new" /
 * "removed") but never gated: only metrics matched by name on both
 * sides can regress.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/perf_compare.hh"

namespace
{

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

int
usage()
{
    std::cerr << "usage: bench_compare [--tolerance R] "
                 "[--summary FILE] [--html FILE] "
                 "BEFORE.json AFTER.json [BEFORE2 AFTER2 ...]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    double tolerance = 0.15;
    std::string summaryPath;
    std::string htmlPath;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
            char *end = nullptr;
            tolerance = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || tolerance < 0.0)
                return usage();
        } else if (std::strcmp(argv[i], "--summary") == 0 &&
                   i + 1 < argc) {
            summaryPath = argv[++i];
        } else if (std::strcmp(argv[i], "--html") == 0 &&
                   i + 1 < argc) {
            htmlPath = argv[++i];
        } else if (argv[i][0] == '-') {
            return usage();
        } else {
            files.push_back(argv[i]);
        }
    }
    if (files.empty() || files.size() % 2 != 0)
        return usage();

    std::string report;
    std::vector<std::pair<std::string, lhr::PerfComparison>> sections;
    bool failed = false;
    size_t compared = 0;
    for (size_t pair = 0; pair < files.size(); pair += 2) {
        const std::string &beforePath = files[pair];
        const std::string &afterPath = files[pair + 1];
        const std::string title = beforePath + " vs " + afterPath;

        std::string beforeText;
        if (!readFile(beforePath, beforeText)) {
            // First run on this branch: nothing to gate against.
            report += "### " + title + "\n\nno prior baseline at `" +
                beforePath + "` — gate skipped for this pair\n\n";
            continue;
        }
        std::string afterText;
        if (!readFile(afterPath, afterText)) {
            std::cerr << "bench_compare: cannot read " << afterPath
                      << "\n";
            return 2;
        }

        const auto before = lhr::parsePerfRecords(beforeText);
        if (!before.ok()) {
            std::cerr << "bench_compare: " << beforePath << ": "
                      << before.status().toString() << "\n";
            return 2;
        }
        const auto after = lhr::parsePerfRecords(afterText);
        if (!after.ok()) {
            std::cerr << "bench_compare: " << afterPath << ": "
                      << after.status().toString() << "\n";
            return 2;
        }

        const lhr::PerfComparison cmp = lhr::comparePerfRecords(
            before.value(), after.value(), tolerance);
        report += lhr::perfTableMarkdown(cmp, title);
        sections.emplace_back(title, cmp);
        ++compared;
        // Record kinds present on only one side are reported, never
        // gated: a record's first introduction (a new bench suite
        // landing in AFTER) must not fail the comparison it debuts in.
        for (const std::string &name : cmp.onlyAfter)
            std::cout << "bench_compare: note: " << name
                      << " is new in " << afterPath
                      << " (not gated on first introduction)\n";
        for (const std::string &name : cmp.onlyBefore)
            std::cout << "bench_compare: note: " << name
                      << " is gone from " << afterPath
                      << " (was only in the baseline; not gated)\n";
        for (const lhr::PerfDelta *delta : cmp.regressions()) {
            std::fprintf(stderr,
                         "bench_compare: REGRESSION %s %s: %.4g -> "
                         "%.4g (%+.1f%%, tolerance -%.1f%%)\n",
                         delta->record.c_str(), delta->metric.c_str(),
                         delta->before, delta->after,
                         100.0 * delta->deltaRel(),
                         100.0 * delta->tolerance);
            failed = true;
        }
    }

    std::cout << report;
    if (!summaryPath.empty()) {
        std::ofstream summary(summaryPath, std::ios::app);
        if (!summary) {
            std::cerr << "bench_compare: cannot append to "
                      << summaryPath << "\n";
            return 2;
        }
        summary << report;
    }
    if (!htmlPath.empty()) {
        std::ofstream html(htmlPath, std::ios::binary);
        if (!html) {
            std::cerr << "bench_compare: cannot write " << htmlPath
                      << "\n";
            return 2;
        }
        html << lhr::perfReportHtml(sections,
                                    "Perf baseline comparison");
    }

    if (failed) {
        std::cerr << "bench_compare: FAIL — throughput regressed "
                     "beyond tolerance\n";
        return 1;
    }
    std::cout << "bench_compare: pass (" << compared
              << " baseline pair(s) gated, tolerance "
              << 100.0 * tolerance << "%)\n";
    return 0;
}
