/**
 * @file
 * Shim over the registered "fig05" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("fig05", argc, argv);
}
