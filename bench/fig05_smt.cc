/**
 * @file
 * Reproduces paper Figure 5: the effect of two-way SMT on a single
 * core, for Pentium 4 (130), i7 (45), Atom (45), and i5 (32).
 *
 * Paper (a): P4 1.06/1.06/0.98(?); i7 1.14/1.15/0.97;
 *            Atom 1.24/1.10/0.86; i5 1.17/1.10/0.89.
 * Paper (b), energy by group: Java Non-scalable on P4 is the outlier
 * at 1.11 (SMT hurts); scalables gain most everywhere.
 */

#include <iostream>

#include "analysis/report.hh"
#include "core/lab.hh"

int
main()
{
    lhr::Lab lab;
    const auto effects = lhr::smtStudy(lab.runner(), lab.reference());
    lhr::printGroupedEffects(
        std::cout,
        "Figure 5: Effect of SMT (2 threads / 1 thread, 1 core)\n"
        "Paper (a): P4 1.06/1.06/0.98; i7 1.14/1.15/0.97; "
        "Atom 1.24/1.10/0.86; i5 1.17/1.10/0.89",
        effects);
    return 0;
}
