/**
 * @file
 * The reproduction scorecard: evaluates every numbered finding of
 * the paper against the laboratory's measurements and prints
 * PASS/FAIL with the supporting numbers. The same predicates are
 * enforced as regression tests in tests/test_findings.cc; this
 * binary is the human-readable summary.
 */

#include <algorithm>
#include <iostream>
#include <optional>
#include <set>

#include "core/lab.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace
{

lhr::GroupedEffect
effectFor(const std::vector<lhr::GroupedEffect> &effects,
          const std::string &label)
{
    for (const auto &e : effects)
        if (e.label == label)
            return e;
    return {};
}

} // namespace

int
main()
{
    lhr::Lab lab;
    auto &runner = lab.runner();
    const auto &ref = lab.reference();

    lhr::TableWriter table;
    table.addColumn("Finding", lhr::TableWriter::Align::Left);
    table.addColumn("Claim", lhr::TableWriter::Align::Left);
    table.addColumn("Measured", lhr::TableWriter::Align::Left);
    table.addColumn("Verdict", lhr::TableWriter::Align::Left);

    auto row = [&](const std::string &id, const std::string &claim,
                   const std::string &measured, bool pass) {
        table.beginRow();
        table.cell(id);
        table.cell(claim);
        table.cell(measured);
        table.cell(pass ? "PASS" : "FAIL");
    };

    // A1 — CMP not consistently energy efficient.
    {
        const auto effects = lhr::cmpStudy(runner, ref);
        const auto i7 = effectFor(effects, "i7 (45)");
        const auto i5 = effectFor(effects, "i5 (32)");
        row("A1", "CMP not consistently energy efficient",
            "NN energy i7 " + lhr::formatFixed(i7.byGroup[0].energy, 2) +
                ", i5 " + lhr::formatFixed(i5.byGroup[0].energy, 2),
            i7.byGroup[0].energy > 1.0 && i5.byGroup[0].energy > 1.0);
    }

    // A2 — SMT saves energy on i5 and Atom.
    {
        const auto effects = lhr::smtStudy(runner, ref);
        const double i5 = effectFor(effects, "i5 (32)").average.energy;
        const double atom =
            effectFor(effects, "Atom (45)").average.energy;
        row("A2", "SMT delivers energy savings (i5, Atom)",
            "energy i5 " + lhr::formatFixed(i5, 2) + ", Atom " +
                lhr::formatFixed(atom, 2),
            i5 < 0.95 && atom < 0.95);
    }

    // A3 — i5 energy-flat across clock; i7/C2D are not.
    {
        const auto effects = lhr::clockStudy(runner, ref);
        const double i5 = effectFor(effects, "i5 (32)").average.energy;
        const double i7 = effectFor(effects, "i7 (45)").average.energy;
        row("A3", "i5 energy flat vs clock; i7 not",
            "energy/2x i5 " + lhr::formatFixed(i5, 2) + ", i7 " +
                lhr::formatFixed(i7, 2),
            i5 < 1.1 && i7 > 1.3);
    }

    // A4/A5 — die shrinks cut energy at matched clocks, twice.
    {
        const auto matched = lhr::dieShrinkStudy(runner, ref, true);
        row("A4+A5", "Die shrinks cut energy ~2x, both generations",
            "Core " + lhr::formatFixed(matched[0].average.energy, 2) +
                ", Nehalem " +
                lhr::formatFixed(matched[1].average.energy, 2),
            matched[0].average.energy < 0.75 &&
                matched[1].average.energy < 0.75);
    }

    // A6/A7 — Nehalem moderately faster than Core; energy parity at
    // a fixed node; order of magnitude vs NetBurst.
    {
        const auto effects = lhr::uarchStudy(runner, ref);
        const auto core45 =
            effectFor(effects, "Core: i7 (45) / C2D (45)");
        const auto netburst =
            effectFor(effects, "NetBurst: i7 (45) / Pentium4 (130)");
        row("A6", "Nehalem beats Core at matched clock",
            "perf " + lhr::formatFixed(core45.average.perf, 2),
            core45.average.perf > 1.05);
        row("A7", "Energy parity at 45nm; 7x+ vs NetBurst",
            "energy vs Core " +
                lhr::formatFixed(core45.average.energy, 2) +
                ", vs P4 " +
                lhr::formatFixed(netburst.average.energy, 2),
            core45.average.energy > 0.75 &&
                core45.average.energy < 1.25 &&
                netburst.average.energy < 0.25);
    }

    // A8 — Turbo not energy efficient on i7.
    {
        const auto effects = lhr::turboStudy(runner, ref);
        const double i7 =
            effectFor(effects, "i7 (45) 4C2T").average.energy;
        const double i5 =
            effectFor(effects, "i5 (32) 2C2T").average.energy;
        row("A8", "Turbo costs energy on i7, neutral on i5",
            "energy i7 " + lhr::formatFixed(i7, 2) + ", i5 " +
                lhr::formatFixed(i5, 2),
            i7 > 1.05 && i5 < 1.06);
    }

    // A9 — power per transistor consistent within families.
    {
        const auto points = lhr::historicalOverview(runner, ref);
        double p4 = 0.0, maxOther = 0.0;
        for (const auto &pt : points) {
            if (pt.spec->family == lhr::Family::NetBurst)
                p4 = pt.powerPerMtran();
            else
                maxOther = std::max(maxOther, pt.powerPerMtran());
        }
        row("A9", "P4 is the power/transistor outlier",
            lhr::formatFixed(1e3 * p4, 0) + " vs <= " +
                lhr::formatFixed(1e3 * maxOther, 0) + " mW/MT",
            p4 > 2.0 * maxOther);
    }

    // W1 — JVM-induced parallelism.
    {
        const auto scaling = lhr::javaSingleThreadedCmp(runner);
        double sum = 0.0;
        for (const auto &[name, s] : scaling)
            sum += s;
        const double avg = sum / scaling.size();
        row("W1", "Single-threaded Java gains from a 2nd core",
            "avg " + lhr::formatFixed(avg, 2) + ", max " +
                lhr::formatFixed(scaling.front().second, 2) + " (" +
                scaling.front().first + ")",
            avg > 1.05 && scaling.front().second > 1.4);
    }

    // W2 — SMT hurts Java Non-scalable on the Pentium 4.
    {
        const auto effects = lhr::smtStudy(runner, ref);
        const auto p4 = effectFor(effects, "Pentium4 (130)");
        const double jn = p4.byGroup[static_cast<size_t>(
            lhr::Group::JavaNonScalable)].energy;
        row("W2", "P4 SMT costs Java Non-scalable energy",
            "JN energy " + lhr::formatFixed(jn, 2), jn > 1.0);
    }

    // W3 — Native Non-scalable is the power outlier.
    {
        const auto agg = lab.aggregate(
            lhr::stockConfig(lhr::processorById("i7 (45)")));
        const double nn =
            agg.group(lhr::Group::NativeNonScalable).powerW;
        const double others = std::min(
            {agg.group(lhr::Group::NativeScalable).powerW,
             agg.group(lhr::Group::JavaNonScalable).powerW,
             agg.group(lhr::Group::JavaScalable).powerW});
        row("W3", "Native Non-scalable draws the least power",
            lhr::formatFixed(nn, 1) + " W vs next " +
                lhr::formatFixed(others, 1) + " W",
            nn < others);
    }

    // W4 — Pareto frontiers are workload sensitive.
    {
        auto labels = [&](std::optional<lhr::Group> group) {
            std::set<std::string> set;
            for (const auto &pt :
                 lhr::paretoFrontier45nm(runner, ref, group))
                set.insert(pt.label);
            return set;
        };
        const auto nn = labels(lhr::Group::NativeNonScalable);
        const auto ns = labels(lhr::Group::NativeScalable);
        const auto jn = labels(lhr::Group::JavaNonScalable);
        row("W4", "Per-group Pareto frontiers differ",
            lhr::msgOf(nn.size(), " / ", ns.size(), " / ", jn.size(),
                       " members"),
            nn != ns && nn != jn && ns != jn);
    }

    std::cout << "Reproduction scorecard: the paper's findings "
                 "against this laboratory\n\n";
    table.print(std::cout);
    return 0;
}
