/**
 * @file
 * Shim over the registered "findings" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("findings", argc, argv);
}
