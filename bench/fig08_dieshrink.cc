/**
 * @file
 * Reproduces paper Figure 8: die shrink effects for the Core
 * (65nm -> 45nm) and Nehalem (45nm -> 32nm) families, at native and
 * matched clocks, plus the per-group energy breakdown at matched
 * clocks.
 *
 * Paper (a) native clocks: Core 1.25/0.79/0.65; Nehalem 1.14/0.77/0.69.
 * Paper (b) matched clocks: Core 1.01/0.55/0.54; Nehalem 0.90/0.53/0.60.
 */

#include <iostream>

#include "analysis/report.hh"
#include "core/lab.hh"

int
main()
{
    lhr::Lab lab;
    auto &runner = lab.runner();
    const auto &ref = lab.reference();

    lhr::printGroupedEffects(
        std::cout,
        "Figure 8(a): Die shrink at native clocks (new / old)\n"
        "Paper: Core 1.25/0.79/0.65; Nehalem 2C2T 1.14/0.77/0.69",
        lhr::dieShrinkStudy(runner, ref, false));

    lhr::printGroupedEffects(
        std::cout,
        "Figure 8(b,c): Die shrink at matched clocks (new / old)\n"
        "Paper: Core 2.4GHz 1.01/0.55/0.54; "
        "Nehalem 2C2T 2.6GHz 0.90/0.53/0.60",
        lhr::dieShrinkStudy(runner, ref, true));
    return 0;
}
