/**
 * @file
 * Shim over the registered "fig08" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("fig08", argc, argv);
}
