/**
 * @file
 * Shim over the registered "fig02" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("fig02", argc, argv);
}
