/**
 * @file
 * Reproduces paper Figure 2: measured benchmark power versus TDP for
 * each stock processor (the paper plots this log/log). The paper's
 * point: TDP is strictly above measured power, and measured power
 * varies widely across benchmarks (23W-89W on the i7), so TDP is a
 * poor proxy for real power.
 */

#include <iostream>

#include "core/lab.hh"
#include "util/table.hh"

int
main()
{
    lhr::Lab lab;

    // All eight stock rows measured in parallel before the serial
    // min/mean/max scan.
    std::vector<lhr::MachineConfig> stock;
    for (const auto &spec : lhr::allProcessors())
        stock.push_back(lhr::stockConfig(spec));
    lab.prewarm(stock);

    std::cout <<
        "Figure 2: Measured benchmark power vs TDP per processor\n"
        "(paper: TDP strictly above measured; widest range on i7/i5)\n\n";

    lhr::TableWriter table;
    table.addColumn("Processor", lhr::TableWriter::Align::Left);
    table.addColumn("TDP W");
    table.addColumn("Min W");
    table.addColumn("Mean W");
    table.addColumn("Max W");
    table.addColumn("Max/Min");
    table.addColumn("TDP/Max");

    for (const auto &spec : lhr::allProcessors()) {
        const auto cfg = lhr::stockConfig(spec);
        double minW = 1e9, maxW = 0.0, sumW = 0.0;
        for (const auto &bench : lhr::allBenchmarks()) {
            const double w = lab.measure(cfg, bench).powerW;
            minW = std::min(minW, w);
            maxW = std::max(maxW, w);
            sumW += w;
        }
        table.beginRow();
        table.cell(spec.id);
        table.cell(spec.tdpW, 0);
        table.cell(minW, 1);
        table.cell(sumW / lhr::allBenchmarks().size(), 1);
        table.cell(maxW, 1);
        table.cell(maxW / minW, 2);
        table.cell(spec.tdpW / maxW, 2);
    }
    table.print(std::cout);

    std::cout << "\nPer-benchmark power on the i7 (45) extremes "
                 "(paper: 23W omnetpp .. 89W fluidanimate):\n";
    const auto i7 = lhr::stockConfig(lhr::processorById("i7 (45)"));
    std::cout << "  omnetpp: "
              << lhr::formatFixed(
                     lab.measure(i7, lhr::benchmarkByName("omnetpp"))
                         .powerW, 1)
              << " W\n  fluidanimate: "
              << lhr::formatFixed(
                     lab.measure(i7,
                                 lhr::benchmarkByName("fluidanimate"))
                         .powerW, 1)
              << " W\n";
    return 0;
}
