/**
 * @file
 * Shim over the registered "dataset" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("dataset", argc, argv);
}
