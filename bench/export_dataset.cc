/**
 * @file
 * Exports the full experimental dataset — every benchmark on every
 * one of the 45 configurations — as CSV, mirroring the companion
 * data the paper published in the ACM Digital Library ("we make all
 * our data publicly available to encourage others to use it and
 * perform further analysis").
 */

#include <iostream>

#include "core/lab.hh"
#include "util/csv.hh"

int
main()
{
    lhr::Lab lab;
    // Fan the full 45 x 61 grid out across cores up front; the
    // serial CSV pass below then reads everything from cache.
    lab.sweepFullGrid();
    const auto &ref = lab.reference();

    lhr::CsvWriter csv(std::cout,
                       {"configuration", "processor", "cores", "smt",
                        "clock_ghz", "turbo", "benchmark", "group",
                        "suite", "time_s", "time_ci95", "power_w",
                        "power_ci95", "energy_j", "perf_vs_ref",
                        "energy_vs_ref"});

    for (const auto &cfg : lhr::standardConfigurations()) {
        for (const auto &bench : lhr::allBenchmarks()) {
            const auto &m = lab.measure(cfg, bench);
            csv.beginRow();
            csv.field(cfg.label());
            csv.field(cfg.spec->id);
            csv.field(static_cast<long>(cfg.enabledCores));
            csv.field(static_cast<long>(cfg.smtPerCore));
            csv.field(cfg.clockGhz, 3);
            csv.field(std::string(
                cfg.spec->hasTurbo
                    ? (cfg.turboEnabled ? "on" : "off") : "n/a"));
            csv.field(bench.name);
            csv.field(lhr::groupName(bench.group));
            csv.field(lhr::suiteName(bench.suite));
            csv.field(m.timeSec, 4);
            csv.field(m.timeCi95Rel, 5);
            csv.field(m.powerW, 3);
            csv.field(m.powerCi95Rel, 5);
            csv.field(m.energyJ(), 2);
            csv.field(ref.refTimeSec(bench) / m.timeSec, 4);
            csv.field(m.energyJ() / ref.refEnergyJ(bench), 4);
        }
    }
    return 0;
}
