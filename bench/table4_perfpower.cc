/**
 * @file
 * Reproduces paper Table 4: average performance (speedup over the
 * four-machine reference) and average power for each stock
 * processor, per workload group, with weighted (Avg_w) and simple
 * (Avg_b) averages, min/max, and dense ranks.
 */

#include <iostream>
#include <vector>

#include "core/lab.hh"
#include "util/table.hh"

namespace
{

// Paper Table 4, Avg_w columns, for side-by-side comparison.
struct PaperRow
{
    const char *id;
    double perfAvgW;
    double powerAvgW;
};

const PaperRow paperRows[] = {
    {"Pentium4 (130)", 0.82, 44.1},
    {"C2D (65)",       2.04, 26.4},
    {"C2Q (65)",       2.70, 58.1},
    {"i7 (45)",        4.46, 47.0},
    {"Atom (45)",      0.52,  2.4},
    {"C2D (45)",       2.54, 20.8},
    {"AtomD (45)",     0.74,  4.7},
    {"i5 (32)",        3.80, 25.7},
};

double
paperPerf(const std::string &id)
{
    for (const auto &row : paperRows)
        if (id == row.id)
            return row.perfAvgW;
    return 0.0;
}

double
paperPower(const std::string &id)
{
    for (const auto &row : paperRows)
        if (id == row.id)
            return row.powerAvgW;
    return 0.0;
}

} // namespace

int
main()
{
    lhr::Lab lab;

    // Warm the eight stock rows (and the reference machines) in
    // parallel; the aggregation loop below then runs from cache.
    std::vector<lhr::MachineConfig> stock;
    for (const auto &spec : lhr::allProcessors())
        stock.push_back(lhr::stockConfig(spec));
    lab.prewarm(stock);

    std::cout <<
        "Table 4: Average performance and power characteristics\n"
        "(speedup over reference | watts; paper Avg_w in brackets)\n\n";

    lhr::TableWriter table;
    table.addColumn("Processor", lhr::TableWriter::Align::Left);
    table.addColumn("NN");
    table.addColumn("NS");
    table.addColumn("JN");
    table.addColumn("JS");
    table.addColumn("AvgW");
    table.addColumn("AvgB");
    table.addColumn("Min");
    table.addColumn("Max");
    table.addColumn("[paper AvgW]");
    table.addColumn("P:NN");
    table.addColumn("P:NS");
    table.addColumn("P:JN");
    table.addColumn("P:JS");
    table.addColumn("P:AvgW");
    table.addColumn("P:Min");
    table.addColumn("P:Max");
    table.addColumn("[paper P]");

    for (const auto &spec : lhr::allProcessors()) {
        const auto agg = lab.aggregate(lhr::stockConfig(spec));
        table.beginRow();
        table.cell(spec.id);
        for (const auto &g : agg.byGroup)
            table.cell(g.perf, 2);
        table.cell(agg.weighted.perf, 2);
        table.cell(agg.simple.perf, 2);
        table.cell(agg.minPerf, 2);
        table.cell(agg.maxPerf, 2);
        table.cell(paperPerf(spec.id), 2);
        for (const auto &g : agg.byGroup)
            table.cell(g.powerW, 1);
        table.cell(agg.weighted.powerW, 1);
        table.cell(agg.minPowerW, 1);
        table.cell(agg.maxPowerW, 1);
        table.cell(paperPower(spec.id), 1);
    }
    table.print(std::cout);
    return 0;
}
