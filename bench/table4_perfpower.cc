/**
 * @file
 * Shim over the registered "table4" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("table4", argc, argv);
}
