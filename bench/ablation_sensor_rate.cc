/**
 * @file
 * Ablation: sensor sampling-rate sensitivity. The paper logs at
 * 50Hz (section 2.5); this study sweeps the sampling rate against a
 * synthetic phase-rich power trace and reports the error of the
 * average-power estimate, justifying that 50Hz is sufficient for
 * average power (though not for phase analysis).
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "sensor/calibration.hh"
#include "sensor/channel.hh"
#include "stats/summary.hh"
#include "util/rng.hh"
#include "util/table.hh"

int
main()
{
    std::cout <<
        "Ablation: sampling-rate sensitivity of average power\n"
        "(paper methodology: 50Hz Hall-sensor logging)\n\n";

    // A phase-rich 30-second trace: base 45W, +-20% phases at a few
    // hertz plus GC-style spikes.
    const double durationSec = 30.0;
    auto truePowerAt = [](double t) {
        double w = 45.0;
        w *= 1.0 + 0.20 * std::sin(2.0 * M_PI * 1.3 * t);
        if (std::fmod(t, 2.7) < 0.12)
            w *= 1.35; // collector spike
        return w;
    };

    // Ground-truth average by fine integration.
    double truthSum = 0.0;
    const int fine = 300000;
    for (int i = 0; i < fine; ++i)
        truthSum += truePowerAt(durationSec * i / fine);
    const double truthW = truthSum / fine;

    const lhr::PowerChannel channel(lhr::SensorVariant::A30, 2024);
    lhr::Rng calRng(77);
    const auto cal = lhr::Calibration::calibrate(channel, calRng);

    lhr::TableWriter table;
    table.addColumn("Rate Hz");
    table.addColumn("Samples");
    table.addColumn("Mean W");
    table.addColumn("Err %");
    table.addColumn("Run-to-run sd %");

    for (double rate : {1.0, 5.0, 10.0, 50.0, 200.0, 1000.0}) {
        lhr::Summary runs;
        for (int trial = 0; trial < 16; ++trial) {
            lhr::Rng rng(1000 + trial);
            const double phase0 = rng.uniform(0.0, 1.0);
            const int n = static_cast<int>(durationSec * rate);
            double sum = 0.0;
            for (int i = 0; i < n; ++i) {
                const double t =
                    std::fmod(phase0 + i / rate, durationSec);
                sum += cal.wattsFromCounts(
                    channel.sampleCounts(truePowerAt(t), rng));
            }
            runs.add(sum / n);
        }
        table.beginRow();
        table.cell(rate, 0);
        table.cell(static_cast<long>(durationSec * rate));
        table.cell(runs.mean(), 2);
        table.cell(100.0 * (runs.mean() - truthW) / truthW, 2);
        table.cell(100.0 * runs.stddev() / runs.mean(), 2);
    }
    table.print(std::cout);
    std::cout << "\nGround truth: " << lhr::formatFixed(truthW, 2)
              << " W\n";
    return 0;
}
