/**
 * @file
 * Shim over the registered "ablation_sensor_rate" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("ablation_sensor_rate", argc, argv);
}
