/**
 * @file
 * Ablation: icc versus gcc on the native benchmarks — the
 * "systematic comparison using both icc and gcc" the paper leaves to
 * future work (section 2.1). Also reproduces the methodology
 * constraint the paper hit: icc miscompiles many PARSEC codes.
 */

#include <iostream>

#include "core/lab.hh"
#include "stats/summary.hh"
#include "util/table.hh"
#include "workload/compiler.hh"

int
main()
{
    lhr::Lab lab;
    const auto cfg = lhr::stockConfig(lhr::processorById("C2D (45)"));

    std::cout <<
        "Ablation: icc 11.1 -o3 vs gcc 4.4.1 -O3 on C2D (45)\n"
        "(paper section 2.1: icc consistently better on SPEC; icc\n"
        " fails to produce correct code for many PARSEC benchmarks)\n\n";

    lhr::Summary intGain, fpGain;
    std::vector<std::string> miscompiled;

    for (const auto &bench : lhr::allBenchmarks()) {
        if (bench.language() != lhr::Language::Native)
            continue;
        const auto gccBuild =
            lhr::compileBenchmark(bench, lhr::NativeCompiler::Gcc441);
        const auto iccBuild =
            lhr::compileBenchmark(bench, lhr::NativeCompiler::Icc11);
        if (!iccBuild) {
            miscompiled.push_back(bench.name);
            continue;
        }
        const double tGcc = lab.measure(cfg, *gccBuild).timeSec;
        const double tIcc = lab.measure(cfg, *iccBuild).timeSec;
        const double speedup = tGcc / tIcc;
        if (bench.fpShare > 0.3)
            fpGain.add(speedup);
        else
            intGain.add(speedup);
    }

    lhr::TableWriter table;
    table.addColumn("Workload class", lhr::TableWriter::Align::Left);
    table.addColumn("icc speedup over gcc");
    table.addColumn("min");
    table.addColumn("max");
    table.beginRow();
    table.cell(std::string("Integer-dominated"));
    table.cell(intGain.mean(), 3);
    table.cell(intGain.min(), 3);
    table.cell(intGain.max(), 3);
    table.beginRow();
    table.cell(std::string("FP-dominated"));
    table.cell(fpGain.mean(), 3);
    table.cell(fpGain.min(), 3);
    table.cell(fpGain.max(), 3);
    table.print(std::cout);

    std::cout << "\nPARSEC benchmarks icc miscompiles ("
              << miscompiled.size() << "):";
    for (const auto &name : miscompiled)
        std::cout << " " << name;
    std::cout << "\n";
    return 0;
}
