/**
 * @file
 * Shim over the registered "ablation_faults" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("ablation_faults", argc, argv);
}
