/**
 * @file
 * Shim over the registered "ablation_wall_power" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("ablation_wall_power", argc, argv);
}
