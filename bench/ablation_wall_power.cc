/**
 * @file
 * Ablation: chip power versus wall power — reconciling the paper's
 * isolated-rail methodology with the whole-system studies it cites
 * (§5). Also checks Fan et al.'s provisioning observation: even the
 * hungriest workload draws well under the machine's nameplate.
 */

#include <iostream>

#include "core/lab.hh"
#include "system/wall_power.hh"
#include "util/table.hh"

int
main()
{
    lhr::Lab lab;
    const auto platform = lhr::PlatformConfig::desktop2009();

    std::cout <<
        "Ablation: chip (12V rail) vs wall (clamp ammeter) power\n"
        "(stock configurations, busiest and leanest benchmark per\n"
        " machine; desktop-2009 platform around each chip)\n\n";

    lhr::TableWriter table;
    table.addColumn("Processor", lhr::TableWriter::Align::Left);
    table.addColumn("Chip W");
    table.addColumn("Wall W");
    table.addColumn("Chip share %");
    table.addColumn("Wall/nameplate %");

    for (const auto &spec : lhr::allProcessors()) {
        const lhr::WallPowerModel wallModel(spec, platform);
        const auto cfg = lhr::stockConfig(spec);
        double maxChip = 0.0, maxDram = 0.0;
        for (const auto &bench : lhr::allBenchmarks()) {
            const auto profile = lab.runner().profile(cfg, bench);
            if (profile.power.total() > maxChip) {
                maxChip = profile.power.total();
                maxDram = profile.dramGBs;
            }
        }
        const auto wall = wallModel.at(maxChip, maxDram);
        table.beginRow();
        table.cell(spec.id);
        table.cell(wall.chipW, 1);
        table.cell(wall.wallW, 1);
        table.cell(100.0 * wall.chipShare(), 1);
        table.cell(100.0 * wall.wallW / wallModel.nameplateW(), 1);
    }
    table.print(std::cout);

    std::cout <<
        "\nTwo methodological lessons the paper draws:\n"
        "1. The chip is only part of wall power (here 5-45%) — a\n"
        "   clamp ammeter cannot isolate processor effects, hence\n"
        "   the Hall sensor on the 12V rail.\n"
        "2. Fan et al.: even the hungriest workload stays far below\n"
        "   nameplate (here well under 60%) — provisioning by\n"
        "   nameplate wastes datacenter capacity.\n";
    return 0;
}
