/**
 * @file
 * Shim over the registered "table3" study (see src/study/).
 */

#include "study/study.hh"

int
main(int argc, char **argv)
{
    return lhr::studyMain("table3", argc, argv);
}
