/**
 * @file
 * Reproduces paper Table 3: the eight experimental processors and
 * their key specifications, as encoded in the machine database.
 */

#include <iostream>

#include "core/lab.hh"
#include "util/logging.hh"
#include "util/table.hh"

int
main()
{
    std::cout << "Table 3: The eight experimental processors\n\n";

    lhr::TableWriter table;
    table.addColumn("Processor", lhr::TableWriter::Align::Left);
    table.addColumn("uArch", lhr::TableWriter::Align::Left);
    table.addColumn("Codename", lhr::TableWriter::Align::Left);
    table.addColumn("sSpec", lhr::TableWriter::Align::Left);
    table.addColumn("Released", lhr::TableWriter::Align::Left);
    table.addColumn("USD");
    table.addColumn("CMP/SMT", lhr::TableWriter::Align::Left);
    table.addColumn("LLC");
    table.addColumn("GHz");
    table.addColumn("nm");
    table.addColumn("MTrans");
    table.addColumn("mm2");
    table.addColumn("VID", lhr::TableWriter::Align::Left);
    table.addColumn("TDP W");
    table.addColumn("Memory", lhr::TableWriter::Align::Left);

    for (const auto &spec : lhr::allProcessors()) {
        table.beginRow();
        table.cell(spec.model);
        table.cell(lhr::familyName(spec.family));
        table.cell(spec.codename);
        table.cell(spec.sSpec);
        table.cell(spec.releaseDate);
        if (spec.releasePriceUsd > 0.0)
            table.cell(static_cast<long>(spec.releasePriceUsd));
        else
            table.cell(std::string("--"));
        table.cell(lhr::msgOf(spec.cores, "C", spec.smtWays, "T"));
        table.cell(spec.llcMb >= 1.0
                   ? lhr::msgOf(spec.llcMb, "M")
                   : lhr::msgOf(spec.llcMb * 1024.0, "K"));
        table.cell(spec.stockClockGhz, 2);
        table.cell(static_cast<long>(spec.tech().featureNm));
        table.cell(spec.transistorsM, 0);
        table.cell(spec.dieMm2, 0);
        if (spec.vidMaxV > 0.0) {
            table.cell(lhr::msgOf(lhr::formatFixed(spec.vidMinV, 2),
                                  " - ",
                                  lhr::formatFixed(spec.vidMaxV, 2)));
        } else {
            table.cell(std::string("--"));
        }
        table.cell(spec.tdpW, 0);
        table.cell(spec.dram);
    }
    table.print(std::cout);
    return 0;
}
