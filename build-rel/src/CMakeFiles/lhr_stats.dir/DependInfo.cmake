
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cc" "src/CMakeFiles/lhr_stats.dir/stats/bootstrap.cc.o" "gcc" "src/CMakeFiles/lhr_stats.dir/stats/bootstrap.cc.o.d"
  "/root/repo/src/stats/linfit.cc" "src/CMakeFiles/lhr_stats.dir/stats/linfit.cc.o" "gcc" "src/CMakeFiles/lhr_stats.dir/stats/linfit.cc.o.d"
  "/root/repo/src/stats/pareto.cc" "src/CMakeFiles/lhr_stats.dir/stats/pareto.cc.o" "gcc" "src/CMakeFiles/lhr_stats.dir/stats/pareto.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/CMakeFiles/lhr_stats.dir/stats/summary.cc.o" "gcc" "src/CMakeFiles/lhr_stats.dir/stats/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/src/CMakeFiles/lhr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
