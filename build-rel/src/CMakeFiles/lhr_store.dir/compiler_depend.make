# Empty compiler generated dependencies file for lhr_store.
# This may be replaced when dependencies are built.
