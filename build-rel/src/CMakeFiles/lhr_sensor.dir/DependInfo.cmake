
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensor/calibration.cc" "src/CMakeFiles/lhr_sensor.dir/sensor/calibration.cc.o" "gcc" "src/CMakeFiles/lhr_sensor.dir/sensor/calibration.cc.o.d"
  "/root/repo/src/sensor/channel.cc" "src/CMakeFiles/lhr_sensor.dir/sensor/channel.cc.o" "gcc" "src/CMakeFiles/lhr_sensor.dir/sensor/channel.cc.o.d"
  "/root/repo/src/sensor/trace_log.cc" "src/CMakeFiles/lhr_sensor.dir/sensor/trace_log.cc.o" "gcc" "src/CMakeFiles/lhr_sensor.dir/sensor/trace_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/src/CMakeFiles/lhr_util.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/CMakeFiles/lhr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
