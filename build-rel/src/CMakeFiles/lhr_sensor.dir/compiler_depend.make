# Empty compiler generated dependencies file for lhr_sensor.
# This may be replaced when dependencies are built.
