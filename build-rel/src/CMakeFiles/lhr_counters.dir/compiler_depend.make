# Empty compiler generated dependencies file for lhr_counters.
# This may be replaced when dependencies are built.
