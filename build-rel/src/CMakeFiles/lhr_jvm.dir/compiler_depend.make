# Empty compiler generated dependencies file for lhr_jvm.
# This may be replaced when dependencies are built.
