# Empty compiler generated dependencies file for lhr_power.
# This may be replaced when dependencies are built.
