# Empty compiler generated dependencies file for lhr_cache.
# This may be replaced when dependencies are built.
