# Empty compiler generated dependencies file for lhr_cpu.
# This may be replaced when dependencies are built.
