# Empty compiler generated dependencies file for lhr_pipesim.
# This may be replaced when dependencies are built.
