# Empty compiler generated dependencies file for lhr_trace.
# This may be replaced when dependencies are built.
