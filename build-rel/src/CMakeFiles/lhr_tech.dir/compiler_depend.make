# Empty compiler generated dependencies file for lhr_tech.
# This may be replaced when dependencies are built.
