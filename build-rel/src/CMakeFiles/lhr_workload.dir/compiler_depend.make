# Empty compiler generated dependencies file for lhr_workload.
# This may be replaced when dependencies are built.
