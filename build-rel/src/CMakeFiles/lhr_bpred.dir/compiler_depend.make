# Empty compiler generated dependencies file for lhr_bpred.
# This may be replaced when dependencies are built.
