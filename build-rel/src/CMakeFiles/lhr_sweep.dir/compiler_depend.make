# Empty compiler generated dependencies file for lhr_sweep.
# This may be replaced when dependencies are built.
