# Empty compiler generated dependencies file for test_trace_counters.
# This may be replaced when dependencies are built.
