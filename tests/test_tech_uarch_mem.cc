/**
 * @file
 * Tests for the technology-node, microarchitecture, and DRAM models.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "tech/node.hh"
#include "uarch/descriptor.hh"

namespace lhr
{

TEST(TechNode, AllFourNodesResolve)
{
    for (auto node : {Node::Nm130, Node::Nm65, Node::Nm45, Node::Nm32}) {
        const TechNode &tn = techNode(node);
        EXPECT_EQ(tn.node, node);
        EXPECT_GT(tn.featureNm, 0);
    }
}

TEST(TechNode, LookupByNm)
{
    EXPECT_EQ(techNodeByNm(130).name, "130nm");
    EXPECT_EQ(techNodeByNm(32).name, "32nm");
    EXPECT_DEATH(techNodeByNm(90), "no model");
}

TEST(TechNode, CapacitanceShrinksMonotonically)
{
    EXPECT_GT(techNode(Node::Nm130).capScale,
              techNode(Node::Nm65).capScale);
    EXPECT_GT(techNode(Node::Nm65).capScale,
              techNode(Node::Nm45).capScale);
    EXPECT_GT(techNode(Node::Nm45).capScale,
              techNode(Node::Nm32).capScale);
    EXPECT_DOUBLE_EQ(techNode(Node::Nm130).capScale, 1.0);
}

TEST(TechNode, VoltagesShrinkMonotonically)
{
    double prev = 1e9;
    for (auto node : {Node::Nm130, Node::Nm65, Node::Nm45, Node::Nm32}) {
        const TechNode &tn = techNode(node);
        EXPECT_LT(tn.vNominal, prev);
        EXPECT_LT(tn.vMin, tn.vNominal);
        prev = tn.vNominal;
    }
}

TEST(TechNode, LeakageWorstAt65nm)
{
    // Leakage per transistor peaked before high-k metal gates.
    EXPECT_GT(techNode(Node::Nm65).leakScale,
              techNode(Node::Nm130).leakScale);
    EXPECT_GT(techNode(Node::Nm65).leakScale,
              techNode(Node::Nm45).leakScale);
}

TEST(TechNode, LeakageVoltageFactorIsQuadratic)
{
    const TechNode &tn = techNode(Node::Nm45);
    EXPECT_NEAR(leakageVoltageFactor(tn, tn.vNominal), 1.0, 1e-12);
    EXPECT_NEAR(leakageVoltageFactor(tn, tn.vNominal / 2.0), 0.25,
                1e-12);
    EXPECT_DEATH(leakageVoltageFactor(tn, 0.0), "voltage");
}

TEST(MicroArch, AllFamiliesResolve)
{
    for (auto fam : {Family::NetBurst, Family::Core, Family::Bonnell,
                     Family::Nehalem}) {
        const MicroArch &ua = microArch(fam);
        EXPECT_EQ(ua.family, fam);
        EXPECT_GT(ua.issueWidth, 0);
        EXPECT_GT(ua.pipelineDepth, 0);
        EXPECT_GT(ua.issueEfficiency, 0.0);
        EXPECT_LE(ua.issueEfficiency, 1.0);
        EXPECT_GE(ua.smtQuality, 0.0);
        EXPECT_LE(ua.smtQuality, 1.0);
        EXPECT_GT(ua.coreCapNf130, 0.0);
        EXPECT_GT(ua.coreTransistorsM, 0.0);
    }
}

TEST(MicroArch, FamilyNames)
{
    EXPECT_EQ(familyName(Family::NetBurst), "NetBurst");
    EXPECT_EQ(familyName(Family::Core), "Core");
    EXPECT_EQ(familyName(Family::Bonnell), "Bonnell");
    EXPECT_EQ(familyName(Family::Nehalem), "Nehalem");
}

TEST(MicroArch, BonnellIsTheOnlyInOrder)
{
    EXPECT_FALSE(microArch(Family::Bonnell).outOfOrder);
    EXPECT_TRUE(microArch(Family::NetBurst).outOfOrder);
    EXPECT_TRUE(microArch(Family::Core).outOfOrder);
    EXPECT_TRUE(microArch(Family::Nehalem).outOfOrder);
}

TEST(MicroArch, CoreHasNoSmt)
{
    EXPECT_DOUBLE_EQ(microArch(Family::Core).smtQuality, 0.0);
}

TEST(MicroArch, NetBurstHasDeepestPipeline)
{
    const int netburst = microArch(Family::NetBurst).pipelineDepth;
    for (auto fam : {Family::Core, Family::Bonnell, Family::Nehalem})
        EXPECT_GT(netburst, microArch(fam).pipelineDepth);
}

TEST(MicroArch, NehalemExtractsMostIlp)
{
    const double nehalem = microArch(Family::Nehalem).ilpExtraction;
    for (auto fam : {Family::Core, Family::Bonnell, Family::NetBurst})
        EXPECT_GT(nehalem, microArch(fam).ilpExtraction);
}

TEST(Dram, KnownModelsResolve)
{
    for (const char *name :
         {"DDR-400", "DDR2-800", "DDR3-1066", "DDR3-1333"}) {
        const DramModel &m = dramModel(name);
        EXPECT_EQ(m.name, name);
        EXPECT_GT(m.latencyNs, 0.0);
        EXPECT_GT(m.bandwidthGBs, 0.0);
    }
    EXPECT_DEATH(dramModel("DDR5-9999"), "unknown");
}

TEST(Dram, GenerationsImprove)
{
    EXPECT_GT(dramModel("DDR-400").latencyNs,
              dramModel("DDR2-800").latencyNs);
    EXPECT_LT(dramModel("DDR-400").bandwidthGBs,
              dramModel("DDR2-800").bandwidthGBs);
    EXPECT_LT(dramModel("DDR2-800").bandwidthGBs,
              dramModel("DDR3-1066").bandwidthGBs);
}

TEST(Dram, ThrottleSemantics)
{
    const DramModel &m = dramModel("DDR2-800");
    EXPECT_DOUBLE_EQ(m.throttle(0.0), 1.0);
    EXPECT_DOUBLE_EQ(m.throttle(-1.0), 1.0);
    EXPECT_DOUBLE_EQ(m.throttle(m.bandwidthGBs), 1.0);
    EXPECT_NEAR(m.throttle(2.0 * m.bandwidthGBs), 0.5, 1e-12);
}

} // namespace lhr
