/**
 * @file
 * Tests for the multiprogramming (SPECrate-style) runner, the power
 * trace logger, and the DVFS diminishing-returns study.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/dvfs_study.hh"
#include "core/lab.hh"
#include "harness/multiprog.hh"
#include "sensor/trace_log.hh"

namespace lhr
{

namespace
{

Lab &
lab()
{
    static Lab instance(0xBEEF);
    return instance;
}

} // namespace

TEST(Rate, OneCopyIsTheBaseline)
{
    RateRunner rate(lab().runner());
    const auto cfg = withTurbo(
        stockConfig(processorById("i7 (45)")), false);
    const auto r = rate.run(cfg, benchmarkByName("hmmer"), 1);
    EXPECT_EQ(r.copies, 1);
    EXPECT_NEAR(r.throughput, 1.0, 1e-9);
    EXPECT_NEAR(r.rateEfficiency, 1.0, 1e-9);
}

TEST(Rate, ComputeBoundScalesNearLinearly)
{
    RateRunner rate(lab().runner());
    const auto cfg = withTurbo(
        stockConfig(processorById("i7 (45)")), false);
    const auto r = rate.run(cfg, benchmarkByName("hmmer"), 4);
    EXPECT_GT(r.throughput, 3.5);
    EXPECT_LE(r.throughput, 4.0 + 1e-9);
}

TEST(Rate, CacheBoundLosesEfficiency)
{
    RateRunner rate(lab().runner());
    const auto cfg = withTurbo(
        stockConfig(processorById("i7 (45)")), false);
    const auto hungry = rate.run(cfg, benchmarkByName("mcf"), 4);
    const auto lean = rate.run(cfg, benchmarkByName("hmmer"), 4);
    EXPECT_LT(hungry.rateEfficiency, lean.rateEfficiency);
}

TEST(Rate, BandwidthBoundSaturates)
{
    RateRunner rate(lab().runner());
    const auto cfg = stockConfig(processorById("C2Q (65)"));
    const auto sweep =
        rate.sweep(cfg, benchmarkByName("libquantum"));
    ASSERT_EQ(sweep.size(), 4u);
    // Throughput must be monotone but clearly sub-linear at 4
    // copies, and worse than a compute-bound workload's scaling on
    // the same chip (memory latency and the FSB both bind).
    for (size_t i = 1; i < sweep.size(); ++i)
        EXPECT_GE(sweep[i].throughput,
                  sweep[i - 1].throughput - 1e-9);
    EXPECT_LT(sweep.back().throughput, 3.8);
    const auto lean = rate.run(cfg, benchmarkByName("hmmer"), 4);
    EXPECT_LT(sweep.back().throughput, lean.throughput);
}

TEST(Rate, PowerGrowsWithCopies)
{
    RateRunner rate(lab().runner());
    const auto cfg = withTurbo(
        stockConfig(processorById("i7 (45)")), false);
    const auto one = rate.run(cfg, benchmarkByName("hmmer"), 1);
    const auto eight = rate.run(cfg, benchmarkByName("hmmer"), 8);
    EXPECT_GT(eight.powerW, one.powerW);
    // ...but energy per copy improves: the uncore amortizes.
    EXPECT_LT(eight.energyPerCopyJ, one.energyPerCopyJ);
}

TEST(Rate, Validation)
{
    RateRunner rate(lab().runner());
    const auto cfg = stockConfig(processorById("i7 (45)"));
    EXPECT_DEATH(rate.run(cfg, benchmarkByName("xalan"), 2),
                 "single-threaded");
    EXPECT_DEATH(rate.run(cfg, benchmarkByName("hmmer"), 0),
                 "out of range");
    EXPECT_DEATH(rate.run(cfg, benchmarkByName("hmmer"), 9),
                 "out of range");
}

TEST(TraceLog, RecordsAndSummarizes)
{
    const PowerChannel channel(SensorVariant::A5, 3);
    Rng calRng(4);
    const auto cal = Calibration::calibrate(channel, calRng);
    PowerTraceLogger logger(channel, cal);

    Rng rng(5);
    for (int i = 0; i < 500; ++i)
        logger.sample(i / 50.0, 20.0, rng);

    EXPECT_EQ(logger.count(), 500u);
    EXPECT_NEAR(logger.meanW(), 20.0, 1.0);
    EXPECT_LE(logger.minW(), logger.percentileW(5));
    EXPECT_LE(logger.percentileW(5), logger.percentileW(50));
    EXPECT_LE(logger.percentileW(50), logger.percentileW(95));
    EXPECT_LE(logger.percentileW(95), logger.maxW());
    EXPECT_NEAR(logger.percentileW(0), logger.minW(), 1e-9);
    EXPECT_NEAR(logger.percentileW(100), logger.maxW(), 1e-9);
}

TEST(TraceLog, CsvShape)
{
    const PowerChannel channel(SensorVariant::A5, 6);
    Rng calRng(7);
    const auto cal = Calibration::calibrate(channel, calRng);
    PowerTraceLogger logger(channel, cal);
    Rng rng(8);
    logger.sample(0.0, 30.0, rng);
    logger.sample(0.02, 30.0, rng);

    std::ostringstream os;
    logger.writeCsv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("time_s,counts,watts"), std::string::npos);
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(TraceLog, EmptyAndBadInputsPanic)
{
    const PowerChannel channel(SensorVariant::A5, 9);
    Rng calRng(10);
    const auto cal = Calibration::calibrate(channel, calRng);
    PowerTraceLogger logger(channel, cal);
    EXPECT_DEATH(logger.meanW(), "empty");
    Rng rng(11);
    logger.sample(0.0, 10.0, rng);
    EXPECT_DEATH(logger.percentileW(101.0), "percentile");
    logger.clear();
    EXPECT_EQ(logger.count(), 0u);
}

TEST(Dvfs, ProfilesAreSane)
{
    const auto profile = dvfsProfile(lab().runner(),
                                     lab().reference(), "i7 (45)", 5);
    EXPECT_EQ(profile.featureNm, 45);
    EXPECT_GE(profile.energyOptimalGhz, profile.fMinGhz - 1e-9);
    EXPECT_LE(profile.energyOptimalGhz, profile.fMaxGhz + 1e-9);
    EXPECT_GE(profile.energyAtMinRel, 1.0 - 1e-9);
    EXPECT_GE(profile.energyAtMaxRel, 1.0 - 1e-9);
    EXPECT_GT(profile.staticShareAtMin, 0.0);
    EXPECT_LT(profile.staticShareAtMin, 1.0);
    EXPECT_DEATH(dvfsProfile(lab().runner(), lab().reference(),
                             "i7 (45)", 1),
                 "two steps");
}

TEST(Dvfs, I7PrefersLowClockI5DoesNot)
{
    // Finding 3 recast as a DVFS statement: the 45nm i7's optimum is
    // its lowest clock; the 32nm i5's optimum is meaningfully above
    // its floor.
    const auto i7 = dvfsProfile(lab().runner(), lab().reference(),
                                "i7 (45)", 7);
    EXPECT_NEAR(i7.energyOptimalGhz, i7.fMinGhz, 1e-9);
    EXPECT_GT(i7.energyAtMaxRel, 1.3);

    const auto i5 = dvfsProfile(lab().runner(), lab().reference(),
                                "i5 (32)", 7);
    EXPECT_GT(i5.energyOptimalGhz, i5.fMinGhz + 0.1);
    EXPECT_LT(i5.energyAtMaxRel, 1.1);
}

} // namespace lhr
