/**
 * @file
 * Tests for the analysis layer: feature comparisons, clock sweeps,
 * historical overview, Pareto study, and the Lab facade.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/report.hh"
#include "core/lab.hh"

namespace lhr
{

namespace
{

Lab &
lab()
{
    static Lab instance(0xFEEDull);
    return instance;
}

} // namespace

TEST(Analysis, CompareConfigsIdentityIsOne)
{
    const auto cfg = stockConfig(processorById("C2D (65)"));
    const auto effect = compareConfigs(
        lab().runner(), lab().reference(), cfg, cfg, "self");
    EXPECT_NEAR(effect.average.perf, 1.0, 1e-9);
    EXPECT_NEAR(effect.average.power, 1.0, 1e-9);
    EXPECT_NEAR(effect.average.energy, 1.0, 1e-9);
    for (const auto &g : effect.byGroup) {
        EXPECT_NEAR(g.perf, 1.0, 1e-9);
        EXPECT_NEAR(g.energy, 1.0, 1e-9);
    }
}

TEST(Analysis, StudiesCoverExpectedSubjects)
{
    auto &runner = lab().runner();
    const auto &ref = lab().reference();
    EXPECT_EQ(cmpStudy(runner, ref).size(), 2u);
    EXPECT_EQ(smtStudy(runner, ref).size(), 4u);
    EXPECT_EQ(clockStudy(runner, ref).size(), 3u);
    EXPECT_EQ(dieShrinkStudy(runner, ref, false).size(), 2u);
    EXPECT_EQ(dieShrinkStudy(runner, ref, true).size(), 2u);
    EXPECT_EQ(uarchStudy(runner, ref).size(), 4u);
    EXPECT_EQ(turboStudy(runner, ref).size(), 4u);
}

TEST(Analysis, ClockSweepMonotonePerformance)
{
    const auto sweep =
        clockSweep(lab().runner(), lab().reference(), "i7 (45)", 5);
    ASSERT_EQ(sweep.size(), 5u);
    EXPECT_NEAR(sweep.front().perfRelBase, 1.0, 1e-9);
    EXPECT_NEAR(sweep.front().energyRelBase, 1.0, 1e-9);
    for (size_t i = 1; i < sweep.size(); ++i) {
        EXPECT_GT(sweep[i].clockGhz, sweep[i - 1].clockGhz);
        EXPECT_GT(sweep[i].perfRelBase, sweep[i - 1].perfRelBase);
    }
}

TEST(Analysis, ClockSweepSubLinear)
{
    const auto sweep =
        clockSweep(lab().runner(), lab().reference(), "i7 (45)", 3);
    const double clockRatio =
        sweep.back().clockGhz / sweep.front().clockGhz;
    EXPECT_LT(sweep.back().perfRelBase, clockRatio);
    EXPECT_DEATH(clockSweep(lab().runner(), lab().reference(),
                            "i7 (45)", 1),
                 "two steps");
}

TEST(Analysis, JavaScalabilityDescending)
{
    const auto scaling = javaScalability(lab().runner());
    EXPECT_EQ(scaling.size(), 13u); // 8 MT non-scalable + 5 scalable
    for (size_t i = 1; i < scaling.size(); ++i)
        EXPECT_GE(scaling[i - 1].second, scaling[i].second);
    // Java Scalable members should lead the ranking.
    EXPECT_EQ(benchmarkByName(scaling.front().first).group,
              Group::JavaScalable);
}

TEST(Analysis, HistoricalRanks)
{
    EXPECT_EQ(rankOf({3.0, 1.0, 2.0}, false),
              (std::vector<int>{1, 3, 2}));
    EXPECT_EQ(rankOf({3.0, 1.0, 2.0}, true),
              (std::vector<int>{3, 1, 2}));
}

TEST(Analysis, HistoricalOverviewCoversAllProcessors)
{
    const auto points =
        historicalOverview(lab().runner(), lab().reference());
    EXPECT_EQ(points.size(), 8u);
    for (const auto &pt : points) {
        EXPECT_GT(pt.aggregate.weighted.perf, 0.0);
        EXPECT_GT(pt.perfPerMtran(), 0.0);
        EXPECT_GT(pt.powerPerMtran(), 0.0);
    }
}

TEST(Analysis, ParetoPointsCoverAll45nmConfigs)
{
    const auto points = paretoPoints45nm(
        lab().runner(), lab().reference(), std::nullopt);
    EXPECT_EQ(points.size(), 29u);
    const auto frontier = paretoFrontier45nm(
        lab().runner(), lab().reference(), std::nullopt);
    EXPECT_FALSE(frontier.empty());
    EXPECT_LT(frontier.size(), points.size());
    // Frontier members must come from the point set.
    for (const auto &member : frontier) {
        bool found = false;
        for (const auto &pt : points)
            if (pt.label == member.label)
                found = true;
        EXPECT_TRUE(found) << member.label;
    }
}

TEST(Analysis, ScalableFrontierExtendsFurtherRight)
{
    // Paper Figure 12: software parallelism pushes the scalable
    // groups' frontiers to much higher performance.
    auto &runner = lab().runner();
    const auto &ref = lab().reference();
    const auto nn =
        paretoFrontier45nm(runner, ref, Group::NativeNonScalable);
    const auto ns =
        paretoFrontier45nm(runner, ref, Group::NativeScalable);
    EXPECT_GT(ns.back().performance, 1.5 * nn.back().performance);
}

TEST(Analysis, PentiumProjectionMatchesPaperClaim)
{
    // Figure 11 discussion: a 32nm Pentium 4 would have ~4x less
    // power and ~2x more performance.
    const auto points =
        historicalOverview(lab().runner(), lab().reference());
    for (const auto &pt : points) {
        if (pt.spec->family != Family::NetBurst)
            continue;
        const auto projected = projectToNode(pt, Node::Nm32, 2.0);
        const double powerCut =
            pt.aggregate.weighted.powerW / projected.powerW;
        const double perfGain =
            projected.perf / pt.aggregate.weighted.perf;
        EXPECT_NEAR(perfGain, 2.0, 1e-9);
        EXPECT_GT(powerCut, 3.0);
        EXPECT_LT(powerCut, 6.0);
    }
    EXPECT_DEATH(projectToNode(points.front(), Node::Nm32, 0.0),
                 "clock ratio");
}

TEST(Analysis, ReportRendersAllGroups)
{
    const auto effects = cmpStudy(lab().runner(), lab().reference());
    std::ostringstream os;
    printGroupedEffects(os, "title", effects);
    const std::string out = os.str();
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("performance"), std::string::npos);
    EXPECT_NE(out.find("Native Non-scalable"), std::string::npos);
    EXPECT_NE(out.find("i7 (45)"), std::string::npos);
}

TEST(Lab, FacadeMeasuresAndAggregates)
{
    Lab fresh(0xABCDEF);
    const auto cfg = stockConfig(processorById("Atom (45)"));
    const auto &bench = benchmarkByName("jess");
    const auto &m = fresh.measure(cfg, bench);
    EXPECT_GT(m.timeSec, 0.0);
    const auto r = fresh.result(cfg, bench);
    EXPECT_GT(r.perf, 0.0);
    EXPECT_GT(r.energy, 0.0);
    EXPECT_EQ(r.bench, &bench);
}

TEST(Lab, ReferenceIsBuiltLazilyAndCached)
{
    Lab fresh(0x777);
    const ReferenceSet &a = fresh.reference();
    const ReferenceSet &b = fresh.reference();
    EXPECT_EQ(&a, &b);
}

} // namespace lhr
