/**
 * @file
 * Tests for logging levels, table formatting, and CSV emission.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace lhr
{

TEST(Logging, MsgOfConcatenates)
{
    EXPECT_EQ(msgOf("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(msgOf(), "");
}

TEST(Logging, LevelRoundTrip)
{
    const LogLevel old = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(LogLevel::Info);
    EXPECT_EQ(logLevel(), LogLevel::Info);
    setLogLevel(old);
}

TEST(Table, FormatFixed)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(2.0, 0), "2");
    EXPECT_EQ(formatFixed(-1.5, 1), "-1.5");
}

TEST(Table, AlignsColumns)
{
    TableWriter table;
    table.addColumn("name", TableWriter::Align::Left);
    table.addColumn("value");
    table.beginRow();
    table.cell(std::string("alpha"));
    table.cell(1.5, 1);
    table.beginRow();
    table.cell(std::string("b"));
    table.cell(10.26, 1);

    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name   value"), std::string::npos);
    EXPECT_NE(out.find("alpha    1.5"), std::string::npos);
    EXPECT_NE(out.find("b       10.3"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(Table, IntegerAndEmptyCells)
{
    TableWriter table;
    table.addColumn("a");
    table.addColumn("b");
    table.beginRow();
    table.cell(42l);
    table.emptyCell();
    std::ostringstream os;
    table.print(os);
    EXPECT_NE(os.str().find("42"), std::string::npos);
}

TEST(Table, MisuseDies)
{
    TableWriter table;
    table.addColumn("only");
    EXPECT_DEATH(table.cell(std::string("x")), "before beginRow");
    table.beginRow();
    table.cell(std::string("one"));
    EXPECT_DEATH(table.cell(std::string("two")), "too many");
}

TEST(Csv, WritesHeaderAndRows)
{
    std::ostringstream os;
    {
        CsvWriter csv(os, {"a", "b"});
        csv.beginRow();
        csv.field(std::string("x"));
        csv.field(1.5, 2);
        csv.beginRow();
        csv.field(2l);
        csv.field(std::string("y"));
    }
    EXPECT_EQ(os.str(), "a,b\nx,1.50\n2,y\n");
}

TEST(Csv, QuotesSpecialCharacters)
{
    std::ostringstream os;
    {
        CsvWriter csv(os, {"a"});
        csv.beginRow();
        csv.field(std::string("hello, \"world\""));
    }
    EXPECT_EQ(os.str(), "a\n\"hello, \"\"world\"\"\"\n");
}

TEST(Csv, IncompleteRowDies)
{
    std::ostringstream os;
    EXPECT_DEATH(
        {
            CsvWriter csv(os, {"a", "b"});
            csv.beginRow();
            csv.field(1l);
            csv.beginRow(); // previous row incomplete
        },
        "fields");
}

} // namespace lhr
