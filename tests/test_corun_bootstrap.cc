/**
 * @file
 * Tests for the co-run interference model and bootstrap CIs.
 */

#include <gtest/gtest.h>

#include "harness/corun.hh"
#include "stats/bootstrap.hh"

namespace lhr
{

namespace
{

ExperimentRunner &
runner()
{
    static ExperimentRunner instance(0xC0117);
    return instance;
}

MachineConfig
i7TwoPlus()
{
    return withSmt(
        withTurbo(stockConfig(processorById("i7 (45)")), false),
        false);
}

} // namespace

TEST(CoRun, SlowdownsAreAtLeastOne)
{
    CoRunner corunner(runner());
    const auto cfg = i7TwoPlus();
    for (const char *a : {"hmmer", "mcf", "gcc"}) {
        for (const char *b : {"povray", "xalancbmk", "libquantum"}) {
            const auto r = corunner.run(cfg, benchmarkByName(a),
                                        benchmarkByName(b));
            ASSERT_GE(r.slowdownA, 1.0 - 1e-9) << a << "+" << b;
            ASSERT_GE(r.slowdownB, 1.0 - 1e-9) << a << "+" << b;
            ASSERT_GT(r.llcShareA, 0.1);
            ASSERT_LT(r.llcShareA, 0.9);
            ASSERT_GT(r.powerW, 0.0);
        }
    }
}

TEST(CoRun, CacheInsensitiveCodeIsImmune)
{
    // hmmer's working set fits in its private caches: even mcf
    // cannot hurt it much.
    CoRunner corunner(runner());
    const auto r = corunner.run(i7TwoPlus(), benchmarkByName("hmmer"),
                                benchmarkByName("mcf"));
    EXPECT_LT(r.slowdownA, 1.02);
}

TEST(CoRun, CapacityHungryRivalHurtsMore)
{
    // gcc suffers more next to mcf than next to povray.
    CoRunner corunner(runner());
    const auto vsHog = corunner.run(
        i7TwoPlus(), benchmarkByName("gcc"), benchmarkByName("mcf"));
    const auto vsLean = corunner.run(
        i7TwoPlus(), benchmarkByName("gcc"), benchmarkByName("povray"));
    EXPECT_GT(vsHog.slowdownA, vsLean.slowdownA);
}

TEST(CoRun, PressureWinsCapacity)
{
    // mcf's miss pressure wins it the larger LLC share against a
    // cache-light rival.
    CoRunner corunner(runner());
    const auto r = corunner.run(i7TwoPlus(), benchmarkByName("mcf"),
                                benchmarkByName("povray"));
    EXPECT_GT(r.llcShareA, 0.5);
}

TEST(CoRun, OlderChipSuffersMore)
{
    CoRunner corunner(runner());
    const auto old = corunner.run(
        stockConfig(processorById("C2D (65)")),
        benchmarkByName("gcc"), benchmarkByName("gcc"));
    const auto modern = corunner.run(
        i7TwoPlus(), benchmarkByName("gcc"), benchmarkByName("gcc"));
    EXPECT_GT(old.slowdownA, modern.slowdownA - 1e-9);
}

TEST(CoRun, MatrixShapeAndDiagonal)
{
    CoRunner corunner(runner());
    const std::vector<const Benchmark *> set = {
        &benchmarkByName("hmmer"), &benchmarkByName("mcf")};
    const auto matrix = corunner.matrix(i7TwoPlus(), set);
    ASSERT_EQ(matrix.size(), 2u);
    ASSERT_EQ(matrix[0].size(), 2u);
    for (const auto &row : matrix)
        for (double slowdown : row)
            EXPECT_GE(slowdown, 1.0 - 1e-9);
}

TEST(CoRun, Validation)
{
    CoRunner corunner(runner());
    const auto oneCore =
        withCores(stockConfig(processorById("i7 (45)")), 1);
    EXPECT_DEATH(corunner.run(oneCore, benchmarkByName("gcc"),
                              benchmarkByName("mcf")),
                 "two cores");
    EXPECT_DEATH(corunner.run(i7TwoPlus(), benchmarkByName("xalan"),
                              benchmarkByName("mcf")),
                 "single-threaded");
}

TEST(Bootstrap, IntervalBracketsTheMean)
{
    Rng rng(31);
    std::vector<double> samples;
    for (int i = 0; i < 30; ++i)
        samples.push_back(rng.gaussian(10.0, 1.0));
    const auto ci = bootstrapCi95(samples, rng);
    EXPECT_LE(ci.lo, ci.mean);
    EXPECT_GE(ci.hi, ci.mean);
    EXPECT_NEAR(ci.mean, 10.0, 1.0);
    EXPECT_GT(ci.halfWidthRelative(), 0.0);
}

TEST(Bootstrap, WidthShrinksWithSamples)
{
    Rng rng(32);
    std::vector<double> small, large;
    for (int i = 0; i < 5; ++i)
        small.push_back(rng.gaussian(10.0, 1.0));
    for (int i = 0; i < 200; ++i)
        large.push_back(rng.gaussian(10.0, 1.0));
    Rng r1(33), r2(33);
    EXPECT_GT(bootstrapCi95(small, r1).halfWidthRelative(),
              bootstrapCi95(large, r2).halfWidthRelative());
}

TEST(Bootstrap, ConstantSamplesGiveZeroWidth)
{
    Rng rng(34);
    const auto ci = bootstrapCi95({5.0, 5.0, 5.0, 5.0}, rng);
    EXPECT_DOUBLE_EQ(ci.lo, 5.0);
    EXPECT_DOUBLE_EQ(ci.hi, 5.0);
    EXPECT_DOUBLE_EQ(ci.halfWidthRelative(), 0.0);
}

TEST(Bootstrap, Validation)
{
    Rng rng(35);
    EXPECT_DEATH(bootstrapCi95({1.0}, rng), "two samples");
    EXPECT_DEATH(bootstrapCi95({1.0, 2.0}, rng, 10), "resamples");
}

TEST(Bootstrap, CoverageReasonableAtModerateN)
{
    Rng rng(36);
    int covered = 0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
        std::vector<double> samples;
        for (int i = 0; i < 20; ++i)
            samples.push_back(rng.gaussian(50.0, 5.0));
        const auto ci = bootstrapCi95(samples, rng, 400);
        if (ci.lo <= 50.0 && 50.0 <= ci.hi)
            ++covered;
    }
    EXPECT_GE(covered, trials * 85 / 100);
}

} // namespace lhr
