/**
 * @file
 * Tests for the JVM vendor and native compiler models (the paper's
 * future-work studies).
 */

#include <gtest/gtest.h>

#include "jvm/vendors.hh"
#include "workload/compiler.hh"

namespace lhr
{

TEST(JvmVendors, ThreeVendors)
{
    EXPECT_EQ(allJvmVendors().size(), 3u);
    EXPECT_EQ(allJvmVendors().front(), JvmVendor::HotSpot);
}

TEST(JvmVendors, ProfilesResolve)
{
    EXPECT_EQ(jvmVendorProfile(JvmVendor::HotSpot).name, "HotSpot");
    EXPECT_EQ(jvmVendorProfile(JvmVendor::JRockit).name, "JRockit");
    EXPECT_EQ(jvmVendorProfile(JvmVendor::J9).name, "J9");
}

TEST(JvmVendors, HotSpotIsTheIdentity)
{
    const auto &profile = jvmVendorProfile(JvmVendor::HotSpot);
    EXPECT_DOUBLE_EQ(profile.perfBias, 1.0);
    EXPECT_DOUBLE_EQ(profile.perfSpread, 0.0);
    const auto &bench = benchmarkByName("xalan");
    const auto adjusted = applyJvmVendor(bench, JvmVendor::HotSpot);
    EXPECT_DOUBLE_EQ(adjusted.ilp, bench.ilp);
    EXPECT_DOUBLE_EQ(adjusted.jvmServiceFraction,
                     bench.jvmServiceFraction);
}

TEST(JvmVendors, PerBenchmarkFactorIsDeterministic)
{
    const auto &profile = jvmVendorProfile(JvmVendor::JRockit);
    EXPECT_DOUBLE_EQ(vendorPerfFactor(profile, "db"),
                     vendorPerfFactor(profile, "db"));
    // Different benchmarks see different factors ("individual
    // benchmarks vary substantially").
    EXPECT_NE(vendorPerfFactor(profile, "db"),
              vendorPerfFactor(profile, "xalan"));
}

TEST(JvmVendors, FactorsAverageNearBias)
{
    const auto &profile = jvmVendorProfile(JvmVendor::J9);
    double sum = 0.0;
    int n = 0;
    for (const auto &bench : allBenchmarks()) {
        if (bench.language() != Language::Java)
            continue;
        sum += vendorPerfFactor(profile, bench.name);
        ++n;
    }
    EXPECT_NEAR(sum / n, profile.perfBias, 0.08);
}

TEST(JvmVendors, NativeBenchmarkPanics)
{
    EXPECT_DEATH(
        applyJvmVendor(benchmarkByName("mcf"), JvmVendor::J9),
        "is native");
}

TEST(JvmVendors, AdjustedBenchmarkStaysPhysical)
{
    for (const auto vendor : allJvmVendors()) {
        for (const auto &bench : allBenchmarks()) {
            if (bench.language() != Language::Java)
                continue;
            const auto adjusted = applyJvmVendor(bench, vendor);
            EXPECT_GE(adjusted.ilp, 0.5);
            EXPECT_LE(adjusted.ilp, 4.0);
            EXPECT_LT(adjusted.jvmServiceFraction, 0.5);
            EXPECT_GE(adjusted.fpShare, 0.0);
            EXPECT_LE(adjusted.fpShare, 1.0);
        }
    }
}

TEST(Compilers, ProfilesResolve)
{
    EXPECT_EQ(compilerProfile(NativeCompiler::Icc11).name, "icc 11.1");
    EXPECT_EQ(compilerProfile(NativeCompiler::Gcc441).name,
              "gcc 4.4.1");
    EXPECT_EQ(allCompilers().size(), 2u);
}

TEST(Compilers, IccBeatsGccOnSpec)
{
    // Paper: icc "consistently generated better performing code".
    for (const char *name : {"hmmer", "gamess", "namd", "perlbench"}) {
        const auto &bench = benchmarkByName(name);
        const auto icc =
            compileBenchmark(bench, NativeCompiler::Icc11);
        const auto gcc =
            compileBenchmark(bench, NativeCompiler::Gcc441);
        ASSERT_TRUE(icc.has_value()) << name;
        ASSERT_TRUE(gcc.has_value()) << name;
        EXPECT_GE(icc->ilp, gcc->ilp * 0.98) << name;
    }
}

TEST(Compilers, IccGainsMoreOnFpCode)
{
    const auto fp = compileBenchmark(benchmarkByName("gamess"),
                                     NativeCompiler::Icc11);
    const auto intc = compileBenchmark(benchmarkByName("gobmk"),
                                       NativeCompiler::Icc11);
    ASSERT_TRUE(fp && intc);
    const double fpGain = fp->ilp / benchmarkByName("gamess").ilp;
    const double intGain = intc->ilp / benchmarkByName("gobmk").ilp;
    EXPECT_GT(fpGain, intGain);
}

TEST(Compilers, GccNeverMiscompiles)
{
    for (const auto &bench : allBenchmarks()) {
        if (bench.language() != Language::Native)
            continue;
        EXPECT_TRUE(
            compileBenchmark(bench, NativeCompiler::Gcc441).has_value())
            << bench.name;
    }
}

TEST(Compilers, IccMiscompilesManyParsecCodes)
{
    // Paper: "the icc compiler failed to produce correct code for
    // many of the PARSEC benchmarks."
    int failed = 0, total = 0;
    for (const auto *bench : benchmarksInGroup(Group::NativeScalable)) {
        ++total;
        if (!compileBenchmark(*bench, NativeCompiler::Icc11))
            ++failed;
    }
    EXPECT_GE(failed, total / 3);
    EXPECT_LT(failed, total); // but not all
}

TEST(Compilers, MiscompilationIsDeterministic)
{
    for (const auto *bench : benchmarksInGroup(Group::NativeScalable)) {
        const bool first =
            compileBenchmark(*bench, NativeCompiler::Icc11).has_value();
        const bool second =
            compileBenchmark(*bench, NativeCompiler::Icc11).has_value();
        EXPECT_EQ(first, second) << bench->name;
    }
}

TEST(Compilers, JavaBenchmarkPanics)
{
    EXPECT_DEATH(compileBenchmark(benchmarkByName("xalan"),
                                  NativeCompiler::Gcc441),
                 "Java benchmark");
}

} // namespace lhr
