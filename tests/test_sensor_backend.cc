/**
 * @file
 * Tests for the PowerSensor abstraction: backend naming, the Hall
 * backend's bit-equivalence to the pre-abstraction channel chain,
 * RAPL counter semantics (quantization, wrap absorption, stale and
 * wrap-glitch faults), per-era backend selection, and the runner's
 * backend plumbing end to end.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/runner.hh"
#include "machine/processor.hh"
#include "sensor/calibration.hh"
#include "sensor/channel.hh"
#include "sensor/hall.hh"
#include "sensor/rapl.hh"
#include "sensor/sampling.hh"
#include "sensor/sensor.hh"
#include "util/hash.hh"

namespace lhr
{

namespace
{

/** A flat-ish two-phase waveform around 40W. */
const std::vector<double> kPhases = {38.0, 44.0, 41.0, 39.5};

/** Bitwise equality of the paper-facing measurement fields. */
bool
identical(const Measurement &a, const Measurement &b)
{
    return a.timeSec == b.timeSec && a.timeCi95Rel == b.timeCi95Rel &&
        a.powerW == b.powerW && a.powerCi95Rel == b.powerCi95Rel &&
        a.invocations == b.invocations;
}

/** Clears the process-wide backend override on scope exit. */
struct OverrideGuard
{
    ~OverrideGuard() { setSensorBackendOverride(std::nullopt); }
};

} // namespace

TEST(SensorBackend, NamesRoundTrip)
{
    for (const SensorBackend backend :
         {SensorBackend::HallEffect, SensorBackend::Rapl}) {
        const auto parsed =
            parseSensorBackend(sensorBackendName(backend));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, backend);
    }
    EXPECT_FALSE(parseSensorBackend("wattmeter").has_value());
    EXPECT_FALSE(parseSensorBackend("").has_value());
}

TEST(SensorBackend, HallSessionIsBitIdenticalToTheChannelChain)
{
    // The abstraction's contract: a HallEffectSensor built from
    // (variant, device seed, cal seed) samples exactly like the
    // pre-abstraction PowerChannel + Calibration pipeline.
    const uint64_t deviceSeed = 0x714;
    const uint64_t calSeed = 0xCAFE;
    const HallEffectSensor sensor(SensorVariant::A30, deviceSeed,
                                  calSeed);

    const PowerChannel channel(SensorVariant::A30, deviceSeed);
    Rng calRng(calSeed);
    const Calibration calib = Calibration::calibrate(channel, calRng);

    constexpr int samples = 500;
    Rng viaSensor(0xD00D);
    Rng viaChain(0xD00D);
    const double a = sensor.sessionWatts(
        kPhases.data(), static_cast<int>(kPhases.size()), 1.02,
        samples, viaSensor);
    const double b = sampleSessionWatts(
        channel, calib, kPhases.data(),
        static_cast<int>(kPhases.size()), 1.02, samples, viaChain);
    EXPECT_EQ(a, b);
    // ... and leaves the invocation stream at the same position.
    EXPECT_EQ(viaSensor.next(), viaChain.next());
}

TEST(SensorBackend, HallBeginSessionDrawsNothing)
{
    const HallEffectSensor sensor(SensorVariant::A5, 1, 2);
    Rng touched(42), untouched(42);
    const auto session = sensor.beginSession(touched);
    ASSERT_NE(session, nullptr);
    EXPECT_EQ(touched.next(), untouched.next());
}

TEST(SensorBackend, MakeSensorSeedsTheHallChainLikeTheOldRig)
{
    const auto &spec = processorById("i7 (45)");
    const uint64_t baseSeed = 0xBEEF;
    const auto sensor =
        makeSensor(SensorBackend::HallEffect, spec, baseSeed);
    ASSERT_EQ(sensor->backend(), SensorBackend::HallEffect);

    // i7's TDP (130W) selects the 30A variant; seeds derive from the
    // spec id exactly as the pre-abstraction rig derived them.
    const PowerChannel channel(SensorVariant::A30,
                               baseSeed ^ fnv1a(spec.id));
    Rng calRng(baseSeed ^ fnv1a(spec.id + "/cal"));
    const Calibration calib = Calibration::calibrate(channel, calRng);

    Rng viaSensor(7), viaChain(7);
    EXPECT_EQ(sensor->sessionWatts(kPhases.data(),
                                   static_cast<int>(kPhases.size()),
                                   1.0, 300, viaSensor),
              sampleSessionWatts(channel, calib, kPhases.data(),
                                 static_cast<int>(kPhases.size()),
                                 1.0, 300, viaChain));
    EXPECT_EQ(sensor->railHighCode(), channel.railHighCounts());
    EXPECT_EQ(sensor->railLowCode(), channel.railLowCounts());
}

TEST(SensorBackend, RaplSessionIsDeterministicAndNearTruth)
{
    const RaplSensor sensor(0x5EED);
    constexpr int samples = 1000;
    const double trueW = 40.625; // mean of kPhases

    Rng a(0x1234), b(0x1234);
    const double sumA = sensor.sessionWatts(
        kPhases.data(), static_cast<int>(kPhases.size()), 1.0,
        samples, a);
    const double sumB = sensor.sessionWatts(
        kPhases.data(), static_cast<int>(kPhases.size()), 1.0,
        samples, b);
    EXPECT_EQ(sumA, sumB);

    // The decode carries only the device's ±2% systematic gain and
    // sub-unit quantization; the mean must land near the true draw.
    const double mean = sumA / samples;
    EXPECT_NEAR(mean, trueW * sensor.deviceGain(), trueW * 0.01);
    EXPECT_NEAR(mean, trueW, trueW * 0.06);
}

TEST(SensorBackend, RaplAbsorbsNaturalCounterWraps)
{
    // The 32-bit counter wraps every ~32k slots at 100W; a correct
    // reader differences in unsigned arithmetic, so every slot of a
    // constant-power session decodes identically across many wraps.
    const RaplSensor sensor(0x5EED);
    Rng rng(9);
    const auto session = sensor.beginSession(rng);
    const SampleFault clean;
    const SensorReading first = session->read(100.0, rng, clean);
    EXPECT_GT(first.code, 0);
    EXPECT_LT(first.code, sensor.railHighCode());
    for (int slot = 0; slot < 100000; ++slot) {
        const SensorReading r = session->read(100.0, rng, clean);
        ASSERT_EQ(r.code, first.code) << "slot " << slot;
        ASSERT_EQ(r.watts, first.watts) << "slot " << slot;
    }
}

TEST(SensorBackend, RaplStaleReadThenDoubleDeltaCatchUp)
{
    const RaplSensor sensor(0x5EED);
    Rng rng(11);
    const auto session = sensor.beginSession(rng);
    const SampleFault clean;
    SampleFault stale;
    stale.stale = true;

    const SensorReading before = session->read(60.0, rng, clean);
    // The stale slot re-reads the previous counter value: zero
    // delta, the backend's low rail.
    const SensorReading staleRead = session->read(60.0, rng, stale);
    EXPECT_EQ(staleRead.code, sensor.railLowCode());
    EXPECT_EQ(staleRead.watts, 0.0);
    // The next honest read catches up both slots' energy.
    const SensorReading catchUp = session->read(60.0, rng, clean);
    EXPECT_EQ(catchUp.code, 2 * before.code);
    EXPECT_EQ(catchUp.watts, 2.0 * before.watts);
    // ... and the session then returns to the steady-state delta.
    EXPECT_EQ(session->read(60.0, rng, clean).code, before.code);
}

TEST(SensorBackend, RaplWrapGlitchPegsAtTheHighRail)
{
    const RaplSensor sensor(0x5EED);
    Rng rng(13);
    const auto session = sensor.beginSession(rng);
    SampleFault glitch;
    glitch.wrapGlitch = true;

    const SensorReading r = session->read(80.0, rng, glitch);
    EXPECT_EQ(r.code, RaplSensor::wrapGlitchCode);
    EXPECT_EQ(r.code, sensor.railHighCode());
    // 2^21 units per 20ms slot decodes to exactly 1600W — far
    // outside any honest delta, so the rail screen rejects it.
    EXPECT_DOUBLE_EQ(r.watts, 1600.0);
    EXPECT_GT(r.code, session->read(80.0, rng, SampleFault{}).code);
}

TEST(SensorBackend, DefaultBackendFollowsTheEra)
{
    for (const auto &spec : allProcessors())
        EXPECT_EQ(defaultSensorBackend(spec),
                  SensorBackend::HallEffect)
            << spec.id;
    for (const auto &spec : postPaperProcessors())
        EXPECT_EQ(defaultSensorBackend(spec), SensorBackend::Rapl)
            << spec.id;
}

TEST(SensorBackend, OverrideWinsOverTheEra)
{
    OverrideGuard guard;
    setSensorBackendOverride(SensorBackend::Rapl);
    EXPECT_EQ(defaultSensorBackend(processorById("i7 (45)")),
              SensorBackend::Rapl);
    setSensorBackendOverride(SensorBackend::HallEffect);
    EXPECT_EQ(defaultSensorBackend(processorById("XeonSP (14)")),
              SensorBackend::HallEffect);
    setSensorBackendOverride(std::nullopt);
    EXPECT_EQ(defaultSensorBackend(processorById("XeonSP (14)")),
              SensorBackend::Rapl);
}

TEST(RunnerBackend, RigCarriesTheConfiguredBackend)
{
    const auto &i7 = processorById("i7 (45)");

    ExperimentRunner hall(0xBEEF);
    EXPECT_EQ(hall.sensor(i7).backend(), SensorBackend::HallEffect);
    EXPECT_NE(hall.sensor(i7).calibration(), nullptr);

    ExperimentRunner rapl(0xBEEF);
    rapl.setSensorBackend(SensorBackend::Rapl);
    EXPECT_EQ(rapl.sensor(i7).backend(), SensorBackend::Rapl);
    EXPECT_EQ(rapl.sensor(i7).calibration(), nullptr);
}

TEST(RunnerBackend, BackendMustBeChosenBeforeRigsExist)
{
    ExperimentRunner runner(0xBEEF);
    runner.sensor(processorById("i7 (45)"));
    EXPECT_DEATH(runner.setSensorBackend(SensorBackend::Rapl),
                 "already exist");
}

TEST(RunnerBackend, CalibrationOfARaplRigPanics)
{
    ExperimentRunner runner(0xBEEF);
    runner.setSensorBackend(SensorBackend::Rapl);
    EXPECT_DEATH(runner.calibration(processorById("i7 (45)")),
                 "without a calibration");
}

TEST(RunnerBackend, RaplMeasurementsAreDeterministicAndDiffer)
{
    const auto cfg = stockConfig(processorById("i7 (45)"));
    const auto &bench = benchmarkByName("mcf");

    ExperimentRunner a(0xBEEF), b(0xBEEF), hall(0xBEEF);
    a.setSensorBackend(SensorBackend::Rapl);
    b.setSensorBackend(SensorBackend::Rapl);

    const Measurement &ma = a.measure(cfg, bench);
    EXPECT_TRUE(identical(ma, b.measure(cfg, bench)));

    // The backend is actually in the loop: the Hall chain decodes
    // through a different noise path, so the two disagree...
    const Measurement &mh = hall.measure(cfg, bench);
    EXPECT_NE(ma.powerW, mh.powerW);
    // ... but both measure the same rig, so only within a few
    // percent (Hall noise, RAPL gain and quantization).
    EXPECT_NEAR(ma.powerW, mh.powerW, mh.powerW * 0.08);
    EXPECT_EQ(ma.invocations, mh.invocations);
}

TEST(RunnerBackend, ServerPartMeasuresUnderRaplByDefault)
{
    const auto cfg = stockConfig(processorById("XeonE5v3 (22)"));
    const auto &bench = benchmarkByName("mcf");
    ExperimentRunner runner(0xBEEF);
    EXPECT_EQ(runner.sensor(*cfg.spec).backend(),
              SensorBackend::Rapl);
    const Measurement &m = runner.measure(cfg, bench);
    EXPECT_GT(m.powerW, 10.0);
    EXPECT_LT(m.powerW, cfg.spec->tdpW);
}

TEST(RunnerBackend, HardenedPipelineRecoversFromRaplFaults)
{
    const auto cfg = stockConfig(processorById("XeonE5 (32)"));
    const auto &bench = benchmarkByName("mcf");

    ExperimentRunner clean(0xBEEF);
    const Measurement &truth = clean.measure(cfg, bench);

    // Wrap glitches peg at the high rail, stale reads at the low
    // rail; the hardened pipeline's rail screen rejects both.
    FaultPlan plan;
    plan.seed = 0xBEEF;
    plan.with(FaultClass::CounterWraparound, 0.02)
        .with(FaultClass::StaleCounter, 0.03);

    ExperimentRunner faulted(0xBEEF);
    faulted.setFaultPlan(plan);
    const Measurement &recovered = faulted.measure(cfg, bench);

    EXPECT_GT(recovered.samplesRailed, 0);
    EXPECT_FALSE(recovered.degraded);
    // Stale slots move their energy into the next slot's catch-up,
    // so the surviving mean rides a few percent above the truth but
    // nowhere near the 1600W a raw wrap glitch injects.
    EXPECT_NEAR(recovered.powerW, truth.powerW, truth.powerW * 0.10);

    ExperimentRunner again(0xBEEF);
    again.setFaultPlan(plan);
    EXPECT_TRUE(identical(again.measure(cfg, bench), recovered));
}

} // namespace lhr
