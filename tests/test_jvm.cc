/**
 * @file
 * Tests for the managed-runtime model (paper section 2.2 and
 * Workload Findings 1-2).
 */

#include <gtest/gtest.h>

#include "jvm/jvm_model.hh"

namespace lhr
{

namespace
{

const ProcessorSpec &i7() { return processorById("i7 (45)"); }

double
jvmTime(const ProcessorSpec &spec, const Benchmark &bench,
        const MachineConfig &cfg)
{
    const PerfModel model(spec);
    return JvmModel::run(model, bench, cfg, cfg.clockGhz).timeSec;
}

} // namespace

TEST(Jvm, WarmupFactorsDecreaseToSteadyState)
{
    double prev = 1e9;
    for (int iter = 1; iter <= 6; ++iter) {
        const double factor = JvmModel::warmupFactor(iter);
        EXPECT_LE(factor, prev);
        EXPECT_GE(factor, 1.0);
        prev = factor;
    }
    EXPECT_DOUBLE_EQ(
        JvmModel::warmupFactor(JvmMethodology::measuredIteration), 1.0);
    EXPECT_GT(JvmModel::warmupFactor(1), 1.5);
    EXPECT_DEATH(JvmModel::warmupFactor(0), "1-based");
}

TEST(Jvm, MethodologyConstantsMatchPaper)
{
    EXPECT_EQ(JvmMethodology::measuredIteration, 5);
    EXPECT_EQ(JvmMethodology::invocations, 20);
    EXPECT_DOUBLE_EQ(JvmMethodology::heapFactor, 3.0);
}

TEST(Jvm, ServiceScalesWithHeap)
{
    // 3x heap is the reference; tighter heaps collect more, larger
    // heaps less, and only the GC share moves.
    const double base = 0.10;
    EXPECT_NEAR(JvmModel::serviceAtHeap(base, 3.0), base, 1e-12);
    EXPECT_GT(JvmModel::serviceAtHeap(base, 1.5), base);
    EXPECT_LT(JvmModel::serviceAtHeap(base, 6.0), base);
    // The JIT share (40%) never goes away.
    EXPECT_GT(JvmModel::serviceAtHeap(base, 100.0),
              base * (1.0 - JvmModel::gcShareOfService) - 1e-12);
    EXPECT_DEATH(JvmModel::serviceAtHeap(base, 1.0), "heap");
}

TEST(Jvm, TighterHeapRunsSlower)
{
    const PerfModel model(processorById("i7 (45)"));
    const auto cfg = withTurbo(
        stockConfig(processorById("i7 (45)")), false);
    const auto &bench = benchmarkByName("pjbb2005");
    const double tTight =
        JvmModel::run(model, bench, cfg, cfg.clockGhz, 1.5).timeSec;
    const double tRef =
        JvmModel::run(model, bench, cfg, cfg.clockGhz).timeSec;
    const double tBig =
        JvmModel::run(model, bench, cfg, cfg.clockGhz, 6.0).timeSec;
    EXPECT_GT(tTight, tRef);
    EXPECT_LT(tBig, tRef);
}

TEST(Jvm, NativeBenchmarkPanics)
{
    const PerfModel model(i7());
    const auto cfg = stockConfig(i7());
    EXPECT_DEATH(
        JvmModel::run(model, benchmarkByName("mcf"), cfg, 2.667),
        "native benchmark");
}

TEST(Jvm, SingleThreadedJavaGainsFromSecondCore)
{
    // Workload Finding 1: the JVM's services parallelize ostensibly
    // sequential Java code.
    auto base = withSmt(withTurbo(stockConfig(i7()), false), false);
    const auto one = withCores(base, 1);
    const auto two = withCores(base, 2);
    for (const char *name : {"antlr", "luindex", "db", "javac"}) {
        const auto &bench = benchmarkByName(name);
        const double t1 = jvmTime(i7(), bench, one);
        const double t2 = jvmTime(i7(), bench, two);
        EXPECT_GT(t1 / t2, 1.05) << name;
        EXPECT_LT(t1 / t2, 1.7) << name;
    }
}

TEST(Jvm, AntlrGainsMostFromOffloading)
{
    // antlr spends ~half its time in the JVM (paper section 3.1).
    auto base = withSmt(withTurbo(stockConfig(i7()), false), false);
    const auto one = withCores(base, 1);
    const auto two = withCores(base, 2);
    const double antlrGain =
        jvmTime(i7(), benchmarkByName("antlr"), one) /
        jvmTime(i7(), benchmarkByName("antlr"), two);
    for (const char *name : {"compress", "jess", "javac", "jack"}) {
        const auto &bench = benchmarkByName(name);
        const double gain = jvmTime(i7(), bench, one) /
            jvmTime(i7(), bench, two);
        EXPECT_GT(antlrGain, gain) << name;
    }
}

TEST(Jvm, NativeCodeSeesNoSuchGain)
{
    // Native single-threaded codes never gain from CMP (paper
    // section 1).
    const PerfModel model(i7());
    auto base = withSmt(withTurbo(stockConfig(i7()), false), false);
    const auto &bench = benchmarkByName("mcf");
    const double t1 = model.evaluate(
        bench, withCores(base, 1), 2.667,
        bench.instructionsB() * 1e9, 1).timeSec;
    const double t2 = model.evaluate(
        bench, withCores(base, 2), 2.667,
        bench.instructionsB() * 1e9, 1).timeSec;
    EXPECT_NEAR(t1, t2, t1 * 1e-9);
}

TEST(Jvm, SmtSiblingHurtsJavaOnPentium4)
{
    // Workload Finding 2: on the 512KB NetBurst part, JVM service
    // threads on the SMT sibling squeeze the cache and slow
    // single-threaded Java down.
    const ProcessorSpec &p4 = processorById("Pentium4 (130)");
    const auto smtOff = withSmt(stockConfig(p4), false);
    const auto smtOn = withSmt(stockConfig(p4), true);
    double slowdownSum = 0.0;
    int n = 0;
    for (const char *name : {"db", "javac", "bloat", "compress"}) {
        const auto &bench = benchmarkByName(name);
        const double tOff = jvmTime(p4, bench, smtOff);
        const double tOn = jvmTime(p4, bench, smtOn);
        slowdownSum += tOn / tOff;
        ++n;
    }
    EXPECT_GT(slowdownSum / n, 1.0);
}

TEST(Jvm, SmtSiblingHelpsJavaOnNehalem)
{
    // The same mechanism helps on the i7's 8MB cache.
    auto base = withCores(withTurbo(stockConfig(i7()), false), 1);
    const auto smtOff = withSmt(base, false);
    const auto smtOn = withSmt(base, true);
    double ratioSum = 0.0;
    int n = 0;
    for (const char *name : {"antlr", "luindex", "jack", "fop"}) {
        const auto &bench = benchmarkByName(name);
        ratioSum += jvmTime(i7(), bench, smtOn) /
            jvmTime(i7(), bench, smtOff);
        ++n;
    }
    EXPECT_LT(ratioSum / n, 1.0);
}

TEST(Jvm, GcRaisesMemoryTraffic)
{
    const PerfModel model(i7());
    const auto cfg = withTurbo(stockConfig(i7()), false);
    const auto &bench = benchmarkByName("xalan");
    const auto jvm = JvmModel::run(model, bench, cfg, 2.667);
    const auto raw = model.evaluate(
        bench, cfg, 2.667, bench.instructionsB() * 1e9,
        bench.appThreads);
    EXPECT_GT(jvm.dramGBs, raw.dramGBs);
}

TEST(Jvm, ServiceCoreShowsUpInUtilization)
{
    // With spare cores, one previously idle core carries the JVM's
    // service activity.
    const PerfModel model(i7());
    auto cfg = withSmt(withTurbo(stockConfig(i7()), false), false);
    const auto &bench = benchmarkByName("antlr"); // single-threaded
    const auto run = JvmModel::run(model, bench, cfg, 2.667);
    ASSERT_EQ(run.coreUtilization.size(), 4u);
    EXPECT_GT(run.coreUtilization[0], 0.0);
    EXPECT_GT(run.coreUtilization[1], 0.0); // service core
    EXPECT_DOUBLE_EQ(run.coreUtilization[2], 0.0);
}

TEST(Jvm, ScalableJavaStillScales)
{
    auto base = withTurbo(stockConfig(i7()), false);
    const auto full = base;
    const auto single = withSmt(withCores(base, 1), false);
    const auto &bench = benchmarkByName("sunflow");
    const double ratio = jvmTime(i7(), bench, single) /
        jvmTime(i7(), bench, full);
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 5.0);
}

} // namespace lhr
