/**
 * @file
 * Tests for the study framework (src/study/): registry integrity,
 * the declared-grid contract (prewarming a study's grid makes its
 * run() execute entirely from the memo cache), and golden-output
 * byte identity for representative text reports.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/lab.hh"
#include "study/study.hh"

#ifndef LHR_GOLDEN_DIR
#error "LHR_GOLDEN_DIR must point at tests/golden"
#endif

namespace lhr
{

namespace
{

std::string
goldenFile(const std::string &name)
{
    const std::string path =
        std::string(LHR_GOLDEN_DIR) + "/" + name + ".txt";
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing golden file " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::string
renderText(Lab &lab, const std::string &name)
{
    const Study *study = StudyRegistry::instance().find(name);
    EXPECT_NE(study, nullptr);
    std::ostringstream out;
    TextSink sink(out);
    runStudy(lab, *study, sink, OutputFormat::Text);
    return out.str();
}

} // namespace

TEST(StudyRegistry, HoldsEveryConvertedDriver)
{
    const auto &all = StudyRegistry::instance().all();
    EXPECT_GE(all.size(), 30u);

    std::set<std::string> names;
    for (const Study *study : all) {
        ASSERT_NE(study, nullptr);
        EXPECT_FALSE(study->name().empty());
        EXPECT_FALSE(study->description().empty());
        EXPECT_TRUE(names.insert(study->name()).second)
            << "duplicate study name " << study->name();
    }

    // The paper's figures and tables are all present.
    for (const char *name :
         {"fig01", "fig04", "fig07", "fig12", "table1", "table3",
          "table5", "findings", "dataset", "ablation_pipesim",
          "pareto_history"})
        EXPECT_NE(StudyRegistry::instance().find(name), nullptr)
            << "study " << name << " not registered";
}

TEST(StudyRegistry, ParetoHistoryGridSpansEveryEra)
{
    const Study *study =
        StudyRegistry::instance().find("pareto_history");
    ASSERT_NE(study, nullptr);
    const auto grid = study->grid();
    // The 45 paper configurations plus a ten-point ladder for each
    // of the four server eras.
    EXPECT_EQ(grid.size(), 85u);
    std::set<Era> eras;
    for (const auto &cfg : grid)
        eras.insert(cfg.spec->era);
    EXPECT_EQ(eras.size(), allEras().size());
}

TEST(StudyRegistry, FindIsExactMatch)
{
    auto &registry = StudyRegistry::instance();
    EXPECT_EQ(registry.find("no_such_study"), nullptr);
    EXPECT_EQ(registry.find("fig0"), nullptr);
    const Study *fig04 = registry.find("fig04");
    ASSERT_NE(fig04, nullptr);
    EXPECT_EQ(fig04->name(), "fig04");
}

TEST(StudyGrid, DeclaredGridCoversEveryMeasurement)
{
    // Prewarm the union of two studies' grids, then run both: every
    // measure() they issue must be a cache hit. This is the contract
    // `lhrlab run --all` relies on for its single prewarm pass.
    auto &registry = StudyRegistry::instance();
    const std::vector<const Study *> studies = {
        registry.find("fig04"), registry.find("fig05")};
    ASSERT_NE(studies[0], nullptr);
    ASSERT_NE(studies[1], nullptr);

    Lab lab;
    lab.prewarm(unionGrid(studies));
    lab.runner().resetCacheStats();

    std::ostringstream out;
    TextSink sink(out);
    for (const Study *study : studies)
        runStudy(lab, *study, sink);

    const auto stats = lab.runner().cacheStats();
    EXPECT_GT(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 0u)
        << "a study measured outside its declared grid";
}

TEST(StudyGrid, UnionGridDeduplicates)
{
    auto &registry = StudyRegistry::instance();
    const Study *fig04 = registry.find("fig04");
    ASSERT_NE(fig04, nullptr);
    const auto once = unionGrid({fig04});
    const auto twice = unionGrid({fig04, fig04});
    EXPECT_EQ(once.size(), fig04->grid().size());
    EXPECT_EQ(twice.size(), once.size());
}

TEST(StudyGolden, Fig04MatchesGoldenBytes)
{
    Lab lab;
    EXPECT_EQ(renderText(lab, "fig04"), goldenFile("fig04"));
}

TEST(StudyGolden, Fig05MatchesGoldenBytes)
{
    Lab lab;
    EXPECT_EQ(renderText(lab, "fig05"), goldenFile("fig05"));
}

TEST(StudyGolden, Table3MatchesGoldenBytes)
{
    Lab lab;
    EXPECT_EQ(renderText(lab, "table3"), goldenFile("table3"));
}

TEST(StudySeed, LabSeedIsConfigurable)
{
    Lab stock;
    EXPECT_EQ(stock.seed(), 0xC0FFEEu);

    Lab other(12345);
    EXPECT_EQ(other.seed(), 12345u);

    // A different seed perturbs measured values; the same seed
    // reproduces them exactly.
    const auto &bench = allBenchmarks().front();
    const auto cfg = stockConfig(processorById("i7 (45)"));
    Lab again(12345);
    EXPECT_EQ(other.measure(cfg, bench).timeSec,
              again.measure(cfg, bench).timeSec);
    EXPECT_NE(stock.measure(cfg, bench).timeSec,
              other.measure(cfg, bench).timeSec);
}

} // namespace lhr
