/**
 * @file
 * Tests for the miss-curve and cache-hierarchy models.
 */

#include <gtest/gtest.h>

#include <cctype>

#include "cache/hierarchy.hh"
#include "workload/benchmark.hh"

namespace lhr
{

namespace
{

MissCurve
typicalCurve()
{
    return {20.0, 0.5, 32768.0, 1.0};
}

CacheHierarchy
twoLevel()
{
    return CacheHierarchy(
        {{"L1", 32, 0.0, CacheScope::PerCore, 1},
         {"L2", 4096, 5.0, CacheScope::Shared, 2}},
        70.0);
}

} // namespace

TEST(MissCurve, ReferenceCapacityReturnsMpki32)
{
    const MissCurve curve = typicalCurve();
    EXPECT_NEAR(curve.missPerKi(32.0), 20.0, 1e-9);
}

TEST(MissCurve, MonotonicallyNonIncreasingInCapacity)
{
    const MissCurve curve = typicalCurve();
    double prev = curve.missPerKi(1.0);
    for (double c = 2.0; c < 1e6; c *= 2.0) {
        const double m = curve.missPerKi(c);
        ASSERT_LE(m, prev + 1e-12) << "capacity " << c;
        prev = m;
    }
}

TEST(MissCurve, ColdFloorBeyondWorkingSet)
{
    const MissCurve curve = typicalCurve();
    EXPECT_DOUBLE_EQ(curve.missPerKi(32768.0), 1.0);
    EXPECT_DOUBLE_EQ(curve.missPerKi(1e9), 1.0);
}

TEST(MissCurve, TinyCapacityCappedAtThreeTimesReference)
{
    const MissCurve curve = typicalCurve();
    EXPECT_LE(curve.missPerKi(0.5), 3.0 * 20.0 + 1e-9);
    EXPECT_LE(curve.missPerKi(0.0), 3.0 * 20.0 + 1e-9);
}

TEST(MissCurve, StreamingCurveStaysNearFloor)
{
    // libquantum-like: low beta, high floor.
    const MissCurve streaming{30.0, 0.15, 1e6, 20.0};
    EXPECT_GE(streaming.missPerKi(8192.0), 20.0);
}

TEST(MissCurve, InvalidParametersPanic)
{
    const MissCurve bad{0.0, 0.5, 100.0, 0.0};
    EXPECT_DEATH(bad.missPerKi(32.0), "invalid");
}

TEST(Hierarchy, RequiresLevels)
{
    EXPECT_DEATH(CacheHierarchy({}, 70.0), "at least one");
}

TEST(Hierarchy, RejectsBadParameters)
{
    EXPECT_DEATH(CacheHierarchy(
                     {{"L1", -1.0, 0.0, CacheScope::PerCore, 1}}, 70.0),
                 "invalid");
    EXPECT_DEATH(CacheHierarchy(
                     {{"L1", 32.0, 0.0, CacheScope::PerCore, 1}}, 0.0),
                 "DRAM");
}

TEST(Hierarchy, StallGrowsWithSharing)
{
    const CacheHierarchy h = twoLevel();
    const MissCurve curve = typicalCurve();
    const auto alone = h.evaluate(curve, 1.0, 1.0);
    const auto smtShared = h.evaluate(curve, 1.8, 1.8);
    const auto fullShared = h.evaluate(curve, 1.8, 3.6);
    EXPECT_LT(alone.stallNsPerInstr, smtShared.stallNsPerInstr);
    EXPECT_LE(smtShared.stallNsPerInstr, fullShared.stallNsPerInstr);
}

TEST(Hierarchy, DramTrafficBoundedByL1Misses)
{
    const CacheHierarchy h = twoLevel();
    const auto t = h.evaluate(typicalCurve(), 1.0, 1.0);
    EXPECT_GT(t.l1Mpki, 0.0);
    EXPECT_GE(t.l1Mpki, t.dramMpki);
}

TEST(Hierarchy, BigEnoughCacheLeavesOnlyColdMisses)
{
    const CacheHierarchy big(
        {{"L1", 32, 0.0, CacheScope::PerCore, 1},
         {"L2", 65536, 5.0, CacheScope::PerCore, 1}},
        70.0);
    const auto t = big.evaluate(typicalCurve(), 1.0, 1.0);
    EXPECT_NEAR(t.dramMpki, 1.0, 1e-9);
}

TEST(Hierarchy, InvalidDivisorsPanic)
{
    const CacheHierarchy h = twoLevel();
    EXPECT_DEATH(h.evaluate(typicalCurve(), 0.5, 1.0), "divisors");
}

TEST(Hierarchy, SharedScopeCapsAtPhysicalSharers)
{
    // Asking for more sharers than physically share an instance must
    // not shrink capacity further than the physical sharing.
    const CacheHierarchy h = twoLevel(); // L2 shared by 2
    const auto two = h.evaluate(typicalCurve(), 1.0, 2.0);
    const auto eight = h.evaluate(typicalCurve(), 1.0, 8.0);
    EXPECT_NEAR(two.stallNsPerInstr, eight.stallNsPerInstr, 1e-12);
}

/** Property sweep: hierarchy invariants hold for every benchmark. */
class HierarchyBenchmarkSweep
    : public ::testing::TestWithParam<const Benchmark *>
{
};

TEST_P(HierarchyBenchmarkSweep, TrafficIsSane)
{
    const Benchmark &bench = *GetParam();
    const CacheHierarchy h = twoLevel();
    const auto t = h.evaluate(bench.miss, 1.0, 1.0);
    EXPECT_GE(t.stallNsPerInstr, 0.0);
    EXPECT_GE(t.l1Mpki, t.dramMpki);
    EXPECT_GE(t.dramMpki, 0.0);
    // Stall time is at least the DRAM component and at most the
    // every-miss-goes-to-DRAM bound.
    EXPECT_GE(t.stallNsPerInstr, t.dramMpki / 1000.0 * 70.0 - 1e-12);
    EXPECT_LE(t.stallNsPerInstr,
              t.l1Mpki / 1000.0 * (5.0 + 70.0) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, HierarchyBenchmarkSweep,
    ::testing::ValuesIn([] {
        std::vector<const Benchmark *> all;
        for (const auto &bench : allBenchmarks())
            all.push_back(&bench);
        return all;
    }()),
    [](const ::testing::TestParamInfo<const Benchmark *> &info) {
        std::string name = info.param->name;
        for (char &ch : name)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

} // namespace lhr
